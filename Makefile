# Convenience targets for the SBR reproduction. Everything is plain
# `go` — the Makefile only names the common invocations.

GO ?= go

.PHONY: all build fmt-check vet test race chaos soak lint trace-gate selfmon-gate cover bench bench-full bench-smoke query-bench recovery-bench fuzz examples experiments experiments-quick clean

all: build fmt-check vet test

build:
	$(GO) build ./...

# Fails (and lists the offenders) when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fault-injection end-to-end proof under the race detector: thousands
# of frames through a link that drops, corrupts, duplicates, truncates
# and cuts — the station history must match the fault-free run exactly.
chaos:
	$(GO) test -race -run Chaos -count=1 ./...

# The survivable-uplink soak at full scale, race mode: a sensor killed
# mid-transmission, a station flap with archive recovery, and a forced
# shed episode — history must match the fault-free reference exactly.
soak:
	SBR_SOAK=1 $(GO) test -race -run TestChaosSoakSurvivableUplink -count=1 -v .

# Static analysis: vet always; staticcheck when installed (CI installs
# it, local runs without it just say so instead of failing).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# The tracing overhead gate: with a tracer installed but frames sampled
# out, ReceiveFrame must stay within 5% of the uninstrumented path (takes
# the best of several timed attempts; see tracebench_test.go).
trace-gate:
	SBR_TRACE_GATE=1 $(GO) test -run TestTracingOverheadGate -count=1 -v ./internal/station

# The self-monitoring overhead gate: with the sampler snapshotting the
# registry at a 1ms cadence (50x the production default), ReceiveFrame
# must stay within 2% of the obs-only path (best of several attempts;
# see selfmonbench_test.go).
selfmon-gate:
	SBR_SELFMON_GATE=1 $(GO) test -run TestSelfmonOverheadGate -count=1 -v ./internal/station

cover:
	$(GO) test -cover ./internal/...

# The encode fast-path trajectory: measures the headline benchmarks and
# writes BENCH_pr4.json with ns/op, allocs/op and the speedup over the
# committed pre-optimisation baseline (BENCH_baseline.json).
BENCH_SUITE = BenchmarkEncodeAutoIns|BenchmarkSBREncode$$|BenchmarkSBRShortcut|BenchmarkGetIntervals|BenchmarkBestMapShiftScan
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_SUITE)' -benchmem -benchtime 2s . \
		| $(GO) run ./cmd/benchreport -baseline BENCH_baseline.json -out BENCH_pr4.json
	@cat BENCH_pr4.json

# Every benchmark in every package, at full measurement length.
bench-full:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark plus the report pipeline: catches
# bit-rotted benchmark or tooling code without paying for a measurement run.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...
	$(GO) test -run '^$$' -bench '$(BENCH_SUITE)' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchreport -baseline BENCH_baseline.json -out - >/dev/null
	$(GO) test -run '^$$' -bench '$(QUERY_BENCH_SUITE)' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchreport -baseline BENCH_pr9_query_baseline.json -out - >/dev/null

# Query-serving trajectory (PR 9): hot index aggregates, parallel cold
# range reads and the mixed ingest+query workload, reported against the
# committed pre-PR read path (station-wide RWMutex, cold fetch under
# lock). Writes BENCH_pr9_query.json with the speedups and the ingest
# tail-latency ratios.
QUERY_BENCH_SUITE = BenchmarkQueryHot|BenchmarkQueryColdParallel|BenchmarkQueryMixedIngest
query-bench:
	$(GO) test -run '^$$' -bench '$(QUERY_BENCH_SUITE)' -benchmem -benchtime 2s . \
		| $(GO) run ./cmd/benchreport -baseline BENCH_pr9_query_baseline.json \
			-note "Query-serving trajectory: per-sensor locks, snapshot reads, singleflight cold fetch" \
			-out BENCH_pr9_query.json
	@cat BENCH_pr9_query.json

# Station restart cost: full-archive replay vs checkpoint + bounded tail.
# Writes BENCH_pr6_recovery.json (the committed copy documents the gap).
recovery-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkRecover' -benchmem -benchtime 2s ./internal/station \
		| $(GO) run ./cmd/benchreport -note "Restart recovery: full replay vs checkpoint+tail" -out BENCH_pr6_recovery.json
	@cat BENCH_pr6_recovery.json

fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/wire
	$(GO) test -run '^$$' -fuzz=FuzzScanSegment -fuzztime=30s ./internal/segstore

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/weathermon
	$(GO) run ./examples/stockfeed
	$(GO) run ./examples/mixedstreams
	$(GO) run ./examples/netfeed

# The full paper-scale evaluation (takes minutes; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -run all

experiments-quick:
	$(GO) run ./cmd/experiments -run all -quick

clean:
	$(GO) clean ./...
