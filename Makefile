# Convenience targets for the SBR reproduction. Everything is plain
# `go` — the Makefile only names the common invocations.

GO ?= go

.PHONY: all build vet test race cover bench fuzz examples experiments experiments-quick clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/wire

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/weathermon
	$(GO) run ./examples/stockfeed
	$(GO) run ./examples/mixedstreams
	$(GO) run ./examples/netfeed

# The full paper-scale evaluation (takes minutes; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -run all

experiments-quick:
	$(GO) run ./cmd/experiments -run all -quick

clean:
	$(GO) clean ./...
