package sbr

import (
	"testing"

	"sbr/internal/core"
	"sbr/internal/datagen"
	"sbr/internal/metrics"
	"sbr/internal/netio"
	"sbr/internal/sensor"
	"sbr/internal/station"
)

// TestEndToEndSystem is the capstone integration test: synthetic weather
// feeds three streaming sensors under the adaptive schedule, frames travel
// over real TCP to a base station, and the reconstructed histories answer
// queries within sane error — the complete Figure-1 deployment in one test.
func TestEndToEndSystem(t *testing.T) {
	const (
		quantities = 3
		batchLen   = 256
		batches    = 4
	)
	cfg := core.Config{
		TotalBand: quantities * batchLen / 10,
		MBase:     quantities * batchLen / 8,
		Metric:    metrics.SSE,
	}

	st, err := station.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := netio.Serve(st, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Three sensors fed from three weather generators.
	type feed struct {
		id   string
		ds   *datagen.Dataset
		rows [][]float64 // per tick: one sample per quantity
	}
	var feeds []feed
	for k := 0; k < 3; k++ {
		ds := datagen.WeatherSized(int64(100+k), batchLen, batches)
		f := feed{id: string(rune('A' + k)), ds: ds}
		total := batchLen * batches
		for i := 0; i < total; i++ {
			f.rows = append(f.rows, []float64{ds.Rows[0][i], ds.Rows[1][i], ds.Rows[5][i]})
		}
		feeds = append(feeds, f)
	}

	for _, f := range feeds {
		client, err := netio.Dial(srv.Addr(), f.id)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sensor.New(sensor.Config{
			Core:       cfg,
			Quantities: quantities,
			BatchLen:   batchLen,
			Adaptive:   &core.AdaptivePolicy{MinFullRuns: 2},
		}, func(_ *core.Transmission, frame []byte) error {
			return client.Send(frame)
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, tick := range f.rows {
			if err := s.Record(tick...); err != nil {
				t.Fatal(err)
			}
		}
		client.Close()
		stats := s.Stats()
		if stats.Batches != batches {
			t.Fatalf("sensor %s flushed %d batches, want %d", f.id, stats.Batches, batches)
		}
		if stats.FullRuns >= batches {
			t.Errorf("sensor %s never took the adaptive shortcut", f.id)
		}
	}

	// The station must hold every sensor's full history and answer queries
	// with error well below the signal's variance.
	if got := len(st.Sensors()); got != 3 {
		t.Fatalf("station knows %d sensors, want 3", got)
	}
	for _, f := range feeds {
		for q, row := range []int{0, 1, 5} {
			hist, err := st.History(f.id, q)
			if err != nil {
				t.Fatal(err)
			}
			orig := f.ds.Rows[row][:len(hist)]
			if mse := metrics.MeanSquared(orig, hist); mse > orig.Variance()/2 {
				t.Errorf("sensor %s quantity %d: MSE %v vs variance %v",
					f.id, q, mse, orig.Variance())
			}
		}
		// A windowed query across the whole record.
		pts, err := st.Run(station.Query{Sensor: f.id, Row: 0, Step: batchLen, Agg: station.AggAvg})
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != batches {
			t.Errorf("sensor %s: %d windows, want %d", f.id, len(pts), batches)
		}
	}
}
