// Package wire serialises transmissions into the byte stream a sensor
// radio actually ships: a compact binary layout with varint-coded header
// fields, IEEE-754 payload values and a trailing CRC-32. The abstract
// bandwidth accounting of the algorithms (Cost, in "values") is preserved
// independently; wire gives the concrete framing used by the network
// simulator and the base-station log files.
//
// Interval lengths are deliberately not encoded: the base station recovers
// them from the sorted start offsets (Section 4.2), exactly as the paper's
// four-value records require.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"sbr/internal/base"
	"sbr/internal/core"
	"sbr/internal/interval"
	"sbr/internal/timeseries"
)

// magic identifies an SBR transmission frame.
var magic = [4]byte{'S', 'B', 'R', 'T'}

// Version is the current frame format version. Version 2 added the flags
// byte (quadratic records, shipped error bounds) at the head of the body.
const Version = 2

// VersionTraced is the traced frame format: identical to Version except
// that nine extra header bytes — an 8-byte little-endian trace ID and a
// trace-flags byte — sit between the version byte and the body length.
// The CRC still covers the body only, so a v3 frame downgrades to a
// byte-identical v2 frame by dropping the trace header (StripTrace): the
// trace context is best-effort diagnostic metadata, deliberately outside
// checksum protection, and a corrupted trace header at worst mis-joins a
// trace — never the data.
const VersionTraced = 3

// traceHeaderLen is the extra header length of a VersionTraced frame.
const traceHeaderLen = 9

// traceFlagSampled marks a frame whose trace is sampled: receivers record
// spans for it. Unsampled traced frames exist only transiently (a sampler
// decides at birth and encodes unsampled frames as plain v2).
const traceFlagSampled byte = 1 << 0

// TraceContext is the causal-trace identity a frame carries across the
// wire. The zero value means "untraced".
type TraceContext struct {
	ID      uint64
	Sampled bool
}

// ErrChecksum is returned when a frame fails CRC validation.
var ErrChecksum = errors.New("wire: frame checksum mismatch")

// ErrMagic is returned when a frame does not start with the SBRT magic.
var ErrMagic = errors.New("wire: bad frame magic")

// maxReasonable bounds decoded counts to keep a corrupted or adversarial
// frame from driving huge allocations.
const maxReasonable = 1 << 28

// Encode serialises t into a framed byte slice.
func Encode(t *core.Transmission) ([]byte, error) {
	var body bytes.Buffer
	// Flags: bit 0 set when interval records carry the quadratic
	// coefficient of the non-linear encoding extension.
	var flags byte
	for _, iv := range t.Intervals {
		if iv.C != 0 {
			flags |= flagQuadratic
			break
		}
	}
	if t.Bounded() {
		flags |= flagBounded
	}
	body.WriteByte(flags)
	if flags&flagBounded != 0 {
		putFloat(&body, t.ErrBound)
	}
	putUvarint(&body, uint64(t.Seq))
	putUvarint(&body, uint64(t.N))
	putUvarint(&body, uint64(t.M))
	putUvarint(&body, uint64(t.W))

	if len(t.BaseIntervals) != len(t.Placements) {
		return nil, fmt.Errorf("wire: %d base intervals but %d placements",
			len(t.BaseIntervals), len(t.Placements))
	}
	putUvarint(&body, uint64(len(t.BaseIntervals)))
	for i, iv := range t.BaseIntervals {
		if len(iv) != t.W {
			return nil, fmt.Errorf("wire: base interval %d has %d values, want W=%d",
				i, len(iv), t.W)
		}
		putUvarint(&body, uint64(t.Placements[i].Slot))
		for _, v := range iv {
			putFloat(&body, v)
		}
	}

	putUvarint(&body, uint64(len(t.Intervals)))
	for _, iv := range t.Intervals {
		putUvarint(&body, uint64(iv.Start))
		putVarint(&body, int64(iv.Shift))
		putFloat(&body, iv.A)
		putFloat(&body, iv.B)
		if flags&flagQuadratic != 0 {
			putFloat(&body, iv.C)
		}
	}

	var frame bytes.Buffer
	frame.Write(magic[:])
	frame.WriteByte(Version)
	putUvarint(&frame, uint64(body.Len()))
	frame.Write(body.Bytes())
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body.Bytes()))
	frame.Write(crc[:])
	return frame.Bytes(), nil
}

// EncodeTraced serialises t like Encode and, when tc carries a non-zero
// trace ID, emits a VersionTraced frame whose header propagates tc. A
// zero tc yields a plain Version 2 frame — callers never branch on
// whether a trace is live.
func EncodeTraced(t *core.Transmission, tc TraceContext) ([]byte, error) {
	frame, err := Encode(t)
	if err != nil || tc.ID == 0 {
		return frame, err
	}
	out := make([]byte, 0, len(frame)+traceHeaderLen)
	out = append(out, frame[:4]...)
	out = append(out, VersionTraced)
	var hdr [traceHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[:8], tc.ID)
	if tc.Sampled {
		hdr[8] = traceFlagSampled
	}
	out = append(out, hdr[:]...)
	out = append(out, frame[5:]...)
	return out, nil
}

// FrameTrace peeks the trace context of a framed transmission without
// decoding the payload. Version 2 frames return the zero context; so do
// frames too short or mis-versioned to carry one (the full validation
// belongs to ReadFrame/Decode — this is a header peek).
func FrameTrace(frame []byte) TraceContext {
	if len(frame) < 5+traceHeaderLen || !bytes.Equal(frame[:4], magic[:]) || frame[4] != VersionTraced {
		return TraceContext{}
	}
	return TraceContext{
		ID:      binary.LittleEndian.Uint64(frame[5 : 5+8]),
		Sampled: frame[5+8]&traceFlagSampled != 0,
	}
}

// StripTrace downgrades a VersionTraced frame to the byte-identical
// Version 2 frame (same body, same CRC) by dropping the trace header.
// Non-traced input is returned unchanged. This is how a v3 sender talks
// to a v2 peer: the data survives, the trace context is shed.
func StripTrace(frame []byte) []byte {
	if len(frame) < 5+traceHeaderLen || !bytes.Equal(frame[:4], magic[:]) || frame[4] != VersionTraced {
		return frame
	}
	out := make([]byte, 0, len(frame)-traceHeaderLen)
	out = append(out, frame[:4]...)
	out = append(out, Version)
	out = append(out, frame[5+traceHeaderLen:]...)
	return out
}

// DecodeBytes parses one framed transmission from a byte slice.
func DecodeBytes(frame []byte) (*core.Transmission, error) {
	return Decode(bytes.NewReader(frame))
}

// ReadFrame reads one complete framed transmission from r and returns its
// raw bytes — header, body and checksum — without decoding the payload.
// The magic, version and length are validated so a corrupted stream cannot
// drive an unbounded allocation. A clean end of stream at a frame boundary
// returns io.EOF; the raw frame can be re-parsed with DecodeBytes or
// appended verbatim to a station log.
func ReadFrame(r io.Reader) ([]byte, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	if !bytes.Equal(head[:4], magic[:]) {
		return nil, ErrMagic
	}
	if head[4] != Version && head[4] != VersionTraced {
		return nil, fmt.Errorf("wire: unsupported frame version %d", head[4])
	}
	var raw bytes.Buffer
	raw.Write(head[:])
	if head[4] == VersionTraced {
		var thdr [traceHeaderLen]byte
		if _, err := io.ReadFull(r, thdr[:]); err != nil {
			return nil, fmt.Errorf("wire: reading trace header: %w", err)
		}
		raw.Write(thdr[:])
	}
	bodyLen, err := binary.ReadUvarint(&byteCounter{r: io.TeeReader(r, &raw)})
	if err != nil {
		return nil, fmt.Errorf("wire: reading frame length: %w", err)
	}
	if bodyLen > maxReasonable {
		return nil, fmt.Errorf("wire: frame length %d too large", bodyLen)
	}
	if _, err := io.CopyN(&raw, r, int64(bodyLen)+4); err != nil {
		return nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return raw.Bytes(), nil
}

// FrameSeq extracts the sequence number from a framed transmission
// without decoding the payload — the cheap header peek transports use to
// match acknowledgements to outstanding frames and to re-acknowledge
// retransmitted duplicates.
func FrameSeq(frame []byte) (int, error) {
	r := bytes.NewReader(frame)
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, fmt.Errorf("wire: reading frame header: %w", err)
	}
	if !bytes.Equal(head[:4], magic[:]) {
		return 0, ErrMagic
	}
	if head[4] != Version && head[4] != VersionTraced {
		return 0, fmt.Errorf("wire: unsupported frame version %d", head[4])
	}
	if head[4] == VersionTraced {
		if _, err := r.Seek(traceHeaderLen, io.SeekCurrent); err != nil {
			return 0, fmt.Errorf("wire: skipping trace header: %w", err)
		}
	}
	if _, err := binary.ReadUvarint(r); err != nil {
		return 0, fmt.Errorf("wire: reading frame length: %w", err)
	}
	flags, err := r.ReadByte()
	if err != nil {
		return 0, fmt.Errorf("wire: reading flags: %w", err)
	}
	if flags&flagBounded != 0 {
		if _, err := r.Seek(8, io.SeekCurrent); err != nil {
			return 0, fmt.Errorf("wire: skipping error bound: %w", err)
		}
	}
	seq, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("wire: reading seq: %w", err)
	}
	return int(seq), nil
}

// Decode parses one framed transmission from r. Interval lengths are
// recovered from the sorted starts of the decoded records; Cost is
// recomputed from the frame contents.
func Decode(r io.Reader) (*core.Transmission, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			// Clean end of stream at a frame boundary.
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	if !bytes.Equal(head[:4], magic[:]) {
		return nil, ErrMagic
	}
	if head[4] != Version && head[4] != VersionTraced {
		return nil, fmt.Errorf("wire: unsupported frame version %d", head[4])
	}
	if head[4] == VersionTraced {
		var thdr [traceHeaderLen]byte
		if _, err := io.ReadFull(r, thdr[:]); err != nil {
			return nil, fmt.Errorf("wire: reading trace header: %w", err)
		}
	}
	br := &byteCounter{r: r}
	bodyLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("wire: reading frame length: %w", err)
	}
	if bodyLen > maxReasonable {
		return nil, fmt.Errorf("wire: frame length %d too large", bodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("wire: reading frame checksum: %w", err)
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != crc32.ChecksumIEEE(body) {
		return nil, ErrChecksum
	}
	return decodeBody(bytes.NewReader(body))
}

// flagQuadratic marks frames whose interval records carry three
// coefficients (the quadratic encoding extension).
const flagQuadratic byte = 1 << 0

// flagBounded marks frames carrying the guaranteed maximum-error bound of
// Section 4.5 alongside the approximate signal.
const flagBounded byte = 1 << 1

func decodeBody(r *bytes.Reader) (*core.Transmission, error) {
	flags, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("wire: reading flags: %w", err)
	}
	if flags&^(flagQuadratic|flagBounded) != 0 {
		return nil, fmt.Errorf("wire: unknown flags 0x%02x", flags)
	}
	var errBound float64
	if flags&flagBounded != 0 {
		errBound, err = getFloat(r)
		if err != nil {
			return nil, err
		}
	}
	seq, err := getUvarint(r, "seq")
	if err != nil {
		return nil, err
	}
	n, err := getUvarint(r, "N")
	if err != nil {
		return nil, err
	}
	m, err := getUvarint(r, "M")
	if err != nil {
		return nil, err
	}
	w, err := getUvarint(r, "W")
	if err != nil {
		return nil, err
	}
	t := &core.Transmission{Seq: int(seq), N: int(n), M: int(m), W: int(w), ErrBound: errBound}

	ins, err := getUvarint(r, "insert count")
	if err != nil {
		return nil, err
	}
	if ins > maxReasonable/(uint64(w)+1) {
		return nil, fmt.Errorf("wire: implausible insert count %d", ins)
	}
	t.BaseIntervals = make([]timeseries.Series, ins)
	t.Placements = make([]base.Placement, ins)
	for i := range t.BaseIntervals {
		slot, err := getUvarint(r, "placement slot")
		if err != nil {
			return nil, err
		}
		t.Placements[i] = base.Placement{Slot: int(slot)}
		iv := make(timeseries.Series, w)
		for j := range iv {
			v, err := getFloat(r)
			if err != nil {
				return nil, err
			}
			iv[j] = v
		}
		t.BaseIntervals[i] = iv
	}

	count, err := getUvarint(r, "interval count")
	if err != nil {
		return nil, err
	}
	if count > maxReasonable {
		return nil, fmt.Errorf("wire: implausible interval count %d", count)
	}
	t.Intervals = make([]interval.Interval, count)
	for i := range t.Intervals {
		start, err := getUvarint(r, "interval start")
		if err != nil {
			return nil, err
		}
		shift, err := binary.ReadVarint(r)
		if err != nil {
			return nil, fmt.Errorf("wire: reading interval shift: %w", err)
		}
		a, err := getFloat(r)
		if err != nil {
			return nil, err
		}
		b, err := getFloat(r)
		if err != nil {
			return nil, err
		}
		var cq float64
		if flags&flagQuadratic != 0 {
			cq, err = getFloat(r)
			if err != nil {
				return nil, err
			}
		}
		t.Intervals[i] = interval.Interval{
			Start: int(start), Shift: int(shift), A: a, B: b, C: cq,
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in frame body", r.Len())
	}
	perRecord := interval.ValuesPerInterval
	if flags&flagQuadratic != 0 {
		perRecord = interval.ValuesPerQuadInterval
	}
	t.Cost = int(ins)*(t.W+1) + len(t.Intervals)*perRecord
	return t, nil
}

// byteCounter adapts an io.Reader to io.ByteReader for varint decoding.
type byteCounter struct {
	r io.Reader
}

func (b *byteCounter) ReadByte() (byte, error) {
	var buf [1]byte
	_, err := io.ReadFull(b.r, buf[:])
	return buf[0], err
}

func putUvarint(w *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putVarint(w *bytes.Buffer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func putFloat(w *bytes.Buffer, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	w.Write(buf[:])
}

func getUvarint(r *bytes.Reader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("wire: reading %s: %w", what, err)
	}
	return v, nil
}

func getFloat(r *bytes.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("wire: reading value: %w", err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}
