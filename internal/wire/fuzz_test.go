package wire

import (
	"testing"

	"sbr/internal/base"
	"sbr/internal/core"
	"sbr/internal/interval"
	"sbr/internal/timeseries"
)

// FuzzDecode checks that arbitrary byte streams never crash the decoder and
// that every frame the decoder accepts re-encodes to a frame the decoder
// accepts again with identical content. Run with `go test -fuzz=FuzzDecode
// ./internal/wire` for an open-ended session; the seed corpus runs in every
// regular `go test`.
func FuzzDecode(f *testing.F) {
	// Seed with valid frames of several shapes plus structured garbage.
	seeds := []*core.Transmission{
		{Seq: 0, N: 1, M: 4, W: 2},
		{
			Seq: 7, N: 2, M: 16, W: 3,
			BaseIntervals: []timeseries.Series{{1, 2, 3}},
			Placements:    []base.Placement{{Slot: 0}},
			Intervals: []interval.Interval{
				{Start: 0, Shift: -1, A: 1.5, B: -2},
				{Start: 16, Shift: 2, A: 0, B: 9},
			},
		},
		{
			Seq: 3, N: 1, M: 8, W: 2,
			Intervals: []interval.Interval{{Start: 0, Shift: 1, A: 1, B: 2, C: -0.5}},
		},
	}
	for _, t := range seeds {
		frame, err := Encode(t)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte("SBRT"))
	f.Add([]byte{'S', 'B', 'R', 'T', 1, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeBytes(data)
		if err != nil {
			return // rejection is always fine; crashing is not
		}
		// Accepted frames must round-trip losslessly.
		frame2, err := Encode(tr)
		if err != nil {
			t.Fatalf("re-encoding an accepted frame failed: %v", err)
		}
		tr2, err := DecodeBytes(frame2)
		if err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
		if tr2.Seq != tr.Seq || tr2.N != tr.N || tr2.M != tr.M || tr2.W != tr.W ||
			len(tr2.Intervals) != len(tr.Intervals) ||
			len(tr2.BaseIntervals) != len(tr.BaseIntervals) {
			t.Fatal("round trip changed the transmission")
		}
		for i := range tr.Intervals {
			a, b := tr.Intervals[i], tr2.Intervals[i]
			if a.Start != b.Start || a.Shift != b.Shift ||
				!sameFloat(a.A, b.A) || !sameFloat(a.B, b.B) || !sameFloat(a.C, b.C) {
				t.Fatalf("interval %d changed: %+v vs %+v", i, a, b)
			}
		}
	})
}

// sameFloat treats NaN as equal to NaN: fuzzed frames can carry NaN
// payloads, which never compare equal via ==.
func sameFloat(a, b float64) bool {
	return a == b || (a != a && b != b)
}
