package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sbr/internal/base"
	"sbr/internal/core"
	"sbr/internal/interval"
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

func sampleTransmission(seed int64) *core.Transmission {
	rng := rand.New(rand.NewSource(seed))
	w := 4
	ivs := []timeseries.Series{
		{1.5, -2.25, 3, 4},
		{0, math.Pi, -1e-9, 7},
	}
	t := &core.Transmission{
		Seq: 3, N: 2, M: 32, W: w,
		BaseIntervals: ivs,
		Placements:    []base.Placement{{Slot: 0}, {Slot: 5}},
	}
	for k := 0; k < 6; k++ {
		t.Intervals = append(t.Intervals, interval.Interval{
			Start: k * 8,
			Shift: rng.Intn(10) - 1,
			A:     rng.NormFloat64(),
			B:     rng.NormFloat64(),
		})
	}
	t.Cost = 2*(w+1) + 6*interval.ValuesPerInterval
	return t
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := sampleTransmission(1)
	frame, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != orig.Seq || got.N != orig.N || got.M != orig.M || got.W != orig.W {
		t.Errorf("header mismatch: %+v vs %+v", got, orig)
	}
	if len(got.BaseIntervals) != 2 {
		t.Fatalf("%d base intervals back", len(got.BaseIntervals))
	}
	for i := range got.BaseIntervals {
		if !timeseries.Equal(got.BaseIntervals[i], orig.BaseIntervals[i], 0) {
			t.Errorf("base interval %d differs", i)
		}
		if got.Placements[i] != orig.Placements[i] {
			t.Errorf("placement %d differs", i)
		}
	}
	if len(got.Intervals) != len(orig.Intervals) {
		t.Fatalf("%d intervals back", len(got.Intervals))
	}
	for i := range got.Intervals {
		o, g := orig.Intervals[i], got.Intervals[i]
		if g.Start != o.Start || g.Shift != o.Shift || g.A != o.A || g.B != o.B {
			t.Errorf("interval %d: %v vs %v", i, g, o)
		}
	}
	if got.Cost != orig.Cost {
		t.Errorf("recomputed cost %d, want %d", got.Cost, orig.Cost)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	frame, _ := Encode(sampleTransmission(2))
	frame[0] = 'X'
	if _, err := DecodeBytes(frame); !errors.Is(err, ErrMagic) {
		t.Errorf("bad magic gave %v, want ErrMagic", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	frame, _ := Encode(sampleTransmission(3))
	frame[4] = 99
	if _, err := DecodeBytes(frame); err == nil {
		t.Error("bad version accepted")
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	frame, _ := Encode(sampleTransmission(4))
	// Flip one payload byte (after header + length varint).
	frame[len(frame)/2] ^= 0xFF
	_, err := DecodeBytes(frame)
	if err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func TestDecodeChecksumError(t *testing.T) {
	frame, _ := Encode(sampleTransmission(5))
	frame[len(frame)-1] ^= 0x01 // corrupt the CRC itself
	if _, err := DecodeBytes(frame); !errors.Is(err, ErrChecksum) {
		t.Errorf("corrupt CRC gave %v, want ErrChecksum", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	frame, _ := Encode(sampleTransmission(6))
	for _, cut := range []int{0, 3, 5, 10, len(frame) - 1} {
		if _, err := DecodeBytes(frame[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeCleanEOF(t *testing.T) {
	if _, err := Decode(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream gave %v, want io.EOF", err)
	}
}

func TestStreamOfFrames(t *testing.T) {
	var buf bytes.Buffer
	var want []*core.Transmission
	for i := int64(0); i < 3; i++ {
		tr := sampleTransmission(i)
		tr.Seq = int(i)
		want = append(want, tr)
		frame, err := Encode(tr)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	r := bytes.NewReader(buf.Bytes())
	for i := 0; ; i++ {
		tr, err := Decode(r)
		if err == io.EOF {
			if i != 3 {
				t.Fatalf("decoded %d frames, want 3", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if tr.Seq != want[i].Seq {
			t.Errorf("frame %d has seq %d", i, tr.Seq)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	tr := sampleTransmission(7)
	tr.Placements = tr.Placements[:1]
	if _, err := Encode(tr); err == nil {
		t.Error("mismatched placements accepted")
	}
	tr = sampleTransmission(8)
	tr.BaseIntervals[0] = timeseries.Series{1}
	if _, err := Encode(tr); err == nil {
		t.Error("wrong-width base interval accepted")
	}
}

func TestEmptyTransmission(t *testing.T) {
	tr := &core.Transmission{Seq: 0, N: 1, M: 4, W: 2}
	frame, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.BaseIntervals) != 0 || len(got.Intervals) != 0 {
		t.Error("empty transmission decoded non-empty")
	}
}

// Property: random single-byte corruption anywhere in the frame is either
// detected or decodes to exactly the same transmission (varint prefixes can
// absorb some flips only if they re-encode the same values — anything else
// must fail).
func TestCorruptionDetectionProperty(t *testing.T) {
	orig := sampleTransmission(9)
	frame, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	f := func(posRaw uint16, bitRaw uint8) bool {
		pos := int(posRaw) % len(frame)
		bit := byte(1) << (bitRaw % 8)
		mut := append([]byte(nil), frame...)
		mut[pos] ^= bit
		got, err := DecodeBytes(mut)
		if err != nil {
			return true // detected
		}
		// Decoded despite the flip: must be semantically identical.
		if got.Seq != orig.Seq || len(got.Intervals) != len(orig.Intervals) {
			return false
		}
		for i := range got.Intervals {
			if got.Intervals[i] != orig.Intervals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: round trip is identity for random transmissions.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := rng.Intn(6) + 1
		tr := &core.Transmission{
			Seq: rng.Intn(100), N: rng.Intn(5) + 1, M: rng.Intn(64) + 1, W: w,
		}
		for k := 0; k < rng.Intn(4); k++ {
			iv := make(timeseries.Series, w)
			for i := range iv {
				iv[i] = rng.NormFloat64()
			}
			tr.BaseIntervals = append(tr.BaseIntervals, iv)
			tr.Placements = append(tr.Placements, base.Placement{Slot: rng.Intn(10)})
		}
		for k := 0; k < rng.Intn(10); k++ {
			tr.Intervals = append(tr.Intervals, interval.Interval{
				Start: rng.Intn(1000),
				Shift: rng.Intn(20) - 1,
				A:     rng.NormFloat64(),
				B:     rng.NormFloat64(),
			})
		}
		frame, err := Encode(tr)
		if err != nil {
			return false
		}
		got, err := DecodeBytes(frame)
		if err != nil {
			return false
		}
		if got.Seq != tr.Seq || got.N != tr.N || got.M != tr.M || got.W != tr.W ||
			len(got.BaseIntervals) != len(tr.BaseIntervals) ||
			len(got.Intervals) != len(tr.Intervals) {
			return false
		}
		for i := range tr.Intervals {
			o, g := tr.Intervals[i], got.Intervals[i]
			if g.Start != o.Start || g.Shift != o.Shift || g.A != o.A || g.B != o.B {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestWireIntegrationWithCompressor checks a full compressor → wire →
// decoder chain reconstructs identically to the in-memory path.
func TestWireIntegrationWithCompressor(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rows := make([]timeseries.Series, 3)
	for r := range rows {
		rows[r] = make(timeseries.Series, 128)
		for i := range rows[r] {
			rows[r][i] = math.Sin(float64(i)/9)*10 + rng.NormFloat64()
		}
	}
	cfg := core.Config{TotalBand: 120, MBase: 60, Metric: metrics.SSE}
	comp, _ := core.NewCompressor(cfg)
	decDirect, _ := core.NewDecoder(cfg)
	decWire, _ := core.NewDecoder(cfg)

	for round := 0; round < 3; round++ {
		tr, err := comp.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := decDirect.Decode(tr)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := Encode(tr)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeBytes(frame)
		if err != nil {
			t.Fatal(err)
		}
		viaWire, err := decWire.Decode(back)
		if err != nil {
			t.Fatal(err)
		}
		for r := range direct {
			if !timeseries.Equal(direct[r], viaWire[r], 1e-12) {
				t.Fatalf("round %d row %d: wire path diverges from direct path", round, r)
			}
		}
	}
}

func TestQuadraticRoundTrip(t *testing.T) {
	tr := sampleTransmission(11)
	tr.Intervals[2].C = -0.125
	tr.Intervals[4].C = 3.5
	frame, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Intervals {
		if got.Intervals[i].C != tr.Intervals[i].C {
			t.Errorf("interval %d: C = %v, want %v", i, got.Intervals[i].C, tr.Intervals[i].C)
		}
	}
	// Quadratic frames recompute cost at 5 values per record.
	want := 2*(tr.W+1) + len(tr.Intervals)*interval.ValuesPerQuadInterval
	if got.Cost != want {
		t.Errorf("quadratic cost %d, want %d", got.Cost, want)
	}
	// Linear frames stay compact: adding the quadratic flag grows the frame.
	linear := sampleTransmission(11)
	linFrame, err := Encode(linear)
	if err != nil {
		t.Fatal(err)
	}
	if len(linFrame) >= len(frame) {
		t.Errorf("linear frame (%d bytes) not smaller than quadratic frame (%d bytes)",
			len(linFrame), len(frame))
	}
}

func TestQuadraticEndToEndViaWire(t *testing.T) {
	rows := make([]timeseries.Series, 2)
	for r := range rows {
		rows[r] = make(timeseries.Series, 128)
		for i := range rows[r] {
			tv := float64(i%32) - 16
			rows[r][i] = float64(r+1) * (0.3*tv*tv + 2*tv - 1)
		}
	}
	cfg := core.Config{TotalBand: 80, MBase: 32, Metric: metrics.SSE, Quadratic: true}
	comp, _ := core.NewCompressor(cfg)
	dec, _ := core.NewDecoder(cfg)
	tr, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decode(back)
	if err != nil {
		t.Fatal(err)
	}
	y := timeseries.Concat(rows...)
	yh := timeseries.Concat(got...)
	if errv := metrics.SumSquared(y, yh); math.Abs(errv-tr.TotalErr) > 1e-6*(1+tr.TotalErr) {
		t.Errorf("wire quadratic path: decoder err %v, sender err %v", errv, tr.TotalErr)
	}
}

func TestUnknownFlagsRejected(t *testing.T) {
	// Build a frame whose flags byte carries an unassigned bit: must be
	// rejected rather than silently misparsed.
	frame, err := Encode(sampleTransmission(20))
	if err != nil {
		t.Fatal(err)
	}
	// Body starts after magic(4) + version(1) + length varint. The first
	// body byte is the flags byte.
	// Find it by decoding the varint length manually.
	i := 5
	for frame[i]&0x80 != 0 {
		i++
	}
	i++ // first body byte = flags
	frame[i] |= 0x80
	// Fix the checksum so only the flag check can fire.
	body := frame[i : len(frame)-4]
	sum := crc32.ChecksumIEEE(body)
	binary.LittleEndian.PutUint32(frame[len(frame)-4:], sum)
	if _, err := DecodeBytes(frame); err == nil {
		t.Error("unknown flag bit accepted")
	}
}

func TestReadFrameRoundTrip(t *testing.T) {
	// A stream of three frames read back raw must byte-equal the encodings
	// and re-decode to the same transmissions.
	var stream bytes.Buffer
	var frames [][]byte
	for seed := int64(1); seed <= 3; seed++ {
		frame, err := Encode(sampleTransmission(seed))
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
		stream.Write(frame)
	}
	for i := 0; ; i++ {
		raw, err := ReadFrame(&stream)
		if err == io.EOF {
			if i != len(frames) {
				t.Fatalf("EOF after %d frames, want %d", i, len(frames))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, frames[i]) {
			t.Fatalf("frame %d: raw bytes differ from encoding", i)
		}
		if _, err := DecodeBytes(raw); err != nil {
			t.Fatalf("frame %d: re-decoding raw frame: %v", i, err)
		}
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte("XXXXXXXXXX"))); !errors.Is(err, ErrMagic) {
		t.Fatalf("garbage magic: err = %v, want ErrMagic", err)
	}
	frame, err := Encode(sampleTransmission(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-3])); err == nil {
		t.Fatal("truncated frame must fail")
	}
	bad := append([]byte(nil), frame...)
	bad[4] = 99 // version
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version must fail")
	}
}

// TestFrameSeq checks the header peek the transports use to match
// acknowledgements to outstanding frames: it must agree with the full
// decode, for plain and bounded frames alike, without touching the body.
func TestFrameSeq(t *testing.T) {
	for _, bound := range []float64{0, 0.125} {
		tr := sampleTransmission(2)
		tr.Seq = 41
		tr.ErrBound = bound
		frame, err := Encode(tr)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := FrameSeq(frame)
		if err != nil {
			t.Fatalf("bound=%v: %v", bound, err)
		}
		if seq != tr.Seq {
			t.Errorf("bound=%v: FrameSeq = %d, want %d", bound, seq, tr.Seq)
		}
	}
	if _, err := FrameSeq([]byte("XXXX-definitely-not-a-frame")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := FrameSeq(nil); err == nil {
		t.Error("empty frame accepted")
	}
	frame, err := Encode(sampleTransmission(3))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), frame...)
	bad[4] = 99 // version
	if _, err := FrameSeq(bad); err == nil {
		t.Error("bad version accepted")
	}
}
