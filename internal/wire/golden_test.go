package wire

import (
	"bytes"
	"encoding/hex"
	"testing"

	"sbr/internal/base"
	"sbr/internal/core"
	"sbr/internal/interval"
	"sbr/internal/timeseries"
)

// goldenTransmission is a fixed frame whose byte-for-byte encoding is
// pinned below. If this test fails, the wire format changed: bump
// wire.Version and update the golden bytes deliberately — base-station
// logs on disk depend on the format being stable within a version.
func goldenTransmission() *core.Transmission {
	return &core.Transmission{
		Seq: 5, N: 2, M: 8, W: 2,
		BaseIntervals: []timeseries.Series{{1, 2}},
		Placements:    []base.Placement{{Slot: 3}},
		Intervals: []interval.Interval{
			{Start: 0, Shift: -1, A: 0.5, B: 1},
			{Start: 8, Shift: 2, A: -1, B: 0.25},
		},
	}
}

const goldenHex = "53425254023c00050208020103000000000000f03f" +
	"0000000000000040020001000000000000e03f000000000000f03f" +
	"0804000000000000f0bf000000000000d03f8041cf32"

func TestGoldenFrameBytes(t *testing.T) {
	frame, err := Encode(goldenTransmission())
	if err != nil {
		t.Fatal(err)
	}
	want, err := hex.DecodeString(goldenHex)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, want) {
		t.Errorf("frame bytes changed:\n got %s\nwant %s",
			hex.EncodeToString(frame), goldenHex)
	}
}

func TestGoldenFrameDecodes(t *testing.T) {
	want, err := hex.DecodeString(goldenHex)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(want)
	if err != nil {
		t.Fatalf("golden frame no longer decodes: %v", err)
	}
	orig := goldenTransmission()
	if got.Seq != orig.Seq || got.N != orig.N || got.M != orig.M || got.W != orig.W {
		t.Errorf("golden header decoded to %+v", got)
	}
	if len(got.Intervals) != 2 || got.Intervals[1].B != 0.25 {
		t.Errorf("golden intervals decoded to %+v", got.Intervals)
	}
	if len(got.BaseIntervals) != 1 || got.Placements[0].Slot != 3 {
		t.Errorf("golden base intervals decoded to %+v / %+v",
			got.BaseIntervals, got.Placements)
	}
}
