package wire

import (
	"bytes"
	"testing"
)

func TestEncodeTracedRoundTrip(t *testing.T) {
	orig := sampleTransmission(11)
	tc := TraceContext{ID: 0xdeadbeefcafe0001, Sampled: true}
	frame, err := EncodeTraced(orig, tc)
	if err != nil {
		t.Fatal(err)
	}
	if frame[4] != VersionTraced {
		t.Fatalf("version byte %d, want %d", frame[4], VersionTraced)
	}
	// The trace header rides outside the body: decoding ignores it and
	// yields the same transmission a plain frame would.
	got, err := DecodeBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != orig.Seq || got.N != orig.N || got.Cost != orig.Cost {
		t.Errorf("decoded %+v, want %+v", got, orig)
	}
	if peek := FrameTrace(frame); peek != tc {
		t.Errorf("FrameTrace = %+v, want %+v", peek, tc)
	}
	seq, err := FrameSeq(frame)
	if err != nil || seq != orig.Seq {
		t.Errorf("FrameSeq = %d, %v; want %d", seq, err, orig.Seq)
	}
}

func TestEncodeTracedZeroContextIsPlainFrame(t *testing.T) {
	orig := sampleTransmission(12)
	plain, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := EncodeTraced(orig, TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, traced) {
		t.Error("zero trace context should encode the plain v2 frame")
	}
	if peek := FrameTrace(plain); peek != (TraceContext{}) {
		t.Errorf("v2 frame peeked a trace context %+v", peek)
	}
}

func TestStripTraceIsByteIdenticalDowngrade(t *testing.T) {
	orig := sampleTransmission(13)
	plain, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := EncodeTraced(orig, TraceContext{ID: 42, Sampled: false})
	if err != nil {
		t.Fatal(err)
	}
	stripped := StripTrace(traced)
	if !bytes.Equal(stripped, plain) {
		t.Errorf("StripTrace produced %x, want the plain frame %x", stripped, plain)
	}
	// Stripping a plain frame is the identity.
	if got := StripTrace(plain); !bytes.Equal(got, plain) {
		t.Error("StripTrace modified an untraced frame")
	}
}

func TestReadFrameAcceptsTraced(t *testing.T) {
	orig := sampleTransmission(14)
	traced, err := EncodeTraced(orig, TraceContext{ID: 7, Sampled: true})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ReadFrame(bytes.NewReader(traced))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, traced) {
		t.Error("ReadFrame did not return the full traced frame")
	}
	// The raw bytes still carry the trace context for anyone re-peeking.
	if tc := FrameTrace(raw); tc.ID != 7 || !tc.Sampled {
		t.Errorf("re-peeked context %+v", tc)
	}
}

func TestFrameTraceRejectsShortOrForeign(t *testing.T) {
	if tc := FrameTrace([]byte("SBRT")); tc != (TraceContext{}) {
		t.Errorf("short frame peeked %+v", tc)
	}
	if tc := FrameTrace([]byte("XXXXYYYYZZZZWWWW")); tc != (TraceContext{}) {
		t.Errorf("foreign bytes peeked %+v", tc)
	}
	if tc := FrameTrace(nil); tc != (TraceContext{}) {
		t.Errorf("nil frame peeked %+v", tc)
	}
}
