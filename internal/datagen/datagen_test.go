package datagen

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sbr/internal/timeseries"
)

func TestDatasetShapes(t *testing.T) {
	cases := []struct {
		ds      *Dataset
		n, m, f int
	}{
		{Weather(1), 6, 4096, 10},
		{PhoneCalls(1), 15, 2560, 10},
		{Stocks(1), 10, 2048, 10},
		{Mixed(1), 9, 2048, 10},
	}
	for _, c := range cases {
		if c.ds.N() != c.n {
			t.Errorf("%s: N=%d, want %d", c.ds.Name, c.ds.N(), c.n)
		}
		if c.ds.FileLen != c.m || c.ds.Files != c.f {
			t.Errorf("%s: file layout %dx%d, want %dx%d",
				c.ds.Name, c.ds.FileLen, c.ds.Files, c.m, c.f)
		}
		if len(c.ds.Labels) != c.n {
			t.Errorf("%s: %d labels for %d rows", c.ds.Name, len(c.ds.Labels), c.n)
		}
		for r, row := range c.ds.Rows {
			if len(row) != c.m*c.f {
				t.Errorf("%s row %d: length %d, want %d", c.ds.Name, r, len(row), c.m*c.f)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Weather(7)
	b := Weather(7)
	for r := range a.Rows {
		if !timeseries.Equal(a.Rows[r], b.Rows[r], 0) {
			t.Fatalf("weather row %d differs across identical seeds", r)
		}
	}
	c := Weather(8)
	same := true
	for r := range a.Rows {
		if !timeseries.Equal(a.Rows[r], c.Rows[r], 0) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical weather data")
	}
}

func TestFileSlicing(t *testing.T) {
	ds := Stocks(3)
	f0 := ds.File(0)
	f9 := ds.File(9)
	if len(f0) != ds.N() || len(f0[0]) != ds.FileLen {
		t.Fatalf("file shape %dx%d", len(f0), len(f0[0]))
	}
	if !timeseries.Equal(f0[0], ds.Rows[0][:ds.FileLen], 0) {
		t.Error("file 0 is not the first window")
	}
	if !timeseries.Equal(f9[0], ds.Rows[0][9*ds.FileLen:], 0) {
		t.Error("file 9 is not the last window")
	}
	if got := ds.AllFiles(); len(got) != 10 {
		t.Errorf("AllFiles returned %d files", len(got))
	}
}

func TestFileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("File(10) did not panic")
		}
	}()
	Stocks(1).File(10)
}

func TestWeatherPhysicalInvariants(t *testing.T) {
	ds := Weather(5)
	temp, dew := ds.Rows[0], ds.Rows[1]
	wind, peak := ds.Rows[2], ds.Rows[3]
	solar, hum := ds.Rows[4], ds.Rows[5]
	for i := range temp {
		if dew[i] > temp[i] {
			t.Fatalf("dewpoint %v above temperature %v at %d", dew[i], temp[i], i)
		}
		if wind[i] < 0 || solar[i] < 0 {
			t.Fatalf("negative wind/solar at %d", i)
		}
		if peak[i] < wind[i] {
			t.Fatalf("wind peak %v below sustained wind %v at %d", peak[i], wind[i], i)
		}
		if hum[i] < 5 || hum[i] > 100 {
			t.Fatalf("humidity %v outside [5,100] at %d", hum[i], i)
		}
	}
	// Solar has a day/night cycle: a large share of samples must be zero.
	var zeros int
	for _, v := range solar {
		if v == 0 {
			zeros++
		}
	}
	if frac := float64(zeros) / float64(len(solar)); frac < 0.2 || frac > 0.8 {
		t.Errorf("solar zero fraction %v, want a plausible night share", frac)
	}
}

func TestPhoneCallsInvariants(t *testing.T) {
	ds := PhoneCalls(6)
	for r, row := range ds.Rows {
		var max float64
		for i, v := range row {
			if v < 0 {
				t.Fatalf("negative call count row %d idx %d", r, i)
			}
			if v != math.Trunc(v) {
				t.Fatalf("non-integral call count %v", v)
			}
			if v > max {
				max = v
			}
		}
		if max == 0 {
			t.Errorf("state %s never receives calls", ds.Labels[r])
		}
	}
	// CA must dwarf AZ on average (scale separation drives Table 3).
	az, ca := ds.Rows[0], ds.Rows[1]
	if ca.Mean() < 2*az.Mean() {
		t.Errorf("CA mean %v not well above AZ mean %v", ca.Mean(), az.Mean())
	}
}

func TestStocksCorrelatedThroughMarketFactor(t *testing.T) {
	ds := Stocks(9)
	// Log-return correlation between two tickers must be clearly positive.
	ret := func(s timeseries.Series) []float64 {
		out := make([]float64, len(s)-1)
		for i := range out {
			out[i] = math.Log(s[i+1] / s[i])
		}
		return out
	}
	a, b := ret(ds.Rows[0]), ret(ds.Rows[1])
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	corr := cov / math.Sqrt(va*vb)
	if corr < 0.15 {
		t.Errorf("ticker return correlation %v, want clearly positive", corr)
	}
	for r, row := range ds.Rows {
		for i, v := range row {
			if v <= 0 {
				t.Fatalf("non-positive price row %d idx %d", r, i)
			}
		}
	}
}

func TestMixedComposition(t *testing.T) {
	ds := Mixed(4)
	if ds.N() != 9 {
		t.Fatalf("mixed has %d rows", ds.N())
	}
	wantLabels := []string{"phone-AZ", "phone-CA", "phone-FL", "air-temp", "pressure", "solar", "MSFT", "INTC", "ORCL"}
	for i, l := range wantLabels {
		if ds.Labels[i] != l {
			t.Errorf("label %d = %q, want %q", i, ds.Labels[i], l)
		}
	}
	// Pressure hovers near 1013 hPa.
	p := ds.Rows[4]
	if p.Mean() < 950 || p.Mean() > 1070 {
		t.Errorf("pressure mean %v implausible", p.Mean())
	}
}

func TestStockIndexesCorrelated(t *testing.T) {
	ind, ins := StockIndexes(2)
	if len(ind) != 128 || len(ins) != 128 {
		t.Fatalf("index lengths %d, %d", len(ind), len(ins))
	}
	var mi, mj float64
	for i := range ind {
		mi += ind[i]
		mj += ins[i]
	}
	mi /= 128
	mj /= 128
	var cov, vi, vj float64
	for i := range ind {
		cov += (ind[i] - mi) * (ins[i] - mj)
		vi += (ind[i] - mi) * (ind[i] - mi)
		vj += (ins[i] - mj) * (ins[i] - mj)
	}
	if corr := cov / math.Sqrt(vi*vj); corr < 0.9 {
		t.Errorf("index correlation %v, want very strong (motivational example)", corr)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := StocksSized(3, 16, 2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds.Labels, ds.Rows); err != nil {
		t.Fatal(err)
	}
	labels, rows, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(ds.Labels) {
		t.Fatalf("%d labels back", len(labels))
	}
	for i := range rows {
		if !timeseries.Equal(rows[i], ds.Rows[i], 0) {
			t.Errorf("row %d differs after CSV round trip", i)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if err := WriteCSV(&bytes.Buffer{}, []string{"a"}, nil); err == nil {
		t.Error("label/row mismatch accepted")
	}
	if err := WriteCSV(&bytes.Buffer{}, []string{"a", "b"},
		[]timeseries.Series{{1, 2}, {1}}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, _, err := ReadCSV(strings.NewReader("a,b\n1,x\n")); err == nil {
		t.Error("non-numeric CSV accepted")
	}
	if _, _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("short record accepted")
	}
}

func TestNetworkTrafficInvariants(t *testing.T) {
	ds := NetworkTraffic(11)
	if ds.N() != 8 || ds.FileLen != 2048 || ds.Files != 10 {
		t.Fatalf("shape %dx%dx%d", ds.N(), ds.FileLen, ds.Files)
	}
	for r, row := range ds.Rows {
		for i, v := range row {
			if v < 0 {
				t.Fatalf("negative byte count row %d idx %d", r, i)
			}
			if v != math.Trunc(v) {
				t.Fatalf("non-integral byte count %v", v)
			}
		}
	}
	// The two directions of a link must correlate strongly.
	in, out := ds.Rows[0], ds.Rows[1]
	mi, mo := in.Mean(), out.Mean()
	var cov, vi, vo float64
	for i := range in {
		cov += (in[i] - mi) * (out[i] - mo)
		vi += (in[i] - mi) * (in[i] - mi)
		vo += (out[i] - mo) * (out[i] - mo)
	}
	if corr := cov / math.Sqrt(vi*vo); corr < 0.5 {
		t.Errorf("link direction correlation %v, want strong", corr)
	}
	// Heavy tail: the maximum should dwarf the mean.
	if in.Max() < 3*mi {
		t.Errorf("traffic lacks bursts: max %v vs mean %v", in.Max(), mi)
	}
}

func TestNetworkTrafficSized(t *testing.T) {
	ds := NetworkTrafficSized(11, 512, 3)
	if ds.Name != "netflow" || ds.FileLen != 512 || ds.Files != 3 {
		t.Fatalf("sized netflow shape wrong: %s %dx%d", ds.Name, ds.FileLen, ds.Files)
	}
	a := NetworkTrafficSized(11, 512, 3)
	for r := range ds.Rows {
		if !timeseries.Equal(ds.Rows[r], a.Rows[r], 0) {
			t.Fatal("netflow generation is not deterministic")
		}
	}
}

// TestGoldenValues pins a handful of generated samples at the canonical
// seed: the experiment results in EXPERIMENTS.md are only reproducible if
// the generators stay byte-for-byte stable, so any intentional change to
// them must update these values and regenerate experiments_full.txt.
func TestGoldenValues(t *testing.T) {
	approx := func(got, want float64) bool { return math.Abs(got-want) < 5e-7 }
	w := Weather(42)
	if !approx(w.Rows[0][0], -2.239880) || !approx(w.Rows[0][1], -2.455712) ||
		!approx(w.Rows[5][100], 78.269378) {
		t.Errorf("weather golden values changed: %v %v %v",
			w.Rows[0][0], w.Rows[0][1], w.Rows[5][100])
	}
	p := PhoneCalls(42)
	if p.Rows[0][0] != 116 || p.Rows[1][500] != 6337 || p.Rows[14][1000] != 1875 {
		t.Errorf("phone golden values changed: %v %v %v",
			p.Rows[0][0], p.Rows[1][500], p.Rows[14][1000])
	}
	s := Stocks(42)
	if !approx(s.Rows[0][0], 91.347508) || !approx(s.Rows[9][2047], 24.999278) {
		t.Errorf("stock golden values changed: %v %v", s.Rows[0][0], s.Rows[9][2047])
	}
	nf := NetworkTraffic(42)
	if nf.Rows[0][0] != 19584765 || nf.Rows[7][999] != 2493467 {
		t.Errorf("netflow golden values changed: %v %v", nf.Rows[0][0], nf.Rows[7][999])
	}
}
