package datagen

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"sbr/internal/timeseries"
)

// WriteCSV writes the rows as columns of a CSV table with a header line,
// one sample per record: the layout tools and spreadsheets expect.
func WriteCSV(w io.Writer, labels []string, rows []timeseries.Series) error {
	if len(labels) != len(rows) {
		return fmt.Errorf("datagen: %d labels for %d rows", len(labels), len(rows))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(labels); err != nil {
		return err
	}
	if len(rows) == 0 {
		cw.Flush()
		return cw.Error()
	}
	m := len(rows[0])
	rec := make([]string, len(rows))
	for i := 0; i < m; i++ {
		for j, r := range rows {
			if len(r) != m {
				return fmt.Errorf("datagen: row %d has length %d, want %d", j, len(r), m)
			}
			rec[j] = strconv.FormatFloat(r[i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table written by WriteCSV (or any numeric CSV with a
// header), returning the column labels and one series per column.
func ReadCSV(r io.Reader) (labels []string, rows []timeseries.Series, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("datagen: reading CSV header: %w", err)
	}
	labels = append([]string(nil), header...)
	rows = make([]timeseries.Series, len(labels))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("datagen: reading CSV line %d: %w", line+1, err)
		}
		line++
		if len(rec) != len(labels) {
			return nil, nil, fmt.Errorf("datagen: CSV line %d has %d fields, want %d",
				line, len(rec), len(labels))
		}
		for j, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("datagen: CSV line %d field %d: %w", line, j+1, err)
			}
			rows[j] = append(rows[j], v)
		}
	}
	return labels, rows, nil
}
