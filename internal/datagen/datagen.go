// Package datagen generates the synthetic stand-ins for the paper's three
// evaluation datasets (AT&T phone-call aggregates, University of Washington
// weather station, NYSE trade values) plus the mixed dataset of
// Section 5.1.2. The real datasets are proprietary or no longer published;
// these generators are seeded and deterministic and reproduce the
// statistical structure the SBR algorithm exploits — smooth diurnal and
// seasonal patterns, strong cross-signal correlation within a dataset, and
// heavy-tailed noise. See DESIGN.md §3 for the substitution rationale.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"sbr/internal/timeseries"
)

// Dataset is a named batch source: N full-length rows chopped into
// equal-size files, one file per transmission, matching the experimental
// setup of Section 5.1.
type Dataset struct {
	Name    string
	Labels  []string
	Rows    []timeseries.Series
	FileLen int // M: samples per signal per transmission
	Files   int // number of transmissions
	MBase   int // the paper's base-signal buffer for this dataset
}

// N returns the number of signals.
func (d *Dataset) N() int { return len(d.Rows) }

// File returns batch i: for every signal, the window
// [i·FileLen, (i+1)·FileLen).
func (d *Dataset) File(i int) []timeseries.Series {
	if i < 0 || i >= d.Files {
		panic(fmt.Sprintf("datagen: file %d out of range [0,%d)", i, d.Files))
	}
	out := make([]timeseries.Series, len(d.Rows))
	for r, row := range d.Rows {
		out[r] = row.Window(i*d.FileLen, d.FileLen)
	}
	return out
}

// AllFiles returns every batch in order.
func (d *Dataset) AllFiles() [][]timeseries.Series {
	out := make([][]timeseries.Series, d.Files)
	for i := range out {
		out[i] = d.File(i)
	}
	return out
}

// ar1 is a first-order autoregressive noise source: smooth, mean-reverting
// fluctuations that mimic sensor noise and weather fronts.
type ar1 struct {
	rng   *rand.Rand
	phi   float64
	sigma float64
	state float64
}

func (a *ar1) next() float64 {
	a.state = a.phi*a.state + a.sigma*a.rng.NormFloat64()
	return a.state
}

// Weather builds the weather dataset: the six quantities of the paper's UW
// station feed (air temperature, dewpoint, wind speed, wind peak, solar
// irradiance, relative humidity), 10 files of 4,096 samples each at a
// 15-minute cadence, physically coupled exactly where the real quantities
// are (dewpoint below temperature, humidity anti-correlated with the
// dewpoint depression, peaks above sustained wind).
func Weather(seed int64) *Dataset {
	return weatherSized(seed, 4096, 10)
}

// WeatherSized is Weather with a custom file length and count (Figure 6
// uses 5,120-sample files).
func WeatherSized(seed int64, fileLen, files int) *Dataset {
	return weatherSized(seed, fileLen, files)
}

func weatherSized(seed int64, fileLen, files int) *Dataset {
	w := genWeatherSignals(seed, fileLen*files)
	return &Dataset{
		Name: "weather",
		Labels: []string{
			"air-temp", "dewpoint", "wind-speed", "wind-peak", "solar", "humidity",
		},
		Rows: []timeseries.Series{
			w.airTemp, w.dewpoint, w.windSpeed, w.windPeak, w.solar, w.humidity,
		},
		FileLen: fileLen,
		Files:   files,
		MBase:   3456,
	}
}

type weatherSignals struct {
	airTemp, dewpoint, windSpeed, windPeak, solar, humidity, pressure timeseries.Series
}

func genWeatherSignals(seed int64, n int) weatherSignals {
	rng := rand.New(rand.NewSource(seed))
	var w weatherSignals
	w.airTemp = make(timeseries.Series, n)
	w.dewpoint = make(timeseries.Series, n)
	w.windSpeed = make(timeseries.Series, n)
	w.windPeak = make(timeseries.Series, n)
	w.solar = make(timeseries.Series, n)
	w.humidity = make(timeseries.Series, n)
	w.pressure = make(timeseries.Series, n)

	const stepHours = 0.25 // 15-minute cadence
	tempNoise := &ar1{rng: rng, phi: 0.995, sigma: 0.12}
	depNoise := &ar1{rng: rng, phi: 0.99, sigma: 0.08}
	windNoise := &ar1{rng: rng, phi: 0.97, sigma: 0.35}
	cloudNoise := &ar1{rng: rng, phi: 0.995, sigma: 0.03}
	pressNoise := &ar1{rng: rng, phi: 0.999, sigma: 0.08}

	for i := 0; i < n; i++ {
		h := float64(i) * stepHours
		day := h / 24
		season := math.Sin(2 * math.Pi * (day - 80) / 365.25)
		diurnal := math.Sin(2 * math.Pi * (h - 9) / 24) // peak mid-afternoon

		temp := 11 + 9*season + 6.5*diurnal + tempNoise.next()
		w.airTemp[i] = temp

		// Dewpoint depression: wider in the afternoon, never negative.
		dep := 3.2 + 2.4*math.Max(0, diurnal) + math.Abs(depNoise.next())
		w.dewpoint[i] = temp - dep

		// Relative humidity from the depression (Magnus-style slope
		// ≈ −5 %/°C near the surface), clamped to physical range.
		hum := 96 - 5.2*dep + 2*cloudNoise.next()
		w.humidity[i] = clamp(hum, 5, 100)

		wind := 3.0 + 1.4*math.Max(0, diurnal) + windNoise.next()
		if wind < 0 {
			wind = 0
		}
		w.windSpeed[i] = wind
		gust := 0.0
		if rng.Float64() < 0.08 {
			gust = rng.Float64() * 4
		}
		w.windPeak[i] = wind*1.45 + gust

		// Solar irradiance: clipped diurnal arc scaled by season and a
		// slowly varying cloud factor.
		arc := math.Sin(2 * math.Pi * (h - 6) / 24)
		cloud := clamp(0.78+cloudNoise.state*6, 0.25, 1)
		if arc > 0 {
			w.solar[i] = 880 * (0.75 + 0.25*season) * math.Pow(arc, 1.3) * cloud
		}

		w.pressure[i] = 1013 + 9*pressNoise.next() - 1.1*diurnal
	}
	return w
}

// stateNames are the 15 states of the paper's phone-call dataset, in the
// paper's order.
var stateNames = []string{
	"AZ", "CA", "CO", "CT", "FL", "GA", "IL", "IN",
	"MD", "MN", "MO", "NJ", "NY", "TX", "WA",
}

// stateScale approximates relative long-distance calling volume per state.
var stateScale = map[string]float64{
	"AZ": 1900, "CA": 9400, "CO": 1700, "CT": 1500, "FL": 5200,
	"GA": 2900, "IL": 4200, "IN": 2100, "MD": 2000, "MN": 1800,
	"MO": 2200, "NJ": 3100, "NY": 7800, "TX": 6600, "WA": 2300,
}

// PhoneCalls builds the phone-call dataset: per-minute long-distance call
// counts for 15 states over 10 files of 2,560 minutes each. All states
// share the diurnal/weekly shape of telephone traffic; scales differ by an
// order of magnitude, which is what makes the relative-error comparison of
// Table 3 interesting.
func PhoneCalls(seed int64) *Dataset {
	return phoneSized(seed, 2560, 10)
}

// PhoneCallsSized is PhoneCalls with a custom file length and count
// (Figure 6 uses 2,048-minute files).
func PhoneCallsSized(seed int64, fileLen, files int) *Dataset {
	return phoneSized(seed, fileLen, files)
}

func phoneSized(seed int64, fileLen, files int) *Dataset {
	n := fileLen * files
	rng := rand.New(rand.NewSource(seed))
	rows := make([]timeseries.Series, len(stateNames))
	for s, name := range stateNames {
		rows[s] = genPhoneState(rng, stateScale[name], n)
	}
	return &Dataset{
		Name:    "phone",
		Labels:  append([]string(nil), stateNames...),
		Rows:    rows,
		FileLen: fileLen,
		Files:   files,
		MBase:   2048,
	}
}

func genPhoneState(rng *rand.Rand, scale float64, n int) timeseries.Series {
	out := make(timeseries.Series, n)
	drift := &ar1{rng: rng, phi: 0.999, sigma: 0.002}
	for i := 0; i < n; i++ {
		minute := float64(i)
		hour := math.Mod(minute/60, 24)
		day := int(minute / (60 * 24))
		weekday := day % 7

		// Two-peak business-hours profile over a low overnight floor.
		profile := 0.06 +
			0.85*gaussianBump(hour, 10.5, 2.4) +
			0.75*gaussianBump(hour, 15.5, 2.6) +
			0.25*gaussianBump(hour, 20, 1.8)
		if weekday >= 5 {
			profile *= 0.55 // weekend dip
		}
		mean := scale * profile * (1 + drift.next())
		if mean < 0 {
			mean = 0
		}
		// Poisson-like dispersion: variance proportional to the mean.
		v := mean + math.Sqrt(mean+1)*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		out[i] = math.Round(v)
	}
	return out
}

func gaussianBump(x, center, width float64) float64 {
	d := (x - center) / width
	return math.Exp(-d * d / 2)
}

// tickerNames are the ten stocks the paper extracted from the NYSE feed.
var tickerNames = []string{
	"MSFT", "ORCL", "INTC", "DELL", "YHOO",
	"NOK", "CSCO", "WCOM", "ARBA", "LGTO",
}

// Stocks builds the stock dataset: trade values of ten tickers over 10
// files of 2,048 trades each. A shared market factor induces the pairwise
// correlation of April-2000 tech stocks; per-ticker volatility adds the
// idiosyncratic component. Random walks have few repeating features, which
// reproduces the paper's observation that the stock dataset inserts the
// fewest base intervals (Table 6).
func Stocks(seed int64) *Dataset {
	return stocksSized(seed, 2048, 10)
}

// StocksSized is Stocks with a custom file length and count (Figure 5
// varies n; Figure 6 uses 3,072-trade files).
func StocksSized(seed int64, fileLen, files int) *Dataset {
	return stocksSized(seed, fileLen, files)
}

func stocksSized(seed int64, fileLen, files int) *Dataset {
	n := fileLen * files
	rng := rand.New(rand.NewSource(seed))
	prices := []float64{91, 74, 62, 51, 158, 43, 69, 38, 84, 27}
	vols := []float64{0.0019, 0.0024, 0.0021, 0.0026, 0.0035, 0.0023, 0.0022, 0.0031, 0.0040, 0.0029}

	market := make([]float64, n)
	for i := range market {
		market[i] = rng.NormFloat64()
	}
	rows := make([]timeseries.Series, len(tickerNames))
	for s := range tickerNames {
		row := make(timeseries.Series, n)
		p := prices[s]
		beta := 0.55 + 0.5*rng.Float64()
		for i := 0; i < n; i++ {
			shock := beta*0.0016*market[i] + vols[s]*rng.NormFloat64()
			p *= math.Exp(shock)
			row[i] = p
		}
		rows[s] = row
	}
	return &Dataset{
		Name:    "stock",
		Labels:  append([]string(nil), tickerNames...),
		Rows:    rows,
		FileLen: fileLen,
		Files:   files,
		MBase:   2048,
	}
}

// Mixed builds the reduced-correlation dataset of Section 5.1.2: three
// phone states (AZ, CA, FL), three weather quantities (air temperature,
// pressure, solar irradiance) and three stocks (MSFT, INTC, ORCL), 10 files
// of 2,048 values each.
func Mixed(seed int64) *Dataset {
	return MixedSized(seed, 2048, 10)
}

// MixedSized is Mixed with a custom file length and count.
func MixedSized(seed int64, fileLen, files int) *Dataset {
	n := fileLen * files
	rngPhone := rand.New(rand.NewSource(seed + 1))
	w := genWeatherSignals(seed+2, n)
	stocks := stocksSized(seed+3, fileLen, files)

	rows := []timeseries.Series{
		genPhoneState(rngPhone, stateScale["AZ"], n),
		genPhoneState(rngPhone, stateScale["CA"], n),
		genPhoneState(rngPhone, stateScale["FL"], n),
		w.airTemp,
		w.pressure,
		w.solar,
		stocks.Rows[0],
		stocks.Rows[2],
		stocks.Rows[1],
	}
	return &Dataset{
		Name: "mixed",
		Labels: []string{
			"phone-AZ", "phone-CA", "phone-FL",
			"air-temp", "pressure", "solar",
			"MSFT", "INTC", "ORCL",
		},
		Rows:    rows,
		FileLen: fileLen,
		Files:   files,
		MBase:   2048,
	}
}

// NetworkTraffic builds a dataset for the paper's other named application
// domain (Sections 1 and 6: "historical information … collected in a
// distributed fashion, like network measurements"): per-minute byte counts
// of 8 router interfaces. Traffic shares a strong diurnal shape, pairs of
// interfaces carry the two directions of the same links (heavily
// correlated), and bursts add the heavy tail characteristic of network
// data.
func NetworkTraffic(seed int64) *Dataset {
	return NetworkTrafficSized(seed, 2048, 10)
}

// NetworkTrafficSized is NetworkTraffic with a custom file layout.
func NetworkTrafficSized(seed int64, fileLen, files int) *Dataset {
	n := fileLen * files
	rng := rand.New(rand.NewSource(seed))
	const ifaces = 8
	rows := make([]timeseries.Series, ifaces)
	labels := make([]string, ifaces)

	// Four links; interfaces 2k and 2k+1 are the two directions of link k.
	linkScale := []float64{80e6, 45e6, 20e6, 8e6}
	for link := 0; link < ifaces/2; link++ {
		burst := &ar1{rng: rng, phi: 0.9, sigma: 0.25}
		drift := &ar1{rng: rng, phi: 0.999, sigma: 0.003}
		fwd := make(timeseries.Series, n)
		rev := make(timeseries.Series, n)
		asym := 0.25 + 0.5*rng.Float64() // reverse/forward ratio
		for i := 0; i < n; i++ {
			hour := math.Mod(float64(i)/60, 24)
			day := int(float64(i) / (60 * 24))
			profile := 0.25 +
				0.9*gaussianBump(hour, 14, 4.5) +
				0.5*gaussianBump(hour, 21, 2.5)
			if day%7 >= 5 {
				profile *= 0.7
			}
			level := linkScale[link] * profile * (1 + drift.next())
			b := burst.next()
			if rng.Float64() < 0.004 {
				b += 1.5 + rng.Float64()*2 // flash crowd / backup job
			}
			load := level * math.Exp(b*0.4)
			if load < 0 {
				load = 0
			}
			fwd[i] = math.Round(load)
			rev[i] = math.Round(load*asym + 0.02*level*rng.NormFloat64())
			if rev[i] < 0 {
				rev[i] = 0
			}
		}
		rows[2*link] = fwd
		rows[2*link+1] = rev
		labels[2*link] = fmt.Sprintf("link%d-in", link)
		labels[2*link+1] = fmt.Sprintf("link%d-out", link)
	}
	return &Dataset{
		Name:    "netflow",
		Labels:  labels,
		Rows:    rows,
		FileLen: fileLen,
		Files:   files,
		MBase:   2048,
	}
}

// StockIndexes generates the two correlated market indexes of the paper's
// motivational example (Figures 2 and 3): 128 daily closes of an
// "Industrial" and an "Insurance" index that move together.
func StockIndexes(seed int64) (industrial, insurance timeseries.Series) {
	rng := rand.New(rand.NewSource(seed))
	n := 128
	industrial = make(timeseries.Series, n)
	insurance = make(timeseries.Series, n)
	level := 100.0
	for i := 0; i < n; i++ {
		level *= math.Exp(0.012 * rng.NormFloat64())
		industrial[i] = level
		insurance[i] = 0.62*level + 18 + 1.1*rng.NormFloat64()
	}
	return industrial, insurance
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
