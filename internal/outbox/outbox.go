// Package outbox is the sensor-side write-ahead spill of the survivable
// uplink: every frame a reliable client intends to transmit is made
// durable here first, and acknowledged frames are retired, so a sensor
// process can die at any instant — mid-send, mid-ack, mid-compaction —
// and its successor replays exactly the frames the station has not
// acknowledged. Combined with the station's duplicate detection
// (retransmitted already-accepted frames are re-acked OK and never
// re-logged), the pair delivers every frame exactly once across sensor
// crashes, not just link faults.
//
// The on-disk format follows the segstore framing conventions: a magic
// preamble, then CRC32C-framed blocks
//
//	file   := magic₈ header-block record-block*
//	block  := len₄ crc32c₄ payload            (little endian, crc over payload)
//
// where the first payload byte tags the kind — 'H' header (JSON: sensor
// identity), 'F' frame (uvarint sequence + raw wire frame), 'A' ack
// (uvarint sequence of the retired head frame). Frame appends are
// fsynced before Append returns: the durability point is *before* the
// first transmission. Ack records are appended without fsync — losing
// one to a crash only widens the replay set, and the station's dedup
// absorbs replayed frames for free.
//
// A crash mid-append leaves a torn tail; Open detects it by the framing
// and truncates back to the last whole block. Retired frames accumulate
// as dead weight at the front of the log; once enough have been acked
// the file is compacted — the pending suffix is rewritten to a temporary
// file, fsynced and atomically renamed over the log, so a crash during
// compaction leaves either the old file or the new one, never a mix.
package outbox

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"sbr/internal/obs"
)

// obMagic opens every outbox file.
var obMagic = [8]byte{'S', 'B', 'R', 'O', 'B', 'X', '1', 0}

// Block kind tags (first payload byte).
const (
	blockHeader = 'H'
	blockFrame  = 'F'
	blockAck    = 'A'
	blockNonce  = 'N'
)

// maxBlock bounds block payloads so a corrupt length field cannot drive
// an unbounded allocation.
const maxBlock = 1 << 26

// DefaultCompactEvery is the retired-frame count that triggers a
// compaction when Options leaves it zero.
const DefaultCompactEvery = 64

// castagnoli is the CRC32C polynomial table shared with segstore framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed outbox.
var ErrClosed = errors.New("outbox: closed")

// ErrAckOrder reports an acknowledgement for a sequence that is not the
// head of the pending queue — the transport acks strictly in order, so
// anything else is a protocol violation worth surfacing.
var ErrAckOrder = errors.New("outbox: acknowledgement out of order")

// header is the header block payload (JSON after the kind tag).
type header struct {
	Sensor      string `json:"sensor"`
	CreatedUnix int64  `json:"created_unix"`

	// Nonce is the transport incarnation nonce of the client that owns
	// this outbox (0: not yet stamped). Persisting it means a restarted
	// sensor replays its pending frames as the SAME transport incarnation
	// — which is what lets the station classify a replayed seq-0 frame as
	// a retransmission rather than a reboot.
	Nonce uint64 `json:"nonce,omitempty"`
}

// Frame is one pending (unacknowledged) frame: the wire bytes and the
// sequence the transport acks it by.
type Frame struct {
	Seq   int
	Bytes []byte
}

// Metrics is the outbox telemetry. Build one with NewMetrics; every
// field is a nil-safe obs metric, so the zero value instruments nothing.
type Metrics struct {
	Appended    *obs.Counter // frames made durable
	Acked       *obs.Counter // frames retired by acknowledgement
	Replayed    *obs.Counter // pending frames recovered at open
	Compactions *obs.Counter // prefix compactions performed
	TornTails   *obs.Counter // torn or corrupt tails truncated at open
	Pending     *obs.Gauge   // frames currently pending
	Bytes       *obs.Gauge   // outbox file size
}

// NewMetrics registers the outbox metrics on reg (nil: no-op metrics).
// A process with several outboxes (one per simulated node) shares one
// Metrics: the counters aggregate and the gauges track the fleet total.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Appended:    reg.Counter("sbr_outbox_frames_appended_total", "Frames made durable in the sensor outbox before first transmit."),
		Acked:       reg.Counter("sbr_outbox_frames_acked_total", "Outbox frames retired by a station acknowledgement."),
		Replayed:    reg.Counter("sbr_outbox_frames_replayed_total", "Pending frames recovered from the outbox at open."),
		Compactions: reg.Counter("sbr_outbox_compactions_total", "Outbox prefix compactions performed."),
		TornTails:   reg.Counter("sbr_outbox_torn_tails_total", "Torn or corrupt outbox tails truncated at open."),
		Pending:     reg.Gauge("sbr_outbox_frames_pending", "Frames currently pending in sensor outboxes."),
		Bytes:       reg.Gauge("sbr_outbox_bytes", "Total bytes held by sensor outbox files."),
	}
}

// met returns m or an all-no-op Metrics so call sites skip nil checks.
func (m *Metrics) met() *Metrics {
	if m == nil {
		return &Metrics{}
	}
	return m
}

// Options configures Open. The zero value (plus a path) is usable.
type Options struct {
	// Sensor is the identity recorded in the header of a fresh outbox and
	// verified against an existing one: replaying another sensor's frames
	// would poison that sensor's history at the station.
	Sensor string

	// CompactEvery triggers a prefix compaction once this many frames have
	// been retired since the last one (0: DefaultCompactEvery, negative:
	// never compact automatically).
	CompactEvery int

	// Metrics receives the outbox telemetry (nil: uninstrumented).
	Metrics *Metrics
}

// Outbox is the durable pending-frame queue. Not safe for concurrent
// use: it lives under a ReliableClient, which owns a single radio.
type Outbox struct {
	path    string
	opt     Options
	met     *Metrics
	f       *os.File
	size    int64
	pending []Frame
	nonce   uint64 // persisted transport incarnation nonce (0: unstamped)
	retired int    // frames acked since the last compaction
	closed  bool

	// TornBytes reports how many tail bytes Open truncated (0: clean).
	TornBytes int64
}

// Open opens (creating if needed) the outbox file at path and recovers
// its pending queue: frames appended but not retired by a later ack
// record, in append order, with any torn tail truncated first.
func Open(path string, opt Options) (*Outbox, error) {
	if opt.CompactEvery == 0 {
		opt.CompactEvery = DefaultCompactEvery
	}
	o := &Outbox{path: path, opt: opt, met: opt.Metrics.met()}
	// A temporary file at the compaction name is a crash leftover: the
	// rename never happened, so the original is still the truth.
	os.Remove(path + ".tmp") //nolint:errcheck — best-effort sweep

	fi, err := os.Stat(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if err := o.create(); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("outbox: %w", err)
	default:
		if err := o.recover(fi.Size()); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("outbox: reopening: %w", err)
	}
	if _, err := f.Seek(o.size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("outbox: seeking append point: %w", err)
	}
	o.f = f
	o.met.Replayed.Add(uint64(len(o.pending)))
	o.met.Pending.Add(float64(len(o.pending)))
	o.met.Bytes.Add(float64(o.size))
	return o, nil
}

// create writes a fresh outbox: magic plus header block, fsynced, with
// the directory entry made durable too.
func (o *Outbox) create() error {
	buf, err := encodeHeader(o.opt.Sensor, 0)
	if err != nil {
		return err
	}
	if err := writeFileSync(o.path, buf); err != nil {
		return err
	}
	o.size = int64(len(buf))
	return nil
}

// encodeHeader frames the preamble of an outbox file: magic + header.
func encodeHeader(sensor string, nonce uint64) ([]byte, error) {
	body, err := json.Marshal(header{Sensor: sensor, CreatedUnix: time.Now().Unix(), Nonce: nonce})
	if err != nil {
		return nil, fmt.Errorf("outbox: encoding header: %w", err)
	}
	buf := append([]byte(nil), obMagic[:]...)
	return appendBlock(buf, append([]byte{blockHeader}, body...)), nil
}

// recover scans an existing outbox, truncates any torn tail, and
// rebuilds the pending queue.
func (o *Outbox) recover(size int64) error {
	f, err := os.Open(o.path)
	if err != nil {
		return fmt.Errorf("outbox: %w", err)
	}
	defer f.Close()

	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != obMagic {
		return fmt.Errorf("outbox: %s is not an outbox file", o.path)
	}
	off := int64(len(obMagic))
	payload, err := readBlock(f, size-off)
	if err != nil || len(payload) == 0 || payload[0] != blockHeader {
		return fmt.Errorf("outbox: unreadable header in %s", o.path)
	}
	var h header
	if err := json.Unmarshal(payload[1:], &h); err != nil {
		return fmt.Errorf("outbox: decoding header: %w", err)
	}
	if o.opt.Sensor != "" && h.Sensor != "" && h.Sensor != o.opt.Sensor {
		return fmt.Errorf("outbox: %s belongs to sensor %q, not %q", o.path, h.Sensor, o.opt.Sensor)
	}
	o.nonce = h.Nonce
	off += int64(8 + len(payload))
	good := off

	for {
		payload, err := readBlock(f, size-off)
		if err != nil { // io.EOF (clean end) or a torn tail: stop either way
			break
		}
		if len(payload) == 0 {
			break
		}
		switch payload[0] {
		case blockFrame:
			seq, frame, err := decodeFrame(payload)
			if err != nil {
				goto done
			}
			o.pending = append(o.pending, Frame{Seq: seq, Bytes: frame})
		case blockAck:
			seq, err := binary.Uvarint(payload[1:])
			if err <= 0 || len(o.pending) == 0 || o.pending[0].Seq != int(seq) {
				// An ack that retires nothing is indistinguishable from
				// corruption with a lucky CRC: cut the tail here.
				goto done
			}
			o.pending = o.pending[1:]
			o.retired++
		case blockNonce:
			if len(payload) != 9 {
				goto done
			}
			o.nonce = binary.LittleEndian.Uint64(payload[1:])
		default:
			goto done
		}
		off += int64(8 + len(payload))
		good = off
	}
done:
	if good < size {
		o.TornBytes = size - good
		if err := truncateSync(o.path, good); err != nil {
			return err
		}
		o.met.TornTails.Inc()
	}
	o.size = good
	return nil
}

// decodeFrame parses a frame block payload (after the kind tag).
func decodeFrame(payload []byte) (seq int, frame []byte, err error) {
	s, n := binary.Uvarint(payload[1:])
	if n <= 0 {
		return 0, nil, errors.New("outbox: bad frame sequence")
	}
	frame = append([]byte(nil), payload[1+n:]...)
	if len(frame) == 0 {
		return 0, nil, errors.New("outbox: empty frame record")
	}
	return int(s), frame, nil
}

// Nonce returns the persisted transport incarnation nonce (0: none yet).
// A reliable client reuses it so a post-crash replay speaks as the same
// incarnation the station already knows.
func (o *Outbox) Nonce() uint64 { return o.nonce }

// SetNonce stamps the outbox with the owning client's incarnation nonce,
// durably. Called once, when a fresh outbox meets its first client.
func (o *Outbox) SetNonce(nonce uint64) error {
	if o.closed {
		return ErrClosed
	}
	payload := make([]byte, 9)
	payload[0] = blockNonce
	binary.LittleEndian.PutUint64(payload[1:], nonce)
	block := appendBlock(nil, payload)
	if _, err := o.f.Write(block); err != nil {
		return fmt.Errorf("outbox: nonce: %w", err)
	}
	if err := o.f.Sync(); err != nil {
		return fmt.Errorf("outbox: fsync: %w", err)
	}
	o.size += int64(len(block))
	o.nonce = nonce
	o.met.Bytes.Add(float64(len(block)))
	return nil
}

// Append makes one frame durable under its transport sequence. It
// returns only after the bytes and their framing are fsynced — the
// caller may then transmit knowing a crash cannot lose the frame.
func (o *Outbox) Append(seq int, frame []byte) error {
	if o.closed {
		return ErrClosed
	}
	payload := make([]byte, 0, 1+binary.MaxVarintLen64+len(frame))
	payload = append(payload, blockFrame)
	payload = binary.AppendUvarint(payload, uint64(seq))
	payload = append(payload, frame...)
	block := appendBlock(nil, payload)
	if _, err := o.f.Write(block); err != nil {
		return fmt.Errorf("outbox: append: %w", err)
	}
	if err := o.f.Sync(); err != nil {
		return fmt.Errorf("outbox: fsync: %w", err)
	}
	o.size += int64(len(block))
	o.pending = append(o.pending, Frame{Seq: seq, Bytes: append([]byte(nil), frame...)})
	o.met.Appended.Inc()
	o.met.Pending.Add(1)
	o.met.Bytes.Add(float64(len(block)))
	return nil
}

// Ack retires the head pending frame. The transport acknowledges
// strictly in order, so seq must match the head. The ack record is not
// fsynced: losing it to a crash merely re-replays a frame the station
// deduplicates. Once enough frames have been retired the log compacts.
func (o *Outbox) Ack(seq int) error {
	if o.closed {
		return ErrClosed
	}
	if len(o.pending) == 0 || o.pending[0].Seq != seq {
		return fmt.Errorf("%w: seq %d", ErrAckOrder, seq)
	}
	payload := make([]byte, 0, 1+binary.MaxVarintLen64)
	payload = append(payload, blockAck)
	payload = binary.AppendUvarint(payload, uint64(seq))
	block := appendBlock(nil, payload)
	if _, err := o.f.Write(block); err != nil {
		return fmt.Errorf("outbox: ack: %w", err)
	}
	o.size += int64(len(block))
	o.pending[0].Bytes = nil
	o.pending = o.pending[1:]
	o.retired++
	o.met.Acked.Inc()
	o.met.Pending.Add(-1)
	o.met.Bytes.Add(float64(len(block)))
	if o.opt.CompactEvery > 0 && o.retired >= o.opt.CompactEvery {
		return o.Compact()
	}
	return nil
}

// Compact rewrites the log to just its header and pending frames,
// dropping the retired prefix and its ack records. The replacement is
// fsynced and atomically renamed over the old file, so a crash at any
// point leaves a complete log.
func (o *Outbox) Compact() error {
	if o.closed {
		return ErrClosed
	}
	buf, err := encodeHeader(o.opt.Sensor, o.nonce)
	if err != nil {
		return err
	}
	for _, p := range o.pending {
		payload := make([]byte, 0, 1+binary.MaxVarintLen64+len(p.Bytes))
		payload = append(payload, blockFrame)
		payload = binary.AppendUvarint(payload, uint64(p.Seq))
		payload = append(payload, p.Bytes...)
		buf = appendBlock(buf, payload)
	}
	tmp := o.path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, o.path); err != nil {
		return fmt.Errorf("outbox: installing compacted log: %w", err)
	}
	if err := syncDir(filepath.Dir(o.path)); err != nil {
		return err
	}
	f, err := os.OpenFile(o.path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("outbox: reopening compacted log: %w", err)
	}
	if _, err := f.Seek(int64(len(buf)), io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("outbox: seeking compacted log: %w", err)
	}
	o.f.Close()
	o.f = f
	o.met.Bytes.Add(float64(int64(len(buf)) - o.size))
	o.size = int64(len(buf))
	o.retired = 0
	o.met.Compactions.Inc()
	return nil
}

// Pending returns the frames awaiting acknowledgement, oldest first.
// The slices alias the outbox's copies; callers must not mutate them.
func (o *Outbox) Pending() []Frame {
	out := make([]Frame, len(o.pending))
	copy(out, o.pending)
	return out
}

// PendingCount reports how many frames await acknowledgement.
func (o *Outbox) PendingCount() int { return len(o.pending) }

// Size reports the current log file size in bytes.
func (o *Outbox) Size() int64 { return o.size }

// Close closes the file handle. Pending frames stay durable on disk for
// the next incarnation; Close never discards anything.
func (o *Outbox) Close() error {
	if o.closed {
		return nil
	}
	o.closed = true
	o.met.Pending.Add(-float64(len(o.pending)))
	o.met.Bytes.Add(-float64(o.size))
	return o.f.Close()
}

// appendBlock frames payload and appends it to buf (segstore framing).
func appendBlock(buf []byte, payload []byte) []byte {
	var head [8]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, head[:]...)
	return append(buf, payload...)
}

// errTorn reports a block that cannot be completed from the remaining
// bytes: a torn or corrupt tail, recoverable by truncation.
var errTorn = errors.New("outbox: torn or corrupt block")

// readBlock reads one framed block from r. It returns errTorn for any
// shape of incomplete or corrupt block, io.EOF only at a clean boundary.
func readBlock(r io.Reader, avail int64) ([]byte, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTorn
	}
	n := binary.LittleEndian.Uint32(head[0:4])
	if n > maxBlock || int64(n) > avail-8 {
		return nil, errTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTorn
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(head[4:8]) {
		return nil, errTorn
	}
	return payload, nil
}

// writeFileSync writes data to path (truncating), fsyncs the file and
// its directory entry.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("outbox: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("outbox: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("outbox: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("outbox: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// truncateSync truncates path to size and fsyncs it.
func truncateSync(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("outbox: truncating torn tail: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("outbox: truncating torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("outbox: fsync after truncate: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a fresh or renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("outbox: syncing dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("outbox: syncing dir: %w", err)
	}
	return nil
}
