package outbox

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sbr/internal/obs"
)

func tempBox(t *testing.T, opt Options) (*Outbox, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "node.outbox")
	o, err := Open(path, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return o, path
}

func frameBytes(i int) []byte {
	return []byte(fmt.Sprintf("frame-%04d-payload", i))
}

func TestAppendAckRoundtrip(t *testing.T) {
	o, _ := tempBox(t, Options{Sensor: "node-00"})
	defer o.Close()

	for i := 0; i < 5; i++ {
		if err := o.Append(i, frameBytes(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if got := o.PendingCount(); got != 5 {
		t.Fatalf("pending = %d, want 5", got)
	}
	if err := o.Ack(0); err != nil {
		t.Fatalf("Ack(0): %v", err)
	}
	if err := o.Ack(1); err != nil {
		t.Fatalf("Ack(1): %v", err)
	}
	p := o.Pending()
	if len(p) != 3 || p[0].Seq != 2 || !bytes.Equal(p[0].Bytes, frameBytes(2)) {
		t.Fatalf("pending after acks = %+v", p)
	}
	// Out-of-order ack is a protocol violation.
	if err := o.Ack(4); !errors.Is(err, ErrAckOrder) {
		t.Fatalf("Ack(4) = %v, want ErrAckOrder", err)
	}
}

func TestReopenReplaysPending(t *testing.T) {
	o, path := tempBox(t, Options{Sensor: "node-00"})
	for i := 0; i < 8; i++ {
		if err := o.Append(i, frameBytes(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := o.Ack(i); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Close, just drop the handle and reopen.
	o.f.Close()

	re, err := Open(path, Options{Sensor: "node-00"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	p := re.Pending()
	if len(p) != 5 {
		t.Fatalf("replayed %d frames, want 5", len(p))
	}
	for i, f := range p {
		want := i + 3
		if f.Seq != want || !bytes.Equal(f.Bytes, frameBytes(want)) {
			t.Fatalf("pending[%d] = seq %d (%q), want seq %d", i, f.Seq, f.Bytes, want)
		}
	}
	if re.TornBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes", re.TornBytes)
	}
}

func TestSensorMismatchRejected(t *testing.T) {
	o, path := tempBox(t, Options{Sensor: "node-00"})
	o.Close()
	if _, err := Open(path, Options{Sensor: "node-99"}); err == nil {
		t.Fatal("Open with mismatched sensor id succeeded")
	}
	// Same id and empty id are both fine.
	for _, id := range []string{"node-00", ""} {
		re, err := Open(path, Options{Sensor: id})
		if err != nil {
			t.Fatalf("Open(%q): %v", id, err)
		}
		re.Close()
	}
}

// TestTornTailSweep truncates the log at every byte offset past the
// header and verifies each prefix reopens to a coherent pending queue —
// some durable prefix of the appended frames, never garbage.
func TestTornTailSweep(t *testing.T) {
	o, path := tempBox(t, Options{Sensor: "node-00"})
	for i := 0; i < 4; i++ {
		if err := o.Append(i, frameBytes(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Ack(0); err != nil {
		t.Fatal(err)
	}
	o.f.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cuts inside the header block cannot happen in practice: create()
	// fsyncs magic+header before Open ever returns. Sweep from the first
	// record boundary onward.
	hlen := int64(binary.LittleEndian.Uint32(whole[len(obMagic):]))
	headerEnd := int64(len(obMagic)) + 8 + hlen
	for cut := int64(len(whole)); cut > headerEnd; cut-- {
		dir := t.TempDir()
		p := filepath.Join(dir, "cut.outbox")
		if err := os.WriteFile(p, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(p, Options{Sensor: "node-00"})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		p2 := re.Pending()
		// The queue must be a contiguous run of the original frames with
		// every payload intact.
		for i, f := range p2 {
			want := p2[0].Seq + i
			if f.Seq != want || !bytes.Equal(f.Bytes, frameBytes(want)) {
				t.Fatalf("cut=%d: pending[%d] = seq %d, want %d", cut, i, f.Seq, want)
			}
		}
		if len(p2) > 4 {
			t.Fatalf("cut=%d: %d pending frames from 4 appends", cut, len(p2))
		}
		// Whatever survived must itself reopen cleanly (truncation was durable).
		re.Close()
		re2, err := Open(p, Options{})
		if err != nil {
			t.Fatalf("cut=%d: second reopen: %v", cut, err)
		}
		if re2.TornBytes != 0 {
			t.Fatalf("cut=%d: second reopen still torn (%d bytes)", cut, re2.TornBytes)
		}
		re2.Close()
	}
}

func TestCorruptTailTruncated(t *testing.T) {
	o, path := tempBox(t, Options{Sensor: "node-00"})
	for i := 0; i < 3; i++ {
		if err := o.Append(i, frameBytes(i)); err != nil {
			t.Fatal(err)
		}
	}
	o.f.Close()
	// Flip a byte inside the last frame's payload: CRC mismatch → torn.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, Options{Sensor: "node-00"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.TornBytes == 0 {
		t.Fatal("corrupt tail not reported torn")
	}
	if got := re.PendingCount(); got != 2 {
		t.Fatalf("pending = %d, want 2 (corrupt third frame dropped)", got)
	}
}

func TestCompaction(t *testing.T) {
	met := NewMetrics(obs.NewRegistry())
	o, path := tempBox(t, Options{Sensor: "node-00", CompactEvery: 4, Metrics: met})
	defer o.Close()

	for i := 0; i < 10; i++ {
		if err := o.Append(i, frameBytes(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := o.Size()
	for i := 0; i < 6; i++ {
		if err := o.Ack(i); err != nil {
			t.Fatal(err)
		}
	}
	if met.Compactions.Value() != 1 {
		t.Fatalf("compactions = %d, want 1", met.Compactions.Value())
	}
	if o.Size() >= before {
		t.Fatalf("size did not shrink: %d -> %d", before, o.Size())
	}
	// The compacted log still appends and survives reopen.
	if err := o.Append(10, frameBytes(10)); err != nil {
		t.Fatal(err)
	}
	o.f.Close()
	re, err := Open(path, Options{Sensor: "node-00"})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer re.Close()
	p := re.Pending()
	if len(p) != 5 || p[0].Seq != 6 || p[4].Seq != 10 {
		t.Fatalf("pending after compaction reopen = %+v", p)
	}
}

func TestCompactionLeftoverSwept(t *testing.T) {
	o, path := tempBox(t, Options{Sensor: "node-00"})
	if err := o.Append(0, frameBytes(0)); err != nil {
		t.Fatal(err)
	}
	o.Close()
	// Simulate a crash mid-compaction: a stray tmp file next to the log.
	if err := os.WriteFile(path+".tmp", []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, Options{Sensor: "node-00"})
	if err != nil {
		t.Fatalf("reopen with tmp leftover: %v", err)
	}
	defer re.Close()
	if re.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1", re.PendingCount())
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("compaction leftover not swept")
	}
}

func TestNoncePersistence(t *testing.T) {
	o, path := tempBox(t, Options{Sensor: "node-00", CompactEvery: 2})
	if o.Nonce() != 0 {
		t.Fatalf("fresh outbox nonce = %d, want 0", o.Nonce())
	}
	if err := o.SetNonce(0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := o.Append(i, frameBytes(i)); err != nil {
			t.Fatal(err)
		}
	}
	o.f.Close() // crash

	re, err := Open(path, Options{Sensor: "node-00", CompactEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if re.Nonce() != 0xdeadbeef {
		t.Fatalf("nonce after reopen = %#x, want 0xdeadbeef", re.Nonce())
	}
	// The nonce survives compaction (it moves into the rewritten header).
	for i := 0; i < 2; i++ {
		if err := re.Ack(i); err != nil {
			t.Fatal(err)
		}
	}
	re.Close()
	re2, err := Open(path, Options{Sensor: "node-00"})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Nonce() != 0xdeadbeef {
		t.Fatalf("nonce after compaction reopen = %#x, want 0xdeadbeef", re2.Nonce())
	}
}

func TestClosedOps(t *testing.T) {
	o, _ := tempBox(t, Options{})
	if err := o.Append(0, frameBytes(0)); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := o.Append(1, frameBytes(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := o.Ack(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ack after Close = %v, want ErrClosed", err)
	}
}

func TestMetricsAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	o, path := tempBox(t, Options{Sensor: "node-00", Metrics: met})
	for i := 0; i < 4; i++ {
		if err := o.Append(i, frameBytes(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Ack(0); err != nil {
		t.Fatal(err)
	}
	if met.Appended.Value() != 4 || met.Acked.Value() != 1 {
		t.Fatalf("appended=%d acked=%d", met.Appended.Value(), met.Acked.Value())
	}
	if got := met.Pending.Value(); got != 3 {
		t.Fatalf("pending gauge = %v, want 3", got)
	}
	o.Close()
	if got := met.Pending.Value(); got != 0 {
		t.Fatalf("pending gauge after close = %v, want 0", got)
	}
	re, err := Open(path, Options{Sensor: "node-00", Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if met.Replayed.Value() != 3 {
		t.Fatalf("replayed = %d, want 3", met.Replayed.Value())
	}
}
