package base

import (
	"math"

	"sbr/internal/svd"
	"sbr/internal/timeseries"
)

// GetBaseSVD builds an alternative base signal from the top-maxIns right
// singular vectors of the K×W matrix whose rows are the CBIs, per the
// paper's Appendix: each eigenvector of RᵀR captures a dominant linear
// trend among the data windows. The returned intervals have width w and are
// ordered by decreasing eigenvalue.
func GetBaseSVD(rows []timeseries.Series, w, maxIns int) []timeseries.Series {
	cands := Candidates(rows, w)
	if len(cands) == 0 || maxIns <= 0 {
		return nil
	}
	r := make([][]float64, len(cands))
	for i, c := range cands {
		r[i] = c.Data
	}
	vecs := svd.RightSingularVectors(r, maxIns)
	out := make([]timeseries.Series, len(vecs))
	for i, v := range vecs {
		out[i] = timeseries.Series(v)
	}
	return out
}

// GetBaseDCT builds the fixed cosine base of the Appendix: for each
// frequency f in [0, maxIns) one interval of width w with values
// cos((2i+1)·π·f / (2w)). These intervals are computable on the fly at both
// ends, so they cost no bandwidth and no sensor memory; callers account for
// that when comparing methods (Section 5.2).
func GetBaseDCT(w, maxIns int) []timeseries.Series {
	if w <= 0 || maxIns <= 0 {
		return nil
	}
	if maxIns > w+1 {
		maxIns = w + 1 // the paper enumerates 0 <= f <= W
	}
	out := make([]timeseries.Series, maxIns)
	for f := 0; f < maxIns; f++ {
		iv := make(timeseries.Series, w)
		for i := 0; i < w; i++ {
			iv[i] = math.Cos(float64(2*i+1) * math.Pi * float64(f) / float64(2*w))
		}
		out[f] = iv
	}
	return out
}
