package base

import (
	"math"
	"math/rand"
	"testing"

	"sbr/internal/metrics"
	"sbr/internal/regression"
	"sbr/internal/timeseries"
)

func sseFitter() regression.Fitter { return regression.Fitter{Kind: metrics.SSE} }

func randSeries(rng *rand.Rand, n int) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 10
	}
	return s
}

func TestCandidates(t *testing.T) {
	rows := []timeseries.Series{
		{1, 2, 3, 4, 5, 6},
		{7, 8, 9, 10, 11, 12},
	}
	cands := Candidates(rows, 3)
	if len(cands) != 4 {
		t.Fatalf("%d candidates, want 4", len(cands))
	}
	if cands[0].Row != 0 || cands[0].Index != 0 || !timeseries.Equal(cands[0].Data, timeseries.Series{1, 2, 3}, 0) {
		t.Errorf("candidate 0 = %+v", cands[0])
	}
	if cands[3].Row != 1 || cands[3].Index != 1 || !timeseries.Equal(cands[3].Data, timeseries.Series{10, 11, 12}, 0) {
		t.Errorf("candidate 3 = %+v", cands[3])
	}
}

func TestCandidatesDropRemainder(t *testing.T) {
	rows := []timeseries.Series{{1, 2, 3, 4, 5}}
	cands := Candidates(rows, 2)
	if len(cands) != 2 {
		t.Errorf("%d candidates, want 2 (remainder dropped)", len(cands))
	}
}

// TestGetBaseFigure4Semantics verifies the benefit-adjustment behaviour of
// Figure 4: after the most beneficial CBI is stored, a CBI whose initial
// benefit was lower can overtake one whose benefit came from data the
// stored CBI already covers.
func TestGetBaseFigure4Semantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := 16
	// Feature A: a distinctive shape appearing in rows 0 and 1 (shared).
	shapeA := randSeries(rng, w)
	// Feature B: a second distinctive shape appearing once.
	shapeB := randSeries(rng, w)
	// Near-duplicate of A (so it has a high initial benefit that the
	// adjustment must cancel once A is selected).
	shapeA2 := shapeA.Clone()
	for i := range shapeA2 {
		shapeA2[i] = 1.4*shapeA2[i] + 2 + 0.01*rng.NormFloat64()
	}
	rows := []timeseries.Series{
		timeseries.Concat(shapeA, shapeA2),
		timeseries.Concat(shapeA.Clone().Scale(2), shapeB),
	}
	selected := GetBase(rows, w, 2, sseFitter())
	if len(selected) != 2 {
		t.Fatalf("selected %d CBIs, want 2", len(selected))
	}
	// One of the A variants first, then B — not both A variants.
	isA := func(c Candidate) bool {
		f := regression.SSE(shapeA, c.Data, 0, 0, w)
		return f.Err < 1e-2
	}
	if !isA(selected[0]) {
		t.Errorf("first pick is not the shared feature A: %+v", selected[0])
	}
	if isA(selected[1]) {
		t.Errorf("second pick duplicates feature A instead of covering B: %+v", selected[1])
	}
}

func TestGetBaseSelectsSharedFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := 8
	feature := randSeries(rng, w)
	// Three rows, each containing an affine image of the feature plus a
	// purely linear filler window (no benefit over the ramp).
	mkRow := func(a, b float64) timeseries.Series {
		img := feature.Clone().Scale(a).Shift(b)
		filler := make(timeseries.Series, w)
		for i := range filler {
			filler[i] = float64(i)
		}
		return timeseries.Concat(img, filler)
	}
	rows := []timeseries.Series{mkRow(1, 0), mkRow(2, 3), mkRow(-1, 5)}
	selected := GetBase(rows, w, 1, sseFitter())
	if len(selected) != 1 {
		t.Fatalf("selected %d CBIs, want 1", len(selected))
	}
	fit := regression.SSE(feature, selected[0].Data, 0, 0, w)
	if fit.Err > 1e-6 {
		t.Errorf("selected CBI is not an affine image of the shared feature (err %v)", fit.Err)
	}
}

func TestGetBaseLowMemMatchesGetBase(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows := []timeseries.Series{randSeries(rng, 64), randSeries(rng, 64), randSeries(rng, 64)}
	w := 8
	full := GetBase(rows, w, 5, sseFitter())
	low := GetBaseLowMem(rows, w, 5, sseFitter())
	if len(full) != len(low) {
		t.Fatalf("selection sizes differ: %d vs %d", len(full), len(low))
	}
	for i := range full {
		if full[i].Row != low[i].Row || full[i].Index != low[i].Index {
			t.Errorf("pick %d differs: full=(%d,%d) low=(%d,%d)",
				i, full[i].Row, full[i].Index, low[i].Row, low[i].Index)
		}
	}
}

func TestGetBaseEdgeCases(t *testing.T) {
	if got := GetBase(nil, 4, 3, sseFitter()); got != nil {
		t.Errorf("empty rows gave %v", got)
	}
	rows := []timeseries.Series{{1, 2, 3, 4}}
	if got := GetBase(rows, 4, 0, sseFitter()); got != nil {
		t.Errorf("maxIns=0 gave %v", got)
	}
	// maxIns larger than the dictionary clamps.
	got := GetBase(rows, 2, 10, sseFitter())
	if len(got) > 2 {
		t.Errorf("selected %d CBIs from a 2-CBI dictionary", len(got))
	}
}

func TestSignals(t *testing.T) {
	cands := []Candidate{{Data: timeseries.Series{1}}, {Data: timeseries.Series{2}}}
	sigs := Signals(cands)
	if len(sigs) != 2 || sigs[0][0] != 1 || sigs[1][0] != 2 {
		t.Errorf("Signals = %v", sigs)
	}
}

func TestGetBaseDCT(t *testing.T) {
	w := 8
	ivs := GetBaseDCT(w, 3)
	if len(ivs) != 3 {
		t.Fatalf("%d intervals, want 3", len(ivs))
	}
	// f=0 is the constant 1 interval.
	for _, v := range ivs[0] {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("f=0 interval not constant 1: %v", ivs[0])
			break
		}
	}
	// Spot-check f=1: cos((2i+1)π/16).
	for i, v := range ivs[1] {
		want := math.Cos(float64(2*i+1) * math.Pi / 16)
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("f=1[%d] = %v, want %v", i, v, want)
		}
	}
	// Frequencies are capped at W+1.
	if got := GetBaseDCT(4, 100); len(got) != 5 {
		t.Errorf("%d intervals, want cap at W+1=5", len(got))
	}
	if got := GetBaseDCT(0, 3); got != nil {
		t.Errorf("w=0 gave %v", got)
	}
}

func TestGetBaseSVDCapturesDominantDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	w := 8
	dir := randSeries(rng, w)
	var norm float64
	for _, v := range dir {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	for i := range dir {
		dir[i] /= norm
	}
	// Rows = random multiples of dir plus tiny noise.
	var windows []timeseries.Series
	for k := 0; k < 6; k++ {
		win := dir.Clone().Scale(rng.NormFloat64() * 10)
		for i := range win {
			win[i] += 0.001 * rng.NormFloat64()
		}
		windows = append(windows, win)
	}
	rows := []timeseries.Series{timeseries.Concat(windows[:3]...), timeseries.Concat(windows[3:]...)}
	got := GetBaseSVD(rows, w, 1)
	if len(got) != 1 {
		t.Fatalf("%d vectors, want 1", len(got))
	}
	// The top right-singular vector must be ±dir.
	var dot float64
	for i := range dir {
		dot += dir[i] * got[0][i]
	}
	if math.Abs(math.Abs(dot)-1) > 1e-3 {
		t.Errorf("top singular vector misaligned with the dominant direction: |dot|=%v", math.Abs(dot))
	}
}

func TestGetBaseSVDEdgeCases(t *testing.T) {
	if got := GetBaseSVD(nil, 4, 2); got != nil {
		t.Errorf("empty rows gave %v", got)
	}
	if got := GetBaseSVD([]timeseries.Series{{1, 2, 3, 4}}, 4, 0); got != nil {
		t.Errorf("maxIns=0 gave %v", got)
	}
}

func TestGetBaseNoAdjustPicksDuplicates(t *testing.T) {
	// Construct data where one dominant feature appears (affinely) in many
	// windows and a second, weaker feature appears once. The adjusted
	// GetBase must cover both; the no-adjust ablation must pick two copies
	// of the dominant feature.
	rng := rand.New(rand.NewSource(21))
	w := 16
	dominant := randSeries(rng, w)
	weak := randSeries(rng, w).Scale(0.5)
	rows := []timeseries.Series{
		timeseries.Concat(dominant, dominant.Clone().Scale(2).Shift(1)),
		timeseries.Concat(dominant.Clone().Scale(-1), weak),
	}
	fitter := sseFitter()
	matches := func(c Candidate, f timeseries.Series) bool {
		return regression.SSE(f, c.Data, 0, 0, w).Err < 1e-6
	}

	adjusted := GetBase(rows, w, 2, fitter)
	var adjCoversWeak bool
	for _, c := range adjusted {
		if matches(c, weak) {
			adjCoversWeak = true
		}
	}
	if !adjCoversWeak {
		t.Errorf("adjusted GetBase did not cover the weak feature")
	}

	naive := GetBaseNoAdjust(rows, w, 2, fitter)
	var naiveDominant int
	for _, c := range naive {
		if matches(c, dominant) {
			naiveDominant++
		}
	}
	if naiveDominant != 2 {
		t.Errorf("no-adjust ablation picked %d dominant copies, want 2 (the failure mode)", naiveDominant)
	}
}

func TestGetBaseNoAdjustEdgeCases(t *testing.T) {
	if got := GetBaseNoAdjust(nil, 4, 2, sseFitter()); got != nil {
		t.Errorf("empty rows gave %v", got)
	}
	rows := []timeseries.Series{{1, 2, 3, 4}}
	if got := GetBaseNoAdjust(rows, 4, 0, sseFitter()); got != nil {
		t.Errorf("maxIns=0 gave %v", got)
	}
	if got := GetBaseNoAdjust(rows, 2, 10, sseFitter()); len(got) > 2 {
		t.Errorf("selected %d CBIs from a 2-CBI dictionary", len(got))
	}
}

// TestFigure4ExactNumbers replays the paper's Figure-4 worked example with
// its literal benefit matrix: the greedy must pick CBI 1 (total benefit
// 2.45) and then CBI 3 (adjusted benefit 0.50 over CBI 2's 0.10), even
// though CBI 2's initial benefit (2.35) exceeded CBI 3's (2.25).
func TestFigure4ExactNumbers(t *testing.T) {
	benefit := [3][3]float64{
		{1, 0.95, 0.50},
		{0.8, 1, 0.55},
		{0.6, 0.65, 1},
	}
	// Normalise LinearErr(j) = 1; err(i→j) = 1 − benefit[i][j]. Run the
	// same greedy GetBase uses.
	bestErr := [3]float64{1, 1, 1}
	taken := [3]bool{}
	var picks []int
	var benefits []float64
	for pick := 0; pick < 2; pick++ {
		bestIdx, bestBen := -1, 0.0
		for i := 0; i < 3; i++ {
			if taken[i] {
				continue
			}
			var ben float64
			for j := 0; j < 3; j++ {
				if gain := bestErr[j] - (1 - benefit[i][j]); gain > 0 {
					ben += gain
				}
			}
			if bestIdx == -1 || ben > bestBen {
				bestIdx, bestBen = i, ben
			}
		}
		picks = append(picks, bestIdx+1)
		benefits = append(benefits, bestBen)
		taken[bestIdx] = true
		for j := 0; j < 3; j++ {
			if e := 1 - benefit[bestIdx][j]; e < bestErr[j] {
				bestErr[j] = e
			}
		}
	}
	if picks[0] != 1 || picks[1] != 3 {
		t.Errorf("picks = %v, want [1 3] (the paper's Figure 4)", picks)
	}
	if math.Abs(benefits[0]-2.45) > 1e-12 || math.Abs(benefits[1]-0.50) > 1e-12 {
		t.Errorf("benefits = %v, want [2.45 0.50]", benefits)
	}
}
