package base

import (
	"fmt"

	"sbr/internal/timeseries"
)

// Pool is the sensor's bounded buffer of base intervals (size M_base,
// Section 3.3). It tracks how frequently transmitted interval records map
// onto each stored base interval and applies the Least Frequently Used
// replacement policy of Algorithm 5 when an update overflows the buffer.
// The base station maintains an identical replica by applying the
// placements shipped with every transmission.
type Pool struct {
	w            int
	maxIntervals int
	slots        []timeseries.Series
	freq         []uint64
}

// Placement records where an inserted base interval ultimately landed:
// either appended (Slot == previous size) or replacing an evicted slot.
// Placements are part of every transmission ("their offsets in the base
// signal", Algorithm 5 line 15).
type Placement struct {
	Slot int
}

// NewPool creates a pool of capacity mbase values holding intervals of
// width w. mbase is rounded down to a whole number of intervals.
func NewPool(mbase, w int) *Pool {
	if w <= 0 {
		panic("base: non-positive interval width")
	}
	return &Pool{w: w, maxIntervals: mbase / w}
}

// W returns the interval width.
func (p *Pool) W() int { return p.w }

// MaxIntervals returns the capacity in intervals (M_base / W).
func (p *Pool) MaxIntervals() int { return p.maxIntervals }

// NumIntervals returns the number of stored intervals.
func (p *Pool) NumIntervals() int { return len(p.slots) }

// Size returns the current base-signal length in values.
func (p *Pool) Size() int { return len(p.slots) * p.w }

// Signal returns the concatenated base signal X.
func (p *Pool) Signal() timeseries.Series {
	return timeseries.Concat(p.slots...)
}

// SignalWith returns the concatenation of the stored signal and the given
// pending intervals: the pre-eviction X_new that Algorithm 5 hands to
// GetIntervals before the replacement step runs.
func (p *Pool) SignalWith(pending []timeseries.Series) timeseries.Series {
	all := make([]timeseries.Series, 0, len(p.slots)+len(pending))
	all = append(all, p.slots...)
	all = append(all, pending...)
	return timeseries.Concat(all...)
}

// AppendSignal appends the concatenation of the stored signal and the
// given pending intervals to dst and returns the extended slice — the
// allocation-free variant of SignalWith for callers that hold a reusable
// scratch buffer (the insert-count search rebuilds this signal on every
// Encode).
func (p *Pool) AppendSignal(dst timeseries.Series, pending []timeseries.Series) timeseries.Series {
	for _, s := range p.slots {
		dst = append(dst, s...)
	}
	for _, s := range pending {
		dst = append(dst, s...)
	}
	return dst
}

// UseCounts returns a zeroed per-slot counter sized for the layout of
// SignalWith(pending): callers accumulate, via CountUse, one increment per
// interval record mapped onto each slot, then pass the counters to Commit.
func (p *Pool) UseCounts(pendingCount int) []int {
	return make([]int, len(p.slots)+pendingCount)
}

// CountUse bumps the counters of every slot overlapped by a mapping onto
// [shift, shift+length) of the concatenated signal.
func (p *Pool) CountUse(counts []int, shift, length int) {
	if length <= 0 || shift < 0 {
		return
	}
	first := shift / p.w
	last := (shift + length - 1) / p.w
	for s := first; s <= last && s < len(counts); s++ {
		counts[s]++
	}
}

// Commit inserts the pending intervals, folds the accumulated use counts
// into the LFU frequencies, and — if the pool overflows — evicts the least
// frequently used intervals among those that predate this commit, moving
// the last overflowing pending intervals into the vacated slots
// (Algorithm 5 lines 10–13). It returns one Placement per pending interval,
// in order, for transmission to the base station.
func (p *Pool) Commit(pending []timeseries.Series, counts []int) ([]Placement, error) {
	for _, iv := range pending {
		if len(iv) != p.w {
			return nil, fmt.Errorf("base: interval width %d, pool width %d", len(iv), p.w)
		}
	}
	if len(pending) > p.maxIntervals {
		return nil, fmt.Errorf("base: inserting %d intervals into pool of capacity %d",
			len(pending), p.maxIntervals)
	}
	if counts != nil && len(counts) != len(p.slots)+len(pending) {
		return nil, fmt.Errorf("base: use counts length %d, want %d",
			len(counts), len(p.slots)+len(pending))
	}

	oldCount := len(p.slots)
	for i, iv := range pending {
		p.slots = append(p.slots, iv.Clone())
		var c uint64
		if counts != nil {
			c = uint64(counts[oldCount+i])
		}
		p.freq = append(p.freq, c)
	}
	if counts != nil {
		for s := 0; s < oldCount; s++ {
			p.freq[s] += uint64(counts[s])
		}
	}

	placements := make([]Placement, len(pending))
	for i := range pending {
		placements[i] = Placement{Slot: oldCount + i}
	}

	overflow := len(p.slots) - p.maxIntervals
	if overflow <= 0 {
		return placements, nil
	}
	victims := p.leastFrequent(oldCount, overflow)
	// The last `overflow` pending intervals move into the vacated slots.
	moveFrom := len(p.slots) - overflow
	for k, victim := range victims {
		src := moveFrom + k
		p.slots[victim] = p.slots[src]
		p.freq[victim] = p.freq[src]
		placements[src-oldCount] = Placement{Slot: victim}
	}
	p.slots = p.slots[:moveFrom]
	p.freq = p.freq[:moveFrom]
	return placements, nil
}

// leastFrequent returns the indexes of the count least-frequently-used
// slots among the first limit slots, in ascending frequency (ties by lower
// index).
func (p *Pool) leastFrequent(limit, count int) []int {
	type slotFreq struct {
		idx  int
		freq uint64
	}
	all := make([]slotFreq, limit)
	for i := 0; i < limit; i++ {
		all[i] = slotFreq{idx: i, freq: p.freq[i]}
	}
	// Partial selection sort: count is small (at most maxIns).
	for i := 0; i < count && i < limit; i++ {
		best := i
		for j := i + 1; j < limit; j++ {
			if all[j].freq < all[best].freq ||
				(all[j].freq == all[best].freq && all[j].idx < all[best].idx) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	out := make([]int, 0, count)
	for i := 0; i < count && i < limit; i++ {
		out = append(out, all[i].idx)
	}
	return out
}

// Apply replays a received transmission's base-signal update on a replica
// pool: interval i is appended when its placement equals the current size,
// or overwrites an existing slot otherwise. The replica needs no frequency
// information — eviction decisions were made by the sender and are implied
// by the placements.
func (p *Pool) Apply(intervals []timeseries.Series, placements []Placement) error {
	if len(intervals) != len(placements) {
		return fmt.Errorf("base: %d intervals but %d placements", len(intervals), len(placements))
	}
	// Appends first, mirroring the sender's append-then-move order. An
	// interval whose placement is beyond the current size must be one of
	// the moved ones; buffer them until all appends are done.
	for i, iv := range intervals {
		if len(iv) != p.w {
			return fmt.Errorf("base: interval width %d, pool width %d", len(iv), p.w)
		}
		slot := placements[i].Slot
		switch {
		case slot == len(p.slots) && slot < p.maxIntervals:
			p.slots = append(p.slots, iv.Clone())
			p.freq = append(p.freq, 0)
		case slot < len(p.slots):
			p.slots[slot] = iv.Clone()
		default:
			return fmt.Errorf("base: placement slot %d out of range (have %d, cap %d)",
				slot, len(p.slots), p.maxIntervals)
		}
	}
	return nil
}

// Clone returns a deep copy of the pool (used by tests and by the station
// replica bootstrap).
func (p *Pool) Clone() *Pool {
	cp := &Pool{w: p.w, maxIntervals: p.maxIntervals}
	cp.slots = make([]timeseries.Series, len(p.slots))
	for i, s := range p.slots {
		cp.slots[i] = s.Clone()
	}
	cp.freq = append([]uint64(nil), p.freq...)
	return cp
}

// Frequencies exposes a copy of the LFU counters, for tests and diagnostics.
func (p *Pool) Frequencies() []uint64 {
	return append([]uint64(nil), p.freq...)
}
