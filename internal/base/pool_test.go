package base

import (
	"testing"

	"sbr/internal/timeseries"
)

func iv(vals ...float64) timeseries.Series { return timeseries.Series(vals) }

func TestPoolAppendWithinCapacity(t *testing.T) {
	p := NewPool(8, 2) // 4 slots
	pl, err := p.Commit([]timeseries.Series{iv(1, 2), iv(3, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 2 || pl[0].Slot != 0 || pl[1].Slot != 1 {
		t.Errorf("placements = %v", pl)
	}
	if p.NumIntervals() != 2 || p.Size() != 4 {
		t.Errorf("pool holds %d intervals / %d values", p.NumIntervals(), p.Size())
	}
	if !timeseries.Equal(p.Signal(), iv(1, 2, 3, 4), 0) {
		t.Errorf("signal = %v", p.Signal())
	}
}

func TestPoolCommitCopiesData(t *testing.T) {
	p := NewPool(4, 2)
	src := iv(1, 2)
	if _, err := p.Commit([]timeseries.Series{src}, nil); err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	if p.Signal()[0] != 1 {
		t.Error("pool shares storage with the committed interval")
	}
}

func TestPoolLFUEviction(t *testing.T) {
	p := NewPool(4, 2) // 2 slots
	if _, err := p.Commit([]timeseries.Series{iv(1, 1), iv(2, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	// Bump slot 1's frequency; slot 0 stays cold.
	counts := p.UseCounts(1)
	counts[1] = 5
	pl, err := p.Commit([]timeseries.Series{iv(3, 3)}, counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 1 || pl[0].Slot != 0 {
		t.Fatalf("placement = %v, want replacement of cold slot 0", pl)
	}
	if !timeseries.Equal(p.Signal(), iv(3, 3, 2, 2), 0) {
		t.Errorf("post-eviction signal = %v", p.Signal())
	}
}

func TestPoolLFUTieBreaksLowestIndex(t *testing.T) {
	p := NewPool(4, 2)
	if _, err := p.Commit([]timeseries.Series{iv(1, 1), iv(2, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	pl, err := p.Commit([]timeseries.Series{iv(3, 3)}, p.UseCounts(1))
	if err != nil {
		t.Fatal(err)
	}
	if pl[0].Slot != 0 {
		t.Errorf("equal-frequency eviction chose slot %d, want 0", pl[0].Slot)
	}
}

func TestPoolNewIntervalsNotEvicted(t *testing.T) {
	// Capacity 2, starts full; inserting 2 intervals must evict both old
	// slots, never a new interval.
	p := NewPool(4, 2)
	if _, err := p.Commit([]timeseries.Series{iv(1, 1), iv(2, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	pl, err := p.Commit([]timeseries.Series{iv(7, 7), iv(8, 8)}, p.UseCounts(2))
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{pl[0].Slot: true, pl[1].Slot: true}
	if !got[0] || !got[1] {
		t.Errorf("placements = %v, want slots {0,1}", pl)
	}
	sig := p.Signal()
	if !(sig[0] == 7 || sig[0] == 8) || !(sig[2] == 7 || sig[2] == 8) {
		t.Errorf("post-eviction signal = %v", sig)
	}
}

func TestPoolCountUse(t *testing.T) {
	p := NewPool(8, 4) // slots of width 4
	if _, err := p.Commit([]timeseries.Series{iv(0, 0, 0, 0), iv(1, 1, 1, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	counts := p.UseCounts(0)
	p.CountUse(counts, 2, 4) // spans slots 0 and 1
	if counts[0] != 1 || counts[1] != 1 {
		t.Errorf("counts = %v, want both slots bumped", counts)
	}
	p.CountUse(counts, 0, 2) // only slot 0
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("counts = %v", counts)
	}
	p.CountUse(counts, -1, 3) // ramp mapping: ignored
	p.CountUse(counts, 0, 0)  // empty: ignored
	if counts[0] != 2 {
		t.Errorf("invalid uses changed counts: %v", counts)
	}
}

func TestPoolCommitValidation(t *testing.T) {
	p := NewPool(8, 2)
	if _, err := p.Commit([]timeseries.Series{iv(1)}, nil); err == nil {
		t.Error("wrong-width interval accepted")
	}
	if _, err := p.Commit([]timeseries.Series{iv(1, 2), iv(1, 2), iv(1, 2), iv(1, 2), iv(1, 2)}, nil); err == nil {
		t.Error("oversized insert accepted")
	}
	if _, err := p.Commit([]timeseries.Series{iv(1, 2)}, []int{1, 2, 3}); err == nil {
		t.Error("wrong counts length accepted")
	}
}

func TestPoolApplyMirrorsCommit(t *testing.T) {
	sender := NewPool(6, 2) // 3 slots
	replica := NewPool(6, 2)

	step := func(ivs []timeseries.Series, hot []int) {
		t.Helper()
		counts := sender.UseCounts(len(ivs))
		for _, h := range hot {
			counts[h] += 3
		}
		pl, err := sender.Commit(ivs, counts)
		if err != nil {
			t.Fatal(err)
		}
		if err := replica.Apply(ivs, pl); err != nil {
			t.Fatal(err)
		}
		if !timeseries.Equal(sender.Signal(), replica.Signal(), 0) {
			t.Fatalf("replica diverged: sender=%v replica=%v",
				sender.Signal(), replica.Signal())
		}
	}

	step([]timeseries.Series{iv(1, 1), iv(2, 2)}, nil)
	step([]timeseries.Series{iv(3, 3)}, []int{0})
	step([]timeseries.Series{iv(4, 4), iv(5, 5)}, []int{2}) // forces eviction
	step(nil, []int{0, 1})
	step([]timeseries.Series{iv(6, 6)}, nil) // another eviction round
}

func TestPoolApplyValidation(t *testing.T) {
	p := NewPool(4, 2)
	if err := p.Apply([]timeseries.Series{iv(1, 2)}, nil); err == nil {
		t.Error("mismatched placements accepted")
	}
	if err := p.Apply([]timeseries.Series{iv(1)}, []Placement{{Slot: 0}}); err == nil {
		t.Error("wrong-width interval accepted")
	}
	if err := p.Apply([]timeseries.Series{iv(1, 2)}, []Placement{{Slot: 5}}); err == nil {
		t.Error("out-of-range placement accepted")
	}
}

func TestPoolClone(t *testing.T) {
	p := NewPool(4, 2)
	if _, err := p.Commit([]timeseries.Series{iv(1, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if _, err := c.Commit([]timeseries.Series{iv(9, 9)}, nil); err != nil {
		t.Fatal(err)
	}
	if p.NumIntervals() != 1 {
		t.Error("Clone shares state with the original")
	}
}

func TestPoolFrequenciesAccumulate(t *testing.T) {
	p := NewPool(8, 2)
	if _, err := p.Commit([]timeseries.Series{iv(1, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	counts := p.UseCounts(0)
	counts[0] = 4
	if _, err := p.Commit(nil, counts); err != nil {
		t.Fatal(err)
	}
	counts = p.UseCounts(0)
	counts[0] = 3
	if _, err := p.Commit(nil, counts); err != nil {
		t.Fatal(err)
	}
	if freqs := p.Frequencies(); freqs[0] != 7 {
		t.Errorf("frequency = %d, want 7", freqs[0])
	}
}

func TestNewPoolPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPool(…, 0) did not panic")
		}
	}()
	NewPool(8, 0)
}

func TestPoolSignalWith(t *testing.T) {
	p := NewPool(8, 2)
	if _, err := p.Commit([]timeseries.Series{iv(1, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	x := p.SignalWith([]timeseries.Series{iv(3, 4)})
	if !timeseries.Equal(x, iv(1, 2, 3, 4), 0) {
		t.Errorf("SignalWith = %v", x)
	}
	// The pool itself is unchanged.
	if p.NumIntervals() != 1 {
		t.Error("SignalWith mutated the pool")
	}
}

func TestPoolAppendSignalMatchesSignalWith(t *testing.T) {
	p := NewPool(8, 2)
	if _, err := p.Commit([]timeseries.Series{{1, 2}, {3, 4}}, nil); err != nil {
		t.Fatal(err)
	}
	pending := []timeseries.Series{{5, 6}, {7, 8}}
	want := p.SignalWith(pending)

	scratch := make(timeseries.Series, 0, 1)
	got := p.AppendSignal(scratch[:0], pending)
	if !timeseries.Equal(got, want, 0) {
		t.Fatalf("AppendSignal = %v, want %v", got, want)
	}
	// Reuse: a second call into the same (now larger) scratch allocates
	// nothing and overwrites the previous contents.
	again := p.AppendSignal(got[:0], nil)
	if !timeseries.Equal(again, p.Signal(), 0) {
		t.Fatalf("reused AppendSignal = %v, want %v", again, p.Signal())
	}
	if &again[0] != &got[0] {
		t.Error("second AppendSignal should reuse the scratch backing array")
	}
}
