// Package base implements the base-signal side of the SBR framework: the
// GetBase greedy feature-selection algorithm (Algorithm 4 of the paper) and
// its memory-constrained variant, the alternative constructions from the
// Appendix (GetBaseSVD, GetBaseDCT), and the bounded base-signal pool with
// LFU eviction used by the SBR driver (Algorithm 5, lines 10–13).
package base

import (
	"runtime"
	"sync"

	"sbr/internal/metrics"
	"sbr/internal/regression"
	"sbr/internal/timeseries"
)

// Candidate is one candidate base interval (CBI): a width-W window cut from
// one of the collected signals, with its provenance recorded for debugging
// and experiment reporting.
type Candidate struct {
	Row   int // which input signal the window came from
	Index int // window offset within the row, in units of W
	Data  timeseries.Series
}

// Candidates cuts every row into non-overlapping windows of width w,
// producing the dictionary of K = N·M/W CBIs of Algorithm 4.
func Candidates(rows []timeseries.Series, w int) []Candidate {
	var out []Candidate
	for r, row := range rows {
		for i, win := range row.Split(w) {
			out = append(out, Candidate{Row: r, Index: i, Data: win})
		}
	}
	return out
}

// pairErrs returns err(i, j), the error of approximating CBI j as a linear
// image of CBI i — the entry type of Algorithm 4's K×K error matrix. Under
// the SSE metric the per-candidate moments are hoisted (O(K·W) once) so
// each pair costs only one unrolled cross moment instead of a full
// five-moment accumulation. Every GetBase variant evaluates pairs through
// this same function, which keeps their selections identical.
func pairErrs(cands []Candidate, w int, fitter regression.Fitter) func(i, j int) float64 {
	if fitter.Kind != metrics.SSE {
		return func(i, j int) float64 {
			return fitter.Fit(cands[i].Data, cands[j].Data, 0, 0, w).Err
		}
	}
	sums := make([]float64, len(cands))
	sumSqs := make([]float64, len(cands))
	for c, cand := range cands {
		var s, s2 float64
		for _, v := range cand.Data {
			s += v
			s2 += v * v
		}
		sums[c], sumSqs[c] = s, s2
	}
	return func(i, j int) float64 {
		cross := regression.Dot(cands[i].Data, cands[j].Data)
		return regression.SSEFromSums(sums[i], sums[j], cross, sumSqs[i], sumSqs[j], w).Err
	}
}

// GetBase selects up to maxIns CBIs from the rows using the greedy
// benefit-adjustment procedure of Algorithm 4: the benefit of CBI i is the
// total error reduction it offers over the best approximation each other
// CBI j has so far (initially plain linear regression), and after every
// selection the per-CBI best errors tighten, discounting candidates that
// cover the same data features. Selected CBIs are returned in selection
// order, most beneficial first.
//
// Time is O(K²·W) to build the error matrix plus O(maxIns·K²) for the
// greedy phase; space is O(K²). With the paper's W = √n this is the
// O(n^1.5) time / O(n) space configuration.
func GetBase(rows []timeseries.Series, w, maxIns int, fitter regression.Fitter) []Candidate {
	cands := Candidates(rows, w)
	k := len(cands)
	if k == 0 || maxIns <= 0 {
		return nil
	}
	if maxIns > k {
		maxIns = k
	}

	// errMat[i][j] is the error of approximating CBI j as a·CBI_i + b.
	// Rows are independent, so the O(K²·W) fill — the dominant cost of the
	// whole SBR pipeline — fans out across cores. The greedy selection
	// below stays sequential and deterministic.
	errMat := make([][]float64, k)
	backing := make([]float64, k*k)
	pairErr := pairErrs(cands, w, fitter)
	workers := runtime.NumCPU()
	if workers > k {
		workers = k
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for i := start; i < k; i += workers {
				row := backing[i*k : (i+1)*k : (i+1)*k]
				for j := 0; j < k; j++ {
					row[j] = pairErr(i, j)
				}
				errMat[i] = row
			}
		}(wk)
	}
	wg.Wait()
	// bestErr[j] is the best approximation error available for CBI j so
	// far: initially LinearErr(j), then tightened by every selected CBI.
	bestErr := make([]float64, k)
	for j := 0; j < k; j++ {
		bestErr[j] = fitter.FitRamp(cands[j].Data, 0, w).Err
	}

	selected := make([]Candidate, 0, maxIns)
	taken := make([]bool, k)
	for pick := 0; pick < maxIns; pick++ {
		bestIdx, bestBenefit := -1, 0.0
		for i := 0; i < k; i++ {
			if taken[i] {
				continue
			}
			var benefit float64
			for j := 0; j < k; j++ {
				if gain := bestErr[j] - errMat[i][j]; gain > 0 {
					benefit += gain
				}
			}
			if bestIdx == -1 || benefit > bestBenefit {
				bestIdx, bestBenefit = i, benefit
			}
		}
		if bestIdx == -1 {
			break
		}
		taken[bestIdx] = true
		selected = append(selected, cands[bestIdx])
		for j := 0; j < k; j++ {
			if e := errMat[bestIdx][j]; e < bestErr[j] {
				bestErr[j] = e
			}
		}
	}
	return selected
}

// GetBaseNoAdjust is the ablation of GetBase's benefit-adjustment step
// (Figure 4): candidates are ranked once by their initial benefit over
// plain linear regression and the top maxIns are taken, without
// re-discounting after each selection. It therefore happily picks several
// near-duplicates of the same dominant feature — exactly the failure mode
// the adjustment exists to prevent; the ablation benchmark quantifies the
// cost.
func GetBaseNoAdjust(rows []timeseries.Series, w, maxIns int, fitter regression.Fitter) []Candidate {
	cands := Candidates(rows, w)
	k := len(cands)
	if k == 0 || maxIns <= 0 {
		return nil
	}
	if maxIns > k {
		maxIns = k
	}
	linErr := make([]float64, k)
	for j := 0; j < k; j++ {
		linErr[j] = fitter.FitRamp(cands[j].Data, 0, w).Err
	}
	benefits := make([]float64, k)
	pairErr := pairErrs(cands, w, fitter)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if gain := linErr[j] - pairErr(i, j); gain > 0 {
				benefits[i] += gain
			}
		}
	}
	selected := make([]Candidate, 0, maxIns)
	taken := make([]bool, k)
	for pick := 0; pick < maxIns; pick++ {
		best := -1
		for i := 0; i < k; i++ {
			if taken[i] {
				continue
			}
			if best == -1 || benefits[i] > benefits[best] {
				best = i
			}
		}
		taken[best] = true
		selected = append(selected, cands[best])
	}
	return selected
}

// GetBaseLowMem is the memory-constrained variant sketched at the end of
// Section 4.2: it never materialises the K×K error matrix, storing only the
// per-CBI best error and recomputing pairwise regressions at each greedy
// step. Space drops to O(K) = O(√n) at the cost of O(maxIns·K²·W) =
// O(maxIns·n^1.5) time. Its selections are identical to GetBase.
func GetBaseLowMem(rows []timeseries.Series, w, maxIns int, fitter regression.Fitter) []Candidate {
	cands := Candidates(rows, w)
	k := len(cands)
	if k == 0 || maxIns <= 0 {
		return nil
	}
	if maxIns > k {
		maxIns = k
	}

	bestErr := make([]float64, k)
	for j := 0; j < k; j++ {
		bestErr[j] = fitter.FitRamp(cands[j].Data, 0, w).Err
	}
	pairErr := pairErrs(cands, w, fitter)

	selected := make([]Candidate, 0, maxIns)
	taken := make([]bool, k)
	for pick := 0; pick < maxIns; pick++ {
		bestIdx, bestBenefit := -1, 0.0
		for i := 0; i < k; i++ {
			if taken[i] {
				continue
			}
			var benefit float64
			for j := 0; j < k; j++ {
				if gain := bestErr[j] - pairErr(i, j); gain > 0 {
					benefit += gain
				}
			}
			if bestIdx == -1 || benefit > bestBenefit {
				bestIdx, bestBenefit = i, benefit
			}
		}
		if bestIdx == -1 {
			break
		}
		taken[bestIdx] = true
		selected = append(selected, cands[bestIdx])
		for j := 0; j < k; j++ {
			if err := pairErr(bestIdx, j); err < bestErr[j] {
				bestErr[j] = err
			}
		}
	}
	return selected
}

// Signals extracts the raw data windows of the candidates, in order.
func Signals(cands []Candidate) []timeseries.Series {
	out := make([]timeseries.Series, len(cands))
	for i, c := range cands {
		out[i] = c.Data
	}
	return out
}
