package regression

import (
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

// Fitter selects the Regression() variant matching an error metric, giving
// the rest of the framework a single entry point: the paper's algorithms
// adapt to a different metric by swapping the regression subroutine only
// (Section 4.5).
type Fitter struct {
	// Kind is the error metric the fits minimise and report.
	Kind metrics.Kind
	// Sanity bounds the denominator of relative errors; zero means
	// metrics.DefaultSanity. Ignored by the other metrics.
	Sanity float64
}

// Fit maps Y[startY : startY+length) onto X[startX : startX+length).
func (f Fitter) Fit(x, y timeseries.Series, startX, startY, length int) Fit {
	switch f.Kind {
	case metrics.SSE:
		return SSE(x, y, startX, startY, length)
	case metrics.RelativeSSE:
		return Relative(x, y, startX, startY, length, f.Sanity)
	case metrics.MaxAbs:
		return Minimax(x, y, startX, startY, length)
	default:
		panic("regression: unknown metric " + f.Kind.String())
	}
}

// FitRamp maps Y[startY : startY+length) onto the time ramp 0,…,length−1,
// the plain-linear-regression fall-back of BestMap.
func (f Fitter) FitRamp(y timeseries.Series, startY, length int) Fit {
	switch f.Kind {
	case metrics.SSE:
		return Ramp(y, startY, length)
	case metrics.RelativeSSE:
		return RampRelative(y, startY, length, f.Sanity)
	case metrics.MaxAbs:
		return RampMinimax(y, startY, length)
	default:
		panic("regression: unknown metric " + f.Kind.String())
	}
}

// Error evaluates an existing fit (a, b) over a segment under the fitter's
// metric, without re-optimising the parameters.
func (f Fitter) Error(x, y timeseries.Series, startX, startY, length int, a, b float64) float64 {
	approx := Fit{A: a, B: b}.Evaluate(x, startX, length)
	return metrics.Eval(f.Kind, y[startY:startY+length], approx)
}
