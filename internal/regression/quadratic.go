package regression

import (
	"math"

	"sbr/internal/timeseries"
)

// This file implements the paper's stated future-work direction
// (Section 6): non-linear encodings of the data values over the base
// signal. The quadratic model Y' = c·X² + a·X + b is the smallest step up
// from the linear projection; each interval record then carries three
// coefficients instead of two (5 transmitted values instead of 4), and the
// question the ablation benchmarks answer is whether the extra coefficient
// pays for itself under a fixed bandwidth budget.

// QuadFit holds the three coefficients of Y' = C·X² + A·X + B and the SSE
// of the fit. A linear Fit embeds into a QuadFit with C = 0.
type QuadFit struct {
	A, B, C float64
	Err     float64
}

// Quad computes the least-squares quadratic fit of
// Y[startY : startY+length) against X[startX : startX+length). If the
// normal equations are singular (e.g. X constant, or X taking only two
// distinct values), it falls back to the best linear fit.
func Quad(x, y timeseries.Series, startX, startY, length int) QuadFit {
	if length <= 0 {
		return QuadFit{}
	}
	var s1, s2, s3, s4, t0, t1, t2, sy2 float64
	for i := 0; i < length; i++ {
		xv := x[startX+i]
		yv := y[startY+i]
		x2 := xv * xv
		s1 += xv
		s2 += x2
		s3 += x2 * xv
		s4 += x2 * x2
		t0 += yv
		t1 += xv * yv
		t2 += x2 * yv
		sy2 += yv * yv
	}
	s0 := float64(length)
	coef, ok := solve3(
		[3][3]float64{
			{s4, s3, s2},
			{s3, s2, s1},
			{s2, s1, s0},
		},
		[3]float64{t2, t1, t0},
	)
	if !ok {
		lin := sseFromSums(s1, t0, t1, s2, sy2, length)
		return QuadFit{A: lin.A, B: lin.B, Err: lin.Err}
	}
	fit := QuadFit{C: coef[0], A: coef[1], B: coef[2]}
	for i := 0; i < length; i++ {
		xv := x[startX+i]
		d := y[startY+i] - (fit.C*xv*xv + fit.A*xv + fit.B)
		fit.Err += d * d
	}
	// Guard against numerically ill-conditioned systems: the quadratic fit
	// can never beat its own linear special case by less than round-off,
	// so fall back when it is actually worse.
	lin := sseFromSums(s1, t0, t1, s2, sy2, length)
	if lin.Err < fit.Err {
		return QuadFit{A: lin.A, B: lin.B, Err: lin.Err}
	}
	return fit
}

// RampQuad is Quad with the time ramp 0,1,…,length−1 as X.
func RampQuad(y timeseries.Series, startY, length int) QuadFit {
	if length <= 0 {
		return QuadFit{}
	}
	ramp := make(timeseries.Series, length)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	return Quad(ramp, y, 0, startY, length)
}

// Evaluate returns the quadratic approximation over the segment.
func (f QuadFit) Evaluate(x timeseries.Series, startX, length int) timeseries.Series {
	out := make(timeseries.Series, length)
	for i := 0; i < length; i++ {
		xv := x[startX+i]
		out[i] = f.C*xv*xv + f.A*xv + f.B
	}
	return out
}

// EvaluateRamp returns the quadratic approximation over the time ramp.
func (f QuadFit) EvaluateRamp(length int) timeseries.Series {
	out := make(timeseries.Series, length)
	for i := 0; i < length; i++ {
		xv := float64(i)
		out[i] = f.C*xv*xv + f.A*xv + f.B
	}
	return out
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting. ok is false when the matrix is (numerically) singular.
func solve3(m [3][3]float64, rhs [3]float64) ([3]float64, bool) {
	// Scale-aware singularity threshold.
	var scale float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if a := math.Abs(m[i][j]); a > scale {
				scale = a
			}
		}
	}
	if scale == 0 {
		return [3]float64{}, false
	}
	eps := 1e-12 * scale

	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) <= eps {
			return [3]float64{}, false
		}
		if pivot != col {
			m[pivot], m[col] = m[col], m[pivot]
			rhs[pivot], rhs[col] = rhs[col], rhs[pivot]
		}
		for r := col + 1; r < 3; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c < 3; c++ {
				m[r][c] -= f * m[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	var out [3]float64
	for i := 2; i >= 0; i-- {
		sum := rhs[i]
		for j := i + 1; j < 3; j++ {
			sum -= m[i][j] * out[j]
		}
		out[i] = sum / m[i][i]
	}
	return out, true
}
