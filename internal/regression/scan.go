package regression

import (
	"sbr/internal/timeseries"
)

// This file holds the fused SSE shift-scan kernel: the inner loop of
// BestMap's Algorithm 2 scan under the SSE metric, restructured for
// throughput. Per shift it needs only the cross moment Σ X·Y (the X and Y
// segment moments come from prefix sums and hoisted constants), computed
// with four independent accumulators so the floating-point add chain no
// longer serialises the loop; the regression coefficients are derived only
// for shifts that improve on the best error seen so far, which a scan
// reaches O(log shifts) times on average.
//
// The kernel is a pure function of its arguments and evaluates shifts in
// ascending order with a strict < improvement test, so it is the
// deterministic sequential reference that the parallel scan engine's
// chunk-ordered reduction reproduces exactly.

// Dot returns the dot product of two equal-length series, computed with
// the same four-accumulator order as the scan kernel below.
func Dot(a, b timeseries.Series) float64 {
	if len(b) < len(a) {
		a = a[:len(b)]
	}
	b = b[:len(a)]
	var c0, c1, c2, c3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		c0 += a[i] * b[i]
		c1 += a[i+1] * b[i+1]
		c2 += a[i+2] * b[i+2]
		c3 += a[i+3] * b[i+3]
	}
	out := (c0 + c1) + (c2 + c3)
	for ; i < len(a); i++ {
		out += a[i] * b[i]
	}
	return out
}

// SSEFromSums finishes the least-squares fit from precomputed moments —
// for callers that hoist per-segment sums out of pairwise loops (the
// GetBase error matrix) instead of re-accumulating them per fit.
func SSEFromSums(sumX, sumY, sumXY, sumX2, sumY2 float64, length int) Fit {
	return sseFromSums(sumX, sumY, sumXY, sumX2, sumY2, length)
}

// ScanSSEMins evaluates the least-squares mapping of the fixed segment
// y[startY : startY+length) onto X[s : s+length) for every shift s in
// [lo, hi) ascending, calling emit(s, fit) whenever the SSE strictly beats
// best (which then becomes the new bar). px must hold prefix sums covering
// x; sumY and sumY2 are the Y-segment moments.
func ScanSSEMins(x timeseries.Series, px *timeseries.Prefix, y timeseries.Series,
	sumY, sumY2 float64, startY, length, lo, hi int, best float64,
	emit func(shift int, f Fit)) {

	if length <= 0 || hi <= lo {
		return
	}
	n := float64(length)
	my := sumY / n
	varY := sumY2/n - my*my
	psum, psum2 := px.Raw()
	ys := y[startY : startY+length]

	for s := lo; s < hi; s++ {
		xs := x[s : s+length]
		yv := ys[:len(xs)] // same length; lets the compiler drop bounds checks
		// Cross moment with four independent accumulators: the adds of
		// different accumulators overlap in the pipeline instead of waiting
		// on one chain. The combination order is fixed, so the value is
		// deterministic (though not bit-identical to a single-chain sum).
		var c0, c1, c2, c3 float64
		i := 0
		for ; i+4 <= len(xs); i += 4 {
			c0 += xs[i] * yv[i]
			c1 += xs[i+1] * yv[i+1]
			c2 += xs[i+2] * yv[i+2]
			c3 += xs[i+3] * yv[i+3]
		}
		sumXY := (c0 + c1) + (c2 + c3)
		for ; i < len(xs); i++ {
			sumXY += xs[i] * yv[i]
		}

		sumX := psum[s+length] - psum[s]
		sumX2 := psum2[s+length] - psum2[s]
		mx := sumX / n
		varX := sumX2/n - mx*mx
		if varX <= epsVar {
			// Degenerate X segment: horizontal line through the Y mean.
			err := n * varY
			if err < 0 {
				err = 0
			}
			if err < best {
				best = err
				emit(s, Fit{A: 0, B: my, Err: err})
			}
			continue
		}
		cov := sumXY/n - mx*my
		a := cov / varX
		err := n * (varY - a*cov)
		if err < 0 {
			err = 0
		}
		if err < best {
			best = err
			emit(s, Fit{A: a, B: my - a*mx, Err: err})
		}
	}
}
