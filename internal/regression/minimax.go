package regression

import (
	"sort"

	"sbr/internal/timeseries"
)

// Minimax computes the line Y' = a·X + b minimising the maximum absolute
// residual max_i |Y[i] − (a·X[j] + b)| over the paired segment. This is the
// Chebyshev (L∞) regression variant of Section 4.5 used when the
// application requires strict error bounds.
//
// The implementation is exact: the maximum residual of any line with slope
// a equals (max_i(y_i − a·x_i) − min_i(y_i − a·x_i)) / 2, a convex
// piecewise-linear function of a whose minimum is attained at the slope of
// an edge of the upper or lower convex hull of the points. We enumerate
// those edge slopes and evaluate each against the hull vertices only, which
// is exact because y − a·x is a linear functional.
func Minimax(x, y timeseries.Series, startX, startY, length int) Fit {
	pts := make([]point, length)
	for i := 0; i < length; i++ {
		pts[i] = point{x: x[startX+i], y: y[startY+i]}
	}
	return minimaxPoints(pts)
}

// RampMinimax is Minimax with the time ramp 0,1,…,length−1 as X.
func RampMinimax(y timeseries.Series, startY, length int) Fit {
	pts := make([]point, length)
	for i := 0; i < length; i++ {
		pts[i] = point{x: float64(i), y: y[startY+i]}
	}
	return minimaxPoints(pts)
}

type point struct{ x, y float64 }

func minimaxPoints(pts []point) Fit {
	switch len(pts) {
	case 0:
		return Fit{}
	case 1:
		return Fit{A: 0, B: pts[0].y, Err: 0}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].x != pts[j].x {
			return pts[i].x < pts[j].x
		}
		return pts[i].y < pts[j].y
	})
	if pts[0].x == pts[len(pts)-1].x {
		// All points share one x: any slope fits equally; pick horizontal.
		lo, hi := pts[0].y, pts[len(pts)-1].y
		return Fit{A: 0, B: (lo + hi) / 2, Err: (hi - lo) / 2}
	}
	lower := hullChain(pts, false)
	upper := hullChain(pts, true)

	best := Fit{Err: -1}
	try := func(a float64) {
		// Residual extremes of y − a·x are attained on the hulls.
		maxR := upper[0].y - a*upper[0].x
		for _, p := range upper[1:] {
			if r := p.y - a*p.x; r > maxR {
				maxR = r
			}
		}
		minR := lower[0].y - a*lower[0].x
		for _, p := range lower[1:] {
			if r := p.y - a*p.x; r < minR {
				minR = r
			}
		}
		err := (maxR - minR) / 2
		if best.Err < 0 || err < best.Err {
			best = Fit{A: a, B: (maxR + minR) / 2, Err: err}
		}
	}
	for _, h := range [][]point{lower, upper} {
		for i := 1; i < len(h); i++ {
			dx := h[i].x - h[i-1].x
			if dx > 0 {
				try((h[i].y - h[i-1].y) / dx)
			}
		}
	}
	if best.Err < 0 { // every hull edge vertical: degenerate, handled above
		return Fit{A: 0, B: pts[0].y, Err: 0}
	}
	return best
}

// hullChain builds the lower (upper=false) or upper (upper=true) convex
// hull of points already sorted by (x, y), using Andrew's monotone chain.
func hullChain(pts []point, upper bool) []point {
	h := make([]point, 0, len(pts))
	for _, p := range pts {
		for len(h) >= 2 {
			o, a := h[len(h)-2], h[len(h)-1]
			cross := (a.x-o.x)*(p.y-o.y) - (a.y-o.y)*(p.x-o.x)
			if (!upper && cross <= 0) || (upper && cross >= 0) {
				h = h[:len(h)-1]
				continue
			}
			break
		}
		h = append(h, p)
	}
	return h
}
