package regression

import (
	"math"
	"math/rand"
	"testing"

	"sbr/internal/timeseries"
)

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 3, 4, 5, 17, 64, 100} {
		a, b := randSeries(rng, n), randSeries(rng, n)
		var want float64
		for i := range a {
			want += a[i] * b[i]
		}
		if got := Dot(a, b); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("n=%d: Dot=%g want %g", n, got, want)
		}
	}
}

func TestSSEFromSumsMatchesSSE(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(60)
		x, y := randSeries(rng, n), randSeries(rng, n)
		var sx, sy, sxy, sx2, sy2 float64
		for i := 0; i < n; i++ {
			sx += x[i]
			sy += y[i]
			sxy += x[i] * y[i]
			sx2 += x[i] * x[i]
			sy2 += y[i] * y[i]
		}
		got := SSEFromSums(sx, sy, sxy, sx2, sy2, n)
		want := SSE(x, y, 0, 0, n)
		if math.Abs(got.Err-want.Err) > 1e-8*(1+want.Err) ||
			math.Abs(got.A-want.A) > 1e-8 || math.Abs(got.B-want.B) > 1e-8 {
			t.Fatalf("trial %d: SSEFromSums=%+v want %+v", trial, got, want)
		}
	}
}

// TestScanSSEMinsMatchesSSE checks the fused kernel against the plain
// per-shift fit: every emitted shift must carry the least-squares fit of
// that alignment (within FP reassociation tolerance), emissions must be
// ascending with strictly decreasing error, and the final emission must be
// the argmin over all shifts.
func TestScanSSEMinsMatchesSSE(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := randSeries(rng, 400)
	px := timeseries.NewPrefix(x)
	const length = 64
	y := randSeries(rng, length)
	var sumY, sumY2 float64
	for _, v := range y {
		sumY += v
		sumY2 += v * v
	}
	shifts := len(x) - length + 1

	var emitted []int
	var fits []Fit
	ScanSSEMins(x, px, y, sumY, sumY2, 0, length, 0, shifts, math.Inf(1),
		func(s int, f Fit) {
			emitted = append(emitted, s)
			fits = append(fits, f)
		})
	if len(emitted) == 0 {
		t.Fatal("kernel emitted nothing")
	}
	for i, s := range emitted {
		if i > 0 {
			if s <= emitted[i-1] {
				t.Fatalf("emissions not ascending: %v", emitted)
			}
			if fits[i].Err >= fits[i-1].Err {
				t.Fatalf("errors not strictly decreasing: %g then %g", fits[i-1].Err, fits[i].Err)
			}
		}
		want := SSE(x, y, s, 0, length)
		if math.Abs(fits[i].Err-want.Err) > 1e-6*(1+want.Err) {
			t.Fatalf("shift %d: kernel err %g, SSE %g", s, fits[i].Err, want.Err)
		}
	}
	// The last emission is the running minimum over every shift.
	bestErr := math.Inf(1)
	for s := 0; s < shifts; s++ {
		if e := SSE(x, y, s, 0, length).Err; e < bestErr {
			bestErr = e
		}
	}
	last := fits[len(fits)-1].Err
	if math.Abs(last-bestErr) > 1e-6*(1+bestErr) {
		t.Fatalf("final emission err %g, brute-force best %g", last, bestErr)
	}
}

// TestScanSSEMinsRespectsBar: shifts that do not strictly beat the initial
// bar are never emitted.
func TestScanSSEMinsRespectsBar(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := randSeries(rng, 200)
	px := timeseries.NewPrefix(x)
	const length = 32
	y := randSeries(rng, length)
	var sumY, sumY2 float64
	for _, v := range y {
		sumY += v
		sumY2 += v * v
	}
	count := 0
	ScanSSEMins(x, px, y, sumY, sumY2, 0, length, 0, len(x)-length+1, 0,
		func(int, Fit) { count++ })
	if count != 0 {
		t.Fatalf("bar 0 should suppress every emission, got %d", count)
	}
}

// TestScanSSEMinsDegenerateX: a constant X window must fall back to the
// horizontal line through the Y mean, exactly as sseFromSums does.
func TestScanSSEMinsDegenerateX(t *testing.T) {
	x := make(timeseries.Series, 40) // all zeros: every window degenerate
	px := timeseries.NewPrefix(x)
	y := timeseries.Series{1, 2, 3, 4}
	var sumY, sumY2 float64
	for _, v := range y {
		sumY += v
		sumY2 += v * v
	}
	var got []Fit
	ScanSSEMins(x, px, y, sumY, sumY2, 0, len(y), 0, 3, math.Inf(1),
		func(s int, f Fit) { got = append(got, f) })
	if len(got) != 1 {
		t.Fatalf("expected exactly one emission (all windows identical), got %d", len(got))
	}
	want := SSE(x, y, 0, 0, len(y))
	if got[0].A != want.A || got[0].B != want.B ||
		math.Abs(got[0].Err-want.Err) > 1e-9 {
		t.Fatalf("degenerate fit %+v, want %+v", got[0], want)
	}
}
