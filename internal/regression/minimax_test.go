package regression

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sbr/internal/timeseries"
)

// bruteMaxAbs evaluates the maximum residual of a line over the points.
func bruteMaxAbs(x, y timeseries.Series, length int, a, b float64) float64 {
	var m float64
	for i := 0; i < length; i++ {
		if d := math.Abs(y[i] - (a*x[i] + b)); d > m {
			m = d
		}
	}
	return m
}

// bruteMinimax grid-free exact reference: the optimal Chebyshev line is
// determined by three points (two extremes on one side, one on the other),
// so enumerating all point triples — and, for robustness, all pairs
// defining a slope — yields the optimum on small inputs.
func bruteMinimax(x, y timeseries.Series, length int) float64 {
	best := math.Inf(1)
	consider := func(a float64) {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < length; i++ {
			r := y[i] - a*x[i]
			lo = math.Min(lo, r)
			hi = math.Max(hi, r)
		}
		if e := (hi - lo) / 2; e < best {
			best = e
		}
	}
	consider(0)
	for i := 0; i < length; i++ {
		for j := i + 1; j < length; j++ {
			if x[i] != x[j] {
				consider((y[i] - y[j]) / (x[i] - x[j]))
			}
		}
	}
	return best
}

func TestMinimaxExactLine(t *testing.T) {
	x := timeseries.Series{0, 1, 2, 3}
	y := timeseries.Series{5, 7, 9, 11}
	fit := Minimax(x, y, 0, 0, 4)
	if math.Abs(fit.A-2) > 1e-9 || math.Abs(fit.B-5) > 1e-9 || fit.Err > 1e-12 {
		t.Errorf("exact-line minimax fit = %+v", fit)
	}
}

func TestMinimaxKnownCase(t *testing.T) {
	// Points: (0,0), (1,1), (2,0). Best horizontal-band line is y = x·0 +
	// 0.5 with max error 0.5? The optimal is y = 0.5 (slope 0): residuals
	// 0.5, 0.5, 0.5.
	x := timeseries.Series{0, 1, 2}
	y := timeseries.Series{0, 1, 0}
	fit := Minimax(x, y, 0, 0, 3)
	if math.Abs(fit.Err-0.5) > 1e-9 {
		t.Errorf("minimax err = %v, want 0.5", fit.Err)
	}
	if got := bruteMaxAbs(x, y, 3, fit.A, fit.B); math.Abs(got-fit.Err) > 1e-9 {
		t.Errorf("reported err %v but line achieves %v", fit.Err, got)
	}
}

func TestMinimaxDegenerate(t *testing.T) {
	// All points share one x.
	x := timeseries.Series{2, 2, 2}
	y := timeseries.Series{1, 5, 3}
	fit := Minimax(x, y, 0, 0, 3)
	if math.Abs(fit.Err-2) > 1e-9 {
		t.Errorf("same-x minimax err = %v, want 2", fit.Err)
	}
	// Single point.
	fit = Minimax(timeseries.Series{1}, timeseries.Series{7}, 0, 0, 1)
	if fit.Err != 0 || fit.B != 7 {
		t.Errorf("single-point fit = %+v", fit)
	}
	// Empty.
	if fit := Minimax(nil, nil, 0, 0, 0); fit != (Fit{}) {
		t.Errorf("empty fit = %+v", fit)
	}
	// Two points: always exactly interpolable.
	fit = Minimax(timeseries.Series{0, 1}, timeseries.Series{3, 9}, 0, 0, 2)
	if fit.Err > 1e-12 {
		t.Errorf("two-point fit err = %v, want 0", fit.Err)
	}
}

// Property: the hull-based minimax matches the brute-force optimum and the
// reported error is achieved by the returned line.
func TestMinimaxMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		fit := Minimax(x, y, 0, 0, n)
		achieved := bruteMaxAbs(x, y, n, fit.A, fit.B)
		if math.Abs(achieved-fit.Err) > 1e-6*(1+fit.Err) {
			return false
		}
		want := bruteMinimax(x, y, n)
		return fit.Err <= want+1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: minimax error never exceeds the max residual of the SSE fit.
func TestMinimaxNoWorseThanLeastSquares(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		cheb := Minimax(x, y, 0, 0, n)
		ls := SSE(x, y, 0, 0, n)
		lsMax := bruteMaxAbs(x, y, n, ls.A, ls.B)
		return cheb.Err <= lsMax+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRampMinimax(t *testing.T) {
	y := timeseries.Series{0, 1, 0, 1, 0}
	fit := RampMinimax(y, 0, 5)
	if math.Abs(fit.Err-0.5) > 1e-9 {
		t.Errorf("RampMinimax err = %v, want 0.5", fit.Err)
	}
	// Offset segments address the right samples.
	y2 := timeseries.Series{9, 9, 0, 2, 4}
	fit2 := RampMinimax(y2, 2, 3)
	if fit2.Err > 1e-12 || math.Abs(fit2.A-2) > 1e-9 {
		t.Errorf("offset RampMinimax = %+v, want slope 2 err 0", fit2)
	}
}

func TestMinimaxWithOffsets(t *testing.T) {
	x := timeseries.Series{9, 9, 0, 1, 2, 3}
	y := timeseries.Series{8, 8, 8, 1, 3, 5}
	// Map y[3:6) onto x[2:5): y = 2x + 1 exactly.
	fit := Minimax(x, y, 2, 3, 3)
	if fit.Err > 1e-12 || math.Abs(fit.A-2) > 1e-9 || math.Abs(fit.B-1) > 1e-9 {
		t.Errorf("offset minimax = %+v", fit)
	}
}
