// Package regression implements the Regression() subroutine of the paper
// (Algorithm 1) together with the error-metric variants described in the
// companion technical report: the SSE-optimal least-squares fit, the
// weighted least-squares fit that minimises the sum squared relative error,
// and the exact minimax (Chebyshev) fit that minimises the maximum absolute
// error. All fits map a segment of a base signal X onto a segment of the
// data signal Y as Y' = a·X + b.
package regression

import (
	"math"

	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

// Fit holds the two regression parameters and the error of the resulting
// approximation under the metric that produced it.
type Fit struct {
	A, B float64
	Err  float64
}

// epsVar is the threshold under which the X segment is treated as constant
// and the fit degenerates to the horizontal line b = mean(Y).
const epsVar = 1e-12

// SSE computes the least-squares fit of Y[startY : startY+length) against
// X[startX : startX+length), exactly as Algorithm 1 of the paper: the
// returned parameters minimise Σ (Y[i] − (a·X[j] + b))² and Err is that
// minimal sum of squares.
func SSE(x, y timeseries.Series, startX, startY, length int) Fit {
	if length <= 0 {
		return Fit{}
	}
	var sumX, sumY, sumXY, sumX2, sumY2 float64
	for i := 0; i < length; i++ {
		xv := x[startX+i]
		yv := y[startY+i]
		sumX += xv
		sumY += yv
		sumXY += xv * yv
		sumX2 += xv * xv
		sumY2 += yv * yv
	}
	return sseFromSums(sumX, sumY, sumXY, sumX2, sumY2, length)
}

// sseFromSums finishes the least-squares computation from sufficient
// statistics. It centres the moments to limit cancellation and clamps the
// residual error at zero.
func sseFromSums(sumX, sumY, sumXY, sumX2, sumY2 float64, length int) Fit {
	n := float64(length)
	mx := sumX / n
	my := sumY / n
	varX := sumX2/n - mx*mx
	varY := sumY2/n - my*my
	cov := sumXY/n - mx*my
	if varX <= epsVar {
		// Degenerate X: best line is horizontal through the Y mean.
		err := n * varY
		if err < 0 {
			err = 0
		}
		return Fit{A: 0, B: my, Err: err}
	}
	a := cov / varX
	b := my - a*mx
	err := n * (varY - a*cov)
	if err < 0 {
		err = 0
	}
	return Fit{A: a, B: b, Err: err}
}

// SSEWithPrefix is SSE with the X-segment moments supplied by prefix sums,
// so the loop only accumulates the cross moment Σ X·Y. The Y-segment
// moments must describe y[startY : startY+length). It is the inner loop of
// the BestMap shift scan.
func SSEWithPrefix(x timeseries.Series, px *timeseries.Prefix,
	y timeseries.Series, sumY, sumY2 float64, startX, startY, length int) Fit {
	if length <= 0 {
		return Fit{}
	}
	var sumXY float64
	for i := 0; i < length; i++ {
		sumXY += x[startX+i] * y[startY+i]
	}
	return sseFromSums(px.Sum(startX, length), sumY, sumXY,
		px.SumSq(startX, length), sumY2, length)
}

// Ramp computes the least-squares fit of Y[startY : startY+length) against
// the time ramp 0,1,…,length−1. This is the "standard linear regression"
// fall-back of BestMap (shift = −1): the interval is modelled as a straight
// line in time. The index moments have closed forms, so only the Y moments
// are accumulated.
func Ramp(y timeseries.Series, startY, length int) Fit {
	if length <= 0 {
		return Fit{}
	}
	n := float64(length)
	// Σ i and Σ i² for i in [0, length).
	sumX := n * (n - 1) / 2
	sumX2 := n * (n - 1) * (2*n - 1) / 6
	var sumY, sumXY, sumY2 float64
	for i := 0; i < length; i++ {
		yv := y[startY+i]
		sumY += yv
		sumY2 += yv * yv
		sumXY += float64(i) * yv
	}
	return sseFromSums(sumX, sumY, sumXY, sumX2, sumY2, length)
}

// Relative computes the fit minimising the sum squared relative error
// Σ ((Y[i] − (a·X[j]+b)) / max(|Y[i]|, sanity))². This is weighted least
// squares with weights w_i = 1/max(|Y[i]|, sanity)²; the normal equations
// in (a, b) remain 2×2 and the fit stays O(length) time, O(1) space, as the
// technical report requires.
func Relative(x, y timeseries.Series, startX, startY, length int, sanity float64) Fit {
	if length <= 0 {
		return Fit{}
	}
	if sanity <= 0 {
		sanity = metrics.DefaultSanity
	}
	var sw, swx, swy, swxy, swx2, swy2 float64
	for i := 0; i < length; i++ {
		xv := x[startX+i]
		yv := y[startY+i]
		den := math.Abs(yv)
		if den < sanity {
			den = sanity
		}
		w := 1 / (den * den)
		sw += w
		swx += w * xv
		swy += w * yv
		swxy += w * xv * yv
		swx2 += w * xv * xv
		swy2 += w * yv * yv
	}
	return weightedFromSums(sw, swx, swy, swxy, swx2, swy2)
}

// RampRelative is Relative with the time ramp 0,1,…,length−1 as X.
func RampRelative(y timeseries.Series, startY, length int, sanity float64) Fit {
	if length <= 0 {
		return Fit{}
	}
	if sanity <= 0 {
		sanity = metrics.DefaultSanity
	}
	var sw, swx, swy, swxy, swx2, swy2 float64
	for i := 0; i < length; i++ {
		xv := float64(i)
		yv := y[startY+i]
		den := math.Abs(yv)
		if den < sanity {
			den = sanity
		}
		w := 1 / (den * den)
		sw += w
		swx += w * xv
		swy += w * yv
		swxy += w * xv * yv
		swx2 += w * xv * xv
		swy2 += w * yv * yv
	}
	return weightedFromSums(sw, swx, swy, swxy, swx2, swy2)
}

// weightedFromSums solves the weighted normal equations and reports the
// weighted residual sum of squares.
func weightedFromSums(sw, swx, swy, swxy, swx2, swy2 float64) Fit {
	mx := swx / sw
	my := swy / sw
	varX := swx2/sw - mx*mx
	varY := swy2/sw - my*my
	cov := swxy/sw - mx*my
	if varX <= epsVar {
		err := sw * varY
		if err < 0 {
			err = 0
		}
		return Fit{A: 0, B: my, Err: err}
	}
	a := cov / varX
	b := my - a*mx
	err := sw * (varY - a*cov)
	if err < 0 {
		err = 0
	}
	return Fit{A: a, B: b, Err: err}
}

// Evaluate returns the approximation a·X[startX+i]+b of the fit over the
// segment, as a new series of the given length.
func (f Fit) Evaluate(x timeseries.Series, startX, length int) timeseries.Series {
	out := make(timeseries.Series, length)
	for i := 0; i < length; i++ {
		out[i] = f.A*x[startX+i] + f.B
	}
	return out
}

// EvaluateRamp returns the approximation a·i+b for i in [0, length).
func (f Fit) EvaluateRamp(length int) timeseries.Series {
	out := make(timeseries.Series, length)
	for i := 0; i < length; i++ {
		out[i] = f.A*float64(i) + f.B
	}
	return out
}
