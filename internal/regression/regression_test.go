package regression

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

func randSeries(rng *rand.Rand, n int) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 10
	}
	return s
}

// bruteSSE evaluates the SSE of the line (a, b) over the paired segment.
func bruteSSE(x, y timeseries.Series, startX, startY, length int, a, b float64) float64 {
	var err float64
	for i := 0; i < length; i++ {
		d := y[startY+i] - (a*x[startX+i] + b)
		err += d * d
	}
	return err
}

func TestSSEExactLine(t *testing.T) {
	x := timeseries.Series{1, 2, 3, 4, 5}
	y := make(timeseries.Series, 5)
	for i := range y {
		y[i] = 3*x[i] - 7
	}
	fit := SSE(x, y, 0, 0, 5)
	if math.Abs(fit.A-3) > 1e-9 || math.Abs(fit.B+7) > 1e-9 || fit.Err > 1e-12 {
		t.Errorf("exact line fit = %+v, want a=3 b=-7 err=0", fit)
	}
}

func TestSSEMatchesReportedError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randSeries(rng, 50)
	y := randSeries(rng, 50)
	fit := SSE(x, y, 10, 5, 30)
	brute := bruteSSE(x, y, 10, 5, 30, fit.A, fit.B)
	if math.Abs(fit.Err-brute) > 1e-6*(1+brute) {
		t.Errorf("reported err %v, recomputed %v", fit.Err, brute)
	}
}

// Property: the closed-form fit is optimal — no perturbation of (a, b)
// lowers the SSE.
func TestSSEOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 3
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		fit := SSE(x, y, 0, 0, n)
		for trial := 0; trial < 10; trial++ {
			da := rng.NormFloat64() * 0.1
			db := rng.NormFloat64() * 0.1
			perturbed := bruteSSE(x, y, 0, 0, n, fit.A+da, fit.B+db)
			if perturbed < fit.Err-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSSEDegenerateConstantX(t *testing.T) {
	x := timeseries.Series{5, 5, 5, 5}
	y := timeseries.Series{1, 2, 3, 4}
	fit := SSE(x, y, 0, 0, 4)
	if fit.A != 0 {
		t.Errorf("constant-X fit slope = %v, want 0", fit.A)
	}
	if math.Abs(fit.B-2.5) > 1e-12 {
		t.Errorf("constant-X fit intercept = %v, want mean 2.5", fit.B)
	}
	if math.Abs(fit.Err-5.0) > 1e-9 { // Σ(y−2.5)² = 2.25+0.25+0.25+2.25
		t.Errorf("constant-X fit err = %v, want 5", fit.Err)
	}
}

func TestSSEZeroAndOneLength(t *testing.T) {
	x := timeseries.Series{1, 2}
	y := timeseries.Series{3, 4}
	if fit := SSE(x, y, 0, 0, 0); fit != (Fit{}) {
		t.Errorf("zero-length fit = %+v, want zero value", fit)
	}
	fit := SSE(x, y, 0, 0, 1)
	if fit.Err > 1e-12 {
		t.Errorf("single-point fit err = %v, want 0", fit.Err)
	}
}

func TestSSEWithPrefixMatchesSSE(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randSeries(rng, 100)
	y := randSeries(rng, 100)
	px := timeseries.NewPrefix(x)
	for trial := 0; trial < 50; trial++ {
		length := rng.Intn(30) + 1
		sx := rng.Intn(100 - length)
		sy := rng.Intn(100 - length)
		var sumY, sumY2 float64
		for i := 0; i < length; i++ {
			v := y[sy+i]
			sumY += v
			sumY2 += v * v
		}
		want := SSE(x, y, sx, sy, length)
		got := SSEWithPrefix(x, px, y, sumY, sumY2, sx, sy, length)
		if math.Abs(got.A-want.A) > 1e-9 || math.Abs(got.B-want.B) > 1e-9 ||
			math.Abs(got.Err-want.Err) > 1e-6*(1+want.Err) {
			t.Fatalf("prefix fit %+v differs from direct fit %+v", got, want)
		}
	}
}

func TestRampMatchesExplicitIndexSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	y := randSeries(rng, 64)
	ramp := make(timeseries.Series, 64)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	for _, seg := range [][2]int{{0, 64}, {5, 20}, {60, 3}, {10, 1}} {
		start, length := seg[0], seg[1]
		want := SSE(ramp, y, 0, start, length)
		got := Ramp(y, start, length)
		if math.Abs(got.A-want.A) > 1e-9 || math.Abs(got.B-want.B) > 1e-9 ||
			math.Abs(got.Err-want.Err) > 1e-6*(1+want.Err) {
			t.Errorf("Ramp(%d,%d) = %+v, want %+v", start, length, got, want)
		}
	}
}

// bruteRelative evaluates the weighted (relative) error of a line.
func bruteRelative(x, y timeseries.Series, length int, a, b, sanity float64) float64 {
	var err float64
	for i := 0; i < length; i++ {
		den := math.Abs(y[i])
		if den < sanity {
			den = sanity
		}
		d := (y[i] - (a*x[i] + b)) / den
		err += d * d
	}
	return err
}

func TestRelativeOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 3
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		fit := Relative(x, y, 0, 0, n, 1)
		base := bruteRelative(x, y, n, fit.A, fit.B, 1)
		if math.Abs(base-fit.Err) > 1e-6*(1+base) {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			da := rng.NormFloat64() * 0.05
			db := rng.NormFloat64() * 0.05
			if bruteRelative(x, y, n, fit.A+da, fit.B+db, 1) < fit.Err-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRelativeExactLine(t *testing.T) {
	x := timeseries.Series{1, 2, 3, 4}
	y := timeseries.Series{11, 21, 31, 41}
	fit := Relative(x, y, 0, 0, 4, 1)
	if math.Abs(fit.A-10) > 1e-9 || math.Abs(fit.B-1) > 1e-9 || fit.Err > 1e-12 {
		t.Errorf("relative exact-line fit = %+v", fit)
	}
}

func TestRampRelativeMatchesRelativeOnRamp(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	y := randSeries(rng, 32)
	ramp := make(timeseries.Series, 32)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	want := Relative(ramp, y, 0, 0, 32, 1)
	got := RampRelative(y, 0, 32, 1)
	if math.Abs(got.A-want.A) > 1e-9 || math.Abs(got.Err-want.Err) > 1e-9 {
		t.Errorf("RampRelative = %+v, want %+v", got, want)
	}
}

func TestEvaluateHelpers(t *testing.T) {
	fit := Fit{A: 2, B: 1}
	x := timeseries.Series{0, 1, 2}
	got := fit.Evaluate(x, 0, 3)
	if !timeseries.Equal(got, timeseries.Series{1, 3, 5}, 1e-12) {
		t.Errorf("Evaluate = %v", got)
	}
	gotRamp := fit.EvaluateRamp(3)
	if !timeseries.Equal(gotRamp, timeseries.Series{1, 3, 5}, 1e-12) {
		t.Errorf("EvaluateRamp = %v", gotRamp)
	}
}

func TestFitterDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randSeries(rng, 20)
	y := randSeries(rng, 20)
	for _, kind := range []metrics.Kind{metrics.SSE, metrics.RelativeSSE, metrics.MaxAbs} {
		fitter := Fitter{Kind: kind}
		fit := fitter.Fit(x, y, 0, 0, 20)
		approx := fit.Evaluate(x, 0, 20)
		reported := metrics.Eval(kind, y[:20], approx)
		if math.Abs(reported-fit.Err) > 1e-6*(1+fit.Err) {
			t.Errorf("%v: reported err %v, recomputed %v", kind, fit.Err, reported)
		}
		rampFit := fitter.FitRamp(y, 0, 20)
		rampApprox := rampFit.EvaluateRamp(20)
		rampErr := metrics.Eval(kind, y[:20], rampApprox)
		if math.Abs(rampErr-rampFit.Err) > 1e-6*(1+rampFit.Err) {
			t.Errorf("%v ramp: reported err %v, recomputed %v", kind, rampFit.Err, rampErr)
		}
	}
}

func TestFitterErrorMethod(t *testing.T) {
	x := timeseries.Series{1, 2, 3}
	y := timeseries.Series{2, 4, 6}
	fitter := Fitter{Kind: metrics.SSE}
	if got := fitter.Error(x, y, 0, 0, 3, 2, 0); got > 1e-12 {
		t.Errorf("exact-fit Error = %v, want 0", got)
	}
	if got := fitter.Error(x, y, 0, 0, 3, 0, 0); math.Abs(got-56) > 1e-9 {
		t.Errorf("zero-line Error = %v, want 56", got)
	}
}

func TestFitterUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown metric kind did not panic")
		}
	}()
	Fitter{Kind: metrics.Kind(9)}.Fit(timeseries.Series{1}, timeseries.Series{1}, 0, 0, 1)
}
