package regression

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sbr/internal/timeseries"
)

func bruteQuadSSE(x, y timeseries.Series, length int, a, b, c float64) float64 {
	var err float64
	for i := 0; i < length; i++ {
		d := y[i] - (c*x[i]*x[i] + a*x[i] + b)
		err += d * d
	}
	return err
}

func TestQuadExactParabola(t *testing.T) {
	x := timeseries.Series{-2, -1, 0, 1, 2, 3}
	y := make(timeseries.Series, len(x))
	for i, xv := range x {
		y[i] = 2*xv*xv - 3*xv + 5
	}
	fit := Quad(x, y, 0, 0, len(x))
	if math.Abs(fit.C-2) > 1e-8 || math.Abs(fit.A+3) > 1e-8 || math.Abs(fit.B-5) > 1e-8 {
		t.Errorf("parabola fit = %+v", fit)
	}
	if fit.Err > 1e-9 {
		t.Errorf("parabola fit err = %v", fit.Err)
	}
}

func TestQuadReducesToLinearOnLine(t *testing.T) {
	x := timeseries.Series{1, 2, 3, 4, 5}
	y := make(timeseries.Series, len(x))
	for i, xv := range x {
		y[i] = 4*xv - 1
	}
	fit := Quad(x, y, 0, 0, len(x))
	if fit.Err > 1e-9 {
		t.Errorf("line fit err = %v", fit.Err)
	}
	approx := fit.Evaluate(x, 0, len(x))
	if !timeseries.Equal(approx, y, 1e-6) {
		t.Errorf("line evaluation = %v, want %v", approx, y)
	}
}

func TestQuadDegenerateFallsBackToLinear(t *testing.T) {
	// Constant X: singular system, fall back to the horizontal line.
	x := timeseries.Series{3, 3, 3, 3}
	y := timeseries.Series{1, 2, 3, 4}
	fit := Quad(x, y, 0, 0, 4)
	if fit.C != 0 {
		t.Errorf("degenerate fit kept a quadratic term: %+v", fit)
	}
	if math.Abs(fit.B-2.5) > 1e-9 {
		t.Errorf("degenerate fit intercept %v, want 2.5", fit.B)
	}
	// Two distinct X values: x² is linearly dependent on {x, 1}, again
	// singular; the fit must still be as good as the best line (exact here).
	x = timeseries.Series{1, 1, 2, 2}
	y = timeseries.Series{5, 5, 9, 9}
	fit = Quad(x, y, 0, 0, 4)
	if fit.Err > 1e-9 {
		t.Errorf("two-level fit err = %v", fit.Err)
	}
}

func TestQuadZeroLength(t *testing.T) {
	if fit := Quad(nil, nil, 0, 0, 0); fit != (QuadFit{}) {
		t.Errorf("empty fit = %+v", fit)
	}
}

// Property: the quadratic fit never loses to the linear fit, and no
// perturbation of its coefficients lowers the SSE.
func TestQuadOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 4
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		quad := Quad(x, y, 0, 0, n)
		lin := SSE(x, y, 0, 0, n)
		if quad.Err > lin.Err+1e-6*(1+lin.Err) {
			return false
		}
		if math.Abs(bruteQuadSSE(x, y, n, quad.A, quad.B, quad.C)-quad.Err) > 1e-5*(1+quad.Err) {
			return false
		}
		for trial := 0; trial < 8; trial++ {
			da := rng.NormFloat64() * 0.01
			db := rng.NormFloat64() * 0.01
			dc := rng.NormFloat64() * 0.01
			if bruteQuadSSE(x, y, n, quad.A+da, quad.B+db, quad.C+dc) < quad.Err-1e-6*(1+quad.Err) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRampQuadMatchesExplicitRamp(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	y := randSeries(rng, 32)
	ramp := make(timeseries.Series, 32)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	want := Quad(ramp, y, 0, 0, 32)
	got := RampQuad(y, 0, 32)
	if math.Abs(got.Err-want.Err) > 1e-9*(1+want.Err) {
		t.Errorf("RampQuad err %v, want %v", got.Err, want.Err)
	}
	approx := got.EvaluateRamp(32)
	var sse float64
	for i := range y {
		d := y[i] - approx[i]
		sse += d * d
	}
	if math.Abs(sse-got.Err) > 1e-6*(1+got.Err) {
		t.Errorf("EvaluateRamp error %v differs from reported %v", sse, got.Err)
	}
}

func TestSolve3KnownSystem(t *testing.T) {
	// x + y + z = 6; 2y + 5z = -4; 2x + 5y - z = 27 → (5, 3, -2).
	sol, ok := solve3(
		[3][3]float64{{1, 1, 1}, {0, 2, 5}, {2, 5, -1}},
		[3]float64{6, -4, 27},
	)
	if !ok {
		t.Fatal("solvable system reported singular")
	}
	want := [3]float64{5, 3, -2}
	for i := range want {
		if math.Abs(sol[i]-want[i]) > 1e-9 {
			t.Errorf("sol[%d] = %v, want %v", i, sol[i], want[i])
		}
	}
	if _, ok := solve3([3][3]float64{}, [3]float64{1, 2, 3}); ok {
		t.Error("zero matrix reported solvable")
	}
	// Rank-2 matrix.
	if _, ok := solve3(
		[3][3]float64{{1, 2, 3}, {2, 4, 6}, {1, 0, 1}},
		[3]float64{1, 2, 3},
	); ok {
		t.Error("rank-deficient matrix reported solvable")
	}
}
