// Package metrics defines the approximation-error metrics used throughout
// the SBR framework and its evaluation: sum squared error, mean squared
// error, sum squared relative error, and maximum absolute error. The SBR
// algorithms are parameterised by a Kind so that switching the optimisation
// target requires no structural changes (paper Sections 2 and 4.5).
package metrics

import (
	"fmt"
	"math"
)

// Kind identifies an error metric.
type Kind int

const (
	// SSE is the sum of squared residuals, the paper's default target.
	SSE Kind = iota
	// RelativeSSE is the sum of squared relative residuals
	// Σ ((y−ŷ)/max(|y|, Sanity))², the second metric of Table 3.
	RelativeSSE
	// MaxAbs is the maximum absolute residual, the strict-error-bound
	// metric of Section 4.5.
	MaxAbs
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SSE:
		return "sse"
	case RelativeSSE:
		return "relative-sse"
	case MaxAbs:
		return "max-abs"
	default:
		return fmt.Sprintf("metrics.Kind(%d)", int(k))
	}
}

// DefaultSanity is the default sanity bound used by relative-error metrics
// to avoid division by values arbitrarily close to zero. Standard practice
// in the approximate query processing literature.
const DefaultSanity = 1.0

// SumSquared returns Σ (y[i] − approx[i])².
func SumSquared(y, approx []float64) float64 {
	var err float64
	for i := range y {
		d := y[i] - approx[i]
		err += d * d
	}
	return err
}

// MeanSquared returns SumSquared / len(y), or 0 for empty input.
func MeanSquared(y, approx []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	return SumSquared(y, approx) / float64(len(y))
}

// SumSquaredRelative returns Σ ((y[i]−approx[i]) / max(|y[i]|, sanity))².
// A non-positive sanity is replaced by DefaultSanity.
func SumSquaredRelative(y, approx []float64, sanity float64) float64 {
	if sanity <= 0 {
		sanity = DefaultSanity
	}
	var err float64
	for i := range y {
		den := math.Abs(y[i])
		if den < sanity {
			den = sanity
		}
		d := (y[i] - approx[i]) / den
		err += d * d
	}
	return err
}

// MaxAbsolute returns max_i |y[i] − approx[i]|, or 0 for empty input.
func MaxAbsolute(y, approx []float64) float64 {
	var m float64
	for i := range y {
		d := math.Abs(y[i] - approx[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Eval computes the metric identified by k. For RelativeSSE the
// DefaultSanity bound is used.
func Eval(k Kind, y, approx []float64) float64 {
	switch k {
	case SSE:
		return SumSquared(y, approx)
	case RelativeSSE:
		return SumSquaredRelative(y, approx, DefaultSanity)
	case MaxAbs:
		return MaxAbsolute(y, approx)
	default:
		panic("metrics: unknown kind " + k.String())
	}
}

// Combine merges the per-segment errors a and b into the error of the union
// of the two segments: addition for the sum-based metrics, maximum for
// MaxAbs.
func Combine(k Kind, a, b float64) float64 {
	if k == MaxAbs {
		return math.Max(a, b)
	}
	return a + b
}

// Zero returns the identity element of Combine for the metric.
func Zero(k Kind) float64 { return 0 }
