package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumSquared(t *testing.T) {
	y := []float64{1, 2, 3}
	yh := []float64{1, 1, 5}
	if got := SumSquared(y, yh); got != 0+1+4 {
		t.Errorf("SumSquared = %v, want 5", got)
	}
	if got := SumSquared(nil, nil); got != 0 {
		t.Errorf("SumSquared(empty) = %v, want 0", got)
	}
}

func TestMeanSquared(t *testing.T) {
	y := []float64{0, 0}
	yh := []float64{2, 4}
	if got := MeanSquared(y, yh); got != 10 {
		t.Errorf("MeanSquared = %v, want 10", got)
	}
	if got := MeanSquared(nil, nil); got != 0 {
		t.Errorf("MeanSquared(empty) = %v, want 0", got)
	}
}

func TestSumSquaredRelative(t *testing.T) {
	y := []float64{10, -10}
	yh := []float64{9, -8}
	// Residuals 1 and -2 over |y| = 10 each: 0.01 + 0.04.
	if got := SumSquaredRelative(y, yh, 1); !close(got, 0.05) {
		t.Errorf("SumSquaredRelative = %v, want 0.05", got)
	}
}

func TestSumSquaredRelativeSanityBound(t *testing.T) {
	// |y| below the sanity bound must be divided by the bound, not by |y|.
	y := []float64{0.1}
	yh := []float64{0.2}
	got := SumSquaredRelative(y, yh, 1)
	if !close(got, 0.01) {
		t.Errorf("sanity-bounded relative error = %v, want 0.01", got)
	}
	// Non-positive sanity falls back to DefaultSanity.
	if got := SumSquaredRelative(y, yh, -5); !close(got, 0.01) {
		t.Errorf("negative sanity: got %v, want 0.01", got)
	}
}

func TestMaxAbsolute(t *testing.T) {
	y := []float64{1, 5, -3}
	yh := []float64{2, 5, 1}
	if got := MaxAbsolute(y, yh); got != 4 {
		t.Errorf("MaxAbsolute = %v, want 4", got)
	}
	if got := MaxAbsolute(nil, nil); got != 0 {
		t.Errorf("MaxAbsolute(empty) = %v, want 0", got)
	}
}

func TestEvalDispatch(t *testing.T) {
	y := []float64{2, 4}
	yh := []float64{3, 2}
	if got := Eval(SSE, y, yh); !close(got, 5) {
		t.Errorf("Eval(SSE) = %v, want 5", got)
	}
	if got := Eval(MaxAbs, y, yh); got != 2 {
		t.Errorf("Eval(MaxAbs) = %v, want 2", got)
	}
	want := 1.0/4 + 4.0/16 // residuals −1 over |2| and 2 over |4|
	if got := Eval(RelativeSSE, y, yh); !close(got, want) {
		t.Errorf("Eval(RelativeSSE) = %v, want %v", got, want)
	}
}

func TestEvalUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval with unknown kind did not panic")
		}
	}()
	Eval(Kind(99), []float64{1}, []float64{1})
}

func TestCombine(t *testing.T) {
	if got := Combine(SSE, 2, 3); got != 5 {
		t.Errorf("Combine(SSE) = %v, want 5", got)
	}
	if got := Combine(RelativeSSE, 2, 3); got != 5 {
		t.Errorf("Combine(RelativeSSE) = %v, want 5", got)
	}
	if got := Combine(MaxAbs, 2, 3); got != 3 {
		t.Errorf("Combine(MaxAbs) = %v, want 3", got)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{SSE: "sse", RelativeSSE: "relative-sse", MaxAbs: "max-abs"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(42).String(); got != "metrics.Kind(42)" {
		t.Errorf("unknown kind String = %q", got)
	}
}

// Property: SSE is zero iff the approximation is exact, and always
// non-negative; MaxAbs bounds the per-element residual implied by SSE.
func TestMetricProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%32) + 1
		y := make([]float64, n)
		yh := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64() * 5
			yh[i] = y[i] + rng.NormFloat64()
		}
		sse := SumSquared(y, yh)
		maxAbs := MaxAbsolute(y, yh)
		if sse < 0 {
			return false
		}
		// max|r| <= sqrt(SSE) and SSE <= n*max|r|^2
		if maxAbs > math.Sqrt(sse)+1e-9 {
			return false
		}
		if sse > float64(n)*maxAbs*maxAbs+1e-9 {
			return false
		}
		if got := SumSquared(y, y); got != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the relative error with a huge sanity bound approaches
// SSE/sanity².
func TestRelativeSanityLimitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		y := make([]float64, n)
		yh := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64()
			yh[i] = y[i] + rng.NormFloat64()
		}
		const sanity = 1e6
		rel := SumSquaredRelative(y, yh, sanity)
		want := SumSquared(y, yh) / (sanity * sanity)
		return close(rel, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
