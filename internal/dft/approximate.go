package dft

import (
	"math"
	"sort"

	"sbr/internal/timeseries"
)

// ValuesPerFrequency is the bandwidth cost of one retained frequency of a
// real signal: its index and the complex coefficient (the conjugate mirror
// frequency comes for free by symmetry).
const ValuesPerFrequency = 3

// Frequency is one retained DFT frequency of a real signal.
type Frequency struct {
	Index  int
	Re, Im float64
}

// Synopsis is a sparse Fourier representation of a real signal.
type Synopsis struct {
	Length int
	Freqs  []Frequency
}

// Cost returns the bandwidth cost of the synopsis in values.
func (s Synopsis) Cost() int { return ValuesPerFrequency * len(s.Freqs) }

// TopB keeps the b energy-dominant frequencies of s. Only frequencies in
// [0, n/2] are candidates; each retained k>0 implicitly restores its
// conjugate mirror n−k, so the reconstruction stays real.
func TopB(s timeseries.Series, b int) Synopsis {
	n := len(s)
	re := append([]float64(nil), s...)
	im := make([]float64, n)
	FFT(re, im)

	half := n / 2
	idx := make([]int, 0, half+1)
	for k := 0; k <= half; k++ {
		idx = append(idx, k)
	}
	energy := func(k int) float64 {
		e := re[k]*re[k] + im[k]*im[k]
		if k != 0 && 2*k != n {
			e *= 2 // the mirror frequency doubles the captured energy
		}
		return e
	}
	sort.Slice(idx, func(i, j int) bool { return energy(idx[i]) > energy(idx[j]) })
	if b > len(idx) {
		b = len(idx)
	}
	if b < 0 {
		b = 0
	}
	kept := make([]Frequency, b)
	for i := 0; i < b; i++ {
		k := idx[i]
		kept[i] = Frequency{Index: k, Re: re[k], Im: im[k]}
	}
	return Synopsis{Length: n, Freqs: kept}
}

// Reconstruct materialises the approximate signal.
func (s Synopsis) Reconstruct() timeseries.Series {
	n := s.Length
	re := make([]float64, n)
	im := make([]float64, n)
	for _, f := range s.Freqs {
		re[f.Index] = f.Re
		im[f.Index] = f.Im
		if f.Index != 0 && 2*f.Index != n {
			re[n-f.Index] = f.Re
			im[n-f.Index] = -f.Im
		}
	}
	IFFT(re, im)
	out := make(timeseries.Series, n)
	copy(out, re)
	return out
}

// Approximate compresses s into at most budget values and returns the
// reconstruction.
func Approximate(s timeseries.Series, budget int) timeseries.Series {
	return TopB(s, budget/ValuesPerFrequency).Reconstruct()
}

// ApproximateRows compresses the batch under a shared budget, choosing the
// better of a concatenated transform and an equal per-row split, mirroring
// the methodology used for the other transform baselines.
func ApproximateRows(rows []timeseries.Series, budget int) []timeseries.Series {
	y := timeseries.Concat(rows...)
	concat := splitLike(Approximate(y, budget), rows)

	split := make([]timeseries.Series, len(rows))
	if len(rows) > 0 {
		per := budget / len(rows)
		for i, r := range rows {
			split[i] = Approximate(r, per)
		}
	}
	if sse(rows, split) < sse(rows, concat) {
		return split
	}
	return concat
}

func splitLike(y timeseries.Series, like []timeseries.Series) []timeseries.Series {
	out := make([]timeseries.Series, len(like))
	off := 0
	for i, r := range like {
		out[i] = y[off : off+len(r)]
		off += len(r)
	}
	return out
}

func sse(y, approx []timeseries.Series) float64 {
	var t float64
	for i := range y {
		for j := range y[i] {
			d := y[i][j] - approx[i][j]
			t += d * d
		}
	}
	if math.IsNaN(t) {
		return math.Inf(1)
	}
	return t
}
