// Package dft provides the discrete Fourier machinery the evaluation needs:
// an iterative radix-2 FFT, a Bluestein chirp-z fallback for arbitrary
// lengths, and a top-B sparse approximation of real signals (the Fourier
// competitor the paper mentions produced "consistently larger errors than
// DCT"). The DCT package builds its fast transform on this FFT.
package dft

import "math"

// FFT computes the in-place forward discrete Fourier transform of the
// complex sequence (re, im). Any length is supported: powers of two run
// the radix-2 algorithm directly, other lengths use Bluestein's chirp-z
// reduction to a power-of-two convolution.
func FFT(re, im []float64) {
	transform(re, im, false)
}

// IFFT computes the inverse transform, including the 1/n scaling.
func IFFT(re, im []float64) {
	transform(re, im, true)
	n := float64(len(re))
	for i := range re {
		re[i] /= n
		im[i] /= n
	}
}

func transform(re, im []float64, inverse bool) {
	if len(re) != len(im) {
		panic("dft: mismatched real and imaginary lengths")
	}
	n := len(re)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(re, im, inverse)
		return
	}
	bluestein(re, im, inverse)
}

// radix2 is the iterative Cooley–Tukey algorithm for power-of-two lengths.
func radix2(re, im []float64, inverse bool) {
	n := len(re)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			curRe, curIm := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				i, j := start+k, start+k+half
				tRe := re[j]*curRe - im[j]*curIm
				tIm := re[j]*curIm + im[j]*curRe
				re[j] = re[i] - tRe
				im[j] = im[i] - tIm
				re[i] += tRe
				im[i] += tIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
}

// bluestein reduces an arbitrary-length DFT to a cyclic convolution of
// power-of-two length: x[k]·w^(k²/2) convolved with the conjugate chirp.
func bluestein(re, im []float64, inverse bool) {
	n := len(re)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp c[k] = exp(sign·iπk²/n). k² mod 2n avoids precision loss for
	// large k.
	chirpRe := make([]float64, n)
	chirpIm := make([]float64, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		chirpRe[k] = math.Cos(ang)
		chirpIm[k] = math.Sin(ang)
	}
	m := 1
	for m < 2*n-1 {
		m *= 2
	}
	aRe := make([]float64, m)
	aIm := make([]float64, m)
	for k := 0; k < n; k++ {
		aRe[k] = re[k]*chirpRe[k] - im[k]*chirpIm[k]
		aIm[k] = re[k]*chirpIm[k] + im[k]*chirpRe[k]
	}
	bRe := make([]float64, m)
	bIm := make([]float64, m)
	bRe[0], bIm[0] = chirpRe[0], -chirpIm[0]
	for k := 1; k < n; k++ {
		bRe[k], bIm[k] = chirpRe[k], -chirpIm[k]
		bRe[m-k], bIm[m-k] = chirpRe[k], -chirpIm[k]
	}
	radix2(aRe, aIm, false)
	radix2(bRe, bIm, false)
	for k := 0; k < m; k++ {
		aRe[k], aIm[k] = aRe[k]*bRe[k]-aIm[k]*bIm[k], aRe[k]*bIm[k]+aIm[k]*bRe[k]
	}
	radix2(aRe, aIm, true)
	scale := 1 / float64(m)
	for k := 0; k < n; k++ {
		cr, ci := aRe[k]*scale, aIm[k]*scale
		re[k] = cr*chirpRe[k] - ci*chirpIm[k]
		im[k] = cr*chirpIm[k] + ci*chirpRe[k]
	}
}
