package dft

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sbr/internal/timeseries"
)

// naiveDFT is the O(n²) reference transform.
func naiveDFT(re, im []float64) ([]float64, []float64) {
	n := len(re)
	outRe := make([]float64, n)
	outIm := make([]float64, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			outRe[k] += re[t]*c - im[t]*s
			outIm[k] += re[t]*s + im[t]*c
		}
	}
	return outRe, outIm
}

func TestFFTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 20, 31, 32, 100} {
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			im[i] = rng.NormFloat64()
		}
		wantRe, wantIm := naiveDFT(re, im)
		gotRe := append([]float64(nil), re...)
		gotIm := append([]float64(nil), im...)
		FFT(gotRe, gotIm)
		for k := 0; k < n; k++ {
			if math.Abs(gotRe[k]-wantRe[k]) > 1e-6 || math.Abs(gotIm[k]-wantIm[k]) > 1e-6 {
				t.Fatalf("n=%d k=%d: FFT (%v,%v), naive (%v,%v)",
					n, k, gotRe[k], gotIm[k], wantRe[k], wantIm[k])
			}
		}
	}
}

func TestFFTIFFTIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 8, 12, 33, 64, 100} {
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			im[i] = rng.NormFloat64()
		}
		origRe := append([]float64(nil), re...)
		origIm := append([]float64(nil), im...)
		FFT(re, im)
		IFFT(re, im)
		for i := 0; i < n; i++ {
			if math.Abs(re[i]-origRe[i]) > 1e-8 || math.Abs(im[i]-origIm[i]) > 1e-8 {
				t.Fatalf("n=%d: round trip diverged at %d", n, i)
			}
		}
	}
}

func TestFFTMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths did not panic")
		}
	}()
	FFT(make([]float64, 4), make([]float64, 3))
}

// Property: Parseval for the DFT — Σ|x|² = (1/n)·Σ|X|².
func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		re := make([]float64, n)
		im := make([]float64, n)
		var et float64
		for i := range re {
			re[i] = rng.NormFloat64()
			im[i] = rng.NormFloat64()
			et += re[i]*re[i] + im[i]*im[i]
		}
		FFT(re, im)
		var ef float64
		for i := range re {
			ef += re[i]*re[i] + im[i]*im[i]
		}
		return math.Abs(et-ef/float64(n)) < 1e-6*(1+et)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSynopsisReconstructIsReal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := make(timeseries.Series, 25)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	syn := TopB(s, 5)
	rec := syn.Reconstruct()
	if len(rec) != 25 {
		t.Fatalf("reconstruction length %d", len(rec))
	}
	if syn.Cost() != 15 {
		t.Errorf("Cost = %d, want 15", syn.Cost())
	}
}

func TestSynopsisFullBudgetExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 9, 16, 21} {
		s := make(timeseries.Series, n)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		syn := TopB(s, n) // keeps all n/2+1 candidate frequencies
		rec := syn.Reconstruct()
		if !timeseries.Equal(rec, s, 1e-8) {
			t.Errorf("n=%d: full-frequency reconstruction diverged", n)
		}
	}
}

func TestPureToneCapturedByOneFrequency(t *testing.T) {
	n := 32
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = math.Sin(2 * math.Pi * 3 * float64(i) / float64(n))
	}
	rec := TopB(s, 1).Reconstruct()
	if !timeseries.Equal(rec, s, 1e-8) {
		t.Error("pure tone not captured by a single retained frequency")
	}
}

func TestApproximateRowsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := []timeseries.Series{make(timeseries.Series, 20), make(timeseries.Series, 20)}
	for i := range rows {
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	out := ApproximateRows(rows, 12)
	if len(out) != 2 || len(out[0]) != 20 {
		t.Fatal("ApproximateRows changed the shape")
	}
}
