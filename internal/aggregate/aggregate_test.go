package aggregate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartialMergeMatchesFlatAggregation(t *testing.T) {
	vals := []float64{3, -1, 7, 7, 0.5}
	var p Partial
	for _, v := range vals {
		p.Add(v)
	}
	check := func(f Func, want float64) {
		t.Helper()
		got, err := p.Value(f)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%v = %v, want %v", f, got, want)
		}
	}
	check(Sum, 16.5)
	check(Count, 5)
	check(Avg, 3.3)
	check(Min, -1)
	check(Max, 7)
}

func TestPartialEmpty(t *testing.T) {
	var p Partial
	if _, err := p.Value(Avg); err == nil {
		t.Error("empty partial evaluated")
	}
	// Merging empty into non-empty and vice versa.
	q := NewPartial(4)
	q.Merge(Partial{})
	if v, _ := q.Value(Count); v != 1 {
		t.Error("merging an empty partial changed the state")
	}
	var r Partial
	r.Merge(q)
	if v, _ := r.Value(Sum); v != 4 {
		t.Error("merging into an empty partial lost the state")
	}
}

func TestValueUnknownFunc(t *testing.T) {
	p := NewPartial(1)
	if _, err := p.Value(Func(42)); err == nil {
		t.Error("unknown function evaluated")
	}
	if Func(42).String() == "" {
		t.Error("empty String for unknown func")
	}
}

// Property: merging partials in any grouping gives the same result as
// aggregating the flat list (associativity/commutativity — the TAG
// decomposability requirement).
func TestMergeOrderIndependenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
		}
		var flat Partial
		for _, v := range vals {
			flat.Add(v)
		}
		// Random binary grouping.
		parts := make([]Partial, n)
		for i, v := range vals {
			parts[i] = NewPartial(v)
		}
		for len(parts) > 1 {
			i := rng.Intn(len(parts) - 1)
			parts[i].Merge(parts[i+1])
			parts = append(parts[:i+1], parts[i+2:]...)
		}
		for _, fn := range []Func{Sum, Count, Avg, Min, Max} {
			a, _ := flat.Value(fn)
			b, _ := parts[0].Value(fn)
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func chainTree(t *testing.T) *Tree {
	t.Helper()
	tree, err := NewTree(map[string]string{
		"a": "",
		"b": "a",
		"c": "b",
		"d": "a",
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestTreeEpoch(t *testing.T) {
	tree := chainTree(t)
	root, msgs, bytes, err := tree.Epoch(map[string]float64{
		"a": 1, "b": 2, "c": 3, "d": 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if msgs != 4 {
		t.Errorf("%d messages, want one per node", msgs)
	}
	if bytes != 4*PartialBytes {
		t.Errorf("%d bytes", bytes)
	}
	if v, _ := root.Value(Sum); v != 10 {
		t.Errorf("sum = %v, want 10", v)
	}
	if v, _ := root.Value(Max); v != 4 {
		t.Errorf("max = %v, want 4", v)
	}
	if v, _ := root.Value(Count); v != 4 {
		t.Errorf("count = %v, want 4", v)
	}
}

func TestTreeEpochMissingReading(t *testing.T) {
	tree := chainTree(t)
	if _, _, _, err := tree.Epoch(map[string]float64{"a": 1}); err == nil {
		t.Error("missing readings accepted")
	}
}

func TestTreeValidation(t *testing.T) {
	if _, err := NewTree(map[string]string{"a": "ghost"}); err == nil {
		t.Error("unknown parent accepted")
	}
	if _, err := NewTree(map[string]string{"a": "b", "b": "a"}); err == nil {
		t.Error("cycle accepted")
	}
	if _, err := NewTree(map[string]string{"": ""}); err == nil {
		t.Error("empty node ID accepted")
	}
	if tree, err := NewTree(nil); err != nil || len(tree.Nodes()) != 0 {
		t.Error("empty tree rejected")
	}
}

func TestTreeOrderIsLeavesFirst(t *testing.T) {
	tree := chainTree(t)
	pos := map[string]int{}
	for i, id := range tree.Nodes() {
		pos[id] = i
	}
	// Children must appear before their parents.
	if !(pos["c"] < pos["b"] && pos["b"] < pos["a"] && pos["d"] < pos["a"]) {
		t.Errorf("order %v is not leaves-first", tree.Nodes())
	}
}
