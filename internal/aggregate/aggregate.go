// Package aggregate implements TAG-style in-network aggregation (Madden et
// al., cited as [18] in the paper), the data-reduction alternative the
// paper's introduction contrasts with approximation: non-leaf nodes of the
// routing tree merge their children's partial state records before
// forwarding, so each epoch costs one fixed-size message per node
// regardless of how many sensors contribute. Aggregation reduces volume
// brutally but answers only the registered statistic — the motivating gap
// SBR fills for applications that need detailed histories (Section 1).
package aggregate

import (
	"fmt"
	"math"
	"sort"
)

// Func identifies a decomposable aggregate function.
type Func int

const (
	Sum Func = iota
	Count
	Avg
	Min
	Max
)

// String implements fmt.Stringer.
func (f Func) String() string {
	switch f {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("aggregate.Func(%d)", int(f))
	}
}

// Partial is the partial state record flowing up the aggregation tree: it
// is closed under Merge for every supported Func, the TAG requirement for
// in-network decomposition.
type Partial struct {
	Sum   float64
	Count int
	Min   float64
	Max   float64
}

// NewPartial seeds a partial state record with one reading.
func NewPartial(v float64) Partial {
	return Partial{Sum: v, Count: 1, Min: v, Max: v}
}

// Merge folds another partial record into p.
func (p *Partial) Merge(o Partial) {
	if o.Count == 0 {
		return
	}
	if p.Count == 0 {
		*p = o
		return
	}
	p.Sum += o.Sum
	p.Count += o.Count
	p.Min = math.Min(p.Min, o.Min)
	p.Max = math.Max(p.Max, o.Max)
}

// Add folds one reading into p.
func (p *Partial) Add(v float64) { p.Merge(NewPartial(v)) }

// Value evaluates the aggregate function over the merged state.
func (p Partial) Value(f Func) (float64, error) {
	if p.Count == 0 {
		return 0, fmt.Errorf("aggregate: %v of empty partial", f)
	}
	switch f {
	case Sum:
		return p.Sum, nil
	case Count:
		return float64(p.Count), nil
	case Avg:
		return p.Sum / float64(p.Count), nil
	case Min:
		return p.Min, nil
	case Max:
		return p.Max, nil
	default:
		return 0, fmt.Errorf("aggregate: unknown function %v", f)
	}
}

// PartialBytes is the wire size of one partial state record: sum, min and
// max as float64 plus a 32-bit count.
const PartialBytes = 8*3 + 4

// Tree is an aggregation tree over named nodes: every node has a parent
// ("" denotes the base station). It mirrors the routing tree the sensor
// network already maintains.
type Tree struct {
	parent   map[string]string
	children map[string][]string
	order    []string // leaves-to-root evaluation order
}

// NewTree builds and validates a tree from a child→parent map. Parents
// must either be "" (the base station) or appear as nodes themselves;
// cycles are rejected.
func NewTree(parent map[string]string) (*Tree, error) {
	t := &Tree{
		parent:   make(map[string]string, len(parent)),
		children: make(map[string][]string),
	}
	for id, p := range parent {
		if id == "" {
			return nil, fmt.Errorf("aggregate: empty node ID")
		}
		if p != "" {
			if _, ok := parent[p]; !ok {
				return nil, fmt.Errorf("aggregate: node %q has unknown parent %q", id, p)
			}
		}
		t.parent[id] = p
		t.children[p] = append(t.children[p], id)
	}
	// Topological order from the base station down, then reversed:
	// deterministic via sorted children.
	for _, kids := range t.children {
		sort.Strings(kids)
	}
	var topDown []string
	frontier := append([]string(nil), t.children[""]...)
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		topDown = append(topDown, id)
		frontier = append(frontier, t.children[id]...)
	}
	if len(topDown) != len(parent) {
		return nil, fmt.Errorf("aggregate: %d of %d nodes reachable from the base station (cycle or orphan)",
			len(topDown), len(parent))
	}
	for i := len(topDown) - 1; i >= 0; i-- {
		t.order = append(t.order, topDown[i])
	}
	return t, nil
}

// Epoch runs one aggregation epoch: every node contributes one reading,
// partial records flow leaves-to-root with merging at every hop, and the
// merged record arrives at the base station. It returns that record plus
// the message count (one per node — the TAG property) and the total bytes
// that crossed the radio.
func (t *Tree) Epoch(readings map[string]float64) (Partial, int, int, error) {
	states := make(map[string]Partial, len(t.parent))
	for id := range t.parent {
		v, ok := readings[id]
		if !ok {
			return Partial{}, 0, 0, fmt.Errorf("aggregate: no reading for node %q", id)
		}
		states[id] = NewPartial(v)
	}
	var root Partial
	messages := 0
	for _, id := range t.order { // leaves first
		s := states[id]
		messages++
		if p := t.parent[id]; p == "" {
			root.Merge(s)
		} else {
			ps := states[p]
			ps.Merge(s)
			states[p] = ps
		}
	}
	return root, messages, messages * PartialBytes, nil
}

// Nodes returns the node IDs in leaves-to-root order.
func (t *Tree) Nodes() []string { return append([]string(nil), t.order...) }
