package histogram

import (
	"sbr/internal/timeseries"
)

// VOptimal builds the SSE-optimal piecewise-constant approximation of s
// with at most the given number of buckets, via the classic dynamic
// program (Jagadish et al.): err[i][b] = min over j of err[j][b−1] +
// sse(j, i). Runtime is O(n²·B) with O(1) segment errors from prefix
// sums — use it on batch-sized inputs, not whole histories. It exists as
// the strongest histogram competitor: if SBR beats V-optimal, it beats
// every bucket layout the simpler heuristics could find.
func VOptimal(s timeseries.Series, buckets int) Histogram {
	n := len(s)
	if buckets <= 0 || n == 0 {
		return Histogram{Length: n}
	}
	if buckets > n {
		buckets = n
	}
	p := timeseries.NewPrefix(s)
	// sse(a, b) of approximating s[a:b) by its mean.
	sse := func(a, b int) float64 {
		length := b - a
		if length <= 1 {
			return 0
		}
		sum := p.Sum(a, length)
		return p.SumSq(a, length) - sum*sum/float64(length)
	}

	const inf = 1e308
	// cost[i] is the best error of covering s[0:i) with the current number
	// of buckets; cut[b][i] records the last boundary.
	cost := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		cost[i] = sse(0, i)
	}
	cut := make([][]int32, buckets+1)
	for b := 2; b <= buckets; b++ {
		next := make([]float64, n+1)
		cut[b] = make([]int32, n+1)
		for i := 0; i <= n; i++ {
			next[i] = inf
		}
		next[0] = 0
		for i := 1; i <= n; i++ {
			best := inf
			var bestJ int32
			// At least one sample per bucket: j ranges over the end of the
			// previous bucket.
			for j := b - 1; j < i; j++ {
				if cost[j] >= best {
					continue
				}
				if c := cost[j] + sse(j, i); c < best {
					best = c
					bestJ = int32(j)
				}
			}
			next[i] = best
			cut[b][i] = bestJ
		}
		cost = next
	}

	// Recover the boundaries.
	ends := make([]int, 0, buckets)
	i := n
	for b := buckets; b >= 2 && i > 0; b-- {
		ends = append(ends, i)
		i = int(cut[b][i])
	}
	ends = append(ends, i)
	// ends currently holds boundaries right-to-left, with the leftmost
	// cut last; reverse into ascending exclusive ends and drop the zero.
	for l, r := 0, len(ends)-1; l < r; l, r = l+1, r-1 {
		ends[l], ends[r] = ends[r], ends[l]
	}
	if len(ends) > 0 && ends[0] == 0 {
		ends = ends[1:]
	}
	if len(ends) == 0 || ends[len(ends)-1] != n {
		ends = append(ends, n)
	}
	return fromBoundaries(s, ends)
}
