// Package histogram implements the histogram competitor of the paper's
// evaluation: piecewise-constant approximations of a time series with
// buckets laid out along the time axis. Equi-depth buckets (equal share of
// the cumulative absolute mass, after Poosala et al.) adapt bucket widths
// to where the signal carries energy; equi-width buckets are the fixed
// layout; MaxDiff places boundaries at the largest jumps.
package histogram

import (
	"math"
	"sort"

	"sbr/internal/timeseries"
)

// ValuesPerBucket is the bandwidth cost of one variable-width bucket: its
// right boundary and its average.
const ValuesPerBucket = 2

// Bucket approximates s[Start:End) by Avg.
type Bucket struct {
	Start, End int
	Avg        float64
}

// Histogram is a piecewise-constant synopsis of a signal.
type Histogram struct {
	Length  int
	Buckets []Bucket
}

// Cost returns the bandwidth cost in values.
func (h Histogram) Cost() int { return ValuesPerBucket * len(h.Buckets) }

// Reconstruct materialises the approximate signal.
func (h Histogram) Reconstruct() timeseries.Series {
	out := make(timeseries.Series, h.Length)
	for _, b := range h.Buckets {
		for i := b.Start; i < b.End; i++ {
			out[i] = b.Avg
		}
	}
	return out
}

// fromBoundaries builds buckets from sorted cut positions (exclusive ends);
// the final boundary must equal len(s).
func fromBoundaries(s timeseries.Series, ends []int) Histogram {
	h := Histogram{Length: len(s)}
	start := 0
	for _, end := range ends {
		if end <= start {
			continue
		}
		h.Buckets = append(h.Buckets, Bucket{
			Start: start,
			End:   end,
			Avg:   s[start:end].Mean(),
		})
		start = end
	}
	return h
}

// EquiWidth builds a histogram of buckets spanning (nearly) equal time
// ranges.
func EquiWidth(s timeseries.Series, buckets int) Histogram {
	n := len(s)
	if buckets <= 0 || n == 0 {
		return Histogram{Length: n}
	}
	if buckets > n {
		buckets = n
	}
	ends := make([]int, buckets)
	for i := 0; i < buckets; i++ {
		ends[i] = (i + 1) * n / buckets
	}
	return fromBoundaries(s, ends)
}

// EquiDepth builds a histogram whose buckets each hold an (approximately)
// equal share of the cumulative absolute mass of the signal, so that
// regions with large values receive narrower buckets.
func EquiDepth(s timeseries.Series, buckets int) Histogram {
	n := len(s)
	if buckets <= 0 || n == 0 {
		return Histogram{Length: n}
	}
	if buckets > n {
		buckets = n
	}
	var total float64
	for _, v := range s {
		total += math.Abs(v)
	}
	if total == 0 {
		return EquiWidth(s, buckets)
	}
	ends := make([]int, 0, buckets)
	var acc float64
	next := 1
	for i, v := range s {
		acc += math.Abs(v)
		for next < buckets && acc >= float64(next)*total/float64(buckets) {
			// Close the bucket at the first position reaching this share,
			// but never emit an empty bucket.
			if len(ends) == 0 || i+1 > ends[len(ends)-1] {
				ends = append(ends, i+1)
			}
			next++
		}
	}
	if len(ends) == 0 || ends[len(ends)-1] != n {
		ends = append(ends, n)
	}
	return fromBoundaries(s, ends)
}

// MaxDiff places bucket boundaries at the buckets−1 largest absolute jumps
// between consecutive samples — the MaxDiff heuristic from the histogram
// literature, included as an ablation competitor.
func MaxDiff(s timeseries.Series, buckets int) Histogram {
	n := len(s)
	if buckets <= 0 || n == 0 {
		return Histogram{Length: n}
	}
	if buckets > n {
		buckets = n
	}
	type jump struct {
		pos  int
		size float64
	}
	jumps := make([]jump, 0, n-1)
	for i := 1; i < n; i++ {
		jumps = append(jumps, jump{pos: i, size: math.Abs(s[i] - s[i-1])})
	}
	sort.Slice(jumps, func(i, j int) bool { return jumps[i].size > jumps[j].size })
	cut := buckets - 1
	if cut > len(jumps) {
		cut = len(jumps)
	}
	ends := make([]int, 0, cut+1)
	for _, j := range jumps[:cut] {
		ends = append(ends, j.pos)
	}
	sort.Ints(ends)
	ends = append(ends, n)
	return fromBoundaries(s, ends)
}

// Approximate compresses s into at most budget values with equi-depth
// buckets and returns the reconstruction.
func Approximate(s timeseries.Series, budget int) timeseries.Series {
	return EquiDepth(s, budget/ValuesPerBucket).Reconstruct()
}

// ApproximateRows compresses the batch under a shared budget, choosing the
// better of a concatenated histogram and an equal per-row split.
func ApproximateRows(rows []timeseries.Series, budget int) []timeseries.Series {
	y := timeseries.Concat(rows...)
	concat := splitLike(Approximate(y, budget), rows)

	split := make([]timeseries.Series, len(rows))
	if len(rows) > 0 {
		per := budget / len(rows)
		for i, r := range rows {
			split[i] = Approximate(r, per)
		}
	}
	if sse(rows, split) < sse(rows, concat) {
		return split
	}
	return concat
}

func splitLike(y timeseries.Series, like []timeseries.Series) []timeseries.Series {
	out := make([]timeseries.Series, len(like))
	off := 0
	for i, r := range like {
		out[i] = y[off : off+len(r)]
		off += len(r)
	}
	return out
}

func sse(y, approx []timeseries.Series) float64 {
	var t float64
	for i := range y {
		for j := range y[i] {
			d := y[i][j] - approx[i][j]
			t += d * d
		}
	}
	return t
}
