package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sbr/internal/timeseries"
)

func randSeries(rng *rand.Rand, n int) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 10
	}
	return s
}

// checkTiling verifies buckets exactly cover [0, n) in order.
func checkTiling(t *testing.T, h Histogram, n int) {
	t.Helper()
	pos := 0
	for _, b := range h.Buckets {
		if b.Start != pos || b.End <= b.Start {
			t.Fatalf("bucket %+v breaks the tiling at %d", b, pos)
		}
		pos = b.End
	}
	if pos != n {
		t.Fatalf("buckets cover [0,%d), want [0,%d)", pos, n)
	}
}

func TestEquiWidthTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randSeries(rng, 100)
	h := EquiWidth(s, 7)
	checkTiling(t, h, 100)
	if len(h.Buckets) != 7 {
		t.Errorf("%d buckets, want 7", len(h.Buckets))
	}
	// Bucket widths differ by at most one.
	for _, b := range h.Buckets {
		w := b.End - b.Start
		if w < 100/7 || w > 100/7+1 {
			t.Errorf("bucket width %d out of equi-width range", w)
		}
	}
}

func TestBucketAveragesAreMeans(t *testing.T) {
	s := timeseries.Series{1, 3, 5, 7, 9, 11}
	h := EquiWidth(s, 2)
	if h.Buckets[0].Avg != 3 || h.Buckets[1].Avg != 9 {
		t.Errorf("bucket averages = %v, %v", h.Buckets[0].Avg, h.Buckets[1].Avg)
	}
	rec := h.Reconstruct()
	want := timeseries.Series{3, 3, 3, 9, 9, 9}
	if !timeseries.Equal(rec, want, 1e-12) {
		t.Errorf("Reconstruct = %v", rec)
	}
}

func TestEquiDepthAdaptsToMass(t *testing.T) {
	// A spike region: equi-depth must place narrow buckets there.
	s := make(timeseries.Series, 100)
	for i := 40; i < 60; i++ {
		s[i] = 1000
	}
	for i := range s {
		if s[i] == 0 {
			s[i] = 1
		}
	}
	h := EquiDepth(s, 10)
	checkTiling(t, h, 100)
	var spikeBuckets int
	for _, b := range h.Buckets {
		if b.Start >= 38 && b.End <= 62 {
			spikeBuckets++
		}
	}
	if spikeBuckets < 5 {
		t.Errorf("only %d buckets inside the spike region, want most of them", spikeBuckets)
	}
}

func TestEquiDepthZeroMassFallsBackToEquiWidth(t *testing.T) {
	s := make(timeseries.Series, 20)
	h := EquiDepth(s, 4)
	checkTiling(t, h, 20)
	if len(h.Buckets) != 4 {
		t.Errorf("%d buckets, want 4", len(h.Buckets))
	}
}

func TestMaxDiffCutsAtJumps(t *testing.T) {
	s := timeseries.Series{1, 1, 1, 50, 50, 50, -20, -20, -20}
	h := MaxDiff(s, 3)
	checkTiling(t, h, len(s))
	if len(h.Buckets) != 3 {
		t.Fatalf("%d buckets, want 3", len(h.Buckets))
	}
	if h.Buckets[0].End != 3 || h.Buckets[1].End != 6 {
		t.Errorf("boundaries at %d,%d, want 3,6", h.Buckets[0].End, h.Buckets[1].End)
	}
	// Perfect reconstruction for this piecewise-constant signal.
	if !timeseries.Equal(h.Reconstruct(), s, 1e-12) {
		t.Error("MaxDiff failed to reconstruct a 3-level signal with 3 buckets")
	}
}

func TestEdgeCases(t *testing.T) {
	if h := EquiWidth(nil, 3); len(h.Buckets) != 0 || h.Length != 0 {
		t.Error("empty input produced buckets")
	}
	if h := EquiWidth(timeseries.Series{1, 2}, 0); len(h.Buckets) != 0 {
		t.Error("zero buckets produced buckets")
	}
	// More buckets than samples clamps.
	h := EquiWidth(timeseries.Series{1, 2}, 10)
	checkTiling(t, h, 2)
	if len(h.Buckets) != 2 {
		t.Errorf("%d buckets for 2 samples", len(h.Buckets))
	}
	h = EquiDepth(timeseries.Series{5}, 3)
	checkTiling(t, h, 1)
	h = MaxDiff(timeseries.Series{5}, 3)
	checkTiling(t, h, 1)
}

func TestCost(t *testing.T) {
	h := EquiWidth(timeseries.Series{1, 2, 3, 4}, 2)
	if h.Cost() != 4 {
		t.Errorf("Cost = %d, want 4", h.Cost())
	}
}

// Property: every histogram variant tiles the series, and per-bucket means
// minimise the SSE of a piecewise-constant approximation (perturbing any
// bucket value only raises the error).
func TestHistogramProperties(t *testing.T) {
	f := func(seed int64, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		buckets := int(bRaw%10) + 1
		s := randSeries(rng, n)
		for _, h := range []Histogram{EquiWidth(s, buckets), EquiDepth(s, buckets), MaxDiff(s, buckets)} {
			pos := 0
			for _, b := range h.Buckets {
				if b.Start != pos || b.End <= b.Start {
					return false
				}
				pos = b.End
			}
			if pos != n {
				return false
			}
			rec := h.Reconstruct()
			var sse float64
			for i := range s {
				d := s[i] - rec[i]
				sse += d * d
			}
			// Perturb each bucket's value: error must not decrease.
			for _, b := range h.Buckets {
				for _, delta := range []float64{0.1, -0.1} {
					var perturbed float64
					for i := range s {
						v := rec[i]
						if i >= b.Start && i < b.End {
							v += delta
						}
						d := s[i] - v
						perturbed += d * d
					}
					if perturbed < sse-1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestApproximateRowsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := []timeseries.Series{randSeries(rng, 30), randSeries(rng, 30)}
	out := ApproximateRows(rows, 16)
	if len(out) != 2 || len(out[0]) != 30 {
		t.Fatal("ApproximateRows changed the shape")
	}
}

func TestApproximateBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randSeries(rng, 50)
	h := EquiDepth(s, 10/ValuesPerBucket)
	if h.Cost() > 10 {
		t.Errorf("cost %d exceeds budget 10", h.Cost())
	}
	rec := Approximate(s, 10)
	if len(rec) != 50 {
		t.Errorf("reconstruction length %d", len(rec))
	}
	_ = math.Pi
}

func TestVOptimalExactOnStepSignal(t *testing.T) {
	s := timeseries.Series{2, 2, 2, 9, 9, -4, -4, -4, -4}
	h := VOptimal(s, 3)
	checkTiling(t, h, len(s))
	if len(h.Buckets) != 3 {
		t.Fatalf("%d buckets, want 3", len(h.Buckets))
	}
	if !timeseries.Equal(h.Reconstruct(), s, 1e-12) {
		t.Errorf("V-optimal failed to reconstruct a 3-level step signal: %v", h.Reconstruct())
	}
}

// TestVOptimalBeatsHeuristics: by definition the DP minimises the SSE over
// all bucket layouts, so it can never lose to equi-width, equi-depth or
// MaxDiff at the same bucket count.
func TestVOptimalBeatsHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(60) + 10
		buckets := rng.Intn(8) + 1
		s := randSeries(rng, n)
		opt := sseOf(s, VOptimal(s, buckets))
		for name, h := range map[string]Histogram{
			"equi-width": EquiWidth(s, buckets),
			"equi-depth": EquiDepth(s, buckets),
			"max-diff":   MaxDiff(s, buckets),
		} {
			if got := sseOf(s, h); opt > got+1e-6*(1+got) {
				t.Fatalf("V-optimal SSE %v worse than %s %v (n=%d b=%d)",
					opt, name, got, n, buckets)
			}
		}
	}
}

// TestVOptimalMatchesBruteForce checks the DP against exhaustive search on
// tiny inputs.
func TestVOptimalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(8) + 2
		buckets := rng.Intn(3) + 1
		s := randSeries(rng, n)
		got := sseOf(s, VOptimal(s, buckets))
		want := bruteBestSSE(s, buckets)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("n=%d b=%d: DP %v, brute force %v", n, buckets, got, want)
		}
	}
}

func TestVOptimalEdgeCases(t *testing.T) {
	if h := VOptimal(nil, 3); len(h.Buckets) != 0 {
		t.Error("empty input produced buckets")
	}
	if h := VOptimal(timeseries.Series{1, 2}, 0); len(h.Buckets) != 0 {
		t.Error("zero buckets produced buckets")
	}
	h := VOptimal(timeseries.Series{3, 1, 4}, 10)
	checkTiling(t, h, 3)
	if got := sseOf(timeseries.Series{3, 1, 4}, h); got > 1e-12 {
		t.Errorf("bucket-per-sample SSE = %v", got)
	}
	h = VOptimal(timeseries.Series{5, 7}, 1)
	checkTiling(t, h, 2)
}

func sseOf(s timeseries.Series, h Histogram) float64 {
	rec := h.Reconstruct()
	var t float64
	for i := range s {
		d := s[i] - rec[i]
		t += d * d
	}
	return t
}

// bruteBestSSE enumerates every bucket layout for tiny inputs.
func bruteBestSSE(s timeseries.Series, buckets int) float64 {
	n := len(s)
	best := math.Inf(1)
	var rec func(start, left int, acc float64)
	rec = func(start, left int, acc float64) {
		if acc >= best {
			return
		}
		if left == 1 {
			seg := timeseries.Series(s[start:])
			total := acc + segSSE(seg)
			if total < best {
				best = total
			}
			return
		}
		for end := start + 1; end <= n-(left-1); end++ {
			rec(end, left-1, acc+segSSE(s[start:end]))
		}
	}
	if buckets > n {
		buckets = n
	}
	rec(0, buckets, 0)
	return best
}

func segSSE(seg timeseries.Series) float64 {
	mean := seg.Mean()
	var t float64
	for _, v := range seg {
		t += (v - mean) * (v - mean)
	}
	return t
}
