// Package query implements the base station's approximate-query engine:
// a hierarchical aggregate index over the per-chunk summaries of a
// sensor's compressed history. Each received chunk (one transmission,
// Section 3.2) contributes a per-quantity Summary — sum, count, min, max,
// and the chunk's guaranteed maximum-absolute error bound (Section 4.5) —
// and the summaries are rolled up into an append-only segment tree so any
// chunk-aligned range aggregate merges O(log n) nodes instead of scanning
// the reconstructed history. The station handles ragged (sub-chunk) edges
// by exact reconstruction; everything in between comes from the tree.
//
// The design follows the PlatoDB observation (Brito et al., see PAPERS.md)
// that compressed segment summaries with per-node error bounds answer
// aggregates in sublinear time while keeping deterministic error
// guarantees.
package query

import (
	"fmt"
	"math"

	"sbr/internal/obs"
	"sbr/internal/timeseries"
)

// Summary aggregates a span of samples of one quantity. The zero value is
// the identity element of Merge.
type Summary struct {
	Count int     // samples covered
	Sum   float64 // sum of the reconstructed samples
	Min   float64 // smallest reconstructed sample
	Max   float64 // largest reconstructed sample

	// BoundMax is the worst per-sample maximum-absolute error bound across
	// the chunks contributing to the span (zero when the sensor did not run
	// under the MaxAbs metric). BoundSum is the sum of the per-sample
	// bounds, i.e. Σ count_i × bound_i over contributing chunks: the
	// guaranteed error envelope of Sum.
	BoundMax float64
	BoundSum float64
}

// Empty reports whether the summary covers no samples.
func (a Summary) Empty() bool { return a.Count == 0 }

// Merge combines two span summaries into the summary of their union.
func Merge(a, b Summary) Summary {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	out := Summary{
		Count:    a.Count + b.Count,
		Sum:      a.Sum + b.Sum,
		Min:      math.Min(a.Min, b.Min),
		Max:      math.Max(a.Max, b.Max),
		BoundMax: math.Max(a.BoundMax, b.BoundMax),
		BoundSum: a.BoundSum + b.BoundSum,
	}
	return out
}

// Summarize builds the summary of one span of reconstructed samples whose
// chunk shipped with the given maximum-absolute error bound.
func Summarize(s timeseries.Series, bound float64) Summary {
	if len(s) == 0 {
		return Summary{}
	}
	out := Summary{
		Count:    len(s),
		Sum:      s[0],
		Min:      s[0],
		Max:      s[0],
		BoundMax: bound,
		BoundSum: bound * float64(len(s)),
	}
	for _, v := range s[1:] {
		out.Sum += v
		if v < out.Min {
			out.Min = v
		}
		if v > out.Max {
			out.Max = v
		}
	}
	return out
}

// Index is the per-sensor hierarchical aggregate index: one append-only
// segment tree per recorded quantity, with chunks as the leaves. It is not
// safe for concurrent use; the station guards it with its own lock.
type Index struct {
	m    int     // samples per chunk (columns of each transmission)
	rows []*tree // one tree per quantity

	// Telemetry hooks (nil-safe; see internal/obs): queries counts
	// QueryChunks calls, nodes the tree nodes merged answering them —
	// together they expose the index's merge fan-out on a live station.
	queries *obs.Counter
	nodes   *obs.Counter
}

// NewIndex creates an index for n quantities of m samples per chunk.
func NewIndex(n, m int) (*Index, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("query: invalid index shape %d×%d", n, m)
	}
	rows := make([]*tree, n)
	for i := range rows {
		rows[i] = &tree{}
	}
	return &Index{m: m, rows: rows}, nil
}

// Instrument attaches the telemetry counters the station shares across
// its per-sensor indexes. Counters are atomic, so instrumented queries
// stay safe under the station's read lock.
func (ix *Index) Instrument(queries, nodes *obs.Counter) {
	ix.queries, ix.nodes = queries, nodes
}

// Depth returns the height of the deepest segment tree — the worst-case
// per-row node count a chunk-aligned query can touch per edge.
func (ix *Index) Depth() int {
	depth := 0
	for _, t := range ix.rows {
		if len(t.levels) > depth {
			depth = len(t.levels)
		}
	}
	return depth
}

// M returns the samples-per-chunk the index was built for.
func (ix *Index) M() int { return ix.m }

// Rows returns the number of indexed quantities.
func (ix *Index) Rows() int { return len(ix.rows) }

// Chunks returns the number of chunks appended so far.
func (ix *Index) Chunks() int {
	if len(ix.rows) == 0 {
		return 0
	}
	return ix.rows[0].count
}

// AppendChunk indexes one decoded transmission: rows[i] is quantity i's
// reconstructed chunk, bound the chunk's shipped maximum-absolute error
// bound (zero when absent).
func (ix *Index) AppendChunk(rows []timeseries.Series, bound float64) error {
	if len(rows) != len(ix.rows) {
		return fmt.Errorf("query: chunk has %d rows, index has %d", len(rows), len(ix.rows))
	}
	for i, r := range rows {
		if len(r) != ix.m {
			return fmt.Errorf("query: chunk row %d has %d samples, want %d", i, len(r), ix.m)
		}
		ix.rows[i].append(Summarize(r, bound))
	}
	return nil
}

// RowLeaves returns a copy of one quantity's per-chunk summaries (the
// segment-tree leaves) in chunk order — the serialisable snapshot a
// station checkpoint persists so a restart can rebuild the index without
// re-decoding the archived history.
func (ix *Index) RowLeaves(row int) []Summary {
	if row < 0 || row >= len(ix.rows) {
		return nil
	}
	t := ix.rows[row]
	if len(t.levels) == 0 {
		return nil
	}
	return append([]Summary(nil), t.levels[0]...)
}

// NewIndexFromLeaves rebuilds an index from a leaves snapshot (one slice
// of per-chunk summaries per quantity, as produced by RowLeaves). Every
// row must hold the same number of chunks.
func NewIndexFromLeaves(n, m int, leaves [][]Summary) (*Index, error) {
	if len(leaves) != n {
		return nil, fmt.Errorf("query: %d leaf rows for %d quantities", len(leaves), n)
	}
	ix, err := NewIndex(n, m)
	if err != nil {
		return nil, err
	}
	for row, ls := range leaves {
		if len(ls) != len(leaves[0]) {
			return nil, fmt.Errorf("query: leaf row %d has %d chunks, row 0 has %d",
				row, len(ls), len(leaves[0]))
		}
		for _, s := range ls {
			ix.rows[row].append(s)
		}
	}
	return ix, nil
}

// QueryChunks merges the summaries of chunks [c0, c1) of one quantity in
// O(log n) node merges. An empty or inverted range yields the zero Summary.
func (ix *Index) QueryChunks(row, c0, c1 int) (Summary, error) {
	if row < 0 || row >= len(ix.rows) {
		return Summary{}, fmt.Errorf("query: row %d outside [0,%d)", row, len(ix.rows))
	}
	t := ix.rows[row]
	if c0 < 0 || c1 > t.count {
		return Summary{}, fmt.Errorf("query: chunk range [%d,%d) outside [0,%d)", c0, c1, t.count)
	}
	sum, visited := t.query(c0, c1)
	ix.queries.Inc()
	ix.nodes.Add(uint64(visited))
	return sum, nil
}

// Snapshot is an immutable point-in-time view of an index, safe to query
// while the index keeps absorbing AppendChunk calls from another
// goroutine. It relies on the tree's append-only discipline: a node whose
// span lies entirely inside the snapshot's chunk count is complete — both
// its children existed when it was last written — and complete nodes are
// never rewritten by later appends (append only recomputes the ancestors
// of the newest leaf, whose indexes strictly pass a completed node's).
// The snapshot copies the per-level slice headers, so level growth and
// reallocation in the live tree cannot touch it, and its query walk is
// clipped to the snapshot count so it never reads an incomplete right-edge
// node the writer may be rewriting in place.
//
// Snapshot must be called while holding whatever lock serialises
// AppendChunk (the station's per-sensor lock); the returned value is then
// free of any locking for its whole lifetime.
type Snapshot struct {
	m    int
	rows []treeSnap

	queries *obs.Counter
	nodes   *obs.Counter
}

// treeSnap is one quantity's frozen tree: the level slice headers as of
// the snapshot, valid for chunk spans within [0, count).
type treeSnap struct {
	count  int
	levels [][]Summary
}

// Snapshot captures the index at its current chunk count. See the type
// comment for the locking contract.
func (ix *Index) Snapshot() *Snapshot {
	sn := &Snapshot{m: ix.m, queries: ix.queries, nodes: ix.nodes}
	sn.rows = make([]treeSnap, len(ix.rows))
	for i, t := range ix.rows {
		sn.rows[i] = treeSnap{count: t.count, levels: append([][]Summary(nil), t.levels...)}
	}
	return sn
}

// M returns the samples-per-chunk of the snapshotted index.
func (sn *Snapshot) M() int { return sn.m }

// Chunks returns the number of chunks the snapshot covers.
func (sn *Snapshot) Chunks() int {
	if len(sn.rows) == 0 {
		return 0
	}
	return sn.rows[0].count
}

// QueryChunks merges the summaries of chunks [c0, c1) of one quantity,
// exactly like Index.QueryChunks but against the frozen view: concurrent
// appends past the snapshot count are invisible and harmless.
func (sn *Snapshot) QueryChunks(row, c0, c1 int) (Summary, error) {
	if row < 0 || row >= len(sn.rows) {
		return Summary{}, fmt.Errorf("query: row %d outside [0,%d)", row, len(sn.rows))
	}
	t := sn.rows[row]
	if c0 < 0 || c1 > t.count {
		return Summary{}, fmt.Errorf("query: chunk range [%d,%d) outside [0,%d)", c0, c1, t.count)
	}
	sum, visited := snapQuery(t.levels, c0, c1)
	sn.queries.Inc()
	sn.nodes.Add(uint64(visited))
	return sum, nil
}

// snapQuery is the iterative segment-tree walk over frozen level headers.
// The bounds-as-given invariant (hi never exceeds the snapshot count)
// guarantees every node it touches covers a span wholly inside the
// snapshot, i.e. a complete node the live writer will never rewrite.
func snapQuery(levels [][]Summary, lo, hi int) (Summary, int) {
	var out Summary
	visited := 0
	for lv := 0; lo < hi; lv++ {
		level := levels[lv]
		if lo&1 == 1 {
			out = Merge(out, level[lo])
			lo++
			visited++
		}
		if hi&1 == 1 {
			hi--
			out = Merge(out, level[hi])
			visited++
		}
		lo >>= 1
		hi >>= 1
	}
	return out, visited
}

// tree is an append-only segment tree stored as levels of merged pairs:
// levels[0] holds one Summary per chunk and levels[k][i] summarises chunks
// [i<<k, min((i+1)<<k, count)). Appending a chunk touches one node per
// level; querying merges at most two nodes per level.
type tree struct {
	count  int
	levels [][]Summary
}

func (t *tree) append(s Summary) {
	if len(t.levels) == 0 {
		t.levels = append(t.levels, nil)
	}
	t.levels[0] = append(t.levels[0], s)
	t.count++
	// Rebuild the new leaf's one ancestor per level until a level holds a
	// single node covering everything. The right-edge node of each level
	// may summarise a lone child until its sibling arrives.
	lv, idx := 0, t.count-1
	for len(t.levels[lv]) > 1 {
		lv++
		idx >>= 1
		t.ensureLevel(lv)
		t.setNode(lv, idx)
	}
}

func (t *tree) ensureLevel(lv int) {
	for len(t.levels) <= lv {
		t.levels = append(t.levels, nil)
	}
}

// setNode recomputes node idx of level lv from its children on level lv-1.
func (t *tree) setNode(lv, idx int) {
	child := t.levels[lv-1]
	left := child[2*idx]
	s := left
	if 2*idx+1 < len(child) {
		s = Merge(left, child[2*idx+1])
	}
	if idx < len(t.levels[lv]) {
		t.levels[lv][idx] = s
		return
	}
	t.levels[lv] = append(t.levels[lv], s)
}

// query merges chunks [lo, hi) bottom-up: consume an odd edge node on the
// current level, halve, repeat — the classic iterative segment-tree walk.
// It also reports how many tree nodes the walk merged, for telemetry.
func (t *tree) query(lo, hi int) (Summary, int) {
	var out Summary
	visited := 0
	for lv := 0; lo < hi; lv++ {
		level := t.levels[lv]
		if lo&1 == 1 {
			out = Merge(out, level[lo])
			lo++
			visited++
		}
		if hi&1 == 1 {
			hi--
			out = Merge(out, level[hi])
			visited++
		}
		lo >>= 1
		hi >>= 1
	}
	return out, visited
}
