package query

import (
	"math"
	"math/rand"
	"testing"

	"sbr/internal/timeseries"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestSummarize(t *testing.T) {
	s := Summarize(timeseries.Series{3, -1, 4, 1, 5}, 0.25)
	if s.Count != 5 || !almostEq(s.Sum, 12) || s.Min != -1 || s.Max != 5 {
		t.Fatalf("summary %+v wrong", s)
	}
	if !almostEq(s.BoundMax, 0.25) || !almostEq(s.BoundSum, 1.25) {
		t.Fatalf("bounds %+v wrong", s)
	}
	if !Summarize(nil, 1).Empty() {
		t.Fatal("empty series must give empty summary")
	}
}

func TestMergeIdentity(t *testing.T) {
	s := Summarize(timeseries.Series{2, 7}, 0.5)
	if Merge(Summary{}, s) != s || Merge(s, Summary{}) != s {
		t.Fatal("zero Summary must be the identity of Merge")
	}
}

// buildIndex appends `chunks` random chunks of m samples per row and returns
// the index plus, per row, the flattened samples and per-chunk bounds.
func buildIndex(t *testing.T, rng *rand.Rand, n, m, chunks int) (*Index, [][]float64, []float64) {
	t.Helper()
	ix, err := NewIndex(n, m)
	if err != nil {
		t.Fatal(err)
	}
	flat := make([][]float64, n)
	var bounds []float64
	for c := 0; c < chunks; c++ {
		bound := rng.Float64()
		rows := make([]timeseries.Series, n)
		for r := range rows {
			rows[r] = make(timeseries.Series, m)
			for j := range rows[r] {
				rows[r][j] = rng.NormFloat64() * 10
			}
			flat[r] = append(flat[r], rows[r]...)
		}
		if err := ix.AppendChunk(rows, bound); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, bound)
	}
	return ix, flat, bounds
}

// TestQueryChunksMatchesBruteForce checks every chunk range of every size
// against a direct scan, across chunk counts that are not powers of two.
func TestQueryChunksMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, chunks := range []int{1, 2, 3, 5, 8, 13, 16, 17} {
		const n, m = 2, 8
		ix, flat, bounds := buildIndex(t, rng, n, m, chunks)
		if ix.Chunks() != chunks {
			t.Fatalf("Chunks() = %d, want %d", ix.Chunks(), chunks)
		}
		for row := 0; row < n; row++ {
			for c0 := 0; c0 <= chunks; c0++ {
				for c1 := c0; c1 <= chunks; c1++ {
					got, err := ix.QueryChunks(row, c0, c1)
					if err != nil {
						t.Fatal(err)
					}
					want := bruteForce(flat[row], bounds, m, c0, c1)
					if !summariesEq(got, want) {
						t.Fatalf("chunks=%d row=%d [%d,%d): got %+v want %+v",
							chunks, row, c0, c1, got, want)
					}
				}
			}
		}
	}
}

func bruteForce(flat []float64, bounds []float64, m, c0, c1 int) Summary {
	var out Summary
	for c := c0; c < c1; c++ {
		out = Merge(out, Summarize(flat[c*m:(c+1)*m], bounds[c]))
	}
	return out
}

func summariesEq(a, b Summary) bool {
	if a.Count != b.Count {
		return false
	}
	if a.Empty() {
		return b.Empty()
	}
	return almostEq(a.Sum, b.Sum) && a.Min == b.Min && a.Max == b.Max &&
		a.BoundMax == b.BoundMax && almostEq(a.BoundSum, b.BoundSum)
}

func TestIndexShapeErrors(t *testing.T) {
	if _, err := NewIndex(0, 4); err == nil {
		t.Fatal("NewIndex(0,4) must fail")
	}
	ix, _ := NewIndex(2, 4)
	if err := ix.AppendChunk([]timeseries.Series{{1, 2, 3, 4}}, 0); err == nil {
		t.Fatal("row-count mismatch must fail")
	}
	if err := ix.AppendChunk([]timeseries.Series{{1, 2}, {3, 4}}, 0); err == nil {
		t.Fatal("chunk-length mismatch must fail")
	}
	if _, err := ix.QueryChunks(5, 0, 0); err == nil {
		t.Fatal("out-of-range row must fail")
	}
	if _, err := ix.QueryChunks(0, 0, 1); err == nil {
		t.Fatal("chunk range beyond count must fail")
	}
}

// TestAppendCost confirms the tree stays logarithmic: node updates per
// append must be bounded by log2(count)+1.
func TestAppendCost(t *testing.T) {
	ix, _ := NewIndex(1, 2)
	for c := 0; c < 1024; c++ {
		if err := ix.AppendChunk([]timeseries.Series{{1, 2}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	levels := ix.rows[0].levels
	if len(levels) != 11 { // 1024 leaves → levels 0..10
		t.Fatalf("%d levels for 1024 chunks, want 11", len(levels))
	}
	for lv := 1; lv < len(levels); lv++ {
		want := (len(levels[lv-1]) + 1) / 2
		if len(levels[lv]) != want {
			t.Fatalf("level %d has %d nodes, want %d", lv, len(levels[lv]), want)
		}
	}
}
