package httpapi

import (
	"encoding/json"
	"net/http"
	"sync"
)

// Check is one named readiness probe. Probe returns nil when the
// condition holds and a descriptive error when it does not; it must be
// safe for concurrent calls and cheap enough to run on every /readyz
// request (load balancers poll aggressively).
type Check struct {
	Name  string
	Probe func() error
}

// Health serves the two standard health surfaces:
//
//	GET /healthz — liveness: the process is up and serving HTTP. Always
//	               200; a dead process answers nothing, which is the
//	               signal.
//	GET /readyz  — readiness: every registered check passes. Any failure
//	               answers 503 with a JSON body naming the failed checks,
//	               so traffic (and operators) can tell WHY the station is
//	               refusing work — draining, degraded archive, or over
//	               its shed watermarks.
//
// Readiness flipping to 503 is deliberately aligned with the transport's
// admission control: the station starts shedding sensors busy at the
// same watermarks that fail the probe, so a 503 here predicts busy acks
// there.
type Health struct {
	mu     sync.RWMutex
	checks []Check
}

// NewHealth builds a Health serving the given checks, in order.
func NewHealth(checks ...Check) *Health {
	return &Health{checks: checks}
}

// Add registers another readiness check. Safe to call while serving.
func (h *Health) Add(c Check) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.checks = append(h.checks, c)
}

// Register mounts /healthz and /readyz on mux.
func (h *Health) Register(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", h.Healthz)
	mux.HandleFunc("/readyz", h.Readyz)
}

// healthResponse is the JSON body of both surfaces.
type healthResponse struct {
	Status string            `json:"status"` // "ok" or "unavailable"
	Checks map[string]string `json:"checks,omitempty"`
}

// Healthz is the liveness probe: reachable means alive.
func (h *Health) Healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(healthResponse{Status: "ok"}) //nolint:errcheck — best-effort body
}

// Readyz runs every check and answers 200 when all pass, 503 otherwise,
// with a per-check verdict either way.
func (h *Health) Readyz(w http.ResponseWriter, _ *http.Request) {
	h.mu.RLock()
	checks := h.checks
	h.mu.RUnlock()

	resp := healthResponse{Status: "ok", Checks: make(map[string]string, len(checks))}
	for _, c := range checks {
		if err := c.Probe(); err != nil {
			resp.Status = "unavailable"
			resp.Checks[c.Name] = err.Error()
		} else {
			resp.Checks[c.Name] = "ok"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if resp.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp) //nolint:errcheck — best-effort body
}
