package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func TestHealthzAlwaysOK(t *testing.T) {
	h := NewHealth(Check{Name: "never", Probe: func() error { return errors.New("down") }})
	mux := http.NewServeMux()
	h.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d even though liveness ignores checks, want 200", resp.StatusCode)
	}
}

func TestReadyzFlips(t *testing.T) {
	var degraded atomic.Bool
	h := NewHealth(
		Check{Name: "archive", Probe: func() error {
			if degraded.Load() {
				return errors.New("archive degraded")
			}
			return nil
		}},
		Check{Name: "draining", Probe: func() error { return nil }},
	)
	mux := http.NewServeMux()
	h.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func() (int, healthResponse) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body healthResponse
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := get(); code != http.StatusOK || body.Status != "ok" {
		t.Errorf("ready station: %d %q, want 200 ok", code, body.Status)
	}
	degraded.Store(true)
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Errorf("degraded station: %d, want 503", code)
	}
	if body.Checks["archive"] != "archive degraded" || body.Checks["draining"] != "ok" {
		t.Errorf("check verdicts %v, want archive failed and draining ok", body.Checks)
	}
	degraded.Store(false)
	if code, _ := get(); code != http.StatusOK {
		t.Errorf("recovered station: %d, want 200", code)
	}
}

func TestHealthAddWhileServing(t *testing.T) {
	h := NewHealth()
	rec := httptest.NewRecorder()
	h.Readyz(rec, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("no checks: %d, want 200", rec.Code)
	}
	h.Add(Check{Name: "late", Probe: func() error { return errors.New("no") }})
	rec = httptest.NewRecorder()
	h.Readyz(rec, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("late failing check: %d, want 503", rec.Code)
	}
}
