package httpapi

import (
	"container/list"
	"sync"

	"sbr/internal/obs"
	"sbr/internal/timeseries"
)

// histKey identifies one reconstructed history: the transmission count is
// part of the key, so a sensor's next frame makes readers miss and the
// stale entry simply ages out of the LRU.
type histKey struct {
	sensor string
	row    int
	frames int
}

type histEntry struct {
	key  histKey
	hist timeseries.Series
}

// historyCache is a bounded LRU of reconstructed per-quantity histories.
// It is safe for concurrent use: the HTTP front end serves many readers
// while frames keep arriving.
type historyCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[histKey]*list.Element

	// Always-on counters (standalone obs metrics): /v1/stats reports them
	// even when the API runs without a registry; NewObserved swaps in
	// registered instances so /debug/metrics sees the same numbers.
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	size      *obs.Gauge
}

func newHistoryCache(capacity int) *historyCache {
	return &historyCache{
		cap:       capacity,
		order:     list.New(),
		entries:   make(map[histKey]*list.Element, capacity),
		hits:      &obs.Counter{},
		misses:    &obs.Counter{},
		evictions: &obs.Counter{},
		size:      &obs.Gauge{},
	}
}

func (c *historyCache) get(k histKey) (timeseries.Series, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*histEntry).hist, true
}

func (c *historyCache) put(k histKey, hist timeseries.Series) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		el.Value.(*histEntry).hist = hist
		return
	}
	c.entries[k] = c.order.PushFront(&histEntry{key: k, hist: hist})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*histEntry).key)
		c.evictions.Inc()
	}
	c.size.Set(float64(c.order.Len()))
}

// len reports the current entry count (for tests).
func (c *historyCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
