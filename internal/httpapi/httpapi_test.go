package httpapi

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sbr/internal/core"
	"sbr/internal/datagen"
	"sbr/internal/metrics"
	"sbr/internal/station"
	"sbr/internal/timeseries"
)

func testConfig() core.Config {
	return core.Config{TotalBand: 120, MBase: 64, Metric: metrics.SSE}
}

// newStation builds a station with `files` transmissions of one stock
// sensor already received, and returns the transmissions for cross-checks.
func newStation(t testing.TB, files int) (*station.Station, *datagen.Dataset) {
	t.Helper()
	st, err := station.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := datagen.StocksSized(1, 64, files)
	feed(t, st, "node-1", ds, files)
	return st, ds
}

func feed(t testing.TB, st *station.Station, id string, ds *datagen.Dataset, files int) {
	t.Helper()
	comp, err := core.NewCompressor(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < files; f++ {
		tr, err := comp.Encode(ds.File(f))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Receive(id, tr); err != nil {
			t.Fatal(err)
		}
	}
}

// get performs one request against the handler and decodes the JSON body.
func get(t testing.TB, api *API, url string, wantStatus int) map[string]any {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %s)", url, rec.Code, wantStatus, rec.Body)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, rec.Body, err)
	}
	return out
}

func TestSensorsEndpoint(t *testing.T) {
	st, _ := newStation(t, 4)
	api := New(st, 0)
	out := get(t, api, "/v1/sensors", http.StatusOK)
	sensors := out["sensors"].([]any)
	if len(sensors) != 1 {
		t.Fatalf("%d sensors, want 1", len(sensors))
	}
	info := sensors[0].(map[string]any)
	if info["id"] != "node-1" || info["transmissions"].(float64) != 4 {
		t.Fatalf("sensor info %v wrong", info)
	}
	if info["history_len"].(float64) != 4*64 {
		t.Fatalf("history_len %v, want %d", info["history_len"], 4*64)
	}
}

func TestPointEndpoint(t *testing.T) {
	st, _ := newStation(t, 4)
	api := New(st, 0)
	want, _ := st.At("node-1", 0, 17)
	out := get(t, api, "/v1/point?sensor=node-1&row=0&idx=17", http.StatusOK)
	if got := out["value"].(float64); got != want {
		t.Fatalf("point value %v, want %v", got, want)
	}
}

func TestRangeEndpoint(t *testing.T) {
	st, _ := newStation(t, 4)
	api := New(st, 0)
	want, _ := st.Range("node-1", 0, 10, 30)
	out := get(t, api, "/v1/range?sensor=node-1&row=0&from=10&to=30", http.StatusOK)
	vals := out["values"].([]any)
	if len(vals) != len(want) {
		t.Fatalf("%d values, want %d", len(vals), len(want))
	}
	for i, v := range vals {
		if v.(float64) != want[i] {
			t.Fatalf("value[%d] = %v, want %v", i, v, want[i])
		}
	}
	// to omitted → whole history.
	out = get(t, api, "/v1/range?sensor=node-1&row=0", http.StatusOK)
	if len(out["values"].([]any)) != 4*64 {
		t.Fatalf("full-range length %d, want %d", len(out["values"].([]any)), 4*64)
	}
}

func TestAggregateEndpoint(t *testing.T) {
	st, _ := newStation(t, 4)
	api := New(st, 0)
	for _, kind := range []string{"avg", "sum", "min", "max"} {
		url := fmt.Sprintf("/v1/aggregate?sensor=node-1&row=0&from=5&to=200&kind=%s", kind)
		out := get(t, api, url, http.StatusOK)
		hist, _ := st.Range("node-1", 0, 5, 200)
		var want float64
		switch kind {
		case "avg":
			want = hist.Mean()
		case "sum":
			want = hist.Sum()
		case "min":
			want = hist.Min()
		case "max":
			want = hist.Max()
		}
		if got := out["value"].(float64); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("%s = %v, want %v", kind, got, want)
		}
	}
	// Omitted `to` aggregates to the end of the history.
	out := get(t, api, "/v1/aggregate?sensor=node-1&row=0&kind=sum", http.StatusOK)
	if out["to"].(float64) != 4*64 {
		t.Fatalf("sentinel to = %v, want %d", out["to"], 4*64)
	}
}

// TestAggregateBoundMaxAbs checks the deterministic error interval: under
// the MaxAbs metric the answer ± bound must contain the true aggregate of
// the original (uncompressed) samples.
func TestAggregateBoundMaxAbs(t *testing.T) {
	cfg := core.Config{TotalBand: 200, MBase: 64, Metric: metrics.MaxAbs}
	st, err := station.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := datagen.StocksSized(3, 64, 4)
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var original timeseries.Series
	for f := 0; f < 4; f++ {
		rows := ds.File(f)
		tr, err := comp.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Receive("mx", tr); err != nil {
			t.Fatal(err)
		}
		original = append(original, rows[0]...)
	}
	api := New(st, 0)
	out := get(t, api, "/v1/aggregate?sensor=mx&row=0&from=3&to=250&kind=avg", http.StatusOK)
	value, bound := out["value"].(float64), out["bound"].(float64)
	if bound <= 0 {
		t.Fatalf("MaxAbs sensor must report a positive bound, got %v", bound)
	}
	truth := original[3:250].Mean()
	if math.Abs(value-truth) > bound+1e-9 {
		t.Fatalf("avg %v outside guaranteed interval %v ± %v (truth %v)", value, value, bound, truth)
	}
}

func TestDownsampleEndpoint(t *testing.T) {
	st, _ := newStation(t, 4)
	api := New(st, 0)
	want, _ := st.Downsample("node-1", 0, 16)
	out := get(t, api, "/v1/downsample?sensor=node-1&row=0&points=16", http.StatusOK)
	vals := out["values"].([]any)
	if len(vals) != len(want) {
		t.Fatalf("%d values, want %d", len(vals), len(want))
	}
	for i, v := range vals {
		if v.(float64) != want[i] {
			t.Fatalf("value[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestExceedancesEndpoint(t *testing.T) {
	st, _ := newStation(t, 4)
	api := New(st, 0)
	hist, _ := st.History("node-1", 0)
	threshold := hist.Mean()
	want, _ := st.Exceedances("node-1", 0, 0, 0, threshold)
	url := fmt.Sprintf("/v1/exceedances?sensor=node-1&row=0&threshold=%v", threshold)
	out := get(t, api, url, http.StatusOK)
	runs := out["runs"].([]any)
	if len(runs) != len(want) {
		t.Fatalf("%d runs, want %d", len(runs), len(want))
	}
	for i, r := range runs {
		run := r.(map[string]any)
		if int(run["start"].(float64)) != want[i].Start ||
			int(run["end"].(float64)) != want[i].End ||
			run["peak"].(float64) != want[i].Peak {
			t.Fatalf("run[%d] = %v, want %+v", i, run, want[i])
		}
	}
}

func TestErrorStatuses(t *testing.T) {
	st, _ := newStation(t, 2)
	api := New(st, 0)
	get(t, api, "/v1/point?sensor=ghost&row=0&idx=0", http.StatusNotFound)
	get(t, api, "/v1/point?sensor=node-1&row=99&idx=0", http.StatusBadRequest)
	get(t, api, "/v1/aggregate?sensor=node-1&row=0&kind=median", http.StatusBadRequest)
	get(t, api, "/v1/range?sensor=node-1&row=0&from=-3", http.StatusBadRequest)
	get(t, api, "/v1/exceedances?sensor=node-1&row=0", http.StatusBadRequest) // missing threshold
	get(t, api, "/v1/point?sensor=&row=0", http.StatusBadRequest)

	req := httptest.NewRequest(http.MethodPost, "/v1/sensors", nil)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

// TestHistoryCacheReuseAndInvalidation checks that repeated reads hit the
// LRU and that a newly received frame makes readers see the longer history.
func TestHistoryCacheReuseAndInvalidation(t *testing.T) {
	st, err := station.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := datagen.StocksSized(1, 64, 6)
	feed(t, st, "node-1", ds, 3)
	api := New(st, 4)

	out := get(t, api, "/v1/range?sensor=node-1&row=0", http.StatusOK)
	if len(out["values"].([]any)) != 3*64 {
		t.Fatalf("history %d, want %d", len(out["values"].([]any)), 3*64)
	}
	get(t, api, "/v1/range?sensor=node-1&row=0", http.StatusOK)
	if api.cache.len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", api.cache.len())
	}

	// Another three frames: the key (frame count) changes, readers must see
	// the grown history on the next request.
	comp, _ := core.NewCompressor(testConfig())
	for f := 0; f < 6; f++ {
		tr, err := comp.Encode(ds.File(f))
		if err != nil {
			t.Fatal(err)
		}
		if f >= 3 {
			if err := st.Receive("node-1", tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	out = get(t, api, "/v1/range?sensor=node-1&row=0", http.StatusOK)
	if len(out["values"].([]any)) != 6*64 {
		t.Fatalf("post-ingest history %d, want %d", len(out["values"].([]any)), 6*64)
	}
}

func TestCacheEviction(t *testing.T) {
	c := newHistoryCache(2)
	k := func(i int) histKey { return histKey{sensor: "s", row: i} }
	c.put(k(0), timeseries.Series{0})
	c.put(k(1), timeseries.Series{1})
	if _, ok := c.get(k(0)); !ok {
		t.Fatal("entry 0 evicted too early")
	}
	c.put(k(2), timeseries.Series{2}) // evicts 1 (0 was touched more recently)
	if _, ok := c.get(k(1)); ok {
		t.Fatal("entry 1 must have been evicted")
	}
	if _, ok := c.get(k(0)); !ok {
		t.Fatal("entry 0 must survive")
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
}

// TestConcurrentIngestAndQueries hammers the API from several readers
// while a writer keeps receiving frames — the serving-while-ingesting
// guarantee, meaningful under `go test -race`.
func TestConcurrentIngestAndQueries(t *testing.T) {
	st, err := station.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const files = 24
	ds := datagen.StocksSized(1, 64, files)
	feed(t, st, "node-1", ds, 2) // seed history so readers never see an empty station
	api := New(st, 8)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		comp, err := core.NewCompressor(testConfig())
		if err != nil {
			t.Error(err)
			return
		}
		for f := 0; f < files; f++ {
			tr, err := comp.Encode(ds.File(f))
			if err != nil {
				t.Error(err)
				return
			}
			if f >= 2 {
				if err := st.Receive("node-1", tr); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	urls := []string{
		"/v1/sensors",
		"/v1/point?sensor=node-1&row=0&idx=3",
		"/v1/range?sensor=node-1&row=0&from=0&to=64",
		"/v1/aggregate?sensor=node-1&row=0&kind=avg",
		"/v1/downsample?sensor=node-1&row=0&points=8",
		"/v1/exceedances?sensor=node-1&row=0&threshold=0",
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) { // readers
			defer wg.Done()
			for i := 0; i < 50; i++ {
				url := urls[(g+i)%len(urls)]
				req := httptest.NewRequest(http.MethodGet, url, nil)
				rec := httptest.NewRecorder()
				api.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("GET %s: status %d (body %s)", url, rec.Code, rec.Body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkAggregateHTTP measures end-to-end query throughput of the
// indexed aggregate endpoint.
func BenchmarkAggregateHTTP(b *testing.B) {
	st, _ := newStation(b, 10)
	api := New(st, 0)
	url := "/v1/aggregate?sensor=node-1&row=0&kind=avg"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, url, nil)
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkRangeHTTPCached measures the cached range path: after the first
// request the history comes from the LRU.
func BenchmarkRangeHTTPCached(b *testing.B) {
	st, _ := newStation(b, 10)
	api := New(st, 0)
	url := "/v1/range?sensor=node-1&row=0&from=0&to=64"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, url, nil)
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
