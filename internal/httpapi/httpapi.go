// Package httpapi exposes the base station's approximate-query engine over
// HTTP/JSON, so readers can interrogate the compressed history while
// sensor frames keep arriving. Five query kinds are served:
//
//	GET /v1/sensors                                                  — sensor inventory + reception stats
//	GET /v1/point?sensor=&row=&idx=                                  — one reconstructed sample + §4.5 bound
//	GET /v1/range?sensor=&row=&from=&to=                             — reconstructed samples of [from, to)
//	GET /v1/aggregate?sensor=&row=&from=&to=&kind=avg|sum|min|max    — indexed O(log n) aggregate + error bound
//	GET /v1/downsample?sensor=&row=&points=                          — window-averaged plotting export
//	GET /v1/exceedances?sensor=&row=&from=&to=&threshold=            — maximal runs ≥ threshold
//	GET /v1/stats                                                    — full per-sensor reception stats + cache counters
//
// Range, downsample and exceedance queries need the reconstructed samples
// themselves; those are served through a bounded LRU cache of materialised
// histories so repeated reads of a quiet sensor cost one reconstruction.
// Aggregates never materialise anything: they hit the station's
// hierarchical aggregate index. A `to` of 0 (or omitted) means the end of
// the recorded history, matching the station's query sentinel.
package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sbr/internal/obs"
	"sbr/internal/obs/trace"
	"sbr/internal/station"
	"sbr/internal/timeseries"
)

// TraceHeader carries a trace ID (16 hex digits) on a query request, so a
// read can join the trace of the frame — or workflow — that caused it.
// Responses echo the ID of whatever trace the request recorded into.
const TraceHeader = "X-Sbr-Trace"

// DefaultCacheEntries bounds the history LRU when New is given a
// non-positive capacity: enough for a handful of hot sensor/quantity
// pairs without letting a scan over thousands of sensors pin every
// reconstruction in memory.
const DefaultCacheEntries = 64

// API is the HTTP front end over one station. It implements http.Handler.
type API struct {
	st    *station.Station
	cache *historyCache
	mux   *http.ServeMux
	reg   *obs.Registry // nil when uninstrumented
}

// New builds the front end. cacheEntries bounds the LRU of reconstructed
// histories; non-positive means DefaultCacheEntries.
func New(st *station.Station, cacheEntries int) *API {
	return NewObserved(st, cacheEntries, nil)
}

// NewObserved is New with telemetry: per-endpoint request counters and
// latency histograms plus the history-cache counters are registered on
// reg (nil: uninstrumented, identical to New).
func NewObserved(st *station.Station, cacheEntries int, reg *obs.Registry) *API {
	if cacheEntries <= 0 {
		cacheEntries = DefaultCacheEntries
	}
	a := &API{st: st, cache: newHistoryCache(cacheEntries), mux: http.NewServeMux(), reg: reg}
	if reg != nil {
		const help = "History-cache events, by kind."
		a.cache.hits = reg.Counter("sbr_httpapi_cache_events_total", help, obs.L("kind", "hit"))
		a.cache.misses = reg.Counter("sbr_httpapi_cache_events_total", help, obs.L("kind", "miss"))
		a.cache.evictions = reg.Counter("sbr_httpapi_cache_events_total", help, obs.L("kind", "eviction"))
		a.cache.size = reg.Gauge("sbr_httpapi_history_cache_entries",
			"Reconstructed histories currently held by the query-API LRU.")
	}
	a.handle("/v1/sensors", a.handleSensors)
	a.handle("/v1/point", a.handlePoint)
	a.handle("/v1/range", a.handleRange)
	a.handle("/v1/aggregate", a.handleAggregate)
	a.handle("/v1/downsample", a.handleDownsample)
	a.handle("/v1/exceedances", a.handleExceedances)
	a.handle("/v1/stats", a.handleStats)
	return a
}

// spanKey carries the request span through the handler context.
type spanKey struct{}

// reqSpan returns the request's trace span (nil: untraced request).
func reqSpan(r *http.Request) *trace.Span {
	sp, _ := r.Context().Value(spanKey{}).(*trace.Span)
	return sp
}

// handle registers one endpoint, wrapped with its request counter and
// latency histogram (nil-safe no-ops when uninstrumented) and, when the
// station has a tracer, a per-request span: a request carrying the
// TraceHeader joins that trace — the "which frame made this query slow"
// join — while any other request may birth one under the recorder's
// sampling policy.
func (a *API) handle(path string, h http.HandlerFunc) {
	reqs := a.reg.Counter("sbr_httpapi_requests_total",
		"Query-API requests served, by endpoint.", obs.L("endpoint", path))
	secs := a.reg.Histogram("sbr_httpapi_request_seconds",
		"Query-API request latency, by endpoint.", obs.LatencyBuckets, obs.L("endpoint", path))
	a.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if rec := a.st.Tracer(); rec != nil {
			var tr *trace.Trace
			if id, ok := trace.ParseID(r.Header.Get(TraceHeader)); ok {
				tr = rec.Continue(id, r.URL.Query().Get("sensor"))
			} else {
				tr = rec.Begin(r.URL.Query().Get("sensor"))
			}
			if tr != nil {
				sp := tr.StartSpan("http." + strings.TrimPrefix(path, "/v1/"))
				sp.Annotate("query", r.URL.RawQuery)
				w.Header().Set(TraceHeader, tr.TraceID().String())
				r = r.WithContext(context.WithValue(r.Context(), spanKey{}, sp))
				defer func() {
					sp.End()
					tr.Finish()
				}()
			}
		}
		h(w, r)
		reqs.Inc()
		secs.Observe(time.Since(start).Seconds())
	})
}

// ServeHTTP dispatches to the query handlers.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("httpapi: method %s not allowed", r.Method))
		return
	}
	a.mux.ServeHTTP(w, r)
}

// history returns the reconstructed history of one quantity through the
// LRU. The sensor's transmission count keys the entry, so a newly received
// frame misses and triggers one fresh reconstruction. The cache verdict
// and any reconstruction (with its cold archive fetches) are recorded as
// children of sp.
func (a *API) history(id string, row int, sp *trace.Span) (timeseries.Series, error) {
	stats, err := a.st.SensorStats(id)
	if err != nil {
		return nil, err
	}
	k := histKey{sensor: id, row: row, frames: stats.Transmissions}
	csp := sp.Child("httpapi.cache")
	if hist, ok := a.cache.get(k); ok {
		csp.Annotate("verdict", "hit")
		csp.End()
		return hist, nil
	}
	csp.Annotate("verdict", "miss")
	csp.End()
	hsp := sp.Child("station.history")
	hist, err := a.st.HistoryTraced(id, row, hsp)
	hsp.End()
	if err != nil {
		return nil, err
	}
	a.cache.put(k, hist)
	return hist, nil
}

// sensorInfo is one row of the /v1/sensors inventory.
type sensorInfo struct {
	ID            string `json:"id"`
	Transmissions int    `json:"transmissions"`
	Quantities    int    `json:"quantities"`
	SamplesPerRow int    `json:"samples_per_row"`
	HistoryLen    int    `json:"history_len"`
	Restarts      int    `json:"restarts"`
}

func (a *API) handleSensors(w http.ResponseWriter, r *http.Request) {
	ids := a.st.Sensors()
	out := make([]sensorInfo, 0, len(ids))
	for _, id := range ids {
		stats, err := a.st.SensorStats(id)
		if err != nil {
			continue // sensor raced away; inventory stays best-effort
		}
		out = append(out, sensorInfo{
			ID:            id,
			Transmissions: stats.Transmissions,
			Quantities:    stats.Quantities,
			SamplesPerRow: stats.SamplesPerRow,
			HistoryLen:    stats.Transmissions * stats.SamplesPerRow,
			Restarts:      stats.Restarts,
		})
	}
	writeJSON(w, map[string]any{"sensors": out})
}

// sensorStatsJSON mirrors station.Stats for the /v1/stats export.
type sensorStatsJSON struct {
	Transmissions int   `json:"transmissions"`
	Quantities    int   `json:"quantities"`
	SamplesPerRow int   `json:"samples_per_row"`
	RawBytes      int   `json:"raw_bytes"`
	Values        int   `json:"values"`
	BaseInserts   []int `json:"base_inserts"`
	Restarts      int   `json:"restarts"`
}

// handleStats serves the full per-sensor reception statistics plus the
// history-cache counters — the JSON twin of stationd's periodic report.
func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	sensors := make(map[string]sensorStatsJSON)
	for _, id := range a.st.Sensors() {
		stats, err := a.st.SensorStats(id)
		if err != nil {
			continue // sensor raced away; stats stay best-effort
		}
		sensors[id] = sensorStatsJSON{
			Transmissions: stats.Transmissions,
			Quantities:    stats.Quantities,
			SamplesPerRow: stats.SamplesPerRow,
			RawBytes:      stats.RawBytes,
			Values:        stats.Values,
			BaseInserts:   stats.BaseInserts,
			Restarts:      stats.Restarts,
		}
	}
	out := map[string]any{
		"sensors": sensors,
		"cache": map[string]any{
			"hits":      a.cache.hits.Value(),
			"misses":    a.cache.misses.Value(),
			"evictions": a.cache.evictions.Value(),
			"entries":   a.cache.len(),
		},
	}
	// Read-path counters: query volume and chunks served cold from the
	// archive (the store's singleflight totals ride along under "store").
	out["query"] = a.st.ReadStats()
	if store := a.st.Archive(); store != nil {
		out["store"] = store.StoreStats()
	}
	// Latency SLOs without a Prometheus server: every registered
	// histogram reduced to interpolated p50/p95/p99.
	if lat := a.reg.HistogramSummaries(); len(lat) > 0 {
		out["latency"] = lat
	}
	writeJSON(w, out)
}

func (a *API) handlePoint(w http.ResponseWriter, r *http.Request) {
	id, row, ok := a.target(w, r)
	if !ok {
		return
	}
	idx, err := intParam(r, "idx", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	value, bound, err := a.st.AtWithBound(id, row, idx)
	if err != nil {
		writeStationError(w, err)
		return
	}
	writeJSON(w, map[string]any{"sensor": id, "row": row, "idx": idx, "value": value, "bound": bound})
}

func (a *API) handleRange(w http.ResponseWriter, r *http.Request) {
	id, row, ok := a.target(w, r)
	if !ok {
		return
	}
	from, to, err := rangeParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hist, err := a.history(id, row, reqSpan(r))
	if err != nil {
		writeStationError(w, err)
		return
	}
	if to == 0 {
		to = len(hist)
	}
	if from < 0 || to > len(hist) || from > to {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("httpapi: range [%d,%d) outside history [0,%d)", from, to, len(hist)))
		return
	}
	var bound float64
	if to > from {
		if bound, err = a.st.RangeBound(id, from, to); err != nil {
			writeStationError(w, err)
			return
		}
	}
	writeJSON(w, map[string]any{
		"sensor": id, "row": row, "from": from, "to": to,
		"values": hist[from:to], "bound": bound,
	})
}

func (a *API) handleAggregate(w http.ResponseWriter, r *http.Request) {
	id, row, ok := a.target(w, r)
	if !ok {
		return
	}
	from, to, err := rangeParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	kind, err := parseKind(r.URL.Query().Get("kind"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if to == 0 {
		if to, err = a.st.HistoryLen(id); err != nil {
			writeStationError(w, err)
			return
		}
	}
	value, bound, err := a.st.AggregateWithBoundTraced(id, row, from, to, kind, reqSpan(r))
	if err != nil {
		writeStationError(w, err)
		return
	}
	writeJSON(w, map[string]any{
		"sensor": id, "row": row, "from": from, "to": to,
		"kind": r.URL.Query().Get("kind"), "value": value, "bound": bound,
	})
}

func (a *API) handleDownsample(w http.ResponseWriter, r *http.Request) {
	id, row, ok := a.target(w, r)
	if !ok {
		return
	}
	points, err := intParam(r, "points", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hist, err := a.history(id, row, reqSpan(r))
	if err != nil {
		writeStationError(w, err)
		return
	}
	out, err := station.DownsampleSeries(hist, points)
	if err != nil {
		writeStationError(w, err)
		return
	}
	writeJSON(w, map[string]any{"sensor": id, "row": row, "values": out})
}

func (a *API) handleExceedances(w http.ResponseWriter, r *http.Request) {
	id, row, ok := a.target(w, r)
	if !ok {
		return
	}
	from, to, err := rangeParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	threshold, err := floatParam(r, "threshold")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hist, err := a.history(id, row, reqSpan(r))
	if err != nil {
		writeStationError(w, err)
		return
	}
	runs, err := station.ScanExceedances(hist, from, to, threshold)
	if err != nil {
		writeStationError(w, err)
		return
	}
	type runJSON struct {
		Start int     `json:"start"`
		End   int     `json:"end"`
		Peak  float64 `json:"peak"`
	}
	out := make([]runJSON, len(runs))
	for i, e := range runs {
		out[i] = runJSON{Start: e.Start, End: e.End, Peak: e.Peak}
	}
	writeJSON(w, map[string]any{
		"sensor": id, "row": row, "threshold": threshold, "runs": out,
	})
}

// target parses the sensor/row pair every per-quantity endpoint needs.
func (a *API) target(w http.ResponseWriter, r *http.Request) (string, int, bool) {
	id := r.URL.Query().Get("sensor")
	if id == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("httpapi: missing sensor parameter"))
		return "", 0, false
	}
	row, err := intParam(r, "row", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return "", 0, false
	}
	return id, row, true
}

func parseKind(s string) (station.AggregateKind, error) {
	switch strings.ToLower(s) {
	case "", "avg", "mean":
		return station.AggAvg, nil
	case "sum":
		return station.AggSum, nil
	case "min":
		return station.AggMin, nil
	case "max":
		return station.AggMax, nil
	}
	return 0, fmt.Errorf("httpapi: unknown aggregate kind %q", s)
}

func rangeParams(r *http.Request) (from, to int, err error) {
	if from, err = intParam(r, "from", 0); err != nil {
		return 0, 0, err
	}
	if to, err = intParam(r, "to", 0); err != nil {
		return 0, 0, err
	}
	return from, to, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("httpapi: bad %s parameter %q", name, s)
	}
	return v, nil
}

func floatParam(r *http.Request, name string) (float64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, fmt.Errorf("httpapi: missing %s parameter", name)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("httpapi: bad %s parameter %q", name, s)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck — client gone mid-write, nothing to do
}

// writeStationError maps station errors onto HTTP statuses: unknown
// sensors are 404, everything else a client-side 400.
func writeStationError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if strings.Contains(err.Error(), "unknown sensor") {
		status = http.StatusNotFound
	}
	writeError(w, status, err)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}
