package httpapi

import (
	"net/http"
	"net/http/pprof"

	"sbr/internal/obs"
	"sbr/internal/obs/hist"
	"sbr/internal/obs/trace"
)

// DebugOptions selects what the admin-plane mux serves. Any field may be
// nil; the corresponding surface is then simply not mounted (the tracer
// is the exception — its handler is nil-safe and serves 404s, so the
// /debug/traces routes always exist).
type DebugOptions struct {
	Registry *obs.Registry   // /debug/metrics, /debug/vars
	Tracer   *trace.Recorder // /debug/traces
	Health   *Health         // /healthz, /readyz
	History  *hist.Sampler   // /debug/metrics/history
	Alerts   *hist.Engine    // /debug/alerts
}

// NewDebugMux assembles the admin plane on a mux of its own — health
// surfaces, metrics exposition in both formats, the self-metrics history
// and alert planes, traces, and the standard pprof handlers — so nothing
// ever mounts them on a public listener by accident. Both stationd and
// the end-to-end tests build their debug listener from this one place.
func NewDebugMux(o DebugOptions) http.Handler {
	mux := http.NewServeMux()
	if o.Health != nil {
		o.Health.Register(mux)
	}
	if o.Registry != nil {
		mux.Handle("/debug/metrics", o.Registry.MetricsHandler())
		mux.Handle("/debug/vars", o.Registry.VarsHandler())
	}
	traces := o.Tracer.Handler("/debug/traces")
	mux.Handle("/debug/traces", traces)
	mux.Handle("/debug/traces/", traces)
	if o.History != nil {
		mux.Handle("/debug/metrics/history", o.History.Handler())
	}
	if o.Alerts != nil {
		mux.Handle("/debug/alerts", o.Alerts.Handler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
