package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

func TestApplyBasisMatchesInverse(t *testing.T) {
	// Adding v·ψ_i via applyBasis must equal inverting a one-hot
	// coefficient vector.
	rng := rand.New(rand.NewSource(1))
	n := 16
	for i := 0; i < n; i++ {
		v := rng.NormFloat64() * 5
		dense := make(timeseries.Series, n)
		dense[i] = v
		want := Inverse(dense)

		got := make(timeseries.Series, n)
		applyBasis(got, i, v, n)
		if !timeseries.Equal(got, want, 1e-9) {
			t.Fatalf("coefficient %d: applyBasis diverges from Inverse", i)
		}
	}
}

func TestSupportOf(t *testing.T) {
	n := 8
	cases := map[int][2]int{
		0: {0, 8}, // smooth
		1: {0, 8}, // coarsest detail
		2: {0, 4}, 3: {4, 8},
		4: {0, 2}, 5: {2, 4}, 6: {4, 6}, 7: {6, 8},
	}
	for i, want := range cases {
		s, e := supportOf(i, n)
		if s != want[0] || e != want[1] {
			t.Errorf("supportOf(%d) = [%d,%d), want [%d,%d)", i, s, e, want[0], want[1])
		}
	}
}

func TestGreedyMatchesTopBUnderSSE(t *testing.T) {
	// Under SSE the greedy choice and the largest-coefficient choice give
	// the same error (orthonormal basis: gain of coefficient c is c²).
	rng := rand.New(rand.NewSource(2))
	s := randSeries(rng, 64)
	for _, b := range []int{1, 4, 16, 64} {
		gotErr := metrics.SumSquared(s, GreedyTopB(s, b, metrics.SSE).Reconstruct())
		wantErr := metrics.SumSquared(s, TopB(s, b).Reconstruct())
		if math.Abs(gotErr-wantErr) > 1e-6*(1+wantErr) {
			t.Errorf("b=%d: greedy SSE %v, top-B SSE %v", b, gotErr, wantErr)
		}
	}
}

func TestGreedyFullBudgetIsExact(t *testing.T) {
	// Under SSE every non-zero coefficient has positive gain (c²), so the
	// full budget reconstructs exactly. (Under other metrics the greedy
	// may legitimately stop early once no single coefficient improves.)
	rng := rand.New(rand.NewSource(3))
	s := randSeries(rng, 32)
	rec := GreedyTopB(s, 32, metrics.SSE).Reconstruct()
	if !timeseries.Equal(rec, s, 1e-8) {
		t.Error("full-budget greedy synopsis is not lossless")
	}
}

func TestGreedyImprovesRelativeError(t *testing.T) {
	// A signal with a large-amplitude region and a small-amplitude region:
	// L2-optimal selection spends everything on the large region, while the
	// relative metric cares about proportional error everywhere.
	rng := rand.New(rand.NewSource(4))
	s := make(timeseries.Series, 128)
	for i := 0; i < 64; i++ {
		s[i] = 1000 + 100*rng.NormFloat64()
	}
	for i := 64; i < 128; i++ {
		s[i] = 2 + rng.NormFloat64()
	}
	budget := 16 // coefficients
	std := TopB(s, budget).Reconstruct()
	greedy := GreedyTopB(s, budget, metrics.RelativeSSE).Reconstruct()
	stdRel := metrics.SumSquaredRelative(s, std, 1)
	greedyRel := metrics.SumSquaredRelative(s, greedy, 1)
	if greedyRel > stdRel {
		t.Errorf("greedy relative error %v worse than standard %v", greedyRel, stdRel)
	}
}

// Property: the greedy synopsis never loses to standard TopB on the metric
// it optimises (both get the same coefficient budget).
func TestGreedyNeverWorseProperty(t *testing.T) {
	f := func(seed int64, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randSeries(rng, 32)
		// Mix in scale diversity so the metrics disagree.
		for i := 16; i < 32; i++ {
			s[i] *= 100
		}
		b := int(bRaw%16) + 1
		std := TopB(s, b).Reconstruct()
		greedy := GreedyTopB(s, b, metrics.RelativeSSE).Reconstruct()
		stdRel := metrics.SumSquaredRelative(s, std, 1)
		greedyRel := metrics.SumSquaredRelative(s, greedy, 1)
		return greedyRel <= stdRel+1e-9*(1+stdRel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestApproximateRowsRelativeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := []timeseries.Series{randSeries(rng, 40), randSeries(rng, 40)}
	out := ApproximateRowsRelative(rows, 24)
	if len(out) != 2 || len(out[0]) != 40 {
		t.Fatal("ApproximateRowsRelative changed the shape")
	}
}

func TestGreedyZeroBudget(t *testing.T) {
	s := timeseries.Series{1, 2, 3, 4}
	syn := GreedyTopB(s, 0, metrics.SSE)
	if len(syn.Coeffs) != 0 {
		t.Error("zero budget kept coefficients")
	}
	syn = GreedyTopB(s, -1, metrics.SSE)
	if len(syn.Coeffs) != 0 {
		t.Error("negative budget kept coefficients")
	}
}
