package wavelet

import (
	"container/heap"
	"math"
	"sort"

	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

// This file implements a metric-aware wavelet synopsis in the spirit of
// the error-guarantee wavelet work the paper discusses in Section 5.1.1
// (Garofalakis & Gibbons, its reference [12]): instead of keeping the
// largest coefficients — optimal only under L2 — coefficients are chosen
// greedily by how much they reduce the *target* metric (e.g. the sum
// squared relative error of Table 3). The paper notes such techniques
// close part of the gap to SBR at very coarse ratios; this implementation
// lets that comparison be reproduced.

// GreedyTopB selects up to b coefficients of the Haar transform of s for
// the given error metric, evaluating three candidate strategies and
// keeping the best:
//
//  1. the standard largest-|c| synopsis (L2-optimal — the right answer for
//     SSE and never worse than it for anything);
//  2. scale-normalised selection: rank by |c| / (mean |y| over the
//     coefficient's support) so that small-valued regions get their fair
//     share of the budget — the workhorse for relative error, worth up to
//     several× on mixed-scale signals (the improvement band the paper
//     quotes for error-guarantee wavelets in §5.1.1);
//  3. an adaptive greedy that repeatedly adds the coefficient with the
//     largest exact metric reduction (lazy re-evaluation). It is myopic —
//     a coarse coefficient spanning two scales can have negative gain on
//     its own even though the full set is lossless — so it rarely wins
//     alone, but it covers signals the static rankings mishandle.
func GreedyTopB(s timeseries.Series, b int, kind metrics.Kind) Synopsis {
	best := adaptiveGreedy(s, b, kind)
	if kind == metrics.SSE {
		// Magnitude selection is provably optimal for SSE; the adaptive
		// greedy reproduces it (gain = c²), so skip extra evaluations.
		return best
	}
	bestErr := metrics.Eval(kind, s, best.Reconstruct())
	for _, cand := range []Synopsis{TopB(s, b), topBScaled(s, b, kind)} {
		if e := metrics.Eval(kind, s, cand.Reconstruct()); e < bestErr {
			best, bestErr = cand, e
		}
	}
	return best
}

// topBScaled ranks coefficients by magnitude normalised by the typical
// data scale over their support, bounded below by the metric's sanity
// floor. For RelativeSSE this approximates each coefficient's contribution
// to the weighted error.
func topBScaled(s timeseries.Series, b int, kind metrics.Kind) Synopsis {
	padded, origLen := Pad(s)
	n := len(padded)
	coeffs := Forward(padded)
	if b > n {
		b = n
	}
	if b < 0 {
		b = 0
	}
	type scored struct {
		idx   int
		score float64
	}
	all := make([]scored, n)
	for i := 0; i < n; i++ {
		start, end := supportOf(i, n)
		var scale float64
		for j := start; j < end; j++ {
			scale += math.Abs(padded[j])
		}
		scale /= float64(end - start)
		if scale < metrics.DefaultSanity {
			scale = metrics.DefaultSanity
		}
		all[i] = scored{i, math.Abs(coeffs[i]) / scale}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	syn := Synopsis{Length: origLen, Padded: n}
	for _, sc := range all[:b] {
		syn.Coeffs = append(syn.Coeffs, Coefficient{Index: sc.idx, Value: coeffs[sc.idx]})
	}
	return syn
}

// adaptiveGreedy is strategy 3 of GreedyTopB.
func adaptiveGreedy(s timeseries.Series, b int, kind metrics.Kind) Synopsis {
	padded, origLen := Pad(s)
	n := len(padded)
	coeffs := Forward(padded)
	if b > n {
		b = n
	}
	if b < 0 {
		b = 0
	}

	approx := make(timeseries.Series, n)
	gain := func(i int) float64 {
		start, end := supportOf(i, n)
		before := metrics.Eval(kind, padded[start:end], approx[start:end])
		applyBasis(approx, i, coeffs[i], n)
		after := metrics.Eval(kind, padded[start:end], approx[start:end])
		applyBasis(approx, i, -coeffs[i], n) // undo
		return before - after
	}

	h := &gainHeap{}
	for i := 0; i < n; i++ {
		heap.Push(h, gainEntry{idx: i, gain: gain(i)})
	}

	syn := Synopsis{Length: origLen, Padded: n}
	for len(syn.Coeffs) < b && h.Len() > 0 {
		top := heap.Pop(h).(gainEntry)
		// Revalidate: the approximation may have changed under this
		// entry's support since its gain was computed.
		fresh := gain(top.idx)
		if h.Len() > 0 && fresh < (*h)[0].gain {
			heap.Push(h, gainEntry{idx: top.idx, gain: fresh})
			continue
		}
		if fresh <= 0 {
			// The (re-validated) maximum gain is non-positive: no remaining
			// coefficient improves the metric, and accepting one would
			// actively hurt. Stop — the synopsis may end smaller than b.
			break
		}
		applyBasis(approx, top.idx, coeffs[top.idx], n)
		syn.Coeffs = append(syn.Coeffs, Coefficient{Index: top.idx, Value: coeffs[top.idx]})
	}
	return syn
}

// supportOf returns the [start, end) range of samples the coefficient at
// transform index i influences, for the pyramid layout Forward produces.
func supportOf(i, n int) (int, int) {
	if i == 0 {
		return 0, n
	}
	level := int(math.Floor(math.Log2(float64(i))))
	groupSize := n >> uint(level)
	offset := i - (1 << uint(level))
	start := offset * groupSize
	return start, start + groupSize
}

// applyBasis adds v times the i-th orthonormal Haar basis function to out.
func applyBasis(out timeseries.Series, i int, v float64, n int) {
	if v == 0 {
		return
	}
	if i == 0 {
		amp := v / math.Sqrt(float64(n))
		for j := range out {
			out[j] += amp
		}
		return
	}
	start, end := supportOf(i, n)
	groupSize := end - start
	amp := v / math.Sqrt(float64(groupSize))
	half := groupSize / 2
	for j := start; j < start+half; j++ {
		out[j] += amp
	}
	for j := start + half; j < end; j++ {
		out[j] -= amp
	}
}

// ApproximateRelative compresses s into at most budget values with
// coefficients chosen for the sum squared relative error, and returns the
// reconstruction.
func ApproximateRelative(s timeseries.Series, budget int) timeseries.Series {
	return GreedyTopB(s, budget/ValuesPerCoefficient, metrics.RelativeSSE).Reconstruct()
}

// ApproximateRowsRelative is the batch version of ApproximateRelative,
// choosing the better of a concatenated and an equal per-row split by the
// relative-error metric.
func ApproximateRowsRelative(rows []timeseries.Series, budget int) []timeseries.Series {
	y := timeseries.Concat(rows...)
	concat := unconcat(ApproximateRelative(y, budget), rows)

	split := make([]timeseries.Series, len(rows))
	if len(rows) > 0 {
		per := budget / len(rows)
		for i, r := range rows {
			split[i] = ApproximateRelative(r, per)
		}
	}
	if relRows(rows, split) < relRows(rows, concat) {
		return split
	}
	return concat
}

func relRows(y, approx []timeseries.Series) float64 {
	var t float64
	for i := range y {
		t += metrics.SumSquaredRelative(y[i], approx[i], metrics.DefaultSanity)
	}
	return t
}

// gainHeap is a max-heap of candidate coefficients by gain.
type gainEntry struct {
	idx  int
	gain float64
}

type gainHeap []gainEntry

func (h gainHeap) Len() int            { return len(h) }
func (h gainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	last := old[len(old)-1]
	*h = old[:len(old)-1]
	return last
}
