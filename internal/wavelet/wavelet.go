// Package wavelet implements the orthonormal Haar wavelet decomposition
// used as the strongest competitor in the paper's evaluation (Section 5.1):
// forward and inverse transforms, top-B coefficient thresholding (optimal
// in L2 for an orthonormal basis), a per-signal/concatenated selection
// helper mirroring the paper's "best of both" methodology, and the standard
// two-dimensional decomposition the paper also tried.
package wavelet

import (
	"math"
	"sort"

	"sbr/internal/timeseries"
)

// ValuesPerCoefficient is the bandwidth cost of one retained coefficient:
// its position and its value.
const ValuesPerCoefficient = 2

// Forward computes the orthonormal Haar transform of s. The input length
// must be a power of two; use Pad to extend arbitrary signals.
func Forward(s timeseries.Series) timeseries.Series {
	n := len(s)
	if n&(n-1) != 0 {
		panic("wavelet: length not a power of two")
	}
	out := s.Clone()
	tmp := make(timeseries.Series, n)
	for length := n; length >= 2; length /= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			a, b := out[2*i], out[2*i+1]
			tmp[i] = (a + b) / math.Sqrt2      // smooth
			tmp[half+i] = (a - b) / math.Sqrt2 // detail
		}
		copy(out[:length], tmp[:length])
	}
	return out
}

// Inverse reverses Forward.
func Inverse(c timeseries.Series) timeseries.Series {
	n := len(c)
	if n&(n-1) != 0 {
		panic("wavelet: length not a power of two")
	}
	out := c.Clone()
	tmp := make(timeseries.Series, n)
	for length := 2; length <= n; length *= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			s, d := out[i], out[half+i]
			tmp[2*i] = (s + d) / math.Sqrt2
			tmp[2*i+1] = (s - d) / math.Sqrt2
		}
		copy(out[:length], tmp[:length])
	}
	return out
}

// Pad extends s to the next power of two by repeating the final sample,
// which avoids the artificial edge a zero pad would create. It returns the
// padded series and the original length.
func Pad(s timeseries.Series) (timeseries.Series, int) {
	n := len(s)
	p := 1
	for p < n {
		p *= 2
	}
	if p == n {
		return s.Clone(), n
	}
	out := make(timeseries.Series, p)
	copy(out, s)
	fill := 0.0
	if n > 0 {
		fill = s[n-1]
	}
	for i := n; i < p; i++ {
		out[i] = fill
	}
	return out, n
}

// Coefficient is one retained transform coefficient.
type Coefficient struct {
	Index int
	Value float64
}

// Synopsis is a sparse wavelet representation of a signal.
type Synopsis struct {
	Length int // original (un-padded) length
	Padded int // transform length (power of two)
	Coeffs []Coefficient
}

// Cost returns the bandwidth cost of the synopsis in values.
func (s Synopsis) Cost() int { return ValuesPerCoefficient * len(s.Coeffs) }

// Reconstruct materialises the approximate signal.
func (s Synopsis) Reconstruct() timeseries.Series {
	dense := make(timeseries.Series, s.Padded)
	for _, c := range s.Coeffs {
		dense[c.Index] = c.Value
	}
	full := Inverse(dense)
	return full[:s.Length]
}

// TopB builds a synopsis keeping the b largest-magnitude coefficients of
// the orthonormal Haar transform of s — the L2-optimal choice.
func TopB(s timeseries.Series, b int) Synopsis {
	padded, _ := Pad(s)
	coeffs := Forward(padded)
	idx := make([]int, len(coeffs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		return math.Abs(coeffs[idx[i]]) > math.Abs(coeffs[idx[j]])
	})
	if b > len(idx) {
		b = len(idx)
	}
	if b < 0 {
		b = 0
	}
	kept := make([]Coefficient, b)
	for i := 0; i < b; i++ {
		kept[i] = Coefficient{Index: idx[i], Value: coeffs[idx[i]]}
	}
	return Synopsis{Length: len(s), Padded: len(padded), Coeffs: kept}
}

// Approximate compresses s into at most budget values and returns the
// reconstruction.
func Approximate(s timeseries.Series, budget int) timeseries.Series {
	return TopB(s, budget/ValuesPerCoefficient).Reconstruct()
}

// ApproximateRows compresses the batch under a shared budget, trying both
// layouts the paper evaluated — one transform over the concatenated signal
// (coefficients allocated globally across rows) and independent transforms
// with an equal budget split — and returning the reconstruction with the
// smaller sum squared error, as the paper reports the best result per
// method (Section 5.1).
func ApproximateRows(rows []timeseries.Series, budget int) []timeseries.Series {
	concat := approximateConcat(rows, budget)
	split := approximateSplit(rows, budget)
	if sseRows(rows, split) < sseRows(rows, concat) {
		return split
	}
	return concat
}

func approximateConcat(rows []timeseries.Series, budget int) []timeseries.Series {
	y := timeseries.Concat(rows...)
	approx := Approximate(y, budget)
	return unconcat(approx, rows)
}

func approximateSplit(rows []timeseries.Series, budget int) []timeseries.Series {
	if len(rows) == 0 {
		return nil
	}
	per := budget / len(rows)
	out := make([]timeseries.Series, len(rows))
	for i, r := range rows {
		out[i] = Approximate(r, per)
	}
	return out
}

func unconcat(y timeseries.Series, like []timeseries.Series) []timeseries.Series {
	out := make([]timeseries.Series, len(like))
	off := 0
	for i, r := range like {
		out[i] = y[off : off+len(r)]
		off += len(r)
	}
	return out
}

func sseRows(y, approx []timeseries.Series) float64 {
	var t float64
	for i := range y {
		for j := range y[i] {
			d := y[i][j] - approx[i][j]
			t += d * d
		}
	}
	return t
}
