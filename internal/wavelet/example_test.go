package wavelet_test

import (
	"fmt"

	"sbr/internal/datagen"
	"sbr/internal/metrics"
	"sbr/internal/wavelet"
)

// Example contrasts the standard L2-optimal synopsis with the metric-aware
// greedy one (after the error-guarantee wavelet discussion in §5.1.1 of the
// paper) on phone-call data, whose mixture of large daytime and small
// night-time counts is exactly where relative error and L2 disagree.
func Example() {
	s := datagen.PhoneCallsSized(7, 512, 1).Rows[0]

	const coeffs = 26 // a 10% budget at 2 values per coefficient
	std := wavelet.TopB(s, coeffs).Reconstruct()
	greedy := wavelet.GreedyTopB(s, coeffs, metrics.RelativeSSE).Reconstruct()

	stdRel := metrics.SumSquaredRelative(s, std, 1)
	greedyRel := metrics.SumSquaredRelative(s, greedy, 1)
	fmt.Printf("relative error: greedy %.2f, standard top-B %.2f, improvement %.1fx\n",
		greedyRel, stdRel, stdRel/greedyRel)
	// Output:
	// relative error: greedy 2.90, standard top-B 3.44, improvement 1.2x
}
