package wavelet

import (
	"math"
	"sort"

	"sbr/internal/timeseries"
)

// The paper also evaluated a two-dimensional decomposition of the N×M
// batch and found it worse than the one-dimensional one; this file
// implements that variant (standard decomposition: full 1-D transform of
// every row, then of every column) so the comparison can be reproduced.

// Coefficient2D is one retained coefficient of a 2-D transform.
type Coefficient2D struct {
	Row, Col int
	Value    float64
}

// ValuesPerCoefficient2D is the cost of one 2-D coefficient: row, column
// and value.
const ValuesPerCoefficient2D = 3

// Synopsis2D is a sparse 2-D wavelet representation of a batch.
type Synopsis2D struct {
	Rows, Cols       int // original shape
	PadRows, PadCols int // transform shape (powers of two)
	Coeffs           []Coefficient2D
}

// Cost returns the bandwidth cost in values.
func (s Synopsis2D) Cost() int { return ValuesPerCoefficient2D * len(s.Coeffs) }

// Forward2D computes the standard 2-D Haar decomposition of the matrix,
// padding both dimensions to powers of two by replication.
func Forward2D(rows []timeseries.Series) (coeffs []timeseries.Series, padRows, padCols int) {
	n := len(rows)
	if n == 0 {
		return nil, 0, 0
	}
	m := len(rows[0])
	pr, pc := nextPow2(n), nextPow2(m)

	work := make([]timeseries.Series, pr)
	for i := 0; i < pr; i++ {
		src := rows[minInt(i, n-1)]
		padded, _ := Pad(src)
		if len(padded) < pc {
			// Pad() reached len(src) rounded up; extend further if the
			// target is wider (only when other rows are longer — cannot
			// happen for rectangular input, kept for safety).
			ext := make(timeseries.Series, pc)
			copy(ext, padded)
			for j := len(padded); j < pc; j++ {
				ext[j] = padded[len(padded)-1]
			}
			padded = ext
		}
		work[i] = Forward(padded)
	}
	// Transform columns.
	col := make(timeseries.Series, pr)
	for j := 0; j < pc; j++ {
		for i := 0; i < pr; i++ {
			col[i] = work[i][j]
		}
		t := Forward(col)
		for i := 0; i < pr; i++ {
			work[i][j] = t[i]
		}
	}
	return work, pr, pc
}

// Inverse2D reverses Forward2D.
func Inverse2D(coeffs []timeseries.Series) []timeseries.Series {
	pr := len(coeffs)
	if pr == 0 {
		return nil
	}
	pc := len(coeffs[0])
	work := make([]timeseries.Series, pr)
	for i := range coeffs {
		work[i] = coeffs[i].Clone()
	}
	col := make(timeseries.Series, pr)
	for j := 0; j < pc; j++ {
		for i := 0; i < pr; i++ {
			col[i] = work[i][j]
		}
		t := Inverse(col)
		for i := 0; i < pr; i++ {
			work[i][j] = t[i]
		}
	}
	for i := range work {
		work[i] = Inverse(work[i])
	}
	return work
}

// TopB2D keeps the b largest-magnitude coefficients of the 2-D transform.
func TopB2D(rows []timeseries.Series, b int) Synopsis2D {
	coeffs, pr, pc := Forward2D(rows)
	type cell struct {
		r, c int
		v    float64
	}
	all := make([]cell, 0, pr*pc)
	for r := 0; r < pr; r++ {
		for c := 0; c < pc; c++ {
			all = append(all, cell{r, c, coeffs[r][c]})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		return math.Abs(all[i].v) > math.Abs(all[j].v)
	})
	if b > len(all) {
		b = len(all)
	}
	if b < 0 {
		b = 0
	}
	kept := make([]Coefficient2D, b)
	for i := 0; i < b; i++ {
		kept[i] = Coefficient2D{Row: all[i].r, Col: all[i].c, Value: all[i].v}
	}
	cols := 0
	if len(rows) > 0 {
		cols = len(rows[0])
	}
	return Synopsis2D{Rows: len(rows), Cols: cols, PadRows: pr, PadCols: pc, Coeffs: kept}
}

// Reconstruct materialises the approximate batch.
func (s Synopsis2D) Reconstruct() []timeseries.Series {
	dense := make([]timeseries.Series, s.PadRows)
	for i := range dense {
		dense[i] = make(timeseries.Series, s.PadCols)
	}
	for _, c := range s.Coeffs {
		dense[c.Row][c.Col] = c.Value
	}
	full := Inverse2D(dense)
	out := make([]timeseries.Series, s.Rows)
	for i := 0; i < s.Rows; i++ {
		out[i] = full[i][:s.Cols]
	}
	return out
}

// ApproximateRows2D compresses the batch with the 2-D decomposition under
// the given budget.
func ApproximateRows2D(rows []timeseries.Series, budget int) []timeseries.Series {
	return TopB2D(rows, budget/ValuesPerCoefficient2D).Reconstruct()
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
