package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sbr/internal/timeseries"
)

func randSeries(rng *rand.Rand, n int) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 10
	}
	return s
}

func TestForwardInverseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		s := randSeries(rng, n)
		got := Inverse(Forward(s))
		if !timeseries.Equal(got, s, 1e-9) {
			t.Errorf("n=%d: round trip diverged", n)
		}
	}
}

func TestForwardKnownValues(t *testing.T) {
	// Orthonormal Haar of (1,1): smooth = 2/√2 = √2, detail = 0.
	got := Forward(timeseries.Series{1, 1})
	if math.Abs(got[0]-math.Sqrt2) > 1e-12 || math.Abs(got[1]) > 1e-12 {
		t.Errorf("Forward(1,1) = %v", got)
	}
	// Constant series has a single non-zero coefficient.
	got = Forward(timeseries.Series{3, 3, 3, 3})
	if math.Abs(got[0]-6) > 1e-12 { // 3·√4
		t.Errorf("Forward const[0] = %v, want 6", got[0])
	}
	for _, v := range got[1:] {
		if math.Abs(v) > 1e-12 {
			t.Errorf("constant series has non-zero detail: %v", got)
			break
		}
	}
}

func TestNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Forward on non-power-of-two did not panic")
		}
	}()
	Forward(make(timeseries.Series, 6))
}

// Property: the orthonormal transform preserves energy (Parseval).
func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (uint(rng.Intn(7)) + 1)
		s := randSeries(rng, n)
		c := Forward(s)
		var es, ec float64
		for i := range s {
			es += s[i] * s[i]
			ec += c[i] * c[i]
		}
		return math.Abs(es-ec) < 1e-6*(1+es)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPad(t *testing.T) {
	s := timeseries.Series{1, 2, 3}
	padded, n := Pad(s)
	if n != 3 || len(padded) != 4 {
		t.Fatalf("Pad gave len %d, orig %d", len(padded), n)
	}
	if padded[3] != 3 {
		t.Errorf("Pad fill = %v, want last sample 3", padded[3])
	}
	// Power-of-two input is returned as a copy.
	p2, _ := Pad(timeseries.Series{1, 2})
	p2[0] = 9
	if s[0] != 1 {
		t.Error("Pad aliases its input")
	}
}

func TestTopBFullBudgetIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randSeries(rng, 64)
	syn := TopB(s, 64)
	if !timeseries.Equal(syn.Reconstruct(), s, 1e-9) {
		t.Error("keeping all coefficients is not lossless")
	}
	if syn.Cost() != 128 {
		t.Errorf("Cost = %d, want 128", syn.Cost())
	}
}

func TestTopBZeroBudget(t *testing.T) {
	s := timeseries.Series{1, 2, 3, 4}
	syn := TopB(s, 0)
	if len(syn.Coeffs) != 0 {
		t.Errorf("zero budget kept %d coefficients", len(syn.Coeffs))
	}
	recon := syn.Reconstruct()
	if len(recon) != 4 {
		t.Errorf("reconstruction length %d", len(recon))
	}
	syn = TopB(s, -3)
	if len(syn.Coeffs) != 0 {
		t.Error("negative budget kept coefficients")
	}
}

// Property: error decreases (weakly) as more coefficients are kept, and
// top-B keeps the largest coefficients (L2 optimality for an orthonormal
// basis: error equals the energy of the dropped coefficients).
func TestTopBMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randSeries(rng, 32)
		prev := math.Inf(1)
		for b := 0; b <= 32; b += 4 {
			rec := TopB(s, b).Reconstruct()
			var sse float64
			for i := range s {
				d := s[i] - rec[i]
				sse += d * d
			}
			if sse > prev+1e-9 {
				return false
			}
			prev = sse
		}
		return prev < 1e-9 // full budget is exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestApproximateRowsKeepsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := []timeseries.Series{randSeries(rng, 50), randSeries(rng, 50), randSeries(rng, 50)}
	out := ApproximateRows(rows, 60)
	if len(out) != 3 {
		t.Fatalf("%d rows out", len(out))
	}
	for i := range out {
		if len(out[i]) != 50 {
			t.Errorf("row %d has length %d", i, len(out[i]))
		}
	}
}

func TestApproximateRowsPicksBetterLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// One very noisy row and two smooth rows: the concatenated layout can
	// allocate almost all coefficients to the noisy row, so it must win (or
	// at least not lose) against the equal split.
	smooth := make(timeseries.Series, 64)
	for i := range smooth {
		smooth[i] = math.Sin(float64(i) / 5)
	}
	rows := []timeseries.Series{smooth, smooth.Clone(), randSeries(rng, 64)}
	best := ApproximateRows(rows, 48)
	concat := approximateConcat(rows, 48)
	split := approximateSplit(rows, 48)
	bestErr := sseRows(rows, best)
	if bestErr > sseRows(rows, concat)+1e-9 || bestErr > sseRows(rows, split)+1e-9 {
		t.Error("ApproximateRows did not return the better layout")
	}
}

func TestForward2DInverse2DIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := []timeseries.Series{randSeries(rng, 16), randSeries(rng, 16), randSeries(rng, 16), randSeries(rng, 16)}
	coeffs, pr, pc := Forward2D(rows)
	if pr != 4 || pc != 16 {
		t.Fatalf("padded shape %dx%d", pr, pc)
	}
	back := Inverse2D(coeffs)
	for i := range rows {
		if !timeseries.Equal(back[i][:16], rows[i], 1e-9) {
			t.Errorf("2D round trip diverged at row %d", i)
		}
	}
}

func TestTopB2DFullBudgetExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows := []timeseries.Series{randSeries(rng, 8), randSeries(rng, 8)}
	syn := TopB2D(rows, 16)
	rec := syn.Reconstruct()
	for i := range rows {
		if !timeseries.Equal(rec[i], rows[i], 1e-9) {
			t.Errorf("2D full-budget reconstruction diverged at row %d", i)
		}
	}
	if syn.Cost() != 48 {
		t.Errorf("2D Cost = %d, want 48", syn.Cost())
	}
}

func TestApproximateRows2DShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := []timeseries.Series{randSeries(rng, 20), randSeries(rng, 20), randSeries(rng, 20)}
	out := ApproximateRows2D(rows, 30)
	if len(out) != 3 || len(out[0]) != 20 {
		t.Fatalf("2D approximate shape wrong")
	}
}

func TestForward2DEmpty(t *testing.T) {
	coeffs, pr, pc := Forward2D(nil)
	if coeffs != nil || pr != 0 || pc != 0 {
		t.Error("empty 2D transform not empty")
	}
	if Inverse2D(nil) != nil {
		t.Error("empty 2D inverse not nil")
	}
}
