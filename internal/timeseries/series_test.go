package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSeriesBasicStats(t *testing.T) {
	s := Series{1, 2, 3, 4}
	if got := s.Sum(); got != 10 {
		t.Errorf("Sum = %v, want 10", got)
	}
	if got := s.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
	if got := s.Variance(); !almostEqual(got, 1.25, 1e-12) {
		t.Errorf("Variance = %v, want 1.25", got)
	}
}

func TestEmptySeriesStats(t *testing.T) {
	var s Series
	if got := s.Mean(); got != 0 {
		t.Errorf("Mean of empty = %v, want 0", got)
	}
	if got := s.Variance(); got != 0 {
		t.Errorf("Variance of empty = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Min of empty series did not panic")
		}
	}()
	s.Min()
}

func TestMaxOfEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Max of empty series did not panic")
		}
	}()
	Series{}.Max()
}

func TestCloneIsIndependent(t *testing.T) {
	s := Series{1, 2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Error("Clone shares backing storage with original")
	}
}

func TestScaleShift(t *testing.T) {
	s := Series{1, 2, 3}
	s.Scale(2).Shift(1)
	want := Series{3, 5, 7}
	if !Equal(s, want, 0) {
		t.Errorf("Scale/Shift = %v, want %v", s, want)
	}
}

func TestConcat(t *testing.T) {
	got := Concat(Series{1, 2}, Series{3}, nil, Series{4, 5})
	want := Series{1, 2, 3, 4, 5}
	if !Equal(got, want, 0) {
		t.Errorf("Concat = %v, want %v", got, want)
	}
	if len(Concat()) != 0 {
		t.Error("Concat of nothing is not empty")
	}
}

func TestWindow(t *testing.T) {
	s := Series{0, 1, 2, 3, 4}
	w := s.Window(1, 3)
	if !Equal(w, Series{1, 2, 3}, 0) {
		t.Errorf("Window = %v", w)
	}
	// Windows share storage by design.
	w[0] = 42
	if s[1] != 42 {
		t.Error("Window does not alias the original series")
	}
}

func TestWindowOutOfRangePanics(t *testing.T) {
	cases := [][2]int{{-1, 2}, {0, 6}, {4, 2}, {0, -1}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Window(%d,%d) did not panic", c[0], c[1])
				}
			}()
			Series{0, 1, 2, 3, 4}.Window(c[0], c[1])
		}()
	}
}

func TestSplit(t *testing.T) {
	s := Series{1, 2, 3, 4, 5, 6, 7}
	parts := s.Split(3)
	if len(parts) != 2 {
		t.Fatalf("Split into %d parts, want 2 (remainder dropped)", len(parts))
	}
	if !Equal(parts[0], Series{1, 2, 3}, 0) || !Equal(parts[1], Series{4, 5, 6}, 0) {
		t.Errorf("Split = %v", parts)
	}
}

func TestSplitNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Split(0) did not panic")
		}
	}()
	Series{1}.Split(0)
}

func TestEqual(t *testing.T) {
	if !Equal(Series{1, 2}, Series{1, 2.0000001}, 1e-3) {
		t.Error("Equal should accept values within tolerance")
	}
	if Equal(Series{1, 2}, Series{1, 3}, 1e-3) {
		t.Error("Equal should reject values outside tolerance")
	}
	if Equal(Series{1}, Series{1, 2}, 1) {
		t.Error("Equal should reject different lengths")
	}
}

func TestCollectionShape(t *testing.T) {
	c, err := NewCollection(Series{1, 2, 3}, Series{4, 5, 6})
	if err != nil {
		t.Fatalf("NewCollection: %v", err)
	}
	if c.N() != 2 || c.M() != 3 || c.Len() != 6 {
		t.Errorf("shape = (%d,%d,%d), want (2,3,6)", c.N(), c.M(), c.Len())
	}
	if _, err := NewCollection(Series{1}, Series{1, 2}); err != ErrShape {
		t.Errorf("ragged rows gave %v, want ErrShape", err)
	}
}

func TestCollectionIsDeepCopy(t *testing.T) {
	row := Series{1, 2}
	c := MustCollection(row)
	row[0] = 99
	if c.At(0, 0) != 1 {
		t.Error("NewCollection did not copy its input rows")
	}
	clone := c.Clone()
	clone.Row(0)[0] = 7
	if c.At(0, 0) != 1 {
		t.Error("Clone shares rows with the original")
	}
}

func TestCollectionFlattenAndSlice(t *testing.T) {
	c := MustCollection(Series{1, 2, 3, 4}, Series{5, 6, 7, 8})
	if !Equal(c.Flatten(), Series{1, 2, 3, 4, 5, 6, 7, 8}, 0) {
		t.Errorf("Flatten = %v", c.Flatten())
	}
	sl := c.ColumnSlice(1, 2)
	if !Equal(sl.Row(0), Series{2, 3}, 0) || !Equal(sl.Row(1), Series{6, 7}, 0) {
		t.Errorf("ColumnSlice rows = %v, %v", sl.Row(0), sl.Row(1))
	}
}

func TestEmptyCollection(t *testing.T) {
	c, err := NewCollection()
	if err != nil {
		t.Fatalf("empty NewCollection: %v", err)
	}
	if c.N() != 0 || c.M() != 0 || c.Len() != 0 {
		t.Error("empty collection has non-zero shape")
	}
}

func TestPrefixMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := make(Series, 200)
	for i := range s {
		s[i] = rng.NormFloat64() * 10
	}
	p := NewPrefix(s)
	if p.Len() != len(s) {
		t.Fatalf("Prefix.Len = %d, want %d", p.Len(), len(s))
	}
	for trial := 0; trial < 100; trial++ {
		start := rng.Intn(len(s))
		length := rng.Intn(len(s) - start)
		seg := s[start : start+length]
		var sum, sumSq float64
		for _, v := range seg {
			sum += v
			sumSq += v * v
		}
		if got := p.Sum(start, length); !almostEqual(got, sum, 1e-9) {
			t.Fatalf("Sum(%d,%d) = %v, want %v", start, length, got, sum)
		}
		if got := p.SumSq(start, length); !almostEqual(got, sumSq, 1e-9) {
			t.Fatalf("SumSq(%d,%d) = %v, want %v", start, length, got, sumSq)
		}
		if length > 0 {
			if got := p.Mean(start, length); !almostEqual(got, sum/float64(length), 1e-9) {
				t.Fatalf("Mean(%d,%d) = %v", start, length, got)
			}
			if got, want := p.Variance(start, length), Series(seg).Variance(); math.Abs(got-want) > 1e-6 {
				t.Fatalf("Variance(%d,%d) = %v, want %v", start, length, got, want)
			}
		}
	}
}

func TestPrefixZeroLengthSegments(t *testing.T) {
	p := NewPrefix(Series{1, 2, 3})
	if p.Sum(1, 0) != 0 || p.SumSq(2, 0) != 0 || p.Mean(0, 0) != 0 || p.Variance(0, 0) != 0 {
		t.Error("zero-length segment statistics are not all zero")
	}
}

// Property: concatenating a Split reproduces the prefix of the series that
// the chunks cover.
func TestSplitConcatProperty(t *testing.T) {
	f := func(vals []float64, sizeRaw uint8) bool {
		size := int(sizeRaw%16) + 1
		s := Series(vals)
		parts := s.Split(size)
		joined := Concat(parts...)
		covered := (len(s) / size) * size
		return Equal(joined, s[:covered], 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: prefix sums are consistent under segment concatenation:
// Sum(a, l1+l2) = Sum(a, l1) + Sum(a+l1, l2).
func TestPrefixAdditivityProperty(t *testing.T) {
	f := func(vals []float64, aRaw, l1Raw, l2Raw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 1
			}
			// Bound magnitudes so segment sums cannot overflow or lose all
			// precision to cancellation; the property under test is about
			// index bookkeeping, not extreme-float arithmetic.
			vals[i] = math.Mod(vals[i], 1e6)
		}
		p := NewPrefix(vals)
		a := int(aRaw) % len(vals)
		l1 := int(l1Raw) % (len(vals) - a + 1)
		l2 := int(l2Raw) % (len(vals) - a - l1 + 1)
		total := p.Sum(a, l1+l2)
		split := p.Sum(a, l1) + p.Sum(a+l1, l2)
		return almostEqual(total, split, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLerpIdentityAndEndpoints(t *testing.T) {
	s := Series{1, 3, 5, 7}
	if !Equal(Lerp(s, 4), s, 1e-12) {
		t.Error("Lerp to the same length is not the identity")
	}
	up := Lerp(s, 7)
	if up[0] != 1 || up[6] != 7 {
		t.Errorf("Lerp endpoints = %v, %v", up[0], up[6])
	}
	// Midpoints of a linear series stay linear.
	if math.Abs(up[3]-4) > 1e-12 {
		t.Errorf("Lerp midpoint = %v, want 4", up[3])
	}
}

func TestLerpDegenerate(t *testing.T) {
	if Lerp(Series{5}, 3)[1] != 5 {
		t.Error("single-sample Lerp is not constant")
	}
	if got := Lerp(nil, 2); len(got) != 2 || got[0] != 0 {
		t.Errorf("empty Lerp = %v", got)
	}
	if Lerp(Series{1, 2}, 0) != nil {
		t.Error("Lerp to zero points not nil")
	}
	if got := Lerp(Series{1, 9}, 1); got[0] != 1 {
		t.Errorf("Lerp to one point = %v", got)
	}
}

// Property: Lerp preserves the range of the input (linear interpolation
// cannot overshoot).
func TestLerpRangeProperty(t *testing.T) {
	f := func(vals []float64, mRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		s := Series(vals)
		m := int(mRaw%64) + 1
		out := Lerp(s, m)
		lo, hi := s.Min(), s.Max()
		for _, v := range out {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDownsample(t *testing.T) {
	s := Series{1, 3, 5, 7, 9}
	got := Downsample(s, 2)
	want := Series{2, 6, 9}
	if !Equal(got, want, 1e-12) {
		t.Errorf("Downsample = %v, want %v", got, want)
	}
	if !Equal(Downsample(s, 1), s, 0) {
		t.Error("factor-1 Downsample is not the identity")
	}
}

func TestAlignToGrid(t *testing.T) {
	times := []float64{0, 10, 20}
	values := Series{0, 100, 0}
	got := AlignToGrid(times, values, 5)
	want := Series{0, 50, 100, 50, 0}
	if !Equal(got, want, 1e-9) {
		t.Errorf("AlignToGrid = %v, want %v", got, want)
	}
	// Irregular times.
	got = AlignToGrid([]float64{0, 1, 10}, Series{0, 9, 18}, 3)
	if math.Abs(got[1]-13) > 1e-9 { // t=5 lies between (1,9) and (10,18)
		t.Errorf("irregular AlignToGrid[1] = %v, want 13", got[1])
	}
	if got := AlignToGrid([]float64{3}, Series{7}, 4); got[2] != 7 {
		t.Error("single-point AlignToGrid not constant")
	}
}

func TestAlignToGridMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched align input did not panic")
		}
	}()
	AlignToGrid([]float64{1, 2}, Series{1}, 3)
}

func TestPrefixResetReusesBacking(t *testing.T) {
	p := NewPrefix(Series{1, 2, 3, 4, 5})
	sumBefore, _ := p.Raw()
	p.Reset(Series{7, 7, 7})
	sumAfter, _ := p.Raw()
	if &sumBefore[0] != &sumAfter[0] {
		t.Error("Reset to a shorter series should reuse the backing array")
	}
	if p.Len() != 3 || p.Sum(0, 3) != 21 || p.SumSq(0, 3) != 147 {
		t.Fatalf("after Reset: len=%d sum=%g sumsq=%g", p.Len(), p.Sum(0, 3), p.SumSq(0, 3))
	}
	// Growing past capacity must still be correct.
	long := make(Series, 64)
	for i := range long {
		long[i] = float64(i)
	}
	p.Reset(long)
	if p.Len() != 64 || p.Sum(0, 64) != 63*64/2 {
		t.Fatalf("after growing Reset: len=%d sum=%g", p.Len(), p.Sum(0, 64))
	}
}

func TestPrefixRawLayout(t *testing.T) {
	s := Series{2, -1, 4}
	sum, sumSq := NewPrefix(s).Raw()
	wantSum := []float64{0, 2, 1, 5}
	wantSq := []float64{0, 4, 5, 21}
	for i := range wantSum {
		if sum[i] != wantSum[i] || sumSq[i] != wantSq[i] {
			t.Fatalf("Raw()[%d] = (%g, %g), want (%g, %g)", i, sum[i], sumSq[i], wantSum[i], wantSq[i])
		}
	}
}
