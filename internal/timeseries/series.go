// Package timeseries provides the basic data containers used throughout the
// SBR framework: one-dimensional sample series, the N×M in-sensor collection
// buffer described in Section 3.2 of the paper, and prefix-sum statistics
// that let segment aggregates be computed in constant time.
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Series is a sequence of samples of a single recorded quantity.
type Series []float64

// Clone returns an independent copy of s.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Sum returns the sum of all samples.
func (s Series) Sum() float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

// Mean returns the arithmetic mean of the samples, or 0 for an empty series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s))
}

// Min returns the smallest sample. It panics on an empty series.
func (s Series) Min() float64 {
	if len(s) == 0 {
		panic("timeseries: Min of empty series")
	}
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample. It panics on an empty series.
func (s Series) Max() float64 {
	if len(s) == 0 {
		panic("timeseries: Max of empty series")
	}
	m := s[0]
	for _, v := range s[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Variance returns the population variance of the samples.
func (s Series) Variance() float64 {
	if len(s) == 0 {
		return 0
	}
	mean := s.Mean()
	var t float64
	for _, v := range s {
		d := v - mean
		t += d * d
	}
	return t / float64(len(s))
}

// Scale multiplies every sample by f in place and returns s.
func (s Series) Scale(f float64) Series {
	for i := range s {
		s[i] *= f
	}
	return s
}

// Shift adds d to every sample in place and returns s.
func (s Series) Shift(d float64) Series {
	for i := range s {
		s[i] += d
	}
	return s
}

// Concat returns the concatenation of the given series as a new Series.
// This realises the paper's "virtual assignment" Y = concat(Y_1 … Y_N).
func Concat(parts ...Series) Series {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make(Series, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Window returns the sub-series s[start : start+length] without copying.
// It panics if the window falls outside the series.
func (s Series) Window(start, length int) Series {
	if start < 0 || length < 0 || start+length > len(s) {
		panic(fmt.Sprintf("timeseries: window [%d,%d) outside series of length %d",
			start, start+length, len(s)))
	}
	return s[start : start+length]
}

// Split breaks s into consecutive non-overlapping chunks of the given size.
// A final shorter remainder, if any, is dropped: the SBR framework only
// operates on whole base intervals.
func (s Series) Split(size int) []Series {
	if size <= 0 {
		panic("timeseries: non-positive split size")
	}
	out := make([]Series, 0, len(s)/size)
	for start := 0; start+size <= len(s); start += size {
		out = append(out, s[start:start+size])
	}
	return out
}

// Equal reports whether a and b have the same length and samples within tol.
func Equal(a, b Series, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// ErrShape is returned when rows of a collection have inconsistent lengths.
var ErrShape = errors.New("timeseries: rows have different lengths")

// Collection is the N×M in-memory array of Section 3.2: row i holds the M
// most recent samples of quantity i. All rows must have equal length.
type Collection struct {
	rows []Series
}

// NewCollection builds a collection from the given rows, validating that all
// rows have the same length.
func NewCollection(rows ...Series) (*Collection, error) {
	if len(rows) == 0 {
		return &Collection{}, nil
	}
	m := len(rows[0])
	for _, r := range rows[1:] {
		if len(r) != m {
			return nil, ErrShape
		}
	}
	cp := make([]Series, len(rows))
	for i, r := range rows {
		cp[i] = r.Clone()
	}
	return &Collection{rows: cp}, nil
}

// MustCollection is NewCollection that panics on shape errors; intended for
// tests and generators whose shapes are known statically.
func MustCollection(rows ...Series) *Collection {
	c, err := NewCollection(rows...)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of recorded quantities (rows).
func (c *Collection) N() int { return len(c.rows) }

// M returns the number of samples per quantity (columns).
func (c *Collection) M() int {
	if len(c.rows) == 0 {
		return 0
	}
	return len(c.rows[0])
}

// Len returns the total number of stored samples, n = N×M.
func (c *Collection) Len() int { return c.N() * c.M() }

// Row returns row i without copying.
func (c *Collection) Row(i int) Series { return c.rows[i] }

// Rows returns the underlying rows without copying.
func (c *Collection) Rows() []Series { return c.rows }

// Flatten concatenates the rows into a single series, the virtual Y of
// Algorithm 3.
func (c *Collection) Flatten() Series { return Concat(c.rows...) }

// Clone returns a deep copy of the collection.
func (c *Collection) Clone() *Collection {
	rows := make([]Series, len(c.rows))
	for i, r := range c.rows {
		rows[i] = r.Clone()
	}
	return &Collection{rows: rows}
}

// At returns the sample of quantity row at position col.
func (c *Collection) At(row, col int) float64 { return c.rows[row][col] }

// ColumnSlice returns, for every row, the sub-series [start, start+length).
func (c *Collection) ColumnSlice(start, length int) *Collection {
	rows := make([]Series, len(c.rows))
	for i, r := range c.rows {
		rows[i] = r.Window(start, length)
	}
	return &Collection{rows: rows}
}
