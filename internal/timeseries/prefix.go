package timeseries

// Prefix holds prefix sums of a series and of its squares, enabling O(1)
// computation of segment sums, segment sums of squares, means and the
// constant terms of the least-squares error formula. It is the workhorse
// behind the O(1)-per-shift cost of BestMap's scan over the base signal.
type Prefix struct {
	sum   []float64 // sum[i]   = Σ s[0..i)
	sumSq []float64 // sumSq[i] = Σ s[0..i)^2
	n     int
}

// NewPrefix builds prefix sums over s in O(len(s)).
func NewPrefix(s Series) *Prefix {
	p := &Prefix{
		sum:   make([]float64, len(s)+1),
		sumSq: make([]float64, len(s)+1),
		n:     len(s),
	}
	for i, v := range s {
		p.sum[i+1] = p.sum[i] + v
		p.sumSq[i+1] = p.sumSq[i] + v*v
	}
	return p
}

// Len returns the length of the underlying series.
func (p *Prefix) Len() int { return p.n }

// Sum returns Σ s[start : start+length).
func (p *Prefix) Sum(start, length int) float64 {
	return p.sum[start+length] - p.sum[start]
}

// SumSq returns Σ s[i]^2 over [start, start+length).
func (p *Prefix) SumSq(start, length int) float64 {
	return p.sumSq[start+length] - p.sumSq[start]
}

// Mean returns the mean of s over [start, start+length).
func (p *Prefix) Mean(start, length int) float64 {
	if length == 0 {
		return 0
	}
	return p.Sum(start, length) / float64(length)
}

// Variance returns the population variance of s over [start, start+length).
func (p *Prefix) Variance(start, length int) float64 {
	if length == 0 {
		return 0
	}
	n := float64(length)
	mean := p.Sum(start, length) / n
	return p.SumSq(start, length)/n - mean*mean
}
