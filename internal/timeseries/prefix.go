package timeseries

// Prefix holds prefix sums of a series and of its squares, enabling O(1)
// computation of segment sums, segment sums of squares, means and the
// constant terms of the least-squares error formula. It is the workhorse
// behind the O(1)-per-shift cost of BestMap's scan over the base signal.
type Prefix struct {
	sum   []float64 // sum[i]   = Σ s[0..i)
	sumSq []float64 // sumSq[i] = Σ s[0..i)^2
	n     int
}

// NewPrefix builds prefix sums over s in O(len(s)).
func NewPrefix(s Series) *Prefix {
	p := &Prefix{}
	p.Reset(s)
	return p
}

// Reset recomputes the prefix sums over s, reusing the existing backing
// arrays when they are large enough. Because the sums accumulate strictly
// left to right, two series sharing a prefix produce bit-identical sums
// over that prefix — the invariant the insert-count search relies on to
// share one Prefix across probes of growing signals.
func (p *Prefix) Reset(s Series) {
	if cap(p.sum) < len(s)+1 {
		p.sum = make([]float64, len(s)+1)
		p.sumSq = make([]float64, len(s)+1)
	}
	p.sum = p.sum[:len(s)+1]
	p.sumSq = p.sumSq[:len(s)+1]
	p.n = len(s)
	p.sum[0], p.sumSq[0] = 0, 0
	for i, v := range s {
		p.sum[i+1] = p.sum[i] + v
		p.sumSq[i+1] = p.sumSq[i] + v*v
	}
}

// Len returns the length of the underlying series.
func (p *Prefix) Len() int { return p.n }

// Raw exposes the prefix-sum arrays (length Len()+1; entry i covers
// s[0..i)) for hot loops that cannot afford per-element method calls. The
// arrays must not be modified.
func (p *Prefix) Raw() (sum, sumSq []float64) { return p.sum, p.sumSq }

// Sum returns Σ s[start : start+length).
func (p *Prefix) Sum(start, length int) float64 {
	return p.sum[start+length] - p.sum[start]
}

// SumSq returns Σ s[i]^2 over [start, start+length).
func (p *Prefix) SumSq(start, length int) float64 {
	return p.sumSq[start+length] - p.sumSq[start]
}

// Mean returns the mean of s over [start, start+length).
func (p *Prefix) Mean(start, length int) float64 {
	if length == 0 {
		return 0
	}
	return p.Sum(start, length) / float64(length)
}

// Variance returns the population variance of s over [start, start+length).
func (p *Prefix) Variance(start, length int) float64 {
	if length == 0 {
		return 0
	}
	n := float64(length)
	mean := p.Sum(start, length) / n
	return p.SumSq(start, length)/n - mean*mean
}
