package timeseries

// Resampling utilities supporting quantities recorded on different
// schedules (the paper's footnote 2: the framework applies when each
// quantity has its own sampling rate, after alignment to a common grid).

// Lerp linearly interpolates s onto a grid of m points spanning the same
// time range: output point j sits at fraction j/(m−1) of the input span.
// Endpoints are preserved. A single-sample or empty input extends as a
// constant.
func Lerp(s Series, m int) Series {
	if m <= 0 {
		return nil
	}
	out := make(Series, m)
	switch len(s) {
	case 0:
		return out
	case 1:
		for j := range out {
			out[j] = s[0]
		}
		return out
	}
	if m == 1 {
		out[0] = s[0]
		return out
	}
	scale := float64(len(s)-1) / float64(m-1)
	for j := 0; j < m; j++ {
		pos := float64(j) * scale
		i := int(pos)
		if i >= len(s)-1 {
			out[j] = s[len(s)-1]
			continue
		}
		frac := pos - float64(i)
		out[j] = s[i]*(1-frac) + s[i+1]*frac
	}
	return out
}

// Downsample reduces s by averaging non-overlapping windows of the given
// factor; a final partial window is averaged over its actual length.
func Downsample(s Series, factor int) Series {
	if factor <= 1 {
		return s.Clone()
	}
	out := make(Series, 0, (len(s)+factor-1)/factor)
	for start := 0; start < len(s); start += factor {
		end := start + factor
		if end > len(s) {
			end = len(s)
		}
		out = append(out, s[start:end].Mean())
	}
	return out
}

// AlignToGrid interpolates irregularly timed samples (times must be
// strictly increasing) onto a regular grid of m points spanning
// [times[0], times[len−1]]. Values outside the observed range clamp to the
// nearest endpoint.
func AlignToGrid(times []float64, values Series, m int) Series {
	if len(times) != len(values) {
		panic("timeseries: times and values length mismatch")
	}
	if m <= 0 || len(values) == 0 {
		return make(Series, maxInt(m, 0))
	}
	out := make(Series, m)
	if len(values) == 1 || m == 1 {
		for j := range out {
			out[j] = values[0]
		}
		return out
	}
	t0, t1 := times[0], times[len(times)-1]
	span := t1 - t0
	i := 0
	for j := 0; j < m; j++ {
		t := t0 + span*float64(j)/float64(m-1)
		for i < len(times)-2 && times[i+1] < t {
			i++
		}
		lo, hi := times[i], times[i+1]
		switch {
		case t <= lo:
			out[j] = values[i]
		case t >= hi:
			out[j] = values[i+1]
		default:
			frac := (t - lo) / (hi - lo)
			out[j] = values[i]*(1-frac) + values[i+1]*frac
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
