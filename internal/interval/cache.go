package interval

import (
	"sync"
	"sync/atomic"
)

// SearchCache memoises BestMap scan state across the probes of the
// Algorithm 6/7 insert-count search. Every probe pos approximates the same
// batch against the signal X₀‖candidates[:pos] — all sharing the stored
// pool prefix X₀ — and probes never mutate X₀ or the candidate list, they
// only change how much of the candidate tail is visible. A fit evaluated
// at shift s therefore depends only on X values below s+Length, which are
// identical for every probe that can see the shift at all: scan work done
// once is valid forever within the search.
//
// The cache keys state by (Start, Length) and keeps, per interval, the
// ramp fall-back fit plus the running-minima improvements of the shift
// scan. A probe that revisits an interval answers "best shift in my
// visible range" from the improvements list and only scans the shifts
// beyond the furthest previously covered one — the candidate tail.
//
// All methods are safe for concurrent use (GetIntervals seeds row
// intervals in parallel); entries are locked individually.
type SearchCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*scanEntry

	hits       atomic.Int64 // BestMap calls served from an existing entry
	misses     atomic.Int64 // BestMap calls that created their entry
	tailShifts atomic.Int64 // shifts scanned beyond an entry's prior coverage
}

type cacheKey struct{ start, length int }

// scanEntry is the memoised scan state of one (Start, Length) interval.
type scanEntry struct {
	mu        sync.Mutex
	rampKnown bool
	ramp      shiftFit
	scanned   int        // shifts [0, scanned) are covered by mins
	mins      []shiftFit // running minima of the scan, ascending shift
}

// NewSearchCache creates an empty cache for one insert-count search.
func NewSearchCache() *SearchCache {
	return &SearchCache{entries: make(map[cacheKey]*scanEntry)}
}

// entry returns the scan state for (start, length), creating it if absent
// and counting the hit or miss.
func (c *SearchCache) entry(start, length int) *scanEntry {
	key := cacheKey{start, length}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &scanEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e
}

// Stats returns the accumulated counters: entry hits and misses, and the
// total number of tail shifts scanned incrementally on top of cached
// coverage. Safe on a nil cache (all zeros).
func (c *SearchCache) Stats() (hits, misses, tailShifts int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.tailShifts.Load()
}
