package interval

import (
	"math"
	"math/rand"
	"testing"

	"sbr/internal/metrics"
	"sbr/internal/regression"
	"sbr/internal/timeseries"
)

// TestSearchCacheMatchesCacheless replays the insert-count search's access
// pattern — the same intervals probed against a base signal that grows by
// reslicing a fixed backing array — and checks that every cached BestMap
// answer is identical to a fresh cache-less Mapper's. This exercises entry
// creation, incremental tail extension when X grows, and the bestAmong
// lookup when a later probe re-reads an entry at an earlier coverage.
func TestSearchCacheMatchesCacheless(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const w = 16
	xFull := make(timeseries.Series, 8*w)
	for i := range xFull {
		xFull[i] = math.Sin(float64(i)/5) + 0.3*rng.NormFloat64()
	}
	y := make(timeseries.Series, 96)
	for i := range y {
		y[i] = 2*math.Sin(float64(i)/5+0.4) + 0.3*rng.NormFloat64()
	}

	for _, kind := range []metrics.Kind{metrics.SSE, metrics.RelativeSSE, metrics.MaxAbs} {
		fitter := regression.Fitter{Kind: kind}
		px := timeseries.NewPrefix(xFull)
		cached := NewMapperWithPrefix(nil, w, fitter, px)
		cached.Cache = NewSearchCache()

		probes := []struct{ start, length int }{
			{0, 24}, {24, 24}, {48, 12}, {60, 20}, {80, 16}, {0, 96},
		}
		// Probe order mimics the binary search: coverage does not grow
		// monotonically, so later probes hit entries scanned further.
		for _, slots := range []int{2, 6, 4, 8, 3} {
			cached.X = xFull[:slots*w]
			fresh := NewMapper(xFull[:slots*w], w, fitter)
			for _, p := range probes {
				got := Interval{Start: p.start, Length: p.length}
				want := got
				cached.BestMap(y, &got)
				fresh.BestMap(y, &want)
				if got != want {
					t.Fatalf("%v slots=%d probe=%+v: cached %v, fresh %v",
						kind, slots, p, got, want)
				}
			}
		}
		hits, misses, tail := cached.Cache.Stats()
		if misses != int64(len(probes)) {
			t.Errorf("%v: %d misses, want one per distinct probe (%d)", kind, misses, len(probes))
		}
		if hits != int64(len(probes)*4) {
			t.Errorf("%v: %d hits, want %d (every revisit)", kind, hits, len(probes)*4)
		}
		if tail <= 0 {
			t.Errorf("%v: no tail shifts recorded", kind)
		}
	}
}

// TestSearchCacheStatsNil: a nil cache reports zeros rather than panicking.
func TestSearchCacheStatsNil(t *testing.T) {
	var c *SearchCache
	if h, m, ts := c.Stats(); h != 0 || m != 0 || ts != 0 {
		t.Fatalf("nil cache stats = %d/%d/%d, want zeros", h, m, ts)
	}
}

// TestBestAmong checks the running-minima lookup: the best fit over the
// first q shifts is the last improvement recorded strictly below q.
func TestBestAmong(t *testing.T) {
	mins := []shiftFit{
		{Shift: 2, Err: 9},
		{Shift: 5, Err: 4},
		{Shift: 11, Err: 1},
	}
	cases := []struct {
		q        int
		ok       bool
		wantErr  float64
		wantShft int
	}{
		{1, false, 0, 0},   // nothing scanned below q
		{3, true, 9, 2},    // only the first improvement visible
		{5, true, 9, 2},    // shift 5 itself is outside [0, 5)
		{6, true, 4, 5},    //
		{12, true, 1, 11},  // full coverage
		{100, true, 1, 11}, // beyond coverage: still the last improvement
	}
	for _, c := range cases {
		got, ok := bestAmong(mins, c.q)
		if ok != c.ok {
			t.Fatalf("q=%d: ok=%v want %v", c.q, ok, c.ok)
		}
		if ok && (got.Err != c.wantErr || got.Shift != c.wantShft) {
			t.Fatalf("q=%d: got shift=%d err=%g, want shift=%d err=%g",
				c.q, got.Shift, got.Err, c.wantShft, c.wantErr)
		}
	}
	if _, ok := bestAmong(nil, 10); ok {
		t.Fatal("bestAmong(nil) should report no fit")
	}
}
