// Package interval implements the piece-wise approximation layer of the SBR
// framework: the Interval record, the BestMap subroutine that maps a data
// interval onto the best-matching segment of the base signal (Algorithm 2),
// the recursive GetIntervals splitter driven by a max-error priority queue
// (Algorithm 3), and the decoder that reconstructs the approximate signal
// from transmitted interval records.
package interval

import (
	"fmt"
	"math"
	"sort"

	"sbr/internal/metrics"
	"sbr/internal/regression"
	"sbr/internal/timeseries"
)

// RampShift is the sentinel Shift value denoting that an interval is
// approximated by standard linear regression against time instead of a
// segment of the base signal. The paper stores "a negative value".
const RampShift = -1

// Interval is the six-field data structure of Section 4.2. The first four
// fields (Start, Shift, A, B) form the record transmitted to the base
// station; Length is recovered at the receiver from the sorted starts and
// Err never leaves the sensor.
type Interval struct {
	Start  int     // first index of the approximated range in the virtual Y
	Length int     // number of samples in the range
	Shift  int     // base-signal offset, or RampShift for plain regression
	A, B   float64 // regression parameters
	Err    float64 // approximation error under the active metric

	// C is the quadratic coefficient of the non-linear encoding extension
	// (the paper's Section 6 future work): the model becomes
	// Y' = C·X² + A·X + B. It stays zero under the paper's linear encoding,
	// making the linear model a strict special case.
	C float64
}

// ValuesPerInterval is the transmission cost of one interval record:
// start, shift and the two regression parameters (Section 4.2).
const ValuesPerInterval = 4

// ValuesPerRampInterval is the cost when the framework runs without a base
// signal at all (pure piecewise linear regression): the shift pointer is
// unnecessary, so each record is 3 values (Section 5.2).
const ValuesPerRampInterval = 3

// ValuesPerQuadInterval is the record cost under the quadratic encoding
// extension: start, shift and three coefficients.
const ValuesPerQuadInterval = 5

// String implements fmt.Stringer for debugging output.
func (iv Interval) String() string {
	return fmt.Sprintf("[%d,%d) shift=%d a=%.4g b=%.4g err=%.4g",
		iv.Start, iv.Start+iv.Length, iv.Shift, iv.A, iv.B, iv.Err)
}

// Approximate writes the interval's approximation of y into out, which must
// have length iv.Length. For Shift >= 0 the model is a·X[Shift+i]+b over
// the base signal x; for RampShift it is a·i+b over the local time index.
func (iv Interval) Approximate(x timeseries.Series, out timeseries.Series) {
	if len(out) != iv.Length {
		panic("interval: output buffer size mismatch")
	}
	if iv.Shift == RampShift {
		for i := range out {
			t := float64(i)
			out[i] = iv.C*t*t + iv.A*t + iv.B
		}
		return
	}
	for i := range out {
		xv := x[iv.Shift+i]
		out[i] = iv.C*xv*xv + iv.A*xv + iv.B
	}
}

// Mapper holds the state shared by all BestMap invocations over one batch:
// the current base signal, its prefix sums (for the O(1)-moment fast path of
// the SSE metric), the base-interval width W and the active regression
// fitter.
type Mapper struct {
	X      timeseries.Series
	W      int
	Fitter regression.Fitter

	// DisableRamp disables the plain-linear-regression fall-back, as in the
	// base-signal comparison of Section 5.2. Intervals longer than the base
	// signal still use the ramp, since no shift can cover them.
	DisableRamp bool

	// Quadratic enables the non-linear encoding extension (Section 6
	// future work): intervals are fitted as Y' = C·X² + A·X + B. Only
	// supported under the SSE metric.
	Quadratic bool

	// Cache, when set, memoises shift-scan state across BestMap calls. The
	// insert-count search installs one cache per Encode and grows X between
	// probes by reslicing a fixed backing signal; the cache is only valid
	// under that discipline (X values at indices covered by earlier calls
	// never change). See SearchCache.
	Cache *SearchCache

	px   *timeseries.Prefix
	qbuf []Interval // recycled priority-queue backing array for GetIntervals
}

// NewMapper builds a Mapper over base signal x.
func NewMapper(x timeseries.Series, w int, fitter regression.Fitter) *Mapper {
	return &Mapper{X: x, W: w, Fitter: fitter, px: timeseries.NewPrefix(x)}
}

// NewMapperWithPrefix builds a Mapper whose prefix sums are supplied by the
// caller. px must cover at least x; it may cover a longer backing signal of
// which x is a prefix, which is how the insert-count search shares one
// prefix-sum computation across all probes (prefix sums accumulate left to
// right, so the sums over a shared prefix are bit-identical).
func NewMapperWithPrefix(x timeseries.Series, w int, fitter regression.Fitter, px *timeseries.Prefix) *Mapper {
	return &Mapper{X: x, W: w, Fitter: fitter, px: px}
}

// scanner returns the rangeScanner for y[start : start+length) — the fused
// SSE kernel, the quadratic evaluator, or the generic metric fitter —
// together with the approximate cost of one shift evaluation (used to
// decide whether a scan is worth fanning out). Scanners are pure functions
// of the shift range, which is what makes both the parallel scan and the
// cross-probe cache bit-exact.
func (m *Mapper) scanner(y timeseries.Series, start, length int) (rangeScanner, int) {
	if m.Quadratic {
		x := m.X
		return evalScanner(func(s int) shiftFit {
			fit := regression.Quad(x, y, s, start, length)
			return shiftFit{Shift: s, A: fit.A, B: fit.B, C: fit.C, Err: fit.Err}
		}), length
	}
	if m.Fitter.Kind == metrics.SSE {
		// SSE fast path: the Y-segment moments are accumulated once here,
		// the X-segment moments come from prefix sums, and the fused kernel
		// computes only the cross moment per shift.
		var sumY, sumY2 float64
		for i := 0; i < length; i++ {
			v := y[start+i]
			sumY += v
			sumY2 += v * v
		}
		x, px := m.X, m.px
		return func(lo, hi int, best float64, out []shiftFit) []shiftFit {
			regression.ScanSSEMins(x, px, y, sumY, sumY2, start, length, lo, hi, best,
				func(s int, f regression.Fit) {
					out = append(out, shiftFit{Shift: s, A: f.A, B: f.B, Err: f.Err})
				})
			return out
		}, length
	}
	x, fitter := m.X, m.Fitter
	return evalScanner(func(s int) shiftFit {
		fit := fitter.Fit(x, y, s, start, length)
		return shiftFit{Shift: s, A: fit.A, B: fit.B, Err: fit.Err}
	}), length
}

// rampFit computes the plain-regression fall-back fit for
// y[start : start+length).
func (m *Mapper) rampFit(y timeseries.Series, start, length int) shiftFit {
	if m.Quadratic {
		fit := regression.RampQuad(y, start, length)
		return shiftFit{Shift: RampShift, A: fit.A, B: fit.B, C: fit.C, Err: fit.Err}
	}
	fit := m.Fitter.FitRamp(y, start, length)
	return shiftFit{Shift: RampShift, A: fit.A, B: fit.B, Err: fit.Err}
}

// BestMap fills in iv.Shift, iv.A, iv.B (and iv.C under the quadratic
// encoding) and iv.Err with the best available approximation of
// y[iv.Start : iv.Start+iv.Length): the plain regression fall-back and, for
// intervals no longer than 2W, every shift of the interval over the base
// signal (Algorithm 2). All three encodings (generic metric, quadratic,
// SSE) run through the shared scan engine in scan.go, so they inherit the
// same parallel fan-out, deterministic reduction and cross-probe caching.
func (m *Mapper) BestMap(y timeseries.Series, iv *Interval) {
	useRamp := true
	scan := iv.Length <= 2*m.W
	if m.DisableRamp {
		// Comparison mode: use the base signal whenever it is long enough,
		// pretending the fall-back is unavailable (Section 5.2).
		scan = true
		useRamp = false
	}
	shifts := len(m.X) - iv.Length + 1
	if !scan || shifts < 0 {
		shifts = 0
	}

	var e *scanEntry
	if m.Cache != nil {
		e = m.Cache.entry(iv.Start, iv.Length)
		e.mu.Lock()
		defer e.mu.Unlock()
	}

	var scanFit shiftFit
	haveScan := false
	if shifts > 0 {
		scan, cost := m.scanner(y, iv.Start, iv.Length)
		if e != nil {
			if shifts > e.scanned {
				// Only the tail beyond the cached coverage needs scanning;
				// continue the running minima from the cached best.
				cur := math.Inf(1)
				if n := len(e.mins); n > 0 {
					cur = e.mins[n-1].Err
				}
				m.Cache.tailShifts.Add(int64(shifts - e.scanned))
				if e.mins == nil {
					// Smooth signals accumulate tens of improvements per
					// entry; pre-sizing avoids the append-doubling garbage.
					e.mins = make([]shiftFit, 0, 24)
				}
				e.mins = scanMins(scan, e.scanned, shifts, cost, cur, e.mins)
				e.scanned = shifts
			}
			scanFit, haveScan = bestAmong(e.mins, shifts)
		} else {
			scanFit, haveScan = scanBest(scan, 0, shifts, cost)
		}
	}

	if haveScan && !useRamp {
		iv.Shift, iv.A, iv.B, iv.C, iv.Err = scanFit.Shift, scanFit.A, scanFit.B, scanFit.C, scanFit.Err
		return
	}
	ramp := m.cachedRamp(e, y, iv.Start, iv.Length)
	if haveScan && scanFit.Err < ramp.Err {
		iv.Shift, iv.A, iv.B, iv.C, iv.Err = scanFit.Shift, scanFit.A, scanFit.B, scanFit.C, scanFit.Err
		return
	}
	iv.Shift, iv.A, iv.B, iv.C, iv.Err = ramp.Shift, ramp.A, ramp.B, ramp.C, ramp.Err
}

// cachedRamp returns the ramp fall-back fit, memoised on the cache entry
// when one is held (the ramp depends only on the Y segment, never on the
// probe's signal).
func (m *Mapper) cachedRamp(e *scanEntry, y timeseries.Series, start, length int) shiftFit {
	if e != nil && e.rampKnown {
		return e.ramp
	}
	ramp := m.rampFit(y, start, length)
	if e != nil {
		e.ramp, e.rampKnown = ramp, true
	}
	return ramp
}

// Options tunes GetIntervals beyond the paper's defaults.
type Options struct {
	// ErrorTarget, when positive, stops the recursive splitting as soon as
	// the total error drops to the target even if budget remains — the
	// combined error/space bound mode of Section 4.5.
	ErrorTarget float64

	// ValuesPerRecord is the bandwidth cost of one interval record. Zero
	// means ValuesPerInterval (4). The no-base-signal mode uses
	// ValuesPerRampInterval (3), since the shift pointer is elided.
	ValuesPerRecord int
}

// GetIntervals approximates the concatenated signal y (N rows of M values
// each) with at most budget/ValuesPerInterval intervals, following
// Algorithm 3: one interval per row initially, then repeated splitting of
// the worst-error interval. The returned intervals are sorted by Start.
func GetIntervals(m *Mapper, y timeseries.Series, n, rowLen, budget int, opts Options) []Interval {
	if n <= 0 || rowLen <= 0 {
		return nil
	}
	perRecord := opts.ValuesPerRecord
	if perRecord <= 0 {
		perRecord = ValuesPerInterval
	}
	maxIntervals := budget / perRecord
	if maxIntervals < n {
		// The paper assumes B >= 4N; with less budget we still need one
		// interval per row to cover the signal.
		maxIntervals = n
	}

	q := newQueue(m.Fitter.Kind, maxIntervals, m.qbuf)
	m.seedRows(q, y, n, rowLen)

	var done []Interval // unsplittable single-sample intervals
	for q.countAll(len(done)) < maxIntervals {
		if opts.ErrorTarget > 0 && q.totalErr() <= opts.ErrorTarget {
			break
		}
		iv, ok := q.popSplittable(&done)
		if !ok {
			break
		}
		left := Interval{Start: iv.Start, Length: iv.Length / 2}
		right := Interval{
			Start:  iv.Start + iv.Length/2,
			Length: iv.Length - iv.Length/2,
		}
		m.BestMap(y, &left)
		m.BestMap(y, &right)
		q.push(left)
		q.push(right)
	}

	out := make([]Interval, 0, q.Len()+len(done))
	out = append(out, q.items...)
	out = append(out, done...)
	m.qbuf = q.release()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// seedRows pushes the N initial one-per-row intervals. When the per-row
// shift scans add up to enough work, the rows are fitted concurrently under
// the scan engine's worker cap; the results are pushed in row order either
// way, so the heap layout — and everything downstream — is identical to the
// serial seeding.
func (m *Mapper) seedRows(q *queue, y timeseries.Series, n, rowLen int) {
	shifts := len(m.X) - rowLen + 1
	scanning := rowLen <= 2*m.W || m.DisableRamp
	workers := ScanWorkers()
	if workers > n {
		workers = n
	}
	if n < 2 || workers <= 1 || !scanning || shifts <= 0 ||
		n*shifts*rowLen < ParallelScanThreshold {
		for i := 0; i < n; i++ {
			iv := Interval{Start: i * rowLen, Length: rowLen}
			m.BestMap(y, &iv)
			q.push(iv)
		}
		return
	}
	seeds := make([]Interval, n)
	fanOut(workers, 0, n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			iv := Interval{Start: i * rowLen, Length: rowLen}
			m.BestMap(y, &iv)
			seeds[i] = iv
		}
	})
	for _, iv := range seeds {
		q.push(iv)
	}
}

// TotalError combines the per-interval errors under the given metric.
func TotalError(kind metrics.Kind, list []Interval) float64 {
	total := metrics.Zero(kind)
	for _, iv := range list {
		total = metrics.Combine(kind, total, iv.Err)
	}
	return total
}

// Reconstruct decodes a sorted interval list into the approximate signal of
// the given total length, using base signal x for shifted intervals.
func Reconstruct(x timeseries.Series, list []Interval, total int) timeseries.Series {
	out := make(timeseries.Series, total)
	for _, iv := range list {
		iv.Approximate(x, out[iv.Start:iv.Start+iv.Length])
	}
	return out
}

// TransmissionCost returns the number of values needed to ship the interval
// list: ValuesPerInterval per record, or ValuesPerRampInterval when the
// whole list uses plain regression and the shift pointer can be elided.
func TransmissionCost(list []Interval) int {
	allRamp := true
	for _, iv := range list {
		if iv.Shift != RampShift {
			allRamp = false
			break
		}
	}
	if allRamp {
		return ValuesPerRampInterval * len(list)
	}
	return ValuesPerInterval * len(list)
}
