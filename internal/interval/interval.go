// Package interval implements the piece-wise approximation layer of the SBR
// framework: the Interval record, the BestMap subroutine that maps a data
// interval onto the best-matching segment of the base signal (Algorithm 2),
// the recursive GetIntervals splitter driven by a max-error priority queue
// (Algorithm 3), and the decoder that reconstructs the approximate signal
// from transmitted interval records.
package interval

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"sbr/internal/metrics"
	"sbr/internal/regression"
	"sbr/internal/timeseries"
)

// RampShift is the sentinel Shift value denoting that an interval is
// approximated by standard linear regression against time instead of a
// segment of the base signal. The paper stores "a negative value".
const RampShift = -1

// Interval is the six-field data structure of Section 4.2. The first four
// fields (Start, Shift, A, B) form the record transmitted to the base
// station; Length is recovered at the receiver from the sorted starts and
// Err never leaves the sensor.
type Interval struct {
	Start  int     // first index of the approximated range in the virtual Y
	Length int     // number of samples in the range
	Shift  int     // base-signal offset, or RampShift for plain regression
	A, B   float64 // regression parameters
	Err    float64 // approximation error under the active metric

	// C is the quadratic coefficient of the non-linear encoding extension
	// (the paper's Section 6 future work): the model becomes
	// Y' = C·X² + A·X + B. It stays zero under the paper's linear encoding,
	// making the linear model a strict special case.
	C float64
}

// ValuesPerInterval is the transmission cost of one interval record:
// start, shift and the two regression parameters (Section 4.2).
const ValuesPerInterval = 4

// ValuesPerRampInterval is the cost when the framework runs without a base
// signal at all (pure piecewise linear regression): the shift pointer is
// unnecessary, so each record is 3 values (Section 5.2).
const ValuesPerRampInterval = 3

// ValuesPerQuadInterval is the record cost under the quadratic encoding
// extension: start, shift and three coefficients.
const ValuesPerQuadInterval = 5

// String implements fmt.Stringer for debugging output.
func (iv Interval) String() string {
	return fmt.Sprintf("[%d,%d) shift=%d a=%.4g b=%.4g err=%.4g",
		iv.Start, iv.Start+iv.Length, iv.Shift, iv.A, iv.B, iv.Err)
}

// Approximate writes the interval's approximation of y into out, which must
// have length iv.Length. For Shift >= 0 the model is a·X[Shift+i]+b over
// the base signal x; for RampShift it is a·i+b over the local time index.
func (iv Interval) Approximate(x timeseries.Series, out timeseries.Series) {
	if len(out) != iv.Length {
		panic("interval: output buffer size mismatch")
	}
	if iv.Shift == RampShift {
		for i := range out {
			t := float64(i)
			out[i] = iv.C*t*t + iv.A*t + iv.B
		}
		return
	}
	for i := range out {
		xv := x[iv.Shift+i]
		out[i] = iv.C*xv*xv + iv.A*xv + iv.B
	}
}

// Mapper holds the state shared by all BestMap invocations over one batch:
// the current base signal, its prefix sums (for the O(1)-moment fast path of
// the SSE metric), the base-interval width W and the active regression
// fitter.
type Mapper struct {
	X      timeseries.Series
	W      int
	Fitter regression.Fitter

	// DisableRamp disables the plain-linear-regression fall-back, as in the
	// base-signal comparison of Section 5.2. Intervals longer than the base
	// signal still use the ramp, since no shift can cover them.
	DisableRamp bool

	// Quadratic enables the non-linear encoding extension (Section 6
	// future work): intervals are fitted as Y' = C·X² + A·X + B. Only
	// supported under the SSE metric.
	Quadratic bool

	px *timeseries.Prefix
}

// NewMapper builds a Mapper over base signal x.
func NewMapper(x timeseries.Series, w int, fitter regression.Fitter) *Mapper {
	return &Mapper{X: x, W: w, Fitter: fitter, px: timeseries.NewPrefix(x)}
}

// BestMap fills in iv.Shift, iv.A, iv.B and iv.Err with the best available
// approximation of y[iv.Start : iv.Start+iv.Length): the plain regression
// fall-back and, for intervals no longer than 2W, every shift of the
// interval over the base signal (Algorithm 2).
func (m *Mapper) BestMap(y timeseries.Series, iv *Interval) {
	if m.Quadratic {
		m.bestMapQuad(y, iv)
		return
	}
	fit := m.Fitter.FitRamp(y, iv.Start, iv.Length)
	iv.Shift = RampShift
	iv.A, iv.B, iv.C, iv.Err = fit.A, fit.B, 0, fit.Err
	ramped := true

	scan := iv.Length <= 2*m.W
	if m.DisableRamp {
		// Comparison mode: use the base signal whenever it is long enough,
		// pretending the fall-back is unavailable (Section 5.2).
		scan = iv.Length <= len(m.X)
		ramped = false
	}
	if !scan || iv.Length > len(m.X) {
		return
	}

	if m.Fitter.Kind == metrics.SSE {
		m.bestShiftSSE(y, iv, ramped)
		return
	}
	for shift := 0; shift+iv.Length <= len(m.X); shift++ {
		fit := m.Fitter.Fit(m.X, y, shift, iv.Start, iv.Length)
		if !ramped || fit.Err < iv.Err {
			iv.Shift, iv.A, iv.B, iv.Err = shift, fit.A, fit.B, fit.Err
			ramped = true
		}
	}
}

// bestMapQuad is BestMap under the quadratic encoding: the same ramp
// fall-back and shift scan, with three-coefficient fits.
func (m *Mapper) bestMapQuad(y timeseries.Series, iv *Interval) {
	fit := regression.RampQuad(y, iv.Start, iv.Length)
	iv.Shift = RampShift
	iv.A, iv.B, iv.C, iv.Err = fit.A, fit.B, fit.C, fit.Err
	ramped := true

	scan := iv.Length <= 2*m.W
	if m.DisableRamp {
		scan = iv.Length <= len(m.X)
		ramped = false
	}
	if !scan || iv.Length > len(m.X) {
		return
	}
	for shift := 0; shift+iv.Length <= len(m.X); shift++ {
		fit := regression.Quad(m.X, y, shift, iv.Start, iv.Length)
		if !ramped || fit.Err < iv.Err {
			iv.Shift, iv.A, iv.B, iv.C, iv.Err = shift, fit.A, fit.B, fit.C, fit.Err
			ramped = true
		}
	}
}

// parallelScanThreshold is the amount of scan work (shift positions ×
// interval length) above which the shift scan fans out across cores.
// Below it, goroutine overhead outweighs the win.
const parallelScanThreshold = 1 << 17

// bestShiftSSE is the SSE fast path of the shift scan: the Y-segment
// moments are accumulated once, the X-segment moments come from prefix
// sums, so each shift costs one pass for the cross moment only. Large
// scans fan out across cores with a deterministic reduction (smallest
// error, ties to the smallest shift — exactly the sequential order).
func (m *Mapper) bestShiftSSE(y timeseries.Series, iv *Interval, haveBest bool) {
	var sumY, sumY2 float64
	for i := 0; i < iv.Length; i++ {
		v := y[iv.Start+i]
		sumY += v
		sumY2 += v * v
	}
	shifts := len(m.X) - iv.Length + 1
	if shifts <= 0 {
		return
	}

	scan := func(lo, hi int) (regression.Fit, int) {
		best := regression.Fit{Err: math.Inf(1)}
		bestShift := -1
		for shift := lo; shift < hi; shift++ {
			fit := regression.SSEWithPrefix(m.X, m.px, y, sumY, sumY2,
				shift, iv.Start, iv.Length)
			if fit.Err < best.Err {
				best, bestShift = fit, shift
			}
		}
		return best, bestShift
	}

	var best regression.Fit
	bestShift := -1
	if work := shifts * iv.Length; work < parallelScanThreshold {
		best, bestShift = scan(0, shifts)
	} else {
		workers := runtime.NumCPU()
		if workers > shifts {
			workers = shifts
		}
		fits := make([]regression.Fit, workers)
		at := make([]int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lo := w * shifts / workers
				hi := (w + 1) * shifts / workers
				fits[w], at[w] = scan(lo, hi)
			}(w)
		}
		wg.Wait()
		best = regression.Fit{Err: math.Inf(1)}
		for w := 0; w < workers; w++ {
			// Strict < keeps the lowest-shift winner on ties, since worker
			// ranges are ordered by shift.
			if at[w] >= 0 && fits[w].Err < best.Err {
				best, bestShift = fits[w], at[w]
			}
		}
	}
	if bestShift >= 0 && (!haveBest || best.Err < iv.Err) {
		iv.Shift, iv.A, iv.B, iv.Err = bestShift, best.A, best.B, best.Err
	}
}

// Options tunes GetIntervals beyond the paper's defaults.
type Options struct {
	// ErrorTarget, when positive, stops the recursive splitting as soon as
	// the total error drops to the target even if budget remains — the
	// combined error/space bound mode of Section 4.5.
	ErrorTarget float64

	// ValuesPerRecord is the bandwidth cost of one interval record. Zero
	// means ValuesPerInterval (4). The no-base-signal mode uses
	// ValuesPerRampInterval (3), since the shift pointer is elided.
	ValuesPerRecord int
}

// GetIntervals approximates the concatenated signal y (N rows of M values
// each) with at most budget/ValuesPerInterval intervals, following
// Algorithm 3: one interval per row initially, then repeated splitting of
// the worst-error interval. The returned intervals are sorted by Start.
func GetIntervals(m *Mapper, y timeseries.Series, n, rowLen, budget int, opts Options) []Interval {
	if n <= 0 || rowLen <= 0 {
		return nil
	}
	perRecord := opts.ValuesPerRecord
	if perRecord <= 0 {
		perRecord = ValuesPerInterval
	}
	maxIntervals := budget / perRecord
	if maxIntervals < n {
		// The paper assumes B >= 4N; with less budget we still need one
		// interval per row to cover the signal.
		maxIntervals = n
	}

	q := newQueue(m.Fitter.Kind, maxIntervals)
	for i := 0; i < n; i++ {
		iv := Interval{Start: i * rowLen, Length: rowLen}
		m.BestMap(y, &iv)
		q.push(iv)
	}

	var done []Interval // unsplittable single-sample intervals
	for q.countAll(len(done)) < maxIntervals {
		if opts.ErrorTarget > 0 && q.totalErr() <= opts.ErrorTarget {
			break
		}
		iv, ok := q.popSplittable(&done)
		if !ok {
			break
		}
		left := Interval{Start: iv.Start, Length: iv.Length / 2}
		right := Interval{
			Start:  iv.Start + iv.Length/2,
			Length: iv.Length - iv.Length/2,
		}
		m.BestMap(y, &left)
		m.BestMap(y, &right)
		q.push(left)
		q.push(right)
	}

	out := append(q.drain(), done...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// TotalError combines the per-interval errors under the given metric.
func TotalError(kind metrics.Kind, list []Interval) float64 {
	total := metrics.Zero(kind)
	for _, iv := range list {
		total = metrics.Combine(kind, total, iv.Err)
	}
	return total
}

// Reconstruct decodes a sorted interval list into the approximate signal of
// the given total length, using base signal x for shifted intervals.
func Reconstruct(x timeseries.Series, list []Interval, total int) timeseries.Series {
	out := make(timeseries.Series, total)
	for _, iv := range list {
		iv.Approximate(x, out[iv.Start:iv.Start+iv.Length])
	}
	return out
}

// TransmissionCost returns the number of values needed to ship the interval
// list: ValuesPerInterval per record, or ValuesPerRampInterval when the
// whole list uses plain regression and the shift pointer can be elided.
func TransmissionCost(list []Interval) int {
	allRamp := true
	for _, iv := range list {
		if iv.Shift != RampShift {
			allRamp = false
			break
		}
	}
	if allRamp {
		return ValuesPerRampInterval * len(list)
	}
	return ValuesPerInterval * len(list)
}
