package interval

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sbr/internal/metrics"
	"sbr/internal/regression"
	"sbr/internal/timeseries"
)

func sseFitter() regression.Fitter { return regression.Fitter{Kind: metrics.SSE} }

func randSeries(rng *rand.Rand, n int) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 10
	}
	return s
}

func TestBestMapFindsExactShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randSeries(rng, 64)
	// y is an exact affine image of x[20:36).
	y := make(timeseries.Series, 16)
	for i := range y {
		y[i] = 2.5*x[20+i] - 4
	}
	m := NewMapper(x, 16, sseFitter())
	iv := Interval{Start: 0, Length: 16}
	m.BestMap(y, &iv)
	if iv.Shift != 20 {
		t.Fatalf("BestMap shift = %d, want 20 (interval %v)", iv.Shift, iv)
	}
	if math.Abs(iv.A-2.5) > 1e-9 || math.Abs(iv.B+4) > 1e-9 || iv.Err > 1e-9 {
		t.Errorf("BestMap fit = %v", iv)
	}
}

func TestBestMapFallsBackToRamp(t *testing.T) {
	// A perfectly linear-in-time interval with an uncorrelated base signal:
	// the ramp must win with zero error.
	rng := rand.New(rand.NewSource(2))
	x := randSeries(rng, 32)
	y := make(timeseries.Series, 16)
	for i := range y {
		y[i] = 3*float64(i) + 1
	}
	m := NewMapper(x, 8, sseFitter())
	iv := Interval{Start: 0, Length: 16}
	m.BestMap(y, &iv)
	if iv.Err > 1e-9 && iv.Shift != RampShift {
		t.Errorf("linear data: got %v, expected ramp or zero error", iv)
	}
	approx := make(timeseries.Series, 16)
	iv.Approximate(x, approx)
	if got := metrics.SumSquared(y, approx); got > 1e-9 {
		t.Errorf("approximation error %v, want ~0", got)
	}
}

func TestBestMapSkipsScanForLongIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randSeries(rng, 64)
	y := randSeries(rng, 40)
	w := 8
	m := NewMapper(x, w, sseFitter())
	iv := Interval{Start: 0, Length: 40} // 40 > 2W = 16
	m.BestMap(y, &iv)
	if iv.Shift != RampShift {
		t.Errorf("interval longer than 2W used shift %d, want ramp", iv.Shift)
	}
}

func TestBestMapDisableRamp(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randSeries(rng, 64)
	y := make(timeseries.Series, 16)
	for i := range y {
		y[i] = 3*float64(i) + 1 // perfectly linear in time
	}
	m := NewMapper(x, 8, sseFitter())
	m.DisableRamp = true
	iv := Interval{Start: 0, Length: 16}
	m.BestMap(y, &iv)
	if iv.Shift == RampShift {
		t.Errorf("DisableRamp still produced a ramp mapping: %v", iv)
	}
}

func TestBestMapDisableRampLongerThanBase(t *testing.T) {
	// With the fall-back disabled but the interval longer than the base
	// signal, the ramp is the only possibility.
	x := timeseries.Series{1, 2}
	y := timeseries.Series{5, 6, 7, 8}
	m := NewMapper(x, 2, sseFitter())
	m.DisableRamp = true
	iv := Interval{Start: 0, Length: 4}
	m.BestMap(y, &iv)
	if iv.Shift != RampShift {
		t.Errorf("impossible mapping still produced shift %d", iv.Shift)
	}
}

func TestBestMapEmptyBaseSignal(t *testing.T) {
	y := timeseries.Series{1, 2, 3, 4}
	m := NewMapper(nil, 1, sseFitter())
	iv := Interval{Start: 0, Length: 4}
	m.BestMap(y, &iv)
	if iv.Shift != RampShift || iv.Err > 1e-9 {
		t.Errorf("empty-base fit = %v", iv)
	}
}

// Property: under the SSE metric, the fast shift scan agrees with a naive
// scan that calls the plain regression at every shift.
func TestBestMapFastPathMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xLen := rng.Intn(40) + 8
		ivLen := rng.Intn(7) + 2
		x := randSeries(rng, xLen)
		y := randSeries(rng, ivLen)
		m := NewMapper(x, 8, sseFitter())
		iv := Interval{Start: 0, Length: ivLen}
		m.BestMap(y, &iv)

		// Naive reference.
		best := regression.Ramp(y, 0, ivLen)
		bestShift := RampShift
		for shift := 0; shift+ivLen <= xLen; shift++ {
			fit := regression.SSE(x, y, shift, 0, ivLen)
			if fit.Err < best.Err {
				best, bestShift = fit, shift
			}
		}
		if math.Abs(best.Err-iv.Err) > 1e-6*(1+best.Err) {
			return false
		}
		// Shifts may differ only on exact ties.
		return bestShift == iv.Shift || math.Abs(best.Err-iv.Err) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGetIntervalsBudgetAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, rowLen := 4, 64
	y := randSeries(rng, n*rowLen)
	x := randSeries(rng, 32)
	m := NewMapper(x, 16, sseFitter())

	budget := 96 // 24 intervals
	list := GetIntervals(m, y, n, rowLen, budget, Options{})
	if len(list) != budget/ValuesPerInterval {
		t.Fatalf("%d intervals, want %d", len(list), budget/ValuesPerInterval)
	}
	// Intervals must exactly tile [0, n·rowLen) and be sorted by start.
	pos := 0
	for _, iv := range list {
		if iv.Start != pos {
			t.Fatalf("gap or overlap at %d: interval starts at %d", pos, iv.Start)
		}
		pos += iv.Length
	}
	if pos != n*rowLen {
		t.Fatalf("intervals cover [0,%d), want [0,%d)", pos, n*rowLen)
	}
	// No interval may span a row boundary: splits only halve row-aligned
	// ranges, so every interval stays within one row.
	for _, iv := range list {
		if iv.Start/rowLen != (iv.Start+iv.Length-1)/rowLen {
			t.Errorf("interval %v spans a row boundary", iv)
		}
	}
}

func TestGetIntervalsTinyBudgetStillCoversRows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	y := randSeries(rng, 3*16)
	m := NewMapper(nil, 4, sseFitter())
	list := GetIntervals(m, y, 3, 16, 4, Options{}) // budget for 1 interval only
	if len(list) != 3 {
		t.Fatalf("%d intervals, want one per row (3)", len(list))
	}
}

func TestGetIntervalsSplitsWorstFirst(t *testing.T) {
	// Row 0 is constant (error 0), row 1 is noisy: all extra splits should
	// land in row 1.
	rng := rand.New(rand.NewSource(7))
	flat := make(timeseries.Series, 32)
	noisy := randSeries(rng, 32)
	y := timeseries.Concat(flat, noisy)
	m := NewMapper(nil, 4, sseFitter())
	list := GetIntervals(m, y, 2, 32, 6*ValuesPerInterval, Options{})
	var flatCount, noisyCount int
	for _, iv := range list {
		if iv.Start < 32 {
			flatCount++
		} else {
			noisyCount++
		}
	}
	if flatCount != 1 || noisyCount != 5 {
		t.Errorf("splits: flat=%d noisy=%d, want 1 and 5", flatCount, noisyCount)
	}
}

func TestGetIntervalsErrorTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	y := randSeries(rng, 128)
	m := NewMapper(nil, 4, sseFitter())
	unbounded := GetIntervals(m, y, 1, 128, 128, Options{})
	// A loose error target must stop splitting early.
	loose := TotalError(metrics.SSE, unbounded) * 100
	bounded := GetIntervals(m, y, 1, 128, 128, Options{ErrorTarget: loose})
	if len(bounded) >= len(unbounded) {
		t.Errorf("error target did not shorten the interval list: %d vs %d",
			len(bounded), len(unbounded))
	}
	if TotalError(metrics.SSE, bounded) > loose {
		t.Errorf("bounded run misses its target")
	}
}

func TestGetIntervalsUnsplittable(t *testing.T) {
	// Two rows of a single sample each: nothing can be split, so the list
	// stays at 2 no matter the budget.
	y := timeseries.Series{4, 9}
	m := NewMapper(nil, 1, sseFitter())
	list := GetIntervals(m, y, 2, 1, 1000, Options{})
	if len(list) != 2 {
		t.Fatalf("%d intervals, want 2", len(list))
	}
	for _, iv := range list {
		if iv.Err > 1e-12 {
			t.Errorf("single-sample interval has error %v", iv.Err)
		}
	}
}

func TestGetIntervalsEmptyInput(t *testing.T) {
	m := NewMapper(nil, 1, sseFitter())
	if got := GetIntervals(m, nil, 0, 0, 100, Options{}); got != nil {
		t.Errorf("empty input produced %v", got)
	}
}

func TestReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randSeries(rng, 64)
	y := randSeries(rng, 128)
	m := NewMapper(x, 8, sseFitter())
	list := GetIntervals(m, y, 2, 64, 64, Options{})
	approx := Reconstruct(x, list, len(y))
	// The reconstruction error must equal the sum of interval errors.
	total := TotalError(metrics.SSE, list)
	got := metrics.SumSquared(y, approx)
	if math.Abs(total-got) > 1e-6*(1+total) {
		t.Errorf("reconstruction error %v, interval sum %v", got, total)
	}
}

func TestTotalErrorMaxMetric(t *testing.T) {
	list := []Interval{{Err: 3}, {Err: 7}, {Err: 5}}
	if got := TotalError(metrics.MaxAbs, list); got != 7 {
		t.Errorf("TotalError(MaxAbs) = %v, want 7", got)
	}
	if got := TotalError(metrics.SSE, list); got != 15 {
		t.Errorf("TotalError(SSE) = %v, want 15", got)
	}
}

func TestTransmissionCost(t *testing.T) {
	ramps := []Interval{{Shift: RampShift}, {Shift: RampShift}}
	if got := TransmissionCost(ramps); got != 6 {
		t.Errorf("all-ramp cost = %d, want 6", got)
	}
	mixed := []Interval{{Shift: RampShift}, {Shift: 3}}
	if got := TransmissionCost(mixed); got != 8 {
		t.Errorf("mixed cost = %d, want 8", got)
	}
}

func TestApproximateBufferMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Approximate with wrong buffer size did not panic")
		}
	}()
	iv := Interval{Start: 0, Length: 4, Shift: RampShift}
	iv.Approximate(nil, make(timeseries.Series, 3))
}

// Property: GetIntervals returns exactly min(budget/4, achievable)
// intervals, tiling the signal, for random shapes.
func TestGetIntervalsTilingProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%4) + 1
		rowLen := int(mRaw%32) + 2
		budget := (int(bRaw%16) + 1) * ValuesPerInterval
		y := randSeries(rng, n*rowLen)
		x := randSeries(rng, 16)
		m := NewMapper(x, 4, sseFitter())
		list := GetIntervals(m, y, n, rowLen, budget, Options{})
		sort.Slice(list, func(i, j int) bool { return list[i].Start < list[j].Start })
		pos := 0
		for _, iv := range list {
			if iv.Start != pos || iv.Length <= 0 {
				return false
			}
			pos += iv.Length
		}
		if pos != n*rowLen {
			return false
		}
		want := budget / ValuesPerInterval
		if want < n {
			want = n
		}
		if want > n*rowLen {
			want = n * rowLen // cannot have more intervals than samples
		}
		return len(list) <= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQueuePopSplittable(t *testing.T) {
	q := newQueue(metrics.SSE, 8, nil)
	q.push(Interval{Start: 0, Length: 1, Err: 100})
	q.push(Interval{Start: 1, Length: 4, Err: 50})
	q.push(Interval{Start: 5, Length: 2, Err: 75})
	var done []Interval
	iv, ok := q.popSplittable(&done)
	if !ok || iv.Err != 75 {
		t.Fatalf("popSplittable = %v,%v; want the err-75 interval", iv, ok)
	}
	if len(done) != 1 || done[0].Err != 100 {
		t.Errorf("done = %v, want the length-1 interval", done)
	}
	if q.totalErr() != 50 {
		t.Errorf("totalErr after pops = %v, want 50", q.totalErr())
	}
}

func TestQueueTotalErrMaxMetric(t *testing.T) {
	q := newQueue(metrics.MaxAbs, 4, nil)
	if q.totalErr() != 0 {
		t.Errorf("empty queue totalErr = %v", q.totalErr())
	}
	q.push(Interval{Length: 2, Err: 3})
	q.push(Interval{Length: 2, Err: 9})
	if q.totalErr() != 9 {
		t.Errorf("MaxAbs totalErr = %v, want 9", q.totalErr())
	}
}

func TestIntervalString(t *testing.T) {
	iv := Interval{Start: 3, Length: 4, Shift: -1, A: 1, B: 2, Err: 0.5}
	if got := iv.String(); got == "" {
		t.Error("String returned empty")
	}
}

func TestBestMapQuadraticExactParabola(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	x := randSeries(rng, 48)
	// y is an exact quadratic image of x[10:26).
	y := make(timeseries.Series, 16)
	for i := range y {
		xv := x[10+i]
		y[i] = 0.5*xv*xv - 3*xv + 2
	}
	m := NewMapper(x, 16, sseFitter())
	m.Quadratic = true
	iv := Interval{Start: 0, Length: 16}
	m.BestMap(y, &iv)
	if iv.Err > 1e-6 {
		t.Fatalf("quadratic BestMap err = %v (interval %v)", iv.Err, iv)
	}
	approx := make(timeseries.Series, 16)
	iv.Approximate(x, approx)
	if !timeseries.Equal(approx, y, 1e-6) {
		t.Error("quadratic reconstruction diverges")
	}
}

func TestBestMapQuadraticRampFallback(t *testing.T) {
	// Quadratic-in-time data with no base signal: the quadratic ramp must
	// be exact.
	y := make(timeseries.Series, 20)
	for i := range y {
		tv := float64(i)
		y[i] = 0.25*tv*tv - tv + 3
	}
	m := NewMapper(nil, 4, sseFitter())
	m.Quadratic = true
	iv := Interval{Start: 0, Length: 20}
	m.BestMap(y, &iv)
	if iv.Shift != RampShift || iv.Err > 1e-6 {
		t.Errorf("quadratic ramp fit = %v", iv)
	}
}

func TestQuadraticNeverWorseThanLinearMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := randSeries(rng, 64)
	y := randSeries(rng, 16)
	lin := NewMapper(x, 16, sseFitter())
	quad := NewMapper(x, 16, sseFitter())
	quad.Quadratic = true
	ivL := Interval{Start: 0, Length: 16}
	ivQ := Interval{Start: 0, Length: 16}
	lin.BestMap(y, &ivL)
	quad.BestMap(y, &ivQ)
	if ivQ.Err > ivL.Err+1e-9 {
		t.Errorf("quadratic mapping (%v) worse than linear (%v)", ivQ.Err, ivL.Err)
	}
}

// TestParallelShiftScanMatchesSequential forces the parallel path (large
// scan work) and checks it picks exactly the same mapping as a sequential
// reference, including lowest-shift tie-breaking.
func TestParallelShiftScanMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	// 4096-value base signal with a 256-sample interval: 3841×256 ≈ 983k
	// work units, far above parallelScanThreshold.
	x := randSeries(rng, 4096)
	y := make(timeseries.Series, 256)
	for i := range y {
		y[i] = 1.5*x[777+i] + 3 // plant an exact match at shift 777
	}
	m := NewMapper(x, 256, sseFitter())
	iv := Interval{Start: 0, Length: 256}
	m.BestMap(y, &iv)
	if iv.Shift != 777 || iv.Err > 1e-6 {
		t.Fatalf("parallel scan missed the planted match: %v", iv)
	}

	// Random data: compare against an explicit sequential scan.
	y2 := randSeries(rng, 256)
	iv2 := Interval{Start: 0, Length: 256}
	m.BestMap(y2, &iv2)

	best := regression.Ramp(y2, 0, 256)
	bestShift := RampShift
	for shift := 0; shift+256 <= len(x); shift++ {
		fit := regression.SSE(x, y2, shift, 0, 256)
		if fit.Err < best.Err {
			best, bestShift = fit, shift
		}
	}
	if iv2.Shift != bestShift || math.Abs(iv2.Err-best.Err) > 1e-6*(1+best.Err) {
		t.Errorf("parallel scan: shift %d err %v; sequential: shift %d err %v",
			iv2.Shift, iv2.Err, bestShift, best.Err)
	}
}

// TestParallelScanTieBreak plants two identical exact matches; the lower
// shift must win, as in the sequential scan.
func TestParallelScanTieBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pattern := randSeries(rng, 300)
	x := make(timeseries.Series, 4096)
	copy(x, randSeries(rng, 4096))
	copy(x[500:], pattern)  // first copy at shift 500
	copy(x[2000:], pattern) // second copy at shift 2000
	y := pattern.Clone().Scale(2).Shift(-1)
	m := NewMapper(x, 300, sseFitter())
	iv := Interval{Start: 0, Length: 300}
	m.BestMap(y, &iv)
	if iv.Err > 1e-6 {
		t.Fatalf("planted match err %v", iv.Err)
	}
	// Floating-point noise separates the two copies by ~1e-30, so the
	// winner is whichever the *sequential* strict-< scan picks; the
	// parallel reduction must agree exactly.
	wantShift := -1
	var sumY, sumY2 float64
	for _, v := range y {
		sumY += v
		sumY2 += v * v
	}
	px := timeseries.NewPrefix(x)
	regression.ScanSSEMins(x, px, y, sumY, sumY2, 0, 300, 0, len(x)-300+1,
		math.Inf(1), func(s int, f regression.Fit) { wantShift = s })
	if iv.Shift != wantShift {
		t.Errorf("parallel reduction picked shift %d, sequential picks %d", iv.Shift, wantShift)
	}
	if wantShift != 500 && wantShift != 2000 {
		t.Errorf("sequential winner %d is neither planted copy", wantShift)
	}
}

func TestGetIntervalsErrorTargetMaxAbs(t *testing.T) {
	// Under the MaxAbs metric the stop condition uses the heap maximum,
	// not a running sum; a loose bound must still stop the splitting early
	// and the achieved maximum must honour the target.
	rng := rand.New(rand.NewSource(42))
	y := randSeries(rng, 128)
	fitter := regression.Fitter{Kind: metrics.MaxAbs}
	m := NewMapper(nil, 4, fitter)
	unbounded := GetIntervals(m, y, 1, 128, 128, Options{})
	target := TotalError(metrics.MaxAbs, unbounded) * 4
	bounded := GetIntervals(m, y, 1, 128, 128, Options{ErrorTarget: target})
	if len(bounded) >= len(unbounded) {
		t.Errorf("MaxAbs error target did not shorten the list: %d vs %d",
			len(bounded), len(unbounded))
	}
	approx := Reconstruct(nil, bounded, len(y))
	if got := metrics.MaxAbsolute(y, approx); got > target+1e-9 {
		t.Errorf("achieved max error %v exceeds target %v", got, target)
	}
}

func TestBestMapQuadraticDisableRamp(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := randSeries(rng, 64)
	y := make(timeseries.Series, 16)
	for i := range y {
		y[i] = float64(i) // perfectly linear: ramp would be exact
	}
	m := NewMapper(x, 8, sseFitter())
	m.Quadratic = true
	m.DisableRamp = true
	iv := Interval{Start: 0, Length: 16}
	m.BestMap(y, &iv)
	if iv.Shift == RampShift {
		t.Errorf("quadratic DisableRamp still produced a ramp mapping: %v", iv)
	}
}
