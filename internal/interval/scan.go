package interval

import (
	"math"
	"runtime"
	"sync"
)

// This file is the unified shift-scan engine behind BestMap: one fan-out
// and one deterministic reduction shared by all three scan paths (the
// generic per-metric fitter, the quadratic encoding, and the fused SSE
// kernel). The reduction rule is "smallest error, ties to the smallest
// shift" — exactly the order of a sequential ascending scan with a strict
// < comparison — so the parallel result is bit-identical to the sequential
// one for any worker count.

// shiftFit is one scanned candidate mapping: the shift (or RampShift) and
// its fitted coefficients. C stays zero under the linear encoding.
type shiftFit struct {
	Shift   int
	A, B, C float64
	Err     float64
}

// A rangeScanner is one scan path's sequential unit of work: evaluate
// shifts [lo, hi) in ascending order and append every fit whose error
// strictly beats best (which then becomes the new bar) to out. The engine
// composes rangeScanners into full scans — sequentially, or chunked across
// workers with a deterministic merge. Implementations must be pure
// functions of (lo, hi, best): the same range must always produce the same
// fits, which is what makes chunking invisible.
type rangeScanner func(lo, hi int, best float64, out []shiftFit) []shiftFit

// evalScanner lifts a per-shift evaluator into a rangeScanner — the
// generic-fitter and quadratic paths; the SSE path uses a fused kernel
// instead.
func evalScanner(eval func(int) shiftFit) rangeScanner {
	return func(lo, hi int, best float64, out []shiftFit) []shiftFit {
		for s := lo; s < hi; s++ {
			if f := eval(s); f.Err < best {
				best = f.Err
				out = append(out, f)
			}
		}
		return out
	}
}

// ParallelScanThreshold is the amount of scan work (shift positions ×
// interval length) above which a shift scan fans out across cores; below
// it, goroutine overhead outweighs the win. It is a variable so tests can
// force the parallel path on small inputs — by construction the scan
// result is identical at any threshold or worker count.
var ParallelScanThreshold = 1 << 17

// ScanWorkers returns the scan engine's current worker cap: GOMAXPROCS,
// the knob the cross-proc determinism test varies. Seeding in
// GetIntervals reuses the same cap.
func ScanWorkers() int { return runtime.GOMAXPROCS(0) }

// fanOut splits [lo, hi) into `workers` contiguous chunks and runs f for
// each on its own goroutine. Chunk boundaries depend only on (lo, hi,
// workers), keeping the chunk-order merge deterministic.
func fanOut(workers, lo, hi int, f func(w, clo, chi int)) {
	var wg sync.WaitGroup
	span := hi - lo
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f(w, lo+w*span/workers, lo+(w+1)*span/workers)
		}(w)
	}
	wg.Wait()
}

// scanMins is the engine's entry point: it appends the running minima of
// the scan over [lo, hi) to out. Entry k is the lowest shift whose error
// strictly beats everything before it, so the final element is the range's
// winner under the deterministic reduction rule, and any prefix of the
// scanned range can later be answered by bestAmong. Large scans fan out
// over contiguous chunks; merging the per-chunk local minima in chunk
// order with the same strict < rebuilds exactly the sequential
// improvements list.
func scanMins(scan rangeScanner, lo, hi, costPerShift int, best float64, out []shiftFit) []shiftFit {
	if hi <= lo {
		return out
	}
	workers := ScanWorkers()
	if work := (hi - lo) * costPerShift; work < ParallelScanThreshold || workers <= 1 {
		return scan(lo, hi, best, out)
	}
	if workers > hi-lo {
		workers = hi - lo
	}
	chunks := make([][]shiftFit, workers)
	fanOut(workers, lo, hi, func(w, clo, chi int) {
		chunks[w] = scan(clo, chi, math.Inf(1), nil)
	})
	for _, chunk := range chunks {
		for _, f := range chunk {
			if f.Err < best {
				best = f.Err
				out = append(out, f)
			}
		}
	}
	return out
}

// scanBest reduces a scan to its winner only — the path for scans whose
// improvements are not being cached.
func scanBest(scan rangeScanner, lo, hi, costPerShift int) (shiftFit, bool) {
	mins := scanMins(scan, lo, hi, costPerShift, math.Inf(1), nil)
	if len(mins) == 0 {
		return shiftFit{}, false
	}
	return mins[len(mins)-1], true
}

// bestAmong answers "best mapping over shifts [0, shifts)" from a
// running-minima list: the last improvement below that bound, found by
// binary search. ok is false when no improvement falls in the range.
func bestAmong(mins []shiftFit, shifts int) (shiftFit, bool) {
	lo, hi := 0, len(mins)
	for lo < hi {
		mid := (lo + hi) / 2
		if mins[mid].Shift < shifts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return shiftFit{}, false
	}
	return mins[lo-1], true
}
