package interval

import (
	"container/heap"

	"sbr/internal/metrics"
)

// queue is the priority queue of Algorithm 3, ordered by decreasing
// approximation error. It also tracks the combined error of its contents so
// the error-target extension of Section 4.5 can test convergence in O(1).
type queue struct {
	kind  metrics.Kind
	items []Interval
	sum   float64 // running total for the sum-based metrics
}

func newQueue(kind metrics.Kind, capacity int) *queue {
	return &queue{kind: kind, items: make([]Interval, 0, capacity)}
}

// heap.Interface — max-heap on Err.

func (q *queue) Len() int           { return len(q.items) }
func (q *queue) Less(i, j int) bool { return q.items[i].Err > q.items[j].Err }
func (q *queue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *queue) Push(x interface{}) { q.items = append(q.items, x.(Interval)) }
func (q *queue) Pop() interface{} {
	last := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return last
}

func (q *queue) push(iv Interval) {
	heap.Push(q, iv)
	q.sum += iv.Err
}

// popSplittable removes and returns the worst-error interval that can still
// be divided (length >= 2). Single-sample intervals encountered on the way
// are moved to done; they remain part of the final approximation.
func (q *queue) popSplittable(done *[]Interval) (Interval, bool) {
	for q.Len() > 0 {
		iv := heap.Pop(q).(Interval)
		q.sum -= iv.Err
		if iv.Length >= 2 {
			return iv, true
		}
		*done = append(*done, iv)
	}
	return Interval{}, false
}

// countAll returns the current interval count including the finished list.
func (q *queue) countAll(doneLen int) int { return q.Len() + doneLen }

// totalErr returns the combined error of the queued intervals under the
// active metric: the running sum, or the heap maximum for MaxAbs.
func (q *queue) totalErr() float64 {
	if q.kind == metrics.MaxAbs {
		if q.Len() == 0 {
			return 0
		}
		return q.items[0].Err
	}
	return q.sum
}

// drain removes and returns all remaining intervals in no particular order.
func (q *queue) drain() []Interval {
	out := q.items
	q.items = nil
	q.sum = 0
	return out
}
