package interval

import (
	"sbr/internal/metrics"
)

// queue is the priority queue of Algorithm 3, ordered by decreasing
// approximation error. It also tracks the combined error of its contents so
// the error-target extension of Section 4.5 can test convergence in O(1).
// The sift operations are hand-rolled (mirroring container/heap's element
// moves exactly) so pushes and pops move Interval values directly instead
// of boxing them through interface{} — the queue churns on every split, and
// the boxing allocations dominated GetIntervals' garbage.
type queue struct {
	kind  metrics.Kind
	items []Interval
	sum   float64 // running total for the sum-based metrics
}

// newQueue builds a queue, reusing buf's backing array when it is large
// enough; release() hands the array back for the next call.
func newQueue(kind metrics.Kind, capacity int, buf []Interval) *queue {
	if cap(buf) < capacity {
		buf = make([]Interval, 0, capacity)
	}
	return &queue{kind: kind, items: buf[:0]}
}

// Len returns the number of queued intervals.
func (q *queue) Len() int { return len(q.items) }

// less orders the max-heap: true when the interval at i must sit above the
// one at j.
func (q *queue) less(i, j int) bool { return q.items[i].Err > q.items[j].Err }

func (q *queue) push(iv Interval) {
	q.items = append(q.items, iv)
	q.sum += iv.Err
	// Sift up, as container/heap's up().
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

// pop removes and returns the worst-error interval. The element moves match
// container/heap's Pop (swap root with last, sift down) so the resulting
// layout — and therefore every tie-broken split decision downstream — is
// identical to the previous implementation.
func (q *queue) pop() Interval {
	last := len(q.items) - 1
	q.items[0], q.items[last] = q.items[last], q.items[0]
	top := q.items[last]
	q.items = q.items[:last]
	q.sum -= top.Err
	// Sift down, as container/heap's down().
	i := 0
	for {
		child := 2*i + 1
		if child >= len(q.items) {
			break
		}
		if r := child + 1; r < len(q.items) && q.less(r, child) {
			child = r
		}
		if !q.less(child, i) {
			break
		}
		q.items[i], q.items[child] = q.items[child], q.items[i]
		i = child
	}
	return top
}

// popSplittable removes and returns the worst-error interval that can still
// be divided (length >= 2). Single-sample intervals encountered on the way
// are moved to done; they remain part of the final approximation.
func (q *queue) popSplittable(done *[]Interval) (Interval, bool) {
	for q.Len() > 0 {
		iv := q.pop()
		if iv.Length >= 2 {
			return iv, true
		}
		*done = append(*done, iv)
	}
	return Interval{}, false
}

// countAll returns the current interval count including the finished list.
func (q *queue) countAll(doneLen int) int { return q.Len() + doneLen }

// totalErr returns the combined error of the queued intervals under the
// active metric: the running sum, or the heap maximum for MaxAbs.
func (q *queue) totalErr() float64 {
	if q.kind == metrics.MaxAbs {
		if q.Len() == 0 {
			return 0
		}
		return q.items[0].Err
	}
	return q.sum
}

// release empties the queue and returns its backing array for reuse. The
// caller must have copied out any intervals it still needs.
func (q *queue) release() []Interval {
	out := q.items[:0]
	q.items = nil
	q.sum = 0
	return out
}
