// Package linreg implements the plain piecewise-linear-regression
// competitor of Section 5.2: the data is split into intervals that are each
// modelled as a straight line in time. Because no base signal exists, no
// bandwidth is spent on it and no shift pointer is transmitted, so each
// interval costs 3 values and a budget of TotalBand buys TotalBand/3
// intervals. The adaptive variant reuses SBR's error-driven splitting; the
// uniform variant is the naive fixed-grid layout, kept as an ablation.
package linreg

import (
	"sbr/internal/interval"
	"sbr/internal/metrics"
	"sbr/internal/regression"
	"sbr/internal/timeseries"
)

// Adaptive approximates the batch with at most budget/3 time-linear
// intervals placed by the same max-error splitting as SBR's GetIntervals,
// just with the base signal removed. Returns the reconstruction.
func Adaptive(rows []timeseries.Series, budget int, kind metrics.Kind) []timeseries.Series {
	if len(rows) == 0 {
		return nil
	}
	n, m := len(rows), len(rows[0])
	y := timeseries.Concat(rows...)
	fitter := regression.Fitter{Kind: kind}
	mapper := interval.NewMapper(nil, 1, fitter)
	list := interval.GetIntervals(mapper, y, n, m, budget, interval.Options{
		ValuesPerRecord: interval.ValuesPerRampInterval,
	})
	approx := interval.Reconstruct(nil, list, len(y))
	return splitLike(approx, rows)
}

// Uniform approximates each row independently with equal-length segments,
// each fitted by least squares against time. With fixed segmentation the
// boundaries are implicit, so each segment costs 2 values (a, b).
func Uniform(rows []timeseries.Series, budget int, kind metrics.Kind) []timeseries.Series {
	if len(rows) == 0 {
		return nil
	}
	segments := budget / 2
	perRow := segments / len(rows)
	if perRow < 1 {
		perRow = 1
	}
	fitter := regression.Fitter{Kind: kind}
	out := make([]timeseries.Series, len(rows))
	for i, r := range rows {
		out[i] = uniformRow(r, perRow, fitter)
	}
	return out
}

func uniformRow(r timeseries.Series, segments int, fitter regression.Fitter) timeseries.Series {
	n := len(r)
	if segments > n {
		segments = n
	}
	out := make(timeseries.Series, n)
	for s := 0; s < segments; s++ {
		start := s * n / segments
		end := (s + 1) * n / segments
		fit := fitter.FitRamp(r, start, end-start)
		for i := start; i < end; i++ {
			out[i] = fit.A*float64(i-start) + fit.B
		}
	}
	return out
}

func splitLike(y timeseries.Series, like []timeseries.Series) []timeseries.Series {
	out := make([]timeseries.Series, len(like))
	off := 0
	for i, r := range like {
		out[i] = y[off : off+len(r)]
		off += len(r)
	}
	return out
}
