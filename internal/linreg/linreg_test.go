package linreg

import (
	"math"
	"math/rand"
	"testing"

	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

func randSeries(rng *rand.Rand, n int) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 10
	}
	return s
}

func sse(a, b []timeseries.Series) float64 {
	var t float64
	for i := range a {
		for j := range a[i] {
			d := a[i][j] - b[i][j]
			t += d * d
		}
	}
	return t
}

func TestAdaptiveExactOnPiecewiseLinear(t *testing.T) {
	// Two linear ramps per row: a handful of intervals reconstructs exactly.
	row := make(timeseries.Series, 64)
	for i := 0; i < 32; i++ {
		row[i] = 2*float64(i) + 1
	}
	for i := 32; i < 64; i++ {
		row[i] = -3*float64(i-32) + 100
	}
	rows := []timeseries.Series{row}
	out := Adaptive(rows, 30, metrics.SSE) // up to 10 intervals
	if got := sse(rows, out); got > 1e-6 {
		t.Errorf("piecewise-linear signal not reconstructed exactly: sse=%v", got)
	}
}

func TestAdaptiveShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := []timeseries.Series{randSeries(rng, 40), randSeries(rng, 40)}
	out := Adaptive(rows, 24, metrics.SSE)
	if len(out) != 2 || len(out[0]) != 40 || len(out[1]) != 40 {
		t.Fatal("Adaptive changed the shape")
	}
	if Adaptive(nil, 10, metrics.SSE) != nil {
		t.Error("empty input should give nil")
	}
}

func TestAdaptiveErrorDecreasesWithBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := []timeseries.Series{randSeries(rng, 128)}
	prev := math.Inf(1)
	for _, budget := range []int{6, 12, 24, 48, 96} {
		out := Adaptive(rows, budget, metrics.SSE)
		got := sse(rows, out)
		if got > prev+1e-9 {
			t.Errorf("budget %d: error %v above smaller-budget error %v", budget, got, prev)
		}
		prev = got
	}
}

func TestUniformExactOnSingleLine(t *testing.T) {
	row := make(timeseries.Series, 30)
	for i := range row {
		row[i] = 4*float64(i) - 7
	}
	out := Uniform([]timeseries.Series{row}, 2, metrics.SSE) // one segment
	if got := sse([]timeseries.Series{row}, out); got > 1e-6 {
		t.Errorf("single line not reconstructed exactly: sse=%v", got)
	}
}

func TestUniformShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := []timeseries.Series{randSeries(rng, 25), randSeries(rng, 25), randSeries(rng, 25)}
	out := Uniform(rows, 18, metrics.SSE)
	if len(out) != 3 || len(out[0]) != 25 {
		t.Fatal("Uniform changed the shape")
	}
	if Uniform(nil, 10, metrics.SSE) != nil {
		t.Error("empty input should give nil")
	}
}

func TestUniformMoreSegmentsThanSamples(t *testing.T) {
	rows := []timeseries.Series{{1, 5, 2}}
	out := Uniform(rows, 100, metrics.SSE)
	if got := sse(rows, out); got > 1e-9 {
		t.Errorf("segment-per-sample should be exact, sse=%v", got)
	}
}

func TestAdaptiveBeatsUniformOnBurstySignal(t *testing.T) {
	// A signal that is flat except for one violent burst: error-driven
	// splitting concentrates intervals on the burst and must win.
	rng := rand.New(rand.NewSource(4))
	row := make(timeseries.Series, 256)
	for i := 100; i < 120; i++ {
		row[i] = rng.NormFloat64() * 100
	}
	rows := []timeseries.Series{row}
	budget := 36
	adaptive := sse(rows, Adaptive(rows, budget, metrics.SSE))
	uniform := sse(rows, Uniform(rows, budget, metrics.SSE))
	if adaptive > uniform {
		t.Errorf("adaptive %v worse than uniform %v on bursty signal", adaptive, uniform)
	}
}

func TestAdaptiveMaxAbsMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := []timeseries.Series{randSeries(rng, 64)}
	out := Adaptive(rows, 30, metrics.MaxAbs)
	if len(out) != 1 || len(out[0]) != 64 {
		t.Fatal("MaxAbs Adaptive changed the shape")
	}
}
