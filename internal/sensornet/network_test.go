package sensornet

import (
	"math"
	"testing"

	"sbr/internal/aggregate"
	"sbr/internal/core"
	"sbr/internal/metrics"
)

func testConfig() core.Config {
	return core.Config{TotalBand: 60, MBase: 32, Metric: metrics.SSE}
}

// sineSource builds a deterministic 2-quantity sample source with a phase
// offset per node.
func sineSource(phase float64) SampleSource {
	return func(round int) []float64 {
		t := float64(round)/10 + phase
		return []float64{10 * math.Sin(t), 5 * math.Cos(t)}
	}
}

func buildChain(t *testing.T) *Network {
	t.Helper()
	net, err := NewNetwork(testConfig(), DefaultEnergyModel(), 12, 64)
	if err != nil {
		t.Fatal(err)
	}
	// A 3-hop chain away from the base station at the origin.
	if err := net.AddNode("n1", 10, 0, sineSource(0)); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode("n2", 20, 0, sineSource(1)); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode("n3", 30, 0, sineSource(2)); err != nil {
		t.Fatal(err)
	}
	if err := net.Build(); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRoutingTreeDepths(t *testing.T) {
	net := buildChain(t)
	wantDepth := map[string]int{"n1": 1, "n2": 2, "n3": 3}
	wantParent := map[string]string{"n1": "", "n2": "n1", "n3": "n2"}
	for id, d := range wantDepth {
		nd := net.Node(id)
		if nd.Depth() != d {
			t.Errorf("%s depth = %d, want %d", id, nd.Depth(), d)
		}
		if nd.Parent() != wantParent[id] {
			t.Errorf("%s parent = %q, want %q", id, nd.Parent(), wantParent[id])
		}
	}
	if desc := net.Describe(); len(desc) != 3 {
		t.Errorf("Describe returned %d lines", len(desc))
	}
}

func TestUnreachableNodeRejected(t *testing.T) {
	net, _ := NewNetwork(testConfig(), DefaultEnergyModel(), 5, 64)
	if err := net.AddNode("far", 100, 100, sineSource(0)); err != nil {
		t.Fatal(err)
	}
	if err := net.Build(); err == nil {
		t.Error("unreachable node accepted")
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(testConfig(), DefaultEnergyModel(), 0, 64); err == nil {
		t.Error("zero radio range accepted")
	}
	if _, err := NewNetwork(testConfig(), DefaultEnergyModel(), 10, 0); err == nil {
		t.Error("zero buffer accepted")
	}
	net, _ := NewNetwork(testConfig(), DefaultEnergyModel(), 10, 64)
	_ = net.AddNode("a", 1, 1, sineSource(0))
	if err := net.AddNode("a", 2, 2, sineSource(0)); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := net.Run(1); err == nil {
		t.Error("Run before Build accepted")
	}
	_ = net.Build()
	if err := net.AddNode("late", 1, 2, sineSource(0)); err == nil {
		t.Error("AddNode after Build accepted")
	}
}

func TestSimulationDeliversTransmissions(t *testing.T) {
	net := buildChain(t)
	rep, err := net.Run(130) // two full 64-sample buffers per node + remainder
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transmissions != 6 {
		t.Errorf("%d transmissions, want 6 (3 nodes × 2 flushes)", rep.Transmissions)
	}
	for _, id := range net.NodeIDs() {
		stats, err := net.Station().SensorStats(id)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Transmissions != 2 {
			t.Errorf("%s delivered %d transmissions", id, stats.Transmissions)
		}
		hist, err := net.Station().History(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(hist) != 128 {
			t.Errorf("%s history length %d, want 128", id, len(hist))
		}
	}
	// 130 rounds leave 2 samples pending per node.
	for id, pend := range net.PendingSamples() {
		if pend != 2 {
			t.Errorf("%s pending %d samples, want 2", id, pend)
		}
	}
}

func TestHistoryApproximatesSource(t *testing.T) {
	net := buildChain(t)
	if _, err := net.Run(128); err != nil {
		t.Fatal(err)
	}
	// Reconstruct the original feed of n1 and compare.
	src := sineSource(0)
	var mse, varsum float64
	hist, _ := net.Station().History("n1", 0)
	for i := 0; i < 128; i++ {
		orig := src(i)[0]
		d := hist[i] - orig
		mse += d * d
		varsum += orig * orig
	}
	if mse > varsum/4 {
		t.Errorf("reconstruction error %v too large vs energy %v", mse, varsum)
	}
}

func TestEnergyAccounting(t *testing.T) {
	net := buildChain(t)
	rep, err := net.Run(128)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalEnergy <= 0 || rep.RawEnergy <= 0 {
		t.Fatal("energy accounting produced non-positive totals")
	}
	// Compression must save energy and bandwidth by a sizeable factor.
	if rep.EnergySavingFactor() < 2 {
		t.Errorf("energy saving factor %v, want > 2", rep.EnergySavingFactor())
	}
	if r := rep.CompressionRatio(); r <= 0 || r >= 1 {
		t.Errorf("compression ratio %v outside (0,1)", r)
	}
	// Deeper nodes' frames transit n1, so n1 pays relay costs: its total
	// energy must exceed n3's transmit-only cost.
	e1 := rep.PerNode["n1"]
	e3 := rep.PerNode["n3"]
	if e1.Rx == 0 {
		t.Error("relay node received nothing")
	}
	if e1.Total() <= e3.Total() {
		t.Errorf("relay node energy %v not above leaf energy %v", e1.Total(), e3.Total())
	}
	if e1.CPU == 0 || e3.CPU == 0 {
		t.Error("compression CPU cost missing")
	}
}

func TestOverhearingCosts(t *testing.T) {
	run := func(overhear bool) float64 {
		net, _ := NewNetwork(testConfig(), DefaultEnergyModel(), 12, 64)
		_ = net.AddNode("n1", 10, 0, sineSource(0))
		_ = net.AddNode("n2", 20, 0, sineSource(1))
		_ = net.AddNode("n3", 30, 0, sineSource(2))
		_ = net.Build()
		net.CountOverhearing = overhear
		rep, err := net.Run(64)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TotalEnergy
	}
	with := run(true)
	without := run(false)
	if with <= without {
		t.Errorf("overhearing energy %v not above non-overhearing %v", with, without)
	}
}

func TestEnergyModelArithmetic(t *testing.T) {
	m := DefaultEnergyModel()
	if m.TxCost(1) != m.TxPerBit*8 {
		t.Error("TxCost wrong")
	}
	if m.RxCost(2) != m.RxPerBit*16 {
		t.Error("RxCost wrong")
	}
	if m.CompressionCost(10) != m.PerInstruction*m.CompressionInstrPerValue*10 {
		t.Error("CompressionCost wrong")
	}
	// The paper's headline ratio: one transmitted bit ≈ 1000 instructions.
	if got := m.TxPerBit / m.PerInstruction; got != 1000 {
		t.Errorf("tx-bit/instruction ratio = %v, want 1000", got)
	}
	var e NodeEnergy
	e.add(NodeEnergy{Tx: 1, Rx: 2, CPU: 3})
	if e.Total() != 6 {
		t.Errorf("Total = %v, want 6", e.Total())
	}
}

func TestSampleWidthChangeRejected(t *testing.T) {
	net, _ := NewNetwork(testConfig(), DefaultEnergyModel(), 12, 8)
	calls := 0
	_ = net.AddNode("n1", 5, 0, func(round int) []float64 {
		calls++
		if calls > 4 {
			return []float64{1, 2, 3}
		}
		return []float64{1, 2}
	})
	_ = net.Build()
	if _, err := net.Run(10); err == nil {
		t.Error("sample width change accepted")
	}
}

func TestRunAggregation(t *testing.T) {
	net := buildChain(t)
	rep, err := net.RunAggregation(32, 0, aggregate.Avg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 32 {
		t.Fatalf("%d results", len(rep.Results))
	}
	if rep.Messages != 32*3 {
		t.Errorf("%d messages, want one per node per round", rep.Messages)
	}
	// Check one round against a direct computation.
	want := (sineSource(0)(5)[0] + sineSource(1)(5)[0] + sineSource(2)(5)[0]) / 3
	if math.Abs(rep.Results[5]-want) > 1e-12 {
		t.Errorf("round-5 avg %v, want %v", rep.Results[5], want)
	}
	if rep.TotalEnergy <= 0 || rep.Bytes != rep.Messages*aggregate.PartialBytes {
		t.Errorf("accounting: energy %v bytes %d", rep.TotalEnergy, rep.Bytes)
	}
}

func TestAggregationVsApproximationBandwidth(t *testing.T) {
	// The paper's Section 1 contrast: aggregation ships far fewer bytes
	// than the compressed full-detail feed, which in turn ships far fewer
	// than raw.
	buildNet := func() *Network {
		net, _ := NewNetwork(testConfig(), DefaultEnergyModel(), 12, 64)
		_ = net.AddNode("n1", 10, 0, sineSource(0))
		_ = net.AddNode("n2", 20, 0, sineSource(1))
		_ = net.AddNode("n3", 30, 0, sineSource(2))
		_ = net.Build()
		return net
	}
	rounds := 128
	net := buildNet()
	agg, err := net.RunAggregation(rounds, 0, aggregate.Avg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := buildNet().Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	// TAG's saving is in messages: one per node per epoch, versus one per
	// hop for raw per-round forwarding (Σ depth messages per round).
	rawMessages := 0
	for _, id := range net.NodeIDs() {
		rawMessages += net.Node(id).Depth() * rounds
	}
	if agg.Messages >= rawMessages {
		t.Errorf("aggregation messages %d not below raw forwarding %d", agg.Messages, rawMessages)
	}
	// The approximation path keeps the full (approximate) history at a
	// fraction of the raw bytes — aggregation keeps only the statistic.
	if run.BytesToBase >= run.RawBytes {
		t.Errorf("approximation bytes %d not below raw bytes %d", run.BytesToBase, run.RawBytes)
	}
}

func TestRunAggregationErrors(t *testing.T) {
	net, _ := NewNetwork(testConfig(), DefaultEnergyModel(), 12, 64)
	_ = net.AddNode("n1", 5, 0, sineSource(0))
	if _, err := net.RunAggregation(4, 0, aggregate.Avg); err == nil {
		t.Error("RunAggregation before Build accepted")
	}
	_ = net.Build()
	if _, err := net.RunAggregation(4, 9, aggregate.Avg); err == nil {
		t.Error("out-of-range quantity accepted")
	}
}

func TestAdaptiveNetworkSavesCPUEnergy(t *testing.T) {
	run := func(adaptive bool) *Report {
		net, _ := NewNetwork(testConfig(), DefaultEnergyModel(), 12, 64)
		if adaptive {
			net.Adaptive = &core.AdaptivePolicy{MinFullRuns: 1}
		}
		_ = net.AddNode("n1", 10, 0, sineSource(0))
		_ = net.AddNode("n2", 20, 0, sineSource(1))
		_ = net.Build()
		rep, err := net.Run(4 * 64)
		if err != nil {
			t.Fatal(err)
		}
		return &rep
	}
	plain := run(false)
	adaptive := run(true)
	if plain.Transmissions != adaptive.Transmissions {
		t.Fatalf("transmission counts differ: %d vs %d",
			plain.Transmissions, adaptive.Transmissions)
	}
	var plainCPU, adaptiveCPU float64
	for _, e := range plain.PerNode {
		plainCPU += e.CPU
	}
	for _, e := range adaptive.PerNode {
		adaptiveCPU += e.CPU
	}
	if adaptiveCPU >= plainCPU {
		t.Errorf("adaptive CPU energy %v not below always-full %v", adaptiveCPU, plainCPU)
	}
}
