// Package sensornet simulates the wireless sensor network the paper's data
// reduction runs inside (Section 3.1): nodes with bounded collection
// buffers, a multi-hop routing tree toward the base station, a broadcast
// radio whose neighbours overhear every transmission, and an energy model
// in which sending one bit costs as much as a thousand CPU instructions
// (the Berkeley MICA mote figure the paper cites). It quantifies the
// claim that motivates SBR: radio bits, not CPU cycles, drain the battery,
// so spending computation to shrink transmissions extends network lifetime.
package sensornet

// EnergyModel prices the three activities of a sensor node. Units are
// nanojoules; the defaults reproduce the ratios of Section 3.1.
type EnergyModel struct {
	// TxPerBit is the radio cost of transmitting one bit.
	TxPerBit float64
	// RxPerBit is the radio cost of receiving (or overhearing) one bit.
	RxPerBit float64
	// PerInstruction is the CPU cost of one instruction.
	PerInstruction float64
	// CompressionInstrPerValue estimates the CPU instructions the SBR
	// pipeline spends per collected value when compressing a batch with
	// the full algorithm (base-signal update included).
	CompressionInstrPerValue float64

	// ShortcutInstrPerValue estimates the per-value CPU cost of the
	// Section 4.4 shortcut path (GetIntervals only). Measured ~12× cheaper
	// than the full path on this implementation.
	ShortcutInstrPerValue float64
}

// DefaultEnergyModel returns the MICA-mote-calibrated model: one
// transmitted bit equals 1,000 CPU instructions, receiving costs half of
// transmitting, and the compression pipeline is charged a generous 1,500
// instructions per collected value (SBR measured ~1,000 values/s on a
// 300 MHz CPU, i.e. ~300k instructions per value including the base-signal
// update; the shortcut path is far cheaper — the default sits between to
// stay conservative while reflecting amortisation across transmissions).
func DefaultEnergyModel() EnergyModel {
	const perInstruction = 4 // nJ, StrongARM-class core
	return EnergyModel{
		TxPerBit:                 1000 * perInstruction,
		RxPerBit:                 500 * perInstruction,
		PerInstruction:           perInstruction,
		CompressionInstrPerValue: 1500,
		ShortcutInstrPerValue:    125,
	}
}

// TxCost returns the energy to transmit a payload of the given size.
func (m EnergyModel) TxCost(bytes int) float64 {
	return m.TxPerBit * float64(8*bytes)
}

// RxCost returns the energy to receive (or overhear) a payload.
func (m EnergyModel) RxCost(bytes int) float64 {
	return m.RxPerBit * float64(8*bytes)
}

// CompressionCost returns the CPU energy to compress a batch of n values
// with the full SBR algorithm.
func (m EnergyModel) CompressionCost(n int) float64 {
	return m.PerInstruction * m.CompressionInstrPerValue * float64(n)
}

// ShortcutCost returns the CPU energy of the Section 4.4 shortcut encode.
func (m EnergyModel) ShortcutCost(n int) float64 {
	return m.PerInstruction * m.ShortcutInstrPerValue * float64(n)
}

// NodeEnergy accumulates a node's spending by category.
type NodeEnergy struct {
	Tx, Rx, CPU float64
}

// Total returns the node's total energy consumption.
func (e NodeEnergy) Total() float64 { return e.Tx + e.Rx + e.CPU }

func (e *NodeEnergy) add(o NodeEnergy) {
	e.Tx += o.Tx
	e.Rx += o.Rx
	e.CPU += o.CPU
}
