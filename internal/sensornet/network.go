package sensornet

import (
	"fmt"
	"math"
	"sort"

	"sbr/internal/core"
	"sbr/internal/obs"
	"sbr/internal/obs/trace"
	"sbr/internal/station"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

// SampleSource produces one sample per recorded quantity at each round.
// Implementations must be deterministic for reproducible simulations.
type SampleSource func(round int) []float64

// Node is one sensor: a position in the plane, a bounded collection buffer
// of N quantities × M samples, and an SBR compressor that flushes the
// buffer into a transmission whenever it fills (Section 3.2).
type Node struct {
	ID     string
	X, Y   float64
	source SampleSource

	buf        []timeseries.Series
	compressor *core.Compressor
	adaptive   *core.AdaptiveCompressor // non-nil when the network runs §4.4 scheduling
	energy     NodeEnergy

	parent string // next hop toward the base station; "" for direct link
	depth  int    // hops to the base station
}

// Energy returns the node's accumulated energy spending.
func (nd *Node) Energy() NodeEnergy { return nd.energy }

// Depth returns the node's hop count to the base station.
func (nd *Node) Depth() int { return nd.depth }

// Parent returns the next-hop node ID ("" when linked directly to base).
func (nd *Node) Parent() string { return nd.parent }

// Network is a simulated sensor field rooted at a base station at the
// origin. Nodes forward transmissions along a shortest-hop routing tree;
// every transmission is overheard by all nodes in radio range of the
// sender, as Section 3.1 describes for broadcast radio protocols.
type Network struct {
	cfg        core.Config
	model      EnergyModel
	radioRange float64
	bufferM    int

	nodes   map[string]*Node
	order   []string
	station *station.Station
	built   bool
	reg     *obs.Registry   // non-nil after Instrument; applied to late AddNodes
	tracer  *trace.Recorder // non-nil after Trace; births per-flush traces

	// Overhearing can be disabled to isolate the pure routing cost.
	CountOverhearing bool

	// Adaptive, when set before the first AddNode, gives every sensor the
	// Section 4.4 scheduler: full SBR runs only while the base signal
	// populates or after a quality degradation, all other batches take the
	// cheap shortcut path — and are billed at the model's shortcut CPU
	// rate.
	Adaptive *core.AdaptivePolicy

	// Deliver, when set, receives every frame after the in-process station
	// accepted it — the uplink hook cmd/sensorsim uses to mirror the
	// simulated field onto a real stationd over the reliable transport. A
	// delivery error aborts the run.
	Deliver func(id string, frame []byte) error
}

// NewNetwork creates a network whose sensors all run cfg and flush their
// buffers every bufferM samples. radioRange bounds single-hop links.
func NewNetwork(cfg core.Config, model EnergyModel, radioRange float64, bufferM int) (*Network, error) {
	if radioRange <= 0 {
		return nil, fmt.Errorf("sensornet: radio range must be positive")
	}
	if bufferM <= 0 {
		return nil, fmt.Errorf("sensornet: buffer size must be positive")
	}
	st, err := station.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Network{
		cfg:              cfg,
		model:            model,
		radioRange:       radioRange,
		bufferM:          bufferM,
		nodes:            make(map[string]*Node),
		station:          st,
		CountOverhearing: true,
	}, nil
}

// Station exposes the receiving base station.
func (n *Network) Station() *station.Station { return n.station }

// Instrument registers the whole network on reg: the base station's
// decode/query metrics plus every node compressor's encode fast-path
// metrics. Node registrations are idempotent and shared, so the encode
// counters aggregate across the field; nodes added after Instrument are
// registered as they join.
func (n *Network) Instrument(reg *obs.Registry) {
	n.reg = reg
	n.station.Instrument(reg)
	for _, id := range n.order {
		n.nodes[id].instrument(reg)
	}
}

// Trace installs a span recorder: every flush may birth a trace (subject
// to the recorder's sampling policy) whose encode span is annotated from
// the compression report and whose ID rides the wire frame — the
// in-process station and any Deliver uplink continue it.
func (n *Network) Trace(rec *trace.Recorder) {
	n.tracer = rec
	n.station.SetTracer(rec)
}

// instrument wires one node's compressor into reg.
func (nd *Node) instrument(reg *obs.Registry) {
	if nd.adaptive != nil {
		nd.adaptive.Compressor().Instrument(reg)
		return
	}
	nd.compressor.Instrument(reg)
}

// Node returns the named node, or nil.
func (n *Network) Node(id string) *Node { return n.nodes[id] }

// NodeIDs returns all node IDs in insertion order.
func (n *Network) NodeIDs() []string { return append([]string(nil), n.order...) }

// AddNode places a sensor at (x, y) fed by source.
func (n *Network) AddNode(id string, x, y float64, source SampleSource) error {
	if n.built {
		return fmt.Errorf("sensornet: cannot add node %q after Build", id)
	}
	if _, dup := n.nodes[id]; dup {
		return fmt.Errorf("sensornet: duplicate node %q", id)
	}
	node := &Node{ID: id, X: x, Y: y, source: source}
	if n.Adaptive != nil {
		a, err := core.NewAdaptiveCompressor(n.cfg, *n.Adaptive)
		if err != nil {
			return err
		}
		node.adaptive = a
	} else {
		comp, err := core.NewCompressor(n.cfg)
		if err != nil {
			return err
		}
		node.compressor = comp
	}
	n.nodes[id] = node
	n.order = append(n.order, id)
	if n.reg != nil {
		node.instrument(n.reg)
	}
	return nil
}

// Build computes the shortest-hop routing tree toward the base station at
// the origin using breadth-first search over the radio connectivity graph.
// Every node must be reachable.
func (n *Network) Build() error {
	type queued struct {
		id    string
		depth int
	}
	visited := make(map[string]bool)
	var frontier []queued
	// Seed: nodes in direct radio range of the base station.
	for _, id := range n.order {
		nd := n.nodes[id]
		if math.Hypot(nd.X, nd.Y) <= n.radioRange {
			nd.parent = ""
			nd.depth = 1
			visited[id] = true
			frontier = append(frontier, queued{id, 1})
		}
	}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		curNode := n.nodes[cur.id]
		for _, id := range n.order {
			if visited[id] {
				continue
			}
			nd := n.nodes[id]
			if dist(curNode, nd) <= n.radioRange {
				nd.parent = cur.id
				nd.depth = cur.depth + 1
				visited[id] = true
				frontier = append(frontier, queued{id, nd.depth})
			}
		}
	}
	for _, id := range n.order {
		if !visited[id] {
			return fmt.Errorf("sensornet: node %q unreachable from base station", id)
		}
	}
	n.built = true
	return nil
}

func dist(a, b *Node) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// Report summarises a simulation run.
type Report struct {
	Rounds        int
	Transmissions int
	BytesToBase   int // compressed bytes that reached the base station
	RawBytes      int // bytes a full-resolution feed would have shipped end-to-end
	TotalEnergy   float64
	RawEnergy     float64 // energy of the uncompressed alternative
	PerNode       map[string]NodeEnergy
}

// CompressionRatio returns compressed/raw traffic at the base station.
func (r Report) CompressionRatio() float64 {
	if r.RawBytes == 0 {
		return 0
	}
	return float64(r.BytesToBase) / float64(r.RawBytes)
}

// EnergySavingFactor returns rawEnergy/totalEnergy.
func (r Report) EnergySavingFactor() float64 {
	if r.TotalEnergy == 0 {
		return 0
	}
	return r.RawEnergy / r.TotalEnergy
}

// Run advances the simulation the given number of rounds: each round every
// node samples each of its quantities once; full buffers are compressed,
// framed and routed hop by hop to the base station with full energy
// accounting, including broadcast overhearing by radio neighbours.
func (n *Network) Run(rounds int) (Report, error) {
	if !n.built {
		return Report{}, fmt.Errorf("sensornet: Run before Build")
	}
	rep := Report{Rounds: rounds, PerNode: make(map[string]NodeEnergy)}
	for round := 0; round < rounds; round++ {
		for _, id := range n.order {
			nd := n.nodes[id]
			sample := nd.source(round)
			if nd.buf == nil {
				nd.buf = make([]timeseries.Series, len(sample))
			}
			if len(sample) != len(nd.buf) {
				return rep, fmt.Errorf("sensornet: node %q sample width changed from %d to %d",
					id, len(nd.buf), len(sample))
			}
			for q, v := range sample {
				nd.buf[q] = append(nd.buf[q], v)
			}
			if len(nd.buf[0]) >= n.bufferM {
				if err := n.flush(nd, &rep); err != nil {
					return rep, err
				}
			}
		}
	}
	for _, id := range n.order {
		rep.PerNode[id] = n.nodes[id].energy
		rep.TotalEnergy += n.nodes[id].energy.Total()
	}
	return rep, nil
}

// flush compresses and ships one full buffer from nd to the base station.
func (n *Network) flush(nd *Node, rep *Report) error {
	batch := nd.buf
	nd.buf = nil
	values := len(batch) * len(batch[0])

	// A trace is born here, at the encode, when the sampler says so; its
	// ID rides the frame so every downstream stage joins it.
	tr := n.tracer.Begin(nd.ID)
	esp := tr.StartSpan("encode")

	var (
		t    *core.Transmission
		full = true
		err  error
	)
	if nd.adaptive != nil {
		t, full, err = nd.adaptive.Encode(batch)
	} else {
		t, err = nd.compressor.Encode(batch)
	}
	if err != nil {
		esp.End()
		tr.Finish()
		return fmt.Errorf("sensornet: node %q: %w", nd.ID, err)
	}
	if esp != nil {
		comp := nd.compressor
		if nd.adaptive != nil {
			comp = nd.adaptive.Compressor()
		}
		rep := comp.LastReport()
		esp.AnnotateInt("seq", int64(t.Seq))
		esp.AnnotateInt("search_evals", int64(rep.SearchEvals))
		esp.AnnotateInt("cache_hits", int64(rep.CacheHits))
		esp.AnnotateInt("cache_misses", int64(rep.CacheMisses))
		esp.AnnotateInt("base_inserts", int64(rep.BaseInserts))
		esp.AnnotateInt("intervals", int64(rep.Intervals))
		if !full {
			esp.Annotate("shortcut", "true")
		}
	}
	frame, err := wire.EncodeTraced(t, wire.TraceContext{ID: uint64(tr.TraceID()), Sampled: tr != nil})
	esp.End()
	if err != nil {
		tr.Finish()
		return fmt.Errorf("sensornet: node %q: %w", nd.ID, err)
	}
	if full {
		nd.energy.CPU += n.model.CompressionCost(values)
	} else {
		nd.energy.CPU += n.model.ShortcutCost(values)
	}

	// Route hop by hop to the base station.
	rawFrameBytes := values * 8 // full-resolution alternative
	cur := nd
	for {
		n.charge(cur, frame, rep)
		rep.RawEnergy += n.rawHopEnergy(cur, rawFrameBytes)
		if cur.parent == "" {
			break
		}
		next := n.nodes[cur.parent]
		next.energy.Rx += n.model.RxCost(len(frame))
		cur = next
	}
	rep.Transmissions++
	rep.BytesToBase += len(frame)
	rep.RawBytes += rawFrameBytes
	if err := n.station.ReceiveFrame(nd.ID, frame); err != nil {
		return err
	}
	if n.Deliver != nil {
		if err := n.Deliver(nd.ID, frame); err != nil {
			return fmt.Errorf("sensornet: delivering node %q frame: %w", nd.ID, err)
		}
	}
	tr.Finish()
	return nil
}

// charge bills sender cur for transmitting frame, plus overhearing by every
// node in radio range of the sender.
func (n *Network) charge(cur *Node, frame []byte, rep *Report) {
	cur.energy.Tx += n.model.TxCost(len(frame))
	if !n.CountOverhearing {
		return
	}
	for _, id := range n.order {
		other := n.nodes[id]
		if other == cur || other.ID == cur.parent {
			continue // the intended receiver is billed separately
		}
		if dist(cur, other) <= n.radioRange {
			other.energy.Rx += n.model.RxCost(len(frame))
		}
	}
}

// rawHopEnergy prices what the same hop would have cost for the
// uncompressed feed: transmit plus intended receive (when not the base).
func (n *Network) rawHopEnergy(cur *Node, rawBytes int) float64 {
	e := n.model.TxCost(rawBytes)
	if cur.parent != "" {
		e += n.model.RxCost(rawBytes)
	}
	if n.CountOverhearing {
		for _, id := range n.order {
			other := n.nodes[id]
			if other == cur || other.ID == cur.parent {
				continue
			}
			if dist(cur, other) <= n.radioRange {
				e += n.model.RxCost(rawBytes)
			}
		}
	}
	return e
}

// PendingSamples reports, per node, how many samples sit in a partially
// filled buffer awaiting the next flush. Mainly useful in tests.
func (n *Network) PendingSamples() map[string]int {
	out := make(map[string]int)
	for _, id := range n.order {
		nd := n.nodes[id]
		if nd.buf != nil && len(nd.buf) > 0 {
			out[id] = len(nd.buf[0])
		}
	}
	return out
}

// Describe returns a human-readable summary of the routing tree, sorted by
// depth then ID — handy for the simulator CLI.
func (n *Network) Describe() []string {
	ids := append([]string(nil), n.order...)
	sort.Slice(ids, func(i, j int) bool {
		a, b := n.nodes[ids[i]], n.nodes[ids[j]]
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		return a.ID < b.ID
	})
	out := make([]string, len(ids))
	for i, id := range ids {
		nd := n.nodes[id]
		parent := nd.parent
		if parent == "" {
			parent = "base"
		}
		out[i] = fmt.Sprintf("%-8s depth=%d parent=%s pos=(%.0f,%.0f)",
			nd.ID, nd.depth, parent, nd.X, nd.Y)
	}
	return out
}
