package sensornet

import (
	"fmt"

	"sbr/internal/aggregate"
	"sbr/internal/timeseries"
)

// This file wires TAG-style in-network aggregation (internal/aggregate)
// into the simulated network, so the two data-reduction strategies the
// paper's introduction contrasts — aggregation and approximation — can be
// compared on the same topology, sources and energy model.

// AggReport summarises an aggregation run.
type AggReport struct {
	Rounds      int
	Function    aggregate.Func
	Results     timeseries.Series // one aggregate value per round
	Messages    int
	Bytes       int     // radio payload bytes across all hops
	TotalEnergy float64 // network-wide energy under the same model
}

// AggregationTree exports the built routing tree in aggregate.Tree form.
func (n *Network) AggregationTree() (*aggregate.Tree, error) {
	if !n.built {
		return nil, fmt.Errorf("sensornet: AggregationTree before Build")
	}
	parents := make(map[string]string, len(n.nodes))
	for _, id := range n.order {
		parents[id] = n.nodes[id].parent
	}
	return aggregate.NewTree(parents)
}

// RunAggregation simulates `rounds` epochs of in-network aggregation of
// one quantity: every node samples once per epoch, partial state records
// merge up the tree, one fixed-size message per node per epoch. The
// sources are consumed exactly as in Run, so the resulting per-round
// aggregates are directly comparable with a Run over the same rounds.
// Overhearing is charged under the same rule as Run.
func (n *Network) RunAggregation(rounds, quantity int, f aggregate.Func) (AggReport, error) {
	tree, err := n.AggregationTree()
	if err != nil {
		return AggReport{}, err
	}
	rep := AggReport{Rounds: rounds, Function: f}
	for round := 0; round < rounds; round++ {
		readings := make(map[string]float64, len(n.order))
		for _, id := range n.order {
			sample := n.nodes[id].source(round)
			if quantity < 0 || quantity >= len(sample) {
				return rep, fmt.Errorf("sensornet: quantity %d outside sample width %d",
					quantity, len(sample))
			}
			readings[id] = sample[quantity]
		}
		root, msgs, bytes, err := tree.Epoch(readings)
		if err != nil {
			return rep, err
		}
		v, err := root.Value(f)
		if err != nil {
			return rep, err
		}
		rep.Results = append(rep.Results, v)
		rep.Messages += msgs
		rep.Bytes += bytes

		// Energy: every node transmits one partial record; its parent (or
		// the base) receives it; neighbours in range overhear.
		for _, id := range n.order {
			nd := n.nodes[id]
			rep.TotalEnergy += n.model.TxCost(aggregate.PartialBytes)
			if nd.parent != "" {
				rep.TotalEnergy += n.model.RxCost(aggregate.PartialBytes)
			}
			if n.CountOverhearing {
				for _, other := range n.order {
					o := n.nodes[other]
					if o == nd || o.ID == nd.parent {
						continue
					}
					if dist(nd, o) <= n.radioRange {
						rep.TotalEnergy += n.model.RxCost(aggregate.PartialBytes)
					}
				}
			}
		}
	}
	return rep, nil
}
