package core

import (
	"math"
	"math/rand"
	"testing"

	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

func adaptiveConfig() Config {
	return Config{TotalBand: 200, MBase: 96, Metric: metrics.SSE}
}

func TestAdaptiveFirstRunsAreFull(t *testing.T) {
	a, err := NewAdaptiveCompressor(adaptiveConfig(), AdaptivePolicy{MinFullRuns: 3})
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(40, 3, 256)
	for i := 0; i < 5; i++ {
		_, full, err := a.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		if want := i < 3; full != want {
			t.Errorf("transmission %d: full=%v, want %v", i, full, want)
		}
	}
	if a.FullRuns() != 3 || a.Transmissions() != 5 {
		t.Errorf("counters: %d full of %d", a.FullRuns(), a.Transmissions())
	}
}

func TestAdaptivePeriodicTrigger(t *testing.T) {
	a, err := NewAdaptiveCompressor(adaptiveConfig(), AdaptivePolicy{MinFullRuns: 1, Every: 3})
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(41, 3, 256)
	var pattern []bool
	for i := 0; i < 9; i++ {
		_, full, err := a.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		pattern = append(pattern, full)
	}
	// tx0 full (MinFullRuns), then every 4th (3 shortcuts + 1 full).
	want := []bool{true, false, false, false, true, false, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("pattern = %v, want %v", pattern, want)
		}
	}
}

func TestAdaptiveDegradationTrigger(t *testing.T) {
	a, err := NewAdaptiveCompressor(adaptiveConfig(), AdaptivePolicy{MinFullRuns: 1, DegradeFactor: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	calm := testRows(42, 3, 256)
	// A structurally different regime: new dominant frequency and scale.
	rng := rand.New(rand.NewSource(99))
	wild := make([]timeseries.Series, 3)
	for r := range wild {
		wild[r] = make(timeseries.Series, 256)
		for i := range wild[r] {
			wild[r][i] = 40*math.Sin(float64(i)/2.1) + 10*rng.NormFloat64()
		}
	}

	if _, full, err := a.Encode(calm); err != nil || !full {
		t.Fatalf("first encode: full=%v err=%v", full, err)
	}
	if _, full, err := a.Encode(calm); err != nil || full {
		t.Fatalf("stable batch triggered a full run (err=%v)", err)
	}
	// The regime change degrades the shortcut error…
	if _, full, err := a.Encode(wild); err != nil || full {
		t.Fatalf("regime-change batch itself should still be a shortcut (err=%v)", err)
	}
	// …which latches the trigger for the next batch.
	if _, full, err := a.Encode(wild); err != nil || !full {
		t.Fatalf("degradation did not trigger a full run (err=%v)", err)
	}
}

func TestAdaptiveStreamDecodes(t *testing.T) {
	cfg := adaptiveConfig()
	a, err := NewAdaptiveCompressor(cfg, AdaptivePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(43, 3, 256)
	for i := 0; i < 6; i++ {
		tr, _, err := a.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(tr)
		if err != nil {
			t.Fatal(err)
		}
		y := timeseries.Concat(rows...)
		yh := timeseries.Concat(got...)
		if e := metrics.SumSquared(y, yh); math.Abs(e-tr.TotalErr) > 1e-6*(1+tr.TotalErr) {
			t.Fatalf("tx %d: decoder err %v, sender err %v", i, e, tr.TotalErr)
		}
	}
	if !timeseries.Equal(a.Compressor().BaseSignal(), dec.BaseSignal(), 0) {
		t.Error("adaptive stream base replica diverged")
	}
}

func TestAdaptivePolicyDefaults(t *testing.T) {
	p := AdaptivePolicy{}.withDefaults()
	if p.MinFullRuns != 2 || p.DegradeFactor != 1.5 {
		t.Errorf("defaults = %+v", p)
	}
	if _, err := NewAdaptiveCompressor(Config{}, AdaptivePolicy{}); err == nil {
		t.Error("invalid config accepted")
	}
}
