package core

import (
	"math"
	"testing"

	"sbr/internal/interval"
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

// parabolicRows builds rows that are piecewise-quadratic in time, where the
// quadratic encoding has a decisive advantage over the linear one.
func parabolicRows(n, m int) []timeseries.Series {
	rows := make([]timeseries.Series, n)
	for r := range rows {
		rows[r] = make(timeseries.Series, m)
		for i := range rows[r] {
			t := float64(i%64) - 32
			rows[r][i] = float64(r+1) * (0.1*t*t - 2*t + 5)
		}
	}
	return rows
}

func TestQuadraticEncodeDecodeRoundTrip(t *testing.T) {
	rows := parabolicRows(3, 256)
	cfg := Config{TotalBand: 150, MBase: 80, Metric: metrics.SSE, Quadratic: true}
	comp, err := NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cost > cfg.TotalBand {
		t.Fatalf("cost %d exceeds budget %d", tr.Cost, cfg.TotalBand)
	}
	got, err := dec.Decode(tr)
	if err != nil {
		t.Fatal(err)
	}
	y := timeseries.Concat(rows...)
	yh := timeseries.Concat(got...)
	if errv := metrics.SumSquared(y, yh); math.Abs(errv-tr.TotalErr) > 1e-6*(1+tr.TotalErr) {
		t.Errorf("decoder err %v, sender err %v", errv, tr.TotalErr)
	}
}

func TestQuadraticBeatsLinearOnParabolicData(t *testing.T) {
	rows := parabolicRows(3, 256)
	run := func(quad bool) float64 {
		cfg := Config{TotalBand: 120, MBase: 80, Metric: metrics.SSE, Quadratic: quad}
		comp, err := NewCompressor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := comp.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		return tr.TotalErr
	}
	linear := run(false)
	quadratic := run(true)
	// Per record the quadratic run gets fewer intervals (5 values each),
	// but the data is exactly quadratic per segment, so it must still win
	// decisively.
	if quadratic > linear/2 {
		t.Errorf("quadratic err %v not well below linear err %v on parabolic data",
			quadratic, linear)
	}
}

func TestQuadraticRecordCost(t *testing.T) {
	rows := parabolicRows(2, 128)
	cfg := Config{TotalBand: 100, MBase: 0, Metric: metrics.SSE, Builder: BuilderNone, Quadratic: true}
	comp, err := NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	// BuilderNone elides the shift pointer, so a quadratic ramp record is
	// start + three coefficients = ValuesPerQuadInterval − 1.
	if want := len(tr.Intervals) * (interval.ValuesPerQuadInterval - 1); tr.Cost != want {
		t.Errorf("cost %d for %d quad ramp records, want %d", tr.Cost, len(tr.Intervals), want)
	}
}

func TestQuadraticRequiresSSE(t *testing.T) {
	cfg := Config{TotalBand: 100, MBase: 32, Metric: metrics.RelativeSSE, Quadratic: true}
	if _, err := NewCompressor(cfg); err == nil {
		t.Error("quadratic + relative metric accepted")
	}
	cfg.Metric = metrics.MaxAbs
	if _, err := NewCompressor(cfg); err == nil {
		t.Error("quadratic + max-abs metric accepted")
	}
}

func TestQuadraticBaseSignalStaysInSync(t *testing.T) {
	rows := parabolicRows(3, 256)
	cfg := Config{TotalBand: 200, MBase: 96, Metric: metrics.SSE, Quadratic: true}
	comp, _ := NewCompressor(cfg)
	dec, _ := NewDecoder(cfg)
	for i := 0; i < 3; i++ {
		tr, err := comp.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(tr); err != nil {
			t.Fatal(err)
		}
		if !timeseries.Equal(comp.BaseSignal(), dec.BaseSignal(), 0) {
			t.Fatal("quadratic-mode base replica diverged")
		}
	}
}
