package core

import "sbr/internal/obs"

// encodeMetrics is the sender-side instrumentation of the Encode fast
// path. All fields are nil until Instrument is called; the obs package's
// nil-receiver no-ops make the uninstrumented path free.
type encodeMetrics struct {
	encodes     *obs.Counter
	searchEvals *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	tailShifts  *obs.Counter
	scanWorkers *obs.Gauge
}

// Instrument registers the compressor's encode metrics on reg. Many
// compressors may share one registry: registration is idempotent, so every
// sensor in a simulated network accumulates into the same series.
func (c *Compressor) Instrument(reg *obs.Registry) {
	c.met = encodeMetrics{
		encodes:     reg.Counter("sbr_encode_total", "Batches compressed by Encode."),
		searchEvals: reg.Counter("sbr_encode_search_evals_total", "CalculateError evaluations spent by the Algorithm 7 insert-count search."),
		cacheHits:   reg.Counter("sbr_encode_cache_hits_total", "BestMap calls answered from the cross-probe scan cache."),
		cacheMisses: reg.Counter("sbr_encode_cache_misses_total", "BestMap calls that created their scan-cache entry."),
		tailShifts:  reg.Counter("sbr_encode_tail_shifts_total", "Candidate-tail shift positions scanned incrementally beyond cached coverage."),
		scanWorkers: reg.Gauge("sbr_encode_scan_workers", "Worker cap of the parallel shift-scan engine."),
	}
}

// observe folds one Encode's report into the registered metrics.
func (m *encodeMetrics) observe(rep *CompressionReport) {
	m.encodes.Inc()
	m.searchEvals.Add(uint64(rep.SearchEvals))
	m.cacheHits.Add(uint64(rep.CacheHits))
	m.cacheMisses.Add(uint64(rep.CacheMisses))
	m.tailShifts.Add(uint64(rep.TailShifts))
	m.scanWorkers.Set(float64(rep.ScanWorkers))
}
