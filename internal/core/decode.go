package core

import (
	"fmt"
	"sort"

	"sbr/internal/base"
	"sbr/internal/interval"
	"sbr/internal/timeseries"
)

// Decoder is the base-station counterpart of Compressor: it reconstructs
// the approximate rows of each transmission and replays every base-signal
// update on its own replica pool, so that sender and receiver agree on the
// base signal at every point in time (Section 3.2).
//
// The decoder must be fed the transmissions of one sensor in order.
type Decoder struct {
	cfg  Config
	w    int
	pool *base.Pool
	dctX timeseries.Series
	next int
}

// NewDecoder creates a decoder for a stream produced by a Compressor with
// the same configuration.
func NewDecoder(cfg Config) (*Decoder, error) {
	if cfg.ForceIns == 0 && !cfg.SkipBaseUpdate {
		cfg.ForceIns = AutoIns
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Decoder{cfg: cfg}, nil
}

// BaseSignal returns a copy of the replica base signal.
func (d *Decoder) BaseSignal() timeseries.Series {
	if d.cfg.Builder == BuilderDCT {
		return d.dctX.Clone()
	}
	if d.pool == nil {
		return nil
	}
	return d.pool.Signal()
}

// Decode reconstructs the N rows approximated by t and applies t's
// base-signal update to the replica.
func (d *Decoder) Decode(t *Transmission) ([]timeseries.Series, error) {
	if t.Seq != d.next {
		return nil, fmt.Errorf("core: transmission %d decoded out of order (want %d)", t.Seq, d.next)
	}
	if d.w == 0 {
		d.w = t.W
		if d.cfg.Builder != BuilderDCT && d.cfg.Builder != BuilderNone {
			d.pool = base.NewPool(d.cfg.MBase, d.w)
		}
		if d.cfg.Builder == BuilderDCT {
			d.dctX = timeseries.Concat(base.GetBaseDCT(d.w, d.cfg.MBase/d.w)...)
		}
	} else if t.W != d.w {
		return nil, fmt.Errorf("core: transmission width %d differs from stream width %d", t.W, d.w)
	}
	d.next++

	var x timeseries.Series
	switch d.cfg.Builder {
	case BuilderDCT:
		x = d.dctX
	case BuilderNone:
		// no base signal
	default:
		// The intervals were fitted against the pre-eviction X_new.
		x = d.pool.SignalWith(t.BaseIntervals)
	}

	n := t.N * t.M
	list := withLengths(t.Intervals, n)
	if err := validateIntervals(list, len(x), n); err != nil {
		return nil, err
	}
	approx := interval.Reconstruct(x, list, n)

	if d.pool != nil {
		if err := d.pool.Apply(t.BaseIntervals, t.Placements); err != nil {
			return nil, err
		}
	}

	rows := make([]timeseries.Series, t.N)
	for i := 0; i < t.N; i++ {
		rows[i] = approx[i*t.M : (i+1)*t.M]
	}
	return rows, nil
}

// DecoderState is a serialisable snapshot of a decoder's replica state:
// the stream width, the next expected sequence number and the base-signal
// pool slots in slot order. It is what the persistent segment store writes
// into segment headers (so one sealed segment can be decoded cold, without
// replaying the whole stream) and what station checkpoints persist.
//
// The replica pool carries no LFU frequencies — eviction decisions are the
// sender's and arrive as placements — so the slots alone reproduce it.
type DecoderState struct {
	W    int                 `json:"w"`
	Next int                 `json:"next"`
	Base []timeseries.Series `json:"base,omitempty"`
}

// State snapshots the decoder. The zero state (W == 0) describes a
// decoder that has not yet seen a transmission.
func (d *Decoder) State() DecoderState {
	st := DecoderState{W: d.w, Next: d.next}
	if d.pool != nil && d.pool.NumIntervals() > 0 {
		sig := d.pool.Signal()
		st.Base = make([]timeseries.Series, d.pool.NumIntervals())
		for i := range st.Base {
			st.Base[i] = sig[i*d.w : (i+1)*d.w]
		}
	}
	return st
}

// NewDecoderAt creates a decoder resumed at the given snapshot: the next
// Decode call must be fed the transmission with sequence st.Next, and the
// replica pool starts from st.Base. A zero state is a fresh decoder.
func NewDecoderAt(cfg Config, st DecoderState) (*Decoder, error) {
	d, err := NewDecoder(cfg)
	if err != nil {
		return nil, err
	}
	if st.W == 0 {
		return d, nil
	}
	d.w = st.W
	d.next = st.Next
	switch d.cfg.Builder {
	case BuilderDCT:
		d.dctX = timeseries.Concat(base.GetBaseDCT(d.w, d.cfg.MBase/d.w)...)
	case BuilderNone:
		// no base signal
	default:
		d.pool = base.NewPool(d.cfg.MBase, d.w)
		placements := make([]base.Placement, len(st.Base))
		for i := range placements {
			placements[i] = base.Placement{Slot: i}
		}
		if err := d.pool.Apply(st.Base, placements); err != nil {
			return nil, fmt.Errorf("core: seeding replica pool: %w", err)
		}
	}
	return d, nil
}

// validateIntervals rejects transmissions whose records cannot be
// reconstructed — out-of-range starts or base-signal shifts. The wire
// checksum catches random corruption; this guards the decoder (and any
// long-running base station built on it) against malformed frames that
// still carry a valid CRC.
func validateIntervals(list []interval.Interval, xLen, total int) error {
	for _, iv := range list {
		if iv.Start < 0 || iv.Start+iv.Length > total || iv.Length < 0 {
			return fmt.Errorf("core: interval [%d,%d) outside batch [0,%d)",
				iv.Start, iv.Start+iv.Length, total)
		}
		if iv.Shift == interval.RampShift {
			continue
		}
		if iv.Shift < 0 || iv.Shift+iv.Length > xLen {
			return fmt.Errorf("core: interval shift %d+%d outside base signal of %d values",
				iv.Shift, iv.Length, xLen)
		}
	}
	return nil
}

// withLengths recovers the interval lengths from the sorted start offsets,
// the way the base station does after receiving only (start, shift, a, b)
// records: each interval extends to the start of the next one (Section 4.2).
func withLengths(in []interval.Interval, total int) []interval.Interval {
	list := append([]interval.Interval(nil), in...)
	sort.Slice(list, func(i, j int) bool { return list[i].Start < list[j].Start })
	for i := range list {
		end := total
		if i+1 < len(list) {
			end = list[i+1].Start
		}
		list[i].Length = end - list[i].Start
	}
	return list
}
