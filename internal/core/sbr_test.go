package core

import (
	"math"
	"math/rand"
	"testing"

	"sbr/internal/interval"
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

// testRows builds a deterministic batch of correlated rows: a shared
// periodic pattern with per-row affine distortion plus noise, the kind of
// structure SBR thrives on.
func testRows(seed int64, n, m int) []timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	pattern := make(timeseries.Series, m)
	for i := range pattern {
		pattern[i] = math.Sin(float64(i)/7) + 0.5*math.Sin(float64(i)/3)
	}
	rows := make([]timeseries.Series, n)
	for r := range rows {
		a := 1 + rng.Float64()*3
		b := rng.NormFloat64() * 5
		row := make(timeseries.Series, m)
		for i := range row {
			row[i] = a*pattern[i] + b + 0.05*rng.NormFloat64()
		}
		rows[r] = row
	}
	return rows
}

func testConfig(n, m int) Config {
	return Config{
		TotalBand: n * m / 10,
		MBase:     256,
		Metric:    metrics.SSE,
	}
}

func TestCompressorRoundTrip(t *testing.T) {
	rows := testRows(1, 4, 256)
	cfg := testConfig(4, 256)
	comp, err := NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		tr, err := comp.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Cost > cfg.TotalBand {
			t.Fatalf("cost %d exceeds TotalBand %d", tr.Cost, cfg.TotalBand)
		}
		got, err := dec.Decode(tr)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 4 || len(got[0]) != 256 {
			t.Fatalf("decoded shape %dx%d", len(got), len(got[0]))
		}
		// Decoder output must equal the sender-side reconstruction exactly
		// (same intervals, same base signal).
		senderErr := tr.TotalErr
		y := timeseries.Concat(rows...)
		yh := timeseries.Concat(got...)
		decErr := metrics.SumSquared(y, yh)
		if math.Abs(senderErr-decErr) > 1e-6*(1+senderErr) {
			t.Fatalf("round %d: sender err %v, decoder err %v", round, senderErr, decErr)
		}
	}
}

func TestCompressorBeatsBudgetlessBaseline(t *testing.T) {
	// Sanity: the compressed error is dramatically smaller than
	// approximating every row by its mean (the 0-line baseline).
	rows := testRows(2, 4, 256)
	cfg := testConfig(4, 256)
	cfg.TotalBand = 4 * 256 / 4 // 25 % ratio: room to split below 2W
	comp, _ := NewCompressor(cfg)
	tr, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	var meanErr float64
	for _, r := range rows {
		mean := r.Mean()
		for _, v := range r {
			meanErr += (v - mean) * (v - mean)
		}
	}
	if tr.TotalErr > meanErr/4 {
		t.Errorf("SBR error %v vs mean-baseline %v: compression is not working", tr.TotalErr, meanErr)
	}
}

func TestBaseSignalReplicaStaysInSync(t *testing.T) {
	rows1 := testRows(3, 3, 128)
	rows2 := testRows(4, 3, 128)
	cfg := Config{TotalBand: 120, MBase: 64, Metric: metrics.SSE}
	comp, _ := NewCompressor(cfg)
	dec, _ := NewDecoder(cfg)
	for _, rows := range [][]timeseries.Series{rows1, rows2, rows1, rows2} {
		tr, err := comp.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(tr); err != nil {
			t.Fatal(err)
		}
		if !timeseries.Equal(comp.BaseSignal(), dec.BaseSignal(), 0) {
			t.Fatalf("base-signal replica diverged after seq %d", tr.Seq)
		}
	}
}

func TestDecodeOutOfOrderRejected(t *testing.T) {
	rows := testRows(5, 2, 64)
	cfg := Config{TotalBand: 40, MBase: 32, Metric: metrics.SSE}
	comp, _ := NewCompressor(cfg)
	dec, _ := NewDecoder(cfg)
	t1, _ := comp.Encode(rows)
	t2, _ := comp.Encode(rows)
	if _, err := dec.Decode(t2); err == nil {
		t.Error("decoding transmission 1 before 0 must fail")
	}
	if _, err := dec.Decode(t1); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(t2); err != nil {
		t.Fatal(err)
	}
}

func TestForcedInsertCount(t *testing.T) {
	rows := testRows(6, 4, 256)
	cfg := Config{TotalBand: 300, MBase: 320, Metric: metrics.SSE}
	for _, force := range []int{0, 1, 3} {
		comp, err := NewCompressorForceIns(cfg, force)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := comp.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Ins() != force {
			t.Errorf("forced %d inserts, got %d", force, tr.Ins())
		}
	}
	if _, err := NewCompressorForceIns(cfg, -2); err == nil {
		t.Error("negative forced count accepted")
	}
}

func TestSkipBaseUpdate(t *testing.T) {
	rows := testRows(7, 4, 256)
	cfg := Config{TotalBand: 300, MBase: 320, Metric: metrics.SSE, SkipBaseUpdate: true}
	comp, _ := NewCompressor(cfg)
	tr, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ins() != 0 {
		t.Errorf("shortcut mode inserted %d base intervals", tr.Ins())
	}
}

func TestEncodeShortcutTogglesOnce(t *testing.T) {
	rows := testRows(8, 4, 256)
	cfg := Config{TotalBand: 300, MBase: 320, Metric: metrics.SSE}
	comp, _ := NewCompressor(cfg)
	if _, err := comp.Encode(rows); err != nil {
		t.Fatal(err)
	}
	tr, err := comp.EncodeShortcut(rows)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ins() != 0 {
		t.Errorf("shortcut encode inserted %d intervals", tr.Ins())
	}
	// The next regular encode may insert again (flag restored).
	if comp.Config().SkipBaseUpdate {
		t.Error("EncodeShortcut left SkipBaseUpdate set")
	}
}

func TestBuilderNoneUsesThreeValueRecords(t *testing.T) {
	rows := testRows(9, 2, 128)
	cfg := Config{TotalBand: 90, MBase: 0, Metric: metrics.SSE, Builder: BuilderNone}
	comp, _ := NewCompressor(cfg)
	tr, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ins() != 0 {
		t.Errorf("BuilderNone inserted base intervals")
	}
	if want := len(tr.Intervals) * interval.ValuesPerRampInterval; tr.Cost != want {
		t.Errorf("cost %d, want %d (3 values per record)", tr.Cost, want)
	}
	for _, iv := range tr.Intervals {
		if iv.Shift != interval.RampShift {
			t.Errorf("BuilderNone produced a shifted interval %v", iv)
		}
	}
	// Decode must round-trip too.
	dec, _ := NewDecoder(cfg)
	if _, err := dec.Decode(tr); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDCTDecodesWithoutShippingBase(t *testing.T) {
	rows := testRows(10, 3, 128)
	cfg := Config{TotalBand: 120, MBase: 60, Metric: metrics.SSE, Builder: BuilderDCT}
	comp, _ := NewCompressor(cfg)
	dec, _ := NewDecoder(cfg)
	tr, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.BaseIntervals) != 0 {
		t.Error("DCT base intervals were transmitted")
	}
	got, err := dec.Decode(tr)
	if err != nil {
		t.Fatal(err)
	}
	y := timeseries.Concat(rows...)
	yh := timeseries.Concat(got...)
	if gotErr := metrics.SumSquared(y, yh); math.Abs(gotErr-tr.TotalErr) > 1e-6*(1+tr.TotalErr) {
		t.Errorf("decoder err %v, sender err %v", gotErr, tr.TotalErr)
	}
}

func TestBuilderSVDRoundTrip(t *testing.T) {
	rows := testRows(11, 3, 128)
	cfg := Config{TotalBand: 150, MBase: 80, Metric: metrics.SSE, Builder: BuilderSVD}
	comp, _ := NewCompressor(cfg)
	dec, _ := NewDecoder(cfg)
	for i := 0; i < 2; i++ {
		tr, err := comp.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(tr); err != nil {
			t.Fatal(err)
		}
		if !timeseries.Equal(comp.BaseSignal(), dec.BaseSignal(), 0) {
			t.Fatal("SVD base replica diverged")
		}
	}
}

func TestBuilderLowMemMatchesGetBase(t *testing.T) {
	rows := testRows(12, 3, 128)
	run := func(b BaseBuilder) *Transmission {
		cfg := Config{TotalBand: 150, MBase: 80, Metric: metrics.SSE, Builder: b}
		comp, _ := NewCompressor(cfg)
		tr, err := comp.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	full := run(BuilderGetBase)
	low := run(BuilderGetBaseLowMem)
	if full.Ins() != low.Ins() {
		t.Fatalf("insert counts differ: %d vs %d", full.Ins(), low.Ins())
	}
	for i := range full.BaseIntervals {
		if !timeseries.Equal(full.BaseIntervals[i], low.BaseIntervals[i], 0) {
			t.Errorf("base interval %d differs between GetBase and its low-memory variant", i)
		}
	}
}

func TestRelativeMetricEndToEnd(t *testing.T) {
	rows := testRows(13, 3, 128)
	cfg := Config{TotalBand: 150, MBase: 80, Metric: metrics.RelativeSSE}
	comp, _ := NewCompressor(cfg)
	dec, _ := NewDecoder(cfg)
	tr, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decode(tr)
	if err != nil {
		t.Fatal(err)
	}
	y := timeseries.Concat(rows...)
	yh := timeseries.Concat(got...)
	rel := metrics.SumSquaredRelative(y, yh, metrics.DefaultSanity)
	if math.Abs(rel-tr.TotalErr) > 1e-6*(1+tr.TotalErr) {
		t.Errorf("relative metric: decoder err %v, sender err %v", rel, tr.TotalErr)
	}
}

func TestMaxAbsMetricEndToEnd(t *testing.T) {
	rows := testRows(14, 2, 64)
	cfg := Config{TotalBand: 60, MBase: 24, Metric: metrics.MaxAbs}
	comp, _ := NewCompressor(cfg)
	dec, _ := NewDecoder(cfg)
	tr, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decode(tr)
	if err != nil {
		t.Fatal(err)
	}
	y := timeseries.Concat(rows...)
	yh := timeseries.Concat(got...)
	maxAbs := metrics.MaxAbsolute(y, yh)
	if math.Abs(maxAbs-tr.TotalErr) > 1e-6*(1+tr.TotalErr) {
		t.Errorf("max-abs metric: decoder err %v, sender err %v", maxAbs, tr.TotalErr)
	}
}

func TestErrorTargetShrinksTransmission(t *testing.T) {
	rows := testRows(15, 2, 256)
	base := Config{TotalBand: 256, MBase: 0, Metric: metrics.SSE, Builder: BuilderNone}
	comp, _ := NewCompressor(base)
	trFull, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	bounded := base
	bounded.ErrorTarget = trFull.TotalErr * 100
	comp2, _ := NewCompressor(bounded)
	trBounded, err := comp2.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	if trBounded.Cost >= trFull.Cost {
		t.Errorf("error target did not shrink the transmission: %d vs %d",
			trBounded.Cost, trFull.Cost)
	}
	if trBounded.TotalErr > bounded.ErrorTarget {
		t.Errorf("bounded run error %v exceeds target %v", trBounded.TotalErr, bounded.ErrorTarget)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{TotalBand: 0},
		{TotalBand: 10, MBase: -1},
		{TotalBand: 10, W: -3},
	}
	for _, cfg := range bad {
		if _, err := NewCompressor(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestEncodeShapeErrors(t *testing.T) {
	cfg := Config{TotalBand: 100, MBase: 32, Metric: metrics.SSE}
	comp, _ := NewCompressor(cfg)
	if _, err := comp.Encode(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := comp.Encode([]timeseries.Series{{}}); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := comp.Encode([]timeseries.Series{{1, 2}, {1}}); err == nil {
		t.Error("ragged rows accepted")
	}
	// First batch fixes the size.
	if _, err := comp.Encode(testRows(16, 2, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := comp.Encode(testRows(16, 2, 32)); err == nil {
		t.Error("batch size change accepted")
	}
}

func TestTotalBandTooSmall(t *testing.T) {
	cfg := Config{TotalBand: 7, MBase: 32, Metric: metrics.SSE} // < 4 values × 2 rows
	comp, _ := NewCompressor(cfg)
	if _, err := comp.Encode(testRows(17, 2, 64)); err == nil {
		t.Error("insufficient TotalBand accepted")
	}
}

func TestWidthOverride(t *testing.T) {
	rows := testRows(18, 2, 64)
	cfg := Config{TotalBand: 64, MBase: 32, Metric: metrics.SSE, W: 8}
	comp, _ := NewCompressor(cfg)
	if _, err := comp.Encode(rows); err != nil {
		t.Fatal(err)
	}
	if comp.W() != 8 {
		t.Errorf("W = %d, want 8", comp.W())
	}
}

func TestDefaultWidthIsSqrtN(t *testing.T) {
	rows := testRows(19, 4, 256) // n=1024, √n=32
	cfg := testConfig(4, 256)
	comp, _ := NewCompressor(cfg)
	if _, err := comp.Encode(rows); err != nil {
		t.Fatal(err)
	}
	if comp.W() != 32 {
		t.Errorf("W = %d, want 32", comp.W())
	}
}

func TestSearchFindsUnimodalMinimum(t *testing.T) {
	for _, tc := range []struct {
		errs []float64
		want int
	}{
		{[]float64{5, 4, 3, 2, 3, 4}, 3},
		{[]float64{1, 2, 3, 4}, 0},
		{[]float64{4, 3, 2, 1}, 3},
		{[]float64{2}, 0},
		{[]float64{3, 1}, 1},
		{[]float64{1, 3}, 0},
	} {
		got := search(func(i int) float64 { return tc.errs[i] }, 0, len(tc.errs)-1)
		if got != tc.want {
			t.Errorf("search(%v) = %d, want %d", tc.errs, got, tc.want)
		}
	}
}

func TestSearchEvaluationsAreMemoisable(t *testing.T) {
	// The driver memoises; here we check search never indexes out of range
	// and terminates for adversarial (non-unimodal) curves.
	errs := []float64{5, 1, 4, 0, 6, 2, 7}
	calls := 0
	got := search(func(i int) float64 {
		calls++
		if i < 0 || i >= len(errs) {
			t.Fatalf("search evaluated out-of-range index %d", i)
		}
		return errs[i]
	}, 0, len(errs)-1)
	if got < 0 || got >= len(errs) {
		t.Fatalf("search returned out-of-range %d", got)
	}
	if calls > 100 {
		t.Errorf("search did not terminate promptly (%d calls)", calls)
	}
}

func TestReconstructionErrorHelper(t *testing.T) {
	rows := testRows(20, 2, 64)
	cfg := Config{TotalBand: 64, MBase: 32, Metric: metrics.SSE}
	comp, _ := NewCompressor(cfg)
	tr, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	x := comp.BaseSignal()
	got := ReconstructionError(metrics.SSE, x, tr, rows)
	if math.Abs(got-tr.TotalErr) > 1e-6*(1+tr.TotalErr) {
		t.Errorf("ReconstructionError = %v, want %v", got, tr.TotalErr)
	}
}

func TestBuilderString(t *testing.T) {
	for b, want := range map[BaseBuilder]string{
		BuilderGetBase:       "getbase",
		BuilderGetBaseLowMem: "getbase-lowmem",
		BuilderSVD:           "svd",
		BuilderDCT:           "dct",
		BuilderNone:          "none",
		BaseBuilder(9):       "core.BaseBuilder(9)",
	} {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(b), got, want)
		}
	}
}

func TestDecoderRejectsMalformedIntervals(t *testing.T) {
	rows := testRows(50, 2, 64)
	cfg := Config{TotalBand: 80, MBase: 32, Metric: metrics.SSE}
	comp, _ := NewCompressor(cfg)
	tr, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	// A shift beyond the base signal must be rejected, not panic.
	forged := *tr
	forged.Intervals = append([]interval.Interval(nil), tr.Intervals...)
	forged.Intervals[0].Shift = 1 << 20
	dec, _ := NewDecoder(cfg)
	if _, err := dec.Decode(&forged); err == nil {
		t.Error("huge shift accepted")
	}
	// A start beyond the batch must be rejected too.
	dec2, _ := NewDecoder(cfg)
	forged2 := *tr
	forged2.Intervals = append([]interval.Interval(nil), tr.Intervals...)
	forged2.Intervals[len(forged2.Intervals)-1].Start = 2 * 64 * 10
	if _, err := dec2.Decode(&forged2); err == nil {
		t.Error("out-of-range start accepted")
	}
	// The genuine transmission still decodes on a fresh decoder.
	dec3, _ := NewDecoder(cfg)
	if _, err := dec3.Decode(tr); err != nil {
		t.Fatalf("genuine transmission rejected: %v", err)
	}
}
