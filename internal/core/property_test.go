package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

// TestEncodeInvariantsProperty drives random shapes, budgets, buffer sizes,
// builders and metrics through the full encode/decode pipeline and checks
// the system-level invariants:
//  1. the transmission never exceeds TotalBand,
//  2. the decoder reproduces the sender-side error exactly,
//  3. base-signal replicas agree after every transmission,
//  4. the base signal never exceeds M_base.
func TestEncodeInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw, ratioRaw, mbaseRaw, builderRaw, metricRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%3) + 1
		m := (int(mRaw%6) + 2) * 32 // 64..224
		ratio := 0.08 + float64(ratioRaw%5)*0.05
		band := int(ratio * float64(n*m))
		builder := BaseBuilder(builderRaw % 5)
		metric := metrics.Kind(metricRaw % 3)
		if builder == BuilderSVD || builder == BuilderDCT || builder == BuilderGetBaseLowMem {
			// Keep the property-run fast: these builders are covered by
			// dedicated tests; here rotate among the common three.
			builder = BuilderGetBase
		}
		if metric == metrics.MaxAbs && m > 128 {
			m = 128 // minimax fits are the slow path
		}
		mbase := (int(mbaseRaw%4) + 1) * 32

		minCost := 4 * n
		if builder == BuilderNone {
			minCost = 3 * n
		}
		if band < minCost {
			band = minCost
		}

		rows := make([]timeseries.Series, n)
		for r := range rows {
			rows[r] = make(timeseries.Series, m)
			for i := range rows[r] {
				rows[r][i] = math.Sin(float64(i)/(3+float64(r)))*10 + rng.NormFloat64()
			}
		}

		cfg := Config{TotalBand: band, MBase: mbase, Metric: metric, Builder: builder}
		comp, err := NewCompressor(cfg)
		if err != nil {
			return false
		}
		dec, err := NewDecoder(cfg)
		if err != nil {
			return false
		}
		for round := 0; round < 2; round++ {
			tr, err := comp.Encode(rows)
			if err != nil {
				return false
			}
			if tr.Cost > band {
				return false
			}
			got, err := dec.Decode(tr)
			if err != nil {
				return false
			}
			y := timeseries.Concat(rows...)
			yh := timeseries.Concat(got...)
			if e := metrics.Eval(metric, y, yh); math.Abs(e-tr.TotalErr) > 1e-6*(1+tr.TotalErr) {
				return false
			}
			if !timeseries.Equal(comp.BaseSignal(), dec.BaseSignal(), 0) {
				return false
			}
			if builder != BuilderDCT && comp.Pool() != nil && comp.Pool().Size() > mbase {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
