package core

import (
	"math"
	"math/rand"
	"testing"

	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

// regimeRows generates rows dominated by one of several distinct periodic
// "regimes", so that switching regimes forces new features into the base
// signal and — with a small M_base — evictions of old ones.
func regimeRows(regime int, seed int64, n, m int) []timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	periods := []float64{5.1, 11.7, 23.3, 41.9}
	p := periods[regime%len(periods)]
	rows := make([]timeseries.Series, n)
	for r := range rows {
		a := 1 + float64(r)
		rows[r] = make(timeseries.Series, m)
		for i := range rows[r] {
			rows[r][i] = a*math.Sin(float64(i)/p)*10 + 0.05*rng.NormFloat64()
		}
	}
	return rows
}

// TestEvictionKeepsReplicaInSync drives the full pipeline through regime
// changes with a base-signal buffer so small that LFU evictions must
// happen, and checks that (a) evictions really occur, (b) the decoder's
// replica never diverges, and (c) every chunk still decodes to the
// sender-side error.
func TestEvictionKeepsReplicaInSync(t *testing.T) {
	const (
		n, m  = 2, 256
		w     = 22 // ⌊√512⌋
		mbase = 3 * w
	)
	cfg := Config{TotalBand: 160, MBase: mbase, Metric: metrics.SSE}
	// Force one insertion per transmission: 12 rounds into a 3-slot pool
	// guarantees the LFU replacement path runs many times.
	comp, err := NewCompressorForceIns(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}

	totalInserted := 0
	for round := 0; round < 12; round++ {
		rows := regimeRows(round%4, int64(round), n, m)
		tr, err := comp.Encode(rows)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		totalInserted += tr.Ins()
		got, err := dec.Decode(tr)
		if err != nil {
			t.Fatalf("round %d decode: %v", round, err)
		}
		if !timeseries.Equal(comp.BaseSignal(), dec.BaseSignal(), 0) {
			t.Fatalf("round %d: base replica diverged after eviction", round)
		}
		y := timeseries.Concat(rows...)
		yh := timeseries.Concat(got...)
		if e := metrics.SumSquared(y, yh); math.Abs(e-tr.TotalErr) > 1e-6*(1+tr.TotalErr) {
			t.Fatalf("round %d: decoder err %v, sender err %v", round, e, tr.TotalErr)
		}
	}
	// With 3 slots and 4 regimes revisited repeatedly, insertions must
	// exceed the pool capacity — i.e. evictions actually happened.
	if totalInserted <= mbase/w {
		t.Errorf("only %d base intervals inserted over 12 regime changes — eviction path never exercised",
			totalInserted)
	}
	if got := comp.Pool().NumIntervals(); got > mbase/w {
		t.Errorf("pool holds %d intervals, capacity %d", got, mbase/w)
	}
}

// TestEvictionRecoversQuality checks the adaptive angle: after a regime
// change the base signal re-learns the new features and the error returns
// to (near) its pre-change level.
func TestEvictionRecoversQuality(t *testing.T) {
	cfg := Config{TotalBand: 200, MBase: 66, Metric: metrics.SSE}
	comp, err := NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(regime, round int) float64 {
		rows := regimeRows(regime, int64(round), 2, 256)
		tr, err := comp.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		return tr.TotalErr
	}
	// Settle into regime 0.
	var settled float64
	for i := 0; i < 3; i++ {
		settled = errAt(0, i)
	}
	// Switch to regime 2 and let the base adapt.
	first := errAt(2, 100)
	var recovered float64
	for i := 1; i < 4; i++ {
		recovered = errAt(2, 100+i)
	}
	if recovered > first {
		t.Errorf("error did not recover after regime change: first %v, settled-at %v", first, recovered)
	}
	_ = settled // the absolute levels differ across regimes; recovery is the claim
}
