package core_test

import (
	"fmt"
	"math"

	"sbr/internal/core"
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

// Example shows the minimal compressor/decoder round trip: two correlated
// quantities compressed to 10 % of their size and reconstructed at the
// base station.
func Example() {
	// Two quantities sharing one periodic pattern.
	const m = 512
	rows := make([]timeseries.Series, 2)
	for q := range rows {
		rows[q] = make(timeseries.Series, m)
		for i := range rows[q] {
			rows[q][i] = float64(q+1) * math.Sin(2*math.Pi*float64(i)/64)
		}
	}

	cfg := core.Config{
		TotalBand: 2 * m / 5, // the bandwidth budget, in values
		MBase:     2 * m / 8, // the sensor's base-signal buffer
	}
	comp, _ := core.NewCompressor(cfg)
	dec, _ := core.NewDecoder(cfg)

	t, _ := comp.Encode(rows)
	approx, _ := dec.Decode(t)

	mse := metrics.MeanSquared(timeseries.Concat(rows...), timeseries.Concat(approx...))
	fmt.Printf("sent %d of %d values (%d base intervals), per-value MSE below 1e-12: %v\n",
		t.Cost, 2*m, t.Ins(), mse < 1e-12)
	// Output:
	// sent 201 of 1024 values (1 base intervals), per-value MSE below 1e-12: true
}

// ExampleAdaptiveCompressor demonstrates the Section 4.4 scheduler: after
// the base signal is populated, batches take the cheap shortcut path.
func ExampleAdaptiveCompressor() {
	rows := make([]timeseries.Series, 2)
	for q := range rows {
		rows[q] = make(timeseries.Series, 256)
		for i := range rows[q] {
			rows[q][i] = float64(q+1) * math.Cos(float64(i)/9)
		}
	}
	cfg := core.Config{TotalBand: 64, MBase: 64, Metric: metrics.SSE}
	a, _ := core.NewAdaptiveCompressor(cfg, core.AdaptivePolicy{MinFullRuns: 2})
	for i := 0; i < 5; i++ {
		_, full, _ := a.Encode(rows)
		fmt.Printf("batch %d full=%v\n", i, full)
	}
	// Output:
	// batch 0 full=true
	// batch 1 full=true
	// batch 2 full=false
	// batch 3 full=false
	// batch 4 full=false
}
