package core

import "sbr/internal/interval"

// CompressionReport is the per-transmission SBR telemetry record: the
// quantities the paper's Section 6 evaluation plots, extracted from one
// compressed batch so the instrumentation layer (internal/obs) can
// aggregate them across a live stream. Both ends of the wire produce
// one — the sensor from its Compressor (which also knows how hard the
// Algorithm 7 insert-count search worked), the base station from each
// decoded Transmission via ReportTransmission.
type CompressionReport struct {
	Seq  int // transmission sequence number
	Cost int // bandwidth consumed, in values

	Intervals     int // piece-wise regression records shipped
	BaseInserts   int // base intervals inserted this transmission (Table 6)
	BaseHits      int // intervals mapped onto a base-signal segment
	RampIntervals int // intervals that fell back to plain regression

	// SearchEvals counts the CalculateError evaluations the Algorithm 7
	// binary search spent choosing the insert count. Sender-side only:
	// the search never leaves the sensor, so reports derived from a
	// received Transmission carry zero here.
	SearchEvals int

	// AchievedError is the sender-side approximation error under the
	// active metric; ErrBound the §4.5 guaranteed maximum absolute error
	// (zero unless the stream runs under metrics.MaxAbs).
	AchievedError float64
	ErrBound      float64

	// Encode fast-path telemetry, sender-side only (like SearchEvals):
	// how the insert-count search's cross-probe scan cache fared.
	// CacheHits/CacheMisses count BestMap calls served from / creating a
	// cache entry; TailShifts counts the shift positions actually scanned
	// incrementally on top of cached coverage (the redundant work a
	// non-incremental search would have repeated); ScanWorkers records the
	// scan engine's worker cap during the Encode. All zero when the Encode
	// ran without a search (forced or zero-candidate insert counts).
	CacheHits   int
	CacheMisses int
	TailShifts  int
	ScanWorkers int
}

// ReportTransmission derives the telemetry record of one transmission —
// everything except the sender-private search effort.
func ReportTransmission(t *Transmission) CompressionReport {
	rep := CompressionReport{
		Seq:           t.Seq,
		Cost:          t.Cost,
		Intervals:     len(t.Intervals),
		BaseInserts:   t.Ins(),
		AchievedError: t.TotalErr,
		ErrBound:      t.ErrBound,
	}
	for _, iv := range t.Intervals {
		if iv.Shift == interval.RampShift {
			rep.RampIntervals++
		} else {
			rep.BaseHits++
		}
	}
	return rep
}

// LastReport returns the telemetry record of the most recent Encode,
// including the insert-count search effort. The zero report is returned
// before the first batch.
func (c *Compressor) LastReport() CompressionReport { return c.lastReport }
