package core

import (
	"fmt"

	"sbr/internal/base"
	"sbr/internal/interval"
	"sbr/internal/metrics"
	"sbr/internal/regression"
	"sbr/internal/timeseries"
)

// Transmission is one compressed batch: everything the sensor ships to the
// base station for the latest N×M values, within Config.TotalBand values
// (Algorithm 5 line 15 and Section 3.2).
type Transmission struct {
	Seq     int // 0-based transmission number
	N, M, W int

	// BaseIntervals are the newly inserted base-signal features (W values
	// each) and Placements their final slots in the base-signal buffer.
	BaseIntervals []timeseries.Series
	Placements    []base.Placement

	// Intervals are the piece-wise regression records, sorted by Start.
	Intervals []interval.Interval

	// Cost is the bandwidth consumed, in values.
	Cost int

	// TotalErr is the sender-side approximation error under the metric the
	// compressor ran with.
	TotalErr float64

	// ErrBound is the guaranteed maximum absolute error of the chunk's
	// reconstruction, populated when the compressor runs under the MaxAbs
	// metric (Section 4.5: the bound ships with the approximate signal).
	// Zero under the other metrics, whose totals are not per-value bounds.
	ErrBound float64
}

// Ins returns the number of inserted base intervals.
func (t *Transmission) Ins() int { return len(t.BaseIntervals) }

// Bounded reports whether the transmission ships a §4.5 guaranteed
// maximum-absolute error bound — the signal the wire format flags and the
// base station's aggregate index folds into query answers.
func (t *Transmission) Bounded() bool { return t.ErrBound != 0 }

// Compressor runs the SBR algorithm over successive batches of sensor
// measurements, maintaining the base-signal pool between transmissions.
// It is not safe for concurrent use.
type Compressor struct {
	cfg    Config
	fitter regression.Fitter

	w    int // base-interval width, fixed at the first batch
	n    int // batch size N×M, fixed at the first batch
	pool *base.Pool
	dctX timeseries.Series // fixed cosine base, BuilderDCT only
	seq  int

	searchEvals int               // CalculateError evaluations of the last Encode
	lastReport  CompressionReport // telemetry record of the last Encode

	// Encode fast-path scratch state, reused across batches: the
	// concatenated search signal, its prefix sums, and the cache of the
	// last insert-count search (nil when the last Encode did not search).
	sigScratch timeseries.Series
	yScratch   timeseries.Series
	px         timeseries.Prefix
	mapper     *interval.Mapper
	lastCache  *interval.SearchCache

	met encodeMetrics // obs instruments, all nil until Instrument
}

// NewCompressor validates the configuration and creates a compressor.
// The zero value of Config.ForceIns means "search"; callers who want to
// pin the insert count set ForceIns explicitly via ConfigWithForceIns or by
// building the Config by hand with ForceIns >= 0.
func NewCompressor(cfg Config) (*Compressor, error) {
	if cfg.ForceIns == 0 && !cfg.SkipBaseUpdate {
		// Distinguish "unset" from "force zero inserts": the constructor
		// treats a zero value as AutoIns, matching the paper's default.
		cfg.ForceIns = AutoIns
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Compressor{
		cfg:    cfg,
		fitter: regression.Fitter{Kind: cfg.Metric, Sanity: cfg.Sanity},
	}, nil
}

// NewCompressorForceIns creates a compressor whose every transmission
// inserts exactly min(ins, maxIns) base intervals instead of searching —
// the manual sweep of Figure 6.
func NewCompressorForceIns(cfg Config, ins int) (*Compressor, error) {
	if ins < 0 {
		return nil, fmt.Errorf("core: negative forced insert count %d", ins)
	}
	cfg.ForceIns = ins
	c, err := NewCompressor(cfg)
	if err != nil {
		return nil, err
	}
	c.cfg.ForceIns = ins // NewCompressor may have reset 0 to AutoIns
	return c, nil
}

// Config returns the active configuration.
func (c *Compressor) Config() Config { return c.cfg }

// SetErrorTarget adjusts the Section 4.5 error budget applied to
// subsequent Encode calls. The target only steers interval splitting on
// the sender; it is not part of the replicated decoder state, so sender
// and receiver stay in sync no matter how it changes between batches.
// The self-monitoring sampler uses this to scale each window's budget to
// that window's signal range instead of fixing one absolute number for
// the life of the stream.
func (c *Compressor) SetErrorTarget(target float64) { c.cfg.ErrorTarget = target }

// W returns the base-interval width, or 0 before the first batch.
func (c *Compressor) W() int { return c.w }

// BaseSignal returns a copy of the current base signal.
func (c *Compressor) BaseSignal() timeseries.Series {
	if c.cfg.Builder == BuilderDCT {
		return c.dctX.Clone()
	}
	if c.pool == nil {
		return nil
	}
	return c.pool.Signal()
}

// Pool exposes the base-signal pool for diagnostics; nil before the first
// batch or under BuilderDCT/BuilderNone.
func (c *Compressor) Pool() *base.Pool { return c.pool }

// recordCost returns the per-interval transmission cost for the builder
// and encoding: the shift pointer is elided without a base signal, and the
// quadratic extension adds one coefficient.
func (c *Compressor) recordCost() int {
	cost := interval.ValuesPerInterval
	if c.cfg.Builder == BuilderNone {
		cost = interval.ValuesPerRampInterval
	}
	if c.cfg.Quadratic {
		cost++
	}
	return cost
}

// EncodeShortcut is Encode with the Section 4.4 shortcut forced for this
// one batch: the base-signal update phase (GetBase plus the insert-count
// search, by far the most expensive part of SBR) is skipped and the whole
// bandwidth goes to interval records. Sensors use it between the periodic
// full runs that refresh the base signal.
func (c *Compressor) EncodeShortcut(rows []timeseries.Series) (*Transmission, error) {
	saved := c.cfg.SkipBaseUpdate
	c.cfg.SkipBaseUpdate = true
	t, err := c.Encode(rows)
	c.cfg.SkipBaseUpdate = saved
	return t, err
}

// Encode compresses one batch of rows (each of equal length M) into a
// Transmission, updating the base-signal pool exactly as the base station's
// Decoder will replay it. Every batch after the first must have the same
// shape.
func (c *Compressor) Encode(rows []timeseries.Series) (*Transmission, error) {
	n, m, err := shape(rows)
	if err != nil {
		return nil, err
	}
	if c.w == 0 {
		c.w = c.cfg.widthFor(n * m)
		c.n = n * m
		if c.cfg.Builder != BuilderDCT && c.cfg.Builder != BuilderNone {
			c.pool = base.NewPool(c.cfg.MBase, c.w)
		}
		if c.cfg.Builder == BuilderDCT {
			maxIvs := c.cfg.MBase / c.w
			c.dctX = timeseries.Concat(base.GetBaseDCT(c.w, maxIvs)...)
		}
	} else if n*m != c.n {
		return nil, fmt.Errorf("core: batch size %d differs from first batch %d", n*m, c.n)
	}
	minCost := c.recordCost() * n
	if c.cfg.TotalBand < minCost {
		return nil, fmt.Errorf("core: TotalBand %d cannot cover %d rows (need >= %d values)",
			c.cfg.TotalBand, n, minCost)
	}

	// Concatenate into a reused scratch: nothing built from the batch holds
	// a reference into y once Encode returns (intervals store coefficients
	// only), so the buffer is safe to recycle next batch.
	c.yScratch = c.yScratch[:0]
	for _, row := range rows {
		c.yScratch = append(c.yScratch, row...)
	}
	y := c.yScratch
	t := &Transmission{Seq: c.seq, N: n, M: m, W: c.w}
	c.seq++
	c.searchEvals = 0
	c.lastCache = nil

	switch c.cfg.Builder {
	case BuilderDCT:
		list := c.getIntervals(c.dctX, y, n, m, c.cfg.TotalBand)
		t.Intervals = list
		t.Cost = len(list) * c.recordCost()
	case BuilderNone:
		list := c.getIntervals(nil, y, n, m, c.cfg.TotalBand)
		t.Intervals = list
		t.Cost = len(list) * c.recordCost()
	default:
		if err := c.encodeWithPool(rows, y, n, m, t); err != nil {
			return nil, err
		}
	}
	t.TotalErr = interval.TotalError(c.cfg.Metric, t.Intervals)
	if c.cfg.Metric == metrics.MaxAbs {
		t.ErrBound = t.TotalErr
	}
	if t.Cost > c.cfg.TotalBand {
		return nil, fmt.Errorf("core: internal error: cost %d exceeds TotalBand %d",
			t.Cost, c.cfg.TotalBand)
	}
	c.lastReport = ReportTransmission(t)
	c.lastReport.SearchEvals = c.searchEvals
	hits, misses, tail := c.lastCache.Stats()
	c.lastReport.CacheHits = int(hits)
	c.lastReport.CacheMisses = int(misses)
	c.lastReport.TailShifts = int(tail)
	c.lastReport.ScanWorkers = interval.ScanWorkers()
	c.met.observe(&c.lastReport)
	return t, nil
}

// encodeWithPool runs the full Algorithm 5 path: select candidate base
// intervals, search for the best insert count, approximate, and commit the
// pool update.
func (c *Compressor) encodeWithPool(rows []timeseries.Series, y timeseries.Series,
	n, m int, t *Transmission) error {

	w := c.w
	var candidates []timeseries.Series
	if !c.cfg.SkipBaseUpdate {
		maxIns := c.maxIns(n)
		switch c.cfg.Builder {
		case BuilderGetBase:
			candidates = base.Signals(base.GetBase(rows, w, maxIns, c.fitter))
		case BuilderGetBaseLowMem:
			candidates = base.Signals(base.GetBaseLowMem(rows, w, maxIns, c.fitter))
		case BuilderGetBaseNoAdjust:
			candidates = base.Signals(base.GetBaseNoAdjust(rows, w, maxIns, c.fitter))
		case BuilderSVD:
			candidates = base.GetBaseSVD(rows, w, maxIns)
		}
	}

	st := c.newSearch(candidates, y, n, m)
	ins := c.chooseIns(st, len(candidates))
	inserted := candidates[:ins]

	// The winning probe's interval list is memoised in the search state, so
	// the final approximation is free when the search already evaluated it.
	list := c.searchList(st, ins)

	counts := c.pool.UseCounts(ins)
	for _, iv := range list {
		if iv.Shift != interval.RampShift {
			c.pool.CountUse(counts, iv.Shift, iv.Length)
		}
	}
	placements, err := c.pool.Commit(inserted, counts)
	if err != nil {
		return err
	}

	t.BaseIntervals = make([]timeseries.Series, ins)
	for i, iv := range inserted {
		t.BaseIntervals[i] = iv.Clone()
	}
	t.Placements = placements
	t.Intervals = list
	t.Cost = ins*(w+1) + len(list)*c.recordCost()
	return nil
}

// maxIns computes the cap on inserted base intervals: the paper's
// min(M_base, TotalBand)/W, further limited so the remaining budget can
// still carry at least one record per row.
func (c *Compressor) maxIns(n int) int {
	w := c.w
	maxIns := min(c.cfg.MBase, c.cfg.TotalBand) / w
	if limit := (c.cfg.TotalBand - c.recordCost()*n) / (w + 1); limit < maxIns {
		maxIns = limit
	}
	if maxIns < 0 {
		maxIns = 0
	}
	return maxIns
}

// searchState is the shared context of one insert-count search: the full
// candidate signal X₀‖candidates (built once into the compressor's scratch
// buffer), its prefix sums, one Mapper whose X is resliced per probe, the
// cross-probe scan cache, and the memoised per-probe interval lists and
// errors (Algorithm 6).
//
// Every probe pos approximates the batch against the prefix
// xFull[:prefixLen+pos·W]. Nothing mutates xFull or the prefix sums between
// probes, which is what makes the scan cache and the shared prefix sums
// bit-exact: a fit computed at any probe is the fit every other probe would
// compute.
type searchState struct {
	xFull     timeseries.Series
	prefixLen int // length of the stored pool signal X₀
	mapper    *interval.Mapper
	cache     *interval.SearchCache
	y         timeseries.Series
	n, m      int

	lists [][]interval.Interval
	errs  []float64
	known []bool
}

// newSearch builds the search state for one Encode, reusing the
// compressor's scratch signal, prefix sums and mapper across batches. The
// scan cache is installed only when an actual Algorithm 7 search will run
// (AutoIns with more than one candidate); single-probe encodes would pay
// the bookkeeping without ever re-reading an entry.
func (c *Compressor) newSearch(candidates []timeseries.Series, y timeseries.Series, n, m int) *searchState {
	c.sigScratch = c.pool.AppendSignal(c.sigScratch[:0], candidates)
	c.px.Reset(c.sigScratch)
	if c.mapper == nil {
		c.mapper = interval.NewMapperWithPrefix(nil, c.w, c.fitter, &c.px)
		c.mapper.Quadratic = c.cfg.Quadratic
	}
	c.mapper.Cache = nil
	st := &searchState{
		xFull:     c.sigScratch,
		prefixLen: c.pool.Size(),
		mapper:    c.mapper,
		y:         y,
		n:         n,
		m:         m,
		lists:     make([][]interval.Interval, len(candidates)+1),
		errs:      make([]float64, len(candidates)+1),
		known:     make([]bool, len(candidates)+1),
	}
	if !c.cfg.SkipBaseUpdate && c.cfg.ForceIns == AutoIns && len(candidates) > 1 {
		st.cache = interval.NewSearchCache()
		st.mapper.Cache = st.cache
	}
	c.lastCache = st.cache
	return st
}

// searchList returns the interval list of probe pos (insert the first pos
// candidates), computing and memoising it on first use. This is
// CalculateError's expensive half; the error itself lands in st.errs.
func (c *Compressor) searchList(st *searchState, pos int) []interval.Interval {
	if !st.known[pos] {
		x := st.xFull[:st.prefixLen+pos*c.w]
		st.mapper.X = x
		st.mapper.DisableRamp = c.cfg.DisableRampFallback && len(x) > 0
		budget := c.cfg.TotalBand - pos*(c.w+1)
		st.lists[pos] = interval.GetIntervals(st.mapper, st.y, st.n, st.m, budget, interval.Options{
			ErrorTarget:     c.cfg.ErrorTarget,
			ValuesPerRecord: c.recordCost(),
		})
		st.errs[pos] = interval.TotalError(c.cfg.Metric, st.lists[pos])
		st.known[pos] = true
	}
	return st.lists[pos]
}

// chooseIns picks how many of the candidate base intervals to insert:
// a forced count, zero in shortcut mode, or the binary search of
// Algorithm 7 with memoised CalculateError evaluations (Algorithm 6).
func (c *Compressor) chooseIns(st *searchState, maxIns int) int {
	if c.cfg.SkipBaseUpdate || maxIns == 0 {
		return 0
	}
	if c.cfg.ForceIns >= 0 {
		return min(c.cfg.ForceIns, maxIns)
	}

	calc := func(pos int) float64 { // CalculateError, memoised
		if !st.known[pos] {
			c.searchEvals++
			c.searchList(st, pos)
		}
		return st.errs[pos]
	}
	return search(calc, 0, maxIns)
}

// search is Algorithm 7: a binary search over the (assumed unimodal) error
// curve Errors[0..end], returning the insert count with the locally minimal
// error.
func search(calc func(int) float64, start, end int) int {
	for start < end {
		middle := (start + end) / 2
		if calc(middle) > calc(start) {
			if calc(end) > calc(start) {
				end = middle
			} else {
				start = middle
			}
			continue
		}
		if calc(middle+1) < calc(middle) {
			start = middle + 1
		} else {
			end = middle
		}
	}
	return start
}

// getIntervals wraps interval.GetIntervals with the compressor's fitter,
// ramp-fallback switch and record cost.
func (c *Compressor) getIntervals(x, y timeseries.Series, n, m, budget int) []interval.Interval {
	mapper := interval.NewMapper(x, c.w, c.fitter)
	mapper.DisableRamp = c.cfg.DisableRampFallback && len(x) > 0
	mapper.Quadratic = c.cfg.Quadratic
	return interval.GetIntervals(mapper, y, n, m, budget, interval.Options{
		ErrorTarget:     c.cfg.ErrorTarget,
		ValuesPerRecord: c.recordCost(),
	})
}

// shape validates that all rows have the same positive length and returns
// (N, M).
func shape(rows []timeseries.Series) (int, int, error) {
	if len(rows) == 0 {
		return 0, 0, fmt.Errorf("core: no rows to encode")
	}
	m := len(rows[0])
	if m == 0 {
		return 0, 0, fmt.Errorf("core: empty rows")
	}
	for i, r := range rows[1:] {
		if len(r) != m {
			return 0, 0, fmt.Errorf("core: row %d has length %d, want %d", i+1, len(r), m)
		}
	}
	return len(rows), m, nil
}

// ReconstructionError evaluates a transmission against the original rows
// under the given metric, by decoding it against the supplied base signal
// (the pre-eviction X the intervals were fitted against).
func ReconstructionError(kind metrics.Kind, x timeseries.Series, t *Transmission,
	rows []timeseries.Series) float64 {
	y := timeseries.Concat(rows...)
	approx := interval.Reconstruct(x, t.Intervals, len(y))
	return metrics.Eval(kind, y, approx)
}
