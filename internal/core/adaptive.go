package core

import (
	"fmt"

	"sbr/internal/timeseries"
)

// AdaptivePolicy configures when an AdaptiveCompressor runs the full SBR
// algorithm (base-signal update included) instead of the cheap
// GetIntervals-only shortcut. Section 4.4 of the paper observes that after
// the first few transmissions the base signal is rarely updated, so
// constrained sensors should "perform [the full] execution only
// periodically (i.e., when we notice a degradation in the quality of the
// approximation)" — this type is that scheduler.
type AdaptivePolicy struct {
	// MinFullRuns is the number of initial transmissions that always run
	// the full algorithm, populating the base signal. Default 2 (the
	// paper's Table 6 shows most insertions happen in the first two
	// transmissions).
	MinFullRuns int

	// DegradeFactor triggers a full run when the current shortcut error
	// exceeds DegradeFactor × (the reference error recorded after the last
	// full run). Default 1.5.
	DegradeFactor float64

	// Every forces a full run after this many consecutive shortcut
	// transmissions regardless of quality, bounding staleness. Zero
	// disables the periodic trigger.
	Every int
}

func (p AdaptivePolicy) withDefaults() AdaptivePolicy {
	if p.MinFullRuns <= 0 {
		p.MinFullRuns = 2
	}
	if p.DegradeFactor <= 1 {
		p.DegradeFactor = 1.5
	}
	return p
}

// AdaptiveCompressor wraps a Compressor with the Section 4.4 scheduling:
// full SBR runs only while the base signal is being populated or when the
// approximation quality degrades; all other batches take the linear-time
// shortcut path. The produced transmission stream is decodable by a plain
// Decoder — scheduling is invisible to the receiver.
type AdaptiveCompressor struct {
	comp   *Compressor
	policy AdaptivePolicy

	refErr        float64 // error right after the last full run
	sinceFull     int
	transmissions int
	fullRuns      int
	degraded      bool // set when the last shortcut error broke the threshold
}

// NewAdaptiveCompressor creates an adaptive compressor over cfg.
func NewAdaptiveCompressor(cfg Config, policy AdaptivePolicy) (*AdaptiveCompressor, error) {
	comp, err := NewCompressor(cfg)
	if err != nil {
		return nil, err
	}
	return &AdaptiveCompressor{comp: comp, policy: policy.withDefaults()}, nil
}

// Compressor exposes the underlying compressor (base signal, pool, config).
func (a *AdaptiveCompressor) Compressor() *Compressor { return a.comp }

// FullRuns returns how many transmissions ran the full algorithm so far.
func (a *AdaptiveCompressor) FullRuns() int { return a.fullRuns }

// Transmissions returns the total number of encoded batches.
func (a *AdaptiveCompressor) Transmissions() int { return a.transmissions }

// Encode compresses one batch, choosing between the full algorithm and the
// shortcut according to the policy. The returned bool reports whether the
// full algorithm ran.
func (a *AdaptiveCompressor) Encode(rows []timeseries.Series) (*Transmission, bool, error) {
	runFull := a.shouldRunFull(rows)
	var (
		t   *Transmission
		err error
	)
	if runFull {
		t, err = a.comp.Encode(rows)
	} else {
		t, err = a.comp.EncodeShortcut(rows)
	}
	if err != nil {
		return nil, false, fmt.Errorf("core: adaptive encode: %w", err)
	}
	a.transmissions++
	if runFull {
		a.fullRuns++
		a.sinceFull = 0
		a.refErr = t.TotalErr
		a.degraded = false
	} else {
		a.sinceFull++
		// Degradation latch: if this shortcut transmission's error broke
		// the threshold, the *next* batch runs the full algorithm. The
		// sensor cannot know a batch's error before encoding it, so the
		// trigger necessarily lags by one transmission.
		a.degraded = a.refErr > 0 && t.TotalErr > a.policy.DegradeFactor*a.refErr
	}
	return t, runFull, nil
}

// shouldRunFull implements the trigger rules: populate the base signal
// first, then full runs only on a periodic schedule or after a detected
// quality degradation (Section 4.4).
func (a *AdaptiveCompressor) shouldRunFull([]timeseries.Series) bool {
	if a.transmissions < a.policy.MinFullRuns {
		return true
	}
	if a.policy.Every > 0 && a.sinceFull >= a.policy.Every {
		return true
	}
	return a.degraded
}
