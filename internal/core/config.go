// Package core implements the Self-Based Regression (SBR) algorithm of the
// paper (Algorithms 5–7): per-batch construction and maintenance of the
// base signal, the binary search that balances base-signal growth against
// interval budget, transmission assembly under a strict bandwidth bound,
// and the receiver-side decoder that reconstructs the approximate series
// and maintains the base-signal replica.
package core

import (
	"errors"
	"fmt"
	"math"

	"sbr/internal/metrics"
)

// BaseBuilder selects how new base-signal features are generated.
type BaseBuilder int

const (
	// BuilderGetBase is the paper's GetBase greedy selection (Algorithm 4).
	BuilderGetBase BaseBuilder = iota
	// BuilderGetBaseLowMem is the O(√n)-space GetBase variant.
	BuilderGetBaseLowMem
	// BuilderSVD uses the top right-singular-vectors construction of the
	// Appendix. Like GetBase intervals, these must be shipped and stored.
	BuilderSVD
	// BuilderDCT uses the fixed cosine base of the Appendix. The intervals
	// are computable on the fly, so they consume neither bandwidth nor
	// sensor memory; only the first transmission materialises them.
	BuilderDCT
	// BuilderNone disables the base signal entirely: every interval falls
	// back to plain linear regression (3 values per record).
	BuilderNone
	// BuilderGetBaseNoAdjust is the ablation of GetBase's benefit
	// adjustment (Figure 4): top-maxIns by initial benefit, no
	// re-discounting. Exists for the ablation benchmarks.
	BuilderGetBaseNoAdjust
)

// String implements fmt.Stringer.
func (b BaseBuilder) String() string {
	switch b {
	case BuilderGetBase:
		return "getbase"
	case BuilderGetBaseLowMem:
		return "getbase-lowmem"
	case BuilderSVD:
		return "svd"
	case BuilderDCT:
		return "dct"
	case BuilderNone:
		return "none"
	case BuilderGetBaseNoAdjust:
		return "getbase-noadjust"
	default:
		return fmt.Sprintf("core.BaseBuilder(%d)", int(b))
	}
}

// AutoIns asks SBR to pick the number of inserted base intervals with the
// binary search of Algorithm 7 (the default).
const AutoIns = -1

// Config carries the two user-supplied parameters of the paper
// (Section 3.3) plus the documented extensions and experiment switches.
type Config struct {
	// TotalBand is the bandwidth constraint: the exact number of values
	// each transmission may carry, covering both inserted base intervals
	// (W+1 values each) and interval records (4 values each).
	TotalBand int

	// MBase is the buffer reserved for base-signal values on the sensor.
	MBase int

	// Metric selects the error metric the approximation minimises.
	// Defaults to sum squared error.
	Metric metrics.Kind

	// Sanity bounds relative-error denominators (metrics.DefaultSanity
	// when zero).
	Sanity float64

	// Builder selects the base-signal construction. Default BuilderGetBase.
	Builder BaseBuilder

	// SkipBaseUpdate enables the shortcut of Section 4.4: the expensive
	// GetBase/Search phase is skipped and the existing base signal is used
	// as is, leaving the whole bandwidth to interval records.
	SkipBaseUpdate bool

	// DisableRampFallback removes plain linear regression from BestMap's
	// candidate set, as in the Section 5.2 base-signal comparison.
	DisableRampFallback bool

	// ErrorTarget, when positive, stops interval splitting early once the
	// total error reaches the target (Section 4.5): the transmission may
	// then be smaller than TotalBand.
	ErrorTarget float64

	// ForceIns fixes the number of inserted base intervals instead of
	// searching (Figure 6's manual sweep). AutoIns (the default, -1 via
	// NewCompressor) enables the search.
	ForceIns int

	// W overrides the base-interval width. Zero means the paper's
	// W = ⌊√(N·M)⌋, fixed at the first transmission.
	W int

	// Quadratic enables the non-linear encoding extension the paper leaves
	// as future work (Section 6): intervals are projected onto the base
	// signal as Y' = C·X² + A·X + B, at a record cost of 5 values instead
	// of 4 (4 instead of 3 without a base signal). Only supported under
	// the SSE metric.
	Quadratic bool
}

// Validate checks the configuration for structural errors.
func (c *Config) Validate() error {
	if c.TotalBand <= 0 {
		return errors.New("core: TotalBand must be positive")
	}
	if c.MBase < 0 {
		return errors.New("core: MBase must be non-negative")
	}
	if c.W < 0 {
		return errors.New("core: W must be non-negative")
	}
	if c.ForceIns < AutoIns {
		return fmt.Errorf("core: ForceIns must be >= %d", AutoIns)
	}
	if c.Quadratic && c.Metric != metrics.SSE {
		return errors.New("core: quadratic encoding is only supported under the SSE metric")
	}
	return nil
}

// widthFor returns the base-interval width for a batch of n values:
// the configured override, or ⌊√n⌋.
func (c *Config) widthFor(n int) int {
	if c.W > 0 {
		return c.W
	}
	w := int(math.Sqrt(float64(n)))
	if w < 1 {
		w = 1
	}
	return w
}
