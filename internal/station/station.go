// Package station implements the base-station side of the paper's data
// model (Section 3.2, Figure 1): it receives the compressed transmissions
// of many sensors, appends each sensor's chunks to a per-sensor log,
// maintains the per-sensor base-signal replica via the core decoder, and
// answers historical point, range and aggregate queries over the
// approximate reconstruction of any quantity at any time in the past.
//
// # Concurrency and lock ordering
//
// The station has no global lock. Its concurrency discipline, which every
// method in this package follows, is:
//
//   - The sensor directory is sharded: each shard guards only its slice of
//     the id → *sensorLog map with a short RWMutex. Shard locks protect map
//     access alone — never state inside a log — and logs are never removed
//     from the directory, so a *sensorLog pointer, once fetched, stays
//     valid forever and may be used after the shard lock is released.
//   - Each sensorLog has its own mutex serialising every state mutation:
//     ingest (decode, index append, archive append, eviction), checkpoint
//     capture and recovery all hold l.mu. Writers on different sensors
//     never contend.
//   - Queries never hold l.mu while doing work: they capture an immutable
//     snapshot of the sensor's history (window slice header, bounds
//     header, aggregate-index snapshot) under a brief l.mu acquisition and
//     then run entirely lock-free — cold archive fetches, segment decodes
//     and aggregation included. Ingest is never blocked by a reader, and a
//     slow cold query blocks nobody. The snapshot is safe because every
//     captured structure is append-only: eviction replaces the window
//     slice instead of mutating the shared backing array, and the index
//     snapshot only reads tree nodes that later appends never rewrite
//     (see query.Snapshot).
//   - Disk I/O under l.mu happens in exactly one place, deliberately: the
//     archive append inside receive. Durability-before-acknowledgement and
//     the archive's strict per-sensor chunk ordering require the append to
//     be serialised with the decode that produced the chunk. It is a
//     per-sensor stall only; readers (snapshots) and other sensors are
//     unaffected. Eviction is pure memory, checkpoints serialise their
//     fsync outside all station locks, and recovery's replay reads archive
//     files outside the segment-store lock.
//   - Lock order is shard.mu → l.mu → segstore.Store.mu, and no path holds
//     two of them at once except ingest (l.mu → store.mu inside Append).
//     The segment store's lock is a leaf: it is never held during disk
//     reads or segment decodes (see segstore's singleflight read path).
//   - Station-wide mutable state (metrics, tracer, archive binding,
//     degraded-sensor count) lives behind atomics, so hot paths read it
//     without any lock.
package station

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sbr/internal/core"
	"sbr/internal/obs"
	"sbr/internal/obs/trace"
	"sbr/internal/query"
	"sbr/internal/segstore"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

// ErrDuplicate reports a transmission the station had already accepted: a
// lossy link lost the acknowledgement and the sensor retransmitted. The
// transport re-acknowledges it as OK instead of treating it as a protocol
// violation, which is what makes retransmission idempotent end to end.
var ErrDuplicate = errors.New("station: duplicate transmission")

// sensorShards is the size of the sharded sensor directory. Power of two;
// large enough that directory lookups on different sensors almost never
// share a cache line of lock, small enough to iterate cheaply.
const sensorShards = 32

// dirShard is one slice of the sensor directory. Its lock guards only the
// map; sensorLog state is guarded by the log's own mutex.
type dirShard struct {
	mu      sync.RWMutex
	sensors map[string]*sensorLog
}

// archiveRef is the station's archive binding, swapped atomically so the
// ingest and query hot paths read it without a lock.
type archiveRef struct {
	store     *segstore.Store
	memChunks int
}

// Station is a base station serving many sensors. It is safe for
// concurrent use: sensor networks deliver frames from many radios at once,
// and readers query the history while frames keep arriving.
type Station struct {
	cfg core.Config

	// AllowRestart accepts a transmission with sequence 0 from a known
	// sensor as a sensor reboot: the base-signal replica is reset (the
	// restarted sensor's base signal starts empty too) and the history
	// keeps growing. Enabled by default by New; without it a rebooted
	// sensor would be rejected forever as out-of-order.
	AllowRestart bool

	shards   [sensorShards]dirShard
	nsensors atomic.Int64 // distinct sensors heard from
	degraded atomic.Int64 // sensors in archDown memory-only mode

	// met is the installed telemetry (nil: uninstrumented). Atomic so the
	// hot paths read it without a lock; the zero stationMetrics is all
	// nil-safe no-ops.
	met atomic.Pointer[stationMetrics]

	// tracer, when set via SetTracer, continues the trace a sampled v3
	// frame carries and records receive-path spans.
	tracer atomic.Pointer[trace.Recorder]

	// arch, when set via SetArchive, holds the durable archive that
	// receives every accepted transmission and serves cold reads for
	// chunks evicted from memory, plus the per-sensor in-memory window
	// bound (0: unbounded).
	arch atomic.Pointer[archiveRef]
}

// stationMetrics is the station's telemetry: reception totals, the
// receive-path latency, the per-transmission SBR compression record
// (core.CompressionReport) aggregated across every sensor — the paper's
// §6 evaluation quantities read off a live station — and the query-serving
// latency/contention series added with the concurrent read path. All
// fields are nil-safe obs metrics; an uninstrumented station pays one
// atomic load per event.
type stationMetrics struct {
	sensors         *obs.Gauge
	transmissions   *obs.Counter
	values          *obs.Counter
	rawBytes        *obs.Counter
	restarts        *obs.Counter
	rejects         *obs.Counter
	duplicates      *obs.Counter
	replayed        *obs.Counter
	tornTails       *obs.Counter
	receiveSeconds  *obs.Histogram
	indexDepth      *obs.Gauge
	degradedSensors *obs.Gauge

	intervals     *obs.Counter
	baseInserts   *obs.Counter
	baseHits      *obs.Counter
	rampIntervals *obs.Counter
	achievedError *obs.Histogram
	errBound      *obs.Histogram

	queryQueries *obs.Counter
	queryNodes   *obs.Counter

	// Read-path series: query volume and latency, chunks served cold from
	// the archive, and the time ingest and snapshot capture spend waiting
	// for a sensor lock — the contention numbers that prove (or disprove)
	// that readers and writers no longer block each other.
	queries        *obs.Counter
	querySeconds   *obs.Histogram
	queryCold      *obs.Counter
	queryLockWait  *obs.Histogram
	ingestLockWait *obs.Histogram
}

// noMetrics is the uninstrumented default: every field nil, every obs call
// a nil-safe no-op.
var noMetrics = &stationMetrics{}

// metrics returns the installed telemetry, never nil.
func (s *Station) metrics() *stationMetrics {
	if m := s.met.Load(); m != nil {
		return m
	}
	return noMetrics
}

// Instrument registers the station's metrics on reg and starts feeding
// them. Call it before traffic arrives; a nil registry attaches no-op
// metrics (the baseline the overhead benchmark measures against).
func (s *Station) Instrument(reg *obs.Registry) {
	met := &stationMetrics{
		sensors:         reg.Gauge("sbr_station_sensors", "Distinct sensors the station has heard from."),
		transmissions:   reg.Counter("sbr_station_transmissions_total", "Transmissions accepted across all sensors."),
		values:          reg.Counter("sbr_station_values_total", "Abstract bandwidth values received (paper's cost unit)."),
		rawBytes:        reg.Counter("sbr_station_bytes_total", "Raw frame bytes ingested."),
		restarts:        reg.Counter("sbr_station_restarts_total", "Sensor reboots observed (sequence reset to zero)."),
		rejects:         reg.Counter("sbr_station_rejects_total", "Transmissions the station refused (decode, shape, order)."),
		duplicates:      reg.Counter("sbr_station_duplicates_total", "Retransmitted already-accepted transmissions dropped idempotently."),
		replayed:        reg.Counter("sbr_station_replayed_frames_total", "Frames replayed from the on-disk logs during crash recovery."),
		tornTails:       reg.Counter("sbr_station_torn_tails_total", "Torn or corrupt log tails truncated during crash recovery."),
		receiveSeconds:  reg.Histogram("sbr_station_receive_seconds", "Receive-path latency per transmission (decode + index append).", obs.LatencyBuckets),
		indexDepth:      reg.Gauge("sbr_station_index_depth", "Deepest per-sensor aggregate index (segment-tree levels)."),
		degradedSensors: reg.Gauge("sbr_station_degraded_sensors", "Sensors in degraded memory-only mode after an archive append failure."),

		intervals:     reg.Counter("sbr_core_intervals_total", "Piece-wise regression records received."),
		baseInserts:   reg.Counter("sbr_core_base_inserts_total", "Base intervals inserted into the pool (Table 6)."),
		baseHits:      reg.Counter("sbr_core_base_hits_total", "Intervals mapped onto a base-signal segment."),
		rampIntervals: reg.Counter("sbr_core_ramp_intervals_total", "Intervals that fell back to plain linear regression."),
		achievedError: reg.Histogram("sbr_core_achieved_error", "Sender-side approximation error per transmission (§6).", obs.ExpBuckets(1e-3, 10, 8)),
		errBound:      reg.Histogram("sbr_core_error_bound", "Guaranteed §4.5 max-abs error bound per transmission.", obs.ExpBuckets(1e-3, 10, 8)),

		queryQueries: reg.Counter("sbr_query_index_queries_total", "Aggregate-index lookups answered."),
		queryNodes:   reg.Counter("sbr_query_index_nodes_total", "Segment-tree nodes merged answering index lookups."),

		queries:        reg.Counter("sbr_station_queries_total", "Historical queries answered (history, point, range, aggregate, windowed)."),
		querySeconds:   reg.Histogram("sbr_station_query_seconds", "Query latency end to end, cold archive fetches included.", obs.LatencyBuckets),
		queryCold:      reg.Counter("sbr_station_query_cold_chunks_total", "Chunks served from the archive (beyond the in-memory window) answering queries."),
		queryLockWait:  reg.Histogram("sbr_station_query_lock_wait_seconds", "Time queries spent acquiring a sensor lock to capture their snapshot.", obs.LatencyBuckets),
		ingestLockWait: reg.Histogram("sbr_station_ingest_lock_wait_seconds", "Time ingest spent acquiring a sensor lock before decoding.", obs.LatencyBuckets),
	}
	s.met.Store(met)
	s.forEachLog(func(_ string, l *sensorLog) {
		l.mu.Lock()
		if l.index != nil {
			l.index.Instrument(met.queryQueries, met.queryNodes)
		}
		l.view.Store(nil) // cached views bake the metrics pointer
		l.mu.Unlock()
	})
	met.sensors.Set(float64(s.nsensors.Load()))

	// Report-derived lazy gauges: state that otherwise only surfaces in
	// reports and probes, evaluated at scrape (and self-monitoring
	// sample) time so the history plane can watch and alert on it.
	reg.GaugeFunc("sbr_station_archive_degraded",
		"1 while any sensor is in degraded memory-only mode (archive appends failing).",
		func() float64 {
			if s.ArchiveDegraded() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("sbr_station_mem_window_chunks",
		"Decoded chunks currently held in the in-memory windows across all sensors.",
		func() float64 {
			var n int
			s.forEachLog(func(_ string, l *sensorLog) {
				l.mu.Lock()
				n += len(l.chunks)
				l.mu.Unlock()
			})
			return float64(n)
		})
	reg.GaugeFunc("sbr_station_archived_chunks",
		"Chunks made durable in the segment archive across all sensors.",
		func() float64 {
			var n int
			s.forEachLog(func(_ string, l *sensorLog) {
				l.mu.Lock()
				n += l.archived
				l.mu.Unlock()
			})
			return float64(n)
		})
}

// sensorLog is the per-sensor state: the decoder replica and the decoded
// history, the in-memory equivalent of the paper's per-sensor log file.
// Its mutex serialises every mutation; queries hold it only long enough to
// capture a snapshot (see the package comment).
type sensorLog struct {
	mu sync.Mutex

	// view caches the last snapshot captured from this log: queries load
	// it with a single atomic read and skip the lock entirely while the
	// sensor is quiescent. Every mutation under mu clears it before
	// unlocking, and snapshot() repopulates it only while holding mu, so a
	// non-nil view always describes a state no older than the last
	// completed mutation.
	view atomic.Pointer[snap]

	decoder *core.Decoder
	n, m    int

	// chunks is the in-memory window of the decoded history: chunks[i]
	// holds global chunk first+i. With an archive attached, chunks below
	// first have been evicted after being made durable and are served cold
	// from the segment store; without one, first stays 0 and the window is
	// the whole history. bounds and the aggregate index always cover the
	// full history — they are tiny per chunk, and keeping them hot is what
	// keeps aggregates O(log n) regardless of eviction.
	//
	// Snapshot discipline: chunks and bounds are append-only as seen from
	// any captured slice header — eviction builds a fresh slice instead of
	// mutating the shared backing array, so a query snapshot stays valid
	// without holding the lock.
	first    int
	archived int  // chunks [0, archived) durably appended to the archive
	archDown bool // archive append failed: stop archiving and evicting

	chunks   [][]timeseries.Series // chunks[i][row] has m samples
	bounds   []float64             // per-chunk max-abs error bound (0: none)
	index    *query.Index          // hierarchical aggregate index over the chunks
	frames   int                   // frames received
	bytes    int                   // raw bytes received
	values   int                   // abstract bandwidth values received
	inserts  []int                 // base intervals inserted per transmission
	restarts int                   // sensor reboots observed (sequence reset to zero)

	// Retransmission state. nextSeq is the sequence the current sensor
	// incarnation should send next; srcNonce identifies the transport
	// incarnation that delivered the incarnation's first frame (0 when the
	// frame arrived without one, e.g. in-process or replayed); zeroSum
	// fingerprints the raw bytes of that first frame so a retransmitted
	// seq 0 can be told from a genuine reboot even when the nonce is lost
	// (e.g. after a crash-recovery replay).
	nextSeq  int
	srcNonce uint64
	zeroSum  uint64
}

// totalChunks is the number of chunks ever accepted (in memory + archived).
// The caller holds l.mu.
func (l *sensorLog) totalChunks() int { return l.first + len(l.chunks) }

// New creates a station whose sensors all run the given configuration.
func New(cfg core.Config) (*Station, error) {
	if _, err := core.NewDecoder(cfg); err != nil {
		return nil, err
	}
	s := &Station{cfg: cfg, AllowRestart: true}
	for i := range s.shards {
		s.shards[i].sensors = make(map[string]*sensorLog)
	}
	return s, nil
}

// shard returns the directory shard owning the named sensor (FNV-1a).
func (s *Station) shard(id string) *dirShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return &s.shards[h&(sensorShards-1)]
}

// lookupLog returns the named sensor's log, or nil when unknown. The
// returned pointer outlives the shard lock: logs are never removed.
func (s *Station) lookupLog(id string) *sensorLog {
	sh := s.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.sensors[id]
}

// getOrCreate returns (creating if needed) the log of the named sensor.
func (s *Station) getOrCreate(id string) (*sensorLog, error) {
	if l := s.lookupLog(id); l != nil {
		return l, nil
	}
	dec, err := core.NewDecoder(s.cfg)
	if err != nil {
		return nil, err
	}
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if l := sh.sensors[id]; l != nil {
		return l, nil // lost the creation race; the spare decoder is dropped
	}
	l := &sensorLog{decoder: dec}
	sh.sensors[id] = l
	s.nsensors.Add(1)
	return l, nil
}

// forEachLog visits every sensor log, unordered. The callback runs without
// any shard lock held, so it may lock l.mu freely.
func (s *Station) forEachLog(fn func(id string, l *sensorLog)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		ids := make([]string, 0, len(sh.sensors))
		logs := make([]*sensorLog, 0, len(sh.sensors))
		for id, l := range sh.sensors {
			ids = append(ids, id)
			logs = append(logs, l)
		}
		sh.mu.RUnlock()
		for j, l := range logs {
			fn(ids[j], l)
		}
	}
}

// SetTracer installs (or removes, with nil) the span recorder the
// receive and query paths feed. Safe to call at any time.
func (s *Station) SetTracer(rec *trace.Recorder) {
	s.tracer.Store(rec)
}

// Tracer returns the installed span recorder (nil: untraced).
func (s *Station) Tracer() *trace.Recorder {
	return s.tracer.Load()
}

// archiveRef returns the current archive binding (nil store: none).
func (s *Station) archiveBinding() (store *segstore.Store, memChunks int) {
	if a := s.arch.Load(); a != nil {
		return a.store, a.memChunks
	}
	return nil, 0
}

// ArchiveDegraded reports whether any sensor has tripped into degraded
// memory-only mode after an archive append failure. The transport's
// admission control and the /readyz probe watch this: a degraded
// archive means accepted frames are no longer made durable, so the
// right move is to shed new traffic back to the sensors' outboxes.
// Lock-free: admission control calls it on every arrival.
func (s *Station) ArchiveDegraded() bool {
	return s.degraded.Load() > 0
}

// ReceiveFrame ingests one wire-encoded frame from the named sensor.
func (s *Station) ReceiveFrame(id string, frame []byte) error {
	return s.ReceiveFrameFrom(id, 0, frame)
}

// ReceiveFrameFrom ingests one wire-encoded frame delivered by the
// transport incarnation identified by src (0: unknown). The incarnation
// nonce lets the station classify a re-delivered already-accepted
// sequence as a retransmission — answered with ErrDuplicate so the
// transport can re-acknowledge it — instead of a decode-order violation,
// and disambiguates a retransmitted seq 0 from a sensor reboot.
func (s *Station) ReceiveFrameFrom(id string, src uint64, frame []byte) error {
	// Continue the wire-propagated trace, if the frame carries a sampled
	// one and a tracer is installed. The header peek only happens with a
	// live tracer, so the untraced path pays a single atomic load.
	var rsp *trace.Span
	if rec := s.tracer.Load(); rec != nil {
		if tc := wire.FrameTrace(frame); tc.Sampled {
			tr := rec.Continue(trace.ID(tc.ID), id)
			rsp = tr.StartSpan("station.receive")
		}
	}
	dsp := rsp.Child("station.decode")
	t, err := wire.DecodeBytes(frame)
	dsp.End()
	if err != nil {
		rsp.End()
		rsp.Trace().Finish()
		return fmt.Errorf("station: sensor %q: %w", id, err)
	}
	err = s.receive(id, t, frame, len(frame), src, fingerprint(frame), false, rsp)
	rsp.End()
	rsp.Trace().Finish()
	return err
}

// Receive ingests one decoded transmission from the named sensor (used
// when sender and receiver share an address space, e.g. in tests and the
// simulator's loss-free fast path).
func (s *Station) Receive(id string, t *core.Transmission) error {
	return s.receive(id, t, nil, 0, 0, 0, false, nil)
}

// fingerprint hashes a raw frame for the seq-0 duplicate heuristic.
func fingerprint(frame []byte) uint64 {
	h := fnv.New64a()
	h.Write(frame) //nolint:errcheck — fnv never fails
	return h.Sum64()
}

// duplicate classifies t against the log's retransmission state. The
// caller holds l.mu.
func (l *sensorLog) duplicate(t *core.Transmission, src, sum uint64) bool {
	if t.Seq >= l.nextSeq {
		return false
	}
	if t.Seq > 0 {
		// Sequences only restart at zero, so any already-passed positive
		// sequence is a retransmission (a genuinely confused sensor would
		// be rejected by the decoder anyway; dropping idempotently is the
		// safer answer for both).
		return true
	}
	// Seq 0 is ambiguous: retransmission of the incarnation's first frame,
	// or a rebooted sensor starting over. When both sides carry a nonce,
	// the same transport incarnation is further split by the frame
	// fingerprint: identical bytes are a retransmission (including a
	// crashed sensor replaying its durable outbox, which persists and
	// reuses its nonce exactly so this case classifies right), while
	// different bytes under the same nonce are an in-process sensor
	// reboot speaking through its long-lived radio client. A different
	// nonce is always a fresh start. Without nonces (in-process delivery,
	// crash-recovery replay) the fingerprint alone decides.
	if src != 0 && l.srcNonce != 0 {
		if src != l.srcNonce {
			return false
		}
		if sum != 0 && l.zeroSum != 0 {
			return sum == l.zeroSum
		}
		return true
	}
	return sum != 0 && sum == l.zeroSum
}

// receive is the single ingestion path. frame is the raw wire encoding
// when the caller has it (nil for in-process delivery: re-encoded on
// demand if an archive needs it); replay marks frames re-read from the
// archive during recovery, which must not be archived again; rsp is the
// caller's receive span for sampled traced frames (nil: untraced). It
// serialises on the sensor's own lock only: ingest for different sensors
// runs fully in parallel, and readers never hold this lock during work.
func (s *Station) receive(id string, t *core.Transmission, frame []byte, rawBytes int, src, sum uint64, replay bool, rsp *trace.Span) (err error) {
	met := s.metrics()
	start := time.Now()
	defer func() {
		if err != nil {
			if !errors.Is(err, ErrDuplicate) {
				met.rejects.Inc()
			}
			return
		}
		met.receiveSeconds.Observe(time.Since(start).Seconds())
	}()
	log, err := s.getOrCreate(id)
	if err != nil {
		return err
	}
	store, memChunks := s.archiveBinding()
	if met.ingestLockWait != nil {
		t0 := time.Now()
		log.mu.Lock()
		met.ingestLockWait.Observe(time.Since(t0).Seconds())
	} else {
		log.mu.Lock()
	}
	defer log.mu.Unlock()
	// Runs before the unlock above: any cached read view is stale once
	// this frame lands (cleared even on the reject paths — cheap, and
	// always safe).
	defer log.view.Store(nil)
	if log.duplicate(t, src, sum) {
		met.duplicates.Inc()
		// The dedup decision is the interesting event on this path: it is
		// what turns a retransmission into an idempotent re-ack.
		if dsp := rsp.Child("station.dedup"); dsp != nil {
			dsp.AnnotateInt("seq", int64(t.Seq))
			dsp.Annotate("verdict", "duplicate")
			dsp.End()
		}
		return fmt.Errorf("station: sensor %q seq %d: %w", id, t.Seq, ErrDuplicate)
	}
	if s.AllowRestart && t.Seq == 0 && log.frames > 0 {
		// Sensor reboot: a fresh compressor numbers from zero and starts
		// with an empty base signal, so the replica must reset too.
		dec, err := core.NewDecoder(s.cfg)
		if err != nil {
			return err
		}
		log.decoder = dec
		log.restarts++
		met.restarts.Inc()
	}
	// Archiving needs the raw frame and, when this append opens a fresh
	// segment, the decoder replica as it stands *before* this decode — that
	// snapshot becomes the segment header that makes the segment
	// self-contained for cold reads.
	archiving := store != nil && !replay && !log.archDown
	var preState core.DecoderState
	if archiving {
		if frame == nil {
			if frame, err = wire.Encode(t); err != nil {
				return fmt.Errorf("station: sensor %q: re-encoding for archive: %w", id, err)
			}
		}
		if store.NeedsSegment(id) {
			preState = log.decoder.State()
		}
	}
	rsp2 := rsp.Child("station.replica")
	rows, err := log.decoder.Decode(t)
	rsp2.End()
	if err != nil {
		return fmt.Errorf("station: sensor %q: %w", id, err)
	}
	if log.n == 0 {
		log.n, log.m = t.N, t.M
	} else if log.n != t.N || log.m != t.M {
		return fmt.Errorf("station: sensor %q: batch shape %dx%d, want %dx%d",
			id, t.N, t.M, log.n, log.m)
	}
	if log.index == nil {
		ix, err := query.NewIndex(log.n, log.m)
		if err != nil {
			return fmt.Errorf("station: sensor %q: %w", id, err)
		}
		ix.Instrument(met.queryQueries, met.queryNodes)
		log.index = ix
	}
	isp := rsp.Child("station.index")
	err = log.index.AppendChunk(rows, t.ErrBound)
	isp.End()
	if err != nil {
		return fmt.Errorf("station: sensor %q: %w", id, err)
	}
	log.chunks = append(log.chunks, rows)
	log.bounds = append(log.bounds, t.ErrBound)
	log.nextSeq = t.Seq + 1
	if t.Seq == 0 {
		log.srcNonce = src
		log.zeroSum = sum
	}
	log.frames++
	log.bytes += rawBytes
	log.values += t.Cost
	log.inserts = append(log.inserts, t.Ins())
	gchunk := log.totalChunks() - 1 // global index of the chunk just appended
	if archiving {
		asp := rsp.Child("segstore.append")
		aerr := store.AppendTraced(id, gchunk, rows, t.ErrBound, frame,
			func() core.DecoderState { return preState }, asp)
		asp.End()
		if aerr != nil {
			// Degraded mode: keep serving from memory, stop archiving and
			// evicting this sensor — nothing non-durable is ever dropped.
			// The transport's admission control watches ArchiveDegraded and
			// sheds new arrivals, pushing the backlog out to the sensors'
			// durable outboxes instead of growing an unarchivable window.
			log.archDown = true
			s.degraded.Add(1)
			met.degradedSensors.Add(1)
		} else {
			log.archived = gchunk + 1
		}
	}
	if replay {
		log.archived = gchunk + 1 // the archive is where the frame came from
	}
	evict(log, memChunks)
	s.observeTransmission(met, log, t, rawBytes)
	return nil
}

// evict trims the in-memory window to memChunks, dropping only chunks the
// archive holds durably. The caller holds l.mu. The surviving window is
// copied into a fresh slice — never trimmed in place — so query snapshots
// captured before the eviction keep reading a stable backing array.
func evict(l *sensorLog, memChunks int) {
	if memChunks <= 0 {
		return
	}
	drop := len(l.chunks) - memChunks
	if max := l.archived - l.first; drop > max {
		drop = max
	}
	if drop <= 0 {
		return
	}
	rest := make([][]timeseries.Series, len(l.chunks)-drop)
	copy(rest, l.chunks[drop:])
	l.chunks = rest
	l.first += drop
}

// observeTransmission feeds the accepted transmission into the telemetry:
// reception totals plus the aggregated core.CompressionReport quantities.
// The caller holds l.mu.
func (s *Station) observeTransmission(met *stationMetrics, log *sensorLog, t *core.Transmission, rawBytes int) {
	if met.transmissions == nil {
		return // uninstrumented: skip even the report derivation
	}
	rep := core.ReportTransmission(t)
	met.sensors.Set(float64(s.nsensors.Load()))
	met.transmissions.Inc()
	met.values.Add(uint64(t.Cost))
	met.rawBytes.Add(uint64(rawBytes))
	met.indexDepth.SetMax(float64(log.index.Depth()))
	met.intervals.Add(uint64(rep.Intervals))
	met.baseInserts.Add(uint64(rep.BaseInserts))
	met.baseHits.Add(uint64(rep.BaseHits))
	met.rampIntervals.Add(uint64(rep.RampIntervals))
	met.achievedError.Observe(rep.AchievedError)
	if t.Bounded() {
		met.errBound.Observe(rep.ErrBound)
	}
}

// noteReplay feeds the crash-recovery telemetry after one log file has
// been replayed.
func (s *Station) noteReplay(frames int, torn bool) {
	met := s.metrics()
	met.replayed.Add(uint64(frames))
	if torn {
		met.tornTails.Inc()
	}
}

// Sensors returns the known sensor IDs, sorted.
func (s *Station) Sensors() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.sensors {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Stats summarises what the station has received from one sensor.
type Stats struct {
	Transmissions int
	Quantities    int
	SamplesPerRow int
	RawBytes      int
	Values        int   // abstract bandwidth consumed
	BaseInserts   []int // inserted base intervals per transmission (Table 6)
	Restarts      int   // sensor reboots observed
}

// SensorStats reports reception statistics for the named sensor.
func (s *Station) SensorStats(id string) (Stats, error) {
	log := s.lookupLog(id)
	if log == nil {
		return Stats{}, fmt.Errorf("station: unknown sensor %q", id)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	return Stats{
		Transmissions: log.frames,
		Quantities:    log.n,
		SamplesPerRow: log.m,
		RawBytes:      log.bytes,
		Values:        log.values,
		BaseInserts:   append([]int(nil), log.inserts...),
		Restarts:      log.restarts,
	}, nil
}

// HistoryLen returns the number of recorded samples per quantity of the
// named sensor (archived chunks included).
func (s *Station) HistoryLen(id string) (int, error) {
	log := s.lookupLog(id)
	if log == nil {
		return 0, fmt.Errorf("station: unknown sensor %q", id)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	return log.totalChunks() * log.m, nil
}

// RangeBound returns the worst guaranteed maximum absolute error across
// the chunks overlapping [from, to) of the named sensor's history.
func (s *Station) RangeBound(id string, from, to int) (float64, error) {
	log := s.lookupLog(id)
	if log == nil {
		return 0, fmt.Errorf("station: unknown sensor %q", id)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	total := log.totalChunks() * log.m
	if from < 0 || to > total || from >= to {
		return 0, fmt.Errorf("station: range [%d,%d) outside history [0,%d)", from, to, total)
	}
	var worst float64
	for c := from / log.m; c <= (to-1)/log.m; c++ {
		if log.bounds[c] > worst {
			worst = log.bounds[c]
		}
	}
	return worst, nil
}

// BaseSignal returns the current base-signal replica of the named sensor.
func (s *Station) BaseSignal(id string) (timeseries.Series, error) {
	log := s.lookupLog(id)
	if log == nil {
		return nil, fmt.Errorf("station: unknown sensor %q", id)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	return log.decoder.BaseSignal(), nil
}

// QueryStats is a point-in-time summary of the read path, served on
// /v1/stats next to the reception statistics.
type QueryStats struct {
	Queries    uint64 `json:"queries"`
	ColdChunks uint64 `json:"cold_chunks"`
}

// ReadStats reports the station's query-serving counters (zero when
// uninstrumented).
func (s *Station) ReadStats() QueryStats {
	met := s.metrics()
	return QueryStats{
		Queries:    met.queries.Value(),
		ColdChunks: met.queryCold.Value(),
	}
}
