// Package station implements the base-station side of the paper's data
// model (Section 3.2, Figure 1): it receives the compressed transmissions
// of many sensors, appends each sensor's chunks to a per-sensor log,
// maintains the per-sensor base-signal replica via the core decoder, and
// answers historical point, range and aggregate queries over the
// approximate reconstruction of any quantity at any time in the past.
package station

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sbr/internal/core"
	"sbr/internal/obs"
	"sbr/internal/obs/trace"
	"sbr/internal/query"
	"sbr/internal/segstore"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

// ErrDuplicate reports a transmission the station had already accepted: a
// lossy link lost the acknowledgement and the sensor retransmitted. The
// transport re-acknowledges it as OK instead of treating it as a protocol
// violation, which is what makes retransmission idempotent end to end.
var ErrDuplicate = errors.New("station: duplicate transmission")

// Station is a base station serving many sensors. It is safe for
// concurrent use: sensor networks deliver frames from many radios at once.
type Station struct {
	cfg core.Config

	// AllowRestart accepts a transmission with sequence 0 from a known
	// sensor as a sensor reboot: the base-signal replica is reset (the
	// restarted sensor's base signal starts empty too) and the history
	// keeps growing. Enabled by default by New; without it a rebooted
	// sensor would be rejected forever as out-of-order.
	AllowRestart bool

	mu      sync.RWMutex
	sensors map[string]*sensorLog
	met     stationMetrics

	// tracer, when set via SetTracer, continues the trace a sampled v3
	// frame carries and records receive-path spans. Atomic so the hot
	// path reads it without the station lock.
	tracer atomic.Pointer[trace.Recorder]

	// archive, when attached via SetArchive, receives every accepted
	// transmission and serves cold reads for chunks evicted from memory;
	// memChunks bounds the per-sensor in-memory window (0: unbounded).
	archive   *segstore.Store
	memChunks int
}

// stationMetrics is the station's telemetry: reception totals, the
// receive-path latency, and the per-transmission SBR compression record
// (core.CompressionReport) aggregated across every sensor — the paper's
// §6 evaluation quantities read off a live station. All fields are
// nil-safe obs metrics; an uninstrumented station pays one nil check
// per event.
type stationMetrics struct {
	sensors         *obs.Gauge
	transmissions   *obs.Counter
	values          *obs.Counter
	rawBytes        *obs.Counter
	restarts        *obs.Counter
	rejects         *obs.Counter
	duplicates      *obs.Counter
	replayed        *obs.Counter
	tornTails       *obs.Counter
	receiveSeconds  *obs.Histogram
	indexDepth      *obs.Gauge
	degradedSensors *obs.Gauge

	intervals     *obs.Counter
	baseInserts   *obs.Counter
	baseHits      *obs.Counter
	rampIntervals *obs.Counter
	achievedError *obs.Histogram
	errBound      *obs.Histogram

	queryQueries *obs.Counter
	queryNodes   *obs.Counter
}

// Instrument registers the station's metrics on reg and starts feeding
// them. Call it before traffic arrives; a nil registry attaches no-op
// metrics (the baseline the overhead benchmark measures against).
func (s *Station) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = stationMetrics{
		sensors:         reg.Gauge("sbr_station_sensors", "Distinct sensors the station has heard from."),
		transmissions:   reg.Counter("sbr_station_transmissions_total", "Transmissions accepted across all sensors."),
		values:          reg.Counter("sbr_station_values_total", "Abstract bandwidth values received (paper's cost unit)."),
		rawBytes:        reg.Counter("sbr_station_bytes_total", "Raw frame bytes ingested."),
		restarts:        reg.Counter("sbr_station_restarts_total", "Sensor reboots observed (sequence reset to zero)."),
		rejects:         reg.Counter("sbr_station_rejects_total", "Transmissions the station refused (decode, shape, order)."),
		duplicates:      reg.Counter("sbr_station_duplicates_total", "Retransmitted already-accepted transmissions dropped idempotently."),
		replayed:        reg.Counter("sbr_station_replayed_frames_total", "Frames replayed from the on-disk logs during crash recovery."),
		tornTails:       reg.Counter("sbr_station_torn_tails_total", "Torn or corrupt log tails truncated during crash recovery."),
		receiveSeconds:  reg.Histogram("sbr_station_receive_seconds", "Receive-path latency per transmission (decode + index append).", obs.LatencyBuckets),
		indexDepth:      reg.Gauge("sbr_station_index_depth", "Deepest per-sensor aggregate index (segment-tree levels)."),
		degradedSensors: reg.Gauge("sbr_station_degraded_sensors", "Sensors in degraded memory-only mode after an archive append failure."),

		intervals:     reg.Counter("sbr_core_intervals_total", "Piece-wise regression records received."),
		baseInserts:   reg.Counter("sbr_core_base_inserts_total", "Base intervals inserted into the pool (Table 6)."),
		baseHits:      reg.Counter("sbr_core_base_hits_total", "Intervals mapped onto a base-signal segment."),
		rampIntervals: reg.Counter("sbr_core_ramp_intervals_total", "Intervals that fell back to plain linear regression."),
		achievedError: reg.Histogram("sbr_core_achieved_error", "Sender-side approximation error per transmission (§6).", obs.ExpBuckets(1e-3, 10, 8)),
		errBound:      reg.Histogram("sbr_core_error_bound", "Guaranteed §4.5 max-abs error bound per transmission.", obs.ExpBuckets(1e-3, 10, 8)),

		queryQueries: reg.Counter("sbr_query_index_queries_total", "Aggregate-index lookups answered."),
		queryNodes:   reg.Counter("sbr_query_index_nodes_total", "Segment-tree nodes merged answering index lookups."),
	}
	for _, log := range s.sensors {
		if log.index != nil {
			log.index.Instrument(s.met.queryQueries, s.met.queryNodes)
		}
	}
}

// sensorLog is the per-sensor state: the decoder replica and the decoded
// history, the in-memory equivalent of the paper's per-sensor log file.
type sensorLog struct {
	decoder *core.Decoder
	n, m    int

	// chunks is the in-memory window of the decoded history: chunks[i]
	// holds global chunk first+i. With an archive attached, chunks below
	// first have been evicted after being made durable and are served cold
	// from the segment store; without one, first stays 0 and the window is
	// the whole history. bounds and the aggregate index always cover the
	// full history — they are tiny per chunk, and keeping them hot is what
	// keeps aggregates O(log n) regardless of eviction.
	first    int
	archived int  // chunks [0, archived) durably appended to the archive
	archDown bool // archive append failed: stop archiving and evicting

	chunks   [][]timeseries.Series // chunks[i][row] has m samples
	bounds   []float64             // per-chunk max-abs error bound (0: none)
	index    *query.Index          // hierarchical aggregate index over the chunks
	frames   int                   // frames received
	bytes    int                   // raw bytes received
	values   int                   // abstract bandwidth values received
	inserts  []int                 // base intervals inserted per transmission
	restarts int                   // sensor reboots observed (sequence reset to zero)

	// Retransmission state. nextSeq is the sequence the current sensor
	// incarnation should send next; srcNonce identifies the transport
	// incarnation that delivered the incarnation's first frame (0 when the
	// frame arrived without one, e.g. in-process or replayed); zeroSum
	// fingerprints the raw bytes of that first frame so a retransmitted
	// seq 0 can be told from a genuine reboot even when the nonce is lost
	// (e.g. after a crash-recovery replay).
	nextSeq  int
	srcNonce uint64
	zeroSum  uint64
}

// totalChunks is the number of chunks ever accepted (in memory + archived).
func (l *sensorLog) totalChunks() int { return l.first + len(l.chunks) }

// totalSamples is the recorded history length per quantity.
func (l *sensorLog) totalSamples() int { return l.totalChunks() * l.m }

// New creates a station whose sensors all run the given configuration.
func New(cfg core.Config) (*Station, error) {
	if _, err := core.NewDecoder(cfg); err != nil {
		return nil, err
	}
	return &Station{cfg: cfg, AllowRestart: true, sensors: make(map[string]*sensorLog)}, nil
}

// sensor returns (creating if needed) the log of the named sensor.
// The caller must hold s.mu.
func (s *Station) sensor(id string) (*sensorLog, error) {
	log, ok := s.sensors[id]
	if !ok {
		dec, err := core.NewDecoder(s.cfg)
		if err != nil {
			return nil, err
		}
		log = &sensorLog{decoder: dec}
		s.sensors[id] = log
	}
	return log, nil
}

// SetTracer installs (or removes, with nil) the span recorder the
// receive and query paths feed. Safe to call at any time.
func (s *Station) SetTracer(rec *trace.Recorder) {
	s.tracer.Store(rec)
}

// Tracer returns the installed span recorder (nil: untraced).
func (s *Station) Tracer() *trace.Recorder {
	return s.tracer.Load()
}

// ArchiveDegraded reports whether any sensor has tripped into degraded
// memory-only mode after an archive append failure. The transport's
// admission control and the /readyz probe watch this: a degraded
// archive means accepted frames are no longer made durable, so the
// right move is to shed new traffic back to the sensors' outboxes.
func (s *Station) ArchiveDegraded() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, l := range s.sensors {
		if l.archDown {
			return true
		}
	}
	return false
}

// ReceiveFrame ingests one wire-encoded frame from the named sensor.
func (s *Station) ReceiveFrame(id string, frame []byte) error {
	return s.ReceiveFrameFrom(id, 0, frame)
}

// ReceiveFrameFrom ingests one wire-encoded frame delivered by the
// transport incarnation identified by src (0: unknown). The incarnation
// nonce lets the station classify a re-delivered already-accepted
// sequence as a retransmission — answered with ErrDuplicate so the
// transport can re-acknowledge it — instead of a decode-order violation,
// and disambiguates a retransmitted seq 0 from a sensor reboot.
func (s *Station) ReceiveFrameFrom(id string, src uint64, frame []byte) error {
	// Continue the wire-propagated trace, if the frame carries a sampled
	// one and a tracer is installed. The header peek only happens with a
	// live tracer, so the untraced path pays a single atomic load.
	var rsp *trace.Span
	if rec := s.tracer.Load(); rec != nil {
		if tc := wire.FrameTrace(frame); tc.Sampled {
			tr := rec.Continue(trace.ID(tc.ID), id)
			rsp = tr.StartSpan("station.receive")
		}
	}
	dsp := rsp.Child("station.decode")
	t, err := wire.DecodeBytes(frame)
	dsp.End()
	if err != nil {
		rsp.End()
		rsp.Trace().Finish()
		return fmt.Errorf("station: sensor %q: %w", id, err)
	}
	err = s.receive(id, t, frame, len(frame), src, fingerprint(frame), false, rsp)
	rsp.End()
	rsp.Trace().Finish()
	return err
}

// Receive ingests one decoded transmission from the named sensor (used
// when sender and receiver share an address space, e.g. in tests and the
// simulator's loss-free fast path).
func (s *Station) Receive(id string, t *core.Transmission) error {
	return s.receive(id, t, nil, 0, 0, 0, false, nil)
}

// fingerprint hashes a raw frame for the seq-0 duplicate heuristic.
func fingerprint(frame []byte) uint64 {
	h := fnv.New64a()
	h.Write(frame) //nolint:errcheck — fnv never fails
	return h.Sum64()
}

// duplicate classifies t against the log's retransmission state. The
// caller holds s.mu.
func (l *sensorLog) duplicate(t *core.Transmission, src, sum uint64) bool {
	if t.Seq >= l.nextSeq {
		return false
	}
	if t.Seq > 0 {
		// Sequences only restart at zero, so any already-passed positive
		// sequence is a retransmission (a genuinely confused sensor would
		// be rejected by the decoder anyway; dropping idempotently is the
		// safer answer for both).
		return true
	}
	// Seq 0 is ambiguous: retransmission of the incarnation's first frame,
	// or a rebooted sensor starting over. When both sides carry a nonce,
	// the same transport incarnation is further split by the frame
	// fingerprint: identical bytes are a retransmission (including a
	// crashed sensor replaying its durable outbox, which persists and
	// reuses its nonce exactly so this case classifies right), while
	// different bytes under the same nonce are an in-process sensor
	// reboot speaking through its long-lived radio client. A different
	// nonce is always a fresh start. Without nonces (in-process delivery,
	// crash-recovery replay) the fingerprint alone decides.
	if src != 0 && l.srcNonce != 0 {
		if src != l.srcNonce {
			return false
		}
		if sum != 0 && l.zeroSum != 0 {
			return sum == l.zeroSum
		}
		return true
	}
	return sum != 0 && sum == l.zeroSum
}

// receive is the single ingestion path. frame is the raw wire encoding
// when the caller has it (nil for in-process delivery: re-encoded on
// demand if an archive needs it); replay marks frames re-read from the
// archive during recovery, which must not be archived again; rsp is the
// caller's receive span for sampled traced frames (nil: untraced).
func (s *Station) receive(id string, t *core.Transmission, frame []byte, rawBytes int, src, sum uint64, replay bool, rsp *trace.Span) (err error) {
	start := time.Now()
	defer func() {
		if err != nil {
			if !errors.Is(err, ErrDuplicate) {
				s.met.rejects.Inc()
			}
			return
		}
		s.met.receiveSeconds.Observe(time.Since(start).Seconds())
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	log, err := s.sensor(id)
	if err != nil {
		return err
	}
	if log.duplicate(t, src, sum) {
		s.met.duplicates.Inc()
		// The dedup decision is the interesting event on this path: it is
		// what turns a retransmission into an idempotent re-ack.
		if dsp := rsp.Child("station.dedup"); dsp != nil {
			dsp.AnnotateInt("seq", int64(t.Seq))
			dsp.Annotate("verdict", "duplicate")
			dsp.End()
		}
		return fmt.Errorf("station: sensor %q seq %d: %w", id, t.Seq, ErrDuplicate)
	}
	if s.AllowRestart && t.Seq == 0 && log.frames > 0 {
		// Sensor reboot: a fresh compressor numbers from zero and starts
		// with an empty base signal, so the replica must reset too.
		dec, err := core.NewDecoder(s.cfg)
		if err != nil {
			return err
		}
		log.decoder = dec
		log.restarts++
		s.met.restarts.Inc()
	}
	// Archiving needs the raw frame and, when this append opens a fresh
	// segment, the decoder replica as it stands *before* this decode — that
	// snapshot becomes the segment header that makes the segment
	// self-contained for cold reads.
	archiving := s.archive != nil && !replay && !log.archDown
	var preState core.DecoderState
	if archiving {
		if frame == nil {
			if frame, err = wire.Encode(t); err != nil {
				return fmt.Errorf("station: sensor %q: re-encoding for archive: %w", id, err)
			}
		}
		if s.archive.NeedsSegment(id) {
			preState = log.decoder.State()
		}
	}
	rsp2 := rsp.Child("station.replica")
	rows, err := log.decoder.Decode(t)
	rsp2.End()
	if err != nil {
		return fmt.Errorf("station: sensor %q: %w", id, err)
	}
	if log.n == 0 {
		log.n, log.m = t.N, t.M
	} else if log.n != t.N || log.m != t.M {
		return fmt.Errorf("station: sensor %q: batch shape %dx%d, want %dx%d",
			id, t.N, t.M, log.n, log.m)
	}
	if log.index == nil {
		ix, err := query.NewIndex(log.n, log.m)
		if err != nil {
			return fmt.Errorf("station: sensor %q: %w", id, err)
		}
		ix.Instrument(s.met.queryQueries, s.met.queryNodes)
		log.index = ix
	}
	isp := rsp.Child("station.index")
	err = log.index.AppendChunk(rows, t.ErrBound)
	isp.End()
	if err != nil {
		return fmt.Errorf("station: sensor %q: %w", id, err)
	}
	log.chunks = append(log.chunks, rows)
	log.bounds = append(log.bounds, t.ErrBound)
	log.nextSeq = t.Seq + 1
	if t.Seq == 0 {
		log.srcNonce = src
		log.zeroSum = sum
	}
	log.frames++
	log.bytes += rawBytes
	log.values += t.Cost
	log.inserts = append(log.inserts, t.Ins())
	gchunk := log.totalChunks() - 1 // global index of the chunk just appended
	if archiving {
		asp := rsp.Child("segstore.append")
		aerr := s.archive.AppendTraced(id, gchunk, rows, t.ErrBound, frame,
			func() core.DecoderState { return preState }, asp)
		asp.End()
		if aerr != nil {
			// Degraded mode: keep serving from memory, stop archiving and
			// evicting this sensor — nothing non-durable is ever dropped.
			// The transport's admission control watches ArchiveDegraded and
			// sheds new arrivals, pushing the backlog out to the sensors'
			// durable outboxes instead of growing an unarchivable window.
			log.archDown = true
			s.met.degradedSensors.Add(1)
		} else {
			log.archived = gchunk + 1
		}
	}
	if replay {
		log.archived = gchunk + 1 // the archive is where the frame came from
	}
	s.evict(log)
	s.observeTransmission(log, t, rawBytes)
	return nil
}

// evict trims the in-memory window to memChunks, dropping only chunks the
// archive holds durably. The caller holds s.mu.
func (s *Station) evict(l *sensorLog) {
	if s.memChunks <= 0 {
		return
	}
	for len(l.chunks) > s.memChunks && l.first < l.archived {
		l.chunks[0] = nil // release the decoded rows
		l.chunks = l.chunks[1:]
		l.first++
	}
}

// observeTransmission feeds the accepted transmission into the telemetry:
// reception totals plus the aggregated core.CompressionReport quantities.
// The caller holds s.mu.
func (s *Station) observeTransmission(log *sensorLog, t *core.Transmission, rawBytes int) {
	if s.met.transmissions == nil {
		return // uninstrumented: skip even the report derivation
	}
	rep := core.ReportTransmission(t)
	s.met.sensors.Set(float64(len(s.sensors)))
	s.met.transmissions.Inc()
	s.met.values.Add(uint64(t.Cost))
	s.met.rawBytes.Add(uint64(rawBytes))
	s.met.indexDepth.SetMax(float64(log.index.Depth()))
	s.met.intervals.Add(uint64(rep.Intervals))
	s.met.baseInserts.Add(uint64(rep.BaseInserts))
	s.met.baseHits.Add(uint64(rep.BaseHits))
	s.met.rampIntervals.Add(uint64(rep.RampIntervals))
	s.met.achievedError.Observe(rep.AchievedError)
	if t.Bounded() {
		s.met.errBound.Observe(rep.ErrBound)
	}
}

// noteReplay feeds the crash-recovery telemetry after one log file has
// been replayed.
func (s *Station) noteReplay(frames int, torn bool) {
	s.mu.RLock()
	met := s.met
	s.mu.RUnlock()
	met.replayed.Add(uint64(frames))
	if torn {
		met.tornTails.Inc()
	}
}

// Sensors returns the known sensor IDs, sorted.
func (s *Station) Sensors() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sensors))
	for id := range s.sensors {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Stats summarises what the station has received from one sensor.
type Stats struct {
	Transmissions int
	Quantities    int
	SamplesPerRow int
	RawBytes      int
	Values        int   // abstract bandwidth consumed
	BaseInserts   []int // inserted base intervals per transmission (Table 6)
	Restarts      int   // sensor reboots observed
}

// SensorStats reports reception statistics for the named sensor.
func (s *Station) SensorStats(id string) (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log, ok := s.sensors[id]
	if !ok {
		return Stats{}, fmt.Errorf("station: unknown sensor %q", id)
	}
	return Stats{
		Transmissions: log.frames,
		Quantities:    log.n,
		SamplesPerRow: log.m,
		RawBytes:      log.bytes,
		Values:        log.values,
		BaseInserts:   append([]int(nil), log.inserts...),
		Restarts:      log.restarts,
	}, nil
}

// lookup returns the named sensor's log after validating the quantity row.
// The caller must hold s.mu (read or write).
func (s *Station) lookup(id string, row int) (*sensorLog, error) {
	log, ok := s.sensors[id]
	if !ok {
		return nil, fmt.Errorf("station: unknown sensor %q", id)
	}
	if row < 0 || row >= log.n {
		return nil, fmt.Errorf("station: sensor %q has %d quantities, row %d requested",
			id, log.n, row)
	}
	return log, nil
}

// chunkRowsAt returns the decoded rows of global chunk c of one sensor:
// straight from the in-memory window when c is inside it, otherwise cold
// from the archive (the segment holding c is loaded, decoded and cached).
// Cold fetches are recorded as children of sp (nil: untraced). The caller
// holds s.mu (read or write).
func (s *Station) chunkRowsAt(l *sensorLog, id string, c int, sp *trace.Span) ([]timeseries.Series, error) {
	if c >= l.first {
		if i := c - l.first; i < len(l.chunks) {
			return l.chunks[i], nil
		}
		return nil, fmt.Errorf("station: sensor %q chunk %d beyond recorded history", id, c)
	}
	if s.archive == nil {
		return nil, fmt.Errorf("station: sensor %q chunk %d evicted and no archive attached", id, c)
	}
	csp := sp.Child("segstore.cold_fetch")
	csp.AnnotateInt("chunk", int64(c))
	rows, _, err := s.archive.ChunkRows(id, c)
	csp.End()
	return rows, err
}

// History returns the full reconstructed history of quantity row of the
// named sensor: the concatenation of that row across every received chunk,
// decoding archived segments for any chunk evicted from memory. It fails
// with the archive's purge error when retention has dropped part of the
// history.
func (s *Station) History(id string, row int) (timeseries.Series, error) {
	return s.HistoryTraced(id, row, nil)
}

// HistoryTraced is History recording its archive cold fetches as children
// of sp (nil: identical to History).
func (s *Station) HistoryTraced(id string, row int, sp *trace.Span) (timeseries.Series, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log, err := s.lookup(id, row)
	if err != nil {
		return nil, err
	}
	out := make(timeseries.Series, 0, log.totalSamples())
	for c := 0; c < log.totalChunks(); c++ {
		rows, err := s.chunkRowsAt(log, id, c, sp)
		if err != nil {
			return nil, err
		}
		out = append(out, rows[row]...)
	}
	return out, nil
}

// HistoryLen returns the number of recorded samples per quantity of the
// named sensor (archived chunks included).
func (s *Station) HistoryLen(id string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log, ok := s.sensors[id]
	if !ok {
		return 0, fmt.Errorf("station: unknown sensor %q", id)
	}
	return log.totalSamples(), nil
}

// At answers a historical point query: the reconstructed value of quantity
// row at global sample index idx (counted from the first transmission).
// Samples evicted from memory are served cold from the archive.
func (s *Station) At(id string, row, idx int) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log, err := s.lookup(id, row)
	if err != nil {
		return 0, err
	}
	if idx < 0 || idx >= log.totalSamples() {
		return 0, fmt.Errorf("station: sample %d outside recorded history [0,%d)",
			idx, log.totalSamples())
	}
	rows, err := s.chunkRowsAt(log, id, idx/log.m, nil)
	if err != nil {
		return 0, err
	}
	return rows[row][idx%log.m], nil
}

// Range answers a historical range query over [from, to) of quantity row,
// materialising only the chunks the range overlaps (cold ones from the
// archive).
func (s *Station) Range(id string, row, from, to int) (timeseries.Series, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log, err := s.lookup(id, row)
	if err != nil {
		return nil, err
	}
	if from < 0 || to > log.totalSamples() || from > to {
		return nil, fmt.Errorf("station: range [%d,%d) outside history [0,%d)",
			from, to, log.totalSamples())
	}
	out := make(timeseries.Series, 0, to-from)
	for i := from; i < to; {
		c := i / log.m
		rows, err := s.chunkRowsAt(log, id, c, nil)
		if err != nil {
			return nil, err
		}
		lo := i - c*log.m
		hi := log.m
		if limit := to - c*log.m; limit < hi {
			hi = limit
		}
		out = append(out, rows[row][lo:hi]...)
		i = c*log.m + hi
	}
	return out, nil
}

// AggregateKind selects a range-aggregate function.
type AggregateKind int

const (
	AggAvg AggregateKind = iota
	AggSum
	AggMin
	AggMax
)

// Aggregate answers a historical aggregate query over [from, to) of
// quantity row. It is answered from the hierarchical aggregate index in
// O(log n) chunk-summary merges; only the ragged sub-chunk edges of the
// range touch the reconstructed samples.
func (s *Station) Aggregate(id string, row, from, to int, kind AggregateKind) (float64, error) {
	v, _, err := s.AggregateWithBound(id, row, from, to, kind)
	return v, err
}

// AggregateWithBound answers an aggregate query together with the
// guaranteed maximum absolute error of the answer, derived from the §4.5
// per-chunk bounds the sensors shipped: for Sum the bounds of the covered
// samples accumulate, for Avg they average, and for Min/Max the worst
// per-sample bound applies. The bound is zero when the sensor did not run
// under the MaxAbs metric.
func (s *Station) AggregateWithBound(id string, row, from, to int, kind AggregateKind) (value, bound float64, err error) {
	return s.AggregateWithBoundTraced(id, row, from, to, kind, nil)
}

// AggregateWithBoundTraced is AggregateWithBound recording the index walk
// and any archive cold fetches as children of sp (nil: untraced).
func (s *Station) AggregateWithBoundTraced(id string, row, from, to int, kind AggregateKind, sp *trace.Span) (value, bound float64, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log, err := s.lookup(id, row)
	if err != nil {
		return 0, 0, err
	}
	total := log.totalSamples()
	if from < 0 || to > total || from > to {
		return 0, 0, fmt.Errorf("station: range [%d,%d) outside history [0,%d)", from, to, total)
	}
	if from == to {
		return 0, 0, fmt.Errorf("station: aggregate over empty range [%d,%d)", from, to)
	}
	wsp := sp.Child("query.index_walk")
	sum, err := s.summarize(log, id, row, from, to, sp)
	wsp.End()
	if err != nil {
		return 0, 0, err
	}
	return answerSummary(sum, kind)
}

// answerSummary turns a merged span summary into the aggregate answer and
// its guaranteed maximum absolute error.
func answerSummary(sum query.Summary, kind AggregateKind) (value, bound float64, err error) {
	switch kind {
	case AggAvg:
		return sum.Sum / float64(sum.Count), sum.BoundSum / float64(sum.Count), nil
	case AggSum:
		return sum.Sum, sum.BoundSum, nil
	case AggMin:
		return sum.Min, sum.BoundMax, nil
	case AggMax:
		return sum.Max, sum.BoundMax, nil
	default:
		return math.NaN(), 0, fmt.Errorf("station: unknown aggregate kind %d", kind)
	}
}

// summarize reduces [from, to) of one quantity: whole chunks come from the
// aggregate index in O(log n) merges (the index spans the full history,
// evicted chunks included), the ragged edges from an exact scan of the
// overlapped chunk windows — cold-loaded from the archive when evicted.
// The caller must hold the station lock and have validated the range.
func (s *Station) summarize(l *sensorLog, id string, row, from, to int, sp *trace.Span) (query.Summary, error) {
	m := l.m
	c0 := (from + m - 1) / m // first fully covered chunk
	c1 := to / m             // one past the last fully covered chunk
	if c0 >= c1 {
		// The range lives inside one chunk or straddles one boundary with
		// no whole chunk in between: the exact scan is already minimal.
		return s.scanRange(l, id, row, from, to, sp)
	}
	sum, err := l.index.QueryChunks(row, c0, c1)
	if err != nil {
		// Unreachable: receive() keeps the index in lock-step with chunks.
		panic(err)
	}
	if lead := c0 * m; from < lead {
		edge, err := s.scanRange(l, id, row, from, lead, sp)
		if err != nil {
			return query.Summary{}, err
		}
		sum = query.Merge(edge, sum)
	}
	if tail := c1 * m; tail < to {
		edge, err := s.scanRange(l, id, row, tail, to, sp)
		if err != nil {
			return query.Summary{}, err
		}
		sum = query.Merge(sum, edge)
	}
	return sum, nil
}

// scanRange summarises [from, to) exactly by reducing each overlapped
// chunk window in place, fetching evicted chunks cold from the archive.
func (s *Station) scanRange(l *sensorLog, id string, row, from, to int, sp *trace.Span) (query.Summary, error) {
	var out query.Summary
	for from < to {
		c := from / l.m
		rows, err := s.chunkRowsAt(l, id, c, sp)
		if err != nil {
			return query.Summary{}, err
		}
		lo := from - c*l.m
		hi := l.m
		if limit := to - c*l.m; limit < hi {
			hi = limit
		}
		out = query.Merge(out, query.Summarize(rows[row][lo:hi], l.bounds[c]))
		from = c*l.m + hi
	}
	return out, nil
}

// AtWithBound answers a point query together with the guaranteed maximum
// absolute error of the chunk the sample came from (Section 4.5). The
// bound is zero when the sensor did not run under the MaxAbs metric.
func (s *Station) AtWithBound(id string, row, idx int) (value, bound float64, err error) {
	value, err = s.At(id, row, idx)
	if err != nil {
		return 0, 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	log := s.sensors[id]
	return value, log.bounds[idx/log.m], nil
}

// RangeBound returns the worst guaranteed maximum absolute error across
// the chunks overlapping [from, to) of the named sensor's history.
func (s *Station) RangeBound(id string, from, to int) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log, ok := s.sensors[id]
	if !ok {
		return 0, fmt.Errorf("station: unknown sensor %q", id)
	}
	total := log.totalSamples()
	if from < 0 || to > total || from >= to {
		return 0, fmt.Errorf("station: range [%d,%d) outside history [0,%d)", from, to, total)
	}
	var worst float64
	for c := from / log.m; c <= (to-1)/log.m; c++ {
		if log.bounds[c] > worst {
			worst = log.bounds[c]
		}
	}
	return worst, nil
}

// BaseSignal returns the current base-signal replica of the named sensor.
func (s *Station) BaseSignal(id string) (timeseries.Series, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log, ok := s.sensors[id]
	if !ok {
		return nil, fmt.Errorf("station: unknown sensor %q", id)
	}
	return log.decoder.BaseSignal(), nil
}
