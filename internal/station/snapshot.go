package station

// This file is the station's read path. Every historical query —
// History, At, Range, the aggregates and the windowed Run — starts by
// capturing a snapshot of the sensor's state under a brief acquisition
// of the sensor's lock, then runs entirely lock-free: index walks, exact
// edge scans and cold archive fetches (disk reads + segment decodes)
// never hold any station lock, so a slow cold query blocks neither
// ingest nor other readers. See the package comment for why the captured
// headers stay valid while the writer keeps appending and evicting.

import (
	"fmt"
	"math"
	"time"

	"sbr/internal/obs/trace"
	"sbr/internal/query"
	"sbr/internal/segstore"
	"sbr/internal/timeseries"
)

// snap is an immutable view of one sensor's history, valid without locks
// for its whole lifetime. Chunks [0, first) are cold (archive only);
// window[i] holds global chunk first+i; bounds and index cover the full
// history [0, first+len(window)).
type snap struct {
	id     string
	n, m   int
	first  int
	window [][]timeseries.Series
	bounds []float64
	index  *query.Snapshot
	store  *segstore.Store
	met    *stationMetrics
}

func (sn *snap) totalChunks() int  { return sn.first + len(sn.window) }
func (sn *snap) totalSamples() int { return sn.totalChunks() * sn.m }

// snapshot captures the named sensor's read view and validates the
// quantity row. The common case — a sensor that has not absorbed a frame
// since the last query — is one atomic load of the cached view: no lock,
// no allocation. On a miss the sensor lock is held only for the header
// copies, and the fresh view is published for the readers behind us
// (while still holding the lock, so a stale view can never overwrite a
// writer's invalidation).
func (s *Station) snapshot(id string, row int) (*snap, error) {
	log := s.lookupLog(id)
	if log == nil {
		return nil, fmt.Errorf("station: unknown sensor %q", id)
	}
	sn := log.view.Load()
	if sn == nil {
		store, _ := s.archiveBinding()
		met := s.metrics()
		if met.queryLockWait != nil {
			t0 := time.Now()
			log.mu.Lock()
			met.queryLockWait.Observe(time.Since(t0).Seconds())
		} else {
			log.mu.Lock()
		}
		sn = &snap{
			id:     id,
			n:      log.n,
			m:      log.m,
			first:  log.first,
			window: log.chunks,
			bounds: log.bounds,
			store:  store,
			met:    met,
		}
		if log.index != nil {
			sn.index = log.index.Snapshot()
		}
		log.view.Store(sn)
		log.mu.Unlock()
	}
	if row < 0 || row >= sn.n {
		return nil, fmt.Errorf("station: sensor %q has %d quantities, row %d requested",
			id, sn.n, row)
	}
	return sn, nil
}

// queryTimer counts one query and returns the latency observer to defer.
func (s *Station) queryTimer() func() {
	met := s.metrics()
	met.queries.Inc()
	if met.querySeconds == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { met.querySeconds.Observe(time.Since(t0).Seconds()) }
}

// chunkRows returns the decoded rows of global chunk c: straight from the
// snapshot window when c is inside it, otherwise cold from the archive
// (the segment holding c is loaded, decoded and cached — deduplicated
// with any concurrent fetch of the same segment by the store's
// singleflight). Cold fetches are recorded as children of sp.
func (sn *snap) chunkRows(c int, sp *trace.Span) ([]timeseries.Series, error) {
	if c >= sn.first {
		if i := c - sn.first; i < len(sn.window) {
			return sn.window[i], nil
		}
		return nil, fmt.Errorf("station: sensor %q chunk %d beyond recorded history", sn.id, c)
	}
	if sn.store == nil {
		return nil, fmt.Errorf("station: sensor %q chunk %d evicted and no archive attached", sn.id, c)
	}
	csp := sp.Child("segstore.cold_fetch")
	csp.AnnotateInt("chunk", int64(c))
	rows, _, err := sn.store.ChunkRows(sn.id, c)
	csp.End()
	if err == nil {
		sn.met.queryCold.Inc()
	}
	return rows, err
}

// coldRange streams the decoded rows of cold chunks [c0, c1) in order,
// fanning segment decodes out through the store's parallel fetch path,
// recorded as one segstore.cold_fetch span covering the whole fan.
func (sn *snap) coldRange(c0, c1 int, sp *trace.Span, fn func(c int, rows []timeseries.Series) error) error {
	if sn.store == nil {
		return fmt.Errorf("station: sensor %q chunk %d evicted and no archive attached", sn.id, c0)
	}
	csp := sp.Child("segstore.cold_fetch")
	csp.AnnotateInt("chunks", int64(c1-c0))
	err := sn.store.ChunkRangeRows(sn.id, c0, c1, func(c int, rows []timeseries.Series, _ float64) error {
		return fn(c, rows)
	})
	csp.End()
	if err == nil {
		sn.met.queryCold.Add(uint64(c1 - c0))
	}
	return err
}

// History returns the full reconstructed history of quantity row of the
// named sensor: the concatenation of that row across every received chunk,
// decoding archived segments for any chunk evicted from memory. It fails
// with the archive's purge error when retention has dropped part of the
// history.
func (s *Station) History(id string, row int) (timeseries.Series, error) {
	return s.HistoryTraced(id, row, nil)
}

// HistoryTraced is History recording its archive cold fetches as children
// of sp (nil: identical to History).
func (s *Station) HistoryTraced(id string, row int, sp *trace.Span) (timeseries.Series, error) {
	done := s.queryTimer()
	defer done()
	sn, err := s.snapshot(id, row)
	if err != nil {
		return nil, err
	}
	out := make(timeseries.Series, 0, sn.totalSamples())
	if sn.first > 0 {
		err := sn.coldRange(0, sn.first, sp, func(_ int, rows []timeseries.Series) error {
			out = append(out, rows[row]...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for _, rows := range sn.window {
		out = append(out, rows[row]...)
	}
	return out, nil
}

// At answers a historical point query: the reconstructed value of quantity
// row at global sample index idx (counted from the first transmission).
// Samples evicted from memory are served cold from the archive.
func (s *Station) At(id string, row, idx int) (float64, error) {
	done := s.queryTimer()
	defer done()
	sn, err := s.snapshot(id, row)
	if err != nil {
		return 0, err
	}
	if idx < 0 || idx >= sn.totalSamples() {
		return 0, fmt.Errorf("station: sample %d outside recorded history [0,%d)",
			idx, sn.totalSamples())
	}
	rows, err := sn.chunkRows(idx/sn.m, nil)
	if err != nil {
		return 0, err
	}
	return rows[row][idx%sn.m], nil
}

// AtWithBound answers a point query together with the guaranteed maximum
// absolute error of the chunk the sample came from (Section 4.5). The
// bound is zero when the sensor did not run under the MaxAbs metric.
func (s *Station) AtWithBound(id string, row, idx int) (value, bound float64, err error) {
	done := s.queryTimer()
	defer done()
	sn, err := s.snapshot(id, row)
	if err != nil {
		return 0, 0, err
	}
	if idx < 0 || idx >= sn.totalSamples() {
		return 0, 0, fmt.Errorf("station: sample %d outside recorded history [0,%d)",
			idx, sn.totalSamples())
	}
	rows, err := sn.chunkRows(idx/sn.m, nil)
	if err != nil {
		return 0, 0, err
	}
	return rows[row][idx%sn.m], sn.bounds[idx/sn.m], nil
}

// Range answers a historical range query over [from, to) of quantity row,
// materialising only the chunks the range overlaps. The cold prefix is
// fetched through the archive's parallel segment fan-out; the in-memory
// suffix comes straight off the snapshot window.
func (s *Station) Range(id string, row, from, to int) (timeseries.Series, error) {
	done := s.queryTimer()
	defer done()
	sn, err := s.snapshot(id, row)
	if err != nil {
		return nil, err
	}
	if from < 0 || to > sn.totalSamples() || from > to {
		return nil, fmt.Errorf("station: range [%d,%d) outside history [0,%d)",
			from, to, sn.totalSamples())
	}
	if from == to {
		return timeseries.Series{}, nil
	}
	out := make(timeseries.Series, 0, to-from)
	clip := func(c int, rows []timeseries.Series) {
		lo := from - c*sn.m
		if lo < 0 {
			lo = 0
		}
		hi := sn.m
		if limit := to - c*sn.m; limit < hi {
			hi = limit
		}
		out = append(out, rows[row][lo:hi]...)
	}
	cLo := from / sn.m
	cHi := (to + sn.m - 1) / sn.m
	if coldHi := min(cHi, sn.first); cLo < coldHi {
		err := sn.coldRange(cLo, coldHi, nil, func(c int, rows []timeseries.Series) error {
			clip(c, rows)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for c := max(cLo, sn.first); c < cHi; c++ {
		clip(c, sn.window[c-sn.first])
	}
	return out, nil
}

// AggregateKind selects a range-aggregate function.
type AggregateKind int

const (
	AggAvg AggregateKind = iota
	AggSum
	AggMin
	AggMax
)

// Aggregate answers a historical aggregate query over [from, to) of
// quantity row. It is answered from the hierarchical aggregate index in
// O(log n) chunk-summary merges; only the ragged sub-chunk edges of the
// range touch the reconstructed samples.
func (s *Station) Aggregate(id string, row, from, to int, kind AggregateKind) (float64, error) {
	v, _, err := s.AggregateWithBound(id, row, from, to, kind)
	return v, err
}

// AggregateWithBound answers an aggregate query together with the
// guaranteed maximum absolute error of the answer, derived from the §4.5
// per-chunk bounds the sensors shipped: for Sum the bounds of the covered
// samples accumulate, for Avg they average, and for Min/Max the worst
// per-sample bound applies. The bound is zero when the sensor did not run
// under the MaxAbs metric.
func (s *Station) AggregateWithBound(id string, row, from, to int, kind AggregateKind) (value, bound float64, err error) {
	return s.AggregateWithBoundTraced(id, row, from, to, kind, nil)
}

// AggregateWithBoundTraced is AggregateWithBound recording the index walk
// and any archive cold fetches as children of sp (nil: untraced).
func (s *Station) AggregateWithBoundTraced(id string, row, from, to int, kind AggregateKind, sp *trace.Span) (value, bound float64, err error) {
	done := s.queryTimer()
	defer done()
	sn, err := s.snapshot(id, row)
	if err != nil {
		return 0, 0, err
	}
	total := sn.totalSamples()
	if from < 0 || to > total || from > to {
		return 0, 0, fmt.Errorf("station: range [%d,%d) outside history [0,%d)", from, to, total)
	}
	if from == to {
		return 0, 0, fmt.Errorf("station: aggregate over empty range [%d,%d)", from, to)
	}
	wsp := sp.Child("query.index_walk")
	sum, err := sn.summarize(row, from, to, sp)
	wsp.End()
	if err != nil {
		return 0, 0, err
	}
	return answerSummary(sum, kind)
}

// answerSummary turns a merged span summary into the aggregate answer and
// its guaranteed maximum absolute error.
func answerSummary(sum query.Summary, kind AggregateKind) (value, bound float64, err error) {
	switch kind {
	case AggAvg:
		return sum.Sum / float64(sum.Count), sum.BoundSum / float64(sum.Count), nil
	case AggSum:
		return sum.Sum, sum.BoundSum, nil
	case AggMin:
		return sum.Min, sum.BoundMax, nil
	case AggMax:
		return sum.Max, sum.BoundMax, nil
	default:
		return math.NaN(), 0, fmt.Errorf("station: unknown aggregate kind %d", kind)
	}
}

// summarize reduces [from, to) of one quantity: whole chunks come from the
// aggregate-index snapshot in O(log n) merges (the index spans the full
// history, evicted chunks included), the ragged edges from an exact scan
// of the overlapped chunk windows — cold-loaded from the archive when
// evicted. The caller has validated the range.
func (sn *snap) summarize(row, from, to int, sp *trace.Span) (query.Summary, error) {
	m := sn.m
	c0 := (from + m - 1) / m // first fully covered chunk
	c1 := to / m             // one past the last fully covered chunk
	if c0 >= c1 {
		// The range lives inside one chunk or straddles one boundary with
		// no whole chunk in between: the exact scan is already minimal.
		return sn.scanRange(row, from, to, sp)
	}
	sum, err := sn.index.QueryChunks(row, c0, c1)
	if err != nil {
		// Unreachable: receive() keeps the index in lock-step with chunks,
		// and the snapshot captured both under one lock.
		panic(err)
	}
	if lead := c0 * m; from < lead {
		edge, err := sn.scanRange(row, from, lead, sp)
		if err != nil {
			return query.Summary{}, err
		}
		sum = query.Merge(edge, sum)
	}
	if tail := c1 * m; tail < to {
		edge, err := sn.scanRange(row, tail, to, sp)
		if err != nil {
			return query.Summary{}, err
		}
		sum = query.Merge(sum, edge)
	}
	return sum, nil
}

// scanRange summarises [from, to) exactly by reducing each overlapped
// chunk window in place, fetching evicted chunks cold from the archive.
func (sn *snap) scanRange(row, from, to int, sp *trace.Span) (query.Summary, error) {
	var out query.Summary
	for from < to {
		c := from / sn.m
		rows, err := sn.chunkRows(c, sp)
		if err != nil {
			return query.Summary{}, err
		}
		lo := from - c*sn.m
		hi := sn.m
		if limit := to - c*sn.m; limit < hi {
			hi = limit
		}
		out = query.Merge(out, query.Summarize(rows[row][lo:hi], sn.bounds[c]))
		from = c*sn.m + hi
	}
	return out, nil
}
