package station_test

import (
	"fmt"
	"math"

	"sbr/internal/core"
	"sbr/internal/station"
	"sbr/internal/timeseries"
)

// Example shows the base-station side: receive a few transmissions, then
// answer historical queries against the approximate log.
func Example() {
	const m = 256
	cfg := core.Config{TotalBand: 60, MBase: 32}
	st, _ := station.New(cfg)
	comp, _ := core.NewCompressor(cfg)

	// Two batches from one sensor: a smooth daily cycle.
	for batch := 0; batch < 2; batch++ {
		rows := []timeseries.Series{make(timeseries.Series, m)}
		for i := range rows[0] {
			rows[0][i] = 20 + 5*math.Sin(2*math.Pi*float64(batch*m+i)/m)
		}
		t, _ := comp.Encode(rows)
		if err := st.Receive("field-7", t); err != nil {
			fmt.Println(err)
			return
		}
	}

	avg, _ := st.Aggregate("field-7", 0, 0, 2*m, station.AggAvg)
	maxv, _ := st.Aggregate("field-7", 0, 0, 2*m, station.AggMax)
	runs, _ := st.Exceedances("field-7", 0, 0, 0, 24)
	fmt.Printf("avg %.1f, max %.1f, %d runs above 24\n", avg, maxv, len(runs))
	// Output:
	// avg 20.0, max 25.1, 2 runs above 24
}
