package station

import (
	"fmt"

	"sbr/internal/timeseries"
)

// This file implements the historical-query layer over the approximate
// per-sensor logs: windowed (downsampled) aggregates for plotting and
// analysis, and threshold scans — the "detailed historical information"
// workloads (military surveillance, environmental forensics) the paper's
// introduction contrasts with plain aggregation.

// Query describes a windowed aggregate over one quantity's history.
type Query struct {
	Sensor string
	Row    int
	// From and To bound the sample range [From, To); To == 0 means the end
	// of the recorded history.
	From, To int
	// Step partitions the range into windows of this many samples, each
	// reduced by Agg. Step == 0 means a single window over the whole range.
	Step int
	Agg  AggregateKind
}

// QueryPoint is one window of a query result.
type QueryPoint struct {
	Start, End int // sample range of the window
	Value      float64
}

// Run executes a windowed-aggregate query. Each window is answered from
// the hierarchical aggregate index (plus exact ragged edges), so a query
// over w windows costs O(w log n) instead of materialising the history.
func (s *Station) Run(q Query) ([]QueryPoint, error) {
	done := s.queryTimer()
	defer done()
	// One snapshot answers every window, so the whole query sees a single
	// consistent point in time regardless of concurrent ingest.
	sn, err := s.snapshot(q.Sensor, q.Row)
	if err != nil {
		return nil, err
	}
	total := sn.totalSamples()
	from, to := q.From, q.To
	if to == 0 {
		to = total
	}
	if from < 0 || to > total || from >= to {
		return nil, fmt.Errorf("station: query range [%d,%d) outside history [0,%d)",
			from, to, total)
	}
	step := q.Step
	if step <= 0 {
		step = to - from
	}
	var out []QueryPoint
	for start := from; start < to; start += step {
		end := start + step
		if end > to {
			end = to
		}
		sum, err := sn.summarize(q.Row, start, end, nil)
		if err != nil {
			return nil, err
		}
		v, _, err := answerSummary(sum, q.Agg)
		if err != nil {
			return nil, err
		}
		out = append(out, QueryPoint{Start: start, End: end, Value: v})
	}
	return out, nil
}

// Downsample returns the history of one quantity reduced to at most points
// samples by window-averaging — the typical plotting export.
func (s *Station) Downsample(id string, row, points int) (timeseries.Series, error) {
	hist, err := s.History(id, row)
	if err != nil {
		return nil, err
	}
	return DownsampleSeries(hist, points)
}

// DownsampleSeries reduces an already-reconstructed history to at most
// points samples by window-averaging. Callers holding a cached history
// (e.g. the HTTP front end) use it to skip re-materialisation.
func DownsampleSeries(hist timeseries.Series, points int) (timeseries.Series, error) {
	if points <= 0 {
		return nil, fmt.Errorf("station: non-positive point count %d", points)
	}
	if points >= len(hist) {
		return hist, nil
	}
	factor := (len(hist) + points - 1) / points
	return timeseries.Downsample(hist, factor), nil
}

// Exceedance is one maximal run of samples at or above a threshold.
type Exceedance struct {
	Start, End int     // sample range [Start, End)
	Peak       float64 // largest value inside the run
}

// Exceedances scans [from, to) of a quantity's history for maximal runs of
// samples >= threshold — "when was the temperature above 30 °C, and how
// hot did it get" over the approximate record. A zero `to` means the end
// of the history.
func (s *Station) Exceedances(id string, row int, from, to int, threshold float64) ([]Exceedance, error) {
	hist, err := s.History(id, row)
	if err != nil {
		return nil, err
	}
	return ScanExceedances(hist, from, to, threshold)
}

// ScanExceedances runs the threshold scan over an already-reconstructed
// history, with the same [from, to) semantics as Exceedances (zero `to`
// means the end of the series).
func ScanExceedances(hist timeseries.Series, from, to int, threshold float64) ([]Exceedance, error) {
	if to == 0 {
		to = len(hist)
	}
	if from < 0 || to > len(hist) || from > to {
		return nil, fmt.Errorf("station: scan range [%d,%d) outside history [0,%d)",
			from, to, len(hist))
	}
	var out []Exceedance
	inRun := false
	var cur Exceedance
	for i := from; i < to; i++ {
		v := hist[i]
		if v >= threshold {
			if !inRun {
				inRun = true
				cur = Exceedance{Start: i, Peak: v}
			} else if v > cur.Peak {
				cur.Peak = v
			}
			continue
		}
		if inRun {
			cur.End = i
			out = append(out, cur)
			inRun = false
		}
	}
	if inRun {
		cur.End = to
		out = append(out, cur)
	}
	return out, nil
}
