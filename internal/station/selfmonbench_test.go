package station

import (
	"fmt"
	"os"
	"testing"
	"time"

	"sbr/internal/core"
	"sbr/internal/metrics"
	"sbr/internal/obs"
	"sbr/internal/obs/hist"
)

// BenchmarkReceiveFrameSelfmon measures the ingest path with the obs
// registry installed ("obs", the production baseline) and with the
// self-monitoring sampler concurrently snapshotting that same registry
// every millisecond ("obs_selfmon") — a far denser cadence than the 5s
// production default, so the measured interference is an upper bound.
// The sampler never touches the ingest path directly; any overhead is
// cache and atomic contention on the shared counters.
func BenchmarkReceiveFrameSelfmon(b *testing.B) {
	const (
		n, m   = 3, 256
		stream = 8
	)
	cfg := core.Config{TotalBand: n * m / 8, MBase: n * m / 8, Metric: metrics.SSE}
	frames := benchFrames(b, cfg, n, m, stream)

	b.Run("obs", func(b *testing.B) {
		reg := obs.NewRegistry()
		run := receiveLoop(cfg, frames, stream, reg, nil, false)
		b.ReportAllocs()
		if err := run(b.N); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("obs_selfmon", func(b *testing.B) {
		reg := obs.NewRegistry()
		s := hist.NewSampler(reg, hist.Options{Interval: time.Millisecond})
		s.Start()
		defer s.Stop()
		run := receiveLoop(cfg, frames, stream, reg, nil, false)
		b.ReportAllocs()
		if err := run(b.N); err != nil {
			b.Fatal(err)
		}
	})
}

// TestSelfmonOverheadGate is the acceptance gate: with the sampler
// snapshotting the registry at a 1ms cadence, ReceiveFrame must stay
// within 2% of the obs-only path. Timing variance on shared CI boxes
// makes a single comparison flaky, so the gate takes the best of several
// attempts and is opt-in via SBR_SELFMON_GATE=1 (the Makefile
// selfmon-gate target sets it).
func TestSelfmonOverheadGate(t *testing.T) {
	if os.Getenv("SBR_SELFMON_GATE") == "" {
		t.Skip("set SBR_SELFMON_GATE=1 to run the self-monitoring overhead gate")
	}
	const (
		n, m    = 3, 256
		stream  = 8
		limit   = 1.02
		retries = 5
	)
	cfg := core.Config{TotalBand: n * m / 8, MBase: n * m / 8, Metric: metrics.SSE}
	var frames [][]byte
	testing.Benchmark(func(b *testing.B) {
		frames = benchFrames(b, cfg, n, m, stream)
	})

	var last string
	for attempt := 1; attempt <= retries; attempt++ {
		regBase := obs.NewRegistry()
		base := testing.Benchmark(func(b *testing.B) {
			if err := receiveLoop(cfg, frames, stream, regBase, nil, false)(b.N); err != nil {
				b.Fatal(err)
			}
		})

		regMon := obs.NewRegistry()
		s := hist.NewSampler(regMon, hist.Options{Interval: time.Millisecond})
		s.Start()
		mon := testing.Benchmark(func(b *testing.B) {
			if err := receiveLoop(cfg, frames, stream, regMon, nil, false)(b.N); err != nil {
				b.Fatal(err)
			}
		})
		s.Stop()

		ratio := float64(mon.NsPerOp()) / float64(base.NsPerOp())
		last = fmt.Sprintf("attempt %d: obs %dns/op, obs+selfmon %dns/op, ratio %.4f",
			attempt, base.NsPerOp(), mon.NsPerOp(), ratio)
		t.Log(last)
		if ratio <= limit {
			return
		}
	}
	t.Errorf("self-monitoring overhead above %.0f%% across %d attempts; last: %s",
		(limit-1)*100, retries, last)
}
