package station

import (
	"encoding/binary"
	"fmt"
	"os"
	"testing"

	"sbr/internal/core"
	"sbr/internal/metrics"
	"sbr/internal/obs"
	"sbr/internal/obs/trace"
	"sbr/internal/wire"
)

// tracedBenchFrames rewraps plain frames with sampled trace headers so a
// benchmark can drive the full span-recording path.
func tracedBenchFrames(b *testing.B, frames [][]byte) [][]byte {
	b.Helper()
	out := make([][]byte, len(frames))
	for i, frame := range frames {
		t, err := wire.DecodeBytes(frame)
		if err != nil {
			b.Fatal(err)
		}
		out[i], err = wire.EncodeTraced(t, wire.TraceContext{ID: uint64(i + 1), Sampled: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	return out
}

// receiveLoop drives count ReceiveFrame calls through fresh stations every
// `stream` frames — the same shape BenchmarkReceiveFrame uses — with the
// given instrumentation installed. With restamp set, each traced frame
// gets a unique trace ID per iteration (as real traffic would have);
// without it the pre-encoded IDs recur and every Continue would join the
// same few ever-growing traces, measuring an artifact instead of the path.
func receiveLoop(cfg core.Config, frames [][]byte, stream int,
	reg *obs.Registry, rec *trace.Recorder, restamp bool) func(int) error {

	return func(count int) error {
		var st *Station
		buf := make([]byte, 0, 4096)
		for i := 0; i < count; i++ {
			if i%stream == 0 {
				var err error
				st, err = New(cfg)
				if err != nil {
					return err
				}
				st.Instrument(reg)
				if rec != nil {
					st.SetTracer(rec)
				}
			}
			frame := frames[i%stream]
			if restamp {
				buf = append(buf[:0], frame...)
				binary.LittleEndian.PutUint64(buf[5:13], uint64(i+1))
				frame = buf
			}
			if err := st.ReceiveFrame("bench", frame); err != nil {
				return err
			}
		}
		return nil
	}
}

// BenchmarkReceiveFrameTraced measures the ingest path under the tracing
// configurations: "trace_unsampled" has a tracer installed but receives
// plain v2 frames (the always-on production setting — a sampler births
// unsampled frames as v2, so the station pays one nil check and nothing
// else), which is what the <5% gate bounds against "noop". The
// "trace_sampled" mode records spans for every frame — the worst case,
// reported for visibility but not gated.
func BenchmarkReceiveFrameTraced(b *testing.B) {
	const (
		n, m   = 3, 256
		stream = 8
	)
	cfg := core.Config{TotalBand: n * m / 8, MBase: n * m / 8, Metric: metrics.SSE}
	frames := benchFrames(b, cfg, n, m, stream)
	traced := tracedBenchFrames(b, frames)

	for _, mode := range []struct {
		name    string
		frames  [][]byte
		trace   bool
		restamp bool
	}{
		{"noop", frames, false, false},
		{"trace_unsampled", frames, true, false},
		{"trace_sampled", traced, true, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var rec *trace.Recorder
			if mode.trace {
				rec = trace.NewRecorder(trace.Options{Capacity: 64})
			}
			run := receiveLoop(cfg, mode.frames, stream, nil, rec, mode.restamp)
			b.ReportAllocs()
			if err := run(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// TestTracingOverheadGate is the acceptance gate: with a tracer installed
// but frames sampled out, ReceiveFrame must stay within 5% of the fully
// uninstrumented path. Timing variance on shared CI boxes makes a single
// comparison flaky, so the gate takes the best of several attempts and is
// opt-in via SBR_TRACE_GATE=1 (the Makefile trace-gate target sets it).
func TestTracingOverheadGate(t *testing.T) {
	if os.Getenv("SBR_TRACE_GATE") == "" {
		t.Skip("set SBR_TRACE_GATE=1 to run the tracing overhead gate")
	}
	const (
		n, m    = 3, 256
		stream  = 8
		limit   = 1.05
		retries = 5
	)
	cfg := core.Config{TotalBand: n * m / 8, MBase: n * m / 8, Metric: metrics.SSE}
	var frames [][]byte
	testing.Benchmark(func(b *testing.B) {
		frames = benchFrames(b, cfg, n, m, stream)
	})

	noop := receiveLoop(cfg, frames, stream, nil, nil, false)
	var last string
	for attempt := 1; attempt <= retries; attempt++ {
		base := testing.Benchmark(func(b *testing.B) {
			if err := noop(b.N); err != nil {
				b.Fatal(err)
			}
		})
		rec := trace.NewRecorder(trace.Options{Capacity: 64})
		withTrace := testing.Benchmark(func(b *testing.B) {
			if err := receiveLoop(cfg, frames, stream, nil, rec, false)(b.N); err != nil {
				b.Fatal(err)
			}
		})
		ratio := float64(withTrace.NsPerOp()) / float64(base.NsPerOp())
		last = fmt.Sprintf("attempt %d: noop %dns/op, traced %dns/op, ratio %.4f",
			attempt, base.NsPerOp(), withTrace.NsPerOp(), ratio)
		t.Log(last)
		if ratio <= limit {
			return
		}
	}
	t.Errorf("tracing overhead above %.0f%% across %d attempts; last: %s",
		(limit-1)*100, retries, last)
}
