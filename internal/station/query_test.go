package station

import (
	"math"
	"testing"

	"sbr/internal/timeseries"
)

// stationWithHistory builds a station whose reconstructed history is easy
// to reason about by feeding it through the real pipeline.
func stationWithHistory(t *testing.T) (*Station, timeseries.Series) {
	t.Helper()
	st, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset()
	feed(t, st, "s", ds, 4, false)
	hist, err := st.History("s", 0)
	if err != nil {
		t.Fatal(err)
	}
	return st, hist
}

func TestRunWindowedQuery(t *testing.T) {
	st, hist := stationWithHistory(t)
	pts, err := st.Run(Query{Sensor: "s", Row: 0, Step: 50, Agg: AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	wantWindows := (len(hist) + 49) / 50
	if len(pts) != wantWindows {
		t.Fatalf("%d windows, want %d", len(pts), wantWindows)
	}
	for _, p := range pts {
		want := hist[p.Start:p.End].Mean()
		if math.Abs(p.Value-want) > 1e-12 {
			t.Errorf("window [%d,%d): %v, want %v", p.Start, p.End, p.Value, want)
		}
	}
	// The final window may be shorter but must end exactly at the history.
	if pts[len(pts)-1].End != len(hist) {
		t.Errorf("last window ends at %d, want %d", pts[len(pts)-1].End, len(hist))
	}
}

func TestRunSingleWindow(t *testing.T) {
	st, hist := stationWithHistory(t)
	pts, err := st.Run(Query{Sensor: "s", Row: 0, Agg: AggMax})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("%d windows for step 0, want 1", len(pts))
	}
	if pts[0].Value != hist.Max() {
		t.Errorf("max = %v, want %v", pts[0].Value, hist.Max())
	}
}

func TestRunQueryErrors(t *testing.T) {
	st, hist := stationWithHistory(t)
	if _, err := st.Run(Query{Sensor: "nope", Row: 0}); err == nil {
		t.Error("unknown sensor accepted")
	}
	if _, err := st.Run(Query{Sensor: "s", Row: 0, From: 10, To: 5}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := st.Run(Query{Sensor: "s", Row: 0, To: len(hist) + 1}); err == nil {
		t.Error("out-of-range query accepted")
	}
	if _, err := st.Run(Query{Sensor: "s", Row: 0, Agg: AggregateKind(9)}); err == nil {
		t.Error("unknown aggregate accepted")
	}
}

func TestDownsample(t *testing.T) {
	st, hist := stationWithHistory(t)
	ds, err := st.Downsample("s", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) > 10 {
		t.Fatalf("downsampled to %d points, want <= 10", len(ds))
	}
	// Mean is preserved within the rounding of unequal windows.
	if math.Abs(ds.Mean()-hist.Mean()) > math.Abs(hist.Mean())*0.2+1 {
		t.Errorf("downsampled mean %v far from %v", ds.Mean(), hist.Mean())
	}
	// Requesting more points than samples returns the raw history.
	full, err := st.Downsample("s", 0, len(hist)+5)
	if err != nil {
		t.Fatal(err)
	}
	if !timeseries.Equal(full, hist, 0) {
		t.Error("oversized downsample is not the raw history")
	}
	if _, err := st.Downsample("s", 0, 0); err == nil {
		t.Error("zero-point downsample accepted")
	}
}

func TestExceedances(t *testing.T) {
	st, hist := stationWithHistory(t)
	// Pick a threshold that is guaranteed to split the history: the 75th
	//-ish percentile via mean+something.
	threshold := hist.Mean()
	runs, err := st.Exceedances("s", 0, 0, 0, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 {
		t.Fatal("no exceedances above the mean — implausible")
	}
	covered := 0
	for _, r := range runs {
		if r.End <= r.Start {
			t.Fatalf("empty run %+v", r)
		}
		covered += r.End - r.Start
		for i := r.Start; i < r.End; i++ {
			if hist[i] < threshold {
				t.Fatalf("sample %d inside run %+v is below the threshold", i, r)
			}
		}
		if r.Start > 0 && hist[r.Start-1] >= threshold {
			t.Fatalf("run %+v is not maximal on the left", r)
		}
		if r.End < len(hist) && hist[r.End] >= threshold {
			t.Fatalf("run %+v is not maximal on the right", r)
		}
		peak := hist[r.Start:r.End].Max()
		if r.Peak != peak {
			t.Fatalf("run %+v peak, want %v", r, peak)
		}
	}
	// Total covered samples equals the count of above-threshold samples.
	var above int
	for _, v := range hist {
		if v >= threshold {
			above++
		}
	}
	if covered != above {
		t.Errorf("runs cover %d samples, %d are above threshold", covered, above)
	}
}

func TestExceedancesErrors(t *testing.T) {
	st, _ := stationWithHistory(t)
	if _, err := st.Exceedances("nope", 0, 0, 0, 1); err == nil {
		t.Error("unknown sensor accepted")
	}
	if _, err := st.Exceedances("s", 0, 10, 5, 1); err == nil {
		t.Error("inverted range accepted")
	}
	// A threshold above everything yields no runs, not an error.
	runs, err := st.Exceedances("s", 0, 0, 0, 1e18)
	if err != nil || len(runs) != 0 {
		t.Errorf("impossible threshold gave %v, %v", runs, err)
	}
}

// TestExceedancesToSentinel checks that to == 0 means "end of history" and
// is equivalent to passing the length explicitly.
func TestExceedancesToSentinel(t *testing.T) {
	st, hist := stationWithHistory(t)
	threshold := hist.Mean()
	implicit, err := st.Exceedances("s", 0, 0, 0, threshold)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := st.Exceedances("s", 0, 0, len(hist), threshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(implicit) != len(explicit) {
		t.Fatalf("sentinel gave %d runs, explicit %d", len(implicit), len(explicit))
	}
	for i := range implicit {
		if implicit[i] != explicit[i] {
			t.Fatalf("run %d: sentinel %+v, explicit %+v", i, implicit[i], explicit[i])
		}
	}
}

// TestExceedancesRunTouchingEnd forces a run still open at the end of the
// scan window: it must be closed at `to`, with the right peak.
func TestExceedancesRunTouchingEnd(t *testing.T) {
	hist := timeseries.Series{1, 5, 2, 6, 7, 8}
	runs, err := ScanExceedances(hist, 0, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("%d runs, want 1", len(runs))
	}
	if runs[0].Start != 3 || runs[0].End != len(hist) || runs[0].Peak != 8 {
		t.Fatalf("end-touching run %+v, want {3 6 8}", runs[0])
	}
	// Same but with an explicit sub-range ending mid-run.
	runs, err = ScanExceedances(hist, 0, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].End != 5 || runs[0].Peak != 7 {
		t.Fatalf("clipped run %+v, want end 5 peak 7", runs)
	}
}

// TestExceedancesEmptyHistory: an empty series with the to == 0 sentinel
// yields no runs and no error; any explicit range beyond it fails.
func TestExceedancesEmptyHistory(t *testing.T) {
	runs, err := ScanExceedances(nil, 0, 0, 1)
	if err != nil {
		t.Fatalf("empty history errored: %v", err)
	}
	if len(runs) != 0 {
		t.Fatalf("empty history gave %d runs", len(runs))
	}
	if _, err := ScanExceedances(nil, 0, 1, 1); err == nil {
		t.Fatal("range beyond empty history accepted")
	}
	if _, err := ScanExceedances(nil, -1, 0, 1); err == nil {
		t.Fatal("negative from accepted")
	}
}
