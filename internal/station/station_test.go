package station

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sbr/internal/core"
	"sbr/internal/datagen"
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

func testConfig() core.Config {
	return core.Config{TotalBand: 120, MBase: 64, Metric: metrics.SSE}
}

// feed compresses `files` batches of the dataset through a fresh compressor
// and delivers them to the station under the given sensor ID.
func feed(t *testing.T, st *Station, id string, ds *datagen.Dataset, files int, viaWire bool) []*core.Transmission {
	t.Helper()
	comp, err := core.NewCompressor(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sent []*core.Transmission
	for f := 0; f < files; f++ {
		tr, err := comp.Encode(ds.File(f))
		if err != nil {
			t.Fatal(err)
		}
		sent = append(sent, tr)
		if viaWire {
			frame, err := wire.Encode(tr)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.ReceiveFrame(id, frame); err != nil {
				t.Fatal(err)
			}
		} else if err := st.Receive(id, tr); err != nil {
			t.Fatal(err)
		}
	}
	return sent
}

func smallDataset() *datagen.Dataset {
	return datagen.StocksSized(1, 64, 4)
}

func TestStationReceiveAndHistory(t *testing.T) {
	st, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset()
	feed(t, st, "node-1", ds, 3, false)

	hist, err := st.History("node-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3*ds.FileLen {
		t.Fatalf("history length %d, want %d", len(hist), 3*ds.FileLen)
	}
	// History must match an independent decoder pass.
	dec, _ := core.NewDecoder(testConfig())
	comp, _ := core.NewCompressor(testConfig())
	var want timeseries.Series
	for f := 0; f < 3; f++ {
		tr, _ := comp.Encode(ds.File(f))
		rows, _ := dec.Decode(tr)
		want = append(want, rows[0]...)
	}
	if !timeseries.Equal(hist, want, 1e-12) {
		t.Error("station history diverges from an independent decode")
	}
}

func TestStationHistoryIsReasonable(t *testing.T) {
	st, _ := New(testConfig())
	ds := smallDataset()
	feed(t, st, "s", ds, 4, false)
	for row := 0; row < ds.N(); row++ {
		hist, err := st.History("s", row)
		if err != nil {
			t.Fatal(err)
		}
		orig := ds.Rows[row][:4*ds.FileLen]
		mse := metrics.MeanSquared(orig, hist)
		if mse > orig.Variance() {
			t.Errorf("row %d reconstruction MSE %v above signal variance %v",
				row, mse, orig.Variance())
		}
	}
}

func TestStationPointRangeAggregate(t *testing.T) {
	st, _ := New(testConfig())
	ds := smallDataset()
	feed(t, st, "s", ds, 2, false)
	hist, _ := st.History("s", 1)

	v, err := st.At("s", 1, 70)
	if err != nil {
		t.Fatal(err)
	}
	if v != hist[70] {
		t.Errorf("At = %v, want %v", v, hist[70])
	}

	rg, err := st.Range("s", 1, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !timeseries.Equal(rg, hist[10:20], 0) {
		t.Error("Range mismatch")
	}

	for kind, want := range map[AggregateKind]float64{
		AggAvg: hist[10:20].Mean(),
		AggSum: hist[10:20].Sum(),
		AggMin: hist[10:20].Min(),
		AggMax: hist[10:20].Max(),
	} {
		got, err := st.Aggregate("s", 1, 10, 20, kind)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Aggregate kind %d = %v, want %v", kind, got, want)
		}
	}
}

func TestStationQueryErrors(t *testing.T) {
	st, _ := New(testConfig())
	ds := smallDataset()
	feed(t, st, "s", ds, 1, false)

	if _, err := st.History("unknown", 0); err == nil {
		t.Error("unknown sensor accepted")
	}
	if _, err := st.History("s", 99); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := st.At("s", 0, -1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := st.At("s", 0, ds.FileLen); err == nil {
		t.Error("index beyond history accepted")
	}
	if _, err := st.Range("s", 0, 10, 5); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := st.Aggregate("s", 0, 3, 3, AggAvg); err == nil {
		t.Error("empty aggregate range accepted")
	}
	if _, err := st.Aggregate("s", 0, 0, 4, AggregateKind(42)); err == nil {
		t.Error("unknown aggregate kind accepted")
	}
}

func TestStationMultipleSensors(t *testing.T) {
	st, _ := New(testConfig())
	dsA := datagen.StocksSized(1, 64, 2)
	dsB := datagen.StocksSized(2, 64, 2)
	feed(t, st, "b-node", dsB, 2, true)
	feed(t, st, "a-node", dsA, 2, true)

	ids := st.Sensors()
	if len(ids) != 2 || ids[0] != "a-node" || ids[1] != "b-node" {
		t.Errorf("Sensors = %v", ids)
	}
	sa, err := st.SensorStats("a-node")
	if err != nil {
		t.Fatal(err)
	}
	if sa.Transmissions != 2 || sa.Quantities != dsA.N() || sa.SamplesPerRow != 64 {
		t.Errorf("stats = %+v", sa)
	}
	if sa.RawBytes == 0 || sa.Values == 0 {
		t.Error("wire-fed sensor has zero byte/value accounting")
	}
	if len(sa.BaseInserts) != 2 {
		t.Errorf("BaseInserts = %v", sa.BaseInserts)
	}
	if _, err := st.SensorStats("nope"); err == nil {
		t.Error("unknown sensor stats accepted")
	}
}

func TestStationBaseSignalReplica(t *testing.T) {
	st, _ := New(testConfig())
	ds := smallDataset()
	comp, _ := core.NewCompressor(testConfig())
	for f := 0; f < 3; f++ {
		tr, err := comp.Encode(ds.File(f))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Receive("s", tr); err != nil {
			t.Fatal(err)
		}
	}
	replica, err := st.BaseSignal("s")
	if err != nil {
		t.Fatal(err)
	}
	if !timeseries.Equal(replica, comp.BaseSignal(), 0) {
		t.Error("station base-signal replica diverged from the sender")
	}
	if _, err := st.BaseSignal("nope"); err == nil {
		t.Error("unknown sensor base signal accepted")
	}
}

func TestStationRejectsCorruptFrame(t *testing.T) {
	st, _ := New(testConfig())
	ds := smallDataset()
	comp, _ := core.NewCompressor(testConfig())
	tr, _ := comp.Encode(ds.File(0))
	frame, _ := wire.Encode(tr)
	frame[len(frame)-1] ^= 1
	if err := st.ReceiveFrame("s", frame); err == nil {
		t.Error("corrupt frame accepted")
	}
}

func TestStationRejectsOutOfOrder(t *testing.T) {
	st, _ := New(testConfig())
	ds := smallDataset()
	comp, _ := core.NewCompressor(testConfig())
	t0, _ := comp.Encode(ds.File(0))
	t1, _ := comp.Encode(ds.File(1))
	if err := st.Receive("s", t1); err == nil {
		t.Error("out-of-order transmission accepted")
	}
	if err := st.Receive("s", t0); err != nil {
		t.Fatal(err)
	}
}

func TestLogStorePersistAndReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "logs")
	ls, err := NewLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset()
	comp, _ := core.NewCompressor(testConfig())
	live, _ := New(testConfig())
	for f := 0; f < 3; f++ {
		tr, err := comp.Encode(ds.File(f))
		if err != nil {
			t.Fatal(err)
		}
		frame, err := wire.Encode(tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := ls.Append("node/7", frame); err != nil {
			t.Fatal(err)
		}
		if err := live.ReceiveFrame("node/7", frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	// Sensor IDs with path separators are sanitised.
	if _, err := os.Stat(filepath.Join(dir, "node_7.sbrlog")); err != nil {
		t.Fatalf("expected sanitised log file: %v", err)
	}

	rebuilt, _ := New(testConfig())
	ls2, _ := NewLogStore(dir)
	if err := ls2.LoadSensorLog(rebuilt, "node/7"); err != nil {
		t.Fatal(err)
	}
	wantHist, _ := live.History("node/7", 0)
	gotHist, err := rebuilt.History("node/7", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !timeseries.Equal(gotHist, wantHist, 0) {
		t.Error("replayed station history differs from the live one")
	}
}

func TestStationConcurrentSensors(t *testing.T) {
	st, _ := New(testConfig())
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			ds := datagen.StocksSized(int64(g+1), 64, 2)
			comp, err := core.NewCompressor(testConfig())
			if err != nil {
				done <- err
				return
			}
			id := string(rune('a' + g))
			for f := 0; f < 2; f++ {
				tr, err := comp.Encode(ds.File(f))
				if err != nil {
					done <- err
					return
				}
				if err := st.Receive(id, tr); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(st.Sensors()); got != 4 {
		t.Errorf("%d sensors registered, want 4", got)
	}
}

func TestStationErrorBounds(t *testing.T) {
	// A sensor running under the MaxAbs metric ships a guaranteed bound
	// with every transmission; the station must surface it with answers
	// and the bound must actually hold.
	cfg := testConfig()
	cfg.Metric = metrics.MaxAbs
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset()
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 2; f++ {
		tr, err := comp.Encode(ds.File(f))
		if err != nil {
			t.Fatal(err)
		}
		if tr.ErrBound <= 0 {
			t.Fatalf("transmission %d has no error bound", f)
		}
		frame, err := wire.Encode(tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.ReceiveFrame("s", frame); err != nil {
			t.Fatal(err)
		}
	}
	for idx := 0; idx < 2*ds.FileLen; idx += 17 {
		v, bound, err := st.AtWithBound("s", 0, idx)
		if err != nil {
			t.Fatal(err)
		}
		if bound <= 0 {
			t.Fatalf("no bound at sample %d", idx)
		}
		orig := ds.Rows[0][idx]
		if math.Abs(v-orig) > bound+1e-9 {
			t.Fatalf("sample %d: |%v − %v| exceeds the guaranteed bound %v",
				idx, v, orig, bound)
		}
	}
	worst, err := st.RangeBound("s", 0, 2*ds.FileLen)
	if err != nil {
		t.Fatal(err)
	}
	if worst <= 0 {
		t.Error("range bound missing")
	}
	if _, err := st.RangeBound("s", 5, 5); err == nil {
		t.Error("empty range bound accepted")
	}
	if _, err := st.RangeBound("nope", 0, 1); err == nil {
		t.Error("unknown sensor accepted")
	}
}

func TestStationNoBoundsUnderSSE(t *testing.T) {
	st, _ := New(testConfig())
	ds := smallDataset()
	feed(t, st, "s", ds, 1, false)
	_, bound, err := st.AtWithBound("s", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bound != 0 {
		t.Errorf("SSE-metric sensor reported bound %v, want 0", bound)
	}
}

func TestStationReceiveFailureLeavesStateConsistent(t *testing.T) {
	// A rejected transmission (wrong order) must not corrupt the sensor's
	// log: subsequent valid transmissions still decode and the history
	// stays contiguous.
	st, _ := New(testConfig())
	ds := smallDataset()
	comp, _ := core.NewCompressor(testConfig())
	t0, _ := comp.Encode(ds.File(0))
	t1, _ := comp.Encode(ds.File(1))
	t2, _ := comp.Encode(ds.File(2))

	if err := st.Receive("s", t0); err != nil {
		t.Fatal(err)
	}
	if err := st.Receive("s", t2); err == nil { // gap: must be rejected
		t.Fatal("gapped transmission accepted")
	}
	if err := st.Receive("s", t1); err != nil {
		t.Fatalf("valid transmission rejected after a failed one: %v", err)
	}
	if err := st.Receive("s", t2); err != nil {
		t.Fatalf("resumed sequence rejected: %v", err)
	}
	stats, _ := st.SensorStats("s")
	if stats.Transmissions != 3 {
		t.Errorf("%d transmissions recorded, want 3", stats.Transmissions)
	}
	hist, err := st.History("s", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3*ds.FileLen {
		t.Errorf("history length %d after recovery", len(hist))
	}
}

func TestStationBatchShapeChangeRejected(t *testing.T) {
	st, _ := New(testConfig())
	ds := smallDataset()
	comp, _ := core.NewCompressor(testConfig())
	t0, _ := comp.Encode(ds.File(0))
	if err := st.Receive("s", t0); err != nil {
		t.Fatal(err)
	}
	// Forge a transmission with a different shape but the right sequence.
	bad := *t0
	bad.Seq = 1
	bad.N = t0.N + 1
	if err := st.Receive("s", &bad); err == nil {
		t.Error("shape change accepted")
	}
}

func TestReplayStopsOnCorruptFrame(t *testing.T) {
	ds := smallDataset()
	comp, _ := core.NewCompressor(testConfig())
	t0, _ := comp.Encode(ds.File(0))
	frame, _ := wire.Encode(t0)
	corrupt := append([]byte(nil), frame...)
	corrupt = append(corrupt, frame[:len(frame)/2]...) // truncated second frame

	var replayed int
	err := Replay(bytes.NewReader(corrupt), func(*core.Transmission) error {
		replayed++
		return nil
	})
	if err == nil {
		t.Error("corrupt log replayed without error")
	}
	if replayed != 1 {
		t.Errorf("replayed %d frames before the corruption, want 1", replayed)
	}
}

func TestReplayCallbackErrorPropagates(t *testing.T) {
	ds := smallDataset()
	comp, _ := core.NewCompressor(testConfig())
	t0, _ := comp.Encode(ds.File(0))
	frame, _ := wire.Encode(t0)
	boom := errors.New("sink failed")
	err := Replay(bytes.NewReader(frame), func(*core.Transmission) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("callback error not propagated: %v", err)
	}
}

func TestStationSensorRestart(t *testing.T) {
	st, _ := New(testConfig())
	ds := smallDataset()

	// First life: two transmissions.
	comp1, _ := core.NewCompressor(testConfig())
	for f := 0; f < 2; f++ {
		tr, _ := comp1.Encode(ds.File(f))
		if err := st.Receive("s", tr); err != nil {
			t.Fatal(err)
		}
	}
	// Reboot: a fresh compressor re-numbers from zero with an empty base
	// signal. The station must accept it and keep the history growing.
	comp2, _ := core.NewCompressor(testConfig())
	tr, _ := comp2.Encode(ds.File(2))
	if err := st.Receive("s", tr); err != nil {
		t.Fatalf("restart transmission rejected: %v", err)
	}
	tr2, _ := comp2.Encode(ds.File(3))
	if err := st.Receive("s", tr2); err != nil {
		t.Fatalf("post-restart transmission rejected: %v", err)
	}

	stats, _ := st.SensorStats("s")
	if stats.Transmissions != 4 || stats.Restarts != 1 {
		t.Errorf("stats = %+v, want 4 transmissions and 1 restart", stats)
	}
	hist, err := st.History("s", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4*ds.FileLen {
		t.Errorf("history length %d after restart, want %d", len(hist), 4*ds.FileLen)
	}
	// The post-restart chunks must still be sane reconstructions.
	orig := ds.Rows[0][2*ds.FileLen : 4*ds.FileLen]
	if mse := metrics.MeanSquared(orig, hist[2*ds.FileLen:]); mse > orig.Variance() {
		t.Errorf("post-restart reconstruction MSE %v vs variance %v", mse, orig.Variance())
	}
	// The replica matches the *second* compressor now.
	replica, _ := st.BaseSignal("s")
	if !timeseries.Equal(replica, comp2.BaseSignal(), 0) {
		t.Error("post-restart base replica does not match the new sensor")
	}
}

func TestStationRestartDisabled(t *testing.T) {
	st, _ := New(testConfig())
	st.AllowRestart = false
	ds := smallDataset()
	comp1, _ := core.NewCompressor(testConfig())
	tr, _ := comp1.Encode(ds.File(0))
	if err := st.Receive("s", tr); err != nil {
		t.Fatal(err)
	}
	comp2, _ := core.NewCompressor(testConfig())
	tr2, _ := comp2.Encode(ds.File(1))
	if err := st.Receive("s", tr2); err == nil {
		t.Error("restart accepted with AllowRestart disabled")
	}
}
