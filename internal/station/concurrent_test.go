package station

import (
	"sync"
	"testing"

	"sbr/internal/obs"
)

// TestConcurrentReadStress is the read-path correctness gate for the
// per-sensor locking rework: N reader goroutines hammer hot and cold
// History / Range / At / Aggregate queries on sensors that M writer
// goroutines are simultaneously ingesting into, under -race in CI. Every
// answer must be byte-identical to a sequential reference station that
// received the full stream up front — a query racing ingest may observe
// any chunk-count prefix of the stream, but never a torn or stale value.
func TestConcurrentReadStress(t *testing.T) {
	const (
		preload  = 32 // frames fed before readers start
		total    = 64 // frames each sensor eventually holds
		batchLen = 16
		readers  = 4
		iters    = 300
	)
	cfg := restoreConfig()
	frames := encodeTestFrames(t, cfg, total, batchLen)
	sensors := []string{"s0", "s1", "s2"}

	// Sequential reference: the whole stream, all in memory.
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sensors {
		feedFrames(t, ref, id, frames)
	}
	refHist := make(map[string][]float64, len(sensors))
	for _, id := range sensors {
		h, err := ref.History(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		refHist[id] = h
	}

	// Live station: tight memory window over a real archive, so readers
	// constantly cross the hot/cold boundary; instrumented, so the lock
	// wait and cold-chunk metrics paths run under the race detector too.
	st, store := newArchivedStation(t, cfg, t.TempDir(), 8, 8)
	defer store.Close()
	st.Instrument(obs.NewRegistry())
	for _, id := range sensors {
		feedFrames(t, st, id, frames[:preload])
	}

	// Writers: s0 and s1 keep absorbing the rest of the stream while
	// readers run; s2 stays static. Per-sensor order is preserved because
	// each sensor has exactly one writer.
	var wg sync.WaitGroup
	for _, id := range sensors[:2] {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, frame := range frames[preload:] {
				if err := st.ReceiveFrameFrom(id, 1, frame); err != nil {
					t.Errorf("writer %s frame %d: %v", id, preload+i, err)
					return
				}
			}
		}()
	}

	staticSamples := preload * batchLen
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := sensors[(r+i)%len(sensors)]
				want := refHist[id]
				switch i % 4 {
				case 0:
					// Full history: must be a byte-identical prefix of the
					// reference, whole chunks only.
					got, err := st.History(id, 0)
					if err != nil {
						t.Errorf("History(%s): %v", id, err)
						return
					}
					if len(got) < staticSamples || len(got) > len(want) || len(got)%batchLen != 0 {
						t.Errorf("History(%s) returned %d samples, want a chunk multiple in [%d,%d]",
							id, len(got), staticSamples, len(want))
						return
					}
					for j, v := range got {
						if v != want[j] {
							t.Errorf("History(%s)[%d] = %v, reference %v", id, j, v, want[j])
							return
						}
					}
				case 1:
					// Cold-through-hot range over the static prefix.
					from := (i * 13) % (staticSamples / 2)
					to := staticSamples - (i*7)%(staticSamples/4)
					got, err := st.Range(id, 0, from, to)
					if err != nil {
						t.Errorf("Range(%s,%d,%d): %v", id, from, to, err)
						return
					}
					for j, v := range got {
						if v != want[from+j] {
							t.Errorf("Range(%s)[%d] = %v, reference %v", id, j, v, want[from+j])
							return
						}
					}
				case 2:
					idx := (i * 31) % staticSamples
					got, err := st.At(id, 0, idx)
					if err != nil {
						t.Errorf("At(%s,%d): %v", id, idx, err)
						return
					}
					if got != want[idx] {
						t.Errorf("At(%s,%d) = %v, reference %v", id, idx, got, want[idx])
						return
					}
				case 3:
					// Index-walk aggregate over the static prefix: the merge
					// sequence depends only on the range, so the sum must
					// match the reference bit for bit even mid-ingest.
					from := (i * 11) % (staticSamples / 3)
					to := staticSamples - (i*5)%(staticSamples/3)
					got, _, err := st.AggregateWithBound(id, 0, from, to, AggSum)
					if err != nil {
						t.Errorf("Aggregate(%s,%d,%d): %v", id, from, to, err)
						return
					}
					wantSum, _, err := ref.AggregateWithBound(id, 0, from, to, AggSum)
					if err != nil {
						t.Errorf("reference aggregate: %v", err)
						return
					}
					if got != wantSum {
						t.Errorf("Aggregate(%s,[%d,%d)) = %v, reference %v", id, from, to, got, wantSum)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// Quiesced: top up the static sensor, then every sensor's full history
	// and every query kind must match the reference exactly.
	feedFrames(t, st, "s2", frames[preload:])
	for _, id := range sensors {
		compareStations(t, st, ref, id)
	}
}
