package station

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"sbr/internal/core"
	"sbr/internal/datagen"
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
)

// aggregateNaive is the pre-index implementation — clone the range, reduce
// the clone — kept as the benchmark and correctness baseline.
func aggregateNaive(st *Station, id string, row, from, to int, kind AggregateKind) (float64, error) {
	seg, err := st.Range(id, row, from, to)
	if err != nil {
		return 0, err
	}
	if len(seg) == 0 {
		return 0, fmt.Errorf("station: aggregate over empty range [%d,%d)", from, to)
	}
	switch kind {
	case AggAvg:
		return seg.Mean(), nil
	case AggSum:
		return seg.Sum(), nil
	case AggMin:
		return seg.Min(), nil
	case AggMax:
		return seg.Max(), nil
	default:
		return math.NaN(), fmt.Errorf("station: unknown aggregate kind %d", kind)
	}
}

// TestAggregateMatchesNaive cross-checks the indexed path against the
// naive scan over many random ranges, including chunk-aligned and ragged
// ones, for every aggregate kind.
func TestAggregateMatchesNaive(t *testing.T) {
	st, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := datagen.StocksSized(1, 64, 7)
	feed(t, st, "s", ds, 7, false)
	total := 7 * ds.FileLen
	rng := rand.New(rand.NewSource(11))

	check := func(from, to int) {
		t.Helper()
		for _, kind := range []AggregateKind{AggAvg, AggSum, AggMin, AggMax} {
			want, err := aggregateNaive(st, "s", 0, from, to, kind)
			if err != nil {
				t.Fatal(err)
			}
			got, err := st.Aggregate("s", 0, from, to, kind)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("kind %d [%d,%d): indexed %v, naive %v", kind, from, to, got, want)
			}
		}
	}
	check(0, total)                   // whole history, chunk aligned
	check(ds.FileLen, 3*ds.FileLen)   // aligned interior
	check(1, total-1)                 // both edges ragged
	check(3, ds.FileLen-3)            // inside one chunk
	check(ds.FileLen-1, ds.FileLen+1) // straddling one boundary
	for i := 0; i < 200; i++ {
		from := rng.Intn(total)
		to := from + 1 + rng.Intn(total-from)
		check(from, to)
	}
}

// TestAggregateWithBoundGuarantee feeds a MaxAbs-metric sensor and checks
// the deterministic error interval: answer ± bound must contain the true
// aggregate of the original samples, for every kind.
func TestAggregateWithBoundGuarantee(t *testing.T) {
	cfg := core.Config{TotalBand: 160, MBase: 64, Metric: metrics.MaxAbs}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := datagen.StocksSized(5, 64, 6)
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var original timeseries.Series
	for f := 0; f < 6; f++ {
		rows := ds.File(f)
		tr, err := comp.Encode(rows)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Bounded() {
			t.Fatalf("transmission %d under MaxAbs has no bound", f)
		}
		if err := st.Receive("mx", tr); err != nil {
			t.Fatal(err)
		}
		original = append(original, rows[0]...)
	}

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		from := rng.Intn(len(original))
		to := from + 1 + rng.Intn(len(original)-from)
		seg := original[from:to]
		truth := map[AggregateKind]float64{
			AggAvg: seg.Mean(), AggSum: seg.Sum(), AggMin: seg.Min(), AggMax: seg.Max(),
		}
		for kind, want := range truth {
			got, bound, err := st.AggregateWithBound("mx", 0, from, to, kind)
			if err != nil {
				t.Fatal(err)
			}
			if bound <= 0 {
				t.Fatalf("kind %d [%d,%d): non-positive bound %v", kind, from, to, bound)
			}
			if math.Abs(got-want) > bound+1e-9 {
				t.Fatalf("kind %d [%d,%d): |%v - %v| exceeds guaranteed bound %v",
					kind, from, to, got, want, bound)
			}
		}
	}
}

func TestAggregateErrors(t *testing.T) {
	st, _ := stationWithHistory(t)
	if _, err := st.Aggregate("nope", 0, 0, 1, AggAvg); err == nil {
		t.Error("unknown sensor accepted")
	}
	if _, err := st.Aggregate("s", 0, 5, 5, AggAvg); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := st.Aggregate("s", 0, 5, 2, AggAvg); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := st.Aggregate("s", 0, 0, 1<<30, AggAvg); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := st.Aggregate("s", 0, 0, 1, AggregateKind(42)); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestHistoryLen covers the new length accessor.
func TestHistoryLen(t *testing.T) {
	st, hist := stationWithHistory(t)
	n, err := st.HistoryLen("s")
	if err != nil {
		t.Fatal(err)
	}
	if n != len(hist) {
		t.Fatalf("HistoryLen %d, want %d", n, len(hist))
	}
	if _, err := st.HistoryLen("nope"); err == nil {
		t.Error("unknown sensor accepted")
	}
}

// TestConcurrentReceiveAndQuery stresses simultaneous ingest and queries;
// run it under `go test -race` (the race target) to verify the locking.
func TestConcurrentReceiveAndQuery(t *testing.T) {
	st, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const files = 16
	ds := datagen.StocksSized(1, 64, files)
	feed(t, st, "s", ds, 1, false) // seed so queries never see an empty log

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		comp, err := core.NewCompressor(testConfig())
		if err != nil {
			t.Error(err)
			return
		}
		for f := 0; f < files; f++ {
			tr, err := comp.Encode(ds.File(f))
			if err != nil {
				t.Error(err)
				return
			}
			if f >= 1 {
				if err := st.Receive("s", tr); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n, err := st.HistoryLen("s")
				if err != nil || n == 0 {
					t.Errorf("HistoryLen: %d, %v", n, err)
					return
				}
				if _, err := st.Aggregate("s", 0, 0, n, AggAvg); err != nil {
					t.Error(err)
					return
				}
				if _, err := st.Run(Query{Sensor: "s", Row: 0, Step: 16, Agg: AggMax}); err != nil {
					t.Error(err)
					return
				}
				if _, err := st.Exceedances("s", 0, 0, 0, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// The index must have stayed in lock-step with the chunks.
	n, _ := st.HistoryLen("s")
	if n != files*ds.FileLen {
		t.Fatalf("final history %d, want %d", n, files*ds.FileLen)
	}
	got, err := st.Aggregate("s", 0, 0, n, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	want, err := aggregateNaive(st, "s", 0, 0, n, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("post-stress sum %v, naive %v", got, want)
	}
}

// benchStation builds a 10-transmission, 20,480-samples-per-row history —
// the acceptance scale for the indexed-vs-naive comparison.
func benchStation(b *testing.B) *Station {
	b.Helper()
	cfg := core.Config{TotalBand: 600, MBase: 1024, Metric: metrics.SSE}
	st, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ds := datagen.StocksSized(1, 2048, 10)
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for f := 0; f < 10; f++ {
		tr, err := comp.Encode(ds.File(f))
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Receive("bench", tr); err != nil {
			b.Fatal(err)
		}
	}
	return st
}

func BenchmarkAggregateIndexed(b *testing.B) {
	st := benchStation(b)
	n, _ := st.HistoryLen("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Aggregate("bench", 0, 0, n, AggAvg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateNaive(b *testing.B) {
	st := benchStation(b)
	n, _ := st.HistoryLen("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aggregateNaive(st, "bench", 0, 0, n, AggAvg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregateIndexedRagged measures the worst case for the index:
// both edges mid-chunk, so two partial scans ride along with the O(log n)
// merge.
func BenchmarkAggregateIndexedRagged(b *testing.B) {
	st := benchStation(b)
	n, _ := st.HistoryLen("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Aggregate("bench", 0, 7, n-7, AggAvg); err != nil {
			b.Fatal(err)
		}
	}
}
