package station

import (
	"testing"

	"sbr/internal/core"
	"sbr/internal/segstore"
)

// newArchivedStation builds a station backed by a segment store in dir,
// with the in-memory window bounded to memChunks chunks.
func newArchivedStation(t *testing.T, cfg core.Config, dir string, memChunks, segChunks int) (*Station, *segstore.Store) {
	t.Helper()
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := segstore.Open(segstore.Options{Dir: dir, Config: cfg, SegmentChunks: segChunks})
	if err != nil {
		t.Fatal(err)
	}
	st.SetArchive(store, memChunks)
	return st, store
}

// feedFrames pushes frames through the transport receive path.
func feedFrames(t *testing.T, st *Station, id string, frames [][]byte) {
	t.Helper()
	for i, frame := range frames {
		if err := st.ReceiveFrameFrom(id, 1, frame); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
}

// compareStations asserts that every query kind answers byte-identically
// on both stations for the sensor's full recorded history.
func compareStations(t *testing.T, got, want *Station, id string) {
	t.Helper()
	total, err := want.HistoryLen(id)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := got.HistoryLen(id); err != nil || n != total {
		t.Fatalf("HistoryLen = %d (%v), want %d", n, err, total)
	}

	// Point and full-history reads.
	wh, err := want.History(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	gh, err := got.History(id, 0)
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(gh) != len(wh) {
		t.Fatalf("History length %d, want %d", len(gh), len(wh))
	}
	for i := range wh {
		if gh[i] != wh[i] {
			t.Fatalf("History[%d] = %v, want %v", i, gh[i], wh[i])
		}
	}
	for _, idx := range []int{0, 1, total / 3, total / 2, total - 1} {
		gv, gb, gerr := got.AtWithBound(id, 0, idx)
		wv, wb, werr := want.AtWithBound(id, 0, idx)
		if gerr != nil || werr != nil || gv != wv || gb != wb {
			t.Fatalf("AtWithBound(%d) = (%v,%v,%v), want (%v,%v,%v)", idx, gv, gb, gerr, wv, wb, werr)
		}
	}

	// Range reads spanning the cold/hot boundary.
	for _, r := range [][2]int{{0, 16}, {7, total / 2}, {total - 20, total}, {0, total}} {
		gr, gerr := got.Range(id, 0, r[0], r[1])
		wr, werr := want.Range(id, 0, r[0], r[1])
		if gerr != nil || werr != nil || len(gr) != len(wr) {
			t.Fatalf("Range%v: (%v,%v) lengths %d vs %d", r, gerr, werr, len(gr), len(wr))
		}
		for i := range wr {
			if gr[i] != wr[i] {
				t.Fatalf("Range%v[%d] = %v, want %v", r, i, gr[i], wr[i])
			}
		}
	}

	// Aggregates with error bounds, windowed queries, downsampling.
	for _, kind := range []AggregateKind{AggAvg, AggSum, AggMin, AggMax} {
		for _, r := range [][2]int{{0, total}, {5, total / 2}, {total - 30, total}} {
			gv, gb, gerr := got.AggregateWithBound(id, 0, r[0], r[1], kind)
			wv, wb, werr := want.AggregateWithBound(id, 0, r[0], r[1], kind)
			if gerr != nil || werr != nil || gv != wv || gb != wb {
				t.Fatalf("Aggregate kind %d %v = (%v,%v,%v), want (%v,%v,%v)",
					kind, r, gv, gb, gerr, wv, wb, werr)
			}
		}
	}
	grb, gerr := got.RangeBound(id, 0, total)
	wrb, werr := want.RangeBound(id, 0, total)
	if gerr != nil || werr != nil || grb != wrb {
		t.Fatalf("RangeBound = (%v,%v), want (%v,%v)", grb, gerr, wrb, werr)
	}
	gp, gerr := got.Run(Query{Sensor: id, Row: 0, Step: 32, Agg: AggMax})
	wp, werr := want.Run(Query{Sensor: id, Row: 0, Step: 32, Agg: AggMax})
	if gerr != nil || werr != nil || len(gp) != len(wp) {
		t.Fatalf("Run: (%v,%v) lengths %d vs %d", gerr, werr, len(gp), len(wp))
	}
	for i := range wp {
		if gp[i] != wp[i] {
			t.Fatalf("Run[%d] = %+v, want %+v", i, gp[i], wp[i])
		}
	}
	gd, gerr := got.Downsample(id, 0, 10)
	wd, werr := want.Downsample(id, 0, 10)
	if gerr != nil || werr != nil || len(gd) != len(wd) {
		t.Fatalf("Downsample: (%v,%v)", gerr, werr)
	}
	for i := range wd {
		if gd[i] != wd[i] {
			t.Fatalf("Downsample[%d] = %v, want %v", i, gd[i], wd[i])
		}
	}
	ge, gerr := got.Exceedances(id, 0, 0, total, 1.5)
	we, werr := want.Exceedances(id, 0, 0, total, 1.5)
	if gerr != nil || werr != nil || len(ge) != len(we) {
		t.Fatalf("Exceedances: (%v,%v) lengths %d vs %d", gerr, werr, len(ge), len(we))
	}
	for i := range we {
		if ge[i] != we[i] {
			t.Fatalf("Exceedances[%d] = %+v, want %+v", i, ge[i], we[i])
		}
	}
}

// TestColdQueriesBeyondMemoryWindow bounds the in-memory window far below
// the ingested history and verifies every query kind still answers
// byte-identically to an unbounded station — the cold path through the
// segment store is exercised for all early chunks.
func TestColdQueriesBeyondMemoryWindow(t *testing.T) {
	cfg := restoreConfig()
	frames := encodeTestFrames(t, cfg, 30, 16)

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedFrames(t, ref, "s", frames)

	st, store := newArchivedStation(t, cfg, t.TempDir(), 5, 4)
	defer store.Close()
	feedFrames(t, st, "s", frames)

	// The window must actually have evicted: the cold path is the test.
	log := st.lookupLog("s")
	if log.first == 0 || len(log.chunks) > 5 {
		t.Fatalf("no eviction happened: first=%d window=%d", log.first, len(log.chunks))
	}
	compareStations(t, st, ref, "s")
}

// TestChaosStationCheckpointTailRecovery kills a station mid-stream (no
// Close, no final checkpoint) and recovers a fresh one from the archive:
// the checkpoint restores the first 12 chunks without decoding, the tail
// replays exactly the 8 records archived after it, and every query kind
// matches an uncrashed reference — then the stream continues seamlessly.
func TestChaosStationCheckpointTailRecovery(t *testing.T) {
	cfg := restoreConfig()
	frames := encodeTestFrames(t, cfg, 21, 16)
	dir := t.TempDir()

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedFrames(t, ref, "s", frames[:20])

	st, _ := newArchivedStation(t, cfg, dir, 6, 4)
	feedFrames(t, st, "s", frames[:12])
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	feedFrames(t, st, "s", frames[12:20])
	// Crash: the station and store are abandoned with no Close.

	store2, err := segstore.Open(segstore.Options{Dir: dir, Config: cfg, SegmentChunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	st2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2.SetArchive(store2, 6)
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.FromCheckpoint {
		t.Error("recovery ignored the checkpoint")
	}
	if rec.Replayed != 8 {
		t.Errorf("replayed %d tail frames, want 8 (bounded tail, not full replay)", rec.Replayed)
	}
	if rec.Sensors != 1 {
		t.Errorf("recovered %d sensors, want 1", rec.Sensors)
	}
	compareStations(t, st2, ref, "s")

	// The decoder replica came back exact: the next live frame decodes.
	feedFrames(t, st2, "s", frames[20:])
	feedFrames(t, ref, "s", frames[20:])
	compareStations(t, st2, ref, "s")
}

// TestStationRecoverWithoutCheckpoint degrades gracefully: no checkpoint
// on disk means the whole archive replays through the receive path.
func TestStationRecoverWithoutCheckpoint(t *testing.T) {
	cfg := restoreConfig()
	frames := encodeTestFrames(t, cfg, 9, 16)
	dir := t.TempDir()

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedFrames(t, ref, "s", frames)

	st, _ := newArchivedStation(t, cfg, dir, 4, 3)
	feedFrames(t, st, "s", frames)
	// Crash with no checkpoint ever written.

	st2, store2 := newArchivedStation(t, cfg, dir, 4, 3)
	defer store2.Close()
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.FromCheckpoint {
		t.Error("FromCheckpoint true with no checkpoint on disk")
	}
	if rec.Replayed != len(frames) {
		t.Errorf("replayed %d frames, want the full archive (%d)", rec.Replayed, len(frames))
	}
	compareStations(t, st2, ref, "s")
}

// TestStationGracefulShutdownRecovery is the stationd shutdown path: final
// checkpoint, store closed (sealing the active segment). Reopening must
// recover purely from the checkpoint — zero frames replayed.
func TestStationGracefulShutdownRecovery(t *testing.T) {
	cfg := restoreConfig()
	frames := encodeTestFrames(t, cfg, 10, 16)
	dir := t.TempDir()

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedFrames(t, ref, "s", frames)

	st, store := newArchivedStation(t, cfg, dir, 4, 4)
	feedFrames(t, st, "s", frames)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	st2, store2 := newArchivedStation(t, cfg, dir, 4, 4)
	defer store2.Close()
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.FromCheckpoint || rec.Replayed != 0 {
		t.Errorf("graceful restart: FromCheckpoint=%v Replayed=%d, want true/0",
			rec.FromCheckpoint, rec.Replayed)
	}
	compareStations(t, st2, ref, "s")
}

// TestArchiveDegradedMode: when the store stops accepting appends the
// station must keep serving from memory — nothing non-durable is evicted.
func TestArchiveDegradedMode(t *testing.T) {
	cfg := restoreConfig()
	frames := encodeTestFrames(t, cfg, 12, 16)

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedFrames(t, ref, "s", frames)

	st, store := newArchivedStation(t, cfg, t.TempDir(), 3, 4)
	feedFrames(t, st, "s", frames[:4])
	// Kill the store under the station: every later append fails.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	feedFrames(t, st, "s", frames[4:])

	log := st.lookupLog("s")
	if !log.archDown {
		t.Fatal("store failure did not trip degraded mode")
	}
	if log.first != log.archived {
		t.Errorf("eviction passed the durable watermark: first=%d archived=%d", log.first, log.archived)
	}
	compareStations(t, st, ref, "s")
}
