package station

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"sbr/internal/core"
	"sbr/internal/wire"
)

// LogStore persists the raw frames of each sensor to an append-only log
// file, one file per sensor, mirroring the paper's "separate file exists
// for each sensor that is in contact with the base station" (Section 3.2).
// A station can later be rebuilt by replaying the logs.
type LogStore struct {
	dir string

	mu    sync.Mutex
	files map[string]*os.File
}

// NewLogStore opens (creating if needed) a log directory.
func NewLogStore(dir string) (*LogStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("station: creating log dir: %w", err)
	}
	return &LogStore{dir: dir, files: make(map[string]*os.File)}, nil
}

// Append appends one frame to the named sensor's log.
func (ls *LogStore) Append(id string, frame []byte) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	f, ok := ls.files[id]
	if !ok {
		var err error
		f, err = os.OpenFile(ls.path(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("station: opening sensor log: %w", err)
		}
		ls.files[id] = f
	}
	if _, err := f.Write(frame); err != nil {
		return fmt.Errorf("station: appending to sensor log: %w", err)
	}
	return nil
}

// Sync flushes every open log file to stable storage — the shutdown path
// calls it before Close so an interrupt cannot lose buffered frames.
func (ls *LogStore) Sync() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	var first error
	for _, f := range ls.files {
		if err := f.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close closes all open log files.
func (ls *LogStore) Close() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	var first error
	for id, f := range ls.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(ls.files, id)
	}
	return first
}

// path maps a sensor ID to its log file, sanitising path separators.
func (ls *LogStore) path(id string) string {
	safe := strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':':
			return '_'
		}
		return r
	}, id)
	return filepath.Join(ls.dir, safe+".sbrlog")
}

// Replay reads every frame from one sensor log and feeds it to fn in order.
func Replay(r io.Reader, fn func(*core.Transmission) error) error {
	for {
		t, err := wire.Decode(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(t); err != nil {
			return err
		}
	}
}

// LoadSensorLog rebuilds the named sensor's state in st by replaying its
// log file from the store's directory.
func (ls *LogStore) LoadSensorLog(st *Station, id string) error {
	f, err := os.Open(ls.path(id))
	if err != nil {
		return fmt.Errorf("station: opening sensor log for replay: %w", err)
	}
	defer f.Close()
	return Replay(f, func(t *core.Transmission) error {
		return st.Receive(id, t)
	})
}
