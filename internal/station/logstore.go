package station

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"sbr/internal/core"
	"sbr/internal/wire"
)

// LogStore persists the raw frames of each sensor to an append-only log
// file, one file per sensor, mirroring the paper's "separate file exists
// for each sensor that is in contact with the base station" (Section 3.2).
// A station can later be rebuilt by replaying the logs.
type LogStore struct {
	dir string

	mu    sync.Mutex
	files map[string]*os.File
}

// NewLogStore opens (creating if needed) a log directory.
func NewLogStore(dir string) (*LogStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("station: creating log dir: %w", err)
	}
	return &LogStore{dir: dir, files: make(map[string]*os.File)}, nil
}

// Append appends one frame to the named sensor's log.
func (ls *LogStore) Append(id string, frame []byte) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	f, ok := ls.files[id]
	if !ok {
		var err error
		f, err = os.OpenFile(ls.path(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("station: opening sensor log: %w", err)
		}
		ls.files[id] = f
	}
	if _, err := f.Write(frame); err != nil {
		return fmt.Errorf("station: appending to sensor log: %w", err)
	}
	return nil
}

// Sync flushes every open log file to stable storage — the shutdown path
// calls it before Close so an interrupt cannot lose buffered frames.
func (ls *LogStore) Sync() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	var first error
	for _, f := range ls.files {
		if err := f.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close closes all open log files.
func (ls *LogStore) Close() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	var first error
	for id, f := range ls.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(ls.files, id)
	}
	return first
}

// logExt is the per-sensor log file extension; Restore derives sensor IDs
// from the file names, so IDs with sanitised characters restore under
// their sanitised spelling.
const logExt = ".sbrlog"

// path maps a sensor ID to its log file, sanitising path separators.
func (ls *LogStore) path(id string) string {
	safe := strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':':
			return '_'
		}
		return r
	}, id)
	return filepath.Join(ls.dir, safe+logExt)
}

// Replay reads every frame from one sensor log and feeds it to fn in order.
func Replay(r io.Reader, fn func(*core.Transmission) error) error {
	for {
		t, err := wire.Decode(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(t); err != nil {
			return err
		}
	}
}

// LoadSensorLog rebuilds the named sensor's state in st by replaying its
// log file from the store's directory.
func (ls *LogStore) LoadSensorLog(st *Station, id string) error {
	f, err := os.Open(ls.path(id))
	if err != nil {
		return fmt.Errorf("station: opening sensor log for replay: %w", err)
	}
	defer f.Close()
	return Replay(f, func(t *core.Transmission) error {
		return st.Receive(id, t)
	})
}

// ReplayFrames reads raw frames from one sensor log and feeds each to fn
// in order, without decoding the payload. It is the raw twin of Replay,
// used by crash recovery so the station rebuilds its retransmission
// fingerprints from the very bytes it once acknowledged.
func ReplayFrames(r io.Reader, fn func(frame []byte) error) error {
	br := bufio.NewReader(r)
	for {
		frame, err := wire.ReadFrame(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(frame); err != nil {
			return err
		}
	}
}

// RestoreStats summarises a crash-recovery pass over a log directory.
type RestoreStats struct {
	Sensors        int   // log files replayed
	Frames         int   // complete frames fed back into the station
	Duplicates     int   // logged frames the station already held (skipped)
	TornTails      int   // files whose torn or corrupt tail was truncated
	TruncatedBytes int64 // bytes cut from torn tails across all files
}

// Restore rebuilds st by replaying every per-sensor frame log in dir —
// the startup path of a crashed station. Each complete frame is fed back
// through the normal receive path, so the history, the aggregate index,
// the base-signal replica and the sequence state all resume exactly where
// the crash interrupted them. A torn final record (the crash landed
// mid-append) or a corrupt tail is truncated back to the last complete
// frame and counted, never fatal: the sensor retransmits the lost frame
// and the log heals. Call it after Instrument and before serving traffic.
func Restore(st *Station, dir string) (RestoreStats, error) {
	var stats RestoreStats
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return stats, nil // nothing persisted yet: a cold start
		}
		return stats, fmt.Errorf("station: reading log dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), logExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		id := strings.TrimSuffix(name, logExt)
		frames, dups, cut, err := restoreFile(st, filepath.Join(dir, name), id)
		stats.Frames += frames
		stats.Duplicates += dups
		if cut > 0 {
			stats.TornTails++
			stats.TruncatedBytes += cut
		}
		st.noteReplay(frames, cut > 0)
		if err != nil {
			return stats, err
		}
		stats.Sensors++
	}
	return stats, nil
}

// restoreFile replays one sensor log, truncating at the first incomplete
// or unacceptable record. good tracks the byte offset of the last frame
// the station holds, so the truncated file ends exactly on a frame
// boundary and the next append continues a valid log.
func restoreFile(st *Station, path, id string) (frames, dups int, cut int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("station: opening sensor log for restore: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("station: sizing sensor log: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, 0, fmt.Errorf("station: rewinding sensor log: %w", err)
	}
	br := bufio.NewReader(f)
	var good int64
	for {
		frame, rerr := wire.ReadFrame(br)
		if rerr == io.EOF {
			return frames, dups, 0, nil
		}
		if rerr == nil {
			switch serr := st.ReceiveFrameFrom(id, 0, frame); {
			case serr == nil:
				frames++
				good += int64(len(frame))
				continue
			case errors.Is(serr, ErrDuplicate):
				// A pre-dedup log may hold retransmitted frames; skip them
				// but keep the bytes — they are well-formed history.
				dups++
				good += int64(len(frame))
				continue
			}
		}
		// Torn or corrupt tail: every later frame is unsequenceable, so
		// cut the file back to the last frame the station accepted.
		if terr := f.Truncate(good); terr != nil {
			return frames, dups, 0, fmt.Errorf("station: truncating torn log tail: %w", terr)
		}
		if serr := f.Sync(); serr != nil {
			return frames, dups, 0, fmt.Errorf("station: syncing truncated log: %w", serr)
		}
		return frames, dups, size - good, nil
	}
}
