package station

import (
	"errors"
	"fmt"

	"sbr/internal/core"
	"sbr/internal/query"
	"sbr/internal/segstore"
	"sbr/internal/wire"
)

// This file attaches the persistent segment store to the station: every
// accepted transmission is archived synchronously (receive does the
// append), the in-memory history becomes a bounded window with cold reads
// falling through to the archive, and recovery becomes checkpoint-load
// plus a bounded tail replay of the records archived since — instead of
// the legacy full-log replay of Restore.

// SetArchive attaches store as the station's durable archive and bounds
// the per-sensor in-memory window to memChunks chunks (0: unbounded, no
// eviction). Attach before traffic arrives and before Recover.
func (s *Station) SetArchive(store *segstore.Store, memChunks int) {
	s.arch.Store(&archiveRef{store: store, memChunks: memChunks})
	s.forEachLog(func(_ string, l *sensorLog) {
		l.mu.Lock()
		l.view.Store(nil) // cached views bake the archive binding
		l.mu.Unlock()
	})
}

// Archive returns the attached segment store (nil when none is).
func (s *Station) Archive() *segstore.Store {
	store, _ := s.archiveBinding()
	return store
}

// Checkpoint snapshots the station — per sensor: decoder replica state,
// aggregate-index leaves, error bounds and receive bookkeeping — and
// durably installs it in the archive. Each sensor's slice is captured
// under that sensor's own lock (so per-sensor state is internally
// consistent); no lock is held across sensors or during the write, which
// keeps the checkpoint fsync entirely off the receive and query paths. A
// sensor absorbing frames mid-walk is simply captured at whichever chunk
// count the lock observed — recovery replays anything past it.
func (s *Station) Checkpoint() error {
	store, _ := s.archiveBinding()
	if store == nil {
		return errors.New("station: no archive attached")
	}
	ck := &segstore.Checkpoint{Sensors: make(map[string]*segstore.SensorCheckpoint)}
	s.forEachLog(func(id string, log *sensorLog) {
		log.mu.Lock()
		defer log.mu.Unlock()
		if log.frames == 0 || log.index == nil {
			return
		}
		sc := &segstore.SensorCheckpoint{
			Chunks:   log.totalChunks(),
			N:        log.n,
			M:        log.m,
			Decoder:  log.decoder.State(),
			Bounds:   append([]float64(nil), log.bounds...),
			Frames:   log.frames,
			Bytes:    log.bytes,
			Values:   log.values,
			Inserts:  append([]int(nil), log.inserts...),
			Restarts: log.restarts,
			NextSeq:  log.nextSeq,
			SrcNonce: log.srcNonce,
			ZeroSum:  log.zeroSum,
		}
		sc.IndexLeaves = make([][]query.Summary, log.n)
		for row := 0; row < log.n; row++ {
			sc.IndexLeaves[row] = log.index.RowLeaves(row)
		}
		ck.Sensors[id] = sc
	})
	return store.WriteCheckpoint(ck)
}

// RecoverStats summarises a recovery pass over the archive.
type RecoverStats struct {
	FromCheckpoint bool // a checkpoint was loaded (false: full archive replay)
	Sensors        int  // sensors recovered
	Replayed       int  // tail frames replayed through the receive path
}

// Recover rebuilds the station from the attached archive: load the newest
// checkpoint (decoder replicas and aggregate indexes come back without
// decoding anything), then replay only the archived records past each
// sensor's checkpoint coverage through the normal receive path. Without a
// checkpoint it degrades to replaying the whole archive. Call once, before
// serving traffic, with the archive already attached.
func (s *Station) Recover() (RecoverStats, error) {
	var st RecoverStats
	store, _ := s.archiveBinding()
	if store == nil {
		return st, errors.New("station: no archive attached")
	}
	ck, err := store.LoadCheckpoint()
	if err != nil && !errors.Is(err, segstore.ErrNoCheckpoint) {
		return st, err
	}
	cover := make(map[string]int)
	if ck != nil {
		st.FromCheckpoint = true
		for id, sc := range ck.Sensors {
			log, rerr := s.restoreSensor(sc)
			if rerr != nil {
				return st, fmt.Errorf("station: restoring sensor %q: %w", id, rerr)
			}
			s.installLog(id, log)
			cover[id] = sc.Chunks
		}
	}

	for _, id := range store.Sensors() {
		id := id
		err := store.ReplayFrom(id, cover[id], func(chunk int, frame []byte) error {
			t, derr := wire.DecodeBytes(frame)
			if derr != nil {
				return fmt.Errorf("station: replaying sensor %q chunk %d: %w", id, chunk, derr)
			}
			rerr := s.receive(id, t, frame, len(frame), 0, fingerprint(frame), true, nil)
			if rerr != nil {
				if errors.Is(rerr, ErrDuplicate) {
					return nil
				}
				return fmt.Errorf("station: replaying sensor %q chunk %d: %w", id, chunk, rerr)
			}
			st.Replayed++
			return nil
		})
		if err != nil {
			return st, err
		}
	}
	st.Sensors = int(s.nsensors.Load())
	if st.Replayed > 0 {
		s.noteReplay(st.Replayed, false)
	}
	return st, nil
}

// installLog publishes a restored sensor log in the directory.
func (s *Station) installLog(id string, l *sensorLog) {
	sh := s.shard(id)
	sh.mu.Lock()
	if _, ok := sh.sensors[id]; !ok {
		s.nsensors.Add(1)
	}
	sh.sensors[id] = l
	sh.mu.Unlock()
}

// restoreSensor rebuilds one sensor's log from its checkpoint slice.
func (s *Station) restoreSensor(sc *segstore.SensorCheckpoint) (*sensorLog, error) {
	dec, err := core.NewDecoderAt(s.cfg, sc.Decoder)
	if err != nil {
		return nil, err
	}
	log := &sensorLog{
		decoder:  dec,
		n:        sc.N,
		m:        sc.M,
		first:    sc.Chunks,
		archived: sc.Chunks,
		bounds:   append([]float64(nil), sc.Bounds...),
		frames:   sc.Frames,
		bytes:    sc.Bytes,
		values:   sc.Values,
		inserts:  append([]int(nil), sc.Inserts...),
		restarts: sc.Restarts,
		nextSeq:  sc.NextSeq,
		srcNonce: sc.SrcNonce,
		zeroSum:  sc.ZeroSum,
	}
	if sc.Chunks > 0 {
		ix, err := query.NewIndexFromLeaves(sc.N, sc.M, sc.IndexLeaves)
		if err != nil {
			return nil, err
		}
		met := s.metrics()
		ix.Instrument(met.queryQueries, met.queryNodes)
		log.index = ix
	}
	return log, nil
}
