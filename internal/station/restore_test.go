package station

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sbr/internal/core"
	"sbr/internal/metrics"
	"sbr/internal/obs"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

func restoreConfig() core.Config {
	return core.Config{TotalBand: 8, MBase: 8, Metric: metrics.SSE}
}

// encodeTestFrames returns n deterministic frames for one sensor.
func encodeTestFrames(t testing.TB, cfg core.Config, n, batchLen int) [][]byte {
	t.Helper()
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, 0, n)
	for b := 0; b < n; b++ {
		row := make(timeseries.Series, batchLen)
		for i := range row {
			row[i] = 2 * math.Sin(float64(b*batchLen+i)/5)
		}
		tr, err := comp.Encode([]timeseries.Series{row})
		if err != nil {
			t.Fatal(err)
		}
		frame, err := wire.Encode(tr)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
	}
	return frames
}

// runStation feeds frames into a fresh station while persisting them
// through a LogStore — the stationd wiring — and returns the station.
func runStation(t *testing.T, cfg core.Config, dir, id string, frames [][]byte) *Station {
	t.Helper()
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	for i, frame := range frames {
		if err := st.ReceiveFrame(id, frame); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if err := ls.Append(id, frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := ls.Sync(); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRestoreRebuildsStation is the kill-and-restart proof: a station
// dies after K frames, a fresh process replays the frame log, and the
// result answers every query identically — then accepts frame K as if
// nothing happened.
func TestRestoreRebuildsStation(t *testing.T) {
	const (
		id       = "recover-node"
		n        = 10
		batchLen = 16
	)
	cfg := restoreConfig()
	dir := t.TempDir()
	frames := encodeTestFrames(t, cfg, n+1, batchLen)
	before := runStation(t, cfg, dir, id, frames[:n])
	// The original process is gone; only the log directory survives.

	after, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	after.Instrument(reg)
	stats, err := Restore(after, dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if stats.Sensors != 1 || stats.Frames != n || stats.TornTails != 0 {
		t.Errorf("restore stats %+v, want 1 sensor, %d frames, no torn tails", stats, n)
	}

	wantLen, err := before.HistoryLen(id)
	if err != nil {
		t.Fatal(err)
	}
	gotLen, err := after.HistoryLen(id)
	if err != nil {
		t.Fatal(err)
	}
	if gotLen != wantLen {
		t.Fatalf("restored history length %d, want %d", gotLen, wantLen)
	}
	wantHist, _ := before.History(id, 0)
	gotHist, _ := after.History(id, 0)
	for i := range wantHist {
		if gotHist[i] != wantHist[i] {
			t.Fatalf("restored history diverges at %d", i)
		}
	}
	for _, kind := range []AggregateKind{AggSum, AggAvg, AggMin, AggMax} {
		want, err := before.Aggregate(id, 0, 0, wantLen, kind)
		if err != nil {
			t.Fatal(err)
		}
		got, err := after.Aggregate(id, 0, 0, wantLen, kind)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("aggregate %v: restored %v, original %v", kind, got, want)
		}
	}

	// The sequence state resumed too: the next live frame is accepted.
	if err := after.ReceiveFrame(id, frames[n]); err != nil {
		t.Errorf("frame %d after restore: %v", n, err)
	}
	// And the replay metric moved.
	if v := reg.Values()["sbr_station_replayed_frames_total"]; v != n {
		t.Errorf("sbr_station_replayed_frames_total = %v, want %d", v, n)
	}
}

// TestRestoreTornTail: the crash landed mid-append, leaving a torn final
// record. Restore must recover every complete frame, truncate the file
// back to a frame boundary, and leave the log appendable.
func TestRestoreTornTail(t *testing.T) {
	const (
		id       = "torn-node"
		n        = 6
		batchLen = 16
	)
	cfg := restoreConfig()
	dir := t.TempDir()
	frames := encodeTestFrames(t, cfg, n, batchLen)
	runStation(t, cfg, dir, id, frames[:n-1])

	// Simulate the torn append: half of frame n-1 lands on disk.
	path := filepath.Join(dir, id+logExt)
	torn := frames[n-1][:len(frames[n-1])/2]
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantSize := int64(len(full) - len(torn))

	after, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Restore(after, dir)
	if err != nil {
		t.Fatalf("Restore with torn tail: %v", err)
	}
	if stats.Frames != n-1 {
		t.Errorf("recovered %d frames, want %d", stats.Frames, n-1)
	}
	if stats.TornTails != 1 || stats.TruncatedBytes != int64(len(torn)) {
		t.Errorf("stats %+v, want 1 torn tail of %d bytes", stats, len(torn))
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != wantSize {
		t.Errorf("log size after truncation %d, want %d (a frame boundary)", fi.Size(), wantSize)
	}

	// The sensor retransmits the lost frame; the healed log accepts it.
	if err := after.ReceiveFrame(id, frames[n-1]); err != nil {
		t.Errorf("retransmitted frame after torn-tail recovery: %v", err)
	}
	ls, err := NewLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Append(id, frames[n-1]); err != nil {
		t.Fatal(err)
	}
	ls.Close()

	// A second restore over the healed log sees every frame, no tears.
	again, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats2, err := Restore(again, dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Frames != n || stats2.TornTails != 0 {
		t.Errorf("re-restore stats %+v, want %d frames and no torn tails", stats2, n)
	}
}

// TestRestoreCorruptTail: flipped bytes (not just a short write) in the
// last record must also be cut back to the previous frame boundary.
func TestRestoreCorruptTail(t *testing.T) {
	const (
		id       = "corrupt-node"
		n        = 4
		batchLen = 16
	)
	cfg := restoreConfig()
	dir := t.TempDir()
	frames := encodeTestFrames(t, cfg, n, batchLen)
	runStation(t, cfg, dir, id, frames)

	path := filepath.Join(dir, id+logExt)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte inside the last frame's body.
	mut := append([]byte(nil), full...)
	mut[len(mut)-len(frames[n-1])/2] ^= 0x5a
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	after, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Restore(after, dir)
	if err != nil {
		t.Fatalf("Restore with corrupt tail: %v", err)
	}
	if stats.Frames != n-1 || stats.TornTails != 1 {
		t.Errorf("stats %+v, want %d frames and 1 torn tail", stats, n-1)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(full) - len(frames[n-1])); fi.Size() != want {
		t.Errorf("log size %d after corrupt-tail cut, want %d", fi.Size(), want)
	}
}

// TestRestoreSkipsLoggedDuplicates: a log written before duplicate
// detection may hold retransmitted frames; replay must skip them without
// failing or double-counting.
func TestRestoreSkipsLoggedDuplicates(t *testing.T) {
	const (
		id       = "dup-log-node"
		batchLen = 16
	)
	cfg := restoreConfig()
	dir := t.TempDir()
	frames := encodeTestFrames(t, cfg, 3, batchLen)
	ls, err := NewLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range [][]byte{frames[0], frames[1], frames[1], frames[2]} {
		if err := ls.Append(id, frame); err != nil {
			t.Fatal(err)
		}
	}
	ls.Close()

	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Restore(st, dir)
	if err != nil {
		t.Fatalf("Restore over a log with duplicates: %v", err)
	}
	if stats.Frames != 3 || stats.Duplicates != 1 || stats.TornTails != 0 {
		t.Errorf("stats %+v, want 3 frames, 1 duplicate, no torn tails", stats)
	}
	got, err := st.SensorStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Transmissions != 3 {
		t.Errorf("station holds %d transmissions, want 3", got.Transmissions)
	}
}

// TestRestoreColdStart: no log directory at all is a cold start, not an
// error.
func TestRestoreColdStart(t *testing.T) {
	st, err := New(restoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Restore(st, filepath.Join(t.TempDir(), "never-created"))
	if err != nil {
		t.Fatalf("cold start errored: %v", err)
	}
	if stats != (RestoreStats{}) {
		t.Errorf("cold start stats %+v, want zero", stats)
	}
}

// TestDuplicateDetection drives the station-level dedup rules directly:
// retransmissions (same incarnation) are duplicates, reboots (fresh
// incarnation nonce, seq 0) are not.
func TestDuplicateDetection(t *testing.T) {
	cfg := restoreConfig()
	frames := encodeTestFrames(t, cfg, 2, 16)
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const incarnationA, incarnationB = 0xA11CE, 0xB0B

	if err := st.ReceiveFrameFrom("node", incarnationA, frames[0]); err != nil {
		t.Fatal(err)
	}
	// Retransmission of seq 0 from the same incarnation: duplicate.
	if err := st.ReceiveFrameFrom("node", incarnationA, frames[0]); !errors.Is(err, ErrDuplicate) {
		t.Errorf("same-incarnation seq-0 retransmission gave %v, want ErrDuplicate", err)
	}
	if err := st.ReceiveFrameFrom("node", incarnationA, frames[1]); err != nil {
		t.Fatal(err)
	}
	// Retransmission of an interior sequence: duplicate regardless of source.
	if err := st.ReceiveFrameFrom("node", incarnationB, frames[1]); !errors.Is(err, ErrDuplicate) {
		t.Errorf("interior retransmission gave %v, want ErrDuplicate", err)
	}
	// Seq 0 from a *different* incarnation is a reboot, not a duplicate —
	// even though the frame bytes are identical (deterministic sensor).
	if err := st.ReceiveFrameFrom("node", incarnationB, frames[0]); err != nil {
		t.Errorf("reboot after nonce change gave %v, want acceptance", err)
	}
	stats, err := st.SensorStats("node")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", stats.Restarts)
	}
	if stats.Transmissions != 3 {
		t.Errorf("transmissions = %d, want 3", stats.Transmissions)
	}
}

// TestDuplicateDetectionWithoutNonce covers the plain-Replay and legacy
// path where no incarnation nonce exists: the frame fingerprint decides
// whether seq 0 is the same frame again (duplicate) or a reboot.
func TestDuplicateDetectionWithoutNonce(t *testing.T) {
	cfg := restoreConfig()
	frames := encodeTestFrames(t, cfg, 1, 16)
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ReceiveFrame("node", frames[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.ReceiveFrame("node", frames[0]); !errors.Is(err, ErrDuplicate) {
		t.Errorf("byte-identical seq-0 frame without nonce gave %v, want ErrDuplicate", err)
	}
	// A different seq-0 frame (new data after a real reboot) is accepted.
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := make(timeseries.Series, 16)
	for i := range row {
		row[i] = float64(i * i)
	}
	tr, err := comp.Encode([]timeseries.Series{row})
	if err != nil {
		t.Fatal(err)
	}
	reboot, err := wire.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(reboot, frames[0]) {
		t.Fatal("test needs distinct frame bytes")
	}
	if err := st.ReceiveFrame("node", reboot); err != nil {
		t.Errorf("distinct seq-0 frame without nonce gave %v, want acceptance (reboot)", err)
	}
}

// FuzzReplayFrames hammers the crash-recovery reader with arbitrary log
// bytes: it must never panic, and whatever frames it yields must be
// well-formed enough to re-decode.
func FuzzReplayFrames(f *testing.F) {
	cfg := restoreConfig()
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var log []byte
	for b := 0; b < 3; b++ {
		row := make(timeseries.Series, 16)
		for i := range row {
			row[i] = math.Sin(float64(b*16+i) / 3)
		}
		tr, err := comp.Encode([]timeseries.Series{row})
		if err != nil {
			f.Fatal(err)
		}
		frame, err := wire.Encode(tr)
		if err != nil {
			f.Fatal(err)
		}
		log = append(log, frame...)
	}
	f.Add(log)              // a clean multi-frame log
	f.Add(log[:len(log)-7]) // torn tail
	mut := append([]byte(nil), log...)
	mut[len(mut)/2] ^= 0xff
	f.Add(mut) // corrupt interior
	f.Add([]byte{})
	f.Add([]byte("SBRT"))

	f.Fuzz(func(t *testing.T, data []byte) {
		err := ReplayFrames(bytes.NewReader(data), func(frame []byte) error {
			// ReadFrame does not verify the CRC (the station's decode does),
			// but every frame it yields must be framing-stable: reading it
			// back from its own bytes reproduces it exactly, so a replayed
			// log can never smear one record into the next.
			again, err := wire.ReadFrame(bytes.NewReader(frame))
			if err != nil {
				t.Fatalf("yielded frame does not re-frame: %v", err)
			}
			if !bytes.Equal(again, frame) {
				t.Fatal("yielded frame re-frames to different bytes")
			}
			return nil
		})
		_ = err // torn and corrupt logs legitimately error; panics are the bug
	})
}

// TestInProcessRebootSameNonce: a sensor application that reboots while
// its radio keeps the same long-lived transport client (same incarnation
// nonce) starts a fresh compressor and sends a NEW seq-0 frame whose
// bytes differ from the incarnation's original first frame. That is a
// reboot, not a retransmission — the fingerprint splits the same-nonce
// case.
func TestInProcessRebootSameNonce(t *testing.T) {
	cfg := restoreConfig()
	frames := encodeTestFrames(t, cfg, 1, 16)
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const nonce = 0xA11CE
	if err := st.ReceiveFrameFrom("node", nonce, frames[0]); err != nil {
		t.Fatal(err)
	}
	// Fresh compressor, different samples: a genuinely new first frame.
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := make(timeseries.Series, 16)
	for i := range row {
		row[i] = float64(3*i + 7)
	}
	tr, err := comp.Encode([]timeseries.Series{row})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(frame, frames[0]) {
		t.Fatal("test frames must differ for this scenario")
	}
	if err := st.ReceiveFrameFrom("node", nonce, frame); err != nil {
		t.Errorf("same-nonce reboot with new bytes gave %v, want acceptance", err)
	}
	stats, err := st.SensorStats("node")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Restarts != 1 || stats.Transmissions != 2 {
		t.Errorf("restarts=%d transmissions=%d, want 1 and 2", stats.Restarts, stats.Transmissions)
	}
}
