package station

import (
	"testing"

	"sbr/internal/core"
	"sbr/internal/segstore"
)

// The recovery benchmarks quantify what checkpointing buys at restart:
// full-archive replay decodes every archived frame through the receive
// path, while checkpoint+tail deserialises the snapshot and replays only
// the frames archived after it. Both restore the same queryable state.

const (
	benchChunks   = 768 // archived history size
	benchBatchLen = 64  // samples per chunk
)

// benchDatadir ingests benchChunks frames into a fresh datadir; when
// checkpointAt > 0 a checkpoint is installed at that chunk.
func benchDatadir(b *testing.B, cfg core.Config, checkpointAt int) string {
	b.Helper()
	dir := b.TempDir()
	store, err := segstore.Open(segstore.Options{Dir: dir, Config: cfg, SegmentChunks: 32})
	if err != nil {
		b.Fatal(err)
	}
	st, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	st.SetArchive(store, 16)
	frames := encodeTestFrames(b, cfg, benchChunks, benchBatchLen)
	for i, frame := range frames {
		if err := st.ReceiveFrameFrom("s", 1, frame); err != nil {
			b.Fatal(err)
		}
		if checkpointAt > 0 && i == checkpointAt-1 {
			if err := st.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

func benchRecover(b *testing.B, dir string, cfg core.Config, wantReplayed int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		store, err := segstore.Open(segstore.Options{Dir: dir, Config: cfg, SegmentChunks: 32})
		if err != nil {
			b.Fatal(err)
		}
		st, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		st.SetArchive(store, 16)
		rec, err := st.Recover()
		if err != nil {
			b.Fatal(err)
		}
		if rec.Replayed != wantReplayed {
			b.Fatalf("replayed %d frames, want %d", rec.Replayed, wantReplayed)
		}
		store.Close()
	}
}

// BenchmarkRecoverFullReplay restarts with no checkpoint: every archived
// frame decodes again.
func BenchmarkRecoverFullReplay(b *testing.B) {
	cfg := restoreConfig()
	dir := benchDatadir(b, cfg, 0)
	b.ResetTimer()
	benchRecover(b, dir, cfg, benchChunks)
}

// BenchmarkRecoverCheckpointTail restarts from a checkpoint covering all
// but the last 16 chunks: only the tail replays.
func BenchmarkRecoverCheckpointTail(b *testing.B) {
	cfg := restoreConfig()
	dir := benchDatadir(b, cfg, benchChunks-16)
	b.ResetTimer()
	benchRecover(b, dir, cfg, 16)
}
