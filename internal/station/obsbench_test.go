package station

import (
	"math"
	"testing"

	"sbr/internal/core"
	"sbr/internal/metrics"
	"sbr/internal/obs"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

// benchFrames encodes one sensor's stream of wire frames once, so the
// benchmark loop measures only the station's receive path.
func benchFrames(b *testing.B, cfg core.Config, n, m, count int) [][]byte {
	b.Helper()
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		b.Fatal(err)
	}
	frames := make([][]byte, count)
	for f := range frames {
		rows := make([]timeseries.Series, n)
		for q := range rows {
			rows[q] = make(timeseries.Series, m)
			for i := range rows[q] {
				x := float64(f*m+i) / 25
				rows[q][i] = math.Sin(x + float64(q))
			}
		}
		t, err := comp.Encode(rows)
		if err != nil {
			b.Fatal(err)
		}
		frame, err := wire.Encode(t)
		if err != nil {
			b.Fatal(err)
		}
		frames[f] = frame
	}
	return frames
}

// BenchmarkReceiveFrame measures the ingest hot path with observability
// off (no-op metrics) and on (live registry): the acceptance bar for the
// instrumentation layer is under ~5% overhead between the two. The batch
// shape is the paper's deployment setting (three weather quantities,
// 256-sample buffers — sensorsim's defaults).
func BenchmarkReceiveFrame(b *testing.B) {
	const (
		n, m   = 3, 256
		stream = 8
	)
	cfg := core.Config{TotalBand: n * m / 8, MBase: n * m / 8, Metric: metrics.SSE}
	frames := benchFrames(b, cfg, n, m, stream)

	for _, mode := range []struct {
		name string
		reg  *obs.Registry
	}{
		{"noop", nil},
		{"obs", obs.NewRegistry()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var st *Station
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if i%stream == 0 {
					var err error
					st, err = New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					st.Instrument(mode.reg)
				}
				if err := st.ReceiveFrame("bench", frames[i%stream]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
