package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a wrapped client end and the raw server end of an
// in-memory connection.
func pipePair(in *Injector) (net.Conn, net.Conn) {
	c, s := net.Pipe()
	return in.Wrap(c), s
}

// TestDeterministicSchedule: the same seed must produce the same fault
// schedule, write for write — reproducibility is the whole point.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 99, Drop: 0.2, Corrupt: 0.2, Duplicate: 0.2}
	run := func() map[string]uint64 {
		in := New(cfg)
		cl, sv := pipePair(in)
		go io.Copy(io.Discard, sv) //nolint:errcheck — drain
		for i := 0; i < 200; i++ {
			cl.Write([]byte{byte(i), 1, 2, 3}) //nolint:errcheck — faults expected
		}
		cl.Close()
		sv.Close()
		return in.Counts()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults injected at 60% total probability")
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("fault %q: run 1 injected %d, run 2 injected %d", k, v, b[k])
		}
	}
}

// TestDropSwallowsBytes: a dropped write reports success while the peer
// sees nothing — the silent-loss model.
func TestDropSwallowsBytes(t *testing.T) {
	in := New(Config{Seed: 1, Drop: 1})
	cl, sv := pipePair(in)
	defer sv.Close()
	n, err := cl.Write([]byte("vanishes"))
	if err != nil || n != 8 {
		t.Fatalf("dropped write returned (%d, %v), want (8, nil)", n, err)
	}
	sv.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
	buf := make([]byte, 8)
	if n, _ := sv.Read(buf); n != 0 {
		t.Errorf("peer received %d bytes of a dropped write", n)
	}
	if got := in.Counts()["drop"]; got != 1 {
		t.Errorf("drop count = %d, want 1", got)
	}
}

// TestCorruptFlipsOneByte: exactly one byte differs, length preserved,
// and the caller's buffer is untouched.
func TestCorruptFlipsOneByte(t *testing.T) {
	in := New(Config{Seed: 2, Corrupt: 1})
	cl, sv := pipePair(in)
	defer sv.Close()
	orig := []byte("sixteen immutable bytes!")
	sent := append([]byte(nil), orig...)
	got := make([]byte, len(orig))
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(sv, got)
		done <- err
	}()
	if _, err := cl.Write(sent); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sent, orig) {
		t.Error("corrupt fault scribbled on the caller's buffer")
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ after corrupt fault, want exactly 1", diff)
	}
}

// TestDuplicateWritesTwice: the peer reads the payload back to back.
func TestDuplicateWritesTwice(t *testing.T) {
	in := New(Config{Seed: 3, Duplicate: 1})
	cl, sv := pipePair(in)
	defer sv.Close()
	payload := []byte("echo")
	got := make([]byte, 2*len(payload))
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(sv, got)
		done <- err
	}()
	if _, err := cl.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("echoecho")) {
		t.Errorf("peer read %q, want the payload twice", got)
	}
}

// TestCutClosesConnection: the write errors and the peer sees EOF.
func TestCutClosesConnection(t *testing.T) {
	in := New(Config{Seed: 4, Cut: 1})
	cl, sv := pipePair(in)
	defer sv.Close()
	if _, err := cl.Write([]byte("never arrives")); err == nil {
		t.Error("cut write reported success")
	}
	sv.SetReadDeadline(time.Now().Add(time.Second)) //nolint:errcheck
	if _, err := sv.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("peer read error %v after cut, want EOF", err)
	}
}

// TestTruncateSendsPrefix: the peer receives a strict prefix, then EOF.
func TestTruncateSendsPrefix(t *testing.T) {
	in := New(Config{Seed: 5, Truncate: 1})
	cl, sv := pipePair(in)
	defer sv.Close()
	payload := []byte("whole frame body here")
	go cl.Write(payload)                            //nolint:errcheck — conn severed mid-write
	sv.SetReadDeadline(time.Now().Add(time.Second)) //nolint:errcheck
	got, err := io.ReadAll(sv)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(payload) {
		t.Errorf("peer received %d bytes, want a strict prefix of %d", len(got), len(payload))
	}
	if !bytes.Equal(got, payload[:len(got)]) {
		t.Error("received bytes are not a prefix of the payload")
	}
}

// TestListenerWrapsAccepted: server-side injection via the wrapped
// listener fires on accepted connections too.
func TestListenerWrapsAccepted(t *testing.T) {
	in := New(Config{Seed: 6, Drop: 1})
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := in.Listener(base)
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		conn.Write([]byte("shed into the void")) //nolint:errcheck
		conn.Close()
	}()
	cl, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	<-done
	if got := in.Counts()["drop"]; got != 1 {
		t.Errorf("accepted-side drop count = %d, want 1", got)
	}
}

// TestNoFaultsPassthrough: a zero config is a transparent pipe.
func TestNoFaultsPassthrough(t *testing.T) {
	in := New(Config{Seed: 7})
	cl, sv := pipePair(in)
	defer sv.Close()
	payload := []byte("clean")
	got := make([]byte, len(payload))
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(sv, got)
		done <- err
	}()
	if _, err := cl.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("passthrough mangled %q into %q", payload, got)
	}
	if n := in.Injected(); n != 0 {
		t.Errorf("%d faults injected by a zero config", n)
	}
}

// TestBandwidthThrottle: a throttled link paces writes to the budget —
// pushing several times the per-second allowance must take proportional
// wall-clock time, and a zero budget must not pace at all.
func TestBandwidthThrottle(t *testing.T) {
	in := New(Config{Seed: 5, BytesPerSec: 4096})
	cl, sv := pipePair(in)
	defer sv.Close()
	go io.Copy(io.Discard, sv) //nolint:errcheck — drain

	// 8 KiB through a 4 KiB/s link: the tail write waits for the pacing
	// clock, so the whole burst needs at least ~1.5s of pacing (the first
	// write rides the idle clock for free).
	start := time.Now()
	for i := 0; i < 8; i++ {
		if _, err := cl.Write(make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 1200*time.Millisecond {
		t.Errorf("8 KiB through 4 KiB/s took %s, want >= 1.2s of pacing", elapsed)
	}
	if in.Counts()["throttle"] == 0 {
		t.Error("no throttle events counted")
	}
	cl.Close()
}

// TestJitterDelaysWrites: configured jitter adds latency and counts
// events; an unconfigured injector draws no jitter randomness (the
// deterministic-schedule guarantee).
func TestJitterDelaysWrites(t *testing.T) {
	in := New(Config{Seed: 6, Jitter: 5 * time.Millisecond})
	cl, sv := pipePair(in)
	defer sv.Close()
	go io.Copy(io.Discard, sv) //nolint:errcheck — drain

	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := cl.Write([]byte("jittery")); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 20 draws uniform in [0, 5ms]: expectation 50ms; even a very lucky
	// run should exceed 10ms, and a no-jitter run would finish in ~0.
	if elapsed < 10*time.Millisecond {
		t.Errorf("20 jittered writes took %s, want noticeable added latency", elapsed)
	}
	if in.Counts()["jitter"] == 0 {
		t.Error("no jitter events counted")
	}
	cl.Close()
}

// TestThrottleAndFaultsCompose: congestion shaping runs before the fault
// roll, so a throttled lossy link still injects its schedule.
func TestThrottleAndFaultsCompose(t *testing.T) {
	in := New(Config{Seed: 9, Drop: 0.5, BytesPerSec: 64 << 10, Jitter: time.Millisecond})
	cl, sv := pipePair(in)
	defer sv.Close()
	go io.Copy(io.Discard, sv) //nolint:errcheck — drain
	for i := 0; i < 50; i++ {
		cl.Write([]byte{1, 2, 3, 4}) //nolint:errcheck — drops expected
	}
	counts := in.Counts()
	if counts["drop"] == 0 {
		t.Error("throttled link stopped injecting drops")
	}
	cl.Close()
}
