// Package faultnet wraps net.Conn and net.Listener with deterministic,
// seeded fault injection: writes can be silently dropped, corrupted,
// duplicated, truncated, delayed, half-closed or turned into a hard
// connection cut. It exists to prove the transport's fault-tolerance
// claims — the chaos tests stream thousands of frames through an
// adversarial link and assert the station history is byte-identical to
// the fault-free run.
//
// Faults are injected on the write path only: a corrupted or lost byte on
// the sensor→station direction is indistinguishable from radio loss and
// the retransmission protocol must absorb it, whereas corrupting the
// single-byte acknowledgement stream could forge an OK for a frame the
// station rejected — a failure mode the current ack format cannot detect
// (it would take an ack checksum) and which DESIGN.md documents as out of
// scope. Connection-level faults (cuts, half-closes) still break both
// directions.
//
// Determinism: every wrapped connection draws its own math/rand stream
// seeded from Config.Seed and a per-injector connection counter, so a
// fixed seed yields a reproducible fault schedule regardless of
// scheduling noise between connections.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets per-write fault probabilities, each in [0, 1]. At most one
// fault fires per Write call (a single roll walks the cumulative
// distribution), so the probabilities should sum to at most 1.
type Config struct {
	Seed int64 // base seed for the per-connection fault streams

	Drop      float64 // swallow the write: bytes vanish, no error (silent loss)
	Corrupt   float64 // flip one random byte of the write
	Duplicate float64 // transmit the bytes twice
	Truncate  float64 // send a strict prefix, then sever the connection
	Cut       float64 // hard-close instead of writing (connection loss)
	HalfClose float64 // complete the write, then close the write side
	Delay     float64 // sleep up to MaxDelay before the write

	MaxDelay time.Duration // upper bound for injected delays (default 10ms)

	// BytesPerSec throttles every connection to a bandwidth budget
	// (0: unlimited): each write advances a per-connection pacing clock by
	// its size over the budget, and a write that arrives before the clock
	// frees sleeps the difference. Unlike the probabilistic faults above
	// this models a *congested* link rather than a lossy one — soak tests
	// use it to keep many frames in flight long enough for crashes and
	// sheds to land mid-transmission.
	BytesPerSec int

	// Jitter adds a uniform random [0, Jitter] latency to every write
	// (0: none) — congestion's variance, on top of BytesPerSec's mean.
	// Deterministic faults stay deterministic: the jitter draw only
	// consumes randomness when Jitter is configured, so existing seeds
	// replay the same fault schedules.
	Jitter time.Duration
}

// Injector wraps connections with the configured fault plan and counts
// what it injected, per fault kind, for test assertions.
type Injector struct {
	cfg   Config
	conns atomic.Int64

	mu     sync.Mutex
	counts map[string]uint64
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	return &Injector{cfg: cfg, counts: make(map[string]uint64)}
}

// Wrap returns c with the injector's fault plan applied to its writes.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	n := in.conns.Add(1)
	return &conn{
		Conn: c,
		in:   in,
		rng:  rand.New(rand.NewSource(in.cfg.Seed + n)),
	}
}

// Dialer returns a dial function (the ReliableOptions.Dial shape) that
// dials TCP with the given timeout and wraps the result.
func (in *Injector) Dialer(timeout time.Duration) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return in.Wrap(c), nil
	}
}

// Listener wraps ln so every accepted connection carries the fault plan
// (server-side injection).
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

// Injected returns the total number of injected faults so far.
func (in *Injector) Injected() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var total uint64
	for _, n := range in.counts {
		total += n
	}
	return total
}

// Counts returns the per-kind injection counts.
func (in *Injector) Counts() map[string]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// String renders the injection counts sorted by kind, for test logs.
func (in *Injector) String() string {
	counts := in.Counts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	s := "faultnet:"
	for _, k := range kinds {
		s += fmt.Sprintf(" %s=%d", k, counts[k])
	}
	return s
}

func (in *Injector) note(kind string) {
	in.mu.Lock()
	in.counts[kind]++
	in.mu.Unlock()
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Wrap(c), nil
}

// conn applies the fault plan to every Write. Reads pass through.
type conn struct {
	net.Conn
	in *Injector

	mu       sync.Mutex
	rng      *rand.Rand
	nextFree time.Time // bandwidth pacing clock (zero: link idle)
}

// congest computes this write's congestion sleep under the connection
// lock: the bandwidth-throttle wait (time until the pacing clock frees,
// which the write then advances by its own cost) plus the latency
// jitter draw.
func (c *conn) congest(n int) (wait, jit time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg := c.in.cfg
	if cfg.BytesPerSec > 0 {
		now := time.Now()
		if c.nextFree.Before(now) {
			c.nextFree = now
		}
		wait = c.nextFree.Sub(now)
		cost := time.Duration(float64(n) / float64(cfg.BytesPerSec) * float64(time.Second))
		c.nextFree = c.nextFree.Add(cost)
	}
	if cfg.Jitter > 0 {
		jit = time.Duration(c.rng.Int63n(int64(cfg.Jitter) + 1))
	}
	return wait, jit
}

// roll draws the fault (or "") for one write under the connection lock,
// along with the random parameters the fault needs, so the rng stream
// stays deterministic even if the connection is used from multiple
// goroutines.
func (c *conn) roll(n int) (kind string, at int, delay time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.rng.Float64()
	cfg := c.in.cfg
	for _, f := range []struct {
		kind string
		p    float64
	}{
		{"drop", cfg.Drop},
		{"corrupt", cfg.Corrupt},
		{"duplicate", cfg.Duplicate},
		{"truncate", cfg.Truncate},
		{"cut", cfg.Cut},
		{"halfclose", cfg.HalfClose},
		{"delay", cfg.Delay},
	} {
		if r < f.p {
			kind = f.kind
			break
		}
		r -= f.p
	}
	if n > 0 {
		at = c.rng.Intn(n)
	}
	delay = time.Duration(c.rng.Int63n(int64(cfg.MaxDelay) + 1))
	return kind, at, delay
}

func (c *conn) Write(p []byte) (int, error) {
	if wait, jit := c.congest(len(p)); wait+jit > 0 {
		if wait > 0 {
			c.in.note("throttle")
		}
		if jit > 0 {
			c.in.note("jitter")
		}
		time.Sleep(wait + jit)
	}
	kind, at, delay := c.roll(len(p))
	if kind != "" {
		c.in.note(kind)
	}
	switch kind {
	case "drop":
		// The caller believes the write succeeded; the peer never sees the
		// bytes. The stream desyncs and only a timeout notices.
		return len(p), nil
	case "corrupt":
		q := append([]byte(nil), p...)
		q[at] ^= byte(1 + c.rng.Intn(255)&0xff)
		n, err := c.Conn.Write(q)
		if n > len(p) {
			n = len(p)
		}
		return n, err
	case "duplicate":
		if _, err := c.Conn.Write(p); err != nil {
			return 0, err
		}
		c.Conn.Write(p) //nolint:errcheck — the duplicate is best-effort
		return len(p), nil
	case "truncate":
		c.Conn.Write(p[:at]) //nolint:errcheck — severing anyway
		c.Conn.Close()
		return len(p), nil // silent: the caller discovers the cut on read
	case "cut":
		c.Conn.Close()
		return 0, fmt.Errorf("faultnet: injected connection cut")
	case "halfclose":
		n, err := c.Conn.Write(p)
		if err != nil {
			return n, err
		}
		if hc, ok := c.Conn.(interface{ CloseWrite() error }); ok {
			hc.CloseWrite() //nolint:errcheck
		} else {
			c.Conn.Close()
		}
		return n, nil
	case "delay":
		time.Sleep(delay)
	}
	return c.Conn.Write(p)
}
