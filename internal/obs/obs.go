// Package obs is the repository's observability substrate: a small,
// dependency-free metrics registry — atomic counters, gauges and
// fixed-bucket histograms with Prometheus text exposition and an
// expvar-style JSON dump — plus the structured-logging convention the
// daemons share (log/slog with a "component" attribute per package).
//
// The design optimises for the ingest hot path. Every metric type is a
// lock-free atomic, and every method is safe on a nil receiver: a package
// instrumented against a nil *Registry receives nil metrics and each
// event costs exactly one nil check. That makes "observability off" a
// true no-op without a single `if enabled` branch in instrumented code,
// and it is what the ReceiveFrame overhead benchmark compares against.
//
// Metric names follow the Prometheus conventions the paper-adjacent
// streaming systems use: `sbr_<component>_<quantity>_<unit>` with
// `_total` for counters, and label pairs for low-cardinality dimensions
// (rejection reason, HTTP endpoint). Per-sensor series are deliberately
// not labelled by sensor ID — the station's SensorStats API serves that
// unbounded dimension — so a million-sensor deployment cannot blow up
// the registry.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {Key: "reason", Value: "decode"}.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing event count. The zero value is
// ready to use; all methods are no-ops on a nil receiver.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d to the counter.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.n.Add(d)
}

// Value returns the current count (zero for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a float64 that can go up and down. The zero value is ready to
// use; all methods are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (may be negative) to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark (used for, e.g., the deepest aggregate index seen).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (zero for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with Prometheus `le` semantics:
// bucket i counts observations v <= Bounds[i], with an implicit +Inf
// bucket at the end. Construct via Registry.Histogram or NewHistogram;
// Observe is safe on a nil receiver.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a standalone histogram over the given sorted upper
// bounds. Most callers use Registry.Histogram instead.
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts stay small (≤ ~16) and the hot ingest
	// path calls this per frame, where a plain loop beats the
	// closure-based binary search of sort.SearchFloat64s.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf bucket. A scrape racing Observe may see count/sum
// slightly ahead of the buckets; monitoring tolerates that.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observations by
// linear interpolation within the bucket the target rank falls into —
// the same estimator Prometheus's histogram_quantile applies, computed
// station-side so p50/p95/p99 are readable without a Prometheus server.
// The first bucket interpolates from zero, clamped to the bucket's upper
// bound (a negative first bound answers the bound itself rather than a
// value outside the bucket); a rank landing in the +Inf bucket returns
// the last finite bound (the estimate saturates). A nil, bound-less or
// empty histogram — and a NaN q — returns 0, never NaN.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	// One consistent snapshot of the buckets: the total is derived from
	// the same loads the rank walk uses, so a scrape racing Observe can
	// never chase a rank past the last loaded bucket.
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return bucketQuantile(h.bounds, counts, total, q)
}

// bucketQuantile is the interpolation shared by Histogram.Quantile and
// HistView.Quantile: bounds are the finite upper bounds, counts the
// per-bucket (non-cumulative) observation counts with the +Inf bucket
// last, total their sum.
func bucketQuantile(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if len(bounds) == 0 || total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		n := float64(c)
		if cum+n >= rank && n > 0 {
			if i >= len(bounds) {
				return bounds[len(bounds)-1] // +Inf bucket: saturate
			}
			hi := bounds[i]
			// First bucket: interpolate from zero, clamped so the
			// estimate never leaves the bucket (all-negative bounds).
			lo := math.Min(0, hi)
			if i > 0 {
				lo = bounds[i-1]
			}
			return lo + (hi-lo)*(rank-cum)/n
		}
		cum += n
	}
	return bounds[len(bounds)-1]
}

// LatencyBuckets spans 1µs to 10s in decades — wide enough for both the
// sub-millisecond frame-handle path and slow cold HTTP queries.
var LatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// ExpBuckets returns n bucket bounds start, start·factor, start·factor²…
// for quantities (like approximation error) whose scale is workload
// dependent.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}
