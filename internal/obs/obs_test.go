package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("test_events_total", "events"); same != c {
		t.Fatal("re-registering the same counter returned a new instance")
	}

	g := r.Gauge("test_depth", "depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	g.SetMax(1.0)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("SetMax lowered the gauge to %g", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax = %g, want 9", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", LatencyBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	counts := h.BucketCounts()
	want := []uint64{2, 2, 1, 1} // le=1: {0.5,1}, le=2: {1.5,2}, le=5: {3}, +Inf: {100}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got := h.Sum(); math.Abs(got-108) > 1e-9 {
		t.Fatalf("sum = %g, want 108", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("sbr_frames_total", "Frames accepted.").Add(7)
	r.Counter("sbr_rejects_total", "Rejected frames.", L("reason", "decode")).Inc()
	r.Counter("sbr_rejects_total", "Rejected frames.", L("reason", "receive")).Add(2)
	r.Gauge("sbr_conns_open", "Open connections.").Set(3)
	h := r.Histogram("sbr_latency_seconds", "Handle latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP sbr_frames_total Frames accepted.\n",
		"# TYPE sbr_frames_total counter\n",
		"sbr_frames_total 7\n",
		`sbr_rejects_total{reason="decode"} 1` + "\n",
		`sbr_rejects_total{reason="receive"} 2` + "\n",
		"# TYPE sbr_conns_open gauge\n",
		"sbr_conns_open 3\n",
		"# TYPE sbr_latency_seconds histogram\n",
		`sbr_latency_seconds_bucket{le="0.1"} 1` + "\n",
		`sbr_latency_seconds_bucket{le="1"} 2` + "\n",
		`sbr_latency_seconds_bucket{le="+Inf"} 3` + "\n",
		"sbr_latency_seconds_sum 10.55\n",
		"sbr_latency_seconds_count 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	// Every non-comment line must be "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestJSONDumpAndValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(4)
	r.Gauge("b", "").Set(2.5)
	r.Histogram("c_seconds", "", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("JSON dump does not parse: %v\n%s", err, buf.String())
	}
	if out["a_total"].(float64) != 4 || out["b"].(float64) != 2.5 {
		t.Fatalf("unexpected dump: %v", out)
	}
	hist := out["c_seconds"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Fatalf("histogram dump: %v", hist)
	}

	vals := r.Values()
	if vals["a_total"] != 4 || vals["b"] != 2.5 || vals["c_seconds_count"] != 1 || vals["c_seconds_sum"] != 0.5 {
		t.Fatalf("Values() = %v", vals)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("path", `a"b\c`+"\n")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped series %q missing in %q", want, buf.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering dup as gauge should panic")
		}
	}()
	r.Gauge("dup", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name should panic")
		}
	}()
	r.Counter("9starts-with-digit", "")
}

// TestConcurrentUpdatesAndScrapes hammers one registry from writer
// goroutines while scrapers run concurrently; under -race this is the
// data-race proof for the whole exposition path.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	const (
		writers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("cc_total", "shared")
			g := r.Gauge("gg", "shared")
			gmax := r.Gauge("gg_max", "shared high-water mark")
			h := r.Histogram("hh_seconds", "shared", LatencyBuckets)
			lab := r.Counter("ll_total", "per-writer", L("w", string(rune('a'+w))))
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				gmax.SetMax(float64(i))
				h.Observe(float64(i%10) / 1000)
				lab.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		r.Values()
	}

	if got := r.Counter("cc_total", "shared").Value(); got != writers*perG {
		t.Fatalf("cc_total = %d, want %d", got, writers*perG)
	}
	if got := r.Histogram("hh_seconds", "shared", nil).Count(); got != writers*perG {
		t.Fatalf("hh_seconds count = %d, want %d", got, writers*perG)
	}
	if got := r.Gauge("gg", "shared").Value(); got != writers*perG {
		t.Fatalf("gg = %g, want %d", got, writers*perG)
	}
	if got := r.Gauge("gg_max", "shared high-water mark").Value(); got != perG-1 {
		t.Fatalf("gg_max = %g, want %d", got, perG-1)
	}
	var total uint64
	for w := 0; w < writers; w++ {
		total += r.Counter("ll_total", "per-writer", L("w", string(rune('a'+w)))).Value()
	}
	if total != writers*perG {
		t.Fatalf("labelled counters sum to %d, want %d", total, writers*perG)
	}
}

func TestComponentLogger(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, nil)
	Component(l, "netio").Info("sensor connected", "sensor", "s-1")
	if !strings.Contains(buf.String(), "component=netio") || !strings.Contains(buf.String(), "sensor=s-1") {
		t.Fatalf("log line missing convention attrs: %q", buf.String())
	}
	// nil parent must be usable and silent.
	Component(nil, "x").Error("dropped", "err", "boom")
}
