package hist

import (
	"math"
	"strings"
	"testing"
	"time"

	"sbr/internal/obs"
)

// fakeClock is a manually advanced time source: each Tick of the sampler
// reads one instant, and the test advances it by the sampling interval.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time { return c.t }

// testOptions builds a small-window sampler configuration driven by clk,
// recording only non-selfmon series so tests count series exactly.
func testOptions(clk *fakeClock) Options {
	return Options{
		Interval:        time.Second,
		ChunkSamples:    32,
		HotChunks:       2,
		ErrorBound:      0.01,
		MBase:           16,
		CheckpointEvery: 4,
		Now:             clk.now,
		Filter:          func(name string) bool { return !strings.HasPrefix(name, "sbr_selfmon_") },
	}
}

// drive advances the clock and takes n samples.
func drive(s *Sampler, clk *fakeClock, n int, between func(i int)) {
	for i := 0; i < n; i++ {
		if between != nil {
			between(i)
		}
		s.Tick()
		clk.t = clk.t.Add(s.Interval())
	}
}

func TestSamplerRecordsCountersAndGauges(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("t_events_total", "test counter")
	g := reg.Gauge("t_level", "test gauge")
	clk := newFakeClock()
	s := NewSampler(reg, testOptions(clk))

	drive(s, clk, 10, func(i int) {
		ctr.Add(3)
		g.Set(float64(i))
	})

	infos := s.Series()
	if len(infos) != 2 {
		t.Fatalf("got %d series, want 2: %+v", len(infos), infos)
	}
	res, err := s.RateOver("t_events_total", 9*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-3) > 1e-9 {
		t.Errorf("rate = %v, want 3/s", res.Value)
	}
	if res.Err != 0 {
		t.Errorf("hot-only rate err = %v, want 0", res.Err)
	}
	d, err := s.DeltaOver("t_level", 9*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d.Value != 9 {
		t.Errorf("delta = %v, want 9", d.Value)
	}
	last, err := s.LastValue("t_level")
	if err != nil {
		t.Fatal(err)
	}
	if last.Value != 9 {
		t.Errorf("last = %v, want 9", last.Value)
	}
}

func TestHistogramDerivedSeries(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("t_latency_seconds", "test latency", obs.LatencyBuckets)
	clk := newFakeClock()
	s := NewSampler(reg, testOptions(clk))

	drive(s, clk, 5, func(i int) { h.Observe(0.002) })

	for _, want := range []string{
		"t_latency_seconds_count", "t_latency_seconds_sum",
		"t_latency_seconds_p50", "t_latency_seconds_p95", "t_latency_seconds_p99",
	} {
		if len(s.Match(want)) != 1 {
			t.Errorf("derived series %q not recorded", want)
		}
	}
	res, err := s.QuantileOver("t_latency_seconds_p99", 4*time.Second, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value <= 0.001 || res.Value > 0.01 {
		t.Errorf("p99-of-p99 = %v, want within the 1ms..10ms bucket", res.Value)
	}
}

func TestColdWindowsStayWithinBound(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("t_signal", "test signal")
	clk := newFakeClock()
	opt := testOptions(clk)
	s := NewSampler(reg, opt)

	// A sine over many windows: smooth enough to compress, varied enough
	// that the per-window budget is non-trivial.
	const n = 32 * 8 // 8 windows' worth; 6 sealed, 2 hot (ring holds 64+1)
	truth := make([]float64, n)
	drive(s, clk, n, func(i int) {
		truth[i] = 100 + 50*math.Sin(float64(i)/20)
		g.Set(truth[i])
	})

	infos := s.Series()
	if len(infos) != 1 || infos[0].Windows < 5 {
		t.Fatalf("expected ≥5 sealed windows, got %+v", infos)
	}
	if infos[0].Dead {
		t.Fatal("series marked dead")
	}

	pts, truncated, err := s.RangeOver("t_signal", time.Duration(n)*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("full-history query reported truncated")
	}
	if len(pts) != n {
		t.Fatalf("got %d points, want %d", len(pts), n)
	}
	for i, p := range pts {
		if math.Abs(p.V-truth[i]) > p.Err+1e-9 {
			t.Fatalf("point %d: |%v - %v| exceeds reported bound %v", i, p.V, truth[i], p.Err)
		}
		// Per-window budget: bound ≤ ErrorBound × that window's range.
		w := i / opt.ChunkSamples
		lo, hi := truth[w*opt.ChunkSamples], truth[w*opt.ChunkSamples]
		for _, v := range truth[w*opt.ChunkSamples : (w+1)*opt.ChunkSamples] {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		if budget := opt.ErrorBound*(hi-lo) + 1e-6; p.Err > budget {
			t.Fatalf("point %d: reported bound %v exceeds window budget %v", i, p.Err, budget)
		}
	}

	// MinMax over everything: truth extremes within the reported bound.
	minRes, maxRes, err := s.MinMaxOver("t_signal", time.Duration(n)*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tLo, tHi := truth[0], truth[0]
	for _, v := range truth {
		tLo, tHi = math.Min(tLo, v), math.Max(tHi, v)
	}
	if math.Abs(minRes.Value-tLo) > minRes.Err+1e-9 || math.Abs(maxRes.Value-tHi) > maxRes.Err+1e-9 {
		t.Errorf("minmax = [%v,%v] ± %v, truth [%v,%v]", minRes.Value, maxRes.Value, maxRes.Err, tLo, tHi)
	}
}

func TestRetentionDropsToCheckpoint(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("t_ret", "retention test")
	clk := newFakeClock()
	opt := testOptions(clk)
	opt.MaxWindows = 5
	s := NewSampler(reg, opt)

	const n = 32 * 20
	drive(s, clk, n, func(i int) { g.Set(float64(i % 100)) })

	info := s.Series()[0]
	// Retention trims to a checkpointed head, so up to CheckpointEvery−1
	// extra windows may survive.
	if info.Windows > opt.MaxWindows+opt.CheckpointEvery-1 {
		t.Fatalf("retention kept %d windows, cap %d (+%d checkpoint slack)",
			info.Windows, opt.MaxWindows, opt.CheckpointEvery-1)
	}

	// A query over everything clamps to what is retained and says so.
	pts, truncated, err := s.RangeOver("t_ret", time.Duration(n)*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Error("query past retention did not report truncation")
	}
	wantSamples := info.Windows*opt.ChunkSamples + info.HotSamples
	if len(pts) != wantSamples {
		t.Errorf("got %d points, want %d retained", len(pts), wantSamples)
	}
}

func TestFilterAndSkipMemoised(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("keep_total", "kept")
	reg.Counter("drop_total", "dropped")
	clk := newFakeClock()
	opt := testOptions(clk)
	calls := map[string]int{}
	opt.Filter = func(name string) bool {
		calls[name]++
		return name == "keep_total"
	}
	s := NewSampler(reg, opt)
	drive(s, clk, 5, nil)

	if got := s.Match("drop_total"); got != nil {
		t.Errorf("filtered series recorded: %v", got)
	}
	if got := s.Match("keep_total"); len(got) != 1 {
		t.Errorf("kept series missing: %v", got)
	}
	for name, c := range calls {
		if c != 1 {
			t.Errorf("Filter called %d times for %q, want 1", c, name)
		}
	}
}

func TestNaNSamplesSanitised(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("t_nan", "nan test")
	clk := newFakeClock()
	s := NewSampler(reg, testOptions(clk))

	drive(s, clk, 4, func(i int) {
		if i%2 == 0 {
			g.Set(7)
		} else {
			g.Set(math.NaN())
		}
	})
	pts, _, err := s.RangeOver("t_nan", 4*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if p.V != 7 {
			t.Errorf("point %d = %v, want NaN replaced by last finite 7", i, p.V)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	reg := obs.NewRegistry()
	clk := newFakeClock()
	s := NewSampler(reg, testOptions(clk))
	if _, err := s.RateOver("nope", time.Minute); err == nil {
		t.Error("query over unknown series did not error")
	}
	if _, err := s.QuantileOver("nope", time.Minute, 2); err == nil {
		t.Error("out-of-range quantile did not error")
	}
}

func TestStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("t_bg_total", "background test").Add(1)
	s := NewSampler(reg, Options{Interval: time.Millisecond})
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for len(s.Match("t_bg_total")) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	if len(s.Match("t_bg_total")) == 0 {
		t.Fatal("background sampler recorded nothing")
	}
}

func TestStopWithoutStart(t *testing.T) {
	s := NewSampler(obs.NewRegistry(), Options{})
	s.Stop() // must not hang
}

func TestMetaMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("t_meta", "meta test")
	clk := newFakeClock()
	s := NewSampler(reg, testOptions(clk))

	drive(s, clk, 32*3+2, func(i int) { g.Set(float64(i)) })

	vals := reg.Values()
	if vals["sbr_selfmon_series"] != 1 {
		t.Errorf("sbr_selfmon_series = %v, want 1", vals["sbr_selfmon_series"])
	}
	if vals["sbr_selfmon_windows"] < 1 {
		t.Errorf("sbr_selfmon_windows = %v, want ≥ 1", vals["sbr_selfmon_windows"])
	}
	if vals["sbr_selfmon_samples_total"] == 0 {
		t.Error("sbr_selfmon_samples_total not incremented")
	}
	if vals["sbr_selfmon_compressed_bytes"] <= 0 {
		t.Error("sbr_selfmon_compressed_bytes not tracked")
	}
	if vals["sbr_selfmon_compressed_bytes"] >= vals["sbr_selfmon_raw_bytes"] {
		t.Errorf("no compression: %v compressed vs %v raw",
			vals["sbr_selfmon_compressed_bytes"], vals["sbr_selfmon_raw_bytes"])
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q", got)
	}
	if flat := Sparkline([]float64{5, 5, 5}); strings.ContainsRune(flat, ' ') {
		t.Errorf("flat sparkline has gaps: %q", flat)
	}
}
