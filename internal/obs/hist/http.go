package hist

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// sparkRunes maps a normalised value to one of eight bar heights.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line ASCII chart, one rune per
// value, scaled to the series' own min..max (a flat series renders as
// mid-height bars). Empty input renders empty.
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}

// Handler serves the windowed-query API (GET /debug/metrics/history).
//
//	?                                  list all stored series (JSON)
//	?series=NAME                       reconstruct the series (agg=range)
//	 &window=1h                        trailing window (default 1h)
//	 &step=1m                          range downsampling step (default window/60)
//	 &agg=range|rate|delta|quantile|minmax
//	 &q=0.99                           quantile for agg=quantile (default 0.99)
//	 &format=json|spark                spark: text sparkline of the range
func (s *Sampler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("series")
		if name == "" {
			writeJSON(w, map[string]any{
				"interval_seconds": s.opt.Interval.Seconds(),
				"error_bound":      s.opt.ErrorBound,
				"series":           s.Series(),
			})
			return
		}
		window := time.Hour
		if v := r.URL.Query().Get("window"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				httpErr(w, http.StatusBadRequest, fmt.Errorf("bad window %q", v))
				return
			}
			window = d
		}
		step := window / 60
		if v := r.URL.Query().Get("step"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				httpErr(w, http.StatusBadRequest, fmt.Errorf("bad step %q", v))
				return
			}
			step = d
		}
		agg := r.URL.Query().Get("agg")
		if agg == "" {
			agg = "range"
		}

		var (
			res Result
			err error
		)
		switch agg {
		case "range":
			s.serveRange(w, r, name, window, step)
			return
		case "rate":
			res, err = s.RateOver(name, window)
		case "delta":
			res, err = s.DeltaOver(name, window)
		case "quantile":
			q := 0.99
			if v := r.URL.Query().Get("q"); v != "" {
				q, err = strconv.ParseFloat(v, 64)
				if err != nil {
					httpErr(w, http.StatusBadRequest, fmt.Errorf("bad q %q", v))
					return
				}
			}
			res, err = s.QuantileOver(name, window, q)
		case "minmax":
			var minRes, maxRes Result
			minRes, maxRes, err = s.MinMaxOver(name, window)
			if err == nil {
				writeJSON(w, map[string]any{"series": name, "agg": agg, "min": minRes, "max": maxRes})
				return
			}
		default:
			httpErr(w, http.StatusBadRequest, fmt.Errorf("unknown agg %q", agg))
			return
		}
		if err != nil {
			httpErr(w, queryStatus(err), err)
			return
		}
		writeJSON(w, map[string]any{"series": name, "agg": agg, "result": res})
	})
}

func (s *Sampler) serveRange(w http.ResponseWriter, r *http.Request, name string, window, step time.Duration) {
	pts, truncated, err := s.RangeOver(name, window, step)
	if err != nil {
		httpErr(w, queryStatus(err), err)
		return
	}
	if r.URL.Query().Get("format") == "spark" {
		vals := make([]float64, len(pts))
		lo, hi := pts[0].V, pts[0].V
		for i, p := range pts {
			vals[i] = p.V
			if p.V < lo {
				lo = p.V
			}
			if p.V > hi {
				hi = p.V
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%s  %s .. %s\n%s\nmin=%g max=%g last=%g\n",
			name,
			pts[0].T.Format(time.RFC3339), pts[len(pts)-1].T.Format(time.RFC3339),
			Sparkline(vals), lo, hi, vals[len(vals)-1])
		return
	}
	writeJSON(w, map[string]any{
		"series":    name,
		"agg":       "range",
		"step":      step.String(),
		"truncated": truncated,
		"points":    pts,
	})
}

func queryStatus(err error) int {
	if errors.Is(err, ErrNoSeries) {
		return http.StatusNotFound
	}
	return http.StatusUnprocessableEntity
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck — client gone mid-write, nothing to do
}

func httpErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}
