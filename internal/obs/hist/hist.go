// Package hist stores the station's own operational metrics as
// error-bounded, SBR-compressed history — the paper's algorithm
// (Deligiannakis et al., SIGMOD 2004) dogfooded onto a second real
// workload. A background Sampler snapshots every series the obs registry
// knows (via Registry.Visit) at a fixed interval into per-series hot ring
// buffers; each time a hot buffer accumulates one full window, the oldest
// window is compressed with the repo's own internal/core SBR encoder
// under the MaxAbs metric, so every cold window carries a provable
// maximum-absolute-error bound. Months of self-metrics fit in memory, and
// every answer the query layer gives ships with its error bar.
//
// On top of the store sit the windowed queries (RateOver, DeltaOver,
// QuantileOver, MinMaxOver, Range — each returning value plus bound), the
// /debug/metrics/history HTTP surface with JSON and ASCII-sparkline
// views, and the SLO engine: declarative multi-window burn-rate rules
// evaluated after every sampling tick, exposed on /debug/alerts and — for
// page severity — failing the station's /readyz.
//
// Error-bound semantics: the configured ErrorBound is relative to each
// window's signal range. When a window of samples is sealed, the encoder
// is given the absolute budget ErrorBound·(max−min) for that window; the
// achieved bound (always ≤ the budget, reported per window) is what
// queries propagate. Scaling per window instead of fixing one absolute
// number is what lets one knob cover a latency gauge at 10⁻³ and a byte
// counter at 10⁹.
//
// Histograms are sampled as derived series: <name>_count and <name>_sum
// (cumulative, rate-able) plus <name>_p50/_p95/_p99 snapshot quantiles —
// which is how "what did ingest p99 look like over the last hour" becomes
// a plain windowed query.
package hist

import (
	"math"
	"sort"
	"sync"
	"time"

	"sbr/internal/obs"
)

// Options configures a Sampler. The zero value is usable: every field
// falls back to the default documented on it.
type Options struct {
	// Interval is the sampling period (default 5s). With the default
	// window of 256 samples, one cold window then covers ~21 minutes.
	Interval time.Duration

	// ChunkSamples is the number of samples per compressed window
	// (default 256). It is fixed for the life of the sampler: SBR
	// requires every batch of a stream to have the same shape.
	ChunkSamples int

	// HotChunks is how many windows of raw samples stay uncompressed in
	// the hot ring (default 2). Queries that fit in the hot ring answer
	// with zero error.
	HotChunks int

	// ErrorBound is the per-window relative error bound (default 0.01):
	// each sealed window is compressed to within ErrorBound times that
	// window's value range, maximum absolute error.
	ErrorBound float64

	// MBase is the per-series base-signal buffer, in values (default 64).
	MBase int

	// CheckpointEvery stores a decoder-replica checkpoint every this many
	// windows (default 8), bounding a cold read's replay to at most
	// CheckpointEvery−1 windows before the one it wants.
	CheckpointEvery int

	// MaxWindows bounds the cold windows retained per series (default
	// 4096 ≈ 3 months at the default cadence). Older windows are dropped
	// whole-checkpoint-group at a time; queries report truncation.
	MaxWindows int

	// Now supplies the clock (default time.Now). Tests inject a fake.
	Now func() time.Time

	// Filter, when non-nil, limits which series are recorded: it is
	// called once per new series full name (derived histogram series
	// included) and must return true to record it.
	Filter func(name string) bool
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Second
	}
	if o.ChunkSamples <= 0 {
		o.ChunkSamples = 256
	}
	if o.HotChunks <= 0 {
		o.HotChunks = 2
	}
	if o.ErrorBound <= 0 {
		o.ErrorBound = 0.01
	}
	if o.MBase <= 0 {
		o.MBase = 64
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 8
	}
	if o.MaxWindows <= 0 {
		o.MaxWindows = 4096
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// meta is the sampler's own telemetry — the monitor monitoring itself.
// Registered on the same registry it samples, so the history of the
// history store is itself queryable.
type meta struct {
	series          *obs.Gauge
	samples         *obs.Counter
	windows         *obs.Gauge
	compressedBytes *obs.Gauge
	rawBytes        *obs.Gauge
	errRatio        *obs.Histogram
	dropped         *obs.Counter
	sealErrors      *obs.Counter
	tickSeconds     *obs.Histogram
}

// Sampler owns the self-metrics history: discovery, sampling, the hot
// rings, the compressed cold windows and the query layer. Create with
// NewSampler; drive with Start/Stop (production) or Tick (tests and
// simulations that own the clock).
type Sampler struct {
	reg *obs.Registry
	opt Options
	met meta

	mu     sync.RWMutex
	series map[string]*series
	skip   map[string]struct{} // names the Filter rejected, remembered
	names  []string            // sorted series names, rebuilt on discovery
	epoch  time.Time
	ticks  int64 // samples taken so far == next tick index

	afterTick func(now time.Time)

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewSampler builds a sampler over reg. It does not start sampling; call
// Start, or drive Tick yourself. reg must be non-nil.
func NewSampler(reg *obs.Registry, opt Options) *Sampler {
	s := &Sampler{
		reg:    reg,
		opt:    opt.withDefaults(),
		series: make(map[string]*series),
		skip:   make(map[string]struct{}),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		met: meta{
			series:          reg.Gauge("sbr_selfmon_series", "Self-metric series under SBR-compressed history."),
			samples:         reg.Counter("sbr_selfmon_samples_total", "Samples appended across all self-metric series."),
			windows:         reg.Gauge("sbr_selfmon_windows", "Compressed cold windows currently retained."),
			compressedBytes: reg.Gauge("sbr_selfmon_compressed_bytes", "Bytes (8 per SBR cost value) held by compressed cold windows."),
			rawBytes:        reg.Gauge("sbr_selfmon_raw_bytes", "Bytes the samples covered by cold windows would occupy raw."),
			errRatio:        reg.Histogram("sbr_selfmon_window_error_ratio", "Achieved / configured error bound per sealed window (≤ 1 by construction).", obs.ExpBuckets(0.001, math.Sqrt(10), 7)),
			dropped:         reg.Counter("sbr_selfmon_ticks_dropped_total", "Sampling ticks skipped because the previous tick was still running."),
			sealErrors:      reg.Counter("sbr_selfmon_seal_errors_total", "Windows lost to an encode or replica-decode failure (series then serves its hot ring only)."),
			tickSeconds:     reg.Histogram("sbr_selfmon_tick_seconds", "Wall time of one sampling tick, window compression included.", obs.LatencyBuckets),
		},
	}
	return s
}

// Interval returns the sampling period.
func (s *Sampler) Interval() time.Duration { return s.opt.Interval }

// ErrorBound returns the configured relative error bound.
func (s *Sampler) ErrorBound() float64 { return s.opt.ErrorBound }

// AfterTick installs a hook run after every sampling tick, outside the
// sampler's locks — the alert engine's evaluation entry point. Install
// before Start.
func (s *Sampler) AfterTick(fn func(now time.Time)) { s.afterTick = fn }

// Start launches the background sampling loop. Safe to call once.
func (s *Sampler) Start() {
	s.startOnce.Do(func() {
		go s.loop()
	})
}

// Stop halts the background loop and waits for it to exit. Safe to call
// even if Start never ran, and more than once.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) }) // Start never ran: nothing to wait for
	<-s.done
}

func (s *Sampler) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.opt.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// A tick that arrives while the previous one still runs is
			// dropped by the ticker itself; detect the overrun by how
			// long Tick took and account for the skipped samples.
			start := time.Now()
			s.Tick()
			if d := time.Since(start); d > s.opt.Interval {
				s.met.dropped.Add(uint64(d / s.opt.Interval))
			}
		case <-s.stop:
			return
		}
	}
}

// Tick takes one sample of every registered series. Exported so tests
// and simulations can drive the sampler with their own clock; production
// uses Start. Safe for concurrent use with queries (not with itself).
func (s *Sampler) Tick() {
	now := s.opt.Now()
	start := time.Now()

	s.mu.Lock()
	if s.ticks == 0 {
		s.epoch = now
	}
	idx := s.ticks
	s.ticks++
	discovered := false
	s.reg.Visit(func(smp obs.Sample) {
		discovered = s.record(idx, smp) || discovered
	})
	// Series that existed before this tick but were not visited cannot
	// happen — registry families are never removed — so every live series
	// now has exactly idx+1−startTick samples.
	if discovered {
		s.names = s.names[:0]
		for name := range s.series {
			s.names = append(s.names, name)
		}
		sort.Strings(s.names)
	}
	s.updateMetaLocked()
	hook := s.afterTick
	s.mu.Unlock()

	s.met.tickSeconds.Observe(time.Since(start).Seconds())
	if hook != nil {
		hook(now)
	}
}
