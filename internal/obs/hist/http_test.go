package hist

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sbr/internal/obs"
)

func getJSON(t *testing.T, s *Sampler, url string, out any) int {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code == 200 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: bad JSON: %v\n%s", url, err, rec.Body.String())
		}
	}
	return rec.Code
}

func newHTTPSampler(t *testing.T) (*Sampler, *fakeClock) {
	t.Helper()
	reg := obs.NewRegistry()
	ctr := reg.Counter("h_events_total", "http test counter")
	clk := newFakeClock()
	s := NewSampler(reg, testOptions(clk))
	drive(s, clk, 100, func(i int) { ctr.Add(2) })
	return s, clk
}

func TestHandlerList(t *testing.T) {
	s, _ := newHTTPSampler(t)
	var out struct {
		IntervalSeconds float64      `json:"interval_seconds"`
		ErrorBound      float64      `json:"error_bound"`
		Series          []SeriesInfo `json:"series"`
	}
	if code := getJSON(t, s, "/debug/metrics/history", &out); code != 200 {
		t.Fatalf("list status %d", code)
	}
	if out.IntervalSeconds != 1 || out.ErrorBound != 0.01 {
		t.Errorf("list header = %+v", out)
	}
	if len(out.Series) != 1 || out.Series[0].Name != "h_events_total" {
		t.Errorf("series = %+v", out.Series)
	}
}

func TestHandlerAggregates(t *testing.T) {
	s, _ := newHTTPSampler(t)
	var rate struct {
		Result Result `json:"result"`
	}
	code := getJSON(t, s, "/debug/metrics/history?series=h_events_total&agg=rate&window=30s", &rate)
	if code != 200 {
		t.Fatalf("rate status %d", code)
	}
	if rate.Result.Value < 1.9 || rate.Result.Value > 2.1 {
		t.Errorf("rate = %+v, want ≈ 2/s", rate.Result)
	}

	var rng struct {
		Points    []Point `json:"points"`
		Truncated bool    `json:"truncated"`
	}
	code = getJSON(t, s, "/debug/metrics/history?series=h_events_total&window=50s&step=10s", &rng)
	if code != 200 {
		t.Fatalf("range status %d", code)
	}
	if len(rng.Points) != 6 { // 51 samples in 10-sample buckets
		t.Errorf("got %d points: %+v", len(rng.Points), rng.Points)
	}

	var mm struct {
		Min Result `json:"min"`
		Max Result `json:"max"`
	}
	code = getJSON(t, s, "/debug/metrics/history?series=h_events_total&agg=minmax&window=30s", &mm)
	if code != 200 {
		t.Fatalf("minmax status %d", code)
	}
	if mm.Max.Value <= mm.Min.Value {
		t.Errorf("minmax = %+v", mm)
	}

	var qt struct {
		Result Result `json:"result"`
	}
	code = getJSON(t, s, "/debug/metrics/history?series=h_events_total&agg=quantile&q=0.5&window=30s", &qt)
	if code != 200 {
		t.Fatalf("quantile status %d", code)
	}
}

func TestHandlerSparkline(t *testing.T) {
	s, _ := newHTTPSampler(t)
	req := httptest.NewRequest("GET", "/debug/metrics/history?series=h_events_total&window=50s&step=10s&format=spark", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("spark status %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if !strings.Contains(body, "h_events_total") || !strings.ContainsAny(body, "▁▂▃▄▅▆▇█") {
		t.Errorf("sparkline body = %q", body)
	}
}

func TestHandlerErrors(t *testing.T) {
	s, _ := newHTTPSampler(t)
	var out map[string]any
	if code := getJSON(t, s, "/debug/metrics/history?series=missing", &out); code != 404 {
		t.Errorf("unknown series status %d, want 404", code)
	}
	for _, url := range []string{
		"/debug/metrics/history?series=h_events_total&window=bogus",
		"/debug/metrics/history?series=h_events_total&step=bogus",
		"/debug/metrics/history?series=h_events_total&agg=bogus",
		"/debug/metrics/history?series=h_events_total&agg=quantile&q=bogus",
	} {
		if code := getJSON(t, s, url, &out); code != 400 {
			t.Errorf("%s: status %d, want 400", url, code)
		}
	}
}

func TestAlertsHandler(t *testing.T) {
	h := newAlertHarness(t, []Rule{
		{Name: "degraded", Severity: SevPage, Series: "x_degraded", Agg: "value", Threshold: 0},
	})
	h.g.Set(3)
	drive(h.s, h.clk, 2, nil)

	req := httptest.NewRequest("GET", "/debug/alerts", nil)
	rec := httptest.NewRecorder()
	h.e.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("alerts status %d", rec.Code)
	}
	var out struct {
		EvaluatedAt time.Time     `json:"evaluated_at"`
		Alerts      []AlertStatus `json:"alerts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(out.Alerts) != 1 || out.Alerts[0].State != StateFiring {
		t.Errorf("alerts = %+v", out.Alerts)
	}
	if out.EvaluatedAt.IsZero() {
		t.Error("evaluated_at missing")
	}
}
