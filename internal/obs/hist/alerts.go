package hist

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"sbr/internal/obs"
	"sbr/internal/obs/trace"
)

// Severity ranks an alert: page-severity alerts fail the station's
// readiness probe, warn-severity alerts only surface on /debug/alerts.
type Severity string

const (
	SevPage Severity = "page"
	SevWarn Severity = "warn"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("5m", "1h30m") so rule files stay human-editable.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Rule is one declarative SLO condition over the self-metrics history.
//
// The rule breaches when Agg over EVERY listed window crosses Threshold —
// the multi-window burn-rate pattern: a short window for responsiveness
// and a long window so a brief spike alone cannot page. A breach must
// then hold for For before the alert fires.
type Rule struct {
	Name     string   `json:"name"`
	Severity Severity `json:"severity"`

	// Series selects the series: an exact stored name, or a prefix when
	// it ends in '*'. Multiple matches aggregate: rate/delta sum across
	// series, value/quantile take the worst (max).
	Series string `json:"series"`

	// Agg is the windowed aggregate compared against Threshold:
	// "rate", "delta", "quantile" (with Q), or "value" (newest sample;
	// windows are then ignored).
	Agg string  `json:"agg"`
	Q   float64 `json:"q,omitempty"`

	// Op is the comparison, ">" (default) or "<".
	Op        string  `json:"op,omitempty"`
	Threshold float64 `json:"threshold"`

	Windows []Duration `json:"windows,omitempty"`
	For     Duration   `json:"for,omitempty"`

	// TraceStage, when set, cross-links firing annotations to the
	// N-slowest trace exemplars pinned for that stage.
	TraceStage string `json:"trace_stage,omitempty"`
}

// DefaultRules is the built-in SLO set: ingest latency, admission-control
// shedding, archive degradation and outbox residue — the four signals the
// earlier PRs made load-bearing.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name:       "ingest-latency-p99",
			Severity:   SevWarn,
			Series:     "sbr_station_receive_seconds_p99",
			Agg:        "quantile",
			Q:          0.9,
			Threshold:  0.1, // seconds
			Windows:    []Duration{Duration(5 * time.Minute), Duration(time.Hour)},
			For:        Duration(time.Minute),
			TraceStage: "station.receive",
		},
		{
			Name:       "shed-rate",
			Severity:   SevPage,
			Series:     "sbr_netio_shed_total*",
			Agg:        "rate",
			Threshold:  1, // sheds per second
			Windows:    []Duration{Duration(time.Minute), Duration(5 * time.Minute)},
			TraceStage: "netio.recv",
		},
		{
			Name:      "archive-degraded",
			Severity:  SevPage,
			Series:    "sbr_station_degraded_sensors",
			Agg:       "value",
			Threshold: 0,
		},
		{
			Name:      "outbox-residue",
			Severity:  SevWarn,
			Series:    "sbr_outbox_frames_pending",
			Agg:       "value",
			Threshold: 0,
			For:       Duration(10 * time.Minute),
		},
	}
}

// LoadRules reads a JSON rule file (an array of Rule objects).
func LoadRules(path string) ([]Rule, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rules []Rule
	if err := json.Unmarshal(b, &rules); err != nil {
		return nil, fmt.Errorf("hist: parsing alert rules %s: %w", path, err)
	}
	if err := ValidateRules(rules); err != nil {
		return nil, fmt.Errorf("hist: %s: %w", path, err)
	}
	return rules, nil
}

// ValidateRules checks a rule set for structural errors.
func ValidateRules(rules []Rule) error {
	seen := make(map[string]bool, len(rules))
	for i, r := range rules {
		if r.Name == "" {
			return fmt.Errorf("rule %d has no name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Severity != SevPage && r.Severity != SevWarn {
			return fmt.Errorf("rule %q: severity must be %q or %q", r.Name, SevPage, SevWarn)
		}
		if r.Series == "" {
			return fmt.Errorf("rule %q selects no series", r.Name)
		}
		switch r.Agg {
		case "rate", "delta", "quantile":
			if len(r.Windows) == 0 {
				return fmt.Errorf("rule %q: agg %q needs at least one window", r.Name, r.Agg)
			}
		case "value":
		default:
			return fmt.Errorf("rule %q: unknown agg %q", r.Name, r.Agg)
		}
		if r.Agg == "quantile" && (math.IsNaN(r.Q) || r.Q < 0 || r.Q > 1) {
			return fmt.Errorf("rule %q: quantile q %v outside [0,1]", r.Name, r.Q)
		}
		if r.Op != "" && r.Op != ">" && r.Op != "<" {
			return fmt.Errorf("rule %q: op must be \">\" or \"<\"", r.Name)
		}
	}
	return nil
}

// Alert states.
const (
	StateOK      = "ok"
	StatePending = "pending" // breaching, but not yet for the rule's For
	StateFiring  = "firing"
	StateNoData  = "no-data" // no matching series, or history too short
)

// TraceRef links a firing alert to one pinned slow-trace exemplar.
type TraceRef struct {
	ID     string `json:"id"`
	Sensor string `json:"sensor,omitempty"`
	DurUS  int64  `json:"dur_us"`
	Href   string `json:"href"`
}

// AlertStatus is one rule's current evaluation, the /debug/alerts JSON.
type AlertStatus struct {
	Rule      Rule       `json:"rule"`
	State     string     `json:"state"`
	Since     time.Time  `json:"since,omitempty"`
	Value     float64    `json:"value"`
	Err       float64    `json:"err,omitempty"`
	Message   string     `json:"message,omitempty"`
	Exemplars []TraceRef `json:"trace_exemplars,omitempty"`
}

// Engine evaluates a rule set against a sampler's history after every
// sampling tick. Wire it with sampler.AfterTick(engine.Evaluate).
type Engine struct {
	s      *Sampler
	tracer *trace.Recorder
	rules  []Rule

	firing *obs.Gauge // sbr_selfmon_alerts_firing

	mu     sync.Mutex
	states map[string]*alertState
	asOf   time.Time
}

type alertState struct {
	state       string
	since       time.Time // entered current state
	breachSince time.Time // first tick of the current breach run
	value       float64
	err         float64
	message     string
}

// NewEngine builds an engine over the sampler's history. tracer may be
// nil (no exemplar cross-links). Rules are validated; invalid rule sets
// are rejected.
func NewEngine(s *Sampler, tracer *trace.Recorder, rules []Rule) (*Engine, error) {
	if err := ValidateRules(rules); err != nil {
		return nil, err
	}
	e := &Engine{
		s:      s,
		tracer: tracer,
		rules:  rules,
		firing: s.reg.Gauge("sbr_selfmon_alerts_firing", "Alert rules currently in the firing state."),
		states: make(map[string]*alertState, len(rules)),
	}
	for _, r := range rules {
		e.states[r.Name] = &alertState{state: StateNoData}
	}
	return e, nil
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() []Rule { return append([]Rule(nil), e.rules...) }

// Evaluate runs every rule against the history as of now. It is the
// sampler's AfterTick hook; safe for concurrent use with Status.
func (e *Engine) Evaluate(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.asOf = now
	firing := 0
	for _, r := range e.rules {
		st := e.states[r.Name]
		e.evalRule(r, st, now)
		if st.state == StateFiring {
			firing++
		}
	}
	e.firing.Set(float64(firing))
}

func (e *Engine) evalRule(r Rule, st *alertState, now time.Time) {
	value, errB, ok, msg := e.measure(r)
	if msg != "" {
		e.transition(st, StateNoData, now)
		st.message = msg
		return
	}
	st.value, st.err, st.message = value, errB, ""
	if !ok {
		st.breachSince = time.Time{}
		e.transition(st, StateOK, now)
		return
	}
	if st.breachSince.IsZero() {
		st.breachSince = now
	}
	if now.Sub(st.breachSince) >= time.Duration(r.For) {
		e.transition(st, StateFiring, now)
	} else {
		e.transition(st, StatePending, now)
	}
}

func (e *Engine) transition(st *alertState, state string, now time.Time) {
	if st.state != state {
		st.state = state
		st.since = now
	}
}

// measure computes the rule's aggregate and whether every window
// breaches. The reported value/err are the shortest window's (the one a
// responder cares about). A non-empty msg means no data.
func (e *Engine) measure(r Rule) (value, errB float64, breach bool, msg string) {
	names := e.s.Match(r.Series)
	if len(names) == 0 {
		return 0, 0, false, fmt.Sprintf("no series match %q", r.Series)
	}
	windows := r.Windows
	if r.Agg == "value" {
		windows = []Duration{0}
	}
	breach = true
	for wi, w := range windows {
		v, eb, m := e.aggregate(r, names, time.Duration(w))
		if m != "" {
			return 0, 0, false, m
		}
		if wi == 0 {
			value, errB = v, eb
		}
		if !compare(r.Op, v, r.Threshold) {
			breach = false
		}
	}
	return value, errB, breach, ""
}

// aggregate evaluates one window over every matched series: sum for the
// flow-shaped aggregates (rate, delta), max for the level-shaped ones
// (value, quantile).
func (e *Engine) aggregate(r Rule, names []string, window time.Duration) (float64, float64, string) {
	var sum, worst, errSum, errMax float64
	worst = math.Inf(-1)
	got := 0
	for _, name := range names {
		var res Result
		var err error
		switch r.Agg {
		case "rate":
			res, err = e.s.RateOver(name, window)
		case "delta":
			res, err = e.s.DeltaOver(name, window)
		case "quantile":
			res, err = e.s.QuantileOver(name, window, r.Q)
		case "value":
			res, err = e.s.LastValue(name)
		}
		if err != nil {
			continue
		}
		got++
		sum += res.Value
		errSum += res.Err
		worst = math.Max(worst, res.Value)
		errMax = math.Max(errMax, res.Err)
	}
	if got == 0 {
		return 0, 0, fmt.Sprintf("no data for %q over %s", r.Series, window)
	}
	switch r.Agg {
	case "rate", "delta":
		return sum, errSum, ""
	default:
		return worst, errMax, ""
	}
}

func compare(op string, v, threshold float64) bool {
	if op == "<" {
		return v < threshold
	}
	return v > threshold
}

// PageErr is the readiness probe: non-nil while any page-severity rule
// is firing, which is what flips /readyz to 503.
func (e *Engine) PageErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range e.rules {
		if r.Severity == SevPage && e.states[r.Name].state == StateFiring {
			return fmt.Errorf("alert %q firing", r.Name)
		}
	}
	return nil
}

// Status reports every rule's current state, firing rules first, then
// pending, then by name. Firing and pending alerts with a TraceStage are
// annotated with up to three pinned slow-trace exemplars.
func (e *Engine) Status() []AlertStatus {
	e.mu.Lock()
	out := make([]AlertStatus, 0, len(e.rules))
	for _, r := range e.rules {
		st := e.states[r.Name]
		out = append(out, AlertStatus{
			Rule:    r,
			State:   st.state,
			Since:   st.since,
			Value:   st.value,
			Err:     st.err,
			Message: st.message,
		})
	}
	e.mu.Unlock()

	for i := range out {
		a := &out[i]
		if a.Rule.TraceStage == "" || (a.State != StateFiring && a.State != StatePending) {
			continue
		}
		for _, t := range e.tracer.Exemplars()[a.Rule.TraceStage] {
			tv := t.Snapshot(false)
			a.Exemplars = append(a.Exemplars, TraceRef{
				ID:     tv.ID,
				Sensor: tv.Sensor,
				DurUS:  tv.DurUS,
				Href:   "/debug/traces/" + tv.ID,
			})
			if len(a.Exemplars) == 3 {
				break
			}
		}
	}
	rank := func(s string) int {
		switch s {
		case StateFiring:
			return 0
		case StatePending:
			return 1
		default:
			return 2
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if ri, rj := rank(out[i].State), rank(out[j].State); ri != rj {
			return ri < rj
		}
		return out[i].Rule.Name < out[j].Rule.Name
	})
	return out
}

// Handler serves the firing state (GET /debug/alerts).
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		e.mu.Lock()
		asOf := e.asOf
		e.mu.Unlock()
		writeJSON(w, map[string]any{
			"evaluated_at": asOf,
			"alerts":       e.Status(),
		})
	})
}
