package hist

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sbr/internal/core"
	"sbr/internal/obs"
)

// ErrNoSeries is returned (wrapped, with the name) by queries over a
// series the sampler has never recorded.
var ErrNoSeries = fmt.Errorf("hist: no such series")

// Result is one windowed aggregate with its error bar: Value is the
// answer, Err the maximum it can be off by given the per-window bounds of
// the compressed samples it was computed from (0 when the whole window
// was answered from the hot ring).
type Result struct {
	Value   float64   `json:"value"`
	Err     float64   `json:"err"`
	From    time.Time `json:"from"`
	To      time.Time `json:"to"`
	Samples int       `json:"samples"`

	// Truncated reports that the requested window reached past the
	// retained history (or before the series was born) and was clamped.
	Truncated bool `json:"truncated,omitempty"`
}

// Point is one reconstructed (possibly step-aggregated) sample of a
// series, with its error bound.
type Point struct {
	T   time.Time `json:"t"`
	V   float64   `json:"v"`
	Err float64   `json:"err"`
}

// SeriesInfo describes one stored series for listings.
type SeriesInfo struct {
	Name             string  `json:"name"`
	Kind             string  `json:"kind"`
	Samples          int64   `json:"samples"`
	HotSamples       int     `json:"hot_samples"`
	Windows          int     `json:"windows"`
	CompressedValues int     `json:"compressed_values"`
	MaxWindowErr     float64 `json:"max_window_err"`
	Dead             bool    `json:"dead,omitempty"`
}

// Series lists every stored series, sorted by name.
func (s *Sampler) Series() []SeriesInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SeriesInfo, 0, len(s.names))
	for _, name := range s.names {
		sr := s.series[name]
		info := SeriesInfo{
			Name:             name,
			Kind:             sr.kind.String(),
			Samples:          int64(len(sr.windows)*s.opt.ChunkSamples + len(sr.hot)),
			HotSamples:       len(sr.hot),
			Windows:          len(sr.windows),
			CompressedValues: sr.coldCost,
			Dead:             sr.dead,
		}
		for _, w := range sr.windows {
			info.MaxWindowErr = math.Max(info.MaxWindowErr, w.err)
		}
		out = append(out, info)
	}
	return out
}

// snap is one series' state captured under the read lock: the hot ring
// copied (its backing array is mutated by seals), the window slice
// referenced (windows are immutable once appended).
type snap struct {
	name      string
	kind      obs.Kind
	cfg       core.Config
	chunk     int
	interval  time.Duration
	epoch     time.Time
	startTick int64
	hot       []float64
	hotStart  int64
	firstSeq  int
	windows   []window
}

func (sn *snap) endTick() int64  { return sn.hotStart + int64(len(sn.hot)) }
func (sn *snap) coldFrom() int64 { return sn.startTick + int64(sn.firstSeq*sn.chunk) }
func (sn *snap) coldTo() int64 {
	return sn.startTick + int64((sn.firstSeq+len(sn.windows))*sn.chunk)
}

// availFrom is the first tick answerable without a gap back from the
// newest sample: the cold head when the cold span abuts the hot ring
// (the normal case), the hot head otherwise (dead series, whose frozen
// cold windows have drifted away from the still-advancing hot ring).
func (sn *snap) availFrom() int64 {
	if len(sn.windows) > 0 && sn.coldTo() == sn.hotStart {
		return sn.coldFrom()
	}
	return sn.hotStart
}

func (sn *snap) timeAt(tick int64) time.Time {
	return sn.epoch.Add(time.Duration(tick) * sn.interval)
}

// fetch snapshots one series under the read lock.
func (s *Sampler) fetch(name string) (*snap, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr, ok := s.series[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSeries, name)
	}
	return &snap{
		name:      name,
		kind:      sr.kind,
		cfg:       sr.cfg,
		chunk:     s.opt.ChunkSamples,
		interval:  s.opt.Interval,
		epoch:     s.epoch,
		startTick: sr.startTick,
		hot:       append([]float64(nil), sr.hot...),
		hotStart:  sr.hotStart,
		firstSeq:  sr.firstSeq,
		windows:   sr.windows,
	}, nil
}

// values reconstructs ticks [a, b) — clamped to available history — and
// returns the samples with their per-sample error bounds, the first tick
// actually covered, and whether clamping occurred.
func (sn *snap) values(a, b int64) (vals, errs []float64, from int64, truncated bool, err error) {
	if b > sn.endTick() {
		b = sn.endTick()
	}
	if lo := sn.availFrom(); a < lo {
		a = lo
		truncated = true
	}
	if a >= b {
		return nil, nil, a, truncated, fmt.Errorf("hist: window is empty after clamping to available history of %q", sn.name)
	}
	vals = make([]float64, 0, b-a)
	errs = make([]float64, 0, b-a)

	if a < sn.hotStart { // cold part
		qa := int((a - sn.startTick) / int64(sn.chunk))
		qbTick := b
		if qbTick > sn.coldTo() {
			qbTick = sn.coldTo()
		}
		qb := int((qbTick - 1 - sn.startTick) / int64(sn.chunk))
		chunks, derr := sn.decodeWindows(qa, qb)
		if derr != nil {
			return nil, nil, a, truncated, derr
		}
		for q := qa; q <= qb; q++ {
			wStart := sn.startTick + int64(q*sn.chunk)
			row := chunks[q-qa]
			werr := sn.windows[q-sn.firstSeq].err
			for i, v := range row {
				tick := wStart + int64(i)
				if tick >= a && tick < b {
					vals = append(vals, v)
					errs = append(errs, werr)
				}
			}
		}
	}
	for tick := max64(a, sn.hotStart); tick < b; tick++ {
		vals = append(vals, sn.hot[tick-sn.hotStart])
		errs = append(errs, 0)
	}
	return vals, errs, a, truncated, nil
}

// decodeWindows reconstructs cold windows qa..qb (global sequence
// numbers, inclusive) by resuming the decoder at the nearest checkpoint
// at or before qa and replaying forward — at most CheckpointEvery−1
// windows of replay before the first one wanted.
func (sn *snap) decodeWindows(qa, qb int) ([][]float64, error) {
	i0 := qa - sn.firstSeq
	i1 := qb - sn.firstSeq
	if i0 < 0 || i1 >= len(sn.windows) {
		return nil, fmt.Errorf("hist: windows [%d,%d] of %q outside retained [%d,%d]",
			qa, qb, sn.name, sn.firstSeq, sn.firstSeq+len(sn.windows)-1)
	}
	ck := i0
	for ck > 0 && sn.windows[ck].ckpt == nil {
		ck--
	}
	st := sn.windows[ck].ckpt
	if st == nil {
		return nil, fmt.Errorf("hist: no checkpoint at or before window %d of %q", qa, sn.name)
	}
	dec, err := core.NewDecoderAt(sn.cfg, *st)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, 0, i1-i0+1)
	for i := ck; i <= i1; i++ {
		rows, err := dec.Decode(sn.windows[i].t)
		if err != nil {
			return nil, fmt.Errorf("hist: replaying window %d of %q: %w", sn.firstSeq+i, sn.name, err)
		}
		if i >= i0 {
			out = append(out, rows[0])
		}
	}
	return out, nil
}

// span converts a trailing window duration into the tick range [a, b)
// ending at the series' newest sample. The span covers window/interval
// steps, i.e. one more sample than steps, so a rate over it integrates
// exactly `window` of wall time.
func (sn *snap) span(window time.Duration) (int64, int64) {
	b := sn.endTick()
	n := int64(window/sn.interval) + 1
	if n < 2 {
		n = 2
	}
	a := b - n
	if a < 0 {
		a = 0
	}
	return a, b
}

func (sn *snap) result(from, to int64, samples int, errB float64, truncated bool) Result {
	return Result{
		Err:       errB,
		From:      sn.timeAt(from),
		To:        sn.timeAt(to - 1),
		Samples:   samples,
		Truncated: truncated,
	}
}

// LastValue returns the newest recorded sample of the series. It is
// always answered from the hot ring, so the bound is zero.
func (s *Sampler) LastValue(name string) (Result, error) {
	sn, err := s.fetch(name)
	if err != nil {
		return Result{}, err
	}
	if len(sn.hot) == 0 {
		return Result{}, fmt.Errorf("hist: series %q has no samples yet", name)
	}
	end := sn.endTick()
	res := sn.result(end-1, end, 1, 0, false)
	res.Value = sn.hot[len(sn.hot)-1]
	return res, nil
}

// Match returns the stored series names matching pattern: an exact name,
// or a prefix when the pattern ends in '*'.
func (s *Sampler) Match(pattern string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(pattern) == 0 {
		return nil
	}
	if pattern[len(pattern)-1] != '*' {
		if _, ok := s.series[pattern]; ok {
			return []string{pattern}
		}
		return nil
	}
	prefix := pattern[:len(pattern)-1]
	var out []string
	for _, name := range s.names {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out = append(out, name)
		}
	}
	return out
}

// DeltaOver returns last − first over the trailing window. For counters
// this is the raw increase ignoring resets; RateOver is reset-aware.
func (s *Sampler) DeltaOver(name string, window time.Duration) (Result, error) {
	sn, err := s.fetch(name)
	if err != nil {
		return Result{}, err
	}
	a, b := sn.span(window)
	vals, errs, from, trunc, err := sn.values(a, b)
	if err != nil {
		return Result{}, err
	}
	res := sn.result(from, b, len(vals), errs[0]+errs[len(errs)-1], trunc)
	res.Value = vals[len(vals)-1] - vals[0]
	return res, nil
}

// RateOver returns the per-second increase of a (counter-shaped) series
// over the trailing window, reset-aware: the sum of positive adjacent
// differences divided by the covered wall time. The error bound accounts
// for one telescoping run per reset: 2·maxErr·(resets+1)/seconds.
func (s *Sampler) RateOver(name string, window time.Duration) (Result, error) {
	sn, err := s.fetch(name)
	if err != nil {
		return Result{}, err
	}
	a, b := sn.span(window)
	vals, errs, from, trunc, err := sn.values(a, b)
	if err != nil {
		return Result{}, err
	}
	if len(vals) < 2 {
		return Result{}, fmt.Errorf("hist: rate over %q needs at least 2 samples, have %d", name, len(vals))
	}
	var sum float64
	resets := 0
	maxErr := 0.0
	for i, e := range errs {
		maxErr = math.Max(maxErr, e)
		if i == 0 {
			continue
		}
		if d := vals[i] - vals[i-1]; d >= 0 {
			sum += d
		} else {
			resets++
		}
	}
	seconds := float64(len(vals)-1) * sn.interval.Seconds()
	res := sn.result(from, b, len(vals), 2*maxErr*float64(resets+1)/seconds, trunc)
	res.Value = sum / seconds
	return res, nil
}

// QuantileOver returns the q-quantile of the sampled values over the
// trailing window (nearest-rank with interpolation); the bound is the
// largest per-sample bound in the window, since shifting every sample by
// at most ε shifts any order statistic by at most ε.
func (s *Sampler) QuantileOver(name string, window time.Duration, q float64) (Result, error) {
	sn, err := s.fetch(name)
	if err != nil {
		return Result{}, err
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		return Result{}, fmt.Errorf("hist: quantile %v outside [0,1]", q)
	}
	a, b := sn.span(window)
	vals, errs, from, trunc, err := sn.values(a, b)
	if err != nil {
		return Result{}, err
	}
	maxErr := 0.0
	for _, e := range errs {
		maxErr = math.Max(maxErr, e)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	rank := q * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	v := sorted[lo]
	if hi > lo {
		v += (sorted[hi] - sorted[lo]) * (rank - float64(lo))
	}
	res := sn.result(from, b, len(vals), maxErr, trunc)
	res.Value = v
	return res, nil
}

// MinMaxOver returns the smallest and largest sampled value over the
// trailing window; both carry the same bound (the largest per-sample
// bound in the window).
func (s *Sampler) MinMaxOver(name string, window time.Duration) (Result, Result, error) {
	sn, err := s.fetch(name)
	if err != nil {
		return Result{}, Result{}, err
	}
	a, b := sn.span(window)
	vals, errs, from, trunc, err := sn.values(a, b)
	if err != nil {
		return Result{}, Result{}, err
	}
	lo, hi, maxErr := vals[0], vals[0], 0.0
	for i, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		maxErr = math.Max(maxErr, errs[i])
	}
	minRes := sn.result(from, b, len(vals), maxErr, trunc)
	minRes.Value = lo
	maxRes := minRes
	maxRes.Value = hi
	return minRes, maxRes, nil
}

// RangeOver reconstructs the trailing window as a series of points, one
// per step (step-bucket mean, worst per-sample bound). A zero step
// returns every sample.
func (s *Sampler) RangeOver(name string, window, step time.Duration) ([]Point, bool, error) {
	sn, err := s.fetch(name)
	if err != nil {
		return nil, false, err
	}
	a, b := sn.span(window)
	vals, errs, from, trunc, err := sn.values(a, b)
	if err != nil {
		return nil, trunc, err
	}
	per := 1
	if step > 0 {
		per = int(step / sn.interval)
		if per < 1 {
			per = 1
		}
	}
	pts := make([]Point, 0, (len(vals)+per-1)/per)
	for i := 0; i < len(vals); i += per {
		j := i + per
		if j > len(vals) {
			j = len(vals)
		}
		var sum, maxErr float64
		for k := i; k < j; k++ {
			sum += vals[k]
			maxErr = math.Max(maxErr, errs[k])
		}
		pts = append(pts, Point{
			T:   sn.timeAt(from + int64(i)),
			V:   sum / float64(j-i),
			Err: maxErr,
		})
	}
	return pts, trunc, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
