package hist

import (
	"math"

	"sbr/internal/core"
	"sbr/internal/interval"
	"sbr/internal/metrics"
	"sbr/internal/obs"
	"sbr/internal/timeseries"
)

// window is one sealed chunk of ChunkSamples samples, held as the SBR
// transmission that reconstructs it.
type window struct {
	t *core.Transmission

	// err is the achieved §4.5 maximum-absolute-error bound of this
	// window's reconstruction (≤ the budget the encoder was given); it is
	// the bound queries over the window propagate.
	err float64

	// ckpt, when non-nil, is the replica decoder's state immediately
	// before this window: a cold read starting here needs no replay of
	// earlier windows. Populated every CheckpointEvery windows, and
	// always on the first retained window.
	ckpt *core.DecoderState
}

// series is the history of one metric series: a hot ring of raw samples
// and the sealed SBR-compressed cold windows behind it. All access is
// guarded by the sampler's mutex.
type series struct {
	name string
	kind obs.Kind
	help string

	cfg core.Config

	startTick int64     // tick index of the first sample ever recorded
	hot       []float64 // raw samples, hot[0] taken at tick hotStart
	hotStart  int64

	enc     *core.Compressor
	replica *core.Decoder // kept in lockstep with enc; source of checkpoints

	firstSeq int // global window index (== Transmission.Seq) of windows[0]
	windows  []window
	dropped  int64 // samples lost off the head (retention, or dead-series eviction)

	coldCost int // Σ Transmission.Cost over retained windows, in values

	// dead marks a series whose encode or replica-decode failed: the
	// compressor/decoder pair can no longer be trusted to agree, so the
	// series stops sealing and serves its hot ring only.
	dead bool

	last float64 // last finite sample, substituted for NaN/±Inf
}

// seriesConfig is the SBR configuration every self-metric stream runs
// under. TotalBand is sized so the encoder can always split down to
// exact reconstruction (ValuesPerInterval per sample, plus the worst-case
// base-insert cost of ≤ 2·MBase values): compression then comes entirely
// from the §4.5 error target stopping the split early, which is what
// makes the per-window bound a guarantee rather than a best effort.
func seriesConfig(opt Options) core.Config {
	return core.Config{
		TotalBand: interval.ValuesPerInterval*opt.ChunkSamples + 2*opt.MBase,
		MBase:     opt.MBase,
		Metric:    metrics.MaxAbs,
	}
}

func (s *Sampler) newSeries(name string, kind obs.Kind, help string, tick int64) (*series, error) {
	cfg := seriesConfig(s.opt)
	enc, err := core.NewCompressor(cfg)
	if err != nil {
		return nil, err
	}
	dec, err := core.NewDecoder(cfg)
	if err != nil {
		return nil, err
	}
	return &series{
		name:      name,
		kind:      kind,
		help:      help,
		cfg:       cfg,
		startTick: tick,
		hotStart:  tick,
		hot:       make([]float64, 0, s.opt.ChunkSamples),
		enc:       enc,
		replica:   dec,
	}, nil
}

// record appends one sample (and, for histograms, its derived series) at
// tick idx, reporting whether any new series was discovered.
func (s *Sampler) record(idx int64, smp obs.Sample) bool {
	if smp.Kind == obs.KindHistogram {
		d := s.append(idx, smp.DerivedName("_count"), obs.KindCounter, smp.Help, float64(smp.Hist.Count))
		d = s.append(idx, smp.DerivedName("_sum"), obs.KindCounter, smp.Help, smp.Hist.Sum) || d
		d = s.append(idx, smp.DerivedName("_p50"), obs.KindGauge, smp.Help, smp.Hist.Quantile(0.50)) || d
		d = s.append(idx, smp.DerivedName("_p95"), obs.KindGauge, smp.Help, smp.Hist.Quantile(0.95)) || d
		d = s.append(idx, smp.DerivedName("_p99"), obs.KindGauge, smp.Help, smp.Hist.Quantile(0.99)) || d
		return d
	}
	return s.append(idx, smp.FullName(), smp.Kind, smp.Help, smp.Value)
}

// append stores value v for the named series at tick idx, creating the
// series on first sight. Called with s.mu held.
func (s *Sampler) append(idx int64, name string, kind obs.Kind, help string, v float64) bool {
	sr, ok := s.series[name]
	discovered := false
	if !ok {
		if _, skipped := s.skip[name]; skipped {
			return false
		}
		if s.opt.Filter != nil && !s.opt.Filter(name) {
			s.skip[name] = struct{}{}
			return false
		}
		var err error
		sr, err = s.newSeries(name, kind, help, idx)
		if err != nil {
			// Impossible by construction (the config is validated shapes
			// only); treat like a filtered series rather than panicking
			// the sampling loop.
			s.skip[name] = struct{}{}
			return false
		}
		s.series[name] = sr
		discovered = true
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = sr.last
	} else {
		sr.last = v
	}
	sr.hot = append(sr.hot, v)
	s.met.samples.Inc()
	if len(sr.hot) > s.opt.HotChunks*s.opt.ChunkSamples {
		sr.seal(s)
	}
	return discovered
}

// seal compresses the oldest ChunkSamples samples of the hot ring into a
// cold window and drops them from the ring. On a dead series the samples
// are simply discarded.
func (sr *series) seal(s *Sampler) {
	c := s.opt.ChunkSamples
	defer func() {
		// The ring's backing array is reused: queries must copy the hot
		// slice before releasing the sampler lock.
		copy(sr.hot, sr.hot[c:])
		sr.hot = sr.hot[:len(sr.hot)-c]
		sr.hotStart += int64(c)
	}()

	if sr.dead {
		sr.dropped += int64(c)
		return
	}

	chunk := make(timeseries.Series, c)
	copy(chunk, sr.hot[:c])
	lo, hi := chunk[0], chunk[0]
	for _, v := range chunk[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	// The window's absolute budget: the configured relative bound scaled
	// to this window's range, floored so a flat window still gets a
	// meaningful (near-exact) target instead of zero.
	budget := s.opt.ErrorBound * (hi - lo)
	if floor := 1e-9 * math.Max(1, math.Max(math.Abs(lo), math.Abs(hi))); budget < floor {
		budget = floor
	}
	sr.enc.SetErrorTarget(budget)

	t, err := sr.enc.Encode([]timeseries.Series{chunk})
	if err == nil {
		var ckpt *core.DecoderState
		if t.Seq%s.opt.CheckpointEvery == 0 {
			st := sr.replica.State()
			ckpt = &st
		}
		if _, derr := sr.replica.Decode(t); derr != nil {
			err = derr
		} else {
			sr.windows = append(sr.windows, window{t: t, err: t.ErrBound, ckpt: ckpt})
			sr.coldCost += t.Cost
			if budget > 0 {
				s.met.errRatio.Observe(t.ErrBound / budget)
			}
			sr.retain(s)
			return
		}
	}
	// Encode advances the sender sequence even on failure, so the pair is
	// desynchronised for good: freeze the cold store and fall back to
	// hot-only serving rather than recording windows we cannot decode.
	sr.dead = true
	sr.dropped += int64(c)
	s.met.sealErrors.Inc()
}

// retain enforces MaxWindows, dropping head windows — always up to a
// checkpointed window, so the retained head never needs replay of
// anything already discarded.
func (sr *series) retain(s *Sampler) {
	if len(sr.windows) <= s.opt.MaxWindows {
		return
	}
	k := len(sr.windows) - s.opt.MaxWindows
	for k < len(sr.windows) && sr.windows[k].ckpt == nil {
		k++
	}
	for _, w := range sr.windows[:k] {
		sr.coldCost -= w.t.Cost
	}
	sr.dropped += int64(k * s.opt.ChunkSamples)
	sr.windows = append(sr.windows[:0:0], sr.windows[k:]...)
	sr.firstSeq += k
}

// updateMetaLocked refreshes the sampler's own gauges. Called with s.mu
// held; the gauge writes are atomic so scrapes need no lock.
func (s *Sampler) updateMetaLocked() {
	var windows, cost, coldSamples int
	for _, sr := range s.series {
		windows += len(sr.windows)
		cost += sr.coldCost
		coldSamples += len(sr.windows) * s.opt.ChunkSamples
	}
	s.met.series.Set(float64(len(s.series)))
	s.met.windows.Set(float64(windows))
	s.met.compressedBytes.Set(float64(cost * 8))
	s.met.rawBytes.Set(float64(coldSamples * 8))
}
