package hist

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sbr/internal/obs"
)

func TestDurationJSONRoundTrip(t *testing.T) {
	in := Duration(90 * time.Second)
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1m30s"` {
		t.Errorf("marshal = %s", b)
	}
	var out Duration
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %v != %v", out, in)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &out); err == nil {
		t.Error("bad duration accepted")
	}
}

func TestValidateRules(t *testing.T) {
	if err := ValidateRules(DefaultRules()); err != nil {
		t.Fatalf("default rules invalid: %v", err)
	}
	bad := []struct {
		name string
		rule Rule
	}{
		{"no name", Rule{Severity: SevWarn, Series: "x", Agg: "value"}},
		{"bad severity", Rule{Name: "r", Severity: "critical", Series: "x", Agg: "value"}},
		{"no series", Rule{Name: "r", Severity: SevWarn, Agg: "value"}},
		{"bad agg", Rule{Name: "r", Severity: SevWarn, Series: "x", Agg: "mean"}},
		{"rate no window", Rule{Name: "r", Severity: SevWarn, Series: "x", Agg: "rate"}},
		{"bad q", Rule{Name: "r", Severity: SevWarn, Series: "x", Agg: "quantile", Q: 2,
			Windows: []Duration{Duration(time.Minute)}}},
		{"bad op", Rule{Name: "r", Severity: SevWarn, Series: "x", Agg: "value", Op: ">="}},
	}
	for _, tc := range bad {
		if err := ValidateRules([]Rule{tc.rule}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	dup := Rule{Name: "r", Severity: SevWarn, Series: "x", Agg: "value"}
	if err := ValidateRules([]Rule{dup, dup}); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestLoadRules(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.json")
	blob := `[{"name":"shed","severity":"page","series":"x_total*","agg":"rate",
	           "threshold":1,"windows":["1m","5m"],"for":"30s"}]`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	rules, err := LoadRules(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Windows[1] != Duration(5*time.Minute) {
		t.Errorf("loaded %+v", rules)
	}
	if _, err := LoadRules(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(badPath, []byte(`[{"name":""}]`), 0o644) //nolint:errcheck
	if _, err := LoadRules(badPath); err == nil {
		t.Error("invalid rules accepted")
	}
}

// alertHarness: a sampler plus engine over one counter and one gauge,
// driven by a fake clock.
type alertHarness struct {
	reg *obs.Registry
	clk *fakeClock
	s   *Sampler
	e   *Engine
	ctr *obs.Counter
	g   *obs.Gauge
}

func newAlertHarness(t *testing.T, rules []Rule) *alertHarness {
	t.Helper()
	reg := obs.NewRegistry()
	h := &alertHarness{
		reg: reg,
		clk: newFakeClock(),
		ctr: reg.Counter("x_shed_total", "test shed counter", obs.L("reason", "queue")),
		g:   reg.Gauge("x_degraded", "test degraded gauge"),
	}
	h.s = NewSampler(reg, testOptions(h.clk))
	e, err := NewEngine(h.s, nil, rules)
	if err != nil {
		t.Fatal(err)
	}
	h.e = e
	h.s.AfterTick(e.Evaluate)
	return h
}

func (h *alertHarness) state(name string) string {
	for _, st := range h.e.Status() {
		if st.Rule.Name == name {
			return st.State
		}
	}
	return "absent"
}

func TestEngineMultiWindowBurnRate(t *testing.T) {
	h := newAlertHarness(t, []Rule{{
		Name: "shed", Severity: SevPage, Series: "x_shed_total*", Agg: "rate",
		Threshold: 1,
		Windows:   []Duration{Duration(5 * time.Second), Duration(20 * time.Second)},
	}})

	// Quiet start: long enough history, no increments → ok.
	drive(h.s, h.clk, 25, nil)
	if got := h.state("shed"); got != StateOK {
		t.Fatalf("quiet state = %q, want ok", got)
	}
	if err := h.e.PageErr(); err != nil {
		t.Fatalf("PageErr during quiet = %v", err)
	}

	// A 2-second burst breaches the short window (rate 4/s over 5s) but
	// not the long one (20 sheds over 20s = 1/s, not > 1): the long
	// window vetoes the blip and the rule must NOT fire.
	drive(h.s, h.clk, 2, func(int) { h.ctr.Add(10) })
	shortRes, err := h.s.RateOver("x_shed_total{reason=\"queue\"}", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if shortRes.Value <= 1 {
		t.Fatalf("short-window rate = %v, want > 1", shortRes.Value)
	}
	if got := h.state("shed"); got != StateOK {
		t.Fatalf("after short burst state = %q, want ok (long window vetoes)", got)
	}

	// Sustained shedding breaches both windows → firing, and the page
	// severity surfaces through PageErr.
	drive(h.s, h.clk, 20, func(int) { h.ctr.Add(10) })
	if got := h.state("shed"); got != StateFiring {
		t.Fatalf("sustained state = %q, want firing", got)
	}
	if err := h.e.PageErr(); err == nil {
		t.Fatal("PageErr nil while page rule firing")
	}

	// Recovery: counter flat again → rates decay under threshold → ok.
	drive(h.s, h.clk, 30, nil)
	if got := h.state("shed"); got != StateOK {
		t.Fatalf("recovered state = %q, want ok", got)
	}
	if err := h.e.PageErr(); err != nil {
		t.Fatalf("PageErr after recovery = %v", err)
	}
}

func TestEngineForHoldsPending(t *testing.T) {
	h := newAlertHarness(t, []Rule{{
		Name: "degraded", Severity: SevWarn, Series: "x_degraded", Agg: "value",
		Threshold: 0, For: Duration(5 * time.Second),
	}})
	drive(h.s, h.clk, 3, nil)
	h.g.Set(2)
	drive(h.s, h.clk, 3, nil)
	if got := h.state("degraded"); got != StatePending {
		t.Fatalf("state after 3s breach = %q, want pending (For=5s)", got)
	}
	drive(h.s, h.clk, 4, nil)
	if got := h.state("degraded"); got != StateFiring {
		t.Fatalf("state after 7s breach = %q, want firing", got)
	}
	// Warn severity never pages.
	if err := h.e.PageErr(); err != nil {
		t.Fatalf("PageErr for warn rule = %v", err)
	}
	h.g.Set(0)
	drive(h.s, h.clk, 1, nil)
	if got := h.state("degraded"); got != StateOK {
		t.Fatalf("state after clear = %q, want ok", got)
	}
}

func TestEngineNoData(t *testing.T) {
	h := newAlertHarness(t, []Rule{{
		Name: "ghost", Severity: SevPage, Series: "does_not_exist", Agg: "value",
		Threshold: 0,
	}})
	drive(h.s, h.clk, 3, nil)
	if got := h.state("ghost"); got != StateNoData {
		t.Fatalf("state = %q, want no-data", got)
	}
	// no-data does not page.
	if err := h.e.PageErr(); err != nil {
		t.Fatalf("PageErr on no-data = %v", err)
	}
}

func TestStatusOrdersFiringFirst(t *testing.T) {
	h := newAlertHarness(t, []Rule{
		{Name: "zz-quiet", Severity: SevWarn, Series: "x_degraded", Agg: "value", Threshold: 1e9},
		{Name: "aa-fire", Severity: SevWarn, Series: "x_degraded", Agg: "value", Threshold: -1},
	})
	drive(h.s, h.clk, 2, nil)
	sts := h.e.Status()
	if sts[0].Rule.Name != "aa-fire" || sts[0].State != StateFiring {
		t.Fatalf("first status = %+v, want aa-fire firing", sts[0])
	}
}
