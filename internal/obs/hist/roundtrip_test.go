package hist

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sbr/internal/obs"
)

// opSignal is one operational-metric shape the self-monitoring store must
// honour its error bound on.
type opSignal struct {
	name string
	gen  func(i int) float64
}

func opSignals() []opSignal {
	rng := rand.New(rand.NewSource(42))
	burst := make([]float64, 0, 2048)
	level := 0.0
	for i := 0; i < 2048; i++ {
		// Bursty rate: long quiet floors with occasional spikes, the
		// shape of a shed counter's derivative.
		if rng.Float64() < 0.02 {
			level = 50 + 100*rng.Float64()
		} else {
			level *= 0.5
		}
		burst = append(burst, level)
	}
	ctr := 0.0
	mono := make([]float64, 0, 2048)
	for i := 0; i < 2048; i++ {
		// Monotone counter: steady drift plus jitter in the increments.
		ctr += 10 + 5*rng.Float64()
		mono = append(mono, ctr)
	}
	return []opSignal{
		{"step_function", func(i int) float64 {
			// Gauge that steps between plateaus (config reloads, pool
			// resizes): constant runs with abrupt level changes.
			return float64(100 * ((i / 37) % 5))
		}},
		{"monotone_counter", func(i int) float64 { return mono[i] }},
		{"bursty_rate", func(i int) float64 { return burst[i] }},
	}
}

// TestSBRRoundTripOperationalSignals seals several windows of each
// operational shape through the real compressor and asserts, per
// reconstructed sample, that the deviation stays within the reported
// per-window bound, and that the reported bound stays within the
// configured relative error budget for the window.
func TestSBRRoundTripOperationalSignals(t *testing.T) {
	for _, sig := range opSignals() {
		sig := sig
		t.Run(sig.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			g := reg.Gauge("t_roundtrip", "round-trip signal")
			clk := newFakeClock()
			opt := testOptions(clk)
			opt.ChunkSamples = 64
			opt.ErrorBound = 0.05
			s := NewSampler(reg, opt)

			const n = 64 * 12
			truth := make([]float64, n)
			drive(s, clk, n, func(i int) {
				truth[i] = sig.gen(i)
				g.Set(truth[i])
			})

			info := s.Series()[0]
			if info.Dead {
				t.Fatal("series died during sealing")
			}
			if info.Windows < 10 {
				t.Fatalf("only %d windows sealed", info.Windows)
			}

			pts, _, err := s.RangeOver("t_roundtrip", time.Duration(n)*time.Second, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(pts) != n {
				t.Fatalf("got %d points, want %d", len(pts), n)
			}
			worst := 0.0
			for i, p := range pts {
				dev := math.Abs(p.V - truth[i])
				if dev > p.Err+1e-9 {
					t.Fatalf("%s sample %d: |%v−%v| = %v exceeds reported bound %v",
						sig.name, i, p.V, truth[i], dev, p.Err)
				}
				w := i / opt.ChunkSamples
				lo, hi := truth[w*opt.ChunkSamples], truth[w*opt.ChunkSamples]
				for _, v := range truth[w*opt.ChunkSamples : (w+1)*opt.ChunkSamples] {
					lo, hi = math.Min(lo, v), math.Max(hi, v)
				}
				if budget := opt.ErrorBound*(hi-lo) + 1e-6; p.Err > budget {
					t.Fatalf("%s sample %d: reported bound %v exceeds configured budget %v",
						sig.name, i, p.Err, budget)
				}
				worst = math.Max(worst, dev)
			}
			t.Logf("%s: %d windows, %d compressed values for %d samples, worst |dev| %.4g",
				sig.name, info.Windows, info.CompressedValues, info.Samples, worst)

			// The cold store must actually compress these shapes: the
			// whole point of SBR over a raw ring.
			if info.CompressedValues >= info.Windows*opt.ChunkSamples {
				t.Errorf("%s: no compression (%d values for %d cold samples)",
					sig.name, info.CompressedValues, info.Windows*opt.ChunkSamples)
			}

			// Counter semantics survive: reset-aware rate over the full
			// span matches truth within the reported bound (plus slack
			// for approximation-induced non-monotonicity).
			if sig.name == "monotone_counter" {
				res, err := s.RateOver("t_roundtrip", time.Duration(n-1)*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				trueRate := (truth[n-1] - truth[0]) / float64(n-1)
				if math.Abs(res.Value-trueRate) > res.Err+0.5 {
					t.Errorf("rate = %v ± %v, truth %v", res.Value, res.Err, trueRate)
				}
			}
		})
	}
}
