package obs

import (
	"runtime"
	"strconv"
)

// RegisterBuildInfo emits the conventional `sbr_build_info` gauge: a
// constant 1 whose labels carry the build's identity — release version,
// Go toolchain, and wire protocol generation (pass wire.VersionTraced;
// obs deliberately does not import the wire layer). Joining on it is how
// dashboards annotate every other series with "which build was this".
func RegisterBuildInfo(reg *Registry, version string, protocol int) {
	if version == "" {
		version = "dev"
	}
	reg.Gauge("sbr_build_info",
		"Constant 1; the labels identify the running build.",
		L("version", version),
		L("go_version", runtime.Version()),
		L("protocol", strconv.Itoa(protocol)),
	).Set(1)
}

// RegisterRuntimeMetrics registers the Go runtime gauges, collected
// lazily at scrape time (GaugeFunc): nothing is polled, nothing is
// stored, and an idle daemon pays nothing for them. ReadMemStats is
// called per gauge per scrape — cheap at scrape cadence, and it keeps
// each gauge self-contained.
func RegisterRuntimeMetrics(reg *Registry) {
	reg.GaugeFunc("sbr_go_goroutines",
		"Goroutines currently live.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("sbr_go_heap_alloc_bytes",
		"Heap bytes allocated and still in use.",
		func() float64 { return float64(readMemStats().HeapAlloc) })
	reg.GaugeFunc("sbr_go_heap_objects",
		"Heap objects allocated and still in use.",
		func() float64 { return float64(readMemStats().HeapObjects) })
	reg.GaugeFunc("sbr_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(readMemStats().PauseTotalNs) / 1e9 })
	reg.GaugeFunc("sbr_go_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { return float64(readMemStats().NumGC) })
}

func readMemStats() runtime.MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms
}
