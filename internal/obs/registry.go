package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind discriminates the three metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (labels → metric) instance of a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // lazy gauge: evaluated at scrape time instead of g
}

// gaugeValue resolves a gauge series: the callback when one is installed
// (GaugeFunc), otherwise the stored value.
func (s *series) gaugeValue() float64 {
	if s.fn != nil {
		return s.fn()
	}
	return s.g.Value()
}

// family groups every series sharing a metric name.
type family struct {
	name  string
	help  string
	kind  kind
	order []*series
	byKey map[string]*series
}

// Registry is a named collection of metrics. Constructors are
// get-or-create: asking twice for the same name and labels returns the
// same instance, so independent packages can share a counter. All
// methods are safe for concurrent use, and safe on a nil receiver —
// a nil registry hands out nil (no-op) metrics, which is how the
// "observability off" configuration works.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the named counter, creating and registering it on
// first use. It panics if the name is invalid or already registered with
// a different type — a programmer error, like expvar's.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(kindCounter, name, help, labels, nil)
	return s.c
}

// Gauge returns the named gauge, creating and registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(kindGauge, name, help, labels, nil)
	return s.g
}

// GaugeFunc registers a lazy gauge: fn is evaluated at each scrape
// instead of storing values — the right shape for quantities the runtime
// already tracks (goroutine counts, heap bytes) where pushing updates
// would mean polling. The first registration's callback wins; fn must be
// safe for concurrent calls. A nil registry ignores the registration.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.lookupFunc(kindGauge, name, help, labels, nil, fn)
}

// Histogram returns the named histogram, creating and registering it on
// first use. The bucket bounds only matter at creation; later calls with
// the same name and labels return the existing instance.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(kindHistogram, name, help, labels, bounds)
	return s.h
}

func (r *Registry) lookup(k kind, name, help string, labels []Label, bounds []float64) *series {
	return r.lookupFunc(k, name, help, labels, bounds, nil)
}

// lookupFunc is lookup carrying an optional lazy-gauge callback, which
// must be installed inside the registry lock: a concurrent scrape sees
// either no series or a fully built one, never a half-initialised fn.
func (r *Registry) lookupFunc(k kind, name, help string, labels []Label, bounds []float64, fn func() float64) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on metric %q", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, byKey: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, f)
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	key := labelKey(labels)
	s, ok := f.byKey[key]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...), fn: fn}
		switch k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = NewHistogram(bounds)
		}
		f.byKey[key] = s
		f.order = append(f.order, s)
	}
	return s
}

func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(0xff)
		b.WriteString(l.Value)
		b.WriteByte(0xfe)
	}
	return b.String()
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// snapshot copies the family list under the lock; the metric values
// themselves are read atomically afterwards, so a scrape never blocks a
// hot-path update for longer than the list copy.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.order))
	copy(out, r.order)
	return out
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, one line per series, and
// cumulative le-labelled buckets plus _sum/_count for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.snapshot() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.order {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels, ""), s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(s.labels, ""), formatFloat(s.gaugeValue()))
		return err
	}
	bounds := s.h.Bounds()
	counts := s.h.BucketCounts()
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(s.labels, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.name, labelString(s.labels, ""), formatFloat(s.h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(s.labels, ""), s.h.Count())
	return err
}

// labelString renders {k="v",…}, appending the le label when non-empty.
func labelString(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON writes an expvar-style dump: a flat object keyed by the
// exposition name (labels included), counters and gauges as numbers and
// histograms as {count, sum, buckets} objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}")
		return err
	}
	out := make(map[string]any)
	for _, f := range r.snapshot() {
		for _, s := range f.order {
			key := f.name + labelString(s.labels, "")
			switch f.kind {
			case kindCounter:
				out[key] = s.c.Value()
			case kindGauge:
				out[key] = s.gaugeValue()
			case kindHistogram:
				bounds := s.h.Bounds()
				counts := s.h.BucketCounts()
				buckets := make(map[string]uint64, len(counts))
				var cum uint64
				for i, c := range counts {
					cum += c
					le := "+Inf"
					if i < len(bounds) {
						le = formatFloat(bounds[i])
					}
					buckets[le] = cum
				}
				out[key] = map[string]any{
					"count":   s.h.Count(),
					"sum":     s.h.Sum(),
					"buckets": buckets,
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Values flattens every series to a float64 keyed by exposition name;
// histograms contribute name_count and name_sum. It is the snapshot the
// daemons log from on their reporting tick.
func (r *Registry) Values() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	for _, f := range r.snapshot() {
		for _, s := range f.order {
			key := f.name + labelString(s.labels, "")
			switch f.kind {
			case kindCounter:
				out[key] = float64(s.c.Value())
			case kindGauge:
				out[key] = s.gaugeValue()
			case kindHistogram:
				out[key+"_count"] = float64(s.h.Count())
				out[key+"_sum"] = s.h.Sum()
			}
		}
	}
	return out
}

// HistogramSummary is one histogram series reduced to its headline
// quantiles — the latency-SLO view of /v1/stats and the simulator
// summary.
type HistogramSummary struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Count  uint64  `json:"count"`
	Sum    float64 `json:"sum"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// HistogramSummaries reduces every registered histogram with at least one
// observation to interpolated p50/p95/p99 (see Histogram.Quantile).
func (r *Registry) HistogramSummaries() []HistogramSummary {
	if r == nil {
		return nil
	}
	var out []HistogramSummary
	for _, f := range r.snapshot() {
		if f.kind != kindHistogram {
			continue
		}
		for _, s := range f.order {
			if s.h.Count() == 0 {
				continue
			}
			out = append(out, HistogramSummary{
				Name:   f.name,
				Labels: labelString(s.labels, ""),
				Count:  s.h.Count(),
				Sum:    s.h.Sum(),
				P50:    s.h.Quantile(0.50),
				P95:    s.h.Quantile(0.95),
				P99:    s.h.Quantile(0.99),
			})
		}
	}
	return out
}

// Names returns the registered family names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	fams := r.snapshot()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.name
	}
	return out
}

// SortedNames returns the registered family names sorted, for stable
// test assertions and docs.
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}

// MetricsHandler serves the Prometheus text exposition (GET /debug/metrics).
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck — client gone mid-scrape, nothing to do
	})
}

// VarsHandler serves the JSON dump (GET /debug/vars).
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w) //nolint:errcheck
	})
}
