package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind discriminates the three metric families. It is exported so
// snapshot consumers (Registry.Visit) can branch on the family without
// parsing exposition text.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (labels → metric) instance of a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // lazy gauge: evaluated at scrape time instead of g
}

// gaugeValue resolves a gauge series: the callback when one is installed
// (GaugeFunc), otherwise the stored value.
func (s *series) gaugeValue() float64 {
	if s.fn != nil {
		return s.fn()
	}
	return s.g.Value()
}

// family groups every series sharing a metric name.
type family struct {
	name  string
	help  string
	kind  Kind
	order []*series
	byKey map[string]*series
}

// Registry is a named collection of metrics. Constructors are
// get-or-create: asking twice for the same name and labels returns the
// same instance, so independent packages can share a counter. All
// methods are safe for concurrent use, and safe on a nil receiver —
// a nil registry hands out nil (no-op) metrics, which is how the
// "observability off" configuration works.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the named counter, creating and registering it on
// first use. It panics if the name is invalid or already registered with
// a different type — a programmer error, like expvar's.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(KindCounter, name, help, labels, nil)
	return s.c
}

// Gauge returns the named gauge, creating and registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(KindGauge, name, help, labels, nil)
	return s.g
}

// GaugeFunc registers a lazy gauge: fn is evaluated at each scrape
// instead of storing values — the right shape for quantities the runtime
// already tracks (goroutine counts, heap bytes) where pushing updates
// would mean polling. The first registration's callback wins; fn must be
// safe for concurrent calls. A nil registry ignores the registration.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.lookupFunc(KindGauge, name, help, labels, nil, fn)
}

// Histogram returns the named histogram, creating and registering it on
// first use. The bucket bounds only matter at creation; later calls with
// the same name and labels return the existing instance.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(KindHistogram, name, help, labels, bounds)
	return s.h
}

func (r *Registry) lookup(k Kind, name, help string, labels []Label, bounds []float64) *series {
	return r.lookupFunc(k, name, help, labels, bounds, nil)
}

// lookupFunc is lookup carrying an optional lazy-gauge callback, which
// must be installed inside the registry lock: a concurrent scrape sees
// either no series or a fully built one, never a half-initialised fn.
func (r *Registry) lookupFunc(k Kind, name, help string, labels []Label, bounds []float64, fn func() float64) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on metric %q", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, byKey: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, f)
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	key := labelKey(labels)
	s, ok := f.byKey[key]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...), fn: fn}
		switch k {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = NewHistogram(bounds)
		}
		f.byKey[key] = s
		f.order = append(f.order, s)
	}
	return s
}

func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(0xff)
		b.WriteString(l.Value)
		b.WriteByte(0xfe)
	}
	return b.String()
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// snapshot copies the family list under the lock; the metric values
// themselves are read atomically afterwards, so a scrape never blocks a
// hot-path update for longer than the list copy.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.order))
	copy(out, r.order)
	return out
}

// Sample is one registered series as a Visit callback sees it: the family
// identity plus an atomically read value snapshot. Counters surface their
// count (as a float64) and gauges their value — lazy GaugeFunc gauges are
// evaluated — in Value; histograms carry their state in Hist and leave
// Value zero. Labels is shared with the registry and must not be mutated.
type Sample struct {
	Name   string
	Help   string
	Labels []Label
	Kind   Kind
	Value  float64
	Hist   *HistView
}

// FullName is the exposition identity of the series: the family name with
// the rendered label set appended — the key Values and WriteJSON use, and
// the series name the self-monitoring sampler stores history under.
func (s *Sample) FullName() string { return s.Name + labelString(s.Labels, "") }

// DerivedName is FullName with a suffix spliced between the family name
// and the label set — the naming scheme for the series the
// self-monitoring sampler derives from one histogram sample
// (name_p99{...}, name_count{...}).
func (s *Sample) DerivedName(suffix string) string {
	return s.Name + suffix + labelString(s.Labels, "")
}

// HistView is one histogram's state at Visit time. Bounds is shared with
// the live histogram (immutable after construction; do not mutate);
// Counts is a fresh per-bucket snapshot with the +Inf bucket last, and
// Count is the sum of that snapshot, so rank arithmetic over the view is
// internally consistent even against a racing Observe.
type HistView struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Quantile estimates the q-quantile of the view with the same
// interpolation as Histogram.Quantile.
func (v *HistView) Quantile(q float64) float64 {
	if v == nil {
		return 0
	}
	return bucketQuantile(v.Bounds, v.Counts, v.Count, q)
}

// Visit calls fn once per registered series, in registration order
// (family-major, so all series of one name are contiguous). Values are
// read atomically at call time; the registry lock is held only while the
// family list is copied, never across callbacks, so fn may take locks of
// its own and GaugeFunc callbacks run outside the registry lock. This is
// the structured snapshot API the exposition writers, Values and the
// self-monitoring sampler are built on — nothing iterates exposition
// text. A nil registry visits nothing.
func (r *Registry) Visit(fn func(Sample)) {
	if r == nil {
		return
	}
	for _, f := range r.snapshot() {
		for _, s := range f.order {
			smp := Sample{Name: f.name, Help: f.help, Labels: s.labels, Kind: f.kind}
			switch f.kind {
			case KindCounter:
				smp.Value = float64(s.c.Value())
			case KindGauge:
				smp.Value = s.gaugeValue()
			case KindHistogram:
				counts := s.h.BucketCounts()
				var total uint64
				for _, c := range counts {
					total += c
				}
				smp.Hist = &HistView{Bounds: s.h.bounds, Counts: counts, Count: total, Sum: s.h.Sum()}
			}
			fn(smp)
		}
	}
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, one line per series, and
// cumulative le-labelled buckets plus _sum/_count for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var err error
	last := ""
	r.Visit(func(s Sample) {
		if err != nil {
			return
		}
		if s.Name != last {
			last = s.Name
			if s.Help != "" {
				if _, err = fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(s.Help)); err != nil {
					return
				}
			}
			if _, err = fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return
			}
		}
		err = writeSample(w, s)
	})
	return err
}

func writeSample(w io.Writer, s Sample) error {
	switch s.Kind {
	case KindCounter, KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelString(s.Labels, ""), formatFloat(s.Value))
		return err
	}
	var cum uint64
	for i, c := range s.Hist.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Hist.Bounds) {
			le = formatFloat(s.Hist.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			s.Name, labelString(s.Labels, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		s.Name, labelString(s.Labels, ""), formatFloat(s.Hist.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelString(s.Labels, ""), s.Hist.Count)
	return err
}

// labelString renders {k="v",…}, appending the le label when non-empty.
func labelString(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON writes an expvar-style dump: a flat object keyed by the
// exposition name (labels included), counters and gauges as numbers and
// histograms as {count, sum, buckets} objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}")
		return err
	}
	out := make(map[string]any)
	r.Visit(func(s Sample) {
		key := s.FullName()
		switch s.Kind {
		case KindCounter:
			out[key] = uint64(s.Value)
		case KindGauge:
			out[key] = s.Value
		case KindHistogram:
			buckets := make(map[string]uint64, len(s.Hist.Counts))
			var cum uint64
			for i, c := range s.Hist.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Hist.Bounds) {
					le = formatFloat(s.Hist.Bounds[i])
				}
				buckets[le] = cum
			}
			out[key] = map[string]any{
				"count":   s.Hist.Count,
				"sum":     s.Hist.Sum,
				"buckets": buckets,
			}
		}
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Values flattens every series to a float64 keyed by exposition name;
// histograms contribute name_count and name_sum. It is the snapshot the
// daemons log from on their reporting tick.
func (r *Registry) Values() map[string]float64 {
	out := make(map[string]float64)
	r.Visit(func(s Sample) {
		key := s.FullName()
		switch s.Kind {
		case KindCounter, KindGauge:
			out[key] = s.Value
		case KindHistogram:
			out[key+"_count"] = float64(s.Hist.Count)
			out[key+"_sum"] = s.Hist.Sum
		}
	})
	return out
}

// HistogramSummary is one histogram series reduced to its headline
// quantiles — the latency-SLO view of /v1/stats and the simulator
// summary.
type HistogramSummary struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Count  uint64  `json:"count"`
	Sum    float64 `json:"sum"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// HistogramSummaries reduces every registered histogram with at least one
// observation to interpolated p50/p95/p99 (see Histogram.Quantile).
func (r *Registry) HistogramSummaries() []HistogramSummary {
	if r == nil {
		return nil
	}
	var out []HistogramSummary
	r.Visit(func(s Sample) {
		if s.Kind != KindHistogram || s.Hist.Count == 0 {
			return
		}
		out = append(out, HistogramSummary{
			Name:   s.Name,
			Labels: labelString(s.Labels, ""),
			Count:  s.Hist.Count,
			Sum:    s.Hist.Sum,
			P50:    s.Hist.Quantile(0.50),
			P95:    s.Hist.Quantile(0.95),
			P99:    s.Hist.Quantile(0.99),
		})
	})
	return out
}

// Names returns the registered family names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	fams := r.snapshot()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.name
	}
	return out
}

// SortedNames returns the registered family names sorted, for stable
// test assertions and docs.
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}

// MetricsHandler serves the Prometheus text exposition (GET /debug/metrics).
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck — client gone mid-scrape, nothing to do
	})
}

// VarsHandler serves the JSON dump (GET /debug/vars).
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w) //nolint:errcheck
	})
}
