package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SpanView is the JSON shape of one span in the debug endpoints.
type SpanView struct {
	ID       uint32       `json:"id"`
	Parent   uint32       `json:"parent,omitempty"`
	Stage    string       `json:"stage"`
	StartUS  int64        `json:"start_us"` // offset from trace start, microseconds
	DurUS    int64        `json:"dur_us"`
	Open     bool         `json:"open,omitempty"` // span never Ended
	Annots   []Annotation `json:"annotations,omitempty"`
	Children []*SpanView  `json:"children,omitempty"`
}

// TraceView is the JSON shape of one trace: a header plus the span tree.
type TraceView struct {
	ID     string      `json:"id"`
	Sensor string      `json:"sensor,omitempty"`
	Start  time.Time   `json:"start"`
	DurUS  int64       `json:"dur_us"`
	Spans  int         `json:"spans"`
	Tree   []*SpanView `json:"tree,omitempty"`
}

// Snapshot renders the trace for the debug endpoints. withTree controls
// whether the full span tree is built (the list endpoint omits it).
func (t *Trace) Snapshot(withTree bool) TraceView {
	if t == nil {
		return TraceView{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tv := TraceView{
		ID:     t.id.String(),
		Sensor: t.sensor,
		Start:  t.start,
		DurUS:  t.durationLocked().Microseconds(),
		Spans:  len(t.spans),
	}
	if !withTree {
		return tv
	}
	views := make(map[uint32]*SpanView, len(t.spans))
	for _, sp := range t.spans {
		v := &SpanView{
			ID:      sp.id,
			Parent:  sp.parent,
			Stage:   sp.stage,
			StartUS: sp.start.Sub(t.start).Microseconds(),
			DurUS:   sp.dur.Microseconds(),
			Open:    !sp.ended,
			Annots:  append([]Annotation(nil), sp.annots...),
		}
		views[sp.id] = v
	}
	// Attach children in span-creation order; orphans (parent missing,
	// which cannot normally happen) surface at the top level.
	for _, sp := range t.spans {
		v := views[sp.id]
		if p, ok := views[sp.parent]; ok && sp.parent != sp.id {
			p.Children = append(p.Children, v)
		} else {
			tv.Tree = append(tv.Tree, v)
		}
	}
	return tv
}

// Recent returns up to limit completed traces, newest first.
func (r *Recorder) Recent(limit int) []*Trace {
	if r == nil {
		return nil
	}
	if limit <= 0 || limit > len(r.ring) {
		limit = len(r.ring)
	}
	head := r.head.Load()
	out := make([]*Trace, 0, limit)
	n := uint64(len(r.ring))
	for off := uint64(0); off < n && len(out) < limit; off++ {
		i := head - 1 - off
		if head < 1+off { // ring not yet full
			break
		}
		if t := r.ring[i%n].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Lookup finds a trace by ID among inflight, ring and exemplars.
func (r *Recorder) Lookup(id ID) *Trace {
	if r == nil || id == 0 {
		return nil
	}
	r.mu.Lock()
	t := r.inflight[id]
	r.mu.Unlock()
	if t != nil {
		return t
	}
	if t := r.lookupRing(id); t != nil {
		return t
	}
	r.exMu.Lock()
	defer r.exMu.Unlock()
	for _, list := range r.exemplars {
		for _, et := range list {
			if et.id == id {
				return et
			}
		}
	}
	return nil
}

// Exemplars returns the pinned slowest traces per stage.
func (r *Recorder) Exemplars() map[string][]*Trace {
	if r == nil {
		return nil
	}
	r.exMu.Lock()
	defer r.exMu.Unlock()
	out := make(map[string][]*Trace, len(r.exemplars))
	for stage, list := range r.exemplars {
		out[stage] = append([]*Trace(nil), list...)
	}
	return out
}

// Handler serves the debug endpoints:
//
//	GET <prefix>          — recent traces (?sensor=, ?min=<duration>,
//	                        ?limit=N) plus per-stage slow exemplars
//	GET <prefix>/{id}     — one trace as a nested span tree
//
// Mount it at e.g. /debug/traces. A nil recorder serves 404s.
func (r *Recorder) Handler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		rest := strings.Trim(strings.TrimPrefix(req.URL.Path, prefix), "/")
		if rest == "" {
			r.serveList(w, req)
			return
		}
		id, ok := ParseID(rest)
		if !ok {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		t := r.Lookup(id)
		if t == nil {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		writeJSON(w, t.Snapshot(true))
	})
}

func (r *Recorder) serveList(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	limit := 50
	if s := q.Get("limit"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			limit = n
		}
	}
	var minDur time.Duration
	if s := q.Get("min"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			minDur = d
		} else {
			http.Error(w, "bad min duration", http.StatusBadRequest)
			return
		}
	}
	sensor := q.Get("sensor")

	var recent []TraceView
	for _, t := range r.Recent(limit) {
		tv := t.Snapshot(false)
		if sensor != "" && tv.Sensor != sensor {
			continue
		}
		if minDur > 0 && time.Duration(tv.DurUS)*time.Microsecond < minDur {
			continue
		}
		recent = append(recent, tv)
	}

	type stageEx struct {
		Stage  string      `json:"stage"`
		Traces []TraceView `json:"traces"`
	}
	var exemplars []stageEx
	for stage, list := range r.Exemplars() {
		se := stageEx{Stage: stage}
		for _, t := range list {
			se.Traces = append(se.Traces, t.Snapshot(false))
		}
		exemplars = append(exemplars, se)
	}
	sort.Slice(exemplars, func(i, j int) bool { return exemplars[i].Stage < exemplars[j].Stage })

	writeJSON(w, map[string]any{
		"traces":    recent,
		"exemplars": exemplars,
		"dropped":   r.Dropped(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
