// Package trace is the repository's causal-tracing substrate: a small,
// dependency-free span recorder in the Dapper style. One frame's life —
// SBR encode on the sensor, transport send with its retries and
// reconnects, station receive (dedup, decode, index update), segment-store
// append/fsync/seal, and much later the query handlers that read it back —
// is stitched into a single trace identified by an 8-byte ID that rides in
// the protocol-v3 wire frame header next to a sampling bit.
//
// The design follows internal/obs's nil-safety convention: every method is
// safe on a nil *Recorder, nil *Trace and nil *Span, so an uninstrumented
// path pays exactly one nil check per event and "tracing off" is a true
// no-op — the bar is the same <5% ReceiveFrame overhead the metrics
// registry is held to. Sampling is decided once, where a trace is born
// (the sensor-side encode, or an HTTP request without an inherited
// context); everything downstream only ever *continues* a trace whose
// sampled bit arrived on the wire, so an unsampled frame costs a header
// peek and nothing else.
//
// Completed traces land in a lock-free bounded ring buffer; the N slowest
// traces per stage are additionally pinned as exemplars that outlive ring
// wraparound, which is what keeps "why was p99 slow an hour ago"
// answerable without a tracing backend.
package trace

import (
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ID is a 64-bit trace identifier. Zero means "no trace": it is never
// allocated, and a frame carrying it is treated as untraced.
type ID uint64

// String renders the ID as 16 lower-case hex digits, the form the debug
// endpoints and annotations use.
func (id ID) String() string {
	const hexDigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseID parses the 16-hex-digit form. Malformed input returns 0 (the
// "no trace" sentinel) and false.
func ParseID(s string) (ID, bool) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return ID(v), true
}

// Annotation is one key/value note on a span. Values are pre-rendered
// strings: annotations exist for humans reading a span tree, not for
// aggregation (that is what the metrics registry is for).
type Annotation struct {
	Key, Value string
}

// Span is one timed stage of a trace. Spans form a tree via parent IDs;
// the zero parent marks a root. Create spans with Trace.StartSpan or
// Span.Child and close them with End; all methods are no-ops on nil.
type Span struct {
	tr     *Trace
	id     uint32
	parent uint32
	stage  string
	start  time.Time
	dur    time.Duration
	ended  bool
	annots []Annotation
}

// Trace returns the trace the span belongs to (nil for a nil span), so
// a component holding only a span can Finish the whole trace.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// Stage returns the span's stage name ("" for nil).
func (s *Span) Stage() string {
	if s == nil {
		return ""
	}
	return s.stage
}

// Annotate attaches one key/value note to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.annots = append(s.annots, Annotation{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// AnnotateInt attaches one integer-valued note to the span.
func (s *Span) AnnotateInt(key string, v int64) {
	s.Annotate(key, strconv.FormatInt(v, 10))
}

// Child starts a new span under s, in s's trace.
func (s *Span) Child(stage string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startSpan(stage, s.id)
}

// End closes the span, fixing its duration. A second End is a no-op, so
// deferred and explicit closes can coexist.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.tr.mu.Unlock()
}

// Trace accumulates the spans of one traced frame (or request). A trace
// object is shared: every component that Continues the same ID appends to
// the same span list, which is what joins the sensor-side and
// station-side halves when both run in one process. All methods are safe
// for concurrent use and no-ops on a nil receiver.
type Trace struct {
	rec *Recorder
	id  ID

	mu        sync.Mutex
	sensor    string
	start     time.Time
	spans     []*Span
	nextSpan  uint32
	published bool
}

// TraceID returns the trace's wire identifier (0 for nil).
func (t *Trace) TraceID() ID {
	if t == nil {
		return 0
	}
	return t.id
}

// Sensor returns the sensor the trace is attributed to.
func (t *Trace) Sensor() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sensor
}

// setSensor records the owning sensor; the first non-empty value wins.
func (t *Trace) setSensor(sensor string) {
	if t == nil || sensor == "" {
		return
	}
	t.mu.Lock()
	if t.sensor == "" {
		t.sensor = sensor
	}
	t.mu.Unlock()
}

// StartSpan opens a new span at the top level of the trace: a root span
// when the trace is empty, otherwise a child of the trace's root — so the
// stage that births a trace (encode, or an HTTP handler) becomes the
// parent of every stage recorded after it.
func (t *Trace) StartSpan(stage string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var parent uint32
	if len(t.spans) > 0 {
		parent = t.spans[0].id
	}
	t.mu.Unlock()
	return t.startSpan(stage, parent)
}

func (t *Trace) startSpan(stage string, parent uint32) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tr: t, stage: stage, parent: parent, start: time.Now()}
	t.mu.Lock()
	t.nextSpan++
	sp.id = t.nextSpan
	if len(t.spans) == 0 {
		t.start = sp.start
		sp.parent = 0 // first span is the root regardless of the caller's guess
	}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// Finish publishes the trace into the recorder's ring of completed traces
// and refreshes the slow-stage exemplars. It is idempotent and
// non-terminal: each stage that completes its part of the trace calls
// Finish, the first call places the trace in the ring, and later spans
// appended by downstream stages remain visible because the ring holds the
// live object. Exemplar rankings are re-evaluated on every call so a slow
// late stage still pins the trace.
func (t *Trace) Finish() {
	if t == nil || t.rec == nil {
		return
	}
	t.mu.Lock()
	first := !t.published
	t.published = true
	t.mu.Unlock()
	if first {
		t.rec.publish(t)
	}
	t.rec.pinExemplars(t)
}

// duration is the trace's span-covered extent: latest span end minus
// trace start. The caller must hold t.mu.
func (t *Trace) durationLocked() time.Duration {
	var d time.Duration
	for _, sp := range t.spans {
		end := sp.start.Sub(t.start)
		if sp.ended {
			end += sp.dur
		}
		if end > d {
			d = end
		}
	}
	return d
}

// Options configures a Recorder. The zero value is usable.
type Options struct {
	// Capacity bounds the ring of completed traces (default 256).
	Capacity int

	// SampleEvery controls locally-born traces: Begin samples one in
	// every SampleEvery calls. 0 disables local sampling entirely — the
	// recorder then only continues traces whose sampled bit arrived on
	// the wire, which is the right setting for a pure receiver.
	SampleEvery int

	// Exemplars pins the N slowest traces per stage beyond ring
	// wraparound (default 4, 0 keeps the default; negative disables).
	Exemplars int

	// MaxInflight bounds the table of traces that have started but never
	// Finished (default 1024). Overflow publishes and drops the oldest,
	// so a crashed peer cannot leak trace objects forever.
	MaxInflight int
}

// Recorder assembles spans into traces and retains the interesting ones.
// All methods are safe for concurrent use and no-ops on a nil receiver.
type Recorder struct {
	sampleEvery uint64
	births      atomic.Uint64
	exN         int

	ring []atomic.Pointer[Trace]
	head atomic.Uint64

	mu          sync.Mutex
	inflight    map[ID]*Trace
	order       []ID // inflight insertion order, for bounded eviction
	maxInflight int
	dropped     atomic.Uint64

	exMu      sync.Mutex
	exemplars map[string][]*Trace // stage -> slowest-first pinned traces
}

// NewRecorder builds a recorder. See Options for the knobs.
func NewRecorder(opt Options) *Recorder {
	if opt.Capacity <= 0 {
		opt.Capacity = 256
	}
	if opt.Exemplars == 0 {
		opt.Exemplars = 4
	}
	if opt.Exemplars < 0 {
		opt.Exemplars = 0
	}
	if opt.MaxInflight <= 0 {
		opt.MaxInflight = 1024
	}
	return &Recorder{
		sampleEvery: uint64(opt.SampleEvery),
		exN:         opt.Exemplars,
		ring:        make([]atomic.Pointer[Trace], opt.Capacity),
		inflight:    make(map[ID]*Trace),
		maxInflight: opt.MaxInflight,
		exemplars:   make(map[string][]*Trace),
	}
}

// newID draws a non-zero trace identifier.
func newID() ID {
	for {
		if v := rand.Uint64(); v != 0 {
			return ID(v)
		}
	}
}

// Begin births a trace for the named sensor, subject to the local
// sampling policy: one in SampleEvery calls returns a live trace, the
// rest (and every call on a nil recorder or with sampling disabled)
// return nil — and a nil trace propagates no-ops through every span
// call, so callers never branch.
func (r *Recorder) Begin(sensor string) *Trace {
	if r == nil || r.sampleEvery == 0 {
		return nil
	}
	if r.births.Add(1)%r.sampleEvery != 0 {
		return nil
	}
	return r.Continue(newID(), sensor)
}

// Continue returns the live trace for id, creating it when this is the
// first sighting: the wire-propagated join point. A frame retransmitted
// after an ack loss, or a query carrying a frame's trace ID, lands on the
// same object — one trace, never a restart. Returns nil on a nil
// recorder or the zero ID.
func (r *Recorder) Continue(id ID, sensor string) *Trace {
	if r == nil || id == 0 {
		return nil
	}
	r.mu.Lock()
	if t, ok := r.inflight[id]; ok {
		r.mu.Unlock()
		t.setSensor(sensor)
		return t
	}
	r.mu.Unlock()
	// Finished traces stay continuable while the ring holds them: a
	// retransmitted duplicate or a late query joins instead of forking.
	if t := r.lookupRing(id); t != nil {
		t.setSensor(sensor)
		return t
	}
	t := &Trace{rec: r, id: id, sensor: sensor, start: time.Now()}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prior, ok := r.inflight[id]; ok { // lost the race to another continuer
		return prior
	}
	if len(r.inflight) >= r.maxInflight {
		r.evictOldestLocked()
	}
	r.inflight[id] = t
	r.order = append(r.order, id)
	return t
}

// evictOldestLocked publishes and drops the oldest inflight trace. The
// caller holds r.mu.
func (r *Recorder) evictOldestLocked() {
	for len(r.order) > 0 {
		id := r.order[0]
		r.order = r.order[1:]
		t, ok := r.inflight[id]
		if !ok {
			continue // already finished normally
		}
		delete(r.inflight, id)
		r.dropped.Add(1)
		// Publish outside the map so the partial trace is still findable.
		go t.Finish()
		return
	}
}

// lookupRing scans the completed ring for id. Lock-free: the ring entries
// are atomic pointers.
func (r *Recorder) lookupRing(id ID) *Trace {
	for i := range r.ring {
		if t := r.ring[i].Load(); t != nil && t.id == id {
			return t
		}
	}
	return nil
}

// publish moves a trace from the inflight table into the completed ring.
func (r *Recorder) publish(t *Trace) {
	r.mu.Lock()
	delete(r.inflight, t.id)
	r.mu.Unlock()
	i := r.head.Add(1) - 1
	r.ring[i%uint64(len(r.ring))].Store(t)
}

// pinExemplars re-ranks t against the per-stage slowest lists.
func (r *Recorder) pinExemplars(t *Trace) {
	if r.exN == 0 {
		return
	}
	// Per-stage worst span duration of this trace.
	t.mu.Lock()
	worst := make(map[string]time.Duration, len(t.spans))
	for _, sp := range t.spans {
		if sp.ended && sp.dur > worst[sp.stage] {
			worst[sp.stage] = sp.dur
		}
	}
	t.mu.Unlock()

	r.exMu.Lock()
	defer r.exMu.Unlock()
	for stage := range worst {
		list := r.exemplars[stage]
		found := false
		for _, have := range list {
			if have == t {
				found = true
				break
			}
		}
		if !found {
			list = append(list, t)
		}
		sort.SliceStable(list, func(i, j int) bool {
			return stageWorst(list[i], stage) > stageWorst(list[j], stage)
		})
		if len(list) > r.exN {
			list = list[:r.exN]
		}
		r.exemplars[stage] = list
	}
}

// stageWorst returns a trace's slowest ended span duration for stage.
func stageWorst(t *Trace, stage string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d time.Duration
	for _, sp := range t.spans {
		if sp.stage == stage && sp.ended && sp.dur > d {
			d = sp.dur
		}
	}
	return d
}

// Dropped reports how many never-finished traces the inflight bound
// evicted.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}
