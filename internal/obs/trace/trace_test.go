package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Recorder
	tr := r.Begin("s1")
	if tr != nil {
		t.Fatal("nil recorder birthed a trace")
	}
	if got := r.Continue(7, "s1"); got != nil {
		t.Fatal("nil recorder continued a trace")
	}
	// Every span call on the nil chain must be a no-op, not a panic.
	sp := tr.StartSpan("stage")
	sp.Annotate("k", "v")
	sp.AnnotateInt("n", 3)
	child := sp.Child("sub")
	child.End()
	sp.End()
	sp.Trace().Finish()
	tr.Finish()
	if r.Recent(10) != nil || r.Lookup(7) != nil || r.Exemplars() != nil || r.Dropped() != 0 {
		t.Error("nil recorder leaked state")
	}
	if tr.TraceID() != 0 || tr.Sensor() != "" || sp.Stage() != "" {
		t.Error("nil accessors returned non-zero values")
	}
}

func TestSampling(t *testing.T) {
	r := NewRecorder(Options{SampleEvery: 4})
	live := 0
	for i := 0; i < 16; i++ {
		if r.Begin("s") != nil {
			live++
		}
	}
	if live != 4 {
		t.Errorf("1-in-4 sampling over 16 births gave %d traces", live)
	}
	// Sampling disabled: Begin never fires, Continue still joins.
	off := NewRecorder(Options{})
	if off.Begin("s") != nil {
		t.Error("SampleEvery=0 birthed a trace")
	}
	if off.Continue(99, "s") == nil {
		t.Error("SampleEvery=0 refused to continue a wire trace")
	}
}

func TestContinueJoinsNotForks(t *testing.T) {
	r := NewRecorder(Options{SampleEvery: 1})
	a := r.Continue(123, "node-1")
	sp := a.StartSpan("encode")
	sp.End()

	// Same ID continued again — the retransmission path — must return the
	// same live object.
	b := r.Continue(123, "")
	if a != b {
		t.Fatal("Continue forked a second trace for the same ID")
	}
	if b.Sensor() != "node-1" {
		t.Errorf("sensor lost on re-continue: %q", b.Sensor())
	}

	// Even after Finish, the ID stays joinable while the ring holds it.
	a.Finish()
	c := r.Continue(123, "")
	if c != a {
		t.Fatal("Continue restarted a finished trace")
	}
	sp2 := c.StartSpan("query.index_walk")
	sp2.End()
	if got := r.Lookup(123).Snapshot(true); got.Spans != 2 {
		t.Errorf("late span not visible: %d spans", got.Spans)
	}
}

func TestFinishIdempotentPublish(t *testing.T) {
	r := NewRecorder(Options{Capacity: 8})
	tr := r.Continue(5, "s")
	tr.StartSpan("a").End()
	tr.Finish()
	tr.Finish()
	tr.Finish()
	if got := len(r.Recent(0)); got != 1 {
		t.Errorf("triple Finish published %d ring entries, want 1", got)
	}
}

func TestRootSpanParenting(t *testing.T) {
	r := NewRecorder(Options{})
	tr := r.Continue(9, "s")
	root := tr.StartSpan("encode")
	top := tr.StartSpan("netio.send") // top-level: must parent to root
	kid := top.Child("netio.retry")
	kid.End()
	top.End()
	root.End()
	tr.Finish()

	tv := tr.Snapshot(true)
	if len(tv.Tree) != 1 {
		t.Fatalf("%d roots, want 1", len(tv.Tree))
	}
	rt := tv.Tree[0]
	if rt.Stage != "encode" || len(rt.Children) != 1 {
		t.Fatalf("root %q with %d children", rt.Stage, len(rt.Children))
	}
	if rt.Children[0].Stage != "netio.send" || len(rt.Children[0].Children) != 1 {
		t.Fatal("netio.send not parented under encode, or retry missing")
	}
	if rt.Children[0].Children[0].Stage != "netio.retry" {
		t.Fatal("retry span not a child of netio.send")
	}
}

func TestRingWraparound(t *testing.T) {
	// Exemplars disabled: this test is about the ring alone, and a pinned
	// exemplar would keep an overwritten trace findable by design.
	r := NewRecorder(Options{Capacity: 4, Exemplars: -1})
	for i := 1; i <= 10; i++ {
		tr := r.Continue(ID(i), "s")
		tr.StartSpan("x").End()
		tr.Finish()
	}
	recent := r.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring of 4 holds %d", len(recent))
	}
	// Newest first: 10, 9, 8, 7.
	for i, want := range []ID{10, 9, 8, 7} {
		if recent[i].TraceID() != want {
			t.Errorf("recent[%d] = %d, want %d", i, recent[i].TraceID(), want)
		}
	}
	if r.Lookup(1) != nil {
		t.Error("overwritten trace still findable")
	}
}

func TestExemplarsPinSlowest(t *testing.T) {
	r := NewRecorder(Options{Capacity: 2, Exemplars: 2})
	slow := r.Continue(1, "s")
	sp := slow.StartSpan("segstore.fsync")
	time.Sleep(5 * time.Millisecond)
	sp.End()
	slow.Finish()

	// Flood the ring so the slow trace is long gone from it.
	for i := 2; i <= 8; i++ {
		tr := r.Continue(ID(i), "s")
		tr.StartSpan("segstore.fsync").End()
		tr.Finish()
	}
	ex := r.Exemplars()["segstore.fsync"]
	if len(ex) != 2 {
		t.Fatalf("%d exemplars pinned, want 2", len(ex))
	}
	if ex[0] != slow {
		t.Error("slowest fsync trace not ranked first")
	}
	// Pinned exemplars outlive ring wraparound: still findable by ID.
	if r.Lookup(1) != slow {
		t.Error("exemplar not findable after ring wrap")
	}
}

func TestInflightEviction(t *testing.T) {
	r := NewRecorder(Options{MaxInflight: 4})
	for i := 1; i <= 8; i++ {
		tr := r.Continue(ID(i), "s")
		tr.StartSpan("x") // never ended, never finished
	}
	deadline := time.Now().Add(time.Second)
	for r.Dropped() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := r.Dropped(); got != 4 {
		t.Errorf("dropped %d inflight traces, want 4", got)
	}
}

func TestParseID(t *testing.T) {
	id := ID(0x0123456789abcdef)
	s := id.String()
	if s != "0123456789abcdef" {
		t.Fatalf("String() = %q", s)
	}
	back, ok := ParseID(s)
	if !ok || back != id {
		t.Fatalf("ParseID(%q) = %d, %v", s, back, ok)
	}
	for _, bad := range []string{"", "xyz", "0", "0000000000000000", "ffffffffffffffffff"} {
		if _, ok := ParseID(bad); ok {
			t.Errorf("ParseID(%q) accepted", bad)
		}
	}
}

// TestTraceRecorderConcurrency hammers one recorder from many goroutines —
// concurrent Begin/Continue on overlapping IDs, span churn, Finish, and
// debug-endpoint reads — and relies on the race detector for verdicts.
func TestTraceRecorderConcurrency(t *testing.T) {
	r := NewRecorder(Options{Capacity: 32, SampleEvery: 2, MaxInflight: 16})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Overlapping IDs across workers force Continue races.
				tr := r.Continue(ID(i%10+1), fmt.Sprintf("s%d", w))
				sp := tr.StartSpan("station.receive")
				sp.AnnotateInt("seq", int64(i))
				ch := sp.Child("station.decode")
				ch.End()
				sp.End()
				tr.Finish()
				if btr := r.Begin("born"); btr != nil {
					btr.StartSpan("encode").End()
					btr.Finish()
				}
			}
		}(w)
	}
	// Concurrent readers: the debug surface while writers churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			r.Recent(8)
			r.Lookup(ID(i%10 + 1))
			r.Exemplars()
			for _, tr := range r.Recent(4) {
				tr.Snapshot(true)
			}
		}
	}()
	wg.Wait()
}

func TestHandlerListAndDetail(t *testing.T) {
	r := NewRecorder(Options{Capacity: 8})
	tr := r.Continue(0xabc, "node-03")
	sp := tr.StartSpan("station.receive")
	sp.Child("station.decode").End()
	sp.End()
	tr.Finish()

	h := r.Handler("/debug/traces")

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("list: %d", rec.Code)
	}
	var list struct {
		Traces []TraceView `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].Sensor != "node-03" {
		t.Fatalf("list = %+v", list)
	}

	// Sensor filter excludes.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?sensor=other", nil))
	list.Traces = nil
	json.Unmarshal(rec.Body.Bytes(), &list)
	if len(list.Traces) != 0 {
		t.Error("sensor filter did not exclude")
	}

	// Detail endpoint returns the span tree.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+ID(0xabc).String(), nil))
	if rec.Code != 200 {
		t.Fatalf("detail: %d %s", rec.Code, rec.Body)
	}
	var tv TraceView
	if err := json.Unmarshal(rec.Body.Bytes(), &tv); err != nil {
		t.Fatal(err)
	}
	if tv.Spans != 2 || len(tv.Tree) != 1 || len(tv.Tree[0].Children) != 1 {
		t.Fatalf("detail tree = %+v", tv)
	}

	// Unknown ID and malformed ID.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/0000000000000001", nil))
	if rec.Code != 404 {
		t.Errorf("unknown id: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/nope", nil))
	if rec.Code != 400 {
		t.Errorf("bad id: %d", rec.Code)
	}

	// Nil recorder serves 404 rather than panicking.
	var nilRec *Recorder
	rec = httptest.NewRecorder()
	nilRec.Handler("/debug/traces").ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 404 {
		t.Errorf("nil recorder: %d", rec.Code)
	}
}
