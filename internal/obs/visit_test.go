package obs

import (
	"math"
	"strings"
	"testing"
)

func TestQuantileEdgeCases(t *testing.T) {
	// Empty histogram: 0, never NaN, for any q.
	h := NewHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 1, math.NaN(), -1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	// Bound-less histogram: 0 even with observations.
	unbounded := NewHistogram(nil)
	unbounded.Observe(5)
	if got := unbounded.Quantile(0.5); got != 0 {
		t.Errorf("boundless.Quantile(0.5) = %v, want 0", got)
	}

	// NaN q on a populated histogram: 0, never NaN.
	h.Observe(1.5)
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Errorf("Quantile(NaN) = %v, want 0", got)
	}
	// Out-of-range q clamps instead of extrapolating.
	if got := h.Quantile(-3); got < 0 || got > 2 {
		t.Errorf("Quantile(-3) = %v, want clamped into a bucket", got)
	}
	if got, want := h.Quantile(5), h.Quantile(1); got != want {
		t.Errorf("Quantile(5) = %v, want Quantile(1) = %v", got, want)
	}

	// Single positive bucket: interpolation from zero stays within (0, 2].
	single := NewHistogram([]float64{2})
	single.Observe(1)
	single.Observe(1)
	if got := single.Quantile(0.5); got <= 0 || got > 2 {
		t.Errorf("single-bucket Quantile(0.5) = %v, want within (0, 2]", got)
	}
	if got := single.Quantile(1); got != 2 {
		t.Errorf("single-bucket Quantile(1) = %v, want upper bound 2", got)
	}

	// Single negative bucket: the estimate clamps to the bucket instead of
	// interpolating down from zero through values outside it.
	neg := NewHistogram([]float64{-5})
	neg.Observe(-7)
	if got := neg.Quantile(0.5); got > -5 {
		t.Errorf("negative-bucket Quantile(0.5) = %v, want ≤ bucket bound -5", got)
	}

	// Rank in the +Inf bucket saturates at the last finite bound.
	inf := NewHistogram([]float64{1})
	inf.Observe(100)
	if got := inf.Quantile(0.99); got != 1 {
		t.Errorf("+Inf-bucket Quantile(0.99) = %v, want saturated 1", got)
	}
}

func TestVisitIteratesAllKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("v_total", "counter help", L("k", "a")).Add(3)
	r.Counter("v_total", "counter help", L("k", "b")).Add(5)
	r.Gauge("v_gauge", "gauge help").Set(2.5)
	r.GaugeFunc("v_lazy", "lazy help", func() float64 { return 9 })
	h := r.Histogram("v_hist", "hist help", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var got []Sample
	r.Visit(func(s Sample) { got = append(got, s) })
	if len(got) != 5 {
		t.Fatalf("visited %d series, want 5", len(got))
	}

	byName := map[string]Sample{}
	for _, s := range got {
		byName[s.FullName()] = s
	}
	if s := byName[`v_total{k="a"}`]; s.Kind != KindCounter || s.Value != 3 {
		t.Errorf("counter a = %+v", s)
	}
	if s := byName[`v_total{k="b"}`]; s.Value != 5 {
		t.Errorf("counter b = %+v", s)
	}
	if s := byName["v_gauge"]; s.Kind != KindGauge || s.Value != 2.5 {
		t.Errorf("gauge = %+v", s)
	}
	if s := byName["v_lazy"]; s.Value != 9 {
		t.Errorf("lazy gauge = %+v", s)
	}
	hs := byName["v_hist"]
	if hs.Kind != KindHistogram || hs.Hist == nil {
		t.Fatalf("histogram = %+v", hs)
	}
	if hs.Hist.Count != 3 || hs.Hist.Sum != 105.5 {
		t.Errorf("hist view count/sum = %d/%v", hs.Hist.Count, hs.Hist.Sum)
	}
	if want := []uint64{1, 1, 1}; len(hs.Hist.Counts) != 3 ||
		hs.Hist.Counts[0] != want[0] || hs.Hist.Counts[1] != want[1] || hs.Hist.Counts[2] != want[2] {
		t.Errorf("hist view counts = %v, want %v", hs.Hist.Counts, want)
	}
	if q := hs.Hist.Quantile(0.99); q != 10 {
		t.Errorf("view Quantile(0.99) = %v, want saturated 10", q)
	}
	if (*HistView)(nil).Quantile(0.5) != 0 {
		t.Error("nil HistView Quantile not 0")
	}
}

func TestVisitNilRegistry(t *testing.T) {
	var r *Registry
	r.Visit(func(Sample) { t.Fatal("nil registry visited a sample") })
}

func TestDerivedName(t *testing.T) {
	s := Sample{Name: "lat_seconds", Labels: []Label{L("route", "/v1")}}
	if got, want := s.DerivedName("_p99"), `lat_seconds_p99{route="/v1"}`; got != want {
		t.Errorf("DerivedName = %q, want %q", got, want)
	}
	bare := Sample{Name: "lat_seconds"}
	if got := bare.DerivedName("_count"); got != "lat_seconds_count" {
		t.Errorf("bare DerivedName = %q", got)
	}
}

// TestExpositionMatchesVisit pins the refactor: the Prometheus text and
// JSON writers are built on Visit and must agree with a direct walk.
func TestExpositionMatchesVisit(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "events").Add(7)
	r.Histogram("e_lat", "latency", []float64{1}).Observe(0.5)

	var text strings.Builder
	if err := r.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE e_total counter", "e_total 7",
		"# TYPE e_lat histogram", `e_lat_bucket{le="1"} 1`, `e_lat_bucket{le="+Inf"} 1`,
		"e_lat_sum 0.5", "e_lat_count 1",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, text.String())
		}
	}

	vals := r.Values()
	if vals["e_total"] != 7 || vals["e_lat_count"] != 1 || vals["e_lat_sum"] != 0.5 {
		t.Errorf("Values = %v", vals)
	}
}
