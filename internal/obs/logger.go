package obs

import (
	"context"
	"io"
	"log/slog"
)

// The logging convention: every package logs through a *slog.Logger
// tagged with a "component" attribute (netio, station, httpapi, …), event
// messages are short lowercase phrases, and the interesting state rides
// in attributes — sensor IDs under "sensor", remote addresses under
// "remote", errors under "err". Daemons build one root logger with
// NewLogger and hand components out with Component; library packages
// never construct loggers themselves and treat nil as "discard".

// NewLogger returns the convention root logger: a text handler on w at
// the given level.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Component tags l with the component name, or returns the discard
// logger when l is nil — the one nil check instrumented packages need.
func Component(l *slog.Logger, name string) *slog.Logger {
	if l == nil {
		return Discard()
	}
	return l.With("component", name)
}

// Discard returns a logger that drops every record. (slog gained a
// built-in discard handler only in Go 1.24; the module targets 1.22.)
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
