package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 10 observations in (1,2]: rank interpolates linearly across the bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p50 of a single (1,2] bucket = %g, want 1.5", got)
	}
	if got := h.Quantile(1.0); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("p100 = %g, want the bucket upper bound 2", got)
	}
	// First bucket interpolates from zero.
	h2 := NewHistogram([]float64{10})
	h2.Observe(3)
	h2.Observe(7)
	if got := h2.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("p50 in the first bucket = %g, want 5", got)
	}
	// +Inf bucket saturates at the last finite bound.
	h3 := NewHistogram([]float64{1, 2})
	h3.Observe(100)
	if got := h3.Quantile(0.99); got != 2 {
		t.Errorf("p99 landing in +Inf = %g, want saturation at 2", got)
	}
	// Degenerates.
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile non-zero")
	}
	if NewHistogram([]float64{1}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile non-zero")
	}
	// Out-of-range q clamps instead of misbehaving.
	if got := h.Quantile(-3); got < 0 {
		t.Errorf("q<0 gave %g", got)
	}
	if got := h.Quantile(7); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("q>1 gave %g, want clamp to p100", got)
	}
}

func TestHistogramQuantileAcrossBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// 50 obs ≤1, 30 in (1,2], 20 in (2,4].
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 30; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 20; i++ {
		h.Observe(3)
	}
	// rank(p95)=95: 15 into the 20-count (2,4] bucket → 2 + 2·(15/20) = 3.5.
	if got := h.Quantile(0.95); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("p95 = %g, want 3.5", got)
	}
	// rank(p50)=50: exactly the 50th observation, upper edge of bucket 0.
	if got := h.Quantile(0.50); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("p50 = %g, want 1", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	calls := 0
	reg.GaugeFunc("sbr_test_lazy", "lazy", func() float64 {
		calls++
		return float64(40 + calls)
	})
	if calls != 0 {
		t.Fatal("fn evaluated at registration")
	}
	v := reg.Values()
	if v["sbr_test_lazy"] != 41 {
		t.Errorf("first scrape = %g", v["sbr_test_lazy"])
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sbr_test_lazy 42") {
		t.Errorf("exposition missing lazy gauge:\n%s", sb.String())
	}
	// Nil registry swallows the registration.
	var nilReg *Registry
	nilReg.GaugeFunc("x_y", "h", func() float64 { return 1 })
}

func TestHistogramSummaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("sbr_test_seconds", "latency", []float64{1, 2, 4}, L("path", "point"))
	reg.Histogram("sbr_test_empty_seconds", "never observed", []float64{1})
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	sums := reg.HistogramSummaries()
	if len(sums) != 1 {
		t.Fatalf("%d summaries, want 1 (empty histograms skipped)", len(sums))
	}
	s := sums[0]
	if s.Name != "sbr_test_seconds" || !strings.Contains(s.Labels, `path="point"`) {
		t.Errorf("summary identity %q %q", s.Name, s.Labels)
	}
	if s.Count != 10 || math.Abs(s.P50-1.5) > 1e-9 {
		t.Errorf("summary %+v", s)
	}
	if nilSums := (*Registry)(nil).HistogramSummaries(); nilSums != nil {
		t.Error("nil registry returned summaries")
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "", 3)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"sbr_build_info", `version="dev"`, `protocol="3"`, `go_version="go`} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	v := reg.Values()
	if v["sbr_go_goroutines"] < 1 {
		t.Errorf("goroutines = %g", v["sbr_go_goroutines"])
	}
	if v["sbr_go_heap_alloc_bytes"] <= 0 {
		t.Errorf("heap alloc = %g", v["sbr_go_heap_alloc_bytes"])
	}
	for _, name := range []string{"sbr_go_heap_objects", "sbr_go_gc_pause_seconds_total", "sbr_go_gc_cycles_total"} {
		if _, ok := v[name]; !ok {
			t.Errorf("missing %s", name)
		}
	}
}
