package experiments

import (
	"fmt"

	"sbr/internal/core"
	"sbr/internal/datagen"
	"sbr/internal/metrics"
)

// Config scales the experiments. The zero value plus withDefaults runs the
// paper-sized setup; Quick shrinks datasets and ratio sweeps so tests and
// benchmarks finish in seconds while preserving every structural property.
type Config struct {
	Seed   int64
	Ratios []float64
	Quick  bool
}

// DefaultRatios is the paper's compression-ratio sweep, 5 % to 30 %.
var DefaultRatios = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30}

// QuickRatios is the reduced sweep used by Quick runs.
var QuickRatios = []float64{0.10, 0.20}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Ratios) == 0 {
		if c.Quick {
			c.Ratios = QuickRatios
		} else {
			c.Ratios = DefaultRatios
		}
	}
	return c
}

// datasets materialises the three paper datasets (and the mixed one) at
// either paper or quick scale.
func (c Config) weather() *datagen.Dataset {
	if c.Quick {
		return datagen.WeatherSized(c.Seed, 1024, 4)
	}
	return datagen.Weather(c.Seed)
}

func (c Config) phone() *datagen.Dataset {
	if c.Quick {
		return datagen.PhoneCallsSized(c.Seed, 640, 4)
	}
	return datagen.PhoneCalls(c.Seed)
}

func (c Config) stock() *datagen.Dataset {
	if c.Quick {
		return datagen.StocksSized(c.Seed, 512, 4)
	}
	return datagen.Stocks(c.Seed)
}

func (c Config) mixed() *datagen.Dataset {
	if c.Quick {
		return datagen.MixedSized(c.Seed, 512, 4)
	}
	return datagen.Mixed(c.Seed)
}

// ComparisonMethods is the method line-up of Tables 2–4.
var ComparisonMethods = []Method{MethodSBR, MethodWavelet, MethodDCT, MethodHistogram}

// RatioTable is one dataset's error-vs-compression-ratio table: rows are
// ratios, columns are methods.
type RatioTable struct {
	Dataset string
	Metric  string // "avg-mse" or "total-rel"
	Methods []Method
	Ratios  []float64
	Cells   [][]float64 // Cells[ratioIdx][methodIdx]
}

// Cell returns the entry for a ratio index and method.
func (t *RatioTable) Cell(ratioIdx int, m Method) float64 {
	for j, method := range t.Methods {
		if method == m {
			return t.Cells[ratioIdx][j]
		}
	}
	panic(fmt.Sprintf("experiments: method %q not in table", m))
}

// runComparison fills one RatioTable pair (avg MSE and total relative) for
// a dataset: SBR is run per error metric (the paper's modified Regression
// subroutine), the competitors once (their synopses are metric-agnostic).
// When needRel is false the dedicated relative-metric SBR pass is skipped
// and the relative table reports the SSE-optimised run's relative error.
func runComparison(ds func() *datagen.Dataset, ratios []float64, needRel bool) (mse, rel *RatioTable, err error) {
	name := ds().Name
	mse = &RatioTable{Dataset: name, Metric: "avg-mse", Methods: ComparisonMethods, Ratios: ratios}
	rel = &RatioTable{Dataset: name, Metric: "total-rel", Methods: ComparisonMethods, Ratios: ratios}
	for _, ratio := range ratios {
		mseRow := make([]float64, len(ComparisonMethods))
		relRow := make([]float64, len(ComparisonMethods))
		for j, method := range ComparisonMethods {
			var mseRes, relRes *Result
			if method == MethodSBR {
				opts := DefaultSBROptions()
				mseRes, err = RunSBR(ds(), ratio, opts)
				if err != nil {
					return nil, nil, err
				}
				relRes = mseRes
				if needRel {
					opts.Metric = metrics.RelativeSSE
					relRes, err = RunSBR(ds(), ratio, opts)
					if err != nil {
						return nil, nil, err
					}
				}
			} else {
				mseRes, err = RunBaseline(ds(), ratio, method)
				if err != nil {
					return nil, nil, err
				}
				relRes = mseRes
			}
			mseRow[j] = mseRes.AvgMSE
			relRow[j] = relRes.TotalRel
		}
		mse.Cells = append(mse.Cells, mseRow)
		rel.Cells = append(rel.Cells, relRow)
	}
	return mse, rel, nil
}

// Table2 reproduces the paper's Table 2: average squared error (per value)
// versus compression ratio for the Weather and Stock datasets, across SBR,
// Wavelets, DCT and Histograms.
func Table2(c Config) (weather, stock *RatioTable, err error) {
	c = c.withDefaults()
	weather, _, err = runComparison(c.weather, c.Ratios, false)
	if err != nil {
		return nil, nil, err
	}
	stock, _, err = runComparison(c.stock, c.Ratios, false)
	if err != nil {
		return nil, nil, err
	}
	return weather, stock, nil
}

// Table3 reproduces Table 3: the Phone Call dataset under both the average
// squared error and the total sum squared relative error.
func Table3(c Config) (mse, rel *RatioTable, err error) {
	c = c.withDefaults()
	return runComparison(c.phone, c.Ratios, true)
}

// Table4 reproduces Table 4: the mixed dataset (reduced cross-signal
// correlation) under both metrics.
func Table4(c Config) (mse, rel *RatioTable, err error) {
	c = c.withDefaults()
	return runComparison(c.mixed, c.Ratios, true)
}

// Table5Result compares approximation error across base-signal
// constructions at a fixed 10 % ratio, normalised to GetBase (a ratio of 2
// means twice GetBase's error, as the paper presents it).
type Table5Result struct {
	Datasets []string
	Columns  []string    // GetBaseSVD, LinearRegression, GetBaseDCT
	Ratio    [][]float64 // Ratio[dataset][column] = err(column)/err(GetBase)
}

// Table5 reproduces Table 5: the GetBase construction against GetBaseSVD,
// plain linear regression and GetBaseDCT, with BestMap's regression
// fall-back disabled so the base signals are compared undiluted
// (Section 5.2).
func Table5(c Config) (*Table5Result, error) {
	c = c.withDefaults()
	const ratio = 0.10
	res := &Table5Result{
		Columns: []string{"GetBaseSVD", "LinearRegression", "GetBaseDCT"},
	}
	for _, mk := range []func() *datagen.Dataset{c.weather, c.phone, c.stock} {
		name := mk().Name
		run := func(builder core.BaseBuilder) (float64, error) {
			opts := DefaultSBROptions()
			opts.Builder = builder
			opts.DisableFallback = builder != core.BuilderNone
			r, err := RunSBR(mk(), ratio, opts)
			if err != nil {
				return 0, fmt.Errorf("experiments: table5 %s/%v: %w", name, builder, err)
			}
			return r.AvgMSE, nil
		}
		getBase, err := run(core.BuilderGetBase)
		if err != nil {
			return nil, err
		}
		svd, err := run(core.BuilderSVD)
		if err != nil {
			return nil, err
		}
		lin, err := run(core.BuilderNone)
		if err != nil {
			return nil, err
		}
		cos, err := run(core.BuilderDCT)
		if err != nil {
			return nil, err
		}
		res.Datasets = append(res.Datasets, name)
		res.Ratio = append(res.Ratio, []float64{svd / getBase, lin / getBase, cos / getBase})
	}
	return res, nil
}

// Table6Result records the number of base intervals inserted at each of
// the transmissions, per dataset.
type Table6Result struct {
	Datasets []string
	Inserts  [][]int
}

// Table6 reproduces Table 6 on the Figure-6 setup: equal-sized batches
// (weather 5,120 / phone 2,048 / stock 3,072 samples per signal at paper
// scale) at TotalBand 5,012, tracking how many base intervals each
// transmission inserts.
func Table6(c Config) (*Table6Result, error) {
	c = c.withDefaults()
	res := &Table6Result{}
	for _, ds := range c.figureDatasets() {
		n := ds.N() * ds.FileLen
		band := c.figureTotalBand(n)
		opts := DefaultSBROptions()
		opts.MBase = ds.MBase
		r, err := runSBRWithBand(ds, band, opts)
		if err != nil {
			return nil, err
		}
		res.Datasets = append(res.Datasets, ds.Name)
		res.Inserts = append(res.Inserts, r.Inserts)
	}
	return res, nil
}

// figureDatasets builds the equal-n dataset trio of Figures 5–6/Table 6.
func (c Config) figureDatasets() []*datagen.Dataset {
	if c.Quick {
		return []*datagen.Dataset{
			datagen.WeatherSized(c.Seed, 1280, 4),
			datagen.PhoneCallsSized(c.Seed, 512, 4),
			datagen.StocksSized(c.Seed, 768, 4),
		}
	}
	return []*datagen.Dataset{
		datagen.WeatherSized(c.Seed, 5120, 10),
		datagen.PhoneCallsSized(c.Seed, 2048, 10),
		datagen.StocksSized(c.Seed, 3072, 10),
	}
}

// figureTotalBand scales the paper's TotalBand of 5,012 (≈16 % of
// n = 30,720) to the configured dataset size.
func (c Config) figureTotalBand(n int) int {
	return totalBand(n, 5012.0/30720.0)
}

// runSBRWithBand is RunSBR with an explicit value budget instead of a
// ratio.
func runSBRWithBand(ds *datagen.Dataset, band int, opts SBROptions) (*Result, error) {
	n := ds.N() * ds.FileLen
	return RunSBR(ds, float64(band)/float64(n), opts)
}
