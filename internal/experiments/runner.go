// Package experiments reproduces the paper's evaluation (Section 5): it
// runs each dataset through SBR and the competing approximation methods at
// matched bandwidth budgets and regenerates every table and figure. The
// cmd/experiments tool formats the results; the repository-root benchmarks
// exercise the same entry points.
package experiments

import (
	"fmt"
	"time"

	"sbr/internal/core"
	"sbr/internal/datagen"
	"sbr/internal/dct"
	"sbr/internal/dft"
	"sbr/internal/histogram"
	"sbr/internal/linreg"
	"sbr/internal/metrics"
	"sbr/internal/timeseries"
	"sbr/internal/wavelet"
)

// Method names a competing approximation technique.
type Method string

// The methods of Section 5.1 plus the Fourier transform the paper
// mentions trying.
const (
	MethodSBR       Method = "SBR"
	MethodWavelet   Method = "Wavelets"
	MethodDCT       Method = "DCT"
	MethodHistogram Method = "Histograms"
	MethodDFT       Method = "DFT"
	MethodLinReg    Method = "LinearRegression"

	// MethodWaveletRel is the metric-aware wavelet synopsis in the spirit
	// of the error-guarantee wavelets the paper discusses in §5.1.1
	// (reference [12]): coefficients chosen greedily for the relative
	// error instead of by magnitude.
	MethodWaveletRel Method = "WaveletsRel"
)

// Result aggregates a 10-transmission run of one method on one dataset.
type Result struct {
	Method  Method
	Dataset string
	Ratio   float64

	// PerTransMSE is the per-value mean squared error of every
	// transmission; AvgMSE is its mean — the "Average SSE Error"
	// columns of Tables 2–4, normalised per value.
	PerTransMSE []float64
	AvgMSE      float64

	// TotalRel is the total sum squared relative error across all
	// transmissions (sanity bound 1), the second metric of Tables 3–4.
	TotalRel float64

	// TotalMaxAbs is the largest absolute residual seen anywhere.
	TotalMaxAbs float64

	// Inserts is, for SBR runs, the number of base intervals inserted at
	// each transmission (Table 6).
	Inserts []int

	// AvgEncode is the mean wall-clock encode time per transmission
	// (Figure 5).
	AvgEncode time.Duration
}

// totalBand converts a compression ratio to the per-transmission value
// budget for a dataset batch of n values.
func totalBand(n int, ratio float64) int {
	b := int(ratio * float64(n))
	if b < 1 {
		b = 1
	}
	return b
}

// accumulate folds one transmission's reconstruction into the result.
func (r *Result) accumulate(orig, approx []timeseries.Series) {
	y := timeseries.Concat(orig...)
	yh := timeseries.Concat(approx...)
	r.PerTransMSE = append(r.PerTransMSE, metrics.MeanSquared(y, yh))
	r.TotalRel += metrics.SumSquaredRelative(y, yh, metrics.DefaultSanity)
	if m := metrics.MaxAbsolute(y, yh); m > r.TotalMaxAbs {
		r.TotalMaxAbs = m
	}
}

func (r *Result) finish(encodeTotal time.Duration) {
	var sum float64
	for _, v := range r.PerTransMSE {
		sum += v
	}
	if len(r.PerTransMSE) > 0 {
		r.AvgMSE = sum / float64(len(r.PerTransMSE))
		r.AvgEncode = encodeTotal / time.Duration(len(r.PerTransMSE))
	}
}

// SBROptions tunes an SBR run beyond the paper defaults.
type SBROptions struct {
	Metric          metrics.Kind
	Builder         core.BaseBuilder
	DisableFallback bool
	ForceIns        int // core.AutoIns for the search
	MBase           int // 0 means the dataset's paper setting
	SkipBaseUpdate  bool
	W               int  // base-interval width override (0: the paper's √n)
	Quadratic       bool // non-linear encoding extension
}

// DefaultSBROptions returns the paper's defaults: SSE metric, GetBase
// construction, fall-back enabled, searched insert count.
func DefaultSBROptions() SBROptions {
	return SBROptions{Metric: metrics.SSE, Builder: core.BuilderGetBase, ForceIns: core.AutoIns}
}

// RunSBR compresses every file of the dataset with SBR at the given
// compression ratio and reports errors measured on the decoded
// reconstruction — the same bytes the base station would log.
func RunSBR(ds *datagen.Dataset, ratio float64, opts SBROptions) (*Result, error) {
	n := ds.N() * ds.FileLen
	mbase := opts.MBase
	if mbase == 0 {
		mbase = ds.MBase
	}
	cfg := core.Config{
		TotalBand:           totalBand(n, ratio),
		MBase:               mbase,
		Metric:              opts.Metric,
		Builder:             opts.Builder,
		DisableRampFallback: opts.DisableFallback,
		ForceIns:            opts.ForceIns,
		SkipBaseUpdate:      opts.SkipBaseUpdate,
		W:                   opts.W,
		Quadratic:           opts.Quadratic,
	}
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		return nil, err
	}
	dec, err := core.NewDecoder(cfg)
	if err != nil {
		return nil, err
	}

	res := &Result{Method: MethodSBR, Dataset: ds.Name, Ratio: ratio}
	var encodeTotal time.Duration
	for f := 0; f < ds.Files; f++ {
		batch := ds.File(f)
		start := time.Now()
		t, err := comp.Encode(batch)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s file %d: %w", ds.Name, f, err)
		}
		encodeTotal += time.Since(start)
		approx, err := dec.Decode(t)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s file %d decode: %w", ds.Name, f, err)
		}
		res.accumulate(batch, approx)
		res.Inserts = append(res.Inserts, t.Ins())
	}
	res.finish(encodeTotal)
	return res, nil
}

// RunBaseline compresses every file of the dataset with one of the
// stateless competitors under the identical value budget.
func RunBaseline(ds *datagen.Dataset, ratio float64, method Method) (*Result, error) {
	n := ds.N() * ds.FileLen
	budget := totalBand(n, ratio)
	res := &Result{Method: method, Dataset: ds.Name, Ratio: ratio}
	var encodeTotal time.Duration
	for f := 0; f < ds.Files; f++ {
		batch := ds.File(f)
		start := time.Now()
		var approx []timeseries.Series
		switch method {
		case MethodWavelet:
			approx = wavelet.ApproximateRows(batch, budget)
		case MethodWaveletRel:
			approx = wavelet.ApproximateRowsRelative(batch, budget)
		case MethodDCT:
			approx = dct.ApproximateRows(batch, budget)
		case MethodHistogram:
			approx = histogram.ApproximateRows(batch, budget)
		case MethodDFT:
			approx = dft.ApproximateRows(batch, budget)
		case MethodLinReg:
			approx = linreg.Adaptive(batch, budget, metrics.SSE)
		default:
			return nil, fmt.Errorf("experiments: unknown baseline %q", method)
		}
		encodeTotal += time.Since(start)
		res.accumulate(batch, approx)
	}
	res.finish(encodeTotal)
	return res, nil
}
