package experiments

import (
	"bytes"
	"strings"
	"testing"

	"sbr/internal/core"
	"sbr/internal/datagen"
	"sbr/internal/metrics"
)

func quickConfig() Config { return Config{Seed: 42, Quick: true} }

func TestRunSBRProducesFullResult(t *testing.T) {
	ds := datagen.StocksSized(1, 256, 3)
	res, err := RunSBR(ds, 0.15, DefaultSBROptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTransMSE) != 3 || len(res.Inserts) != 3 {
		t.Fatalf("per-transmission slices: %d MSE, %d inserts", len(res.PerTransMSE), len(res.Inserts))
	}
	if res.AvgMSE <= 0 || res.TotalRel <= 0 {
		t.Errorf("degenerate errors: mse=%v rel=%v", res.AvgMSE, res.TotalRel)
	}
	if res.AvgEncode <= 0 {
		t.Error("no encode time recorded")
	}
}

func TestRunBaselineMethods(t *testing.T) {
	ds := datagen.StocksSized(2, 128, 2)
	for _, m := range []Method{MethodWavelet, MethodDCT, MethodHistogram, MethodDFT, MethodLinReg} {
		res, err := RunBaseline(ds, 0.2, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.AvgMSE <= 0 {
			t.Errorf("%s produced zero error (suspicious)", m)
		}
	}
	if _, err := RunBaseline(ds, 0.2, Method("bogus")); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestSBRBeatsCompetitorsOnWeather(t *testing.T) {
	// The paper's headline: SBR dominates on correlated physical signals.
	c := quickConfig()
	ds := c.weather()
	sbr, err := RunSBR(ds, 0.15, DefaultSBROptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodDCT, MethodHistogram} {
		res, err := RunBaseline(c.weather(), 0.15, m)
		if err != nil {
			t.Fatal(err)
		}
		if sbr.AvgMSE >= res.AvgMSE {
			t.Errorf("SBR (%v) not better than %s (%v) on weather", sbr.AvgMSE, m, res.AvgMSE)
		}
	}
}

func TestErrorDecreasesWithRatio(t *testing.T) {
	c := quickConfig()
	prev := -1.0
	for _, ratio := range []float64{0.05, 0.15, 0.30} {
		res, err := RunSBR(c.stock(), ratio, DefaultSBROptions())
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.AvgMSE > prev*1.05 { // small tolerance: search is heuristic
			t.Errorf("ratio %v: error %v above smaller-ratio error %v", ratio, res.AvgMSE, prev)
		}
		prev = res.AvgMSE
	}
}

func TestTable2Structure(t *testing.T) {
	weather, stock, err := Table2(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*RatioTable{weather, stock} {
		if len(tab.Cells) != len(QuickRatios) {
			t.Fatalf("%s: %d rows, want %d", tab.Dataset, len(tab.Cells), len(QuickRatios))
		}
		for i, row := range tab.Cells {
			if len(row) != len(ComparisonMethods) {
				t.Fatalf("%s row %d has %d cells", tab.Dataset, i, len(row))
			}
			for j, v := range row {
				if v <= 0 {
					t.Errorf("%s cell [%d][%d] = %v", tab.Dataset, i, j, v)
				}
			}
		}
		// Error shrinks with more bandwidth for every method.
		for j := range ComparisonMethods {
			if tab.Cells[len(tab.Cells)-1][j] > tab.Cells[0][j]*1.1 {
				t.Errorf("%s method %s: error grew with bandwidth", tab.Dataset, tab.Methods[j])
			}
		}
	}
	if weather.Cell(0, MethodSBR) != weather.Cells[0][0] {
		t.Error("Cell accessor broken")
	}
}

func TestTable3RelativeErrors(t *testing.T) {
	mse, rel, err := Table3(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if mse.Dataset != "phone" || rel.Dataset != "phone" {
		t.Error("wrong dataset names")
	}
	if rel.Metric != "total-rel" || mse.Metric != "avg-mse" {
		t.Error("wrong metric labels")
	}
	// SBR should win the relative-error comparison on phone data.
	for i := range rel.Ratios {
		sbr := rel.Cell(i, MethodSBR)
		if hist := rel.Cell(i, MethodHistogram); sbr >= hist {
			t.Errorf("ratio %v: SBR rel %v not below histograms %v", rel.Ratios[i], sbr, hist)
		}
	}
}

func TestTable4MixedDataset(t *testing.T) {
	mse, rel, err := Table4(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if mse.Dataset != "mixed" {
		t.Error("wrong dataset")
	}
	for i := range mse.Ratios {
		if mse.Cell(i, MethodSBR) <= 0 || rel.Cell(i, MethodSBR) <= 0 {
			t.Error("degenerate mixed-dataset cells")
		}
	}
}

func TestTable5BaseComparisons(t *testing.T) {
	res, err := Table5(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 3 || len(res.Columns) != 3 {
		t.Fatalf("table5 shape %dx%d", len(res.Datasets), len(res.Columns))
	}
	for i, ds := range res.Datasets {
		for j, col := range res.Columns {
			v := res.Ratio[i][j]
			if v <= 0 {
				t.Errorf("%s/%s ratio %v", ds, col, v)
			}
		}
	}
	// On weather (strongly correlated), GetBase must beat the shipped
	// alternatives — SVD and plain regression (ratios > 1), the paper's
	// central Table 5 finding. The free cosine base can be competitive at
	// this reduced quick scale, so it is only checked at paper scale (see
	// EXPERIMENTS.md).
	weatherIdx := -1
	for i, ds := range res.Datasets {
		if ds == "weather" {
			weatherIdx = i
		}
	}
	for j, col := range res.Columns {
		if col == "GetBaseDCT" {
			continue
		}
		if res.Ratio[weatherIdx][j] < 1 {
			t.Errorf("weather: %s beat GetBase (ratio %v)", col, res.Ratio[weatherIdx][j])
		}
	}
}

func TestTable6InsertCounts(t *testing.T) {
	res, err := Table6(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 3 {
		t.Fatalf("%d datasets", len(res.Datasets))
	}
	for i, inserts := range res.Inserts {
		if len(inserts) == 0 {
			t.Fatalf("%s: no transmissions", res.Datasets[i])
		}
		var first2, rest int
		for k, ins := range inserts {
			if ins < 0 {
				t.Fatalf("negative insert count")
			}
			if k < 2 {
				first2 += ins
			} else {
				rest += ins
			}
		}
		// Front-loading: most base intervals arrive early (Table 6's
		// qualitative claim).
		if first2 == 0 {
			t.Errorf("%s inserted nothing in the first two transmissions (inserts=%v)",
				res.Datasets[i], inserts)
		}
	}
}

func TestFigure5TimingShape(t *testing.T) {
	res, err := Figure5(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NSizes) != 2 || len(res.Seconds) != 2 {
		t.Fatalf("figure5 shape: %d sizes", len(res.NSizes))
	}
	for i, row := range res.Seconds {
		if len(row) != len(QuickRatios) {
			t.Fatalf("row %d has %d entries", i, len(row))
		}
		for _, v := range row {
			if v <= 0 {
				t.Error("non-positive timing")
			}
		}
	}
}

func TestFigure6SweepAndChoice(t *testing.T) {
	res, err := Figure6(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 3 {
		t.Fatalf("%d datasets", len(res.Datasets))
	}
	for i := range res.Datasets {
		row := res.NormErr[i]
		if len(row) != len(res.BaseSizes) {
			t.Fatalf("%s: %d sweep points for %d sizes", res.Datasets[i], len(row), len(res.BaseSizes))
		}
		if row[0] != 1 {
			t.Errorf("%s: first point %v, want normalised 1", res.Datasets[i], row[0])
		}
		if res.SBRChoice[i] < 0 || res.OptChoice[i] < 1 {
			t.Errorf("%s: choices SBR=%d opt=%d", res.Datasets[i], res.SBRChoice[i], res.OptChoice[i])
		}
	}
}

func TestTimingThroughput(t *testing.T) {
	res, err := Timing(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.FullValuesPerS <= 0 || res.ShortcutPerS <= 0 {
		t.Fatal("non-positive throughput")
	}
	if res.ShortcutPerS < res.FullValuesPerS {
		t.Errorf("shortcut throughput %v below full-path %v", res.ShortcutPerS, res.FullValuesPerS)
	}
}

func TestSBROptionsPassThrough(t *testing.T) {
	ds := datagen.StocksSized(5, 128, 2)
	opts := DefaultSBROptions()
	opts.Builder = core.BuilderNone
	res, err := RunSBR(ds, 0.2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range res.Inserts {
		if ins != 0 {
			t.Error("BuilderNone inserted base intervals")
		}
	}
	opts = DefaultSBROptions()
	opts.SkipBaseUpdate = true
	res, err = RunSBR(ds, 0.2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range res.Inserts {
		if ins != 0 {
			t.Error("SkipBaseUpdate inserted base intervals")
		}
	}
}

func TestAblationsStructure(t *testing.T) {
	res, err := Ablations(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 5 {
		t.Fatalf("%d ablation rows", len(res.Rows))
	}
	names := map[string]bool{}
	for _, r := range res.Rows {
		if r.Default <= 0 || r.Variant <= 0 || r.Ratio <= 0 {
			t.Errorf("degenerate ablation row %+v", r)
		}
		names[r.Name] = true
	}
	for _, want := range []string{"benefit-adjustment off", "always max inserts", "quadratic encoding"} {
		if !names[want] {
			t.Errorf("missing ablation %q", want)
		}
	}
	// The Algorithm-7 search must clearly beat always-max inserts.
	for _, r := range res.Rows {
		if r.Name == "always max inserts" && r.Ratio < 1 {
			t.Errorf("always-max inserts beat the search (ratio %v)", r.Ratio)
		}
	}
	if out := FormatAblations(res); out == "" {
		t.Error("empty ablation formatting")
	}
}

func TestFormatters(t *testing.T) {
	weather, _, err := Table2(Config{Seed: 1, Quick: true, Ratios: []float64{0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatRatioTable(weather); out == "" {
		t.Error("empty table formatting")
	}
	t6, err := Table6(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatTable6(t6); out == "" {
		t.Error("empty table6 formatting")
	}
	timing, err := Timing(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatTiming(timing); out == "" {
		t.Error("empty timing formatting")
	}
}

func TestWaveletRelBaselineImprovesRelativeError(t *testing.T) {
	// The §5.1.1 discussion: metric-aware wavelet selection narrows (but
	// does not close) the relative-error gap to SBR.
	ds := datagen.PhoneCallsSized(7, 512, 2)
	std, err := RunBaseline(ds, 0.10, MethodWavelet)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := RunBaseline(datagen.PhoneCallsSized(7, 512, 2), 0.10, MethodWaveletRel)
	if err != nil {
		t.Fatal(err)
	}
	if rel.TotalRel > std.TotalRel {
		t.Errorf("metric-aware wavelets (%v) worse than standard (%v) on relative error",
			rel.TotalRel, std.TotalRel)
	}
	sbr, err := RunSBR(datagen.PhoneCallsSized(7, 512, 2), 0.10, SBROptions{Metric: metrics.RelativeSSE, ForceIns: core.AutoIns})
	if err != nil {
		t.Fatal(err)
	}
	if sbr.TotalRel > rel.TotalRel {
		t.Errorf("SBR (%v) lost to metric-aware wavelets (%v) — the paper's gap should persist",
			sbr.TotalRel, rel.TotalRel)
	}
	t.Logf("relative error: SBR %.1f, wavelets-rel %.1f, wavelets %.1f",
		sbr.TotalRel, rel.TotalRel, std.TotalRel)
}

func TestNetflowExperiment(t *testing.T) {
	res, err := Netflow(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) < 6 {
		t.Fatalf("%d methods", len(res.Methods))
	}
	idx := map[Method]int{}
	for i, m := range res.Methods {
		idx[m] = i
		if res.AvgMSE[i] <= 0 || res.Rel[i] <= 0 {
			t.Errorf("%s: degenerate errors", m)
		}
	}
	// SBR must win both columns on the traffic domain (the Section 6
	// closing claim).
	sbr := idx[MethodSBR]
	for _, m := range []Method{MethodDCT, MethodHistogram} {
		if res.AvgMSE[sbr] >= res.AvgMSE[idx[m]] {
			t.Errorf("SBR MSE %v not below %s %v", res.AvgMSE[sbr], m, res.AvgMSE[idx[m]])
		}
	}
	for _, m := range []Method{MethodWavelet, MethodWaveletRel, MethodHistogram} {
		if res.Rel[sbr] >= res.Rel[idx[m]] {
			t.Errorf("SBR rel %v not below %s %v", res.Rel[sbr], m, res.Rel[idx[m]])
		}
	}
	if out := FormatNetflow(res); out == "" {
		t.Error("empty netflow formatting")
	}
}

func TestRemainingFormatters(t *testing.T) {
	t5 := &Table5Result{
		Datasets: []string{"weather"},
		Columns:  []string{"GetBaseSVD", "LinearRegression", "GetBaseDCT"},
		Ratio:    [][]float64{{2.4, 9.1, 2.2}},
	}
	if out := FormatTable5(t5); out == "" {
		t.Error("empty Table5 formatting")
	}
	f5 := &Figure5Result{
		NSizes:  []int{5120, 10240},
		Ratios:  []float64{0.05, 0.10},
		Seconds: [][]float64{{0.001, 0.002}, {0.004, 0.008}},
	}
	if out := FormatFigure5(f5); out == "" {
		t.Error("empty Figure5 formatting")
	}
	f6 := &Figure6Result{
		Datasets:  []string{"weather", "phone"},
		BaseSizes: []int{1, 2, 3},
		NormErr:   [][]float64{{1, 0.8, 0.9}, {1, 0.9, 1.1}},
		SBRChoice: []int{2, 2},
		OptChoice: []int{2, 2},
	}
	if out := FormatFigure6(f6); out == "" {
		t.Error("empty Figure6 formatting")
	}
	if got := formatCell(0); got != "0" {
		t.Errorf("formatCell(0) = %q", got)
	}
	if got := formatCell(1234567); got != "1234567" {
		t.Errorf("formatCell(large) = %q", got)
	}
	if got := formatCell(0.0001234); got == "" {
		t.Errorf("formatCell(small) empty")
	}
}

func TestMaxSweepBounds(t *testing.T) {
	// Budget too small for even one insert clamps to 1; large budgets cap
	// at the paper's 30.
	if got := maxSweep(100, 50, 10); got != 1 {
		t.Errorf("tiny budget sweep = %d, want 1", got)
	}
	if got := maxSweep(1<<20, 10, 2); got != 30 {
		t.Errorf("huge budget sweep = %d, want cap 30", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 42 || len(c.Ratios) != len(DefaultRatios) {
		t.Errorf("defaults = %+v", c)
	}
	q := Config{Quick: true}.withDefaults()
	if len(q.Ratios) != len(QuickRatios) {
		t.Errorf("quick defaults = %+v", q)
	}
	// Paper-scale dataset constructors exist and have the paper shapes.
	full := Config{Seed: 1}.withDefaults()
	if ds := full.weather(); ds.FileLen != 4096 || ds.Files != 10 {
		t.Errorf("paper weather layout %dx%d", ds.FileLen, ds.Files)
	}
	if ds := full.phone(); ds.FileLen != 2560 {
		t.Errorf("paper phone layout %d", ds.FileLen)
	}
	if ds := full.stock(); ds.FileLen != 2048 {
		t.Errorf("paper stock layout %d", ds.FileLen)
	}
	if ds := full.mixed(); ds.N() != 9 {
		t.Errorf("paper mixed rows %d", ds.N())
	}
	if got := full.figureDatasets(); len(got) != 3 || got[0].FileLen != 5120 {
		t.Errorf("paper figure datasets wrong")
	}
	if band := full.figureTotalBand(30720); band != 5012 {
		t.Errorf("paper figure TotalBand = %d, want 5012", band)
	}
}

func TestCSVExports(t *testing.T) {
	var buf bytes.Buffer
	rt := &RatioTable{
		Dataset: "weather", Metric: "avg-mse",
		Methods: []Method{MethodSBR, MethodWavelet},
		Ratios:  []float64{0.05, 0.10},
		Cells:   [][]float64{{1.5, 2.5}, {0.5, 1.0}},
	}
	if err := rt.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "ratio,SBR,Wavelets" {
		t.Errorf("ratio-table CSV = %q", buf.String())
	}

	buf.Reset()
	f5 := &Figure5Result{
		NSizes: []int{5120}, Ratios: []float64{0.05, 0.10},
		Seconds: [][]float64{{0.001, 0.002}},
	}
	if err := f5.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "ratio,seconds_n5120") {
		t.Errorf("figure5 CSV = %q", buf.String())
	}

	buf.Reset()
	f6 := &Figure6Result{
		Datasets:  []string{"weather"},
		BaseSizes: []int{1, 2},
		NormErr:   [][]float64{{1, 0.8}},
		SBRChoice: []int{2},
		OptChoice: []int{2},
	}
	if err := f6.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sbr_choice,2") {
		t.Errorf("figure6 CSV = %q", buf.String())
	}
}
