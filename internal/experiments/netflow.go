package experiments

import (
	"fmt"
	"strings"

	"sbr/internal/datagen"
	"sbr/internal/metrics"
)

// NetflowResult is the network-measurements extension experiment: the
// paper's Sections 1 and 6 name network measurements as another domain
// where distributed historical data is collected; this experiment checks
// that SBR's advantage carries over to bursty, heavy-tailed traffic
// counters.
type NetflowResult struct {
	Ratio   float64
	Methods []Method
	AvgMSE  []float64
	Rel     []float64
}

// Netflow runs SBR and every baseline on the synthetic router-interface
// dataset at a 10 % ratio.
func Netflow(c Config) (*NetflowResult, error) {
	c = c.withDefaults()
	mk := func() *datagen.Dataset {
		if c.Quick {
			return datagen.NetworkTrafficSized(c.Seed, 512, 3)
		}
		return datagen.NetworkTraffic(c.Seed)
	}
	const ratio = 0.10
	res := &NetflowResult{Ratio: ratio}
	methods := []Method{MethodSBR, MethodWavelet, MethodWaveletRel, MethodDCT, MethodDFT, MethodHistogram, MethodLinReg}
	for _, m := range methods {
		var (
			r   *Result
			err error
		)
		rel := 0.0
		if m == MethodSBR {
			r, err = RunSBR(mk(), ratio, DefaultSBROptions())
			if err == nil {
				// As in Table 3, SBR's relative column comes from a run
				// whose Regression subroutine minimises the relative error.
				opts := DefaultSBROptions()
				opts.Metric = metrics.RelativeSSE
				var relRes *Result
				relRes, err = RunSBR(mk(), ratio, opts)
				if err == nil {
					rel = relRes.TotalRel
				}
			}
		} else {
			r, err = RunBaseline(mk(), ratio, m)
			if err == nil {
				rel = r.TotalRel
			}
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: netflow %s: %w", m, err)
		}
		res.Methods = append(res.Methods, m)
		res.AvgMSE = append(res.AvgMSE, r.AvgMSE)
		res.Rel = append(res.Rel, rel)
	}
	return res, nil
}

// FormatNetflow renders the network-measurements comparison.
func FormatNetflow(r *NetflowResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Network-measurements domain (router byte counts) at a %.0f%% ratio\n", r.Ratio*100)
	fmt.Fprintf(&b, "%-18s %16s %16s\n", "method", "avg MSE", "total rel err")
	for i, m := range r.Methods {
		fmt.Fprintf(&b, "%-18s %16s %16s\n", string(m), formatCell(r.AvgMSE[i]), formatCell(r.Rel[i]))
	}
	return b.String()
}
