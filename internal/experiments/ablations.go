package experiments

import (
	"fmt"
	"math"
	"strings"

	"sbr/internal/core"
	"sbr/internal/datagen"
)

// AblationRow compares one design variant against the paper's default on
// the same dataset and budget: Ratio > 1 means the default wins.
type AblationRow struct {
	Name    string
	Dataset string
	Default float64 // avg per-value MSE of the paper's configuration
	Variant float64 // avg per-value MSE of the ablated/extended variant
	Ratio   float64 // Variant / Default
	Comment string
}

// AblationResult collects the design-choice ablations of DESIGN.md §6.
type AblationResult struct {
	Rows []AblationRow
}

// Ablations quantifies the design choices the paper makes implicitly:
// the GetBase benefit adjustment (Figure 4), the W = √n interval width,
// the binary search over the insert count (against always inserting the
// maximum), and the future-work quadratic encoding (Section 6).
func Ablations(c Config) (*AblationResult, error) {
	c = c.withDefaults()
	const ratio = 0.10
	res := &AblationResult{}

	run := func(ds *datagen.Dataset, opts SBROptions) (float64, error) {
		r, err := RunSBR(ds, ratio, opts)
		if err != nil {
			return 0, err
		}
		return r.AvgMSE, nil
	}
	add := func(name string, ds func() *datagen.Dataset, variant SBROptions, comment string) error {
		def, err := run(ds(), DefaultSBROptions())
		if err != nil {
			return fmt.Errorf("experiments: ablation %q default: %w", name, err)
		}
		vr, err := run(ds(), variant)
		if err != nil {
			return fmt.Errorf("experiments: ablation %q variant: %w", name, err)
		}
		res.Rows = append(res.Rows, AblationRow{
			Name: name, Dataset: ds().Name,
			Default: def, Variant: vr, Ratio: vr / def,
			Comment: comment,
		})
		return nil
	}

	noAdjust := DefaultSBROptions()
	noAdjust.Builder = core.BuilderGetBaseNoAdjust
	if err := add("benefit-adjustment off", c.weather, noAdjust,
		"GetBase without the Figure-4 re-discounting"); err != nil {
		return nil, err
	}

	// Interval width: halve and double the paper's √n.
	n := c.weather().N() * c.weather().FileLen
	w := int(math.Sqrt(float64(n)))
	halfW := DefaultSBROptions()
	halfW.W = w / 2
	if err := add("W = sqrt(n)/2", c.weather, halfW,
		"narrower base intervals"); err != nil {
		return nil, err
	}
	doubleW := DefaultSBROptions()
	doubleW.W = 2 * w
	if err := add("W = 2*sqrt(n)", c.weather, doubleW,
		"wider base intervals"); err != nil {
		return nil, err
	}

	// Insert-count search vs. always inserting the maximum.
	maxIns := DefaultSBROptions()
	maxIns.ForceIns = 1 << 20 // clamped to maxIns by the compressor
	if err := add("always max inserts", c.weather, maxIns,
		"no Algorithm-7 search: fill the base signal every transmission"); err != nil {
		return nil, err
	}

	// The quadratic-encoding extension (future work, Section 6).
	quad := DefaultSBROptions()
	quad.Quadratic = true
	if err := add("quadratic encoding", c.stock, quad,
		"5-value records with a squared term"); err != nil {
		return nil, err
	}
	if err := add("quadratic encoding", c.weather, quad,
		"5-value records with a squared term"); err != nil {
		return nil, err
	}

	return res, nil
}

// FormatAblations renders the ablation table.
func FormatAblations(a *AblationResult) string {
	var b strings.Builder
	b.WriteString("Design-choice ablations at a 10% compression ratio (ratio > 1: paper default wins)\n")
	fmt.Fprintf(&b, "%-24s %-9s %12s %12s %8s  %s\n",
		"variant", "dataset", "default", "variant", "ratio", "note")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-24s %-9s %12.5f %12.5f %8.2f  %s\n",
			r.Name, r.Dataset, r.Default, r.Variant, r.Ratio, r.Comment)
	}
	return b.String()
}
