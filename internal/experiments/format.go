package experiments

import (
	"fmt"
	"strings"
)

// FormatRatioTable renders a RatioTable in the layout of the paper's
// Tables 2–4: one row per compression ratio, one column per method.
func FormatRatioTable(t *RatioTable) string {
	var b strings.Builder
	metric := "Average SSE Error (per value)"
	if t.Metric == "total-rel" {
		metric = "Total Sum Squared Relative Error"
	}
	fmt.Fprintf(&b, "%s — %s dataset\n", metric, t.Dataset)
	fmt.Fprintf(&b, "%-12s", "Ratio")
	for _, m := range t.Methods {
		fmt.Fprintf(&b, "%16s", string(m))
	}
	b.WriteByte('\n')
	for i, ratio := range t.Ratios {
		fmt.Fprintf(&b, "%-12s", fmt.Sprintf("%.0f%%", ratio*100))
		for j := range t.Methods {
			fmt.Fprintf(&b, "%16s", formatCell(t.Cells[i][j]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatCell(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.5f", v)
	}
}

// FormatTable5 renders the base-signal comparison in the paper's layout:
// error of each alternative over GetBase.
func FormatTable5(t *Table5Result) string {
	var b strings.Builder
	b.WriteString("Error over GetBase() (ratio > 1 means GetBase wins)\n")
	fmt.Fprintf(&b, "%-10s", "Dataset")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%20s", c)
	}
	b.WriteByte('\n')
	for i, ds := range t.Datasets {
		fmt.Fprintf(&b, "%-10s", ds)
		for j := range t.Columns {
			fmt.Fprintf(&b, "%20.2f", t.Ratio[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable6 renders the inserted-base-intervals table.
func FormatTable6(t *Table6Result) string {
	var b strings.Builder
	b.WriteString("Number of Inserted Base Intervals per Transmission\n")
	fmt.Fprintf(&b, "%-10s", "Dataset")
	if len(t.Inserts) > 0 {
		for k := range t.Inserts[0] {
			fmt.Fprintf(&b, "%5d", k+1)
		}
	}
	b.WriteByte('\n')
	for i, ds := range t.Datasets {
		fmt.Fprintf(&b, "%-10s", ds)
		for _, ins := range t.Inserts[i] {
			fmt.Fprintf(&b, "%5d", ins)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatFigure5 renders the running-time sweep as a series table.
func FormatFigure5(f *Figure5Result) string {
	var b strings.Builder
	b.WriteString("Average Running Time per Transmission (seconds), Stock dataset\n")
	fmt.Fprintf(&b, "%-12s", "Ratio")
	for _, n := range f.NSizes {
		fmt.Fprintf(&b, "%14s", fmt.Sprintf("n=%d", n))
	}
	b.WriteByte('\n')
	for j, ratio := range f.Ratios {
		fmt.Fprintf(&b, "%-12s", fmt.Sprintf("%.0f%%", ratio*100))
		for i := range f.NSizes {
			fmt.Fprintf(&b, "%14.4f", f.Seconds[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatFigure6 renders the base-size sweep: normalised error per swept
// size, per dataset, plus SBR's automatic selection and the sweep optimum.
func FormatFigure6(f *Figure6Result) string {
	var b strings.Builder
	b.WriteString("SSE vs base-signal size (normalised by the 1-interval error)\n")
	fmt.Fprintf(&b, "%-12s", "BaseSize")
	for _, ds := range f.Datasets {
		fmt.Fprintf(&b, "%12s", ds)
	}
	b.WriteByte('\n')
	for k, size := range f.BaseSizes {
		fmt.Fprintf(&b, "%-12d", size)
		for i := range f.Datasets {
			fmt.Fprintf(&b, "%12.4f", f.NormErr[i][k])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12s", "SBR picks")
	for i := range f.Datasets {
		fmt.Fprintf(&b, "%12d", f.SBRChoice[i])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-12s", "optimum")
	for i := range f.Datasets {
		fmt.Fprintf(&b, "%12d", f.OptChoice[i])
	}
	b.WriteByte('\n')
	return b.String()
}

// FormatTiming renders the throughput summary.
func FormatTiming(r *TimingResult) string {
	return fmt.Sprintf(
		"Throughput on n=%d (10%% ratio):\n  full SBR:            %.0f values/s\n  shortcut (no base):  %.0f values/s\n",
		r.N, r.FullValuesPerS, r.ShortcutPerS)
}
