package experiments

import (
	"fmt"
	"math"
	"time"

	"sbr/internal/core"
	"sbr/internal/datagen"
	"sbr/internal/metrics"
)

// Figure5Result holds the running-time sweep of Figure 5: average
// per-transmission encode time on the Stock dataset as the bandwidth
// budget and the batch size vary, with the base-signal buffer fixed.
type Figure5Result struct {
	NSizes  []int       // batch sizes n = N·M
	Ratios  []float64   // compression ratios (TotalBand = ratio·n)
	Seconds [][]float64 // Seconds[nIdx][ratioIdx]
}

// Figure5 reproduces Figure 5: the paper varies TotalBand from 5 % to 30 %
// of n for n ∈ {5,120; 10,240; 20,480} (ten stocks, M varied) with
// M_base = 1,024 and reports the average time per transmission. Absolute
// times depend on the host; the reproduction target is the linear scaling
// in TotalBand.
func Figure5(c Config) (*Figure5Result, error) {
	c = c.withDefaults()
	sizes := []int{512, 1024, 2048} // M per stock; n = 10·M
	files := 10
	mbase := 1024
	if c.Quick {
		sizes = []int{128, 256}
		files = 3
		mbase = 256
	}
	res := &Figure5Result{Ratios: c.Ratios}
	for _, m := range sizes {
		ds := datagen.StocksSized(c.Seed, m, files)
		n := ds.N() * ds.FileLen
		res.NSizes = append(res.NSizes, n)
		row := make([]float64, len(c.Ratios))
		for j, ratio := range c.Ratios {
			opts := DefaultSBROptions()
			opts.MBase = mbase
			r, err := RunSBR(ds, ratio, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure5 n=%d ratio=%.2f: %w", n, ratio, err)
			}
			row[j] = r.AvgEncode.Seconds()
		}
		res.Seconds = append(res.Seconds, row)
	}
	return res, nil
}

// Figure6Result holds the base-signal-size sweep of Figure 6: the error of
// the initial transmission as the number of populated base intervals is
// fixed manually, normalised by the one-interval error, plus the size SBR
// selects on its own.
type Figure6Result struct {
	Datasets  []string
	BaseSizes []int       // swept insert counts (1..cap)
	NormErr   [][]float64 // NormErr[dataset][sweepIdx]
	SBRChoice []int       // the insert count SBR's search picked
	OptChoice []int       // the sweep minimum, for the near-optimality check
}

// Figure6 reproduces Figure 6. The paper fixes equal-size batches
// (weather 5,120 / phone 2,048 / stock 3,072 values per signal, n = 30,720)
// and TotalBand = 5,012 (≈16 %), then sweeps the base-signal size from 1
// to 30 intervals on the first transmission. Insert counts whose base
// intervals alone would overflow TotalBand are infeasible and end the
// sweep (with W = √n = 175, the cap is 28 at paper scale).
func Figure6(c Config) (*Figure6Result, error) {
	c = c.withDefaults()
	res := &Figure6Result{}
	for _, ds := range c.figureDatasets() {
		n := ds.N() * ds.FileLen
		band := c.figureTotalBand(n)
		w := int(math.Sqrt(float64(n)))
		sweepCap := maxSweep(band, w, ds.N())

		if res.BaseSizes == nil {
			for k := 1; k <= sweepCap; k++ {
				res.BaseSizes = append(res.BaseSizes, k)
			}
		} else if len(res.BaseSizes) > sweepCap {
			res.BaseSizes = res.BaseSizes[:sweepCap]
			for i := range res.NormErr {
				res.NormErr[i] = res.NormErr[i][:sweepCap]
			}
		}

		batch := ds.File(0)
		mbase := (sweepCap + 2) * w // roomy enough for the whole sweep
		errAt := func(forceIns int) (float64, error) {
			cfg := core.Config{TotalBand: band, MBase: mbase, Metric: metrics.SSE}
			comp, err := core.NewCompressorForceIns(cfg, forceIns)
			if err != nil {
				return 0, err
			}
			t, err := comp.Encode(batch)
			if err != nil {
				return 0, err
			}
			x := comp.BaseSignal() // post-commit == pre-eviction here (no overflow)
			return core.ReconstructionError(metrics.SSE, x, t, batch), nil
		}

		row := make([]float64, 0, len(res.BaseSizes))
		bestIdx, bestErr := 0, math.Inf(1)
		var unit float64
		for i, k := range res.BaseSizes {
			e, err := errAt(k)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure6 %s ins=%d: %w", ds.Name, k, err)
			}
			if i == 0 {
				unit = e
				if unit == 0 {
					unit = 1
				}
			}
			row = append(row, e/unit)
			if e < bestErr {
				bestErr, bestIdx = e, i
			}
		}

		// SBR's own choice on the same first transmission.
		autoCfg := core.Config{TotalBand: band, MBase: mbase, Metric: metrics.SSE}
		autoComp, err := core.NewCompressor(autoCfg)
		if err != nil {
			return nil, err
		}
		t, err := autoComp.Encode(batch)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure6 %s auto: %w", ds.Name, err)
		}

		res.Datasets = append(res.Datasets, ds.Name)
		res.NormErr = append(res.NormErr, row)
		res.SBRChoice = append(res.SBRChoice, t.Ins())
		res.OptChoice = append(res.OptChoice, res.BaseSizes[bestIdx])
	}
	return res, nil
}

// maxSweep caps the Figure-6 sweep at what the bandwidth can carry:
// inserting k intervals costs k·(W+1) values and at least one record per
// row must remain affordable.
func maxSweep(band, w, rows int) int {
	k := (band - 4*rows) / (w + 1)
	if k > 30 {
		k = 30
	}
	if k < 1 {
		k = 1
	}
	return k
}

// TimingResult quantifies the throughput discussion of Section 4.4.
type TimingResult struct {
	N              int
	FullValuesPerS float64 // full SBR, base-signal update included
	ShortcutPerS   float64 // GetIntervals-only shortcut path
}

// Timing measures end-to-end encode throughput on the Stock dataset at a
// 10 % compression ratio, with and without the base-signal update, echoing
// the Section 4.4 running-time analysis.
func Timing(c Config) (*TimingResult, error) {
	c = c.withDefaults()
	m := 2048
	if c.Quick {
		m = 256
	}
	ds := datagen.StocksSized(c.Seed, m, 3)
	n := ds.N() * ds.FileLen

	measure := func(skip bool) (float64, error) {
		if skip {
			// Warm the base signal with one full transmission, then time
			// the shortcut path on the remaining files.
			cfg := core.Config{TotalBand: totalBand(n, 0.10), MBase: 1024, Metric: metrics.SSE}
			comp, err := core.NewCompressor(cfg)
			if err != nil {
				return 0, err
			}
			if _, err := comp.Encode(ds.File(0)); err != nil {
				return 0, err
			}
			start := time.Now()
			var values int
			for f := 1; f < ds.Files; f++ {
				if _, err := comp.EncodeShortcut(ds.File(f)); err != nil {
					return 0, err
				}
				values += n
			}
			return float64(values) / time.Since(start).Seconds(), nil
		}
		start := time.Now()
		var values int
		cfg := core.Config{TotalBand: totalBand(n, 0.10), MBase: 1024, Metric: metrics.SSE}
		comp, err := core.NewCompressor(cfg)
		if err != nil {
			return 0, err
		}
		for f := 0; f < ds.Files; f++ {
			if _, err := comp.Encode(ds.File(f)); err != nil {
				return 0, err
			}
			values += n
		}
		return float64(values) / time.Since(start).Seconds(), nil
	}

	full, err := measure(false)
	if err != nil {
		return nil, err
	}
	short, err := measure(true)
	if err != nil {
		return nil, err
	}
	return &TimingResult{N: n, FullValuesPerS: full, ShortcutPerS: short}, nil
}
