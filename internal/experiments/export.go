package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV export of experiment results, for plotting Figures 5–6 and the
// tables with external tools. Layouts mirror the printed forms: one row
// per ratio/sweep point, one column per method/series.

// WriteCSV writes a RatioTable with a header row.
func (t *RatioTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"ratio"}
	for _, m := range t.Methods {
		header = append(header, string(m))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, ratio := range t.Ratios {
		rec := []string{formatFloat(ratio)}
		for j := range t.Methods {
			rec = append(rec, formatFloat(t.Cells[i][j]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes the Figure-5 timing sweep: one row per ratio, one column
// per batch size.
func (f *Figure5Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"ratio"}
	for _, n := range f.NSizes {
		header = append(header, fmt.Sprintf("seconds_n%d", n))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for j, ratio := range f.Ratios {
		rec := []string{formatFloat(ratio)}
		for i := range f.NSizes {
			rec = append(rec, formatFloat(f.Seconds[i][j]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes the Figure-6 sweep: one row per base-signal size, one
// column per dataset, with the SBR/optimal choices as trailing comment-like
// rows ("sbr_choice", "optimum").
func (f *Figure6Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"base_size"}
	header = append(header, f.Datasets...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for k, size := range f.BaseSizes {
		rec := []string{strconv.Itoa(size)}
		for i := range f.Datasets {
			rec = append(rec, formatFloat(f.NormErr[i][k]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	choice := []string{"sbr_choice"}
	opt := []string{"optimum"}
	for i := range f.Datasets {
		choice = append(choice, strconv.Itoa(f.SBRChoice[i]))
		opt = append(opt, strconv.Itoa(f.OptChoice[i]))
	}
	if err := cw.Write(choice); err != nil {
		return err
	}
	if err := cw.Write(opt); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
