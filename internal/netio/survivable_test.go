package netio

import (
	"errors"
	"math/rand"
	"net"
	"path/filepath"
	"testing"
	"time"

	"sbr/internal/obs"
	"sbr/internal/outbox"
)

// reservedAddr returns a localhost address that is currently closed —
// dials to it fail fast with connection refused — but can be rebound by
// the test later to bring a server up "on the same address".
func reservedAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestBackoffDelayBounds: every backoff delay the client can produce must
// stay inside [BackoffBase, BackoffMax] — for any failure streak, across
// many jitter draws. An out-of-range delay either hammers a struggling
// station (too short) or strands the sensor (too long).
func TestBackoffDelayBounds(t *testing.T) {
	const (
		base = 10 * time.Millisecond
		max  = 160 * time.Millisecond
	)
	c, err := NewReliable("127.0.0.1:1", "bounds-node", ReliableOptions{
		BackoffBase: base,
		BackoffMax:  max,
		Rand:        rand.New(rand.NewSource(99)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for streak := 1; streak <= 20; streak++ {
		c.streak = streak
		for draw := 0; draw < 200; draw++ {
			d := c.backoffDelay()
			if d < base || d > max {
				t.Fatalf("streak %d draw %d: delay %v outside [%v, %v]", streak, draw, d, base, max)
			}
		}
	}
}

// TestRetryAfterHintFloorsBackoff: a server retry-after hint floors the
// next delay — even past BackoffMax, the server knows its own relief
// schedule best — and is consumed by that one delay, not sticky.
func TestRetryAfterHintFloorsBackoff(t *testing.T) {
	c, err := NewReliable("127.0.0.1:1", "hint-node", ReliableOptions{
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Rand:        rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.streak = 1
	c.noteBusy(&busyError{after: 250 * time.Millisecond})
	if d := c.backoffDelay(); d < 250*time.Millisecond {
		t.Errorf("hinted delay %v, want >= 250ms", d)
	}
	if d := c.backoffDelay(); d > 4*time.Millisecond {
		t.Errorf("post-hint delay %v, want back inside [1ms, 4ms] — the hint must not stick", d)
	}
}

// TestBusyShedBackoffRedial: a sensor turned away with a busy ack (here:
// the connection cap) must back off and redial on its own, and deliver
// every frame exactly once when capacity frees up.
func TestBusyShedBackoffRedial(t *testing.T) {
	cfg := chaosConfig()
	st := newStation(t, cfg)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	srv, err := ServeWith(st, "127.0.0.1:0", Options{
		Metrics:    met,
		MaxConns:   1,
		RetryAfter: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	frames := encodeFrames(t, cfg, 3, 16)
	holder, err := Dial(srv.Addr(), "holder")
	if err != nil {
		t.Fatal(err)
	}
	// A round-trip guarantees the holder occupies the single slot before
	// the reliable client arrives.
	if err := holder.Send(frames[0]); err != nil {
		t.Fatal(err)
	}

	rc, err := NewReliable(srv.Addr(), "patient", ReliableOptions{
		DialTimeout: time.Second,
		AckTimeout:  time.Second,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		MaxAttempts: 500,
		Metrics:     met,
		Rand:        rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	done := make(chan error, 1)
	go func() {
		for _, frame := range frames {
			if err := rc.Send(frame); err != nil {
				done <- err
				return
			}
		}
		done <- rc.Flush()
	}()

	// Let the client run into the cap at least once, then free the slot.
	time.Sleep(50 * time.Millisecond)
	if err := holder.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("sends never recovered from the shed: %v", err)
	}

	if met.ShedCap.Value() == 0 {
		t.Error("the cap never shed the client; the test proves nothing")
	}
	stats, err := st.SensorStats("patient")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmissions != len(frames) {
		t.Errorf("station holds %d transmissions, want exactly %d", stats.Transmissions, len(frames))
	}
	if stats.Restarts != 0 {
		t.Errorf("shed-and-redial misread as a reboot: %d restarts", stats.Restarts)
	}
}

// TestDegradedShed: with the archive degraded the station sheds arrivals
// with reason "degraded" — spooling frames into a log that cannot persist
// them would betray the durability contract.
func TestDegradedShed(t *testing.T) {
	cfg := chaosConfig()
	st := newStation(t, cfg)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	srv, err := ServeWith(st, "127.0.0.1:0", Options{
		Metrics:         met,
		ArchiveDegraded: func() bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr(), "unlucky")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Send(encodeFrames(t, cfg, 1, 16)[0]); !errors.Is(err, ErrBusy) {
		t.Errorf("send to a degraded station returned %v, want ErrBusy", err)
	}
	if got := met.ShedDegraded.Value(); got != 1 {
		t.Errorf("degraded shed counter = %d, want 1", got)
	}
	if reason := srv.OverWatermark(); reason != "degraded" {
		t.Errorf("OverWatermark() = %q, want \"degraded\"", reason)
	}
}

// TestBreakerOpensDrainsToOutboxAndRecovers: with the station down, the
// breaker trips after the threshold and sends start draining straight to
// the durable outbox — returning nil, because the frames are safe on
// disk. Once the station is back, a half-open probe closes the breaker
// and a flush delivers everything exactly once.
func TestBreakerOpensDrainsToOutboxAndRecovers(t *testing.T) {
	cfg := chaosConfig()
	addr := reservedAddr(t)
	dir := t.TempDir()

	ob, err := outbox.Open(filepath.Join(dir, "node.outbox"), outbox.Options{Sensor: "breaker-node"})
	if err != nil {
		t.Fatal(err)
	}
	defer ob.Close()

	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	rc, err := NewReliable(addr, "breaker-node", ReliableOptions{
		DialTimeout:      200 * time.Millisecond,
		AckTimeout:       time.Second,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		Outbox:           ob,
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
		Metrics:          met,
		Rand:             rand.New(rand.NewSource(17)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const n = 5
	frames := encodeFrames(t, cfg, n, 16)
	for i, frame := range frames {
		if err := rc.Send(frame); err != nil {
			t.Fatalf("durable send %d against a dead station: %v", i, err)
		}
	}
	if met.BreakerTrips.Value() == 0 {
		t.Fatal("breaker never tripped against a dead station")
	}
	if got := met.BreakerState.Value(); got != 1 {
		t.Errorf("breaker state gauge = %v, want 1 (open)", got)
	}
	if got := ob.PendingCount(); got != n {
		t.Errorf("outbox holds %d frames, want all %d", got, n)
	}
	// With the breaker open and cooling, Flush must fail fast — deferral,
	// not a hang.
	if err := rc.Flush(); !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("flush under an open breaker returned %v, want ErrBreakerOpen", err)
	}

	st := newStation(t, cfg)
	srv, err := Serve(st, addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer srv.Close()
	time.Sleep(40 * time.Millisecond) // let the cooldown lapse

	if err := rc.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if met.BreakerProbes.Value() == 0 {
		t.Error("recovery happened without a recorded half-open probe")
	}
	if got := met.BreakerState.Value(); got != 0 {
		t.Errorf("breaker state gauge = %v after recovery, want 0 (closed)", got)
	}
	stats, err := st.SensorStats("breaker-node")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmissions != n {
		t.Errorf("station holds %d transmissions, want exactly %d", stats.Transmissions, n)
	}
	if got := ob.PendingCount(); got != 0 {
		t.Errorf("outbox still holds %d frames after a full flush", got)
	}
}

// TestCloseReportsPendingError: Close on a client that cannot flush must
// say so — a typed error carrying the count of stranded frames and
// whether they survive on disk — never silently discard them.
func TestCloseReportsPendingError(t *testing.T) {
	cfg := chaosConfig()
	rc, err := NewReliable(reservedAddr(t), "stranded", ReliableOptions{
		DialTimeout:      100 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute, // still cooling when Close flushes
		CloseTimeout:     50 * time.Millisecond,
		Rand:             rand.New(rand.NewSource(23)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// No outbox: the breaker-open error surfaces from Send, and the frame
	// stays queued in memory.
	if err := rc.Send(encodeFrames(t, cfg, 1, 16)[0]); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("memory-only send under a dead station returned %v, want ErrBreakerOpen", err)
	}

	err = rc.Close()
	var pe *PendingError
	if !errors.As(err, &pe) {
		t.Fatalf("Close returned %v, want *PendingError", err)
	}
	if pe.Pending != 1 {
		t.Errorf("PendingError.Pending = %d, want 1", pe.Pending)
	}
	if pe.Durable {
		t.Error("PendingError.Durable = true without an outbox; the frame is gone")
	}
}

// TestOutboxReplayAcrossClientRestart is the crash-survival proof at the
// client layer: frames accepted while the station is unreachable land in
// the outbox; the process "crashes" (the client is abandoned, never
// closed); a new incarnation opens the same outbox and delivers the
// residue exactly once — as the same transport incarnation, so the
// station sees no phantom reboot.
func TestOutboxReplayAcrossClientRestart(t *testing.T) {
	cfg := chaosConfig()
	addr := reservedAddr(t)
	path := filepath.Join(t.TempDir(), "node.outbox")
	const n = 4
	frames := encodeFrames(t, cfg, n, 16)

	ob1, err := outbox.Open(path, outbox.Options{Sensor: "crashy"})
	if err != nil {
		t.Fatal(err)
	}
	rc1, err := NewReliable(addr, "crashy", ReliableOptions{
		DialTimeout:      100 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		Outbox:           ob1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		Rand:             rand.New(rand.NewSource(31)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, frame := range frames {
		if err := rc1.Send(frame); err != nil {
			t.Fatalf("durable send %d: %v", i, err)
		}
	}
	// Crash: rc1 and ob1 are simply abandoned, like a kill -9.

	st := newStation(t, cfg)
	srv, err := Serve(st, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ob2, err := outbox.Open(path, outbox.Options{Sensor: "crashy"})
	if err != nil {
		t.Fatal(err)
	}
	defer ob2.Close()
	if got := ob2.PendingCount(); got != n {
		t.Fatalf("reopened outbox holds %d frames, want %d", got, n)
	}
	rc2, err := NewReliable(addr, "crashy", ReliableOptions{
		DialTimeout: time.Second,
		AckTimeout:  time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Outbox:      ob2,
		Rand:        rand.New(rand.NewSource(37)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rc2.Unacked() != n {
		t.Fatalf("new incarnation queued %d frames from the outbox, want %d", rc2.Unacked(), n)
	}
	if err := rc2.Flush(); err != nil {
		t.Fatalf("replay flush: %v", err)
	}
	if err := rc2.Close(); err != nil {
		t.Fatalf("close after clean replay: %v", err)
	}

	stats, err := st.SensorStats("crashy")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmissions != n {
		t.Errorf("station holds %d transmissions, want exactly %d", stats.Transmissions, n)
	}
	if stats.Restarts != 0 {
		t.Errorf("outbox replay misread as a reboot: %d restarts", stats.Restarts)
	}
	if got := ob2.PendingCount(); got != 0 {
		t.Errorf("outbox still holds %d frames after delivery", got)
	}
}

// TestConnPanicIsolation: a panic while handling one sensor's frame must
// kill only that connection — counted and logged — while the listener
// keeps serving, and the unacked frame must be retransmitted and
// delivered. The panic is injected through the frame observer, which
// runs on the connection goroutine like the station handler does.
func TestConnPanicIsolation(t *testing.T) {
	cfg := chaosConfig()
	st := newStation(t, cfg)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	panicked := false
	srv, err := ServeWith(st, "127.0.0.1:0", Options{
		Metrics: met,
		Observer: func(id string, frame []byte) {
			if !panicked {
				panicked = true
				panic("poisoned frame handler")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	frames := encodeFrames(t, cfg, 2, 16)
	rc, err := NewReliable(srv.Addr(), "survivor", ReliableOptions{
		DialTimeout: time.Second,
		AckTimeout:  500 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		MaxAttempts: 50,
		Metrics:     met,
		Rand:        rand.New(rand.NewSource(41)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for i, frame := range frames {
		if err := rc.Send(frame); err != nil {
			t.Fatalf("send %d across the panic: %v", i, err)
		}
	}
	if err := rc.Flush(); err != nil {
		t.Fatalf("flush across the panic: %v", err)
	}

	if got := met.ConnPanics.Value(); got != 1 {
		t.Errorf("conn panic counter = %d, want 1", got)
	}
	stats, err := st.SensorStats("survivor")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmissions != len(frames) {
		t.Errorf("station holds %d transmissions, want exactly %d (the panicked frame must be redelivered, once)",
			stats.Transmissions, len(frames))
	}
}
