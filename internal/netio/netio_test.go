package netio

import (
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"sbr/internal/core"
	"sbr/internal/metrics"
	"sbr/internal/sensor"
	"sbr/internal/station"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

func coreConfig() core.Config {
	return core.Config{TotalBand: 40, MBase: 16, Metric: metrics.SSE}
}

func startServer(t *testing.T) (*Server, *station.Station) {
	t.Helper()
	st, err := station.New(coreConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(st, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, st
}

// streamSensor drives a streaming sensor whose sink ships frames over the
// client, recording `ticks` samples.
func streamSensor(t *testing.T, addr, id string, ticks int) {
	t.Helper()
	client, err := Dial(addr, id)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	s, err := sensor.New(sensor.Config{
		Core: coreConfig(), Quantities: 2, BatchLen: 64,
	}, func(_ *core.Transmission, frame []byte) error {
		return client.Send(frame)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ticks; i++ {
		tv := float64(i) / 7
		if err := s.Record(5*math.Sin(tv), 2*math.Cos(tv)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	srv, st := startServer(t)
	streamSensor(t, srv.Addr(), "tcp-node", 3*64)

	stats, err := st.SensorStats("tcp-node")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmissions != 3 {
		t.Fatalf("station received %d transmissions, want 3", stats.Transmissions)
	}
	hist, err := st.History("tcp-node", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3*64 {
		t.Errorf("history length %d", len(hist))
	}
	// The reconstruction must track the sine source.
	var mse, energy float64
	for i := range hist {
		orig := 5 * math.Sin(float64(i)/7)
		mse += (hist[i] - orig) * (hist[i] - orig)
		energy += orig * orig
	}
	if mse > energy/2 {
		t.Errorf("TCP-path reconstruction error %v vs energy %v", mse, energy)
	}
}

func TestConcurrentSensors(t *testing.T) {
	srv, st := startServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 5; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			streamSensor(t, srv.Addr(), string(rune('a'+g)), 2*64)
		}(g)
	}
	wg.Wait()
	if got := len(st.Sensors()); got != 5 {
		t.Errorf("%d sensors registered, want 5", got)
	}
}

func TestServerRejectsGarbageFrame(t *testing.T) {
	srv, _ := startServer(t)
	client, err := Dial(srv.Addr(), "bad-node")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	err = client.Send([]byte("this is not a frame, but long enough to parse"))
	if !errors.Is(err, ErrRejected) && err == nil {
		t.Errorf("garbage frame accepted: %v", err)
	}
}

func TestServerRejectsBadHandshake(t *testing.T) {
	srv, _ := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("NOPE")); err != nil {
		t.Fatal(err)
	}
	// The server closes the connection without serving.
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err == nil {
		t.Error("server answered a bad handshake")
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", ""); err == nil {
		t.Error("empty sensor ID accepted")
	}
	if _, err := Dial("127.0.0.1:0", "x"); err == nil {
		t.Error("dial to port 0 succeeded")
	}
}

func TestOutOfOrderRejectedOverTCP(t *testing.T) {
	srv, _ := startServer(t)
	comp, err := core.NewCompressor(coreConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := []timeseries.Series{make(timeseries.Series, 64), make(timeseries.Series, 64)}
	for i := 0; i < 64; i++ {
		rows[0][i] = float64(i)
		rows[1][i] = float64(i * i)
	}
	t0, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := comp.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	_ = t0
	frame1, err := wire.Encode(t1)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr(), "ooo-node")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Sending seq 1 before seq 0 must be rejected by the station.
	if err := client.Send(frame1); !errors.Is(err, ErrRejected) {
		t.Errorf("out-of-order frame gave %v, want ErrRejected", err)
	}
}

func TestSensorRebootOverTCP(t *testing.T) {
	// A sensor that reboots (fresh compressor, seq restarts at 0) must be
	// re-accepted by the station and its history keeps growing.
	srv, st := startServer(t)
	streamSensor(t, srv.Addr(), "reboot-node", 2*64)
	streamSensor(t, srv.Addr(), "reboot-node", 2*64) // second life

	stats, err := st.SensorStats("reboot-node")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmissions != 4 {
		t.Errorf("%d transmissions after reboot, want 4", stats.Transmissions)
	}
	if stats.Restarts != 1 {
		t.Errorf("%d restarts recorded, want 1", stats.Restarts)
	}
	hist, err := st.History("reboot-node", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4*64 {
		t.Errorf("history length %d, want %d", len(hist), 4*64)
	}
}

func TestServerCloseDuringActiveConnection(t *testing.T) {
	st, err := station.New(coreConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(st, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr(), "open-conn")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Close with the connection still open: must not deadlock.
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server Close deadlocked with an open connection")
	}
	// Sending after shutdown fails cleanly.
	comp, _ := core.NewCompressor(coreConfig())
	rows := []timeseries.Series{make(timeseries.Series, 64), make(timeseries.Series, 64)}
	tr, _ := comp.Encode(rows)
	frame, _ := wire.Encode(tr)
	if err := client.Send(frame); err == nil {
		t.Error("send to a closed server succeeded")
	}
}

// TestFrameObserver checks that every accepted frame is handed to the
// observer raw, in order, and re-decodable — the persistence hook.
func TestFrameObserver(t *testing.T) {
	st, err := station.New(coreConfig())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got [][]byte
	srv, err := ServeObserved(st, "127.0.0.1:0", func(id string, frame []byte) {
		if id != "obs-1" {
			t.Errorf("observer saw sensor %q, want obs-1", id)
		}
		mu.Lock()
		got = append(got, append([]byte(nil), frame...))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	streamSensor(t, srv.Addr(), "obs-1", 200)

	stats, err := st.SensorStats("obs-1")
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != stats.Transmissions || len(got) == 0 {
		t.Fatalf("observer saw %d frames, station received %d", len(got), stats.Transmissions)
	}
	var raw int
	for i, frame := range got {
		tr, err := wire.DecodeBytes(frame)
		if err != nil {
			t.Fatalf("frame %d does not re-decode: %v", i, err)
		}
		if tr.Seq != i {
			t.Fatalf("frame %d carries seq %d", i, tr.Seq)
		}
		raw += len(frame)
	}
	if stats.RawBytes != raw {
		t.Fatalf("station counted %d raw bytes, frames total %d", stats.RawBytes, raw)
	}
}
