package netio

import (
	"bufio"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"time"

	"sbr/internal/obs"
	"sbr/internal/obs/trace"
	"sbr/internal/wire"
)

// ReliableOptions tunes a ReliableClient. The zero value is usable:
// every field has a sensible default.
type ReliableOptions struct {
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration

	// AckTimeout bounds each frame write and each acknowledgement wait
	// (default 10s). A silent link — bytes swallowed without an error —
	// is detected here and answered with a reconnect.
	AckTimeout time.Duration

	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between reconnection attempts (defaults 50ms and 5s). Each sleep is
	// jittered to half–full of the nominal delay so a fleet of sensors
	// does not reconnect in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// MaxAttempts bounds both the transmissions of a single frame and the
	// consecutive failed connects before the client turns terminal
	// (default 16).
	MaxAttempts int

	// Window bounds the outbox: how many unacknowledged frames may be in
	// flight before Send blocks waiting for acks (default 32).
	Window int

	// Dial overrides the connection factory — the fault-injection and
	// testing hook. The default dials TCP with DialTimeout.
	Dial func(addr string) (net.Conn, error)

	// Rand supplies backoff jitter; tests pass a seeded source for
	// determinism. Defaults to the global source.
	Rand *rand.Rand

	// Metrics receives retry/reconnect telemetry (nil: uninstrumented).
	Metrics *Metrics

	// Logger receives structured transport events (nil: discard).
	Logger *slog.Logger

	// Tracer records send/retry/reconnect spans for frames that carry a
	// sampled trace header (nil: untraced).
	Tracer *trace.Recorder
}

// pending is one enqueued frame awaiting acknowledgement.
type pending struct {
	frame    []byte
	seq      int
	attempts int         // transmissions so far, counting the first
	sp       *trace.Span // netio.send span for sampled traced frames (else nil)
}

// ReliableClient is the fault-tolerant sensor transport: connect
// timeouts, per-send deadlines, capped exponential backoff with jitter,
// automatic reconnection, and a bounded outbox of unacknowledged frames
// retransmitted in order after every reconnect. Combined with the
// station's duplicate detection (a re-delivered accepted frame is
// re-acked OK), it delivers every frame exactly once over a link that
// drops, delays, duplicates, truncates or corrupts traffic.
//
// The client keeps one incarnation nonce for its whole life, so the
// station can tell its retransmissions from a sensor reboot (a fresh
// client, fresh nonce, sequence restarting at zero).
//
// Not safe for concurrent use: a sensor has one radio.
type ReliableClient struct {
	addr, id string
	opt      ReliableOptions
	met      *Metrics
	log      *slog.Logger
	nonce    uint64

	conn      net.Conn
	bw        *bufio.Writer
	br        *bufio.Reader
	proto     int  // negotiated protocol of the current connection
	connected bool // a connection has succeeded before (for the reconnect metric)

	outbox []pending
	sent   int   // prefix of outbox already written to the current conn
	streak int   // consecutive failures, drives the backoff exponent
	term   error // terminal state; sticky
}

// NewReliable creates a reliable client for the station at addr,
// identifying as sensorID. The connection is established lazily on the
// first Send, through the same retry machinery as any reconnect.
func NewReliable(addr, sensorID string, opt ReliableOptions) (*ReliableClient, error) {
	if sensorID == "" || len(sensorID) > maxIDLen {
		return nil, fmt.Errorf("netio: sensor ID length %d out of range", len(sensorID))
	}
	if opt.DialTimeout <= 0 {
		opt.DialTimeout = 5 * time.Second
	}
	if opt.AckTimeout <= 0 {
		opt.AckTimeout = defaultAckTimeout
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = 50 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 5 * time.Second
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 16
	}
	if opt.Window <= 0 {
		opt.Window = 32
	}
	if opt.Dial == nil {
		d := opt.DialTimeout
		opt.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, d)
		}
	}
	met := opt.Metrics
	if met == nil {
		met = &Metrics{}
	}
	return &ReliableClient{
		addr:  addr,
		id:    sensorID,
		opt:   opt,
		met:   met,
		log:   obs.Component(opt.Logger, "netio"),
		nonce: newNonce(),
	}, nil
}

// Send enqueues one wire frame for delivery and drives the link. It
// returns once the frame is written and the outbox holds at most Window
// unacknowledged frames — so sends pipeline — or with a terminal error
// once a frame or the connection exhausts MaxAttempts. A nil return
// means the frame is on the wire and will be retransmitted until acked;
// call Flush for the delivered-for-sure barrier.
func (c *ReliableClient) Send(frame []byte) error {
	if c.term != nil {
		return c.term
	}
	seq, err := wire.FrameSeq(frame)
	if err != nil {
		return fmt.Errorf("netio: unsendable frame: %w", err)
	}
	p := pending{frame: append([]byte(nil), frame...), seq: seq}
	if c.opt.Tracer != nil {
		if tc := wire.FrameTrace(frame); tc.Sampled {
			tr := c.opt.Tracer.Continue(trace.ID(tc.ID), c.id)
			p.sp = tr.StartSpan("netio.send")
			p.sp.AnnotateInt("seq", int64(seq))
		}
	}
	c.outbox = append(c.outbox, p)
	return c.pump(c.opt.Window)
}

// Flush blocks until every enqueued frame has been acknowledged.
func (c *ReliableClient) Flush() error {
	if c.term != nil {
		return c.term
	}
	return c.pump(0)
}

// Unacked reports how many sent frames still await acknowledgement.
func (c *ReliableClient) Unacked() int { return len(c.outbox) }

// Close flushes the outbox (best effort), closes the connection and
// turns the client terminal. The flush error, if any, is returned.
func (c *ReliableClient) Close() error {
	var err error
	if c.term == nil {
		err = c.pump(0)
	}
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	if c.term == nil {
		c.term = ErrClientClosed
	}
	return err
}

// pump drives the protocol until everything enqueued has been written to
// a live connection and at most maxUnacked frames remain outstanding.
// Every failure path funnels through dropConn + ensureConn, which
// retransmit the outbox on a fresh connection under backoff.
func (c *ReliableClient) pump(maxUnacked int) error {
	for {
		if len(c.outbox) <= maxUnacked && c.sent == len(c.outbox) {
			return nil
		}
		if err := c.ensureConn(); err != nil {
			return err
		}
		if err := c.writeUnsent(); err != nil {
			if c.term != nil {
				return c.term
			}
			c.dropConn(err)
			continue
		}
		if len(c.outbox) > maxUnacked {
			if err := c.awaitAck(); err != nil {
				c.dropConn(err)
			}
		}
	}
}

// ensureConn returns with a live, handshaken connection, dialling under
// backoff as needed. MaxAttempts consecutive failures turn terminal.
func (c *ReliableClient) ensureConn() error {
	for c.conn == nil {
		if c.streak >= c.opt.MaxAttempts {
			c.term = fmt.Errorf("%w: %d consecutive connection failures to %s",
				ErrClientClosed, c.streak, c.addr)
			return c.term
		}
		if c.streak > 0 {
			c.sleepBackoff()
		}
		conn, br, proto, err := dialAndShakeNegotiated(c.opt.Dial, c.addr, c.id, c.nonce, c.opt.AckTimeout)
		if err != nil {
			c.streak++
			c.log.Warn("connect failed", "sensor", c.id, "addr", c.addr,
				"attempt", c.streak, "err", err)
			continue
		}
		if c.connected {
			c.met.Reconnects.Inc()
			c.log.Info("reconnected", "sensor", c.id, "addr", c.addr,
				"unacked", len(c.outbox), "proto", proto)
			// The head-of-line frame wears the reconnect event: it is the
			// one whose latency the lost link actually extended.
			if len(c.outbox) > 0 {
				sp := c.outbox[0].sp.Child("netio.reconnect")
				sp.AnnotateInt("streak", int64(c.streak))
				sp.End()
			}
		}
		c.connected = true
		c.conn = conn
		c.bw = bufio.NewWriter(conn)
		c.br = br
		c.proto = proto
		c.sent = 0 // the whole outbox is retransmitted on a fresh conn
	}
	return nil
}

// writeUnsent transmits every not-yet-written outbox frame in order and
// flushes. A frame that has exhausted MaxAttempts turns the client
// terminal via c.term; other failures are retryable link errors.
func (c *ReliableClient) writeUnsent() error {
	if c.sent == len(c.outbox) {
		return nil
	}
	if c.opt.AckTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.opt.AckTimeout)) //nolint:errcheck
	}
	for c.sent < len(c.outbox) {
		p := &c.outbox[c.sent]
		if p.attempts >= c.opt.MaxAttempts {
			c.term = fmt.Errorf("%w: frame seq %d abandoned after %d attempts",
				ErrClientClosed, p.seq, p.attempts)
			c.conn.Close()
			c.conn = nil
			return c.term
		}
		p.attempts++
		if p.attempts > 1 {
			c.met.Retries.Inc()
			sp := p.sp.Child("netio.retry")
			sp.AnnotateInt("attempt", int64(p.attempts))
			sp.End()
		}
		frame := p.frame
		if c.proto < protoV3 {
			// A v2 peer would reject the traced header: shed it. The outbox
			// keeps the original bytes, so a later v3 reconnect propagates
			// the trace again.
			frame = wire.StripTrace(frame)
		}
		if _, err := c.bw.Write(frame); err != nil {
			return fmt.Errorf("netio: send: %w", err)
		}
		c.sent++
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("netio: send: %w", err)
	}
	return nil
}

// awaitAck consumes acknowledgements until the head-of-line frame is
// acked (popping it) or the link proves broken. Acknowledgements whose
// sequence matches no outstanding frame are stale re-acks of duplicates
// the server deduplicated — ignored, never fatal.
func (c *ReliableClient) awaitAck() error {
	for {
		if c.opt.AckTimeout > 0 {
			c.conn.SetReadDeadline(time.Now().Add(c.opt.AckTimeout)) //nolint:errcheck
		}
		status, seq, err := readAck(c.br)
		if err != nil {
			return err
		}
		switch status {
		case ackOK:
			if len(c.outbox) > 0 && seq == c.outbox[0].seq {
				p := c.outbox[0]
				c.outbox = c.outbox[1:]
				c.sent--
				c.streak = 0
				if p.sp != nil {
					p.sp.AnnotateInt("attempts", int64(p.attempts))
					p.sp.End()
					p.sp.Trace().Finish()
				}
				return nil
			}
			if c.seqOutstanding(seq) {
				// An ack for a non-head frame would mean the server skipped
				// one: a protocol violation, treat the link as poisoned.
				return fmt.Errorf("netio: ack for seq %d out of order", seq)
			}
			continue // stale re-ack of an already-popped frame
		case ackBusy:
			return ErrBusy
		case ackError:
			// The server closes after an error ack; reconnect and
			// retransmit. A frame that is truly unacceptable (not just
			// corrupted in flight) exhausts its attempts and turns
			// terminal in writeUnsent.
			return fmt.Errorf("netio: server rejected frame seq %d", seq)
		default:
			return fmt.Errorf("netio: unknown ack status 0x%02x", status)
		}
	}
}

// seqOutstanding reports whether seq matches any outbox entry.
func (c *ReliableClient) seqOutstanding(seq int) bool {
	for i := range c.outbox {
		if c.outbox[i].seq == seq {
			return true
		}
	}
	return false
}

// dropConn discards the connection after a link failure; the next
// ensureConn redials under backoff and the outbox is retransmitted.
func (c *ReliableClient) dropConn(err error) {
	c.log.Warn("link failed", "sensor", c.id, "addr", c.addr,
		"unacked", len(c.outbox), "err", err)
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.sent = 0
	c.streak++
}

// sleepBackoff sleeps the capped exponential backoff for the current
// failure streak, jittered to [d/2, d).
func (c *ReliableClient) sleepBackoff() {
	d := c.opt.BackoffBase
	for i := 1; i < c.streak && d < c.opt.BackoffMax; i++ {
		d *= 2
	}
	if d > c.opt.BackoffMax {
		d = c.opt.BackoffMax
	}
	half := d / 2
	var j time.Duration
	if c.opt.Rand != nil {
		j = time.Duration(c.opt.Rand.Int63n(int64(half) + 1))
	} else {
		j = time.Duration(rand.Int63n(int64(half) + 1))
	}
	time.Sleep(half + j)
}
