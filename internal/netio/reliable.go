package netio

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"time"

	"sbr/internal/obs"
	"sbr/internal/obs/trace"
	"sbr/internal/outbox"
	"sbr/internal/wire"
)

// ErrBreakerOpen reports that the circuit breaker has the link open: the
// station has failed too many consecutive times, so the client is not
// even dialling. Sends with a durable outbox attached absorb this
// silently — the frame is safe on disk and a half-open probe will move
// it later; Flush and Close surface it so callers know delivery is
// deferred, not done.
var ErrBreakerOpen = errors.New("netio: circuit breaker open")

// PendingError is returned by ReliableClient.Close when the flush
// deadline expired (or the link was terminal) with frames still
// unacknowledged. Durable tells the caller whether those frames survive
// in an on-disk outbox for the next incarnation or died with the
// process.
type PendingError struct {
	Pending int   // frames still unacknowledged
	Durable bool  // true: the frames persist in the outbox on disk
	Err     error // the flush failure, if any
}

func (e *PendingError) Error() string {
	fate := "LOST"
	if e.Durable {
		fate = "durable in the outbox"
	}
	if e.Err != nil {
		return fmt.Sprintf("netio: closed with %d frames pending (%s): %v", e.Pending, fate, e.Err)
	}
	return fmt.Sprintf("netio: closed with %d frames pending (%s)", e.Pending, fate)
}

func (e *PendingError) Unwrap() error { return e.Err }

// ReliableOptions tunes a ReliableClient. The zero value is usable:
// every field has a sensible default.
type ReliableOptions struct {
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration

	// AckTimeout bounds each frame write and each acknowledgement wait
	// (default 10s). A silent link — bytes swallowed without an error —
	// is detected here and answered with a reconnect.
	AckTimeout time.Duration

	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between reconnection attempts (defaults 50ms and 5s). Each sleep is
	// jittered to half–full of the nominal delay so a fleet of sensors
	// does not reconnect in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// MaxAttempts bounds both the transmissions of a single frame and the
	// consecutive failed connects before the client turns terminal
	// (default 16).
	MaxAttempts int

	// Window bounds the outbox: how many unacknowledged frames may be in
	// flight before Send blocks waiting for acks (default 32).
	Window int

	// Dial overrides the connection factory — the fault-injection and
	// testing hook. The default dials TCP with DialTimeout.
	Dial func(addr string) (net.Conn, error)

	// Rand supplies backoff jitter; tests pass a seeded source for
	// determinism. Defaults to the global source.
	Rand *rand.Rand

	// Outbox, when set, makes the client crash-safe: every frame is
	// appended (and fsynced) to this durable spill before its first
	// transmission and retired only on acknowledgement, and any frames the
	// outbox already holds — the unacknowledged residue of a previous
	// process incarnation — are enqueued for redelivery ahead of new
	// sends. The client does not close the outbox; its owner does.
	Outbox *outbox.Outbox

	// BreakerThreshold arms the circuit breaker: after this many
	// consecutive transport failures the client stops dialling and fails
	// fast with ErrBreakerOpen until a half-open probe succeeds
	// (0: breaker disabled). While armed, consecutive connection failures
	// never turn the client terminal — the breaker replaces that give-up
	// with back-pressure, which is the survivable-uplink behaviour: new
	// sends drain straight to the outbox.
	BreakerThreshold int

	// BreakerCooldown is how long an open breaker rejects before allowing
	// one half-open probe dial (default 1s).
	BreakerCooldown time.Duration

	// CloseTimeout bounds the best-effort final flush inside Close
	// (default 5s). On expiry Close returns a *PendingError carrying the
	// count of frames still unacknowledged.
	CloseTimeout time.Duration

	// Metrics receives retry/reconnect telemetry (nil: uninstrumented).
	Metrics *Metrics

	// Logger receives structured transport events (nil: discard).
	Logger *slog.Logger

	// Tracer records send/retry/reconnect spans for frames that carry a
	// sampled trace header (nil: untraced).
	Tracer *trace.Recorder
}

// pending is one enqueued frame awaiting acknowledgement.
type pending struct {
	frame    []byte
	seq      int
	attempts int         // transmissions so far, counting the first
	sp       *trace.Span // netio.send span for sampled traced frames (else nil)
}

// ReliableClient is the fault-tolerant sensor transport: connect
// timeouts, per-send deadlines, capped exponential backoff with jitter,
// automatic reconnection, and a bounded outbox of unacknowledged frames
// retransmitted in order after every reconnect. Combined with the
// station's duplicate detection (a re-delivered accepted frame is
// re-acked OK), it delivers every frame exactly once over a link that
// drops, delays, duplicates, truncates or corrupts traffic.
//
// The client keeps one incarnation nonce for its whole life, so the
// station can tell its retransmissions from a sensor reboot (a fresh
// client, fresh nonce, sequence restarting at zero).
//
// Not safe for concurrent use: a sensor has one radio.
type ReliableClient struct {
	addr, id string
	opt      ReliableOptions
	met      *Metrics
	log      *slog.Logger
	nonce    uint64

	conn      net.Conn
	bw        *bufio.Writer
	br        *bufio.Reader
	proto     int  // negotiated protocol of the current connection
	connected bool // a connection has succeeded before (for the reconnect metric)

	outbox []pending
	sent   int   // prefix of outbox already written to the current conn
	streak int   // consecutive failures, drives the backoff exponent
	term   error // terminal state; sticky

	ob         *outbox.Outbox // durable spill (nil: memory-only)
	retryAfter time.Duration  // server's busy retry-after hint, floors the next backoff
	flushBy    time.Time      // Close's flush deadline (zero: unbounded)

	brkOpen  bool      // circuit breaker state
	brkUntil time.Time // when open: earliest half-open probe
}

// NewReliable creates a reliable client for the station at addr,
// identifying as sensorID. The connection is established lazily on the
// first Send, through the same retry machinery as any reconnect.
func NewReliable(addr, sensorID string, opt ReliableOptions) (*ReliableClient, error) {
	if sensorID == "" || len(sensorID) > maxIDLen {
		return nil, fmt.Errorf("netio: sensor ID length %d out of range", len(sensorID))
	}
	if opt.DialTimeout <= 0 {
		opt.DialTimeout = 5 * time.Second
	}
	if opt.AckTimeout <= 0 {
		opt.AckTimeout = defaultAckTimeout
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = 50 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 5 * time.Second
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 16
	}
	if opt.Window <= 0 {
		opt.Window = 32
	}
	if opt.BreakerCooldown <= 0 {
		opt.BreakerCooldown = time.Second
	}
	if opt.CloseTimeout <= 0 {
		opt.CloseTimeout = 5 * time.Second
	}
	if opt.Dial == nil {
		d := opt.DialTimeout
		opt.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, d)
		}
	}
	met := opt.Metrics
	if met == nil {
		met = &Metrics{}
	}
	c := &ReliableClient{
		addr:  addr,
		id:    sensorID,
		opt:   opt,
		met:   met,
		log:   obs.Component(opt.Logger, "netio"),
		nonce: newNonce(),
		ob:    opt.Outbox,
	}
	// Replay the durable residue of a previous incarnation: frames it
	// appended but never saw acknowledged, redelivered ahead of any new
	// send. The incarnation nonce rides in the outbox too — a replaying
	// restart reuses it and so speaks as the SAME transport incarnation,
	// which is what lets the station classify a replayed seq-0 frame as a
	// retransmission (re-acked duplicate) instead of a sensor reboot. A
	// fresh outbox is stamped with this client's new nonce instead.
	if c.ob != nil {
		if n := c.ob.Nonce(); n != 0 {
			c.nonce = n
		} else if err := c.ob.SetNonce(c.nonce); err != nil {
			return nil, fmt.Errorf("netio: stamping outbox nonce: %w", err)
		}
		for _, f := range c.ob.Pending() {
			c.outbox = append(c.outbox, pending{frame: f.Bytes, seq: f.Seq})
		}
		if n := len(c.outbox); n > 0 {
			c.log.Info("outbox replay queued", "sensor", sensorID, "frames", n)
		}
	}
	return c, nil
}

// Send enqueues one wire frame for delivery and drives the link. It
// returns once the frame is written and the outbox holds at most Window
// unacknowledged frames — so sends pipeline — or with a terminal error
// once a frame or the connection exhausts MaxAttempts. A nil return
// means the frame is on the wire and will be retransmitted until acked;
// call Flush for the delivered-for-sure barrier.
func (c *ReliableClient) Send(frame []byte) error {
	if c.term != nil {
		return c.term
	}
	seq, err := wire.FrameSeq(frame)
	if err != nil {
		return fmt.Errorf("netio: unsendable frame: %w", err)
	}
	p := pending{frame: append([]byte(nil), frame...), seq: seq}
	if c.opt.Tracer != nil {
		if tc := wire.FrameTrace(frame); tc.Sampled {
			tr := c.opt.Tracer.Continue(trace.ID(tc.ID), c.id)
			p.sp = tr.StartSpan("netio.send")
			p.sp.AnnotateInt("seq", int64(seq))
		}
	}
	// Durability point: the frame is fsynced in the spill before the first
	// transmission, so from here on a process crash cannot lose it.
	if c.ob != nil {
		if err := c.ob.Append(seq, frame); err != nil {
			return fmt.Errorf("netio: outbox spill: %w", err)
		}
	}
	c.outbox = append(c.outbox, p)
	err = c.pump(c.opt.Window)
	if errors.Is(err, ErrBreakerOpen) && c.ob != nil {
		// The breaker has the link open but the frame is durable: accept
		// the send and let a later probe (or the next incarnation) move it.
		return nil
	}
	return err
}

// Flush blocks until every enqueued frame has been acknowledged. With
// the breaker open it returns ErrBreakerOpen instead of waiting out the
// cooldown — delivery is deferred, not failed.
func (c *ReliableClient) Flush() error {
	if c.term != nil {
		return c.term
	}
	return c.pump(0)
}

// Unacked reports how many sent frames still await acknowledgement.
func (c *ReliableClient) Unacked() int { return len(c.outbox) }

// Close flushes the outbox best-effort under CloseTimeout, closes the
// connection and turns the client terminal. If frames are still
// unacknowledged when the deadline (or a terminal link error) cuts the
// flush short, Close returns a *PendingError carrying the count and
// whether the frames survive in a durable outbox — silent discard was a
// bug this interface no longer permits.
func (c *ReliableClient) Close() error {
	var err error
	if c.term == nil {
		c.flushBy = time.Now().Add(c.opt.CloseTimeout)
		err = c.pump(0)
		c.flushBy = time.Time{}
	}
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	if c.term == nil {
		c.term = ErrClientClosed
	}
	if n := len(c.outbox); n > 0 {
		return &PendingError{Pending: n, Durable: c.ob != nil, Err: err}
	}
	return err
}

// pump drives the protocol until everything enqueued has been written to
// a live connection and at most maxUnacked frames remain outstanding.
// Every failure path funnels through dropConn + ensureConn, which
// retransmit the outbox on a fresh connection under backoff.
func (c *ReliableClient) pump(maxUnacked int) error {
	for {
		if len(c.outbox) <= maxUnacked && c.sent == len(c.outbox) {
			return nil
		}
		if !c.flushBy.IsZero() && !time.Now().Before(c.flushBy) {
			return fmt.Errorf("netio: flush deadline expired with %d frames pending", len(c.outbox))
		}
		if err := c.ensureConn(); err != nil {
			return err
		}
		if err := c.writeUnsent(); err != nil {
			if c.term != nil {
				return c.term
			}
			c.dropConn(err)
			continue
		}
		if len(c.outbox) > maxUnacked {
			if err := c.awaitAck(); err != nil {
				c.dropConn(err)
			}
		}
	}
}

// ensureConn returns with a live, handshaken connection, dialling under
// backoff as needed. Without a breaker, MaxAttempts consecutive failures
// turn terminal; with one armed, they trip it open instead and the
// client fails fast until a half-open probe restores flow.
func (c *ReliableClient) ensureConn() error {
	for c.conn == nil {
		if err := c.breakerGate(); err != nil {
			return err
		}
		if c.opt.BreakerThreshold <= 0 && c.streak >= c.opt.MaxAttempts {
			c.term = fmt.Errorf("%w: %d consecutive connection failures to %s",
				ErrClientClosed, c.streak, c.addr)
			return c.term
		}
		if c.streak > 0 && !c.brkOpen {
			c.sleepBackoff()
		}
		conn, br, proto, err := dialAndShakeNegotiated(c.opt.Dial, c.addr, c.id, c.nonce, c.opt.AckTimeout)
		if err != nil {
			c.streak++
			c.noteBusy(err)
			c.log.Warn("connect failed", "sensor", c.id, "addr", c.addr,
				"attempt", c.streak, "err", err)
			if c.brkOpen {
				// The half-open probe failed: re-trip for another cooldown.
				c.brkUntil = time.Now().Add(c.opt.BreakerCooldown)
				return ErrBreakerOpen
			}
			continue
		}
		if c.brkOpen {
			// Half-open probe succeeded: close the breaker, restore flow.
			c.brkOpen = false
			c.met.BreakerState.Set(0)
			c.log.Info("circuit breaker closed", "sensor", c.id, "addr", c.addr)
		}
		if c.connected {
			c.met.Reconnects.Inc()
			c.log.Info("reconnected", "sensor", c.id, "addr", c.addr,
				"unacked", len(c.outbox), "proto", proto)
			// The head-of-line frame wears the reconnect event: it is the
			// one whose latency the lost link actually extended.
			if len(c.outbox) > 0 {
				sp := c.outbox[0].sp.Child("netio.reconnect")
				sp.AnnotateInt("streak", int64(c.streak))
				sp.End()
			}
		}
		c.connected = true
		c.conn = conn
		c.bw = bufio.NewWriter(conn)
		c.br = br
		c.proto = proto
		c.sent = 0 // the whole outbox is retransmitted on a fresh conn
	}
	return nil
}

// breakerGate enforces the circuit breaker before any dial: open and
// cooling → fail fast; open and cooled → admit exactly one half-open
// probe; closed with the failure streak at threshold → trip.
func (c *ReliableClient) breakerGate() error {
	if c.opt.BreakerThreshold <= 0 {
		return nil
	}
	if c.brkOpen {
		if time.Now().Before(c.brkUntil) {
			return ErrBreakerOpen
		}
		c.met.BreakerProbes.Inc()
		c.log.Info("circuit breaker half-open probe", "sensor", c.id, "addr", c.addr)
		return nil
	}
	if c.streak >= c.opt.BreakerThreshold {
		c.brkOpen = true
		c.brkUntil = time.Now().Add(c.opt.BreakerCooldown)
		c.met.BreakerTrips.Inc()
		c.met.BreakerState.Set(1)
		c.log.Warn("circuit breaker tripped", "sensor", c.id, "addr", c.addr,
			"streak", c.streak, "cooldown", c.opt.BreakerCooldown.String())
		return ErrBreakerOpen
	}
	return nil
}

// noteBusy records a busy shed's retry-after hint, if err carries one,
// so the next backoff honours the server's own estimate of relief.
func (c *ReliableClient) noteBusy(err error) {
	var be *busyError
	if errors.As(err, &be) && be.after > 0 {
		c.retryAfter = be.after
	}
}

// writeUnsent transmits every not-yet-written outbox frame in order and
// flushes. A frame that has exhausted MaxAttempts turns the client
// terminal via c.term; other failures are retryable link errors.
func (c *ReliableClient) writeUnsent() error {
	if c.sent == len(c.outbox) {
		return nil
	}
	if c.opt.AckTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.opt.AckTimeout)) //nolint:errcheck
	}
	for c.sent < len(c.outbox) {
		p := &c.outbox[c.sent]
		if p.attempts >= c.opt.MaxAttempts {
			c.term = fmt.Errorf("%w: frame seq %d abandoned after %d attempts",
				ErrClientClosed, p.seq, p.attempts)
			c.conn.Close()
			c.conn = nil
			return c.term
		}
		p.attempts++
		if p.attempts > 1 {
			c.met.Retries.Inc()
			sp := p.sp.Child("netio.retry")
			sp.AnnotateInt("attempt", int64(p.attempts))
			sp.End()
		}
		frame := p.frame
		if c.proto < protoV3 {
			// A v2 peer would reject the traced header: shed it. The outbox
			// keeps the original bytes, so a later v3 reconnect propagates
			// the trace again.
			frame = wire.StripTrace(frame)
		}
		if _, err := c.bw.Write(frame); err != nil {
			return fmt.Errorf("netio: send: %w", err)
		}
		c.sent++
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("netio: send: %w", err)
	}
	return nil
}

// awaitAck consumes acknowledgements until the head-of-line frame is
// acked (popping it) or the link proves broken. Acknowledgements whose
// sequence matches no outstanding frame are stale re-acks of duplicates
// the server deduplicated — ignored, never fatal.
func (c *ReliableClient) awaitAck() error {
	for {
		if c.opt.AckTimeout > 0 {
			c.conn.SetReadDeadline(time.Now().Add(c.opt.AckTimeout)) //nolint:errcheck
		}
		status, seq, err := readAck(c.br)
		if err != nil {
			return err
		}
		switch status {
		case ackOK:
			if len(c.outbox) > 0 && seq == c.outbox[0].seq {
				p := c.outbox[0]
				c.outbox = c.outbox[1:]
				c.sent--
				c.streak = 0
				if c.ob != nil {
					// Retire the durable copy; a failure here only means the
					// frame replays after the next restart, and the station
					// re-acks replayed duplicates, so log rather than fail.
					if err := c.ob.Ack(p.seq); err != nil {
						c.log.Warn("outbox retire failed", "sensor", c.id, "seq", p.seq, "err", err)
					}
				}
				if p.sp != nil {
					p.sp.AnnotateInt("attempts", int64(p.attempts))
					p.sp.End()
					p.sp.Trace().Finish()
				}
				return nil
			}
			if c.seqOutstanding(seq) {
				// An ack for a non-head frame would mean the server skipped
				// one: a protocol violation, treat the link as poisoned.
				return fmt.Errorf("netio: ack for seq %d out of order", seq)
			}
			continue // stale re-ack of an already-popped frame
		case ackBusy:
			return &busyError{after: time.Duration(seq) * time.Millisecond}
		case ackError:
			// The server closes after an error ack; reconnect and
			// retransmit. A frame that is truly unacceptable (not just
			// corrupted in flight) exhausts its attempts and turns
			// terminal in writeUnsent.
			return fmt.Errorf("netio: server rejected frame seq %d", seq)
		default:
			return fmt.Errorf("netio: unknown ack status 0x%02x", status)
		}
	}
}

// seqOutstanding reports whether seq matches any outbox entry.
func (c *ReliableClient) seqOutstanding(seq int) bool {
	for i := range c.outbox {
		if c.outbox[i].seq == seq {
			return true
		}
	}
	return false
}

// dropConn discards the connection after a link failure; the next
// ensureConn redials under backoff and the outbox is retransmitted.
func (c *ReliableClient) dropConn(err error) {
	c.noteBusy(err)
	c.log.Warn("link failed", "sensor", c.id, "addr", c.addr,
		"unacked", len(c.outbox), "err", err)
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.sent = 0
	c.streak++
}

// backoffDelay computes the next reconnect delay: capped exponential in
// the failure streak, jittered to [d/2, d] so a fleet of sensors does
// not reconnect in lockstep, and clamped to [BackoffBase, BackoffMax].
// A pending busy retry-after hint from the server floors the delay and
// is consumed.
func (c *ReliableClient) backoffDelay() time.Duration {
	d := c.opt.BackoffBase
	for i := 1; i < c.streak && d < c.opt.BackoffMax; i++ {
		d *= 2
	}
	if d > c.opt.BackoffMax {
		d = c.opt.BackoffMax
	}
	half := d / 2
	var j time.Duration
	if c.opt.Rand != nil {
		j = time.Duration(c.opt.Rand.Int63n(int64(half) + 1))
	} else {
		j = time.Duration(rand.Int63n(int64(half) + 1))
	}
	d = half + j
	if d < c.opt.BackoffBase {
		d = c.opt.BackoffBase
	}
	if d > c.opt.BackoffMax {
		d = c.opt.BackoffMax
	}
	if c.retryAfter > 0 {
		if d < c.retryAfter {
			d = c.retryAfter
		}
		c.retryAfter = 0
	}
	return d
}

// sleepBackoff sleeps the backoffDelay, cut short by Close's flush
// deadline when one is armed.
func (c *ReliableClient) sleepBackoff() {
	d := c.backoffDelay()
	if !c.flushBy.IsZero() {
		if left := time.Until(c.flushBy); left < d {
			d = left
		}
	}
	if d > 0 {
		time.Sleep(d)
	}
}
