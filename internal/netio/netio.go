// Package netio carries SBR transmissions over TCP: a base-station server
// that accepts many concurrent sensor connections and feeds every decoded
// frame into a station.Station, and two sensor-side clients — a minimal
// Client for clean links, and a ReliableClient that retries, reconnects
// and retransmits over lossy ones. The protocol is deliberately small:
//
//	handshake:  "SBRS" magic, uvarint ID length, sensor ID,
//	            8-byte little-endian incarnation nonce
//	frames:     the framed transmissions internal/wire defines
//	acks:       1 status byte (OK / error / busy) + uvarint sequence
//
// The acknowledgement carries the sequence number it refers to so a
// pipelined sender can match acks to outstanding frames even after
// duplication or loss, and the handshake nonce identifies one transport
// incarnation of a sensor: a reconnecting client reuses its nonce, so the
// station can re-acknowledge a retransmitted already-accepted frame
// (idempotent delivery) while still treating a fresh nonce with sequence
// zero as a sensor reboot.
package netio

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sbr/internal/obs"
	"sbr/internal/obs/trace"
	"sbr/internal/station"
	"sbr/internal/wire"
)

// Protocol constants. The v2 handshake magic is "SBRS"; a client that
// understands traced frames opens with "SBR3" instead and waits for a
// hello acknowledgement naming the server's protocol version. A v2-only
// server rejects the unknown magic and closes, which the client detects
// and answers by redialling with the v2 magic — so negotiation costs one
// extra round trip against old servers and nothing against new ones.
var (
	handshakeMagic   = [4]byte{'S', 'B', 'R', 'S'}
	handshakeMagicV3 = [4]byte{'S', 'B', 'R', '3'}
)

const (
	ackOK    byte = 0x06 // frame decoded and logged (or re-acked duplicate)
	ackError byte = 0x15 // frame rejected; the connection closes after this
	ackBusy  byte = 0x07 // server at capacity; reconnect after a backoff
	ackHello byte = 0x05 // handshake reply: the seq field carries the protocol version
	maxIDLen      = 256
)

// Protocol versions negotiated by the handshake.
const (
	protoV2 = 2 // untraced frames only
	protoV3 = 3 // frames may carry a trace header (wire.VersionTraced)
)

// Default timeouts; Options and ReliableOptions override them.
const (
	defaultDialTimeout      = 10 * time.Second
	defaultHandshakeTimeout = 10 * time.Second
	defaultIdleTimeout      = 2 * time.Minute
	defaultAckTimeout       = 10 * time.Second
	keepalivePeriod         = 30 * time.Second
)

// ErrRejected is returned by Client.Send when the station refused the
// frame (decode failure, out-of-order sequence, shape change…). The
// server closes the connection after an error acknowledgement, so the
// client is terminal afterwards.
var ErrRejected = errors.New("netio: station rejected the frame")

// ErrBusy is returned when the server shed the connection — at its
// max-connections cap, over its ingest watermark, or with a degraded
// archive; the sensor should back off and reconnect.
var ErrBusy = errors.New("netio: server at capacity")

// busyError is a busy shed carrying the server's optional retry-after
// hint (the uvarint field of the busy ack, in milliseconds; 0: none).
// It matches ErrBusy under errors.Is, so existing callers keep working,
// and the reliable client extracts the hint to floor its next backoff.
type busyError struct{ after time.Duration }

func (e *busyError) Error() string {
	if e.after > 0 {
		return fmt.Sprintf("netio: server at capacity (retry after %s)", e.after)
	}
	return ErrBusy.Error()
}

func (e *busyError) Is(target error) bool { return target == ErrBusy }

// ErrClientClosed is returned by sends on a client that reached a
// terminal state: explicitly closed, rejected by the station, or out of
// retransmission attempts.
var ErrClientClosed = errors.New("netio: client closed")

// FrameObserver sees the raw bytes of every frame a station accepted, in
// arrival order per sensor. Observers must be safe for concurrent calls
// (one per connection); the station log persister is the typical use.
// Re-acknowledged duplicates are not observed — the log stays
// exactly-once too.
type FrameObserver func(id string, frame []byte)

// Metrics is the transport-layer telemetry. Build one with NewMetrics;
// every field is a nil-safe obs metric, so the zero value (or a Metrics
// built against a nil registry) instruments nothing at almost no cost.
// Server and client sides share the struct: a process embedding both
// (tests, simulators) feeds one registry.
type Metrics struct {
	ConnsOpen       *obs.Gauge     // sensor connections currently open
	ConnsTotal      *obs.Counter   // connections accepted since start
	ConnsShed       *obs.Counter   // connections shed at the max-connections cap
	FramesAccepted  *obs.Counter   // frames decoded, logged and acked OK
	DupFrames       *obs.Counter   // retransmitted duplicates re-acked OK
	BytesIn         *obs.Counter   // raw bytes of accepted frames
	FrameSeconds    *obs.Histogram // per-frame station handle latency
	RejectHandshake *obs.Counter   // connections dropped at the handshake
	RejectDecode    *obs.Counter   // frames dropped by wire decoding
	RejectReceive   *obs.Counter   // frames the station refused
	AckErrors       *obs.Counter   // acknowledgement writes that failed
	Retries         *obs.Counter   // client frame retransmissions
	Reconnects      *obs.Counter   // client reconnections after a lost link

	ShedCap      *obs.Counter // sheds at the max-connections cap
	ShedQueue    *obs.Counter // sheds over the ingest inflight watermark
	ShedDegraded *obs.Counter // sheds while the archive was degraded
	Inflight     *obs.Gauge   // frames currently inside the station handle
	ConnPanics   *obs.Counter // frame-handler panics isolated to their connection

	BreakerState  *obs.Gauge   // client circuit breaker: 0 closed, 1 open
	BreakerTrips  *obs.Counter // breaker transitions to open
	BreakerProbes *obs.Counter // half-open probe dials
}

// NewMetrics registers the transport metrics on reg (nil: no-op metrics).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		ConnsOpen:       reg.Gauge("sbr_netio_connections_open", "Sensor connections currently open."),
		ConnsTotal:      reg.Counter("sbr_netio_connections_total", "Sensor connections accepted since start."),
		ConnsShed:       reg.Counter("sbr_netio_connections_shed_total", "Connections shed at the max-connections cap."),
		FramesAccepted:  reg.Counter("sbr_netio_frames_accepted_total", "Frames decoded, logged and acknowledged."),
		DupFrames:       reg.Counter("sbr_netio_frames_duplicate_total", "Retransmitted already-accepted frames re-acknowledged."),
		BytesIn:         reg.Counter("sbr_netio_bytes_in_total", "Raw bytes of accepted frames."),
		FrameSeconds:    reg.Histogram("sbr_netio_frame_seconds", "Station handle latency per frame.", obs.LatencyBuckets),
		RejectHandshake: reg.Counter("sbr_netio_frames_rejected_total", "Frames or connections rejected, by reason.", obs.L("reason", "handshake")),
		RejectDecode:    reg.Counter("sbr_netio_frames_rejected_total", "Frames or connections rejected, by reason.", obs.L("reason", "decode")),
		RejectReceive:   reg.Counter("sbr_netio_frames_rejected_total", "Frames or connections rejected, by reason.", obs.L("reason", "receive")),
		AckErrors:       reg.Counter("sbr_netio_ack_errors_total", "Acknowledgement writes that failed."),
		Retries:         reg.Counter("sbr_netio_retries_total", "Frame retransmissions by reliable clients."),
		Reconnects:      reg.Counter("sbr_netio_reconnects_total", "Reconnections by reliable clients after a lost link."),

		ShedCap:      reg.Counter("sbr_netio_shed_total", "Connections shed by admission control, by reason.", obs.L("reason", "cap")),
		ShedQueue:    reg.Counter("sbr_netio_shed_total", "Connections shed by admission control, by reason.", obs.L("reason", "queue")),
		ShedDegraded: reg.Counter("sbr_netio_shed_total", "Connections shed by admission control, by reason.", obs.L("reason", "degraded")),
		Inflight:     reg.Gauge("sbr_netio_inflight_frames", "Frames currently inside the station handle."),
		ConnPanics:   reg.Counter("sbr_netio_conn_panics_total", "Frame-handler panics isolated to their connection."),

		BreakerState:  reg.Gauge("sbr_netio_breaker_state", "Client circuit breaker state: 0 closed, 1 open."),
		BreakerTrips:  reg.Counter("sbr_netio_breaker_trips_total", "Circuit breaker transitions to open."),
		BreakerProbes: reg.Counter("sbr_netio_breaker_probes_total", "Circuit breaker half-open probe dials."),
	}
}

// Options configures ServeWith beyond the required station and address.
type Options struct {
	Observer FrameObserver // raw accepted frames, e.g. the log persister
	Metrics  *Metrics      // transport telemetry (nil: uninstrumented)
	Logger   *slog.Logger  // structured events (nil: discard)

	// Tracer records per-frame receive spans for sampled traced frames
	// and answers the v3 handshake hello (nil: frames are still accepted
	// in either version, but no spans are recorded).
	Tracer *trace.Recorder

	// MaxConns caps concurrent sensor connections. Arrivals beyond the
	// cap are shed gracefully: one busy acknowledgement, then close, so
	// the sensor backs off instead of hanging. 0 means unlimited.
	MaxConns int

	// ShedQueueDepth is the ingest watermark: when this many frames are
	// already inside the station handle, new arrivals are shed busy until
	// the queue drains. 0 means unlimited. Unlike MaxConns (a static cap
	// on peers) this tracks actual processing pressure, so a burst of
	// slow-to-decode frames sheds load even from few connections.
	ShedQueueDepth int

	// ArchiveDegraded, when set, is probed per arrival: true means the
	// station's archive is refusing appends (degraded, memory-only mode),
	// so accepting more traffic only widens the unarchived window — shed
	// busy instead and let the sensors' durable outboxes hold the frames.
	ArchiveDegraded func() bool

	// RetryAfter, when positive, rides in every busy acknowledgement as a
	// retry-after hint (milliseconds on the wire); reliable clients floor
	// their backoff by it, so the operator controls the retry storm.
	RetryAfter time.Duration

	// HandshakeTimeout bounds how long a fresh connection may take to
	// complete its handshake (0: 10s default, negative: no limit) — a
	// stalled or port-scanning peer cannot pin a goroutine.
	HandshakeTimeout time.Duration

	// IdleTimeout bounds the silence between frames on an established
	// connection (0: 2m default, negative: no limit).
	IdleTimeout time.Duration

	// AckTimeout bounds acknowledgement writes (0: 10s default,
	// negative: no limit).
	AckTimeout time.Duration
}

// timeout resolves an Options duration: zero takes the default, negative
// disables the deadline.
func timeout(d, def time.Duration) time.Duration {
	if d == 0 {
		return def
	}
	if d < 0 {
		return 0
	}
	return d
}

// Server accepts sensor connections and routes their transmissions into a
// Station.
type Server struct {
	st        *station.Station
	ln        net.Listener
	obs       FrameObserver
	met       *Metrics
	log       *slog.Logger
	tracer    *trace.Recorder
	maxConns  int
	shedDepth int
	degraded  func() bool
	retryHint time.Duration

	hsTimeout time.Duration
	idle      time.Duration
	ackWait   time.Duration

	wg       sync.WaitGroup
	draining atomic.Bool
	inflight atomic.Int64
	lnOnce   sync.Once
	lnErr    error

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and serving
// connections in the background. Close shuts it down.
func Serve(st *station.Station, addr string) (*Server, error) {
	return ServeWith(st, addr, Options{})
}

// ServeObserved is Serve with a frame observer: every frame the station
// accepts is also handed, raw, to obs — the hook cmd/stationd uses to
// persist per-sensor append-only logs.
func ServeObserved(st *station.Station, addr string, obs FrameObserver) (*Server, error) {
	return ServeWith(st, addr, Options{Observer: obs})
}

// ServeWith is the fully configured constructor: observer, transport
// metrics, structured logging, connection caps and deadlines in one
// Options bundle.
func ServeWith(st *station.Station, addr string, opt Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netio: listen: %w", err)
	}
	met := opt.Metrics
	if met == nil {
		met = &Metrics{}
	}
	s := &Server{
		st:        st,
		ln:        ln,
		obs:       opt.Observer,
		met:       met,
		log:       obs.Component(opt.Logger, "netio"),
		tracer:    opt.Tracer,
		maxConns:  opt.MaxConns,
		shedDepth: opt.ShedQueueDepth,
		degraded:  opt.ArchiveDegraded,
		retryHint: opt.RetryAfter,
		hsTimeout: timeout(opt.HandshakeTimeout, defaultHandshakeTimeout),
		idle:      timeout(opt.IdleTimeout, defaultIdleTimeout),
		ackWait:   timeout(opt.AckTimeout, defaultAckTimeout),
		conns:     make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// closeListener stops accepting exactly once.
func (s *Server) closeListener() error {
	s.lnOnce.Do(func() { s.lnErr = s.ln.Close() })
	return s.lnErr
}

// Close stops accepting, force-closes active connections, and waits for
// their handlers to finish. Shutdown is the graceful alternative.
func (s *Server) Close() error {
	s.draining.Store(true)
	err := s.closeListener()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Shutdown stops accepting and drains gracefully: every connection
// finishes the frame it is handling — including its acknowledgement —
// before closing, so no sensor loses an ack for work the station already
// did. Connections idle in a read are woken immediately. When ctx expires
// first, the stragglers are force-closed and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.closeListener()
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now()) //nolint:errcheck — best-effort wake
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
		return ctx.Err()
	}
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) numConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Draining reports whether the server has begun shutting down — the
// readiness probe's first question.
func (s *Server) Draining() bool { return s.draining.Load() }

// Inflight reports how many frames are currently inside the station
// handle across all connections.
func (s *Server) Inflight() int { return int(s.inflight.Load()) }

// Conns reports the number of tracked sensor connections.
func (s *Server) Conns() int { return s.numConns() }

// OverWatermark reports whether admission control would shed a new
// arrival right now, and why ("" when admitting). The readiness probe
// shares this logic so /readyz flips 503 exactly when sensors start
// seeing busy acks.
func (s *Server) OverWatermark() (reason string) {
	switch {
	case s.degraded != nil && s.degraded():
		return "degraded"
	case s.shedDepth > 0 && s.Inflight() >= s.shedDepth:
		return "queue"
	case s.maxConns > 0 && s.numConns() >= s.maxConns:
		return "cap"
	}
	return ""
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if reason := s.OverWatermark(); reason != "" {
			s.shed(conn, reason)
			continue
		}
		s.wg.Add(1)
		s.track(conn)
		go func() {
			defer func() {
				// Panic isolation: one poisoned frame handler kills its own
				// connection, never the listener. The panicking frame is NOT
				// acked, so the sensor retransmits it; a frame that panics
				// deterministically exhausts the client's per-frame attempts
				// and turns that one client terminal, which is the blast
				// radius we want. This recover is declared after the close
				// and untrack defers, so it runs before them and they still
				// clean up.
				if r := recover(); r != nil {
					s.met.ConnPanics.Inc()
					s.log.Error("frame handler panicked; connection dropped",
						"remote", conn.RemoteAddr().String(), "panic", fmt.Sprint(r))
				}
			}()
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// shed turns an arrival away gracefully: one busy acknowledgement —
// carrying the configured retry-after hint in its sequence field — so
// the sensor backs off knowingly. The farewell runs in its own bounded
// goroutine so a dead peer cannot stall the accept loop, and it
// half-closes then drains instead of closing outright — an immediate
// close could reset the connection and destroy the unread busy ack in
// the peer's receive buffer. Shed connections are tracked, so they
// count against the cap until gone and Close/Shutdown reach them.
func (s *Server) shed(conn net.Conn, reason string) {
	s.met.ConnsShed.Inc()
	switch reason {
	case "queue":
		s.met.ShedQueue.Inc()
	case "degraded":
		s.met.ShedDegraded.Inc()
	default:
		s.met.ShedCap.Inc()
	}
	s.log.Warn("connection shed", "reason", reason,
		"remote", conn.RemoteAddr().String(), "max_conns", s.maxConns,
		"inflight", s.Inflight())
	s.wg.Add(1)
	s.track(conn)
	go func() {
		defer s.wg.Done()
		defer s.untrack(conn)
		defer conn.Close()
		if s.ackWait > 0 {
			conn.SetDeadline(time.Now().Add(s.ackWait)) //nolint:errcheck
		}
		var buf [1 + binary.MaxVarintLen64]byte
		buf[0] = ackBusy
		n := binary.PutUvarint(buf[1:], uint64(s.retryHint.Milliseconds()))
		if _, err := conn.Write(buf[:1+n]); err != nil {
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite() //nolint:errcheck
		}
		io.Copy(io.Discard, conn) //nolint:errcheck — drain until the peer closes
	}()
}

// isTimeout reports whether err is a network deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// serveConn handles one sensor: handshake, then frames until EOF or
// error. Every failure is counted under its rejection reason and logged
// with the sensor and remote address — a misbehaving sensor in a large
// deployment must be findable from telemetry, not from a silent return.
func (s *Server) serveConn(conn net.Conn) {
	remote := conn.RemoteAddr().String()
	s.met.ConnsTotal.Inc()
	s.met.ConnsOpen.Add(1)
	defer s.met.ConnsOpen.Add(-1)

	if s.draining.Load() {
		return
	}
	if s.hsTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.hsTimeout)) //nolint:errcheck
	}
	br := bufio.NewReader(conn)
	id, src, proto, err := readHandshake(br)
	if err != nil {
		if err != io.EOF { // bare connect-and-close (port probe) is not a protocol error
			s.met.RejectHandshake.Inc()
			s.log.Warn("handshake failed", "remote", remote, "err", err)
		}
		return
	}
	if proto >= protoV3 {
		// Answer the negotiation: a trace-aware client is waiting to learn
		// whether its frames may keep their trace headers.
		if !s.writeAck(conn, ackHello, wire.VersionTraced, id, remote) {
			return
		}
	}
	s.log.Debug("sensor connected", "sensor", id, "remote", remote, "proto", proto)
	for {
		if s.draining.Load() {
			s.log.Debug("connection drained", "sensor", id, "remote", remote)
			return
		}
		if s.idle > 0 {
			conn.SetReadDeadline(time.Now().Add(s.idle)) //nolint:errcheck
		} else {
			conn.SetReadDeadline(time.Time{}) //nolint:errcheck
		}
		if s.draining.Load() { // re-check: Shutdown may have raced the deadline reset
			s.log.Debug("connection drained", "sensor", id, "remote", remote)
			return
		}
		frame, err := wire.ReadFrame(br)
		if err == io.EOF {
			s.log.Debug("sensor disconnected", "sensor", id, "remote", remote)
			return
		}
		if err != nil {
			if s.draining.Load() {
				s.log.Debug("connection drained", "sensor", id, "remote", remote)
				return
			}
			if isTimeout(err) {
				s.log.Warn("idle connection closed", "sensor", id, "remote", remote)
				return
			}
			s.met.RejectDecode.Inc()
			s.log.Warn("frame decode failed", "sensor", id, "remote", remote, "err", err)
			s.writeAck(conn, ackError, 0, id, remote)
			return
		}
		seq, err := wire.FrameSeq(frame)
		if err != nil {
			s.met.RejectDecode.Inc()
			s.log.Warn("frame header invalid", "sensor", id, "remote", remote, "err", err)
			s.writeAck(conn, ackError, 0, id, remote)
			return
		}
		// One receive span per sampled traced frame, covering the station
		// handle and the acknowledgement write. FrameTrace is only peeked
		// when a tracer is installed, so the untraced path pays one nil
		// check here.
		var rsp *trace.Span
		if s.tracer != nil {
			if tc := wire.FrameTrace(frame); tc.Sampled {
				tr := s.tracer.Continue(trace.ID(tc.ID), id)
				rsp = tr.StartSpan("netio.recv")
				rsp.AnnotateInt("seq", int64(seq))
				rsp.AnnotateInt("bytes", int64(len(frame)))
			}
		}
		start := time.Now()
		switch err := s.handle(id, src, frame); {
		case err == nil:
		case errors.Is(err, station.ErrDuplicate):
			// Retransmission of a frame the station already holds: the ack
			// was lost, not the frame. Re-ack OK so delivery is idempotent;
			// skip the observer so the on-disk log stays exactly-once.
			s.met.DupFrames.Inc()
			s.log.Debug("duplicate frame re-acked", "sensor", id, "remote", remote, "seq", seq)
			rsp.Annotate("duplicate", "true")
			ok := s.writeAck(conn, ackOK, seq, id, remote)
			rsp.End()
			rsp.Trace().Finish()
			if !ok {
				return
			}
			continue
		default:
			s.met.RejectReceive.Inc()
			s.log.Warn("station rejected frame", "sensor", id, "remote", remote, "err", err)
			rsp.Annotate("rejected", err.Error())
			s.writeAck(conn, ackError, seq, id, remote)
			rsp.End()
			rsp.Trace().Finish()
			return
		}
		s.met.FramesAccepted.Inc()
		s.met.BytesIn.Add(uint64(len(frame)))
		s.met.FrameSeconds.Observe(time.Since(start).Seconds())
		if s.obs != nil {
			s.obs(id, frame)
		}
		ok := s.writeAck(conn, ackOK, seq, id, remote)
		rsp.End()
		rsp.Trace().Finish()
		if !ok {
			return
		}
	}
}

// handle runs one frame through the station under inflight accounting —
// the depth ShedQueueDepth watches. The deferred decrement keeps the
// count truthful even when the station handler panics (the connection's
// recover then isolates the blast).
func (s *Server) handle(id string, src uint64, frame []byte) error {
	s.inflight.Add(1)
	s.met.Inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.met.Inflight.Add(-1)
	}()
	return s.st.ReceiveFrameFrom(id, src, frame)
}

// writeAck ships one acknowledgement record — status byte plus the
// uvarint sequence it refers to — under the ack write deadline. A failed
// write is counted and logged, and the connection closes: the reliable
// client treats the missing ack as a lost link, reconnects, and
// retransmits; the station then recognises the duplicate and this ack is
// retried, so the contract survives an ack loss in either direction.
func (s *Server) writeAck(conn net.Conn, status byte, seq int, id, remote string) bool {
	var buf [1 + binary.MaxVarintLen64]byte
	buf[0] = status
	n := binary.PutUvarint(buf[1:], uint64(seq))
	if s.ackWait > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.ackWait)) //nolint:errcheck
	}
	if _, err := conn.Write(buf[:1+n]); err != nil {
		s.met.AckErrors.Inc()
		s.log.Warn("ack write failed", "sensor", id, "remote", remote, "err", err)
		return false
	}
	return true
}

// readHandshake validates the magic and reads the sensor ID and the
// transport incarnation nonce. The magic chooses the protocol version:
// "SBRS" is v2, "SBR3" announces a trace-aware client expecting a hello.
func readHandshake(r *bufio.Reader) (id string, nonce uint64, proto int, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return "", 0, 0, err
	}
	switch magic {
	case handshakeMagic:
		proto = protoV2
	case handshakeMagicV3:
		proto = protoV3
	default:
		return "", 0, 0, errors.New("netio: bad handshake magic")
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", 0, 0, err
	}
	if n == 0 || n > maxIDLen {
		return "", 0, 0, fmt.Errorf("netio: sensor ID length %d out of range", n)
	}
	idb := make([]byte, n)
	if _, err := io.ReadFull(r, idb); err != nil {
		return "", 0, 0, err
	}
	var nb [8]byte
	if _, err := io.ReadFull(r, nb[:]); err != nil {
		return "", 0, 0, fmt.Errorf("netio: reading incarnation nonce: %w", err)
	}
	return string(idb), binary.LittleEndian.Uint64(nb[:]), proto, nil
}

// writeHandshake ships the magic, ID and incarnation nonce; errors
// surface at Flush.
func writeHandshake(bw *bufio.Writer, magic [4]byte, sensorID string, nonce uint64) {
	bw.Write(magic[:]) //nolint:errcheck — surfaced by Flush
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(sensorID)))
	bw.Write(buf[:n])        //nolint:errcheck
	bw.WriteString(sensorID) //nolint:errcheck
	var nb [8]byte
	binary.LittleEndian.PutUint64(nb[:], nonce)
	bw.Write(nb[:]) //nolint:errcheck
}

// newNonce draws a non-zero incarnation nonce (zero means "unknown" on
// the wire).
func newNonce() uint64 {
	for {
		if n := rand.Uint64(); n != 0 {
			return n
		}
	}
}

// readAck reads one acknowledgement record from the stream.
func readAck(br *bufio.Reader) (status byte, seq int, err error) {
	status, err = br.ReadByte()
	if err != nil {
		return 0, 0, fmt.Errorf("netio: reading ack: %w", err)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, fmt.Errorf("netio: reading ack sequence: %w", err)
	}
	return status, int(n), nil
}

// dialAndShake opens one TCP connection with a connect timeout and
// keepalives and performs the v2 handshake.
func dialAndShake(dial func(addr string) (net.Conn, error), addr, sensorID string, nonce uint64) (net.Conn, error) {
	conn, err := dialRaw(dial, addr)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(conn)
	writeHandshake(bw, handshakeMagic, sensorID, nonce)
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netio: handshake: %w", err)
	}
	return conn, nil
}

// dialRaw dials and arms keepalives.
func dialRaw(dial func(addr string) (net.Conn, error), addr string) (net.Conn, error) {
	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("netio: dial: %w", err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)                  //nolint:errcheck — advisory
		tc.SetKeepAlivePeriod(keepalivePeriod) //nolint:errcheck
	}
	return conn, nil
}

// dialAndShakeNegotiated opens a connection with the v3 handshake and
// waits (under helloWait) for the server's hello. A peer that closes or
// stays silent instead of answering is taken for a v2-only server: the
// connection is redialled with the v2 magic within the same attempt, and
// the caller learns proto = 2 — its cue to strip trace headers from
// everything it writes on this connection. The returned bufio.Reader has
// consumed the hello and must be kept as the connection's ack reader. A
// busy shed (the server's capacity farewell) surfaces as ErrBusy exactly
// as it would mid-stream.
func dialAndShakeNegotiated(dial func(addr string) (net.Conn, error), addr, sensorID string, nonce uint64, helloWait time.Duration) (net.Conn, *bufio.Reader, int, error) {
	conn, err := dialRaw(dial, addr)
	if err != nil {
		return nil, nil, 0, err
	}
	bw := bufio.NewWriter(conn)
	writeHandshake(bw, handshakeMagicV3, sensorID, nonce)
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, nil, 0, fmt.Errorf("netio: handshake: %w", err)
	}
	br := bufio.NewReader(conn)
	if helloWait > 0 {
		conn.SetReadDeadline(time.Now().Add(helloWait)) //nolint:errcheck
	}
	status, ver, err := readAck(br)
	if helloWait > 0 {
		conn.SetReadDeadline(time.Time{}) //nolint:errcheck
	}
	switch {
	case err != nil:
		// No hello: a v2 server rejected the "SBR3" magic (or never heard
		// of hellos). Fall back to the v2 handshake on a fresh connection.
		conn.Close()
		conn, err = dialAndShake(dial, addr, sensorID, nonce)
		if err != nil {
			return nil, nil, 0, err
		}
		return conn, bufio.NewReader(conn), protoV2, nil
	case status == ackBusy:
		// The seq field of a busy ack carries the server's retry-after
		// hint in milliseconds (0: none); surface it so the reliable
		// client can floor its next backoff on the server's estimate.
		conn.Close()
		return nil, nil, 0, &busyError{after: time.Duration(ver) * time.Millisecond}
	case status != ackHello:
		conn.Close()
		return nil, nil, 0, fmt.Errorf("netio: expected hello, got ack status 0x%02x", status)
	case ver < protoV3:
		return conn, br, protoV2, nil
	default:
		return conn, br, protoV3, nil
	}
}

// Client is the minimal sensor-side transport: synchronous sends, no
// retries, terminal on the first failure. Use ReliableClient over links
// that actually lose packets. Not safe for concurrent use: a sensor has
// one radio.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	err  error // sticky terminal state
}

// Dial connects to a station server and identifies as sensorID, with the
// default connect timeout and TCP keepalives enabled.
func Dial(addr, sensorID string) (*Client, error) {
	return DialTimeout(addr, sensorID, defaultDialTimeout)
}

// DialTimeout is Dial with an explicit connect timeout.
func DialTimeout(addr, sensorID string, d time.Duration) (*Client, error) {
	if sensorID == "" || len(sensorID) > maxIDLen {
		return nil, fmt.Errorf("netio: sensor ID length %d out of range", len(sensorID))
	}
	conn, err := dialAndShake(func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, d)
	}, addr, sensorID, newNonce())
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, bw: bufio.NewWriter(conn), br: bufio.NewReader(conn)}, nil
}

// Send ships one wire frame and waits for the acknowledgement. Any
// failure — including a station rejection, after which the server closes
// the connection — is terminal: the client closes its side and every
// later Send reports ErrClientClosed joined with the original cause,
// instead of scribbling on a dead connection.
func (c *Client) Send(frame []byte) error {
	if c.err != nil {
		return c.err
	}
	if _, err := c.bw.Write(frame); err != nil {
		return c.fail(fmt.Errorf("netio: send: %w", err))
	}
	if err := c.bw.Flush(); err != nil {
		return c.fail(fmt.Errorf("netio: send: %w", err))
	}
	status, _, err := readAck(c.br)
	if err != nil {
		return c.fail(err)
	}
	switch status {
	case ackOK:
		return nil
	case ackBusy:
		return c.fail(ErrBusy)
	case ackError:
		return c.fail(ErrRejected)
	default:
		return c.fail(fmt.Errorf("netio: unknown ack status 0x%02x", status))
	}
}

// fail closes the connection and records the terminal state, returning
// the original error for this call.
func (c *Client) fail(err error) error {
	c.err = errors.Join(ErrClientClosed, err)
	c.conn.Close()
	return err
}

// Close closes the connection; later sends report ErrClientClosed.
func (c *Client) Close() error {
	if c.err == nil {
		c.err = ErrClientClosed
	}
	return c.conn.Close()
}
