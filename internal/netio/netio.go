// Package netio carries SBR transmissions over TCP: a base-station server
// that accepts many concurrent sensor connections and feeds every decoded
// frame into a station.Station, and a sensor-side client that streams wire
// frames with per-frame acknowledgements. The protocol is deliberately
// minimal — a handshake naming the sensor, then a sequence of the same
// framed transmissions internal/wire defines, each answered by one status
// byte — because the interesting reliability machinery (checksums, replica
// consistency) already lives in the frame format and the decoder.
package netio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"sbr/internal/station"
	"sbr/internal/wire"
)

// Protocol constants.
var handshakeMagic = [4]byte{'S', 'B', 'R', 'S'}

const (
	ackOK    byte = 0x06 // frame decoded and logged
	ackError byte = 0x15 // frame rejected; the connection closes after this
	maxIDLen      = 256
)

// ErrRejected is returned by Client.Send when the station refused the
// frame (decode failure, out-of-order sequence, shape change…).
var ErrRejected = errors.New("netio: station rejected the frame")

// FrameObserver sees the raw bytes of every frame a station accepted, in
// arrival order per sensor. Observers must be safe for concurrent calls
// (one per connection); the station log persister is the typical use.
type FrameObserver func(id string, frame []byte)

// Server accepts sensor connections and routes their transmissions into a
// Station.
type Server struct {
	st  *station.Station
	ln  net.Listener
	obs FrameObserver
	wg  sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and serving
// connections in the background. Close shuts it down.
func Serve(st *station.Station, addr string) (*Server, error) {
	return ServeObserved(st, addr, nil)
}

// ServeObserved is Serve with a frame observer: every frame the station
// accepts is also handed, raw, to obs — the hook cmd/stationd uses to
// persist per-sensor append-only logs.
func ServeObserved(st *station.Station, addr string, obs FrameObserver) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netio: listen: %w", err)
	}
	s := &Server{st: st, ln: ln, obs: obs, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes active connections, and waits for their
// handlers to finish.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		s.track(conn)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one sensor: handshake, then frames until EOF or error.
func (s *Server) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	id, err := readHandshake(br)
	if err != nil {
		return
	}
	for {
		frame, err := wire.ReadFrame(br)
		if err == io.EOF {
			return
		}
		if err != nil {
			conn.Write([]byte{ackError}) //nolint:errcheck — closing anyway
			return
		}
		if err := s.st.ReceiveFrame(id, frame); err != nil {
			conn.Write([]byte{ackError}) //nolint:errcheck
			return
		}
		if s.obs != nil {
			s.obs(id, frame)
		}
		if _, err := conn.Write([]byte{ackOK}); err != nil {
			return
		}
	}
}

// readHandshake validates the magic and reads the sensor ID.
func readHandshake(r *bufio.Reader) (string, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return "", err
	}
	if magic != handshakeMagic {
		return "", errors.New("netio: bad handshake magic")
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n == 0 || n > maxIDLen {
		return "", fmt.Errorf("netio: sensor ID length %d out of range", n)
	}
	id := make([]byte, n)
	if _, err := io.ReadFull(r, id); err != nil {
		return "", err
	}
	return string(id), nil
}

// Client is the sensor side of the transport. Not safe for concurrent use:
// a sensor has one radio.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
}

// Dial connects to a station server and identifies as sensorID.
func Dial(addr, sensorID string) (*Client, error) {
	if sensorID == "" || len(sensorID) > maxIDLen {
		return nil, fmt.Errorf("netio: sensor ID length %d out of range", len(sensorID))
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netio: dial: %w", err)
	}
	c := &Client{conn: conn, bw: bufio.NewWriter(conn), br: bufio.NewReader(conn)}
	c.bw.Write(handshakeMagic[:]) //nolint:errcheck — surfaced by Flush
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(sensorID)))
	c.bw.Write(buf[:n])        //nolint:errcheck
	c.bw.WriteString(sensorID) //nolint:errcheck
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netio: handshake: %w", err)
	}
	return c, nil
}

// Send ships one wire frame and waits for the acknowledgement.
func (c *Client) Send(frame []byte) error {
	if _, err := c.bw.Write(frame); err != nil {
		return fmt.Errorf("netio: send: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("netio: send: %w", err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(c.br, ack[:]); err != nil {
		return fmt.Errorf("netio: reading ack: %w", err)
	}
	if ack[0] != ackOK {
		return ErrRejected
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
