// Package netio carries SBR transmissions over TCP: a base-station server
// that accepts many concurrent sensor connections and feeds every decoded
// frame into a station.Station, and a sensor-side client that streams wire
// frames with per-frame acknowledgements. The protocol is deliberately
// minimal — a handshake naming the sensor, then a sequence of the same
// framed transmissions internal/wire defines, each answered by one status
// byte — because the interesting reliability machinery (checksums, replica
// consistency) already lives in the frame format and the decoder.
package netio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"sbr/internal/obs"
	"sbr/internal/station"
	"sbr/internal/wire"
)

// Protocol constants.
var handshakeMagic = [4]byte{'S', 'B', 'R', 'S'}

const (
	ackOK    byte = 0x06 // frame decoded and logged
	ackError byte = 0x15 // frame rejected; the connection closes after this
	maxIDLen      = 256
)

// ErrRejected is returned by Client.Send when the station refused the
// frame (decode failure, out-of-order sequence, shape change…).
var ErrRejected = errors.New("netio: station rejected the frame")

// FrameObserver sees the raw bytes of every frame a station accepted, in
// arrival order per sensor. Observers must be safe for concurrent calls
// (one per connection); the station log persister is the typical use.
type FrameObserver func(id string, frame []byte)

// Metrics is the transport-layer telemetry. Build one with NewMetrics;
// every field is a nil-safe obs metric, so the zero value (or a Metrics
// built against a nil registry) instruments nothing at almost no cost.
type Metrics struct {
	ConnsOpen       *obs.Gauge     // sensor connections currently open
	ConnsTotal      *obs.Counter   // connections accepted since start
	FramesAccepted  *obs.Counter   // frames decoded, logged and acked OK
	BytesIn         *obs.Counter   // raw bytes of accepted frames
	FrameSeconds    *obs.Histogram // per-frame station handle latency
	RejectHandshake *obs.Counter   // connections dropped at the handshake
	RejectDecode    *obs.Counter   // frames dropped by wire decoding
	RejectReceive   *obs.Counter   // frames the station refused
	AckErrors       *obs.Counter   // acknowledgement writes that failed
}

// NewMetrics registers the transport metrics on reg (nil: no-op metrics).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		ConnsOpen:       reg.Gauge("sbr_netio_connections_open", "Sensor connections currently open."),
		ConnsTotal:      reg.Counter("sbr_netio_connections_total", "Sensor connections accepted since start."),
		FramesAccepted:  reg.Counter("sbr_netio_frames_accepted_total", "Frames decoded, logged and acknowledged."),
		BytesIn:         reg.Counter("sbr_netio_bytes_in_total", "Raw bytes of accepted frames."),
		FrameSeconds:    reg.Histogram("sbr_netio_frame_seconds", "Station handle latency per frame.", obs.LatencyBuckets),
		RejectHandshake: reg.Counter("sbr_netio_frames_rejected_total", "Frames or connections rejected, by reason.", obs.L("reason", "handshake")),
		RejectDecode:    reg.Counter("sbr_netio_frames_rejected_total", "Frames or connections rejected, by reason.", obs.L("reason", "decode")),
		RejectReceive:   reg.Counter("sbr_netio_frames_rejected_total", "Frames or connections rejected, by reason.", obs.L("reason", "receive")),
		AckErrors:       reg.Counter("sbr_netio_ack_errors_total", "Acknowledgement writes that failed."),
	}
}

// Options configures ServeWith beyond the required station and address.
type Options struct {
	Observer FrameObserver // raw accepted frames, e.g. the log persister
	Metrics  *Metrics      // transport telemetry (nil: uninstrumented)
	Logger   *slog.Logger  // structured events (nil: discard)
}

// Server accepts sensor connections and routes their transmissions into a
// Station.
type Server struct {
	st  *station.Station
	ln  net.Listener
	obs FrameObserver
	met *Metrics
	log *slog.Logger
	wg  sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and serving
// connections in the background. Close shuts it down.
func Serve(st *station.Station, addr string) (*Server, error) {
	return ServeWith(st, addr, Options{})
}

// ServeObserved is Serve with a frame observer: every frame the station
// accepts is also handed, raw, to obs — the hook cmd/stationd uses to
// persist per-sensor append-only logs.
func ServeObserved(st *station.Station, addr string, obs FrameObserver) (*Server, error) {
	return ServeWith(st, addr, Options{Observer: obs})
}

// ServeWith is the fully configured constructor: observer, transport
// metrics and structured logging in one Options bundle.
func ServeWith(st *station.Station, addr string, opt Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netio: listen: %w", err)
	}
	met := opt.Metrics
	if met == nil {
		met = &Metrics{}
	}
	s := &Server{
		st:    st,
		ln:    ln,
		obs:   opt.Observer,
		met:   met,
		log:   obs.Component(opt.Logger, "netio"),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes active connections, and waits for their
// handlers to finish.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		s.track(conn)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one sensor: handshake, then frames until EOF or
// error. Every failure is counted under its rejection reason and logged
// with the sensor and remote address — a misbehaving sensor in a large
// deployment must be findable from telemetry, not from a silent return.
func (s *Server) serveConn(conn net.Conn) {
	remote := conn.RemoteAddr().String()
	s.met.ConnsTotal.Inc()
	s.met.ConnsOpen.Add(1)
	defer s.met.ConnsOpen.Add(-1)

	br := bufio.NewReader(conn)
	id, err := readHandshake(br)
	if err != nil {
		if err != io.EOF { // bare connect-and-close (port probe) is not a protocol error
			s.met.RejectHandshake.Inc()
			s.log.Warn("handshake failed", "remote", remote, "err", err)
		}
		return
	}
	s.log.Debug("sensor connected", "sensor", id, "remote", remote)
	for {
		frame, err := wire.ReadFrame(br)
		if err == io.EOF {
			s.log.Debug("sensor disconnected", "sensor", id, "remote", remote)
			return
		}
		if err != nil {
			s.met.RejectDecode.Inc()
			s.log.Warn("frame decode failed", "sensor", id, "remote", remote, "err", err)
			s.writeAck(conn, ackError, id, remote)
			return
		}
		start := time.Now()
		if err := s.st.ReceiveFrame(id, frame); err != nil {
			s.met.RejectReceive.Inc()
			s.log.Warn("station rejected frame", "sensor", id, "remote", remote, "err", err)
			s.writeAck(conn, ackError, id, remote)
			return
		}
		s.met.FramesAccepted.Inc()
		s.met.BytesIn.Add(uint64(len(frame)))
		s.met.FrameSeconds.Observe(time.Since(start).Seconds())
		if s.obs != nil {
			s.obs(id, frame)
		}
		if !s.writeAck(conn, ackOK, id, remote) {
			return
		}
	}
}

// writeAck ships one status byte; a failed write is counted and logged
// (the sensor will retransmit after its own timeout) instead of being
// dropped on the floor.
func (s *Server) writeAck(conn net.Conn, status byte, id, remote string) bool {
	if _, err := conn.Write([]byte{status}); err != nil {
		s.met.AckErrors.Inc()
		s.log.Warn("ack write failed", "sensor", id, "remote", remote, "err", err)
		return false
	}
	return true
}

// readHandshake validates the magic and reads the sensor ID.
func readHandshake(r *bufio.Reader) (string, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return "", err
	}
	if magic != handshakeMagic {
		return "", errors.New("netio: bad handshake magic")
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n == 0 || n > maxIDLen {
		return "", fmt.Errorf("netio: sensor ID length %d out of range", n)
	}
	id := make([]byte, n)
	if _, err := io.ReadFull(r, id); err != nil {
		return "", err
	}
	return string(id), nil
}

// Client is the sensor side of the transport. Not safe for concurrent use:
// a sensor has one radio.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
}

// Dial connects to a station server and identifies as sensorID.
func Dial(addr, sensorID string) (*Client, error) {
	if sensorID == "" || len(sensorID) > maxIDLen {
		return nil, fmt.Errorf("netio: sensor ID length %d out of range", len(sensorID))
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netio: dial: %w", err)
	}
	c := &Client{conn: conn, bw: bufio.NewWriter(conn), br: bufio.NewReader(conn)}
	c.bw.Write(handshakeMagic[:]) //nolint:errcheck — surfaced by Flush
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(sensorID)))
	c.bw.Write(buf[:n])        //nolint:errcheck
	c.bw.WriteString(sensorID) //nolint:errcheck
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netio: handshake: %w", err)
	}
	return c, nil
}

// Send ships one wire frame and waits for the acknowledgement.
func (c *Client) Send(frame []byte) error {
	if _, err := c.bw.Write(frame); err != nil {
		return fmt.Errorf("netio: send: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("netio: send: %w", err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(c.br, ack[:]); err != nil {
		return fmt.Errorf("netio: reading ack: %w", err)
	}
	if ack[0] != ackOK {
		return ErrRejected
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
