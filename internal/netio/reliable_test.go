package netio

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"sbr/internal/core"
	"sbr/internal/faultnet"
	"sbr/internal/metrics"
	"sbr/internal/obs"
	"sbr/internal/station"
	"sbr/internal/timeseries"
	"sbr/internal/wire"
)

// chaosConfig keeps frames tiny so the chaos tests can stream thousands.
func chaosConfig() core.Config {
	return core.Config{TotalBand: 8, MBase: 8, Metric: metrics.SSE}
}

// encodeFrames pre-encodes n deterministic single-quantity frames so the
// fault-free baseline and the faulted run replay byte-identical input.
func encodeFrames(t *testing.T, cfg core.Config, n, batchLen int) [][]byte {
	t.Helper()
	comp, err := core.NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, 0, n)
	for b := 0; b < n; b++ {
		row := make(timeseries.Series, batchLen)
		for i := range row {
			x := float64(b*batchLen+i) / 9
			row[i] = 3*math.Sin(x) + 0.5*math.Cos(5*x)
		}
		tr, err := comp.Encode([]timeseries.Series{row})
		if err != nil {
			t.Fatal(err)
		}
		frame, err := wire.Encode(tr)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
	}
	return frames
}

// newStation builds a station for cfg or fails the test.
func newStation(t *testing.T, cfg core.Config) *station.Station {
	t.Helper()
	st, err := station.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDuplicateFrameReAcked: a retransmitted, already-accepted frame must
// be re-acknowledged OK — the ack was lost, not the frame — instead of
// killing the connection as out-of-order.
func TestDuplicateFrameReAcked(t *testing.T) {
	cfg := chaosConfig()
	st := newStation(t, cfg)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	srv, err := ServeWith(st, "127.0.0.1:0", Options{Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	frames := encodeFrames(t, cfg, 2, 16)
	client, err := Dial(srv.Addr(), "dup-node")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Send(frames[0]); err != nil {
		t.Fatalf("first send: %v", err)
	}
	// The same bytes again, same connection: the station already holds
	// seq 0 from this incarnation, so this is a retransmission.
	if err := client.Send(frames[0]); err != nil {
		t.Fatalf("duplicate send not re-acked: %v", err)
	}
	// The link must still work for fresh frames.
	if err := client.Send(frames[1]); err != nil {
		t.Fatalf("send after duplicate: %v", err)
	}

	stats, err := st.SensorStats("dup-node")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmissions != 2 {
		t.Errorf("station holds %d transmissions, want 2 (duplicate must not double-count)", stats.Transmissions)
	}
	if got := met.DupFrames.Value(); got != 1 {
		t.Errorf("duplicate metric = %d, want 1", got)
	}
}

// TestMaxConnsShed: arrivals beyond the cap get one busy ack and a close,
// and the shed is counted.
func TestMaxConnsShed(t *testing.T) {
	cfg := chaosConfig()
	st := newStation(t, cfg)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	srv, err := ServeWith(st, "127.0.0.1:0", Options{Metrics: met, MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	frames := encodeFrames(t, cfg, 1, 16)
	first, err := Dial(srv.Addr(), "holder")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	// A round-trip guarantees the first connection is accepted and
	// tracked before the second arrives.
	if err := first.Send(frames[0]); err != nil {
		t.Fatal(err)
	}

	second, err := Dial(srv.Addr(), "shed-me")
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if err := second.Send(frames[0]); !errors.Is(err, ErrBusy) {
		t.Errorf("over-cap send returned %v, want ErrBusy", err)
	}
	if got := met.ConnsShed.Value(); got != 1 {
		t.Errorf("shed metric = %d, want 1", got)
	}
}

// TestClientTerminalAfterReject: after a station rejection the server has
// closed the connection, so the client must turn terminal instead of
// scribbling on the dead socket.
func TestClientTerminalAfterReject(t *testing.T) {
	st := newStation(t, chaosConfig())
	srv, err := Serve(st, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr(), "reject-node")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Send([]byte("not a frame, but comfortably long enough")); !errors.Is(err, ErrRejected) {
		t.Fatalf("garbage send returned %v, want ErrRejected", err)
	}
	err = client.Send(encodeFrames(t, chaosConfig(), 1, 16)[0])
	if !errors.Is(err, ErrClientClosed) {
		t.Errorf("send after rejection returned %v, want ErrClientClosed", err)
	}
	if !errors.Is(err, ErrRejected) {
		t.Errorf("terminal error %v does not carry the original cause", err)
	}
}

// TestHandshakeTimeout: a connection that never completes its handshake
// is dropped when the deadline fires, not pinned forever.
func TestHandshakeTimeout(t *testing.T) {
	st := newStation(t, chaosConfig())
	srv, err := ServeWith(st, "127.0.0.1:0", Options{HandshakeTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err == nil || isTimeout(err) {
		t.Errorf("stalled handshake not dropped by the server: read err=%v", err)
	}
}

// TestIdleTimeout: an established connection that goes silent is closed
// once the idle deadline fires.
func TestIdleTimeout(t *testing.T) {
	cfg := chaosConfig()
	st := newStation(t, cfg)
	srv, err := ServeWith(st, "127.0.0.1:0", Options{IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr(), "idle-node")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	frames := encodeFrames(t, cfg, 2, 16)
	if err := client.Send(frames[0]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := client.Send(frames[1]); err == nil {
		t.Error("send on an idle-closed connection succeeded")
	}
}

// TestShutdownDrains: Shutdown wakes idle connections, lets in-flight
// work finish, and returns without force-closing when the context allows.
func TestShutdownDrains(t *testing.T) {
	cfg := chaosConfig()
	st := newStation(t, cfg)
	srv, err := Serve(st, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr(), "drain-node")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// The frame is fully handled and acked before Shutdown is called, so
	// the drain must not lose it.
	if err := client.Send(encodeFrames(t, cfg, 1, 16)[0]); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("drain of an idle connection took %v, want immediate wake", elapsed)
	}
	stats, err := st.SensorStats("drain-node")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmissions != 1 {
		t.Errorf("station lost the acked frame across Shutdown: %d transmissions", stats.Transmissions)
	}
	// New connections are refused after drain.
	if _, err := Dial(srv.Addr(), "late-node"); err == nil {
		t.Error("dial succeeded after Shutdown")
	}
}

// TestReliableReconnectAcrossRestart: the server dies mid-stream and
// comes back on the same address with the same station; the reliable
// client reconnects under backoff, retransmits its outbox, and every
// frame lands exactly once.
func TestReliableReconnectAcrossRestart(t *testing.T) {
	cfg := chaosConfig()
	st := newStation(t, cfg)
	srv, err := Serve(st, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	rc, err := NewReliable(addr, "phoenix", ReliableOptions{
		DialTimeout: time.Second,
		AckTimeout:  time.Second,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		MaxAttempts: 100,
		Metrics:     met,
		Rand:        rand.New(rand.NewSource(11)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const n = 12
	frames := encodeFrames(t, cfg, n, 16)
	for i, frame := range frames[:n/2] {
		if err := rc.Send(frame); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}

	// Kill the server, restart on the same address with the same station.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := Serve(st, addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer srv2.Close()

	for i, frame := range frames[n/2:] {
		if err := rc.Send(frame); err != nil {
			t.Fatalf("send %d after restart: %v", n/2+i, err)
		}
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}

	stats, err := st.SensorStats("phoenix")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmissions != n {
		t.Errorf("station holds %d transmissions, want %d", stats.Transmissions, n)
	}
	if stats.Restarts != 0 {
		t.Errorf("reconnect misread as a sensor reboot: %d restarts", stats.Restarts)
	}
	if met.Reconnects.Value() == 0 {
		t.Error("reconnect metric never moved")
	}
}

// TestChaosExactlyOnce is the headline robustness proof: hundreds of
// frames streamed through a link that drops, corrupts, duplicates,
// truncates, cuts, half-closes and delays traffic — and the station
// history must come out byte-identical to the fault-free run, with every
// frame delivered exactly once.
func TestChaosExactlyOnce(t *testing.T) {
	const (
		nFrames  = 400
		batchLen = 16
	)
	cfg := chaosConfig()
	frames := encodeFrames(t, cfg, nFrames, batchLen)

	// Fault-free baseline.
	baseline := newStation(t, cfg)
	for i, frame := range frames {
		if err := baseline.ReceiveFrame("chaos-node", frame); err != nil {
			t.Fatalf("baseline frame %d: %v", i, err)
		}
	}
	wantHist, err := baseline.History("chaos-node", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Faulted run: the injector sits on the client→server write path.
	inj := faultnet.New(faultnet.Config{
		Seed:      42,
		Drop:      0.010,
		Corrupt:   0.010,
		Duplicate: 0.020,
		Truncate:  0.006,
		Cut:       0.006,
		HalfClose: 0.004,
		Delay:     0.050,
		MaxDelay:  2 * time.Millisecond,
	})
	st := newStation(t, cfg)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	srv, err := ServeWith(st, "127.0.0.1:0", Options{
		Metrics:          met,
		HandshakeTimeout: time.Second,
		IdleTimeout:      5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rc, err := NewReliable(srv.Addr(), "chaos-node", ReliableOptions{
		Dial:        inj.Dialer(time.Second),
		AckTimeout:  200 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		MaxAttempts: 200,
		Window:      8,
		Metrics:     met,
		Rand:        rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, frame := range frames {
		if err := rc.Send(frame); err != nil {
			t.Fatalf("chaos send %d: %v (%s)", i, err, inj)
		}
	}
	if err := rc.Flush(); err != nil {
		t.Fatalf("chaos flush: %v (%s)", err, inj)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}

	t.Logf("%s; retries=%d reconnects=%d duplicates=%d",
		inj, met.Retries.Value(), met.Reconnects.Value(), met.DupFrames.Value())

	if inj.Injected() == 0 {
		t.Fatal("the fault injector never fired; the test proves nothing")
	}
	if met.Retries.Value() == 0 && met.Reconnects.Value() == 0 {
		t.Error("no retries or reconnects: the chaos schedule was too gentle")
	}

	stats, err := st.SensorStats("chaos-node")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmissions != nFrames {
		t.Errorf("station holds %d transmissions, want exactly %d", stats.Transmissions, nFrames)
	}
	gotHist, err := st.History("chaos-node", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotHist) != len(wantHist) {
		t.Fatalf("history length %d, want %d", len(gotHist), len(wantHist))
	}
	for i := range gotHist {
		if gotHist[i] != wantHist[i] {
			t.Fatalf("history diverges at %d: %v != %v", i, gotHist[i], wantHist[i])
		}
	}
}
