package netio

import (
	"bufio"
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"sbr/internal/faultnet"
	"sbr/internal/obs"
	"sbr/internal/obs/trace"
	"sbr/internal/wire"
)

// encodeTracedFrames wraps encodeFrames with per-frame sampled trace
// contexts, IDs 1..n — deterministic so tests can look each trace up.
func encodeTracedFrames(t *testing.T, n int) [][]byte {
	t.Helper()
	cfg := chaosConfig()
	plain := encodeFrames(t, cfg, n, 16)
	frames := make([][]byte, n)
	for i, frame := range plain {
		tr, err := wire.DecodeBytes(frame)
		if err != nil {
			t.Fatal(err)
		}
		traced, err := wire.EncodeTraced(tr, wire.TraceContext{ID: uint64(i + 1), Sampled: true})
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = traced
	}
	return frames
}

// TestChaosOneTracePerFrame is the tracing half of the chaos proof: frames
// whose delivery needed retransmissions and reconnects must still come out
// as ONE trace each — the send span and the receive span joined on the
// wire-propagated ID, the retries recorded as child spans — never as a
// fresh trace per attempt.
func TestChaosOneTracePerFrame(t *testing.T) {
	const nFrames = 120
	frames := encodeTracedFrames(t, nFrames)

	// Client and server share one recorder (one process), so Continue on
	// the same ID must join the halves into a single trace object.
	rec := trace.NewRecorder(trace.Options{Capacity: 2 * nFrames, MaxInflight: 2 * nFrames})
	st := newStation(t, chaosConfig())
	srv, err := ServeWith(st, "127.0.0.1:0", Options{
		Tracer:           rec,
		HandshakeTimeout: time.Second,
		IdleTimeout:      5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inj := faultnet.New(faultnet.Config{
		Seed:      9,
		Drop:      0.05,
		Duplicate: 0.03,
		Cut:       0.02,
		Delay:     0.05,
		MaxDelay:  2 * time.Millisecond,
	})
	met := NewMetrics(obs.NewRegistry())
	rc, err := NewReliable(srv.Addr(), "chaos-node", ReliableOptions{
		Dial:        inj.Dialer(time.Second),
		AckTimeout:  200 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		MaxAttempts: 200,
		Window:      8,
		Metrics:     met,
		Tracer:      rec,
		Rand:        rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, frame := range frames {
		if err := rc.Send(frame); err != nil {
			t.Fatalf("send %d: %v (%s)", i, err, inj)
		}
	}
	if err := rc.Flush(); err != nil {
		t.Fatalf("flush: %v (%s)", err, inj)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if met.Retries.Value() == 0 && met.Reconnects.Value() == 0 {
		t.Fatal("chaos schedule too gentle: no retries, the test proves nothing")
	}
	t.Logf("%s; retries=%d reconnects=%d", inj, met.Retries.Value(), met.Reconnects.Value())

	retried := 0
	for i := 1; i <= nFrames; i++ {
		tr := rec.Lookup(trace.ID(i))
		if tr == nil {
			t.Fatalf("trace %d lost", i)
		}
		tv := tr.Snapshot(true)
		stages := map[string]int{}
		var walk func(vs []*trace.SpanView)
		walk = func(vs []*trace.SpanView) {
			for _, v := range vs {
				stages[v.Stage]++
				walk(v.Children)
			}
		}
		walk(tv.Tree)
		// Exactly one send span and at least one receive span: a restarted
		// trace would show a second netio.send; a forked one would miss the
		// receive half entirely.
		if stages["netio.send"] != 1 {
			t.Errorf("trace %d has %d netio.send spans, want exactly 1", i, stages["netio.send"])
		}
		if stages["netio.recv"] == 0 {
			t.Errorf("trace %d has no netio.recv span: halves not joined", i)
		}
		if stages["netio.retry"] > 0 {
			retried++
		}
	}
	if int64(retried) == 0 && met.Retries.Value() > 0 {
		t.Error("retries happened but no trace carries a netio.retry span")
	}
	if got, _ := st.SensorStats("chaos-node"); got.Transmissions != nFrames {
		t.Errorf("station holds %d transmissions, want %d", got.Transmissions, nFrames)
	}
}

// serveV2Only is a minimal pre-trace server: it accepts only the "SBRS"
// handshake magic (closing on anything else, as an old binary would),
// acks every frame, and records the wire version byte of each frame seen.
func serveV2Only(t *testing.T, ln net.Listener, versions chan<- byte) {
	t.Helper()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			br := bufio.NewReader(conn)
			var magic [4]byte
			if _, err := io.ReadFull(br, magic[:]); err != nil || magic != handshakeMagic {
				return // unknown magic: a v2-only server just hangs up
			}
			n, err := binary.ReadUvarint(br)
			if err != nil || n == 0 || n > maxIDLen {
				return
			}
			if _, err := io.CopyN(io.Discard, br, int64(n)+8); err != nil {
				return // sensor ID + nonce
			}
			for {
				frame, err := wire.ReadFrame(br)
				if err != nil {
					return
				}
				versions <- frame[4]
				seq, err := wire.FrameSeq(frame)
				if err != nil {
					return
				}
				var buf [1 + binary.MaxVarintLen64]byte
				buf[0] = ackOK
				k := binary.PutUvarint(buf[1:], uint64(seq))
				if _, err := conn.Write(buf[:1+k]); err != nil {
					return
				}
			}
		}()
	}
}

// TestV3ClientFallsBackToV2Server: a trace-aware client against an old
// server must redial with the v2 handshake and strip trace headers from
// everything it writes — the data flows, the trace context is shed, and
// nothing errors.
func TestV3ClientFallsBackToV2Server(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	versions := make(chan byte, 16)
	go serveV2Only(t, ln, versions)

	rec := trace.NewRecorder(trace.Options{})
	rc, err := NewReliable(ln.Addr().String(), "old-peer-node", ReliableOptions{
		AckTimeout:  500 * time.Millisecond,
		BackoffBase: time.Millisecond,
		MaxAttempts: 8,
		Tracer:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	frames := encodeTracedFrames(t, 3)
	for i, frame := range frames {
		if err := rc.Send(frame); err != nil {
			t.Fatalf("send %d to v2 server: %v", i, err)
		}
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	if rc.proto != protoV2 {
		t.Errorf("negotiated proto %d, want fallback to %d", rc.proto, protoV2)
	}
	for i := 0; i < len(frames); i++ {
		select {
		case v := <-versions:
			if v != wire.Version {
				t.Errorf("frame %d arrived as version %d, want stripped v%d", i, v, wire.Version)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("v2 server saw only %d frames", i)
		}
	}
	// The traces still exist client-side — the send spans were recorded
	// before the headers were shed.
	if tr := rec.Lookup(1); tr == nil {
		t.Error("client-side trace lost in the fallback")
	}
}

// TestV2ClientAgainstTracedServer: an old client (plain v2 handshake, no
// hello expected) against a trace-enabled server must work unchanged —
// the server only sends its hello to peers that announced v3.
func TestV2ClientAgainstTracedServer(t *testing.T) {
	cfg := chaosConfig()
	st := newStation(t, cfg)
	rec := trace.NewRecorder(trace.Options{})
	srv, err := ServeWith(st, "127.0.0.1:0", Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr(), "legacy-node")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i, frame := range encodeFrames(t, cfg, 3, 16) {
		if err := client.Send(frame); err != nil {
			t.Fatalf("legacy send %d: %v", i, err)
		}
	}
	stats, err := st.SensorStats("legacy-node")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmissions != 3 {
		t.Errorf("station holds %d transmissions, want 3", stats.Transmissions)
	}
}

// TestNegotiatedV3EndToEnd: both sides new — the hello round-trip settles
// on v3, traced frames keep their headers, and the server records receive
// spans joined to the client's send spans.
func TestNegotiatedV3EndToEnd(t *testing.T) {
	st := newStation(t, chaosConfig())
	rec := trace.NewRecorder(trace.Options{})
	srv, err := ServeWith(st, "127.0.0.1:0", Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rc, err := NewReliable(srv.Addr(), "new-node", ReliableOptions{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	frames := encodeTracedFrames(t, 2)
	for _, frame := range frames {
		if err := rc.Send(frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	if rc.proto != protoV3 {
		t.Errorf("negotiated proto %d, want %d", rc.proto, protoV3)
	}
	tr := rec.Lookup(1)
	if tr == nil {
		t.Fatal("trace 1 not recorded")
	}
	tv := tr.Snapshot(true)
	var sends, recvs int
	var walk func(vs []*trace.SpanView)
	walk = func(vs []*trace.SpanView) {
		for _, v := range vs {
			switch v.Stage {
			case "netio.send":
				sends++
			case "netio.recv":
				recvs++
			}
			walk(v.Children)
		}
	}
	walk(tv.Tree)
	if sends != 1 || recvs != 1 {
		t.Errorf("trace has %d send / %d recv spans, want 1/1", sends, recvs)
	}
}
