// Package dct implements the orthonormal Discrete Cosine Transform
// (DCT-II with DCT-III inverse), one of the competing approximation methods
// in the paper's evaluation and the basis of the GetBaseDCT construction.
// The fast path reduces the transform to a single same-length FFT via
// Makhoul's even-odd reordering, so arbitrary lengths run in O(n log n).
package dct

import (
	"math"

	"sbr/internal/dft"
	"sbr/internal/timeseries"
)

// Transform computes the orthonormal DCT-II of s.
func Transform(s timeseries.Series) timeseries.Series {
	n := len(s)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return timeseries.Series{s[0]}
	}
	// Makhoul reordering: v = (x0, x2, x4, …, x5, x3, x1).
	re := make([]float64, n)
	im := make([]float64, n)
	for i := 0; 2*i < n; i++ {
		re[i] = s[2*i]
	}
	for i := 0; 2*i+1 < n; i++ {
		re[n-1-i] = s[2*i+1]
	}
	dft.FFT(re, im)

	out := make(timeseries.Series, n)
	scale0 := math.Sqrt(1 / float64(n))
	scale := math.Sqrt(2 / float64(n))
	for k := 0; k < n; k++ {
		theta := math.Pi * float64(k) / float64(2*n)
		c := re[k]*math.Cos(theta) + im[k]*math.Sin(theta)
		if k == 0 {
			out[k] = c * scale0
		} else {
			out[k] = c * scale
		}
	}
	return out
}

// Inverse computes the orthonormal DCT-III, the inverse of Transform.
func Inverse(c timeseries.Series) timeseries.Series {
	n := len(c)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return timeseries.Series{c[0]}
	}
	// Undo the orthonormal scaling to recover the raw cosine sums C[k].
	raw := make([]float64, n)
	raw[0] = c[0] * math.Sqrt(float64(n))
	half := math.Sqrt(float64(n) / 2)
	for k := 1; k < n; k++ {
		raw[k] = c[k] * half
	}
	// V[k] = (C[k] − i·C[n−k])·e^{iπk/(2n)}, V[0] = C[0]; v = IFFT(V).
	re := make([]float64, n)
	im := make([]float64, n)
	re[0] = raw[0]
	for k := 1; k < n; k++ {
		theta := math.Pi * float64(k) / float64(2*n)
		cr, ci := raw[k], -raw[n-k]
		re[k] = cr*math.Cos(theta) - ci*math.Sin(theta)
		im[k] = cr*math.Sin(theta) + ci*math.Cos(theta)
	}
	dft.IFFT(re, im)

	out := make(timeseries.Series, n)
	for i := 0; 2*i < n; i++ {
		out[2*i] = re[i]
	}
	for i := 0; 2*i+1 < n; i++ {
		out[2*i+1] = re[n-1-i]
	}
	return out
}

// TransformNaive is the O(n²) textbook DCT-II, retained as the reference
// implementation the fast path is validated against.
func TransformNaive(s timeseries.Series) timeseries.Series {
	n := len(s)
	out := make(timeseries.Series, n)
	for k := 0; k < n; k++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += s[i] * math.Cos(math.Pi*float64(k)*float64(2*i+1)/float64(2*n))
		}
		if k == 0 {
			out[k] = sum * math.Sqrt(1/float64(n))
		} else {
			out[k] = sum * math.Sqrt(2/float64(n))
		}
	}
	return out
}

// InverseNaive is the O(n²) textbook DCT-III.
func InverseNaive(c timeseries.Series) timeseries.Series {
	n := len(c)
	out := make(timeseries.Series, n)
	for i := 0; i < n; i++ {
		sum := c[0] * math.Sqrt(1/float64(n))
		for k := 1; k < n; k++ {
			sum += c[k] * math.Sqrt(2/float64(n)) *
				math.Cos(math.Pi*float64(k)*float64(2*i+1)/float64(2*n))
		}
		out[i] = sum
	}
	return out
}
