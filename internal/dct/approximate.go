package dct

import (
	"math"
	"sort"

	"sbr/internal/timeseries"
)

// ValuesPerCoefficient is the bandwidth cost of one retained DCT
// coefficient: its index and its value.
const ValuesPerCoefficient = 2

// Coefficient is one retained transform coefficient.
type Coefficient struct {
	Index int
	Value float64
}

// Synopsis is a sparse DCT representation of a signal.
type Synopsis struct {
	Length int
	Coeffs []Coefficient
}

// Cost returns the bandwidth cost of the synopsis in values.
func (s Synopsis) Cost() int { return ValuesPerCoefficient * len(s.Coeffs) }

// TopB keeps the b largest-magnitude coefficients of the orthonormal DCT
// of s, the L2-optimal sparse choice for an orthonormal basis.
func TopB(s timeseries.Series, b int) Synopsis {
	coeffs := Transform(s)
	idx := make([]int, len(coeffs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		return math.Abs(coeffs[idx[i]]) > math.Abs(coeffs[idx[j]])
	})
	if b > len(idx) {
		b = len(idx)
	}
	if b < 0 {
		b = 0
	}
	kept := make([]Coefficient, b)
	for i := 0; i < b; i++ {
		kept[i] = Coefficient{Index: idx[i], Value: coeffs[idx[i]]}
	}
	return Synopsis{Length: len(s), Coeffs: kept}
}

// Reconstruct materialises the approximate signal.
func (s Synopsis) Reconstruct() timeseries.Series {
	dense := make(timeseries.Series, s.Length)
	for _, c := range s.Coeffs {
		dense[c.Index] = c.Value
	}
	return Inverse(dense)
}

// Approximate compresses s into at most budget values and returns the
// reconstruction.
func Approximate(s timeseries.Series, budget int) timeseries.Series {
	return TopB(s, budget/ValuesPerCoefficient).Reconstruct()
}

// ApproximateRows compresses the batch under a shared budget, choosing the
// better of a concatenated transform and an equal per-row split, as the
// paper reports the best layout per method.
func ApproximateRows(rows []timeseries.Series, budget int) []timeseries.Series {
	y := timeseries.Concat(rows...)
	concat := splitLike(Approximate(y, budget), rows)

	split := make([]timeseries.Series, len(rows))
	if len(rows) > 0 {
		per := budget / len(rows)
		for i, r := range rows {
			split[i] = Approximate(r, per)
		}
	}
	if sse(rows, split) < sse(rows, concat) {
		return split
	}
	return concat
}

func splitLike(y timeseries.Series, like []timeseries.Series) []timeseries.Series {
	out := make([]timeseries.Series, len(like))
	off := 0
	for i, r := range like {
		out[i] = y[off : off+len(r)]
		off += len(r)
	}
	return out
}

func sse(y, approx []timeseries.Series) float64 {
	var t float64
	for i := range y {
		for j := range y[i] {
			d := y[i][j] - approx[i][j]
			t += d * d
		}
	}
	return t
}
